module pprox

go 1.22
