// MovieLens: the paper's macro-benchmark workload end to end.
//
// Generates the synthetic MovieLens-shaped dataset (same cardinality
// structure as the ml-20m 2014–2015 slice the paper uses, scaled down for
// an interactive run), feeds it through the full PProx stack, trains the
// Universal Recommender's CCO model on the pseudonymized events, and
// serves recommendations for sample users — verifying along the way that
// the LRS database contains no cleartext identifier.
//
//	go run ./examples/movielens [-scale 0.02]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/lrs/cco"
	"pprox/internal/lrs/engine"
	"pprox/internal/lrs/store"
	"pprox/internal/workload"
)

func main() {
	scale := flag.Float64("scale", 0.01, "fraction of the full MovieLens slice to generate")
	flag.Parse()
	if err := run(*scale); err != nil {
		log.Fatal(err)
	}
}

func run(scale float64) error {
	params := workload.ScaledMovieLensParams(scale)
	fmt.Printf("generating MovieLens-shaped workload: %d users, %d items, %d events\n",
		params.Users, params.Items, params.Events)
	dataset := workload.Generate(params)

	trainer := cco.DefaultConfig()
	trainer.MaxInteractionsPerUser = 100
	engCfg := engine.DefaultConfig()
	engCfg.Trainer = trainer
	deployment, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		LRSFrontends:   1,
		EngineConfig:   &engCfg,
	})
	if err != nil {
		return err
	}
	defer deployment.Close()

	cl := deployment.Client(30 * time.Second)
	ctx := context.Background()

	fmt.Println("ingesting events through the encrypted proxy path…")
	start := time.Now()
	for i, ev := range dataset.Events {
		if err := cl.Post(ctx, ev.User, ev.Item, ev.Rating); err != nil {
			return fmt.Errorf("post event %d: %w", i, err)
		}
	}
	fmt.Printf("ingested %d events in %v (%.0f events/s)\n",
		len(dataset.Events), time.Since(start).Round(time.Millisecond),
		float64(len(dataset.Events))/time.Since(start).Seconds())

	// Privacy check: no cleartext identifier in the LRS database.
	leaks := 0
	deployment.Engine.ForEachEvent(func(d store.Document) {
		if strings.HasPrefix(d.Fields["user"], "ml-user-") || strings.HasPrefix(d.Fields["item"], "ml-movie-") {
			leaks++
		}
	})
	if leaks > 0 {
		return fmt.Errorf("%d cleartext identifiers reached the LRS", leaks)
	}
	fmt.Println("verified: the LRS database holds pseudonyms only")

	fmt.Println("training the CCO model (the Spark batch job of §7)…")
	start = time.Now()
	if err := deployment.Engine.TrainNow(); err != nil {
		return err
	}
	fmt.Printf("trained in %v — %s\n", time.Since(start).Round(time.Millisecond), deployment.Engine.ModelInfo())

	fmt.Println("\nrecommendations through the full encrypted round trip:")
	users := dataset.DistinctUsers()
	shown := 0
	for _, u := range users {
		items, err := cl.Get(ctx, u)
		if err != nil {
			return fmt.Errorf("get %s: %w", u, err)
		}
		if len(items) == 0 {
			continue
		}
		n := len(items)
		if n > 5 {
			n = 5
		}
		fmt.Printf("  %s → %v\n", u, items[:n])
		shown++
		if shown == 5 {
			break
		}
	}
	if shown == 0 {
		return fmt.Errorf("no user received recommendations")
	}
	return nil
}
