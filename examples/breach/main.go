// Breach: the full incident-response loop of §2.3 (footnote 1).
//
// An adversary mounts a side-channel attack against the UA enclave and
// steals its keys; the breach detector (à la Déjà Vu/Varys) notices; the
// automatic responder generates fresh keys and re-encrypts the LRS
// database; the stolen keys become useless — while every user profile
// survives the rotation intact.
//
//	go run ./examples/breach
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/cluster"
	"pprox/internal/enclave"
	"pprox/internal/lrs/store"
	"pprox/internal/rotation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		LRSFrontends: 1,
	})
	if err != nil {
		return err
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	ctx := context.Background()

	fmt.Println("== normal operation ==")
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("reader-%02d", i)
		for _, b := range []string{"dune", "foundation"} {
			if err := cl.Post(ctx, u, b, ""); err != nil {
				return err
			}
		}
	}
	for i := 0; i < 5; i++ {
		if err := cl.Post(ctx, fmt.Sprintf("other-%d", i), "cookbook", ""); err != nil {
			return err
		}
	}
	if err := cl.Post(ctx, "probe", "dune", ""); err != nil {
		return err
	}
	if err := d.Engine.TrainNow(); err != nil {
		return err
	}
	fmt.Printf("LRS serving recommendations; %d pseudonymized events stored\n", d.Engine.EventCount())

	// Arm the breach detector with the automatic responder.
	rotated := make(chan *rotation.Result, 1)
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		func(r *rotation.Result) { rotated <- r },
		func(err error) { log.Printf("responder error: %v", err) },
	)
	detector := enclave.NewBreachDetector(200*time.Millisecond, responder.Countermeasure)
	defer detector.Stop()
	uaEnclave := d.UALayers[0].Enclave()
	uaEnclave.Platform().SetBreachDetector(detector)

	fmt.Println("\n== side-channel attack: UA enclave secrets leak (§2.3 ➍) ==")
	loot := adversary.Loot{UA: uaEnclave.Compromise()}
	before := adversary.DeanonymizeDB(loot, dbEvents(d))
	fmt.Printf("adversary de-pseudonymizes %d users with the stolen kUA\n", len(before.Users))

	fmt.Println("\n== breach detector fires; responder rotates keys and re-encrypts the database ==")
	select {
	case res := <-rotated:
		fmt.Printf("rotated %v layer: %d pseudonyms migrated to fresh keys\n", res.Layer, res.Migrated)
	case <-time.After(10 * time.Second):
		return fmt.Errorf("responder never fired")
	}

	after := adversary.DeanonymizeDB(loot, dbEvents(d))
	fmt.Printf("\nadversary retries with the stolen keys: %d users decrypted — the loot is dead\n", len(after.Users))

	// Profiles survived: the engine still knows probe's history under
	// the fresh pseudonym and keeps recommending correctly.
	recs := d.Engine.Recommend(mustPseudo(d, "probe"), 3)
	fmt.Printf("probe's profile survived rotation: %d recommendations still served\n", len(recs))
	if len(recs) == 0 {
		return fmt.Errorf("profiles lost in rotation")
	}
	fmt.Println("\nincident closed: fresh enclaves would now be provisioned with the new keys (§2.3 fn.1).")
	return nil
}

func dbEvents(d *cluster.Deployment) []adversary.DBEvent {
	var db []adversary.DBEvent
	d.Engine.ForEachEvent(func(doc store.Document) {
		db = append(db, adversary.DBEvent{
			UserPseudonym: doc.Fields["user"],
			ItemPseudonym: doc.Fields["item"],
		})
	})
	return db
}

// mustPseudo computes probe's pseudonym under the ROTATED key, which the
// responder left in place of d.UAKeys… the responder holds the fresh keys
// internally; for the demo we recover the pseudonym by matching the
// unique single-event user in the database.
func mustPseudo(d *cluster.Deployment, _ string) string {
	counts := map[string]int{}
	d.Engine.ForEachEvent(func(doc store.Document) {
		counts[doc.Fields["user"]]++
	})
	for pseudo, n := range counts {
		if n == 1 {
			return pseudo
		}
	}
	return ""
}
