// Adversary: the paper's security analysis (§6) as a live demonstration.
//
// Deploys the full stack, then plays the adversary of §2.3: it reads the
// LRS database, intercepts messages, breaks into ONE enclave via a
// simulated side-channel attack, and mounts the timing-correlation attack
// — showing that user–interest unlinkability survives every §6.1 case,
// and exactly which defence stops each attack.
//
//	go run ./examples/adversary
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/cluster"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	deployment, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		LRSFrontends: 1,
	})
	if err != nil {
		return err
	}
	defer deployment.Close()

	cl := deployment.Client(10 * time.Second)
	ctx := context.Background()

	fmt.Println("== users interact with the service ==")
	pairs := [][2]string{
		{"alice", "on-anxiety"},
		{"alice", "sleep-disorders-handbook"},
		{"bob", "on-anxiety"},
		{"carol", "cooking-for-one"},
	}
	for _, p := range pairs {
		if err := cl.Post(ctx, p[0], p[1], ""); err != nil {
			return err
		}
		fmt.Printf("  %s → %s\n", p[0], p[1])
	}

	var db []adversary.DBEvent
	deployment.Engine.ForEachEvent(func(d store.Document) {
		db = append(db, adversary.DBEvent{
			UserPseudonym: d.Fields["user"],
			ItemPseudonym: d.Fields["item"],
		})
	})

	fmt.Println("\n== adversary reads the LRS database (§2.3 ➋) ==")
	fmt.Printf("  sees %d rows of opaque pseudonyms, e.g. user=%.20s… item=%.20s…\n",
		len(db), db[0].UserPseudonym, db[0].ItemPseudonym)

	fmt.Println("\n== adversary breaks the UA enclave via side channels (§2.3 ➍) ==")
	uaLoot := adversary.Loot{UA: deployment.UALayers[0].Enclave().Compromise()}
	f := adversary.DeanonymizeDB(uaLoot, db)
	fmt.Printf("  de-pseudonymized %d users: it now knows WHO used the service\n", len(f.Users))
	fmt.Printf("  de-pseudonymized %d items — it cannot learn WHAT anyone read\n", len(f.Items))
	fmt.Printf("  linked (user, item) pairs: %d   ← user–interest unlinkability holds (§6.1 case 1c)\n", len(f.LinkedPairs))

	fmt.Println("\n== instead, the adversary breaks the IA enclave ==")
	iaLoot := adversary.Loot{IA: deployment.IALayers[0].Enclave().Compromise()}
	f = adversary.DeanonymizeDB(iaLoot, db)
	fmt.Printf("  de-pseudonymized %d items: it knows WHAT was read\n", len(f.Items))
	fmt.Printf("  de-pseudonymized %d users — it cannot learn BY WHOM\n", len(f.Users))
	fmt.Printf("  linked (user, item) pairs: %d   ← unlinkability holds (§6.1 case 2c)\n", len(f.LinkedPairs))

	fmt.Println("\n== intercepting a client message with UA loot (§6.1 case 1a) ==")
	captured, err := buildCapturedPost(deployment, "alice", "on-anxiety")
	if err != nil {
		return err
	}
	got := adversary.DecryptInterceptedPost(uaLoot, captured)
	fmt.Printf("  decrypted user: %q — item stays opaque: %q\n", got.User, got.Item)

	fmt.Println("\n== timing attack on the wire (§4.3 / §6.2) ==")
	for _, shuffle := range []int{0, 8} {
		acc, err := timingAttack(shuffle)
		if err != nil {
			return err
		}
		switch shuffle {
		case 0:
			fmt.Printf("  shuffling off: linking accuracy %.2f — the adversary wins on timing alone\n", acc)
		default:
			fmt.Printf("  shuffling S=%d: linking accuracy %.2f (theory 1/S = %.3f)\n", shuffle, acc, 1.0/float64(shuffle))
		}
	}
	fmt.Println("\nconclusion: no single broken enclave, database read, or traffic trace links a user to an interest.")
	return nil
}

// buildCapturedPost recreates the message the user-side library put on the
// wire, as a network adversary would capture it.
func buildCapturedPost(d *cluster.Deployment, user, item string) (message.PostRequest, error) {
	userBlock, err := ppcrypto.PadID(user)
	if err != nil {
		return message.PostRequest{}, err
	}
	encUser, err := ppcrypto.EncryptOAEP(d.UAKeys.Pair.Public, userBlock)
	if err != nil {
		return message.PostRequest{}, err
	}
	itemBlock, err := ppcrypto.PadID(item)
	if err != nil {
		return message.PostRequest{}, err
	}
	encItem, err := ppcrypto.EncryptOAEP(d.IAKeys.Pair.Public, itemBlock)
	if err != nil {
		return message.PostRequest{}, err
	}
	return message.PostRequest{
		EncUser: message.Encode64(encUser),
		EncItem: message.Encode64(encItem),
	}, nil
}

// timingAttack deploys a fresh stack with the adversary's tap on the LRS
// link and measures the in-order correlation attack's accuracy.
func timingAttack(shuffle int) (float64, error) {
	rec := adversary.NewRecorder()
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: shuffle, ShuffleTimeout: 150 * time.Millisecond,
		LRSFrontends: 1,
		LRSMiddleware: func(next http.Handler) http.Handler {
			return adversary.Tap(rec, "ia→lrs", func(body []byte) string {
				var req message.LRSPost
				if err := message.Unmarshal(body, &req); err == nil {
					return req.User
				}
				return ""
			}, next)
		},
	})
	if err != nil {
		return 0, err
	}
	defer d.Close()

	cl := d.Client(15 * time.Second)
	ctx := context.Background()

	const n = 32
	users := make([]string, n)
	var edge []adversary.Event
	truth := make(map[string]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("victim-%02d", i)
		p, err := ppcrypto.Pseudonymize(d.UAKeys.Permanent, users[i])
		if err != nil {
			return 0, err
		}
		truth[users[i]] = message.Encode64(p)
	}

	if shuffle == 0 {
		for _, u := range users {
			edge = append(edge, adversary.Event{T: time.Now(), Label: u})
			if err := cl.Post(ctx, u, "sensitive", ""); err != nil {
				return 0, err
			}
		}
	} else {
		for b := 0; b < n/shuffle; b++ {
			var wg sync.WaitGroup
			for i := 0; i < shuffle; i++ {
				u := users[b*shuffle+i]
				edge = append(edge, adversary.Event{T: time.Now(), Label: u})
				wg.Add(1)
				go func(u string) {
					defer wg.Done()
					_ = cl.Post(ctx, u, "sensitive", "")
				}(u)
				time.Sleep(time.Millisecond)
			}
			wg.Wait()
		}
	}

	lrs := rec.Events("ia→lrs")
	guesses := adversary.CorrelateInOrder(edge, lrs)
	return adversary.Accuracy(guesses, truth), nil
}
