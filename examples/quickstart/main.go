// Quickstart: a complete PProx deployment in one process.
//
// It brings up the full paper stack — user-side library → User Anonymizer
// → Item Anonymizer → Universal-Recommender LRS — with real attestation,
// key provisioning, and cryptography, inserts feedback, trains the model,
// and fetches recommendations.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/lrs/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One instance per proxy layer, full encryption, shuffling off for
	// snappy interactive output (see examples/scaling for shuffling).
	deployment, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		LRSFrontends:   1,
	})
	if err != nil {
		return err
	}
	defer deployment.Close()

	cl := deployment.Client(10 * time.Second)
	ctx := context.Background()

	// Two reading communities send feedback through the proxy.
	fmt.Println("inserting feedback through PProx…")
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("scifi-reader-%02d", i)
		for _, book := range []string{"dune", "foundation", "hyperion"} {
			if err := cl.Post(ctx, u, book, "5.0"); err != nil {
				return fmt.Errorf("post: %w", err)
			}
		}
	}
	for i := 0; i < 15; i++ {
		u := fmt.Sprintf("cook-%02d", i)
		for _, book := range []string{"salt-fat-acid-heat", "joy-of-cooking"} {
			if err := cl.Post(ctx, u, book, "4.5"); err != nil {
				return fmt.Errorf("post: %w", err)
			}
		}
	}
	// A new user who has only read dune.
	if err := cl.Post(ctx, "newcomer", "dune", "4.0"); err != nil {
		return fmt.Errorf("post: %w", err)
	}

	// The LRS trains its CCO model — on pseudonyms only.
	fmt.Println("training the recommendation model…")
	if err := deployment.Engine.TrainNow(); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	fmt.Printf("model: %s\n", deployment.Engine.ModelInfo())

	// Show what the LRS database actually contains: pseudonyms.
	shown := 0
	deployment.Engine.ForEachEvent(func(d store.Document) {
		if shown < 2 {
			fmt.Printf("LRS db row: user=%.24s… item=%.24s…\n", d.Fields["user"], d.Fields["item"])
			shown++
		}
	})

	items, err := cl.Get(ctx, "newcomer")
	if err != nil {
		return fmt.Errorf("get: %w", err)
	}
	fmt.Printf("\nrecommendations for newcomer (who read dune): %v\n", items)
	fmt.Println("\nthe LRS only ever saw pseudonymous identifiers;")
	fmt.Println("the user-side library decrypted the list locally with its per-request key.")
	return nil
}
