// Scaling: horizontal scaling of the proxy service (§5, §8.1.2).
//
// Deploys PProx with one and then several instances per layer (the m6/m7
// configurations of Table 2) against the stub LRS, drives an open-loop
// load through the real encrypted path, and prints the latency
// candlesticks side by side — plus the scaling law of the simulated
// full-size testbed (Fig. 8).
//
//	go run ./examples/scaling [-rps 80] [-duration 4s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/sim"
	"pprox/internal/workload"
)

func main() {
	rps := flag.Int("rps", 80, "injected request rate")
	duration := flag.Duration("duration", 4*time.Second, "injection duration per configuration")
	flag.Parse()
	if err := run(*rps, *duration); err != nil {
		log.Fatal(err)
	}
}

func run(rps int, duration time.Duration) error {
	fmt.Printf("== real path: %d RPS through 1×1 and 3×3 proxy instances (S=4) ==\n", rps)
	for _, instances := range []int{1, 3} {
		d, err := cluster.Deploy(cluster.Spec{
			ProxyEnabled: true, UA: instances, IA: instances,
			Encryption: true, ItemPseudonyms: true,
			Shuffle: 4, ShuffleTimeout: 250 * time.Millisecond,
			UseStub: true, LRSFrontends: 1,
		})
		if err != nil {
			return err
		}

		cl := d.Client(15 * time.Second)
		inj := &workload.Injector{RPS: rps, Duration: duration, MaxInFlight: 1024}
		res := inj.Run(context.Background(), func(ctx context.Context) error {
			_, err := cl.Get(ctx, "scaling-user")
			return err
		})
		if err := d.Close(); err != nil {
			return err
		}
		fmt.Printf("  %d×%d instances: sent=%d failed=%d  %s\n",
			instances, instances, res.Sent, res.Failed, res.Latencies.Candlestick())
	}

	fmt.Println("\n== simulated full-size testbed (Fig. 8 anchor points) ==")
	opts := sim.QuickRunOptions()
	for _, row := range []struct {
		name string
		rps  int
	}{
		{"m6", 250}, {"m7", 500}, {"m8", 750}, {"m9", 1000},
	} {
		rows := simPoint(row.name, row.rps, opts)
		fmt.Printf("  %s at its rated %4d RPS: %s\n", row.name, row.rps, rows)
	}
	fmt.Println("\neach additional UA+IA pair buys ~250 RPS, matching §8.1.2.")
	return nil
}

func simPoint(name string, rps int, opts sim.RunOptions) string {
	for _, c := range cluster.MicroConfigs() {
		if c.Name != name {
			continue
		}
		sys := sim.NewSystem(sim.FromMicro(c))
		d := sys.Run(rps, opts.Duration, opts.Trim)
		return d.Candlestick().String()
	}
	return "unknown configuration"
}
