# Tier-1 verification: build, vet, tests, race tests — the gate every
# change must pass. `make verify` additionally runs staticcheck when it
# is installed, and skips it (loudly) when it is not, so the target works
# in offline containers without tool downloads.

GO ?= go

.PHONY: all build vet test race verify bench clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

clean:
	rm -rf bin
