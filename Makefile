# Tier-1 verification: build, vet, tests, race tests — the gate every
# change must pass. `make verify` additionally runs staticcheck when it
# is installed, and skips it (loudly) when it is not, so the target works
# in offline containers without tool downloads.

GO ?= go

.PHONY: all build vet test race verify bench bench-json bench-compare audit-smoke cache-smoke batch-smoke lrs-smoke ops-smoke scale-smoke clean

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet test race
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

bench:
	$(GO) test -bench=. -benchmem .

# Performance trajectory: emit machine-readable BENCH_<scenario>.json
# snapshots (schema pprox-bench/1) for the batch and cache scenarios into
# bench/. Each snapshot carries goodput trials with min/median/max spread,
# latency and per-stage quantiles, UA crossings and LRS gets per request,
# allocs/op micro-benchmarks, and the privacy/perf-SLO verdicts. The
# batch scenario (and so its committed baseline) runs with the hopwire
# frame transport on both hops; its full_path_get/batch_marshal allocs
# gate the transport's trajectory.
bench-json:
	$(GO) run ./cmd/pprox-bench -quick -out bench batch
	$(GO) run ./cmd/pprox-bench -quick -out bench cache
	$(GO) run ./cmd/pprox-bench -quick -out bench lrs10x

# Gate the fresh snapshots against the committed baselines. Exit 3 on a
# regression; timing checks are skipped automatically when either run's
# trial spread marks the host as noisy, but the host-independent checks
# (SLO verdicts, crossings/request, LRS gets/request, allocs/op) always
# apply. Refresh the baselines by copying bench/BENCH_*.json over
# bench/baselines/ in the PR that intentionally moves the numbers.
bench-compare: bench-json
	$(GO) run ./cmd/pprox-bench compare bench/baselines/BENCH_batch.json bench/BENCH_batch.json
	$(GO) run ./cmd/pprox-bench compare bench/baselines/BENCH_cache.json bench/BENCH_cache.json
	$(GO) run ./cmd/pprox-bench compare bench/baselines/BENCH_lrs10x.json bench/BENCH_lrs10x.json

# Privacy-SLO smoke test: boot an in-process cluster, inject one
# under-filled shuffle epoch, and fail unless the auditor reports the
# violation. Writes the /privacy report to audit-report.json.
audit-smoke:
	$(GO) run ./cmd/pprox-audit -smoke -out audit-report.json

# Recommendation-cache smoke test: run the pprox-bench cache scenario
# (Zipf get stream, cache off vs on). The scenario exits non-zero unless
# the hit rate is positive, the privacy auditor stays ok, and the cached
# run sends fewer gets to the LRS than the uncached one. Output is kept
# in cache-smoke.txt for CI artifact upload.
cache-smoke:
	$(GO) run ./cmd/pprox-bench -quick cache | tee cache-smoke.txt

# Epoch-batched pipeline smoke test: run the pprox-bench batch scenario
# (S=32 get epochs, batch off vs on). The scenario exits non-zero unless
# batching collapses UA enclave crossings to ≤ 2/S + ε per request,
# throughput does not regress, and the privacy auditor stays ok on both
# variants. Output is kept in batch-smoke.txt for CI artifact upload.
batch-smoke:
	$(GO) run ./cmd/pprox-bench -quick batch | tee batch-smoke.txt

# LRS-scale smoke test: run the pprox-bench lrs10x scenario — the
# sharded, WAL-backed LRS with incremental CCO maintenance at 10× the
# paper's MovieLens cardinalities. The scenario exits non-zero unless the
# per-event incremental apply is ≥10× cheaper than a full TrainNow, the
# online model recommends exactly what the batch twin does, a WAL shard
# torn mid-append replays to the twin's state, and the full private path
# carries the workload with a clean privacy audit. Also emits
# bench/BENCH_lrs10x.json; output is kept in lrs-smoke.txt for CI
# artifact upload.
lrs-smoke:
	$(GO) run ./cmd/pprox-bench -quick -out bench lrs10x | tee lrs-smoke.txt

# Fleet telemetry smoke test: deploy an in-process hopwire cluster with a
# pprox-ops collector, drive traffic, and fail unless every node reports
# fresh with sane rollups (merged stage quantiles, goodput, anonymity
# watermark, no build skew), then kill one node and fail unless the
# collector marks exactly it stale. Writes the /fleet report to
# fleet.json for CI artifact upload.
ops-smoke:
	$(GO) run ./cmd/pprox-ops -smoke -out fleet.json

# Elastic fleet smoke test: deploy an in-process cluster with the live
# route registry and the autoscale reconciler, ramp request load up
# (a UA/IA pair is spawned and admitted at the next shuffle-epoch
# boundary) then down (the extra pair drains its final epoch whole and
# deregisters), and fail unless the privacy audit stays ok through both
# transitions and fleet goodput recovers on the remaining pair. Writes
# the final /fleet report to fleet.json for CI artifact upload.
scale-smoke:
	$(GO) run ./cmd/pprox-ops -scale-smoke -out fleet.json

clean:
	rm -rf bin
	rm -f bench/BENCH_*.json
