package stats

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestEmptyDistribution(t *testing.T) {
	d := NewDistribution(nil)
	if d.N() != 0 || d.Min() != 0 || d.Max() != 0 || d.Mean() != 0 || d.Median() != 0 {
		t.Error("empty distribution should be all zero")
	}
	c := d.Candlestick()
	if c.N != 0 {
		t.Error("empty candlestick should have N=0")
	}
	if d.Histogram(ms(1), 10) != nil {
		t.Error("empty histogram should be nil")
	}
}

func TestSingleSample(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(10)})
	if d.Median() != ms(10) || d.Min() != ms(10) || d.Max() != ms(10) {
		t.Error("single-sample quantiles should all equal the sample")
	}
	c := d.Candlestick()
	if c.WLow != ms(10) || c.WHigh != ms(10) {
		t.Errorf("whiskers = [%v %v], want [10ms 10ms]", c.WLow, c.WHigh)
	}
}

func TestQuantilesOnKnownData(t *testing.T) {
	// 1..100 ms: quantiles are exact order statistics.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = ms(i + 1)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(samples), func(i, j int) {
		samples[i], samples[j] = samples[j], samples[i]
	})
	d := NewDistribution(samples)

	if got := d.Quantile(0); got != ms(1) {
		t.Errorf("Q0 = %v", got)
	}
	if got := d.Quantile(1); got != ms(100) {
		t.Errorf("Q1 = %v", got)
	}
	if got := d.Median(); got < ms(50) || got > ms(51) {
		t.Errorf("median = %v, want within [50ms,51ms]", got)
	}
	if got := d.Quantile(0.25); got < ms(25) || got > ms(26) {
		t.Errorf("P25 = %v", got)
	}
	if got := d.Mean(); got != ms(50)+500*time.Microsecond {
		t.Errorf("mean = %v, want 50.5ms", got)
	}
}

func TestCandlestickWhiskersClipOutliers(t *testing.T) {
	// A tight cluster plus one extreme outlier: the whisker must stop at
	// the cluster, the max must still report the outlier.
	samples := []time.Duration{ms(10), ms(11), ms(12), ms(13), ms(14), ms(500)}
	c := NewDistribution(samples).Candlestick()
	if c.Max != ms(500) {
		t.Errorf("max = %v", c.Max)
	}
	if c.WHigh == ms(500) {
		t.Error("upper whisker extended to a 1.5·IQR outlier")
	}
	if c.WHigh < c.P75 {
		t.Errorf("upper whisker %v below P75 %v", c.WHigh, c.P75)
	}
	if c.WLow > c.P25 {
		t.Errorf("lower whisker %v above P25 %v", c.WLow, c.P25)
	}
}

func TestCandlestickOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		c := NewDistribution(samples).Candlestick()
		return c.Min <= c.WLow && c.WLow <= c.P25 && c.P25 <= c.Median &&
			c.Median <= c.P75 && c.P75 <= c.WHigh && c.WHigh <= c.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v)
		}
		d := NewDistribution(samples)
		qa := float64(a) / 255
		qb := float64(b) / 255
		if qa > qb {
			qa, qb = qb, qa
		}
		return d.Quantile(qa) <= d.Quantile(qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				r.Observe(ms(i))
			}
		}()
	}
	wg.Wait()
	if r.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", r.Len())
	}
	d := r.Snapshot()
	if d.N() != 2000 {
		t.Errorf("snapshot N = %d", d.N())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Error("Reset did not clear samples")
	}
	// Snapshot taken before Reset is unaffected.
	if d.N() != 2000 {
		t.Error("snapshot mutated by Reset")
	}
}

func TestMerge(t *testing.T) {
	a := NewDistribution([]time.Duration{ms(1), ms(3)})
	b := NewDistribution([]time.Duration{ms(2), ms(4)})
	m := Merge(a, b)
	if m.N() != 4 || m.Min() != ms(1) || m.Max() != ms(4) {
		t.Errorf("merge: N=%d min=%v max=%v", m.N(), m.Min(), m.Max())
	}
	if got := m.Median(); got != ms(2)+500*time.Microsecond {
		t.Errorf("merged median = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	d := NewDistribution([]time.Duration{ms(1), ms(2), ms(5), ms(11), ms(99)})
	bins := d.Histogram(ms(10), 5)
	if len(bins) != 5 {
		t.Fatalf("bins = %v", bins)
	}
	if bins[0] != 3 || bins[1] != 1 || bins[4] != 1 {
		t.Errorf("bins = %v", bins)
	}
}

func TestCandlestickString(t *testing.T) {
	s := NewDistribution([]time.Duration{ms(10), ms(20)}).Candlestick().String()
	if s == "" {
		t.Error("empty candlestick row")
	}
}
