// Package stats computes the latency-distribution summaries used by the
// PProx evaluation (§8). The paper reports each configuration/RPS pair as a
// candlestick: box boundaries at the 25th and 75th percentiles, the median
// inside, and whiskers extending to the most distant points within 1.5
// times the interquartile range from the box (footnote 7).
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder collects latency samples concurrently, one per completed
// request, as the workload injector measures round-trip service times.
type Recorder struct {
	mu      sync.Mutex
	samples []time.Duration
}

// NewRecorder creates an empty recorder with room for the expected number
// of samples.
func NewRecorder(capacity int) *Recorder {
	return &Recorder{samples: make([]time.Duration, 0, capacity)}
}

// Observe records one round-trip latency.
func (r *Recorder) Observe(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, d)
	r.mu.Unlock()
}

// Len returns the number of recorded samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Snapshot copies the samples into an immutable Distribution.
func (r *Recorder) Snapshot() Distribution {
	r.mu.Lock()
	cp := append([]time.Duration(nil), r.samples...)
	r.mu.Unlock()
	return NewDistribution(cp)
}

// Reset discards all samples.
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.mu.Unlock()
}

// Distribution is a sorted, immutable set of latency samples.
type Distribution struct {
	sorted []time.Duration
}

// NewDistribution builds a distribution from samples (the slice is taken
// over and sorted in place).
func NewDistribution(samples []time.Duration) Distribution {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return Distribution{sorted: samples}
}

// Merge combines distributions, e.g. the 6 repetitions the paper aggregates
// per configuration/RPS pair ("we run each experiment 6 times and report
// the aggregated distribution").
func Merge(ds ...Distribution) Distribution {
	var n int
	for _, d := range ds {
		n += len(d.sorted)
	}
	all := make([]time.Duration, 0, n)
	for _, d := range ds {
		all = append(all, d.sorted...)
	}
	return NewDistribution(all)
}

// N returns the sample count.
func (d Distribution) N() int { return len(d.sorted) }

// Min returns the smallest sample, or 0 when empty.
func (d Distribution) Min() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[0]
}

// Max returns the largest sample, or 0 when empty.
func (d Distribution) Max() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	return d.sorted[len(d.sorted)-1]
}

// Mean returns the arithmetic mean, or 0 when empty.
func (d Distribution) Mean() time.Duration {
	if len(d.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, s := range d.sorted {
		sum += float64(s)
	}
	return time.Duration(sum / float64(len(d.sorted)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics, or 0 when empty.
func (d Distribution) Quantile(q float64) time.Duration {
	n := len(d.sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return d.sorted[0]
	}
	if q >= 1 {
		return d.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.sorted[lo]
	}
	frac := pos - float64(lo)
	return time.Duration(float64(d.sorted[lo])*(1-frac) + float64(d.sorted[hi])*frac)
}

// Median returns the 50th percentile.
func (d Distribution) Median() time.Duration { return d.Quantile(0.5) }

// Candlestick is one box-and-whiskers row as plotted in Figures 6–10.
type Candlestick struct {
	N      int
	Min    time.Duration
	WLow   time.Duration // lower whisker: most distant point within 1.5·IQR below P25
	P25    time.Duration
	Median time.Duration
	P75    time.Duration
	WHigh  time.Duration // upper whisker: most distant point within 1.5·IQR above P75
	Max    time.Duration
	Mean   time.Duration
}

// Candlestick summarizes the distribution with the paper's box/whisker
// definition.
func (d Distribution) Candlestick() Candlestick {
	c := Candlestick{
		N:      d.N(),
		Min:    d.Min(),
		Max:    d.Max(),
		Mean:   d.Mean(),
		P25:    d.Quantile(0.25),
		Median: d.Median(),
		P75:    d.Quantile(0.75),
	}
	if c.N == 0 {
		return c
	}
	iqr := c.P75 - c.P25
	loFence := c.P25 - time.Duration(1.5*float64(iqr))
	hiFence := c.P75 + time.Duration(1.5*float64(iqr))
	c.WLow = c.P25
	c.WHigh = c.P75
	for _, s := range d.sorted {
		if s >= loFence {
			c.WLow = s
			break
		}
	}
	for i := len(d.sorted) - 1; i >= 0; i-- {
		if d.sorted[i] <= hiFence {
			c.WHigh = d.sorted[i]
			break
		}
	}
	// With interpolated quantiles and skewed data the nearest in-fence
	// sample can land inside the box; clamp whiskers to the box edges so
	// WLow ≤ P25 and WHigh ≥ P75 always hold.
	if c.WLow > c.P25 {
		c.WLow = c.P25
	}
	if c.WHigh < c.P75 {
		c.WHigh = c.P75
	}
	return c
}

// String renders the candlestick as a fixed-width millisecond row suitable
// for the experiment harness output.
func (c Candlestick) String() string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return fmt.Sprintf("n=%-6d whiskers=[%7.1f %7.1f]ms box=[%7.1f %7.1f %7.1f]ms max=%7.1fms",
		c.N, ms(c.WLow), ms(c.WHigh), ms(c.P25), ms(c.Median), ms(c.P75), ms(c.Max))
}

// Histogram buckets samples into fixed-width bins for quick terminal
// inspection of a distribution's shape.
func (d Distribution) Histogram(binWidth time.Duration, maxBins int) []int {
	if binWidth <= 0 || len(d.sorted) == 0 {
		return nil
	}
	nBins := int(d.Max()/binWidth) + 1
	if nBins > maxBins {
		nBins = maxBins
	}
	bins := make([]int, nBins)
	for _, s := range d.sorted {
		b := int(s / binWidth)
		if b >= nBins {
			b = nBins - 1
		}
		bins[b]++
	}
	return bins
}
