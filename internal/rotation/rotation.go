// Package rotation implements the breach response of the PProx paper
// (§2.3, footnote 1): once the breach detector reports that an enclave's
// secrets leaked, "the appropriate response must take into account the
// fact that secrets provisioned to the corrupted enclave are now in the
// hands of the adversary. Available options include dropping the database
// content and re-starting the system with new secrets, [or] downloading
// the LRS state for local re-encryption before re-uploading it and
// provisioning fresh enclaves and the user-side library with new secrets."
//
// This package implements the re-encryption option: the RaaS client
// application generates fresh layer keys, migrates every pseudonym stored
// by the LRS from the leaked permanent key to the fresh one (a bijection,
// so user profiles and model continuity are preserved), and provisions
// fresh enclaves. After rotation the adversary's loot decrypts nothing.
package rotation

import (
	"errors"
	"fmt"

	"pprox/internal/enclave"
	"pprox/internal/lrs/engine"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
)

// ErrUnknownLayer reports a rotation request for a layer this package does
// not know.
var ErrUnknownLayer = errors.New("rotation: unknown layer")

// Layer identifies which proxy layer's keys rotate.
type Layer int

// Rotatable layers.
const (
	LayerUA Layer = iota + 1
	LayerIA
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerUA:
		return "UA"
	case LayerIA:
		return "IA"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// Result summarizes one completed rotation.
type Result struct {
	Layer Layer
	// Fresh is the layer's replacement key material; the caller
	// provisions fresh enclaves and redistributes the public bundle.
	Fresh *proxy.LayerKeys
	// Migrated counts re-encrypted pseudonyms.
	Migrated int
}

// RotateKeys generates fresh keys for the given layer and re-encrypts the
// engine's stored pseudonyms from old to fresh. The old keys — which the
// adversary may hold — become useless against the migrated database.
//
// The migration runs as the engine's background shard-at-a-time
// re-pseudonymization job (engine.Repseudonymize): the LRS keeps serving
// while shards are staged, and the job finishes with a retrain so the
// served model speaks the fresh pseudonym space. RotateKeys blocks until
// every shard has settled — callers that clear breach state (the
// auditor) therefore only do so once the whole database is re-keyed.
func RotateKeys(layer Layer, old *proxy.LayerKeys, eng *engine.Engine) (*Result, error) {
	fresh, err := proxy.NewLayerKeys()
	if err != nil {
		return nil, fmt.Errorf("rotation: fresh keys: %w", err)
	}

	var field string
	switch layer {
	case LayerUA:
		field = "user"
	case LayerIA:
		field = "item"
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownLayer, int(layer))
	}

	job, err := eng.Repseudonymize(field, func(pseudonym string) (string, error) {
		return reencryptPseudonym(old.Permanent, fresh.Permanent, pseudonym)
	})
	if err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	if err := job.Wait(); err != nil {
		return nil, fmt.Errorf("rotation: %w", err)
	}
	return &Result{Layer: layer, Fresh: fresh, Migrated: int(job.Migrated())}, nil
}

// reencryptPseudonym maps det_enc(x, oldKey) to det_enc(x, freshKey)
// without ever exposing x outside this migration step.
func reencryptPseudonym(oldKey, freshKey []byte, pseudonym string) (string, error) {
	raw, err := message.Decode64(pseudonym)
	if err != nil {
		return "", fmt.Errorf("decode pseudonym: %w", err)
	}
	id, err := ppcrypto.Depseudonymize(oldKey, raw)
	if err != nil {
		return "", fmt.Errorf("old-key decryption: %w", err)
	}
	fresh, err := ppcrypto.Pseudonymize(freshKey, id)
	if err != nil {
		return "", err
	}
	return message.Encode64(fresh), nil
}

// Responder wires the enclave breach detector to automatic rotation: when
// a breach is detected on an enclave whose identity matches one of the
// registered layers, it rotates that layer's keys and reports the result.
type Responder struct {
	eng    *engine.Engine
	uaKeys *proxy.LayerKeys
	iaKeys *proxy.LayerKeys
	// OnRotated receives each completed rotation (e.g. to provision
	// fresh enclaves and push the new public bundle).
	OnRotated func(*Result)
	// OnError receives rotation failures.
	OnError func(error)
	// Audit, when set, receives the breach and the rotation outcome so
	// the privacy-SLO auditor can hold the deployment in the violated
	// state for exactly the window where stolen keys were in service.
	Audit Auditor

	caches []CacheFlusher
}

// CacheFlusher is anything holding derived per-pseudonym state that a key
// rotation invalidates — the IA recommendation caches. Flush drops every
// entry and reports how many went.
type CacheFlusher interface {
	Flush() int
}

// AddCache registers a cache the countermeasure flushes before rotating.
// Call during deployment wiring, before the breach detector can fire.
func (r *Responder) AddCache(c CacheFlusher) {
	r.caches = append(r.caches, c)
}

// Auditor is the subset of the privacy auditor the responder feeds:
// a breach opens a violation window, a completed rotation closes it.
type Auditor interface {
	ObserveBreach(layer string)
	ObserveRotation(layer string)
}

// NewResponder builds the breach-response hook.
func NewResponder(eng *engine.Engine, uaKeys, iaKeys *proxy.LayerKeys, onRotated func(*Result), onError func(error)) *Responder {
	return &Responder{eng: eng, uaKeys: uaKeys, iaKeys: iaKeys, OnRotated: onRotated, OnError: onError}
}

// Countermeasure is the enclave.BreachDetector callback.
func (r *Responder) Countermeasure(e *enclave.Enclave) {
	var layer Layer
	var keys *proxy.LayerKeys
	switch e.Identity().Name {
	case proxy.UAIdentity.Name:
		layer, keys = LayerUA, r.uaKeys
	case proxy.IAIdentity.Name:
		layer, keys = LayerIA, r.iaKeys
	default:
		if r.OnError != nil {
			r.OnError(fmt.Errorf("%w: enclave %q", ErrUnknownLayer, e.Identity().Name))
		}
		return
	}
	if r.Audit != nil {
		r.Audit.ObserveBreach(layer.String())
	}
	// Flush every recommendation cache before anything else: whichever
	// layer leaked, cached lists derive from the old key world — a UA
	// rotation re-keys the user pseudonyms entries are filed under, an
	// IA rotation re-keys the item pseudonyms they contain — and a
	// compromised IA enclave may itself have been serving from cache.
	for _, c := range r.caches {
		c.Flush()
	}
	res, err := RotateKeys(layer, keys, r.eng)
	if err != nil {
		if r.OnError != nil {
			r.OnError(err)
		}
		return
	}
	// Track the new keys so a second breach rotates from the right
	// baseline.
	switch layer {
	case LayerUA:
		r.uaKeys = res.Fresh
	case LayerIA:
		r.iaKeys = res.Fresh
	}
	if r.Audit != nil {
		r.Audit.ObserveRotation(layer.String())
	}
	if r.OnRotated != nil {
		r.OnRotated(res)
	}
}
