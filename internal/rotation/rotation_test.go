package rotation_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/cluster"
	"pprox/internal/enclave"
	"pprox/internal/lrs/store"
	"pprox/internal/reccache"
	"pprox/internal/rotation"
)

// deployAndSeed brings up a full encrypted stack and posts a small
// community through it.
func deployAndSeed(t *testing.T) *cluster.Deployment {
	t.Helper()
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		LRSFrontends: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })

	cl := d.Client(10 * time.Second)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("u%d", i)
		mustPost(t, cl.Post(ctx, u, "a", ""))
		mustPost(t, cl.Post(ctx, u, "b", ""))
	}
	for i := 0; i < 5; i++ {
		mustPost(t, cl.Post(context.Background(), fmt.Sprintf("s%d", i), "c", ""))
	}
	mustPost(t, cl.Post(ctx, "probe", "a", ""))
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	return d
}

func mustPost(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func dbEvents(d *cluster.Deployment) []adversary.DBEvent {
	var db []adversary.DBEvent
	d.Engine.ForEachEvent(func(doc store.Document) {
		db = append(db, adversary.DBEvent{
			UserPseudonym: doc.Fields["user"],
			ItemPseudonym: doc.Fields["item"],
		})
	})
	return db
}

func TestRotationInvalidatesLeakedKeys(t *testing.T) {
	d := deployAndSeed(t)

	// The adversary breaks the UA enclave and can read users today.
	loot := adversary.Loot{UA: d.UALayers[0].Enclave().Compromise()}
	before := adversary.DeanonymizeDB(loot, dbEvents(d))
	if len(before.Users) == 0 {
		t.Fatal("sanity: loot should decrypt the pre-rotation database")
	}

	// Breach response: rotate the UA layer and re-encrypt the database.
	res, err := rotation.RotateKeys(rotation.LayerUA, d.UAKeys, d.Engine)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated != d.Engine.EventCount() {
		t.Errorf("migrated %d of %d events", res.Migrated, d.Engine.EventCount())
	}

	// The same loot is now useless against the migrated database.
	after := adversary.DeanonymizeDB(loot, dbEvents(d))
	if len(after.Users) != 0 {
		t.Errorf("leaked keys still decrypt %d users after rotation", len(after.Users))
	}
	if len(after.LinkedPairs) != 0 {
		t.Errorf("linkage after rotation: %v", after.LinkedPairs)
	}
}

func TestRotationPreservesProfileContinuity(t *testing.T) {
	d := deployAndSeed(t)

	res, err := rotation.RotateKeys(rotation.LayerUA, d.UAKeys, d.Engine)
	if err != nil {
		t.Fatal(err)
	}

	// Pseudonym migration is a bijection: the probe user's profile must
	// survive — the engine still knows the probe's history under the
	// fresh pseudonym and still recommends "b".
	// Recommendations are queried directly against the engine with the
	// fresh pseudonym (the proxy instances would be re-provisioned with
	// res.Fresh in a full response; provisioning is covered below).
	freshProbe, err := res.Fresh.PseudonymizeItems([]string{"probe"})
	if err != nil {
		t.Fatal(err)
	}
	recs := d.Engine.Recommend(freshProbe[0], 5)
	if len(recs) == 0 {
		t.Fatal("no recommendations after rotation — profile lost")
	}
	itemPseudoB, err := d.IAKeys.PseudonymizeItems([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if recs[0] != itemPseudoB[0] {
		t.Errorf("post-rotation top rec = %q, want pseudonym of b", recs[0])
	}
}

func TestRotateIA(t *testing.T) {
	d := deployAndSeed(t)
	loot := adversary.Loot{IA: d.IALayers[0].Enclave().Compromise()}
	if f := adversary.DeanonymizeDB(loot, dbEvents(d)); len(f.Items) == 0 {
		t.Fatal("sanity: IA loot should decrypt pre-rotation items")
	}
	if _, err := rotation.RotateKeys(rotation.LayerIA, d.IAKeys, d.Engine); err != nil {
		t.Fatal(err)
	}
	if f := adversary.DeanonymizeDB(loot, dbEvents(d)); len(f.Items) != 0 {
		t.Errorf("leaked IA keys still decrypt %d items after rotation", len(f.Items))
	}
}

func TestRotateKeysUnknownLayer(t *testing.T) {
	d := deployAndSeed(t)
	if _, err := rotation.RotateKeys(rotation.Layer(99), d.UAKeys, d.Engine); !errors.Is(err, rotation.ErrUnknownLayer) {
		t.Fatalf("err = %v, want ErrUnknownLayer", err)
	}
}

func TestRotateKeysFailsClosedOnWrongKeys(t *testing.T) {
	// Rotating with keys that do not match the database must change
	// nothing (fail closed), not corrupt pseudonyms.
	d := deployAndSeed(t)
	wrong := d.IAKeys // IA permanent key cannot decrypt user pseudonyms
	before := dbEvents(d)
	if _, err := rotation.RotateKeys(rotation.LayerUA, wrong, d.Engine); err == nil {
		t.Fatal("rotation with mismatched keys succeeded")
	}
	after := dbEvents(d)
	if len(before) != len(after) {
		t.Fatalf("event count changed: %d → %d", len(before), len(after))
	}
	counts := map[string]int{}
	for _, ev := range before {
		counts[ev.UserPseudonym]++
	}
	for _, ev := range after {
		counts[ev.UserPseudonym]--
	}
	for _, n := range counts {
		if n != 0 {
			t.Fatal("database mutated by a failed rotation")
		}
	}
}

func TestResponderEndToEnd(t *testing.T) {
	// Full loop: breach detector fires → responder rotates → old loot
	// useless, fresh enclave serves.
	d := deployAndSeed(t)

	rotated := make(chan *rotation.Result, 1)
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		func(r *rotation.Result) { rotated <- r },
		func(err error) { t.Errorf("responder error: %v", err) },
	)
	det := enclave.NewBreachDetector(time.Millisecond, responder.Countermeasure)
	defer det.Stop()

	// Attach the detector to the UA enclave's platform and compromise.
	uaEncl := d.UALayers[0].Enclave()
	platformOf(t, uaEncl).SetBreachDetector(det)
	loot := adversary.Loot{UA: uaEncl.Compromise()}

	select {
	case res := <-rotated:
		if res.Layer != rotation.LayerUA {
			t.Errorf("rotated %v, want UA", res.Layer)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("responder never rotated")
	}

	if f := adversary.DeanonymizeDB(loot, dbEvents(d)); len(f.Users) != 0 {
		t.Errorf("loot still useful after automatic response: %d users", len(f.Users))
	}
}

// platformOf reaches the enclave's platform via the exported surface.
func platformOf(t *testing.T, e *enclave.Enclave) *enclave.Platform {
	t.Helper()
	p := e.Platform()
	if p == nil {
		t.Fatal("enclave has no platform")
	}
	return p
}

func TestResponderReportsUnknownEnclave(t *testing.T) {
	d := deployAndSeed(t)
	errs := make(chan error, 1)
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		nil, func(err error) { errs <- err })

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	stranger := enclave.NewPlatform(as).Launch(enclave.CodeIdentity{Name: "unrelated", Version: "1"})
	responder.Countermeasure(stranger)
	select {
	case err := <-errs:
		if !errors.Is(err, rotation.ErrUnknownLayer) {
			t.Errorf("err = %v, want ErrUnknownLayer", err)
		}
	default:
		t.Error("no error reported for an unknown enclave")
	}
}

func TestResponderRotatesIALayer(t *testing.T) {
	d := deployAndSeed(t)
	rotated := make(chan *rotation.Result, 1)
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		func(r *rotation.Result) { rotated <- r },
		func(err error) { t.Errorf("responder error: %v", err) })

	iaEncl := d.IALayers[0].Enclave()
	loot := adversary.Loot{IA: iaEncl.Compromise()}
	responder.Countermeasure(iaEncl)

	select {
	case res := <-rotated:
		if res.Layer != rotation.LayerIA {
			t.Errorf("rotated %v, want IA", res.Layer)
		}
	default:
		t.Fatal("responder did not rotate")
	}
	if f := adversary.DeanonymizeDB(loot, dbEvents(d)); len(f.Items) != 0 {
		t.Errorf("IA loot still decrypts %d items", len(f.Items))
	}
}

func TestResponderSequentialBreaches(t *testing.T) {
	// After a first rotation, a second breach of the SAME layer must
	// rotate from the fresh baseline, not the original keys.
	d := deployAndSeed(t)
	var results []*rotation.Result
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		func(r *rotation.Result) { results = append(results, r) },
		func(err error) { t.Errorf("responder error: %v", err) })

	uaEncl := d.UALayers[0].Enclave()
	responder.Countermeasure(uaEncl)
	responder.Countermeasure(uaEncl) // second breach, same layer
	if len(results) != 2 {
		t.Fatalf("rotations = %d, want 2", len(results))
	}
	// The second rotation's fresh keys must decrypt the current DB.
	f := adversary.DeanonymizeDB(adversary.Loot{UA: map[string][]byte{
		"sk": nil, "k": results[1].Fresh.Permanent,
	}}, dbEvents(d))
	if len(f.Users) == 0 {
		t.Error("second rotation did not chain from the first")
	}
	// The FIRST rotation's keys are already dead.
	f = adversary.DeanonymizeDB(adversary.Loot{UA: map[string][]byte{
		"sk": nil, "k": results[0].Fresh.Permanent,
	}}, dbEvents(d))
	if len(f.Users) != 0 {
		t.Error("first rotation's keys still live after the second rotation")
	}
}

func TestResponderFlushesRegisteredCaches(t *testing.T) {
	// A breach of EITHER layer must flush every registered
	// recommendation cache before keys rotate: cached lists derive from
	// the pre-breach key world.
	d := deployAndSeed(t)
	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		nil, func(err error) { t.Errorf("responder error: %v", err) })

	cache := reccache.New(reccache.Config{})
	if err := cache.Put("", "pseudo-a", []string{"i1", "i2"}); err != nil {
		t.Fatal(err)
	}
	responder.AddCache(cache)

	gen := cache.Generation()
	responder.Countermeasure(d.UALayers[0].Enclave())
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after UA breach response, want 0", cache.Len())
	}
	if cache.Generation() != gen+1 {
		t.Errorf("generation %d → %d across breach response, want +1", gen, cache.Generation())
	}

	// An IA breach flushes again.
	if err := cache.Put("", "pseudo-b", []string{"i3"}); err != nil {
		t.Fatal(err)
	}
	responder.Countermeasure(d.IALayers[0].Enclave())
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after IA breach response, want 0", cache.Len())
	}
}
