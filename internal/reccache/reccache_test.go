package reccache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// fakeCharger is a bounded EPC budget, standing in for *enclave.Enclave.
type fakeCharger struct {
	mu     sync.Mutex
	budget int
	used   int
}

var errBudget = errors.New("fake EPC exhausted")

func (f *fakeCharger) ChargePages(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.used+n > f.budget {
		return errBudget
	}
	f.used += n
	return nil
}

func (f *fakeCharger) ReleasePages(n int) {
	f.mu.Lock()
	f.used -= n
	if f.used < 0 {
		f.used = 0
	}
	f.mu.Unlock()
}

func (f *fakeCharger) Used() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

func items(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("item-%04d", i)
	}
	return out
}

func TestGetPutHitMiss(t *testing.T) {
	c := New(Config{})
	c.SetPublishLive(true)
	if _, ok := c.Get("t", "u1"); ok {
		t.Fatal("hit on empty cache")
	}
	want := items(10)
	if err := c.Put("t", "u1", want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, ok := c.Get("t", "u1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("got %v, want %v", got, want)
	}
	// The returned slice must be a copy: mutating it must not poison the
	// cached entry.
	got[0] = "mutated"
	again, _ := c.Get("t", "u1")
	if again[0] != want[0] {
		t.Fatal("cached entry aliases the returned slice")
	}
	// Tenants are isolated.
	if _, ok := c.Get("other", "u1"); ok {
		t.Fatal("cross-tenant hit")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits / 2 misses", s)
	}
}

func TestTTLExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Minute, Now: clk.Now})
	c.SetPublishLive(true)
	if err := c.Put("t", "u", items(3)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(59 * time.Second)
	if _, ok := c.Get("t", "u"); !ok {
		t.Fatal("expired before TTL")
	}
	clk.Advance(2 * time.Second)
	if _, ok := c.Get("t", "u"); ok {
		t.Fatal("hit past TTL")
	}
	s := c.Stats()
	if s.EvictionsTTL != 1 {
		t.Fatalf("EvictionsTTL = %d, want 1", s.EvictionsTTL)
	}
	if c.Len() != 0 || c.Pages() != 0 {
		t.Fatalf("expired entry still resident: len=%d pages=%d", c.Len(), c.Pages())
	}
}

func TestLRUEvictionUnderPageBudget(t *testing.T) {
	// Each entry of 400 item-IDs ≈ 3.6 KB → 1 page. Budget 3 pages.
	c := New(Config{MaxPages: 3})
	c.SetPublishLive(true)
	for i := 0; i < 3; i++ {
		if err := c.Put("t", fmt.Sprintf("u%d", i), items(400)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch u0 so u1 becomes the LRU victim.
	if _, ok := c.Get("t", "u0"); !ok {
		t.Fatal("u0 missing")
	}
	if err := c.Put("t", "u3", items(400)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("t", "u1"); ok {
		t.Fatal("LRU victim u1 survived")
	}
	for _, u := range []string{"u0", "u2", "u3"} {
		if _, ok := c.Get("t", u); !ok {
			t.Fatalf("%s evicted, want resident", u)
		}
	}
	if s := c.Stats(); s.EvictionsLRU != 1 {
		t.Fatalf("EvictionsLRU = %d, want 1", s.EvictionsLRU)
	}
	if c.Pages() > 3 {
		t.Fatalf("pages = %d beyond budget 3", c.Pages())
	}
}

func TestEPCPressureEvictsInsteadOfFailing(t *testing.T) {
	// The enclave's budget (4 pages) is tighter than the cache's own
	// (100): charging fails first, and the cache must evict its way out.
	ch := &fakeCharger{budget: 4}
	c := New(Config{MaxPages: 100})
	c.Bind(ch)
	c.SetPublishLive(true)
	for i := 0; i < 10; i++ {
		if err := c.Put("t", fmt.Sprintf("u%d", i), items(400)); err != nil {
			t.Fatalf("Put u%d under EPC pressure: %v", i, err)
		}
	}
	if ch.Used() > 4 {
		t.Fatalf("charger used %d pages, budget 4", ch.Used())
	}
	if s := c.Stats(); s.EvictionsLRU == 0 {
		t.Fatal("no LRU evictions despite EPC pressure")
	}
	// Newest entries are the survivors.
	if _, ok := c.Get("t", "u9"); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestEPCExhaustedByOthersDropsFill(t *testing.T) {
	// Non-cache state holds the whole budget: the fill fails without
	// panicking, and the cache stays empty rather than wedged.
	ch := &fakeCharger{budget: 4}
	ch.used = 4
	c := New(Config{MaxPages: 100})
	c.Bind(ch)
	if err := c.Put("t", "u", items(3)); err == nil {
		t.Fatal("Put succeeded with zero EPC headroom")
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after failed fill", c.Len())
	}
}

func TestPutTooLarge(t *testing.T) {
	c := New(Config{MaxPages: 1})
	if err := c.Put("t", "u", items(2000)); !errors.Is(err, ErrEntryTooLarge) {
		t.Fatalf("err = %v, want ErrEntryTooLarge", err)
	}
}

func TestReplaceIsNotEviction(t *testing.T) {
	c := New(Config{})
	c.SetPublishLive(true)
	if err := c.Put("t", "u", items(3)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("t", "u", items(5)); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("t", "u")
	if !ok || len(got) != 5 {
		t.Fatalf("replace lost: ok=%v len=%d", ok, len(got))
	}
	if s := c.Stats(); s.EvictionsLRU != 0 || s.EvictionsTTL != 0 {
		t.Fatalf("replace counted as eviction: %+v", s)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestInvalidate(t *testing.T) {
	ch := &fakeCharger{budget: 100}
	c := New(Config{})
	c.Bind(ch)
	c.SetPublishLive(true)
	if err := c.Put("t", "u", items(3)); err != nil {
		t.Fatal(err)
	}
	if !c.Invalidate("t", "u") {
		t.Fatal("Invalidate found nothing")
	}
	if c.Invalidate("t", "u") {
		t.Fatal("second Invalidate found an entry")
	}
	if _, ok := c.Get("t", "u"); ok {
		t.Fatal("hit after invalidation")
	}
	if ch.Used() != 0 {
		t.Fatalf("charger used = %d after invalidate, want 0", ch.Used())
	}
	if s := c.Stats(); s.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", s.Invalidations)
	}
}

func TestFlushAndGeneration(t *testing.T) {
	ch := &fakeCharger{budget: 100}
	c := New(Config{})
	c.Bind(ch)
	c.SetPublishLive(true)
	for i := 0; i < 5; i++ {
		if err := c.Put("t", fmt.Sprintf("u%d", i), items(3)); err != nil {
			t.Fatal(err)
		}
	}
	g0 := c.Generation()
	if n := c.Flush(); n != 5 {
		t.Fatalf("Flush dropped %d, want 5", n)
	}
	if c.Generation() != g0+1 {
		t.Fatalf("generation %d → %d, want +1", g0, c.Generation())
	}
	if c.Len() != 0 || c.Pages() != 0 || ch.Used() != 0 {
		t.Fatalf("state after flush: len=%d pages=%d charged=%d", c.Len(), c.Pages(), ch.Used())
	}
	s := c.Stats()
	if s.Flushes != 1 || s.FlushedOut != 5 {
		t.Fatalf("flush stats = %+v", s)
	}
}

func TestPublishEpochGranularity(t *testing.T) {
	c := New(Config{})
	if err := c.Put("t", "u", items(3)); err != nil {
		t.Fatal(err)
	}
	c.Get("t", "u")
	c.Get("t", "miss")
	// Nothing published yet: the exported snapshot is frozen at zero.
	if s := c.Stats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Fatalf("stats moved before epoch publish: %+v", s)
	}
	if live := c.LiveStats(); live.Hits != 1 || live.Misses != 1 {
		t.Fatalf("live stats = %+v", live)
	}
	c.PublishEpoch()
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats after publish: %+v", s)
	}
	// Post-publish activity is again invisible until the next epoch.
	c.Get("t", "u")
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("hit leaked mid-epoch: %+v", s)
	}
}

func TestPublishEpochSweepsExpired(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{TTL: time.Second, Now: clk.Now})
	for i := 0; i < 3; i++ {
		if err := c.Put("t", fmt.Sprintf("u%d", i), items(3)); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Second)
	if n := c.ExpiredResident(); n != 3 {
		t.Fatalf("ExpiredResident = %d, want 3", n)
	}
	c.PublishEpoch()
	if n := c.ExpiredResident(); n != 0 {
		t.Fatalf("ExpiredResident after sweep = %d, want 0", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d after sweep", c.Len())
	}
	if s := c.Stats(); s.EvictionsTTL != 3 {
		t.Fatalf("EvictionsTTL = %d, want 3", s.EvictionsTTL)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("hit rate on zero lookups")
	}
	s = Stats{Hits: 3, Misses: 1}
	if got := s.HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %g, want 0.75", got)
	}
}

func TestDoCoalesces(t *testing.T) {
	c := New(Config{})
	c.SetPublishLive(true)
	const callers = 8
	var fetches atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]any, callers)
	shareds := make([]bool, callers)
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := c.Do(context.Background(), "k", func() (any, error) {
				fetches.Add(1)
				close(started)
				<-release
				return "payload", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], shareds[i] = v, shared
		}()
	}
	<-started
	// Give the followers a moment to pile onto the in-flight call.
	deadline := time.After(2 * time.Second)
	for c.LiveStats().Coalesced < callers-1 {
		select {
		case <-deadline:
			t.Fatalf("only %d followers joined", c.LiveStats().Coalesced)
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(release)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetch ran %d times, want 1", n)
	}
	leaders := 0
	for i := range results {
		if results[i] != "payload" {
			t.Fatalf("caller %d got %v", i, results[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if s := c.Stats(); s.Coalesced != callers-1 {
		t.Fatalf("Coalesced = %d, want %d", s.Coalesced, callers-1)
	}
}

func TestDoDistinctKeysDoNotCoalesce(t *testing.T) {
	c := New(Config{})
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Do(context.Background(), k, func() (any, error) {
				fetches.Add(1)
				time.Sleep(10 * time.Millisecond)
				return nil, nil
			})
		}()
	}
	wg.Wait()
	if n := fetches.Load(); n != 4 {
		t.Fatalf("fetches = %d, want 4", n)
	}
}

func TestDoFollowerContextCancel(t *testing.T) {
	c := New(Config{})
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go c.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, shared, err := c.Do(ctx, "k", func() (any, error) { return nil, nil })
		if !shared {
			t.Error("canceled follower reported shared=false")
		}
		done <- err
	}()
	// Wait until the follower is actually enqueued, then cancel it.
	deadline := time.After(2 * time.Second)
	for c.LiveStats().Coalesced == 0 {
		select {
		case <-deadline:
			t.Fatal("follower never joined")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled follower still blocked")
	}
}

func TestDoLeaderErrorShared(t *testing.T) {
	c := New(Config{})
	wantErr := errors.New("lrs down")
	_, shared, err := c.Do(context.Background(), "k", func() (any, error) { return nil, wantErr })
	if shared || !errors.Is(err, wantErr) {
		t.Fatalf("shared=%v err=%v", shared, err)
	}
	// The flight is gone: the next call runs its own fetch.
	v, shared, err := c.Do(context.Background(), "k", func() (any, error) { return 42, nil })
	if shared || err != nil || v != 42 {
		t.Fatalf("retry after error: v=%v shared=%v err=%v", v, shared, err)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	// Race-detector fodder: all entry points hammered at once.
	ch := &fakeCharger{budget: 8}
	c := New(Config{TTL: 10 * time.Millisecond, MaxPages: 6})
	c.Bind(ch)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				u := fmt.Sprintf("u%d", (g+i)%16)
				switch i % 6 {
				case 0:
					c.Put("t", u, items(100))
				case 1:
					c.Get("t", u)
				case 2:
					c.Invalidate("t", u)
				case 3:
					c.Do(context.Background(), u, func() (any, error) { return nil, nil })
				case 4:
					c.PublishEpoch()
				case 5:
					if i%60 == 5 {
						c.Flush()
					}
					c.Stats()
					c.LiveStats()
				}
			}
		}()
	}
	wg.Wait()
	if used := ch.Used(); used != c.Pages() {
		t.Fatalf("charger used %d pages, cache accounts %d", used, c.Pages())
	}
}
