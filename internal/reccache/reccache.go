// Package reccache is the in-enclave recommendation response cache of
// the IA layer. Recommendation workloads are heavily Zipf-skewed (the
// paper's MovieLens slice, like most RaaS traffic), and a recommendation
// list only changes when new ratings arrive or keys rotate — so a
// response cache inside the enclave (the X-Search pattern: cache behind
// the trusted boundary, never in the untrusted host) removes the
// IA→LRS round trip from the hot path without widening the attack
// surface.
//
// Privacy is a design constraint, not an afterthought:
//
//   - Entries are keyed by user pseudonym and hold the *pseudonymized*
//     recommendation list exactly as the LRS returned it. Nothing
//     client-encrypted is ever stored; the list is de-pseudonymized and
//     re-encrypted under the requesting client's temporary key k_u at
//     release time, inside an ECALL. A compromise of the enclave
//     therefore loots nothing beyond what the LRS database (which the
//     adversary reads anyway, §2.3) already gave it.
//   - Cache memory is charged against the owning enclave's EPC budget
//     through the Charger interface — the same discipline as
//     enclave.KV — and EPC pressure triggers LRU eviction, never
//     request failure.
//   - Hit/miss/eviction statistics are published at shuffle-epoch
//     granularity (PublishEpoch): a scraper watching /metrics between
//     two epoch flushes sees frozen counters, so the stat export grants
//     no sub-epoch signal about which request hit. (Hits themselves
//     re-enter the IA response shuffler — that part lives in
//     internal/proxy.)
//   - Flush drops every entry wholesale (key rotation, enclave
//     compromise) and bumps a generation counter the privacy auditor
//     checks: a cache that survives a breach un-flushed is an SLO
//     violation.
//
// The package also provides the request-coalescing primitive (Do): when
// concurrent GETs for the same pseudonym all miss, one LRS fetch runs
// and every caller shares its result.
package reccache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the EPC page granularity entries are charged at. It equals
// enclave.PageSize; the duplication avoids an enclave→reccache import
// the other way around.
const PageSize = 4096

// DefaultTTL bounds entry lifetime when the config leaves it zero.
// Recommendations are model outputs — they only change on retraining or
// new ratings — so a minute of staleness is the freshness the LRS itself
// offers between training runs.
const DefaultTTL = time.Minute

// DefaultMaxPages caps the cache's EPC share when the config leaves it
// zero: 2048 pages = 8 MB, well under the IA enclave's ~93 MB budget so
// pending-response KV state keeps priority.
const DefaultMaxPages = 2048

// Charger charges pages against an enclave's EPC budget. *enclave.Enclave
// implements it; tests substitute bounded fakes.
type Charger interface {
	// ChargePages reserves n EPC pages or fails with the enclave's
	// EPC-exhausted error.
	ChargePages(n int) error
	// ReleasePages returns n previously charged pages.
	ReleasePages(n int)
}

// Config parameterizes a cache.
type Config struct {
	// TTL is the per-entry lifetime (0 = DefaultTTL). Expired entries
	// miss, and the epoch sweep removes any the lookups did not.
	TTL time.Duration
	// MaxPages caps the cache's own EPC share (0 = DefaultMaxPages);
	// the enclave's global budget is enforced on top via the Charger.
	MaxPages int
	// Now overrides the clock for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = DefaultTTL
	}
	if c.MaxPages <= 0 {
		c.MaxPages = DefaultMaxPages
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is one snapshot of the cache's counters. Counter fields are
// lifetime totals; Entries and Pages are occupancy gauges at snapshot
// time.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Coalesced     uint64 // fetches that joined another caller's in-flight LRS fetch
	EvictionsLRU  uint64 // entries evicted under EPC/page pressure
	EvictionsTTL  uint64 // entries dropped past their TTL (lookup or sweep)
	Invalidations uint64 // entries dropped by a rating POST for their pseudonym
	Flushes       uint64 // wholesale flushes (rotation, compromise, shutdown)
	FlushedOut    uint64 // entries dropped across all flushes
	Entries       int
	Pages         int
}

// HitRate returns hits/(hits+misses), 0 before any lookup.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is one cached recommendation list.
type entry struct {
	key     string
	items   []string
	pages   int
	expires time.Time
	elem    *list.Element
}

// Cache is the in-enclave response cache. All methods are safe for
// concurrent use. Lookup and fill must only ever run inside ECALL
// handlers — the untrusted host interacts with the cache solely through
// the published Stats snapshot and the coalescing group.
type Cache struct {
	cfg     Config
	charger Charger

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used
	pages   int
	gen     uint64
	live    Stats

	// published is the epoch-granular snapshot metrics read; it only
	// advances on PublishEpoch (shuffle flush) unless publishLive is
	// set (no shuffler deployed, so there is no epoch to hide inside).
	published   atomic.Pointer[Stats]
	publishLive atomic.Bool

	fmu     sync.Mutex
	flights map[string]*flightCall
}

// New creates a cache. Bind must run before the first Put when the cache
// should charge a real enclave's EPC; unbound caches (tests) enforce
// only their own page budget.
func New(cfg Config) *Cache {
	c := &Cache{
		cfg:     cfg.withDefaults(),
		entries: make(map[string]*entry),
		lru:     list.New(),
		flights: make(map[string]*flightCall),
	}
	c.published.Store(&Stats{})
	return c
}

// Bind attaches the cache to the enclave whose EPC budget its entries
// charge. Called once, at enclave construction, before any traffic.
func (c *Cache) Bind(ch Charger) {
	c.mu.Lock()
	c.charger = ch
	c.mu.Unlock()
}

// SetPublishLive switches stat publication to immediate mode. Only the
// proxy layer sets it, and only when no shuffler is deployed: without
// shuffle epochs there is no 1/S bound for sub-epoch stat updates to
// erode.
func (c *Cache) SetPublishLive(v bool) {
	c.publishLive.Store(v)
	if v {
		c.mu.Lock()
		c.publishLocked()
		c.mu.Unlock()
	}
}

// TTL returns the configured entry lifetime.
func (c *Cache) TTL() time.Duration { return c.cfg.TTL }

// MaxPages returns the cache's own EPC page budget.
func (c *Cache) MaxPages() int { return c.cfg.MaxPages }

// key builds the entry key: the tenant qualifies the pseudonym exactly
// as it qualifies the layer keys.
func key(tenant, user string) string { return tenant + "\x00" + user }

// pagesFor charges an entry like enclave.KV charges a value: key bytes
// plus payload bytes, rounded up to whole pages.
func pagesFor(bytes int) int {
	if bytes == 0 {
		return 0
	}
	return (bytes + PageSize - 1) / PageSize
}

func entrySize(k string, items []string) int {
	n := len(k)
	for _, it := range items {
		n += len(it) + 1
	}
	return n
}

// Get returns the cached pseudonymized list for a pseudonym, recording a
// hit or miss. Expired entries miss and are released on the spot.
func (c *Cache) Get(tenant, user string) ([]string, bool) {
	k := key(tenant, user)
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.maybePublishLocked()
	e := c.entries[k]
	if e == nil {
		c.live.Misses++
		return nil, false
	}
	if now.After(e.expires) {
		c.removeLocked(e)
		c.live.EvictionsTTL++
		c.live.Misses++
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.live.Hits++
	return append([]string(nil), e.items...), true
}

// Put stores a pseudonymized recommendation list. Under page or EPC
// pressure it evicts LRU entries until the new one fits; the error
// return is for an entry that cannot fit even into an empty cache —
// callers treat the cache as best-effort and never fail a request on it.
func (c *Cache) Put(tenant, user string, items []string) error {
	k := key(tenant, user)
	need := pagesFor(entrySize(k, items))
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.maybePublishLocked()
	if old := c.entries[k]; old != nil {
		// A fill replacing an entry is fresher data for the same
		// pseudonym; the stale copy goes first and is not an eviction.
		c.removeLocked(old)
	}
	if need > c.cfg.MaxPages {
		return ErrEntryTooLarge
	}
	for c.pages+need > c.cfg.MaxPages {
		if !c.evictOldestLocked() {
			return ErrEntryTooLarge
		}
	}
	for {
		if c.charger == nil {
			break
		}
		if err := c.charger.ChargePages(need); err == nil {
			break
		} else if !c.evictOldestLocked() {
			// The enclave's EPC is exhausted by non-cache state and
			// there is nothing left to evict: the fill is dropped, the
			// request is not.
			return err
		}
	}
	e := &entry{key: k, items: append([]string(nil), items...), pages: need, expires: now.Add(c.cfg.TTL)}
	e.elem = c.lru.PushFront(e)
	c.entries[k] = e
	c.pages += need
	return nil
}

// ErrEntryTooLarge reports a value that exceeds the cache's entire page
// budget.
var ErrEntryTooLarge = errTooLarge{}

type errTooLarge struct{}

func (errTooLarge) Error() string { return "reccache: entry exceeds cache page budget" }

// Invalidate drops the entry for a pseudonym — the rating-POST hook: a
// new rating changes the user's profile, so the cached list for that
// pseudonym must not outlive it. Reports whether an entry was dropped.
func (c *Cache) Invalidate(tenant, user string) bool {
	k := key(tenant, user)
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.maybePublishLocked()
	e := c.entries[k]
	if e == nil {
		return false
	}
	c.removeLocked(e)
	c.live.Invalidations++
	return true
}

// Flush drops every entry and bumps the flush generation — the wholesale
// path for key rotation and enclave compromise. Returns the number of
// entries dropped.
func (c *Cache) Flush() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	defer c.maybePublishLocked()
	n := len(c.entries)
	for _, e := range c.entries {
		c.removeLocked(e)
	}
	c.gen++
	c.live.Flushes++
	c.live.FlushedOut += uint64(n)
	return n
}

// Generation returns the flush generation: it advances exactly once per
// Flush. The privacy auditor compares it across a breach to prove the
// cache did not carry entries over a compromise.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Pages returns the EPC pages currently charged by the cache.
func (c *Cache) Pages() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pages
}

// ExpiredResident counts entries past their TTL that are still holding
// EPC pages. The epoch sweep keeps this at zero; the auditor samples it
// as a freshness check.
func (c *Cache) ExpiredResident() int {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		if now.After(e.expires) {
			n++
		}
	}
	return n
}

// PublishEpoch sweeps expired entries and publishes the live counters as
// the exported snapshot. The proxy layer calls it on every shuffle
// flush, so the exported hit-rate only ever moves at epoch granularity —
// a /metrics scraper cannot tell which request inside an epoch hit.
func (c *Cache) PublishEpoch() {
	now := c.cfg.Now()
	c.mu.Lock()
	for _, e := range c.entries {
		if now.After(e.expires) {
			c.removeLocked(e)
			c.live.EvictionsTTL++
		}
	}
	c.publishLocked()
	c.mu.Unlock()
}

// Stats returns the published (epoch-granular) snapshot.
func (c *Cache) Stats() Stats { return *c.published.Load() }

// LiveStats returns the un-published counters, for tests and in-process
// assertions only — never export these on a scrapeable surface.
func (c *Cache) LiveStats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.live
	s.Entries = len(c.entries)
	s.Pages = c.pages
	return s
}

func (c *Cache) publishLocked() {
	s := c.live
	s.Entries = len(c.entries)
	s.Pages = c.pages
	c.published.Store(&s)
}

func (c *Cache) maybePublishLocked() {
	if c.publishLive.Load() {
		c.publishLocked()
	}
}

// removeLocked unlinks an entry and releases its pages. Callers account
// the reason themselves.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.pages -= e.pages
	if c.charger != nil {
		c.charger.ReleasePages(e.pages)
	}
}

// evictOldestLocked drops the least recently used entry, reporting false
// on an empty cache.
func (c *Cache) evictOldestLocked() bool {
	back := c.lru.Back()
	if back == nil {
		return false
	}
	c.removeLocked(back.Value.(*entry))
	c.live.EvictionsLRU++
	return true
}

// flightCall is one in-flight coalesced fetch.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// Do coalesces concurrent fetches for the same key (the user pseudonym,
// which the IA host sees on the LRS link anyway): the first caller runs
// fetch, every concurrent caller blocks until it finishes and shares the
// result. shared reports whether this caller joined another's fetch —
// followers must not re-fill the cache. A follower whose context dies
// first leaves with its context error; a follower that inherits the
// leader's error falls back to its own fetch at the call site.
func (c *Cache) Do(ctx context.Context, key string, fetch func() (any, error)) (v any, shared bool, err error) {
	c.fmu.Lock()
	if call, ok := c.flights[key]; ok {
		c.fmu.Unlock()
		c.mu.Lock()
		c.live.Coalesced++
		c.maybePublishLocked()
		c.mu.Unlock()
		select {
		case <-call.done:
			return call.val, true, call.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	call := &flightCall{done: make(chan struct{})}
	c.flights[key] = call
	c.fmu.Unlock()

	call.val, call.err = fetch()

	c.fmu.Lock()
	delete(c.flights, key)
	c.fmu.Unlock()
	close(call.done)
	return call.val, false, call.err
}
