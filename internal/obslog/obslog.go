// Package obslog is the deployment's structured logger. It wraps
// log/slog with one non-negotiable rule: no log line ever carries a raw
// user identifier, item identifier, pseudonym, or key byte. PProx's
// privacy argument covers the wire (encryption), the proxy interior
// (enclaves), and telemetry (epoch-granular traces/metrics) — an
// operator log that prints "user=alice" would re-open the exact channel
// those layers close, and X-Search/Prochlo both call out log pipelines
// as the place SGX deployments habitually leak.
//
// Two mechanisms enforce the rule:
//
//  1. Typed secrets. Call sites wrap sensitive values in UserID, ItemID,
//     Pseudonym, or Key. These implement slog.LogValuer, so the value is
//     replaced before any handler sees it: identifiers render as a
//     salted hash (stable within one process, useless across processes
//     or against a dictionary), key material as "[redacted]".
//  2. A redaction handler. Defence in depth for call sites that forget
//     the types: any attribute whose key names a sensitive field
//     ("user", "item", "pseudonym", "key", ...) has its string value
//     hashed by the handler itself, recursively through groups.
//
// Everything else — levels, grouping, JSON output — is plain slog, so
// the logger composes with any slog tooling.
package obslog

import (
	"context"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"log/slog"
	"strings"
)

// salt is drawn once per process. Hashes are therefore joinable within
// one process's log stream (an operator can count distinct users in a
// burst) but carry nothing across restarts and cannot be brute-forced
// from a candidate identifier list without the salt.
var salt = func() []byte {
	b := make([]byte, 32)
	if _, err := rand.Read(b); err != nil {
		// A logger must not take the process down; an unseeded hash
		// still never reveals the raw value, only weakens cross-run
		// unlinkability to the strength of HMAC with a known key.
		copy(b, "pprox-obslog-fallback-salt------")
	}
	return b
}()

// Hash returns the redacted rendering of an identifier: the first 8 hex
// characters of HMAC-SHA256(salt, v). Exported so tests can compute the
// expected rendering; the salt itself stays private to the package.
func Hash(v string) string {
	m := hmac.New(sha256.New, salt)
	m.Write([]byte(v))
	return hex.EncodeToString(m.Sum(nil))[:8]
}

// Redacted is the rendering of values that must not appear even hashed
// (key material, ciphertext bodies).
const Redacted = "[redacted]"

// UserID is a raw user identifier. It logs as "user:<hash>".
type UserID string

// LogValue implements slog.LogValuer.
func (u UserID) LogValue() slog.Value { return slog.StringValue("user:" + Hash(string(u))) }

// ItemID is a raw item identifier. It logs as "item:<hash>".
type ItemID string

// LogValue implements slog.LogValuer.
func (i ItemID) LogValue() slog.Value { return slog.StringValue("item:" + Hash(string(i))) }

// Pseudonym is a pseudonymized identifier (det_enc output in base64).
// Pseudonyms are already opaque to anyone without the permanent key, but
// logging them raw would let a log reader join log lines against the LRS
// database or network captures — so they hash like everything else.
type Pseudonym string

// LogValue implements slog.LogValuer.
func (p Pseudonym) LogValue() slog.Value { return slog.StringValue("pseudo:" + Hash(string(p))) }

// Key is key material or any other value that must render without even a
// hash. It logs as "[redacted]".
type Key []byte

// LogValue implements slog.LogValuer.
func (Key) LogValue() slog.Value { return slog.StringValue(Redacted) }

// sensitiveKeys are attribute names whose raw string values the handler
// hashes even when the call site forgot the typed wrappers. Matching is
// case-insensitive on the final path element of the key.
var sensitiveKeys = map[string]bool{
	"user":      true,
	"user_id":   true,
	"item":      true,
	"item_id":   true,
	"pseudonym": true,
	"pseudo":    true,
	"idem":      true,
	"key":       true,
	"secret":    true,
	"token":     true,
}

// sensitive reports whether an attribute key names a protected field.
func sensitive(key string) bool {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	return sensitiveKeys[strings.ToLower(key)]
}

// scrubValue redacts a resolved slog value reached through a sensitive
// key: strings hash, byte slices and anything else redact outright.
func scrubValue(v slog.Value) slog.Value {
	v = v.Resolve()
	switch v.Kind() {
	case slog.KindString:
		return slog.StringValue("redacted:" + Hash(v.String()))
	case slog.KindGroup:
		return scrubGroup(v.Group())
	default:
		return slog.StringValue(Redacted)
	}
}

func scrubGroup(attrs []slog.Attr) slog.Value {
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = scrubAttr(a)
	}
	return slog.GroupValue(out...)
}

// scrubAttr applies the key-based redaction rule to one attribute,
// recursing into groups so "request.user" is as protected as "user".
func scrubAttr(a slog.Attr) slog.Attr {
	if sensitive(a.Key) {
		return slog.Attr{Key: a.Key, Value: scrubValue(a.Value)}
	}
	if v := a.Value.Resolve(); v.Kind() == slog.KindGroup {
		return slog.Attr{Key: a.Key, Value: scrubGroup(v.Group())}
	}
	return a
}

// Handler wraps a slog.Handler with the key-based redaction pass. The
// typed secrets do not need it — they self-redact via LogValue — but it
// catches plain attributes whose key marks them sensitive.
type Handler struct {
	inner slog.Handler
}

// NewHandler wraps inner with redaction.
func NewHandler(inner slog.Handler) *Handler { return &Handler{inner: inner} }

// Enabled implements slog.Handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler, scrubbing record attributes.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	out := slog.NewRecord(r.Time, r.Level, r.Message, r.PC)
	r.Attrs(func(a slog.Attr) bool {
		out.AddAttrs(scrubAttr(a))
		return true
	})
	return h.inner.Handle(ctx, out)
}

// WithAttrs implements slog.Handler, scrubbing pre-bound attributes.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	scrubbed := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		scrubbed[i] = scrubAttr(a)
	}
	return &Handler{inner: h.inner.WithAttrs(scrubbed)}
}

// WithGroup implements slog.Handler.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name)}
}

// New builds the standard component logger: JSON lines on w, filtered at
// level (nil means slog.LevelInfo), redaction on, and a "component"
// attribute identifying the binary or subsystem.
func New(w io.Writer, component string, level slog.Leveler) *slog.Logger {
	if level == nil {
		level = slog.LevelInfo
	}
	h := NewHandler(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
	return slog.New(h).With(slog.String("component", component))
}

// Nop returns a logger that discards everything, for components whose
// logger field was never set.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// ParseLevel maps the -log-level flag values to slog levels; unknown
// strings select Info.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}
