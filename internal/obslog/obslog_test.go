package obslog

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

// logLine runs fn against a fresh logger and returns the raw output plus
// the decoded first JSON record.
func logLine(t *testing.T, fn func(l *slog.Logger)) (string, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	fn(New(&buf, "test", slog.LevelDebug))
	out := buf.String()
	var rec map[string]any
	line := out
	if i := strings.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	if line != "" {
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("output is not JSON: %v (%q)", err, line)
		}
	}
	return out, rec
}

func TestTypedSecretsRedact(t *testing.T) {
	out, rec := logLine(t, func(l *slog.Logger) {
		l.Info("event ingested",
			"who", UserID("alice"),
			"what", ItemID("war-and-peace"),
			"as", Pseudonym("cGFzc3dvcmQ="),
			"with", Key([]byte("super-secret-key-bytes")))
	})
	for _, raw := range []string{"alice", "war-and-peace", "cGFzc3dvcmQ=", "super-secret"} {
		if strings.Contains(out, raw) {
			t.Errorf("raw secret %q leaked into log output: %s", raw, out)
		}
	}
	if got := rec["who"]; got != "user:"+Hash("alice") {
		t.Errorf("UserID rendered %v, want salted hash", got)
	}
	if got := rec["what"]; got != "item:"+Hash("war-and-peace") {
		t.Errorf("ItemID rendered %v, want salted hash", got)
	}
	if got := rec["as"]; got != "pseudo:"+Hash("cGFzc3dvcmQ=") {
		t.Errorf("Pseudonym rendered %v, want salted hash", got)
	}
	if got := rec["with"]; got != Redacted {
		t.Errorf("Key rendered %v, want %q", got, Redacted)
	}
}

func TestSensitiveKeysScrubbedWithoutTypes(t *testing.T) {
	// A forgetful call site logs raw strings under sensitive keys; the
	// handler must still redact them.
	out, rec := logLine(t, func(l *slog.Logger) {
		l.Warn("sloppy", "user", "alice", "Item", "tolstoy", "secret", []byte{1, 2})
	})
	if strings.Contains(out, "alice") || strings.Contains(out, "tolstoy") {
		t.Fatalf("key-based redaction failed: %s", out)
	}
	if got := rec["user"]; got != "redacted:"+Hash("alice") {
		t.Errorf("user rendered %v", got)
	}
	if got := rec["Item"]; got != "redacted:"+Hash("tolstoy") {
		t.Errorf("case-insensitive match failed: %v", got)
	}
	if got := rec["secret"]; got != Redacted {
		t.Errorf("non-string sensitive value rendered %v, want %q", got, Redacted)
	}
}

func TestGroupsAndWithAttrsScrubbed(t *testing.T) {
	out, _ := logLine(t, func(l *slog.Logger) {
		l.With("user", "bound-user").WithGroup("req").Info("handled",
			slog.Group("inner", slog.String("pseudonym", "raw-pseudo")),
			"node", "ua-0")
	})
	if strings.Contains(out, "bound-user") {
		t.Errorf("WithAttrs-bound sensitive value leaked: %s", out)
	}
	if strings.Contains(out, "raw-pseudo") {
		t.Errorf("group-nested sensitive value leaked: %s", out)
	}
	if !strings.Contains(out, "ua-0") {
		t.Errorf("benign attribute was over-redacted: %s", out)
	}
}

func TestHashStableWithinProcessAndNeverRaw(t *testing.T) {
	if Hash("x") != Hash("x") {
		t.Error("hash not stable within process")
	}
	if Hash("x") == Hash("y") {
		t.Error("distinct values collide (astronomically unlikely)")
	}
	if strings.Contains(Hash("alice"), "alice") {
		t.Error("hash contains the raw value")
	}
	if len(Hash("alice")) != 8 {
		t.Errorf("hash length = %d, want 8", len(Hash("alice")))
	}
}

func TestNopAndLevels(t *testing.T) {
	Nop().Error("goes nowhere") // must not panic
	if ParseLevel("debug") != slog.LevelDebug || ParseLevel("WARN") != slog.LevelWarn ||
		ParseLevel("error") != slog.LevelError || ParseLevel("bogus") != slog.LevelInfo {
		t.Error("ParseLevel mapping wrong")
	}
}
