package message

import (
	"testing"

	"pprox/internal/ppcrypto"
)

// Fuzz targets guard the parsers that face adversary-controlled bytes:
// the proxy layers and the user-side library must never panic on hostile
// input, only reject it. Run with `go test -fuzz=FuzzDecodeItemList
// ./internal/message` to explore; the seed corpus runs in normal tests.

func FuzzDecodeItemList(f *testing.F) {
	good, _ := EncodeItemList([]string{"a", "b"})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, MaxRecommendations*ppcrypto.IDBlockSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeItemList(data)
		if err == nil && len(items) > MaxRecommendations {
			t.Fatalf("decoded %d items, above maximum", len(items))
		}
	})
}

func FuzzUnpadID(f *testing.F) {
	block, _ := ppcrypto.PadID("user-1")
	f.Add(block)
	f.Add(make([]byte, ppcrypto.IDBlockSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := ppcrypto.UnpadID(data)
		if err == nil && len(id) > ppcrypto.IDBlockSize-2 {
			t.Fatalf("unpadded %d bytes from a %d-byte block", len(id), ppcrypto.IDBlockSize)
		}
	})
}

func FuzzUnmarshalPostRequest(f *testing.F) {
	f.Add([]byte(`{"enc_user":"AAAA","enc_item":"BBBB"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req PostRequest
		_ = Unmarshal(data, &req) // must never panic
	})
}

func FuzzDecode64(f *testing.F) {
	f.Add("QUFBQQ==")
	f.Add("!!!")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = Decode64(s) // must never panic
	})
}

func FuzzDecodeBatchFrame(f *testing.F) {
	good, _ := MarshalBatchEpoch(nil, 7, []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("opaque")},
		{ID: 1, Kind: BatchKindPost, Body: []byte("opaque-2")},
	})
	f.Add(good)
	f.Add(good[:FrameHeaderSize])
	f.Add(good[:len(good)-1])
	f.Add(AppendErrorFrame(nil, 1, 503, "down"))
	// Telemetry frames ride the same decoder: seed a well-formed one, a
	// truncated one, and a kind-byte forgery of the batch seed.
	tele, _ := AppendBatchFrame(nil, FrameTelemetry, 3,
		[]BatchEntry{{ID: 0, Kind: BatchKindPost, Body: []byte(`{"node":"ua-0","seq":1}`)}})
	f.Add(tele)
	f.Add(tele[:len(tele)-2])
	forged := append([]byte(nil), good...)
	forged[5] = FrameTelemetry
	f.Add(forged)
	f.Add([]byte("PPXB"))
	f.Add([]byte(`{"v":1,"entries":[{"id":0}]}`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic or over-read; on success the contract holds:
		// bounded entry count, unique in-range ids, bodies inside data.
		_, entries, err := UnmarshalBatchEpoch(data)
		if err != nil {
			return
		}
		if len(entries) == 0 || len(entries) > MaxFrameEntries {
			t.Fatalf("accepted %d entries", len(entries))
		}
		seen := make(map[int]struct{}, len(entries))
		for _, e := range entries {
			if e.ID < 0 {
				t.Fatalf("accepted negative id %d", e.ID)
			}
			if _, dup := seen[e.ID]; dup {
				t.Fatalf("accepted duplicate id %d", e.ID)
			}
			seen[e.ID] = struct{}{}
			if len(e.Body) > len(data) {
				t.Fatalf("body of %d bytes from a %d-byte input", len(e.Body), len(data))
			}
		}
		_, _, _, _ = epochStatusTextProbe(data)
	})
}

// epochStatusTextProbe exercises the error-frame decoder on the same
// corpus; both decoders face the same adversary-controlled stream.
func epochStatusTextProbe(data []byte) (uint64, int, string, error) {
	return DecodeErrorFrame(data)
}
