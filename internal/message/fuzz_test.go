package message

import (
	"testing"

	"pprox/internal/ppcrypto"
)

// Fuzz targets guard the parsers that face adversary-controlled bytes:
// the proxy layers and the user-side library must never panic on hostile
// input, only reject it. Run with `go test -fuzz=FuzzDecodeItemList
// ./internal/message` to explore; the seed corpus runs in normal tests.

func FuzzDecodeItemList(f *testing.F) {
	good, _ := EncodeItemList([]string{"a", "b"})
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, MaxRecommendations*ppcrypto.IDBlockSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := DecodeItemList(data)
		if err == nil && len(items) > MaxRecommendations {
			t.Fatalf("decoded %d items, above maximum", len(items))
		}
	})
}

func FuzzUnpadID(f *testing.F) {
	block, _ := ppcrypto.PadID("user-1")
	f.Add(block)
	f.Add(make([]byte, ppcrypto.IDBlockSize))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, err := ppcrypto.UnpadID(data)
		if err == nil && len(id) > ppcrypto.IDBlockSize-2 {
			t.Fatalf("unpadded %d bytes from a %d-byte block", len(id), ppcrypto.IDBlockSize)
		}
	})
}

func FuzzUnmarshalPostRequest(f *testing.F) {
	f.Add([]byte(`{"enc_user":"AAAA","enc_item":"BBBB"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var req PostRequest
		_ = Unmarshal(data, &req) // must never panic
	})
}

func FuzzDecode64(f *testing.F) {
	f.Add("QUFBQQ==")
	f.Add("!!!")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		_, _ = Decode64(s) // must never panic
	})
}
