package message

import (
	"bytes"
	"errors"
	"testing"
)

func TestBatchEnvelopeRoundTrip(t *testing.T) {
	in := []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("opaque-0")},
		{ID: 1, Kind: BatchKindPost, Body: []byte("opaque-1")},
		{ID: 2, Kind: BatchKindGet, Status: 503, Body: nil},
	}
	data, err := MarshalBatch(in)
	if err != nil {
		t.Fatalf("MarshalBatch: %v", err)
	}
	out, err := UnmarshalBatch(data)
	if err != nil {
		t.Fatalf("UnmarshalBatch: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("entries = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Kind != in[i].Kind ||
			out[i].Status != in[i].Status || !bytes.Equal(out[i].Body, in[i].Body) {
			t.Errorf("entry %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestBatchEnvelopeRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"not json", []byte("{"), ErrBatchEnvelope},
		{"wrong version", []byte(`{"v":99,"entries":[{"id":0}]}`), ErrBatchVersion},
		{"no entries", []byte(`{"v":1,"entries":[]}`), ErrBatchEnvelope},
		{"duplicate ids", []byte(`{"v":1,"entries":[{"id":3},{"id":3}]}`), ErrBatchEnvelope},
		{"negative id", []byte(`{"v":1,"entries":[{"id":-1}]}`), ErrBatchEnvelope},
	}
	for _, tc := range cases {
		if _, err := UnmarshalBatch(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestBatchKindPaths(t *testing.T) {
	for kind, path := range map[string]string{
		BatchKindGet:  QueriesPath,
		BatchKindPost: EventsPath,
	} {
		got, ok := BatchKindPath(kind)
		if !ok || got != path {
			t.Errorf("BatchKindPath(%q) = %q/%v, want %q", kind, got, ok, path)
		}
		back, ok := PathBatchKind(path)
		if !ok || back != kind {
			t.Errorf("PathBatchKind(%q) = %q/%v, want %q", path, back, ok, kind)
		}
	}
	if _, ok := BatchKindPath("nope"); ok {
		t.Error("BatchKindPath accepted an unknown kind")
	}
	if _, ok := PathBatchKind("/nope"); ok {
		t.Error("PathBatchKind accepted an unknown path")
	}
}
