package message

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestFrameRoundTripWithEpoch(t *testing.T) {
	in := []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("opaque-get")},
		{ID: 1, Kind: BatchKindPost, Body: bytes.Repeat([]byte("x"), 300)},
		{ID: 2, Kind: BatchKindGet, Status: 503, Body: nil},
	}
	data, err := MarshalBatchEpoch(nil, 42, in)
	if err != nil {
		t.Fatalf("MarshalBatchEpoch: %v", err)
	}
	if !IsFrame(data) {
		t.Fatal("MarshalBatchEpoch did not produce a frame")
	}
	epoch, out, err := UnmarshalBatchEpoch(data)
	if err != nil {
		t.Fatalf("UnmarshalBatchEpoch: %v", err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d, want 42", epoch)
	}
	if len(out) != len(in) {
		t.Fatalf("entries = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Kind != in[i].Kind ||
			out[i].Status != in[i].Status || !bytes.Equal(out[i].Body, in[i].Body) {
			t.Errorf("entry %d round-tripped to %+v, want %+v", i, out[i], in[i])
		}
	}
}

// Every slot in a frame must have the same size — the constant-size
// discipline of §4.3 at frame granularity — and the payload must be that
// slot size times the count, quantized, with no per-entry length leaking.
func TestFrameSlotsAreConstantSize(t *testing.T) {
	in := []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("a")},
		{ID: 1, Kind: BatchKindPost, Body: bytes.Repeat([]byte("b"), 200)},
		{ID: 2, Kind: BatchKindGet, Body: []byte{}},
	}
	data, err := MarshalBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ParseFrameHeader(data)
	if err != nil {
		t.Fatal(err)
	}
	if h.SlotSize%SlotQuantum != 0 {
		t.Fatalf("slot size %d not a multiple of the quantum", h.SlotSize)
	}
	if want := 3 * (slotHeaderSize + h.SlotSize); h.PayloadLen != want {
		t.Fatalf("payload = %d, want %d (3 constant-size slots)", h.PayloadLen, want)
	}
	if len(data) != h.FrameSize() {
		t.Fatalf("frame is %d bytes, header says %d", len(data), h.FrameSize())
	}
	// Two batches whose bodies differ in length (within a quantum) must
	// produce byte-identical frame geometry.
	other, err := MarshalBatch([]BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: bytes.Repeat([]byte("c"), 60)},
		{ID: 1, Kind: BatchKindPost, Body: bytes.Repeat([]byte("d"), 201)},
		{ID: 2, Kind: BatchKindGet, Body: []byte("ee")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(other) != len(data) {
		t.Fatalf("frames differ in size (%d vs %d) for same-quantum bodies", len(other), len(data))
	}
}

// A recycled encode buffer must not leak a previous frame's bytes through
// the padding tail.
func TestFrameEncodeIntoDirtyBuffer(t *testing.T) {
	dirty := bytes.Repeat([]byte{0xAB}, 4096)
	data, err := MarshalBatchEpoch(dirty[:0], 7, []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("short")},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, out, err := UnmarshalBatchEpoch(data)
	if err != nil {
		t.Fatalf("decode from dirty buffer: %v", err)
	}
	if string(out[0].Body) != "short" {
		t.Fatalf("body = %q", out[0].Body)
	}
	h, _ := ParseFrameHeader(data)
	slot := data[FrameHeaderSize+slotHeaderSize : FrameHeaderSize+slotHeaderSize+h.SlotSize]
	for i := len("short") + 1; i < len(slot); i++ {
		if slot[i] != 0 {
			t.Fatalf("padding byte %d = %#x, want 0 (stale buffer leak)", i, slot[i])
		}
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	data := AppendErrorFrame(nil, 9, 503, "next hop unavailable")
	epoch, status, text, err := DecodeErrorFrame(data)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 9 || status != 503 || text != "next hop unavailable" {
		t.Fatalf("got (%d, %d, %q)", epoch, status, text)
	}
	// Error frames are not entry frames.
	if _, _, err := DecodeBatchFrame(data); !errors.Is(err, ErrBatchEnvelope) {
		t.Fatalf("DecodeBatchFrame(error frame): err = %v", err)
	}
}

// Header bytes 6–7 must be a literal CRLF: it is what makes a
// frame-illiterate HTTP/1.x server terminate its request-line read and
// answer immediately, so the hopwire client's unsupported-peer detection
// never depends on a newline happening to occur in ciphertext. The
// decoder enforces it so a fuzzer or hostile peer cannot smuggle frames
// without the property.
func TestFrameHeaderCarriesCRLF(t *testing.T) {
	batch, err := MarshalBatchEpoch(nil, 1, []BatchEntry{{ID: 0, Kind: BatchKindGet, Body: []byte("b")}})
	if err != nil {
		t.Fatal(err)
	}
	for name, frame := range map[string][]byte{
		"batch": batch,
		"error": AppendErrorFrame(nil, 1, 500, "x"),
	} {
		if frame[6] != '\r' || frame[7] != '\n' {
			t.Errorf("%s frame header bytes 6-7 = %q, want CRLF", name, frame[6:8])
		}
		bad := append([]byte(nil), frame...)
		bad[6], bad[7] = 0, 0
		if _, err := ParseFrameHeader(bad); !errors.Is(err, ErrBatchEnvelope) {
			t.Errorf("%s frame without CRLF: err = %v, want ErrBatchEnvelope", name, err)
		}
	}
}

func TestFrameDecodeRejectsBadInput(t *testing.T) {
	good, err := MarshalBatchEpoch(nil, 1, []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("body")},
		{ID: 1, Kind: BatchKindPost, Body: []byte("body2")},
	})
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(b []byte)) []byte {
		b := append([]byte(nil), good...)
		f(b)
		return b
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", []byte{}, ErrNotFrame},
		{"bad magic", mutate(func(b []byte) { b[0] = 'X' }), ErrNotFrame},
		{"bad version", mutate(func(b []byte) { b[4] = 99 }), ErrBatchVersion},
		{"unknown frame kind", mutate(func(b []byte) { b[5] = 77 }), ErrBatchEnvelope},
		{"truncated header", good[:FrameHeaderSize-1], ErrBatchEnvelope},
		{"truncated payload", good[:len(good)-3], ErrBatchEnvelope},
		{"trailing garbage", append(append([]byte(nil), good...), 0xFF), ErrBatchEnvelope},
		{"zero count", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[16:20], 0) }), ErrBatchEnvelope},
		{"oversized count", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[16:20], 1<<24) }), ErrBatchEnvelope},
		{"oversized payload len", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[24:28], MaxFramePayload+1) }), ErrBatchEnvelope},
		{"slot size mismatch", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[20:24], SlotQuantum*100) }), ErrBatchEnvelope},
		{"unquantized slot size", mutate(func(b []byte) { binary.BigEndian.PutUint32(b[20:24], 65) }), ErrBatchEnvelope},
		{"duplicate ids", mutate(func(b []byte) {
			h, _ := ParseFrameHeader(b)
			second := FrameHeaderSize + slotHeaderSize + h.SlotSize
			binary.BigEndian.PutUint32(b[second:second+4], 0)
		}), ErrBatchEnvelope},
		{"bad entry kind code", mutate(func(b []byte) { b[FrameHeaderSize+4] = 9 }), ErrBatchEnvelope},
		{"broken padding", mutate(func(b []byte) {
			h, _ := ParseFrameHeader(b)
			// Zero the whole first slot body: no 0x80 terminator anywhere.
			clear(b[FrameHeaderSize+slotHeaderSize : FrameHeaderSize+slotHeaderSize+h.SlotSize])
		}), ErrBatchEnvelope},
	}
	for _, tc := range cases {
		if _, _, err := UnmarshalBatchEpoch(tc.data); err == nil {
			t.Errorf("%s: decode accepted bad input", tc.name)
		} else if tc.want != nil && !errors.Is(err, tc.want) {
			// Bad magic falls through to the JSON path, which reports
			// ErrBatchEnvelope; accept either classification there.
			if !(errors.Is(tc.want, ErrNotFrame) && errors.Is(err, ErrBatchEnvelope)) {
				t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
			}
		}
	}
}

// The encoder must reject entries the frame cannot represent instead of
// truncating them.
func TestFrameEncodeRejectsUnrepresentable(t *testing.T) {
	cases := []struct {
		name    string
		entries []BatchEntry
	}{
		{"no entries", nil},
		{"negative id", []BatchEntry{{ID: -1}}},
		{"huge id", []BatchEntry{{ID: MaxFrameEntries + 1}}},
		{"bad kind", []BatchEntry{{ID: 0, Kind: "weird"}}},
		{"status overflow", []BatchEntry{{ID: 0, Status: 1 << 17}}},
	}
	for _, tc := range cases {
		if _, err := MarshalBatch(tc.entries); err == nil {
			t.Errorf("%s: encoder accepted it", tc.name)
		}
	}
}

// Rolling upgrade: a binary-era receiver must still accept the JSON v1
// envelope byte-for-byte.
func TestUnmarshalBatchAcceptsLegacyJSON(t *testing.T) {
	in := []BatchEntry{
		{ID: 0, Kind: BatchKindGet, Body: []byte("legacy")},
		{ID: 1, Kind: BatchKindPost, Body: []byte("bytes")},
	}
	data, err := MarshalBatchJSON(in)
	if err != nil {
		t.Fatal(err)
	}
	if IsFrame(data) {
		t.Fatal("JSON envelope sniffed as a frame")
	}
	out, err := UnmarshalBatch(data)
	if err != nil {
		t.Fatalf("UnmarshalBatch(JSON): %v", err)
	}
	for i := range in {
		if out[i].ID != in[i].ID || out[i].Kind != in[i].Kind || !bytes.Equal(out[i].Body, in[i].Body) {
			t.Errorf("entry %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

// The batch marshal hot path must stay flat: one buffer for the frame,
// one slice header escape — not per-entry allocations.
func TestMarshalBatchAllocsFlat(t *testing.T) {
	entries := make([]BatchEntry, 32)
	for i := range entries {
		entries[i] = BatchEntry{ID: i, Kind: BatchKindGet, Body: bytes.Repeat([]byte("x"), 256)}
	}
	buf := make([]byte, 0, 1<<16)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := MarshalBatchEpoch(buf, 1, entries); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("MarshalBatchEpoch into a pre-sized buffer allocates %.0f objects/op, want ≤ 1", allocs)
	}
}
