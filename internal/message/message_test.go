package message

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"pprox/internal/ppcrypto"
)

func TestEncodeDecodeItemListRoundTrip(t *testing.T) {
	cases := [][]string{
		nil,
		{},
		{"item-1"},
		{"a", "b", "c"},
		manyItems(MaxRecommendations),
	}
	for _, items := range cases {
		data, err := EncodeItemList(items)
		if err != nil {
			t.Fatalf("EncodeItemList(%v): %v", items, err)
		}
		got, err := DecodeItemList(data)
		if err != nil {
			t.Fatalf("DecodeItemList: %v", err)
		}
		want := items
		if want == nil {
			want = []string{}
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
	}
}

func manyItems(n int) []string {
	items := make([]string, n)
	for i := range items {
		items[i] = strings.Repeat("i", i+1)
	}
	return items
}

func TestEncodeItemListConstantSize(t *testing.T) {
	// §4.3: the encoded list must have the same size whether the LRS
	// returned 0, 1, or 20 recommendations.
	sizes := map[int]bool{}
	for _, items := range [][]string{{}, {"one"}, manyItems(MaxRecommendations)} {
		data, err := EncodeItemList(items)
		if err != nil {
			t.Fatal(err)
		}
		sizes[len(data)] = true
	}
	if len(sizes) != 1 {
		t.Errorf("item-list sizes vary: %v", sizes)
	}
}

func TestEncodeItemListRejectsOverflow(t *testing.T) {
	_, err := EncodeItemList(manyItems(MaxRecommendations + 1))
	if !errors.Is(err, ErrTooManyItems) {
		t.Fatalf("err=%v, want ErrTooManyItems", err)
	}
}

func TestDecodeItemListRejectsWrongSize(t *testing.T) {
	if _, err := DecodeItemList(make([]byte, 13)); !errors.Is(err, ErrMalformedList) {
		t.Fatalf("err=%v, want ErrMalformedList", err)
	}
}

func TestItemListProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		items := make([]string, 0, MaxRecommendations)
		for _, r := range raw {
			if len(items) == MaxRecommendations {
				break
			}
			if len(r) > ppcrypto.IDBlockSize-2 {
				r = r[:ppcrypto.IDBlockSize-2]
			}
			items = append(items, string(r))
		}
		data, err := EncodeItemList(items)
		if err != nil {
			return false
		}
		got, err := DecodeItemList(data)
		if err != nil {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range got {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBase64RoundTrip(t *testing.T) {
	in := []byte{0, 1, 2, 255, 254}
	out, err := Decode64(Encode64(in))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(in) {
		t.Error("base64 round trip mismatch")
	}
	if _, err := Decode64("!!not base64!!"); err == nil {
		t.Error("Decode64 accepted garbage")
	}
}

func TestJSONEnvelopes(t *testing.T) {
	post := PostRequest{EncUser: "AAA", EncItem: "BBB", Payload: "4.5"}
	b, err := Marshal(post)
	if err != nil {
		t.Fatal(err)
	}
	var got PostRequest
	if err := Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != post {
		t.Errorf("post round trip: got %+v", got)
	}

	get := GetRequest{EncUser: "AAA", EncTempKey: "KKK"}
	b, err = Marshal(get)
	if err != nil {
		t.Fatal(err)
	}
	var gotGet GetRequest
	if err := Unmarshal(b, &gotGet); err != nil {
		t.Fatal(err)
	}
	if gotGet != get {
		t.Errorf("get round trip: got %+v", gotGet)
	}

	if err := Unmarshal([]byte("{"), &gotGet); err == nil {
		t.Error("Unmarshal accepted truncated JSON")
	}
}

func TestGetRequestTempKeyOmitted(t *testing.T) {
	// The IA layer strips the temp key before contacting the LRS; the
	// serialized form must not leak an empty marker field.
	b, err := Marshal(GetRequest{EncUser: "AAA"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "enc_temp_key") {
		t.Errorf("empty temp key serialized: %s", b)
	}
}

func TestPseudoItemBlockCannotCollideWithRealItem(t *testing.T) {
	// PadID can never produce the 0xFFFF header; verify the invariant the
	// codec relies on.
	longest := strings.Repeat("x", ppcrypto.IDBlockSize-2)
	block, err := ppcrypto.PadID(longest)
	if err != nil {
		t.Fatal(err)
	}
	if isPseudoItemBlock(block) {
		t.Error("a real identifier block matched the pseudo-item marker")
	}
}
