package message

import (
	"encoding/binary"
	"errors"
	"fmt"
	"slices"
)

// This file is the binary batch-frame codec used on the inter-hop links
// (internal/hopwire, DESIGN.md §4h). The JSON envelope in message.go
// remains the v1 wire format — UnmarshalBatch accepts both, so a frame
// speaker can talk to a JSON-era peer during a rolling upgrade — but
// MarshalBatch now emits frames: no base64, no intermediate JSON, and the
// encoder appends into caller-provided (poolable) buffers.
//
// Frame layout (big-endian):
//
//	[magic "PPXB" 4] [version 1] [frame kind 1] [CRLF 2]
//	[epoch uint64]   [count uint32] [slot size uint32] [payload len uint32]
//	payload
//
// A batch or single frame's payload is `count` fixed-size slots:
//
//	[id uint32] [entry kind byte] [status uint16] [body, padded to slot size]
//
// Every slot in a frame has the same slot size — the maximal body length
// rounded up to SlotQuantum, padded ISO/IEC 7816-4 style (0x80 then
// zeros) — so a wire observer cannot distinguish the messages inside a
// frame by size, preserving the §4.3 constant-size discipline at frame
// granularity. Ids are the sequential slot positions minted after the
// shuffle, exactly as in the JSON envelope.
//
// An error frame (kind FrameError) carries no slots: its payload is
// [status uint16][constant-class text], count and slot size are zero. It
// prices a whole-envelope failure the way an HTTP error status did.

// Frame layout constants.
const (
	// FrameVersion is the binary frame wire version. (Version 1 is the
	// JSON envelope; the version byte here is independent of BatchVersion
	// but kept disjoint so a hexdump is unambiguous.)
	FrameVersion = 2

	// FrameHeaderSize is the fixed frame header length in bytes.
	FrameHeaderSize = 28

	// SlotQuantum is the slot-size rounding step. Bodies on this link are
	// already constant-size ciphertext; the quantum coarsens whatever
	// residual variation framing overhead could introduce.
	SlotQuantum = 64

	// MaxFramePayload bounds a frame payload (matches the proxy's batch
	// body bound), so a hostile length field cannot drive allocation.
	MaxFramePayload = 8 << 20

	// MaxFrameEntries bounds the slot count of one frame.
	MaxFrameEntries = 1 << 16

	// slotHeaderSize is the per-slot prefix: id + kind + status.
	slotHeaderSize = 4 + 1 + 2

	// maxErrorText bounds the text of an error frame.
	maxErrorText = 1 << 10
)

// Frame kinds.
const (
	// FrameBatch carries one shuffle epoch of slots (request direction)
	// or its results (response direction).
	FrameBatch byte = 1
	// FrameError carries a whole-exchange failure: status plus
	// constant-class text, no slots.
	FrameError byte = 2
	// FrameSingle carries exactly one slot: the per-message hop path
	// (events/queries) riding the same persistent connection.
	FrameSingle byte = 3
	// FrameTelemetry carries exactly one slot holding an epoch-granular
	// node snapshot (internal/telemetry) bound for the fleet collector's
	// POST /telemetry route. It is structurally a FrameSingle — same slot
	// envelope, padding, and bounds — under its own kind byte so a frame
	// server routes it without inspecting the body, and so operator
	// telemetry is distinguishable from user traffic in a capture (its
	// content is already public: what /metrics exposes, nothing finer).
	FrameTelemetry byte = 4
)

// frameMagic starts every binary frame; JSON envelopes start with '{', so
// one byte distinguishes the formats.
var frameMagic = [4]byte{'P', 'P', 'X', 'B'}

// Header bytes 6–7 are a literal CRLF, not free reserved space. An
// HTTP/1.x server that receives a frame reads the request line until it
// sees a newline; encrypted slot bodies may contain none, so without this
// the server would block indefinitely and the hopwire client could not
// tell "peer is slow" from "peer does not speak frames". With CRLF at a
// fixed offset the first 8 bytes always terminate the request line: a
// frame-illiterate server answers 400 and closes at once, which is the
// prompt ErrUnsupported signal the HTTP fallback detection relies on.
const (
	frameCR byte = '\r'
	frameLF byte = '\n'
)

// Frame codec errors. Structural faults wrap ErrBatchEnvelope and version
// faults ErrBatchVersion, so receivers classify frames and JSON envelopes
// with the same errors.Is checks.
var (
	// ErrNotFrame reports bytes that do not start with the frame magic —
	// the signal to try the JSON envelope path (or, for hopwire, that the
	// peer does not speak the protocol).
	ErrNotFrame = errors.New("message: not a batch frame")
)

// entry kind codes inside a slot.
const (
	kindCodeNone byte = 0 // response entries carry no kind
	kindCodePost byte = 1
	kindCodeGet  byte = 2
)

func kindCode(kind string) (byte, bool) {
	switch kind {
	case "":
		return kindCodeNone, true
	case BatchKindPost:
		return kindCodePost, true
	case BatchKindGet:
		return kindCodeGet, true
	}
	return 0, false
}

func kindFromCode(c byte) (string, bool) {
	switch c {
	case kindCodeNone:
		return "", true
	case kindCodePost:
		return BatchKindPost, true
	case kindCodeGet:
		return BatchKindGet, true
	}
	return "", false
}

// IsFrame reports whether data starts with the binary frame magic.
func IsFrame(data []byte) bool {
	return len(data) >= len(frameMagic) && [4]byte(data[:4]) == frameMagic
}

// FrameHeader is the parsed fixed-size frame prefix.
type FrameHeader struct {
	Kind       byte
	Epoch      uint64
	Count      int
	SlotSize   int
	PayloadLen int
}

// FrameSize returns the total frame length including the header.
func (h FrameHeader) FrameSize() int { return FrameHeaderSize + h.PayloadLen }

// ParseFrameHeader validates and parses the fixed-size frame prefix. It
// needs only the first FrameHeaderSize bytes, so a stream receiver can
// bound its payload read before buffering anything: every length field is
// checked against MaxFramePayload / MaxFrameEntries here, and for slotted
// kinds the payload length must equal count × slot envelope exactly.
func ParseFrameHeader(data []byte) (FrameHeader, error) {
	if !IsFrame(data) {
		return FrameHeader{}, ErrNotFrame
	}
	if len(data) < FrameHeaderSize {
		return FrameHeader{}, fmt.Errorf("%w: truncated header (%d bytes)", ErrBatchEnvelope, len(data))
	}
	if v := data[4]; v != FrameVersion {
		return FrameHeader{}, fmt.Errorf("%w: got frame v%d, want v%d", ErrBatchVersion, v, FrameVersion)
	}
	if data[6] != frameCR || data[7] != frameLF {
		return FrameHeader{}, fmt.Errorf("%w: missing header CRLF", ErrBatchEnvelope)
	}
	h := FrameHeader{
		Kind:       data[5],
		Epoch:      binary.BigEndian.Uint64(data[8:16]),
		Count:      int(binary.BigEndian.Uint32(data[16:20])),
		SlotSize:   int(binary.BigEndian.Uint32(data[20:24])),
		PayloadLen: int(binary.BigEndian.Uint32(data[24:28])),
	}
	if h.PayloadLen > MaxFramePayload {
		return FrameHeader{}, fmt.Errorf("%w: payload %d exceeds bound", ErrBatchEnvelope, h.PayloadLen)
	}
	switch h.Kind {
	case FrameBatch, FrameSingle, FrameTelemetry:
		if h.Count == 0 {
			return FrameHeader{}, fmt.Errorf("%w: no entries", ErrBatchEnvelope)
		}
		if h.Count > MaxFrameEntries {
			return FrameHeader{}, fmt.Errorf("%w: %d entries exceeds bound", ErrBatchEnvelope, h.Count)
		}
		if h.Kind != FrameBatch && h.Count != 1 {
			return FrameHeader{}, fmt.Errorf("%w: single frame with %d entries", ErrBatchEnvelope, h.Count)
		}
		if h.SlotSize <= 0 || h.SlotSize%SlotQuantum != 0 {
			return FrameHeader{}, fmt.Errorf("%w: bad slot size %d", ErrBatchEnvelope, h.SlotSize)
		}
		if h.PayloadLen != h.Count*(slotHeaderSize+h.SlotSize) {
			return FrameHeader{}, fmt.Errorf("%w: payload length %d does not match %d slots of %d",
				ErrBatchEnvelope, h.PayloadLen, h.Count, h.SlotSize)
		}
	case FrameError:
		if h.Count != 0 || h.SlotSize != 0 {
			return FrameHeader{}, fmt.Errorf("%w: error frame with slots", ErrBatchEnvelope)
		}
		if h.PayloadLen < 2 || h.PayloadLen > 2+maxErrorText {
			return FrameHeader{}, fmt.Errorf("%w: error frame payload %d", ErrBatchEnvelope, h.PayloadLen)
		}
	default:
		return FrameHeader{}, fmt.Errorf("%w: unknown frame kind %d", ErrBatchEnvelope, h.Kind)
	}
	return h, nil
}

// slotSizeFor returns the constant slot size for a set of entries: the
// maximal body length plus the mandatory 0x80 pad byte, rounded up to
// SlotQuantum.
func slotSizeFor(entries []BatchEntry) int {
	max := 0
	for _, e := range entries {
		if len(e.Body) > max {
			max = len(e.Body)
		}
	}
	return (max + 1 + SlotQuantum - 1) / SlotQuantum * SlotQuantum
}

// AppendBatchFrame appends one binary frame of kind FrameBatch or
// FrameSingle to dst and returns the extended slice. dst may come from a
// pool: the encoder grows it once to the exact frame size and writes in
// place — no intermediate buffers, no base64.
func AppendBatchFrame(dst []byte, kind byte, epoch uint64, entries []BatchEntry) ([]byte, error) {
	switch kind {
	case FrameBatch:
	case FrameSingle, FrameTelemetry:
		if len(entries) != 1 {
			return nil, fmt.Errorf("%w: single frame needs exactly 1 entry, got %d", ErrBatchEnvelope, len(entries))
		}
	default:
		return nil, fmt.Errorf("%w: cannot encode frame kind %d", ErrBatchEnvelope, kind)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("%w: no entries", ErrBatchEnvelope)
	}
	if len(entries) > MaxFrameEntries {
		return nil, fmt.Errorf("%w: %d entries exceeds bound", ErrBatchEnvelope, len(entries))
	}
	slotSize := slotSizeFor(entries)
	payloadLen := len(entries) * (slotHeaderSize + slotSize)
	if payloadLen > MaxFramePayload {
		return nil, fmt.Errorf("%w: payload %d exceeds bound", ErrBatchEnvelope, payloadLen)
	}

	off := len(dst)
	dst = slices.Grow(dst, FrameHeaderSize+payloadLen)
	dst = dst[:off+FrameHeaderSize+payloadLen]
	buf := dst[off:]

	copy(buf, frameMagic[:])
	buf[4] = FrameVersion
	buf[5] = kind
	buf[6], buf[7] = frameCR, frameLF
	binary.BigEndian.PutUint64(buf[8:16], epoch)
	binary.BigEndian.PutUint32(buf[16:20], uint32(len(entries)))
	binary.BigEndian.PutUint32(buf[20:24], uint32(slotSize))
	binary.BigEndian.PutUint32(buf[24:28], uint32(payloadLen))

	p := buf[FrameHeaderSize:]
	for _, e := range entries {
		if e.ID < 0 || e.ID > MaxFrameEntries {
			return nil, fmt.Errorf("%w: id %d out of range", ErrBatchEnvelope, e.ID)
		}
		kc, ok := kindCode(e.Kind)
		if !ok {
			return nil, fmt.Errorf("%w: unknown entry kind %q", ErrBatchEnvelope, e.Kind)
		}
		if e.Status < 0 || e.Status > 0xFFFF {
			return nil, fmt.Errorf("%w: status %d out of range", ErrBatchEnvelope, e.Status)
		}
		binary.BigEndian.PutUint32(p[0:4], uint32(e.ID))
		p[4] = kc
		binary.BigEndian.PutUint16(p[5:7], uint16(e.Status))
		body := p[slotHeaderSize : slotHeaderSize+slotSize]
		n := copy(body, e.Body)
		body[n] = 0x80
		// dst may be a recycled buffer: the padding tail must be zeroed
		// explicitly or stale bytes from a previous frame leak out.
		clear(body[n+1:])
		p = p[slotHeaderSize+slotSize:]
	}
	return dst, nil
}

// AppendErrorFrame appends an error frame pricing a whole exchange with
// one status and constant-class text.
func AppendErrorFrame(dst []byte, epoch uint64, status int, text string) []byte {
	if status < 0 || status > 0xFFFF {
		status = 0
	}
	if len(text) > maxErrorText {
		text = text[:maxErrorText]
	}
	payloadLen := 2 + len(text)
	off := len(dst)
	dst = slices.Grow(dst, FrameHeaderSize+payloadLen)
	dst = dst[:off+FrameHeaderSize+payloadLen]
	buf := dst[off:]

	copy(buf, frameMagic[:])
	buf[4] = FrameVersion
	buf[5] = FrameError
	buf[6], buf[7] = frameCR, frameLF
	binary.BigEndian.PutUint64(buf[8:16], epoch)
	binary.BigEndian.PutUint32(buf[16:20], 0)
	binary.BigEndian.PutUint32(buf[20:24], 0)
	binary.BigEndian.PutUint32(buf[24:28], uint32(payloadLen))
	binary.BigEndian.PutUint16(buf[FrameHeaderSize:FrameHeaderSize+2], uint16(status))
	copy(buf[FrameHeaderSize+2:], text)
	return dst
}

// DecodeBatchFrame parses a batch or single frame. Decoded entry bodies
// alias data — the caller owns data and must not recycle it while the
// entries live. Entry ids are validated unique and in range, matching the
// JSON envelope contract.
func DecodeBatchFrame(data []byte) (uint64, []BatchEntry, error) {
	h, err := ParseFrameHeader(data)
	if err != nil {
		return 0, nil, err
	}
	if h.Kind == FrameError {
		return 0, nil, fmt.Errorf("%w: error frame has no entries", ErrBatchEnvelope)
	}
	if len(data) != h.FrameSize() {
		return 0, nil, fmt.Errorf("%w: frame is %d bytes, header says %d", ErrBatchEnvelope, len(data), h.FrameSize())
	}
	entries := make([]BatchEntry, h.Count)
	seen := make(map[int]struct{}, h.Count)
	p := data[FrameHeaderSize:]
	for i := range entries {
		id := int(binary.BigEndian.Uint32(p[0:4]))
		if id > MaxFrameEntries {
			return 0, nil, fmt.Errorf("%w: id %d out of range", ErrBatchEnvelope, id)
		}
		if _, dup := seen[id]; dup {
			return 0, nil, fmt.Errorf("%w: duplicate id %d", ErrBatchEnvelope, id)
		}
		seen[id] = struct{}{}
		kind, ok := kindFromCode(p[4])
		if !ok {
			return 0, nil, fmt.Errorf("%w: unknown entry kind code %d", ErrBatchEnvelope, p[4])
		}
		status := int(binary.BigEndian.Uint16(p[5:7]))
		body, err := unpadSlot(p[slotHeaderSize : slotHeaderSize+h.SlotSize])
		if err != nil {
			return 0, nil, err
		}
		entries[i] = BatchEntry{ID: id, Kind: kind, Status: status, Body: body}
		p = p[slotHeaderSize+h.SlotSize:]
	}
	return h.Epoch, entries, nil
}

// DecodeErrorFrame parses an error frame into its status and text.
func DecodeErrorFrame(data []byte) (epoch uint64, status int, text string, err error) {
	h, perr := ParseFrameHeader(data)
	if perr != nil {
		return 0, 0, "", perr
	}
	if h.Kind != FrameError {
		return 0, 0, "", fmt.Errorf("%w: frame kind %d is not an error frame", ErrBatchEnvelope, h.Kind)
	}
	if len(data) != h.FrameSize() {
		return 0, 0, "", fmt.Errorf("%w: frame is %d bytes, header says %d", ErrBatchEnvelope, len(data), h.FrameSize())
	}
	p := data[FrameHeaderSize:]
	return h.Epoch, int(binary.BigEndian.Uint16(p[0:2])), string(p[2:]), nil
}

// unpadSlot strips the 0x80-then-zeros padding, returning the body as a
// sub-slice of the slot.
func unpadSlot(p []byte) ([]byte, error) {
	i := len(p) - 1
	for i >= 0 && p[i] == 0 {
		i--
	}
	if i < 0 || p[i] != 0x80 {
		return nil, fmt.Errorf("%w: malformed slot padding", ErrBatchEnvelope)
	}
	if i == 0 {
		// Keep zero-length bodies nil, matching the JSON envelope where
		// an empty body field round-trips as nil.
		return nil, nil
	}
	return p[:i], nil
}
