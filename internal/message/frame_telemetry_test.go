package message

import (
	"bytes"
	"errors"
	"testing"
)

// TestTelemetryFrameRoundTrip: a telemetry frame is structurally a
// single-slot frame under its own kind byte, so a snapshot body survives
// encode/decode intact and the header advertises the kind a frame server
// routes on without inspecting the body.
func TestTelemetryFrameRoundTrip(t *testing.T) {
	body := []byte(`{"node":"ua-0","role":"ua","seq":3,"epoch":9,"build":{}}`)
	data, err := AppendBatchFrame(nil, FrameTelemetry, 9,
		[]BatchEntry{{ID: 0, Kind: BatchKindPost, Body: body}})
	if err != nil {
		t.Fatalf("AppendBatchFrame: %v", err)
	}
	h, err := ParseFrameHeader(data)
	if err != nil {
		t.Fatalf("ParseFrameHeader: %v", err)
	}
	if h.Kind != FrameTelemetry {
		t.Fatalf("header kind = %d, want FrameTelemetry (%d)", h.Kind, FrameTelemetry)
	}
	if h.Count != 1 {
		t.Fatalf("header count = %d, want 1", h.Count)
	}
	epoch, entries, err := DecodeBatchFrame(data)
	if err != nil {
		t.Fatalf("DecodeBatchFrame: %v", err)
	}
	if epoch != 9 {
		t.Fatalf("epoch = %d, want 9", epoch)
	}
	if len(entries) != 1 || !bytes.Equal(entries[0].Body, body) {
		t.Fatalf("entries = %+v, want one entry with the snapshot body", entries)
	}
	if entries[0].Kind != BatchKindPost {
		t.Fatalf("entry kind = %q, want post", entries[0].Kind)
	}
}

// TestTelemetryFrameRequiresSingleSlot: the single-slot shape is
// enforced on both sides — encoding more than one entry fails, and a
// forged multi-count telemetry header is rejected by the parser.
func TestTelemetryFrameRequiresSingleSlot(t *testing.T) {
	two := []BatchEntry{
		{ID: 0, Kind: BatchKindPost, Body: []byte("a")},
		{ID: 1, Kind: BatchKindPost, Body: []byte("b")},
	}
	if _, err := AppendBatchFrame(nil, FrameTelemetry, 1, two); !errors.Is(err, ErrBatchEnvelope) {
		t.Fatalf("two-slot telemetry frame encoded: err = %v", err)
	}

	// Forge: take a two-entry batch frame and rewrite its kind byte to
	// FrameTelemetry. The header parser must refuse count != 1.
	data, err := AppendBatchFrame(nil, FrameBatch, 1, two)
	if err != nil {
		t.Fatal(err)
	}
	data[5] = FrameTelemetry
	if _, err := ParseFrameHeader(data); !errors.Is(err, ErrBatchEnvelope) {
		t.Fatalf("forged multi-slot telemetry header accepted: err = %v", err)
	}
}

// TestTelemetryFrameConstantSlotQuantum: telemetry slots obey the same
// quantized constant-size discipline as user traffic, so snapshot bodies
// do not leak fine-grained length on the wire.
func TestTelemetryFrameConstantSlotQuantum(t *testing.T) {
	mk := func(n int) int {
		data, err := AppendBatchFrame(nil, FrameTelemetry, 1,
			[]BatchEntry{{ID: 0, Kind: BatchKindPost, Body: bytes.Repeat([]byte("s"), n)}})
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	if a, b := mk(100), mk(101); a != b {
		t.Fatalf("frame sizes %d vs %d differ within a quantum", a, b)
	}
	h, err := ParseFrameHeader(func() []byte {
		data, _ := AppendBatchFrame(nil, FrameTelemetry, 1,
			[]BatchEntry{{ID: 0, Kind: BatchKindPost, Body: []byte("x")}})
		return data
	}())
	if err != nil {
		t.Fatal(err)
	}
	if h.SlotSize%SlotQuantum != 0 {
		t.Fatalf("slot size %d not a multiple of the quantum", h.SlotSize)
	}
}
