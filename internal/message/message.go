// Package message defines the REST/JSON wire format exchanged between the
// user-side library, the two proxy layers, and the legacy recommendation
// system (LRS). The format follows §4.2 of the PProx paper: requests and
// payloads are JSON, encrypted content travels in base64 (§5), and all
// encrypted fields have constant size — identifiers are padded to fixed
// blocks and recommendation lists to a maximum length (§4.3) — so a network
// observer cannot distinguish messages by size.
package message

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"

	"pprox/internal/ppcrypto"
)

// MaxRecommendations is the maximal size of a recommendation list (§4.3:
// "The list of items returned by the LRS has a maximal size (20 in our
// implementation) and we use padding to fill in missing entries").
const MaxRecommendations = 20

// API paths. The user-side library exposes the exact same REST API as the
// LRS (§2.1), so the same paths are served at every hop.
const (
	// EventsPath accepts post(u, i[, p]) feedback insertions.
	EventsPath = "/events"
	// QueriesPath accepts get(u) recommendation queries.
	QueriesPath = "/queries"
	// HealthPath reports liveness.
	HealthPath = "/healthz"
	// BatchPath accepts one batch envelope per shuffle epoch on the
	// UA→IA link (epoch-batched pipeline, DESIGN.md §4f). The LRS never
	// serves it: the IA demultiplexes and speaks the legacy per-message
	// API downstream.
	BatchPath = "/batch"
	// TelemetryPath accepts one epoch-granular node snapshot
	// (internal/telemetry) at the fleet collector. Frame speakers carry
	// the same body as a FrameTelemetry frame; frame-illiterate nodes
	// POST it here directly.
	TelemetryPath = "/telemetry"
)

// BatchVersion is the batch-envelope wire version. A receiver rejects
// envelopes from a future version instead of guessing at their layout.
const BatchVersion = 1

// Batch entry kinds, the request-direction dispatch tag standing in for
// the per-message URL path.
const (
	// BatchKindPost marks a feedback insertion (EventsPath).
	BatchKindPost = "post"
	// BatchKindGet marks a recommendation query (QueriesPath).
	BatchKindGet = "get"
)

// Errors reported by the codec.
var (
	// ErrTooManyItems reports a recommendation list longer than
	// MaxRecommendations.
	ErrTooManyItems = errors.New("message: recommendation list exceeds maximum size")

	// ErrMalformedList reports an item-list block of the wrong size.
	ErrMalformedList = errors.New("message: malformed fixed-size item list")

	// ErrBatchVersion reports a batch envelope with an unsupported wire
	// version.
	ErrBatchVersion = errors.New("message: unsupported batch envelope version")

	// ErrBatchEnvelope reports a structurally invalid batch envelope
	// (duplicate or negative ids, no entries).
	ErrBatchEnvelope = errors.New("message: malformed batch envelope")
)

// PostRequest is the encrypted form of post(u, i[, p]) as it travels from
// the user-side library through the proxy layers (Fig. 3). EncUser starts
// as enc(u, pkUA) and is rewritten by the UA layer to det_enc(u, kUA);
// EncItem starts as enc(i, pkIA) and is rewritten by the IA layer to
// det_enc(i, kIA).
type PostRequest struct {
	EncUser string `json:"enc_user"`
	EncItem string `json:"enc_item"`
	// Payload is the optional cleartext feedback payload p (e.g. a
	// rating) forwarded unmodified, as required by the recommendation
	// algorithm.
	Payload string `json:"payload,omitempty"`
	// Event optionally names the indicator type for Correlated
	// Cross-Occurrence (e.g. "view", "like"); empty means the primary
	// indicator. Like the payload, the indicator *type* is forwarded in
	// the clear — it describes the application's schema, not the user.
	Event string `json:"event,omitempty"`
	// Tenant names the application when one proxy deployment serves
	// several RaaS client applications (§6.3's multi-tenancy
	// mitigation). It selects the per-tenant keys inside the enclaves
	// and travels in the clear: the application identity is public, the
	// user's is not. Empty selects the single-tenant keys.
	Tenant string `json:"tenant,omitempty"`
	// Idem is the idempotency key under which the LRS deduplicates this
	// feedback event when a proxy hop retries it. It is minted by the UA
	// enclave — never by the client — because a client-chosen key would
	// appear both on the edge link and in the cleartext LRS request,
	// handing a network observer a correlator that bypasses shuffling.
	// Any client-supplied value is overwritten.
	Idem string `json:"idem,omitempty"`
}

// GetRequest is the encrypted form of get(u) (Fig. 4). EncTempKey carries
// enc(k_u, pkIA), the per-request temporary key that the IA layer uses to
// hide the recommendation list from the UA layer; the IA strips it before
// contacting the LRS.
type GetRequest struct {
	EncUser    string `json:"enc_user"`
	EncTempKey string `json:"enc_temp_key,omitempty"`
	// Tenant selects per-tenant keys, see PostRequest.Tenant.
	Tenant string `json:"tenant,omitempty"`
}

// GetResponse carries enc({i1..in}, k_u): the fixed-size recommendation
// list encrypted under the temporary key, opaque to the UA layer.
type GetResponse struct {
	EncItems string `json:"enc_items"`
}

// LRSPost is the pseudonymized feedback insertion the LRS finally receives:
// post(det_enc(u, kUA), det_enc(i, kIA)).
type LRSPost struct {
	User    string `json:"user"`
	Item    string `json:"item"`
	Payload string `json:"payload,omitempty"`
	// Event is the indicator type (empty = primary), see
	// PostRequest.Event.
	Event string `json:"event,omitempty"`
	// Tenant routes to the application's engine on a multi-tenant LRS
	// (Harness hosts one engine per application).
	Tenant string `json:"tenant,omitempty"`
	// Idem is the enclave-minted idempotency key copied through from
	// PostRequest.Idem; the LRS drops a repeated key instead of
	// double-counting the event when a proxy hop retried the insertion.
	Idem string `json:"idem,omitempty"`
}

// LRSGet is the pseudonymized query the LRS receives:
// get(det_enc(u, kUA)).
type LRSGet struct {
	User string `json:"user"`
	// N is the number of recommendations requested, capped at
	// MaxRecommendations.
	N int `json:"n,omitempty"`
	// Tenant routes to the application's engine, see LRSPost.Tenant.
	Tenant string `json:"tenant,omitempty"`
}

// LRSGetResponse is the LRS reply: pseudonymized item identifiers.
type LRSGetResponse struct {
	Items []string `json:"items"`
}

// OK is the generic success body for post insertions; the REST API's
// meaningful signal is the HTTP status code (§4.2.1).
type OK struct {
	Status string `json:"status"`
}

// BatchEntry is one opaque message inside a batch envelope. IDs are
// positions in the epoch's permuted release order (0..n-1) — sequential
// integers minted after the shuffle, so they carry no information about
// arrival order or the client behind a slot. The request direction sets
// Kind; the response direction echoes the request's ID and sets Status.
// Body is opaque to every hop that only forwards it (encoding/json
// transports []byte as base64, matching the §5 ciphertext convention).
type BatchEntry struct {
	ID     int    `json:"id"`
	Kind   string `json:"kind,omitempty"`
	Status int    `json:"status,omitempty"`
	Body   []byte `json:"body,omitempty"`
}

// BatchEnvelope is the versioned frame carrying one shuffle epoch as a
// single message on the UA→IA link (one POST per epoch instead of S).
type BatchEnvelope struct {
	V       int          `json:"v"`
	Entries []BatchEntry `json:"entries"`
}

// MarshalBatch frames entries as a binary batch frame (frame.go). The
// JSON envelope remains accepted on the receive side, so the two wire
// formats interoperate across a rolling upgrade.
func MarshalBatch(entries []BatchEntry) ([]byte, error) {
	return MarshalBatchEpoch(nil, 0, entries)
}

// MarshalBatchEpoch frames entries as a binary batch frame tagged with an
// epoch id, appending to dst (which may come from a pool; pass nil for a
// fresh buffer). The epoch id lets a persistent-connection transport
// match a pooled response to its request.
func MarshalBatchEpoch(dst []byte, epoch uint64, entries []BatchEntry) ([]byte, error) {
	return AppendBatchFrame(dst, FrameBatch, epoch, entries)
}

// MarshalBatchJSON frames entries into the legacy version-tagged JSON
// envelope (wire format v1), kept for rolling-upgrade tests and JSON-era
// peers.
func MarshalBatchJSON(entries []BatchEntry) ([]byte, error) {
	return Marshal(BatchEnvelope{V: BatchVersion, Entries: entries})
}

// UnmarshalBatch parses and validates a batch envelope in either wire
// format: bytes starting with the frame magic decode as a binary frame,
// anything else as the legacy JSON envelope. Entry ids are unique and
// non-negative in both, so a receiver can key per-message results by id
// without aliasing.
func UnmarshalBatch(data []byte) ([]BatchEntry, error) {
	_, entries, err := UnmarshalBatchEpoch(data)
	return entries, err
}

// UnmarshalBatchEpoch is UnmarshalBatch plus the frame's epoch id, so a
// receiver can echo it on the response frame (JSON envelopes carry no
// epoch and report 0).
func UnmarshalBatchEpoch(data []byte) (uint64, []BatchEntry, error) {
	if IsFrame(data) {
		return DecodeBatchFrame(data)
	}
	var env BatchEnvelope
	if err := Unmarshal(data, &env); err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrBatchEnvelope, err)
	}
	if env.V != BatchVersion {
		return 0, nil, fmt.Errorf("%w: got v%d, want v%d", ErrBatchVersion, env.V, BatchVersion)
	}
	if len(env.Entries) == 0 {
		return 0, nil, fmt.Errorf("%w: no entries", ErrBatchEnvelope)
	}
	seen := make(map[int]struct{}, len(env.Entries))
	for _, e := range env.Entries {
		if e.ID < 0 {
			return 0, nil, fmt.Errorf("%w: negative id %d", ErrBatchEnvelope, e.ID)
		}
		if _, dup := seen[e.ID]; dup {
			return 0, nil, fmt.Errorf("%w: duplicate id %d", ErrBatchEnvelope, e.ID)
		}
		seen[e.ID] = struct{}{}
	}
	return 0, env.Entries, nil
}

// BatchKindPath maps an entry kind to the per-message path it stands for,
// reporting false for unknown kinds.
func BatchKindPath(kind string) (string, bool) {
	switch kind {
	case BatchKindPost:
		return EventsPath, true
	case BatchKindGet:
		return QueriesPath, true
	}
	return "", false
}

// PathBatchKind maps a per-message path to its batch entry kind,
// reporting false for paths that do not batch.
func PathBatchKind(path string) (string, bool) {
	switch path {
	case EventsPath:
		return BatchKindPost, true
	case QueriesPath:
		return BatchKindGet, true
	}
	return "", false
}

// Encode64 renders ciphertext bytes for a JSON field (§5: "the encrypted
// content is handled and stored in the base64 format").
func Encode64(b []byte) string { return base64.StdEncoding.EncodeToString(b) }

// Decode64 parses a base64 ciphertext field.
func Decode64(s string) ([]byte, error) {
	b, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("message: decode base64 field: %w", err)
	}
	return b, nil
}

// Marshal renders a wire message as JSON.
func Marshal(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("message: marshal: %w", err)
	}
	return b, nil
}

// Unmarshal parses a wire message.
func Unmarshal(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("message: unmarshal: %w", err)
	}
	return nil
}

// pseudo-item blocks mark padding entries in a fixed-size item list. The
// 0xFFFF length header can never be produced by ppcrypto.PadID, so padding
// is unambiguous. The user-side library discards them (§4.3: "The
// pseudo-items used for padding are automatically discarded").
func pseudoItemBlock() []byte {
	b := make([]byte, ppcrypto.IDBlockSize)
	b[0], b[1] = 0xFF, 0xFF
	return b
}

func isPseudoItemBlock(b []byte) bool {
	return len(b) == ppcrypto.IDBlockSize && b[0] == 0xFF && b[1] == 0xFF
}

// EncodeItemList packs up to MaxRecommendations item identifiers into a
// constant-size byte string: exactly MaxRecommendations blocks of
// ppcrypto.IDBlockSize bytes, real items first, pseudo-items after. The
// constant plaintext size means the ciphertext returned to the client has
// constant size regardless of how many recommendations the LRS produced.
func EncodeItemList(items []string) ([]byte, error) {
	if len(items) > MaxRecommendations {
		return nil, fmt.Errorf("%w: %d items", ErrTooManyItems, len(items))
	}
	out := make([]byte, 0, MaxRecommendations*ppcrypto.IDBlockSize)
	for _, it := range items {
		block, err := ppcrypto.PadID(it)
		if err != nil {
			return nil, fmt.Errorf("encode item %q: %w", it, err)
		}
		out = append(out, block...)
	}
	for i := len(items); i < MaxRecommendations; i++ {
		out = append(out, pseudoItemBlock()...)
	}
	return out, nil
}

// DecodeItemList unpacks a fixed-size item list, dropping pseudo-items.
func DecodeItemList(data []byte) ([]string, error) {
	if len(data) != MaxRecommendations*ppcrypto.IDBlockSize {
		return nil, fmt.Errorf("%w: %d bytes", ErrMalformedList, len(data))
	}
	items := make([]string, 0, MaxRecommendations)
	for i := 0; i < MaxRecommendations; i++ {
		block := data[i*ppcrypto.IDBlockSize : (i+1)*ppcrypto.IDBlockSize]
		if isPseudoItemBlock(block) {
			continue
		}
		id, err := ppcrypto.UnpadID(block)
		if err != nil {
			return nil, fmt.Errorf("decode item %d: %w", i, err)
		}
		items = append(items, id)
	}
	return items, nil
}
