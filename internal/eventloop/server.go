package eventloop

import (
	"bufio"
	"errors"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Server is the §5 proxy server shape: ONE acceptor goroutine (the
// paper's epoll thread — Go's netpoller plays the epoll role beneath it)
// pushes ready connections into the lock-free queue; a FIXED pool of
// data-processing workers consumes the queue in arrival order, each
// serving exactly one HTTP exchange before re-queueing a keep-alive
// connection — so no request can be starved behind another connection's
// pipeline, the fairness property §5 demands.
type Server struct {
	// Handler processes requests, exactly as with net/http.
	Handler http.Handler
	// Workers sizes the data-processing pool (paper: one per core on
	// 2-core nodes; default 2).
	Workers int
	// ReadTimeout bounds each exchange's header+body read (default 30s).
	ReadTimeout time.Duration
	// IdleTimeout bounds how long a keep-alive connection may sit
	// without a next request before being closed (default 60s).
	IdleTimeout time.Duration

	queue    *Queue[*conn]
	work     chan struct{} // semaphore tokens pairing with queue entries
	done     chan struct{}
	stopped  atomic.Bool
	stopOnce sync.Once
	wg       sync.WaitGroup

	served  atomic.Uint64
	errors  atomic.Uint64
	maxWait atomic.Int64 // ns; observed queueing fairness metric
}

type conn struct {
	rwc      net.Conn
	br       *bufio.Reader
	enqueued time.Time
}

// Serve accepts on l until Close; it returns after the acceptor exits.
func (s *Server) Serve(l net.Listener) error {
	if s.Handler == nil {
		return errors.New("eventloop: nil handler")
	}
	if s.Workers <= 0 {
		s.Workers = 2
	}
	if s.ReadTimeout <= 0 {
		s.ReadTimeout = 30 * time.Second
	}
	if s.IdleTimeout <= 0 {
		s.IdleTimeout = 60 * time.Second
	}
	s.queue = NewQueue[*conn]()
	s.work = make(chan struct{}, 1<<20)
	s.done = make(chan struct{})

	// Data-processing pool.
	for i := 0; i < s.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}

	// The single acceptor loop. Connections are not queued until they
	// are READABLE — the epoll semantics of §5: the queue holds ready
	// work, never idle sockets, so workers never block on a quiet
	// connection.
	for {
		rwc, err := l.Accept()
		if err != nil {
			if s.stopped.Load() {
				err = nil
			}
			s.shutdownWorkers()
			return err
		}
		s.watch(&conn{rwc: rwc, br: bufio.NewReader(rwc)})
	}
}

// watch parks the connection until its next request's first byte arrives
// (the Go netpoller blocks inside Peek, exactly where epoll would wait),
// then queues it for the worker pool. Idle connections expire.
func (s *Server) watch(c *conn) {
	go func() {
		_ = c.rwc.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		if _, err := c.br.Peek(1); err != nil {
			c.rwc.Close()
			return
		}
		if s.stopped.Load() {
			c.rwc.Close()
			return
		}
		s.enqueue(c)
	}()
}

func (s *Server) enqueue(c *conn) {
	c.enqueued = time.Now()
	s.queue.Push(c)
	select {
	case s.work <- struct{}{}:
	default:
		// Token channel full (absurd backlog): drop the connection
		// rather than deadlock; the entry stays consumable if tokens
		// free up, so just count it.
		s.errors.Add(1)
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.work:
		}
		c, ok := s.queue.Pop()
		if !ok {
			continue
		}
		wait := time.Since(c.enqueued)
		for {
			old := s.maxWait.Load()
			if int64(wait) <= old || s.maxWait.CompareAndSwap(old, int64(wait)) {
				break
			}
		}
		s.serveOne(c)
	}
}

// serveOne handles exactly one HTTP exchange. Keep-alive connections are
// re-queued behind newly arrived ones — the in-order consumption that
// bounds every request's queueing delay.
func (s *Server) serveOne(c *conn) {
	_ = c.rwc.SetReadDeadline(time.Now().Add(s.ReadTimeout))
	req, err := http.ReadRequest(c.br)
	if err != nil {
		c.rwc.Close()
		if !errors.Is(err, net.ErrClosed) {
			s.errors.Add(1)
		}
		return
	}
	req.RemoteAddr = c.rwc.RemoteAddr().String()

	rw := newResponseWriter(c.rwc, req)
	s.Handler.ServeHTTP(rw, req)
	if err := rw.finish(); err != nil {
		c.rwc.Close()
		s.errors.Add(1)
		return
	}
	s.served.Add(1)

	if rw.closeAfter {
		c.rwc.Close()
		return
	}
	if s.stopped.Load() {
		c.rwc.Close()
		return
	}
	// A pipelined request is already buffered → straight back into the
	// queue; otherwise wait for readiness off-pool.
	if c.br.Buffered() > 0 {
		s.enqueue(c)
		return
	}
	s.watch(c)
}

// Close stops accepting and terminates the worker pool; in-flight
// exchanges complete, queued-but-unserved connections are closed.
func (s *Server) Close(l net.Listener) error {
	s.stopped.Store(true)
	err := l.Close()
	s.shutdownWorkers()
	for {
		c, ok := s.queue.Pop()
		if !ok {
			break
		}
		c.rwc.Close()
	}
	return err
}

func (s *Server) shutdownWorkers() {
	s.stopOnce.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Stats reports served exchanges, error count, and the worst observed
// queueing delay — the fairness bound.
func (s *Server) Stats() (served, errCount uint64, maxQueueWait time.Duration) {
	return s.served.Load(), s.errors.Load(), time.Duration(s.maxWait.Load())
}
