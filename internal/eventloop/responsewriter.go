package eventloop

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
)

// responseWriter buffers one HTTP/1.1 response and writes it in a single
// system call, the way the paper's proxy "forges a new packet to forward"
// (§5). Buffering whole responses is sound here because PProx messages
// are small and constant-size.
type responseWriter struct {
	rwc        net.Conn
	req        *http.Request
	header     http.Header
	body       bytes.Buffer
	status     int
	wroteHdr   bool
	closeAfter bool
}

var _ http.ResponseWriter = (*responseWriter)(nil)

func newResponseWriter(rwc net.Conn, req *http.Request) *responseWriter {
	rw := &responseWriter{rwc: rwc, req: req, header: make(http.Header)}
	rw.closeAfter = req.Close || req.ProtoMajor < 1 ||
		(req.ProtoMajor == 1 && req.ProtoMinor == 0 && !hasToken(req.Header.Get("Connection"), "keep-alive")) ||
		hasToken(req.Header.Get("Connection"), "close")
	return rw
}

func hasToken(header, token string) bool {
	for _, part := range strings.Split(header, ",") {
		if strings.EqualFold(strings.TrimSpace(part), token) {
			return true
		}
	}
	return false
}

// Header implements http.ResponseWriter.
func (rw *responseWriter) Header() http.Header { return rw.header }

// WriteHeader implements http.ResponseWriter.
func (rw *responseWriter) WriteHeader(status int) {
	if rw.wroteHdr {
		return
	}
	rw.status = status
	rw.wroteHdr = true
}

// Write implements http.ResponseWriter.
func (rw *responseWriter) Write(p []byte) (int, error) {
	if !rw.wroteHdr {
		rw.WriteHeader(http.StatusOK)
	}
	return rw.body.Write(p)
}

// finish serializes and sends the buffered response.
func (rw *responseWriter) finish() error {
	if !rw.wroteHdr {
		rw.WriteHeader(http.StatusOK)
	}
	// Drain any unread request body so the next pipelined request parses
	// cleanly on keep-alive connections.
	if rw.req.Body != nil {
		_, _ = discardAll(rw.req.Body)
		rw.req.Body.Close()
	}

	var out bytes.Buffer
	fmt.Fprintf(&out, "HTTP/1.1 %d %s\r\n", rw.status, http.StatusText(rw.status))
	rw.header.Set("Content-Length", strconv.Itoa(rw.body.Len()))
	if rw.header.Get("Content-Type") == "" && rw.body.Len() > 0 {
		rw.header.Set("Content-Type", "application/json")
	}
	if rw.closeAfter {
		rw.header.Set("Connection", "close")
	}
	if err := rw.header.Write(&out); err != nil {
		return err
	}
	out.WriteString("\r\n")
	out.Write(rw.body.Bytes())
	_, err := rw.rwc.Write(out.Bytes())
	return err
}

func discardAll(r io.Reader) (int64, error) {
	return io.Copy(io.Discard, r)
}
