package eventloop

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobPoolRunsSubmittedJobs(t *testing.T) {
	p := NewJobPool(2)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		if !p.Submit(func() { ran.Add(1); wg.Done() }) {
			t.Fatal("Submit refused before Close")
		}
	}
	wg.Wait()
	if got := ran.Load(); got != 100 {
		t.Errorf("ran = %d, want 100", got)
	}
	if got := p.Ran(); got != 100 {
		t.Errorf("Ran() = %d, want 100", got)
	}
}

func TestJobPoolRejectsNilAndClosed(t *testing.T) {
	p := NewJobPool(1)
	if p.Submit(nil) {
		t.Error("Submit(nil) accepted")
	}
	p.Close()
	if p.Submit(func() {}) {
		t.Error("Submit after Close accepted")
	}
	p.Close() // idempotent
	var nilPool *JobPool
	nilPool.Close()
	if nilPool.Ran() != 0 {
		t.Error("nil pool Ran() != 0")
	}
}

// TestJobPoolCloseDrains: jobs accepted before Close must run — epochs
// already handed to the pool deliver their results during shutdown
// instead of vanishing.
func TestJobPoolCloseDrains(t *testing.T) {
	p := NewJobPool(1)
	var ran atomic.Int64
	block := make(chan struct{})
	p.Submit(func() { <-block; ran.Add(1) })
	for i := 0; i < 50; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	done := make(chan struct{})
	go func() {
		p.Close()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond) // let Close reach wg.Wait
	close(block)
	<-done
	if got := ran.Load(); got != 51 {
		t.Errorf("ran = %d, want 51 (Close drains the queue)", got)
	}
}

// TestJobPoolBurst floods the pool from many goroutines at once — the
// S-simultaneous-wakeups shape a burst of shuffle flushes produces — and
// is primarily a -race exercise over Submit/worker/Close interleavings.
func TestJobPoolBurst(t *testing.T) {
	p := NewJobPool(4)
	const producers = 32
	const perProducer = 50
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perProducer; j++ {
				if !p.Submit(func() { ran.Add(1) }) {
					t.Error("Submit refused mid-burst")
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Close()
	if got := ran.Load(); got != producers*perProducer {
		t.Errorf("ran = %d, want %d", got, producers*perProducer)
	}
}
