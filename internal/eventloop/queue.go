// Package eventloop reproduces the proxy server architecture of §5: "The
// server runs as a single thread listening to incoming connection
// requests … Incoming connections' file descriptors are pushed into a
// queue, to be consumed in order by the pool of data processing threads.
// We use a lock-free, scalable concurrent queue implementation."
//
// Go's runtime already multiplexes sockets over epoll, so the standard
// net/http server (used by default throughout this repository) is the
// idiomatic equivalent. This package exists for architectural fidelity
// and for the fairness property the paper calls out — "no request gets
// delayed arbitrarily more than the delay that shuffling already
// introduces" — which a bounded worker pool consuming a FIFO queue
// provides and unbounded goroutine-per-connection does not.
package eventloop

import (
	"sync/atomic"
)

// Queue is an unbounded lock-free multi-producer/multi-consumer FIFO
// (Michael–Scott construction on atomic pointers), the Go analogue of the
// Desrochers queue the paper links [31]. Pop is non-blocking and returns
// false on empty; the server couples it with a semaphore for blocking
// consumption.
type Queue[T any] struct {
	head atomic.Pointer[node[T]]
	tail atomic.Pointer[node[T]]
	size atomic.Int64
}

type node[T any] struct {
	value T
	next  atomic.Pointer[node[T]]
}

// NewQueue creates an empty queue.
func NewQueue[T any]() *Queue[T] {
	q := &Queue[T]{}
	sentinel := &node[T]{}
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	return q
}

// Push appends a value (lock-free).
func (q *Queue[T]) Push(v T) {
	n := &node[T]{value: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			// Tail lagging: help advance it.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// Pop removes the oldest value (lock-free); ok is false when the queue is
// empty.
func (q *Queue[T]) Pop() (v T, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return v, false // empty
		}
		if head == tail {
			// Tail lagging behind a concurrent push.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if q.head.CompareAndSwap(head, next) {
			q.size.Add(-1)
			return next.value, true
		}
	}
}

// Len returns the approximate queue length.
func (q *Queue[T]) Len() int {
	n := q.size.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
