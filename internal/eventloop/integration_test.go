package eventloop_test

import (
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/eventloop"
	"pprox/internal/proxy"
	"pprox/internal/stub"
	"pprox/internal/transport"
)

// TestServerFrontsProxyLayer runs a full PProx stack with the UA layer
// served by the §5 architecture: the eventloop server is a drop-in for
// net/http on the hot path.
func TestServerFrontsProxyLayer(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(as)
	uaEncl := proxy.NewUAEnclave(platform)
	iaEncl := proxy.NewIAEnclave(platform, proxy.IAOptions{})
	uaKeys, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	iaKeys, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	if err := uaKeys.Provision(as, uaEncl, proxy.UAIdentity); err != nil {
		t.Fatal(err)
	}
	if err := iaKeys.Provision(as, iaEncl, proxy.IAIdentity); err != nil {
		t.Fatal(err)
	}

	names := []string{"item-a", "item-b"}
	pseudo, err := iaKeys.PseudonymizeItems(names)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stub.NewWithItems(pseudo)
	if err != nil {
		t.Fatal(err)
	}
	lrsL, err := n.Listen("lrs")
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Serve(lrsL, st)()

	httpClient := transport.HTTPClient(n, 10*time.Second)
	ia, err := proxy.New(proxy.Config{Role: proxy.RoleIA, Enclave: iaEncl, Next: "http://lrs", HTTPClient: httpClient})
	if err != nil {
		t.Fatal(err)
	}
	iaL, err := n.Listen("ia")
	if err != nil {
		t.Fatal(err)
	}
	defer transport.Serve(iaL, ia)()

	ua, err := proxy.New(proxy.Config{Role: proxy.RoleUA, Enclave: uaEncl, Next: "http://ia", HTTPClient: httpClient})
	if err != nil {
		t.Fatal(err)
	}
	uaL, err := n.Listen("ua")
	if err != nil {
		t.Fatal(err)
	}
	srv := &eventloop.Server{Handler: ua, Workers: 2}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(uaL) }()
	defer func() {
		srv.Close(uaL)
		<-serveDone
	}()

	cl := client.New(proxy.Bundle(uaKeys, iaKeys), httpClient, "http://ua")
	ctx := t.Context()
	if err := cl.Post(ctx, "alice", "item-a", ""); err != nil {
		t.Fatalf("post through eventloop-served UA: %v", err)
	}
	items, err := cl.Get(ctx, "alice")
	if err != nil {
		t.Fatalf("get through eventloop-served UA: %v", err)
	}
	if len(items) != 2 || items[0] != "item-a" {
		t.Errorf("items = %v", items)
	}
}
