package eventloop

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pprox/internal/transport"
)

func TestQueueFIFOSingleThreaded(t *testing.T) {
	q := NewQueue[int]()
	if _, ok := q.Pop(); ok {
		t.Fatal("empty queue popped a value")
	}
	for i := 0; i < 100; i++ {
		q.Push(i)
	}
	if q.Len() != 100 {
		t.Errorf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("Pop #%d = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("drained queue popped a value")
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d after drain", q.Len())
	}
}

func TestQueueConcurrentProducersConsumers(t *testing.T) {
	q := NewQueue[int]()
	const producers = 4
	const perProducer = 2500
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.Push(p*perProducer + i)
			}
		}(p)
	}

	var consumed sync.Map
	var count atomic.Int64
	var cwg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < 4; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, ok := q.Pop()
				if ok {
					if _, dup := consumed.LoadOrStore(v, true); dup {
						t.Errorf("value %d consumed twice", v)
					}
					count.Add(1)
					continue
				}
				select {
				case <-stop:
					// Final drain after producers are done.
					for {
						v, ok := q.Pop()
						if !ok {
							return
						}
						if _, dup := consumed.LoadOrStore(v, true); dup {
							t.Errorf("value %d consumed twice", v)
						}
						count.Add(1)
					}
				default:
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	cwg.Wait()
	if got := count.Load(); got != producers*perProducer {
		t.Errorf("consumed %d of %d", got, producers*perProducer)
	}
}

func TestQueuePerProducerOrderPreserved(t *testing.T) {
	// MPMC FIFO: a single producer's values come out in push order even
	// under concurrent consumption.
	q := NewQueue[int]()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			q.Push(i)
		}
	}()
	last := -1
	for {
		v, ok := q.Pop()
		if ok {
			if v <= last {
				t.Fatalf("order violated: %d after %d", v, last)
			}
			last = v
			if v == 4999 {
				break
			}
			continue
		}
		select {
		case <-done:
			if last == 4999 {
				return
			}
		default:
		}
	}
	<-done
}

// startServer runs an eventloop server on the in-memory network.
func startServer(t *testing.T, s *Server) (*transport.Network, func()) {
	t.Helper()
	n := transport.NewNetwork()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	cleanup := func() {
		s.Close(l)
		select {
		case <-serveDone:
		case <-time.After(5 * time.Second):
			t.Error("Serve did not return after Close")
		}
		n.Close()
	}
	return n, cleanup
}

func TestServerHTTPRoundTrip(t *testing.T) {
	s := &Server{
		Workers: 2,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			body, _ := io.ReadAll(r.Body)
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprintf(w, "echo:%s:%s", r.URL.Path, body)
		}),
	}
	n, cleanup := startServer(t, s)
	defer cleanup()

	client := transport.HTTPClient(n, 5*time.Second)
	resp, err := client.Post("http://svc/x", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "echo:/x:hello" {
		t.Errorf("body = %q", body)
	}
}

func TestServerKeepAliveReusesConnection(t *testing.T) {
	var remotes sync.Map
	s := &Server{
		Workers: 2,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			remotes.Store(r.RemoteAddr, true)
			io.WriteString(w, "ok")
		}),
	}
	n, cleanup := startServer(t, s)
	defer cleanup()

	client := transport.HTTPClient(n, 5*time.Second)
	for i := 0; i < 5; i++ {
		resp, err := client.Get("http://svc/")
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	served := waitServed(t, s, 5)
	if served != 5 {
		t.Errorf("served = %d, want 5", served)
	}
	if _, errCount, _ := s.Stats(); errCount != 0 {
		t.Errorf("errors = %d", errCount)
	}
}

// waitServed polls the served counter: the synchronous in-memory pipes
// hand the response to the client marginally before the server-side
// goroutine bumps its counter.
func waitServed(t *testing.T, s *Server, want uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		served, _, _ := s.Stats()
		if served >= want || time.Now().After(deadline) {
			return served
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerBoundsConcurrency(t *testing.T) {
	// The fixed pool must never run more handlers at once than Workers.
	var inFlight, peak atomic.Int64
	s := &Server{
		Workers: 2,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			cur := inFlight.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(10 * time.Millisecond)
			inFlight.Add(-1)
			io.WriteString(w, "ok")
		}),
	}
	n, cleanup := startServer(t, s)
	defer cleanup()

	client := transport.HTTPClient(n, 10*time.Second)
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := client.Get("http://svc/")
			if err != nil {
				t.Errorf("request: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent handlers = %d, pool size 2", p)
	}
	if served := waitServed(t, s, 12); served != 12 {
		t.Errorf("served = %d", served)
	}
	_, _, maxWait := s.Stats()
	// Fairness bound: 12 requests × 10 ms over 2 workers → the worst
	// queueing wait is about (12/2)·10 ms; anything wildly larger means
	// starvation.
	if maxWait > 2*time.Second {
		t.Errorf("max queue wait %v — starvation", maxWait)
	}
}

func TestServerMalformedRequest(t *testing.T) {
	s := &Server{
		Workers: 1,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
	}
	n, cleanup := startServer(t, s)
	defer cleanup()

	conn, err := n.DialContext(t.Context(), "mem", "svc")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("NOT HTTP AT ALL\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, errs, _ := s.Stats(); errs > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("malformed request not counted as error")
}

func TestServerRequiresHandler(t *testing.T) {
	s := &Server{}
	n := transport.NewNetwork()
	defer n.Close()
	l, err := n.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve(l); err == nil {
		t.Error("Serve accepted a nil handler")
	}
}
