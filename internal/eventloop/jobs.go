package eventloop

import (
	"sync"
	"sync/atomic"
)

// JobPool is the batch-stage worker pool of the epoch-batched pipeline:
// where the per-message path wakes S goroutines per shuffle flush, the
// batch path submits ONE job per epoch and a fixed pool runs epochs in
// submission order off the same lock-free queue the server uses for
// connections. Submit is non-blocking, so it is safe from under the
// shuffler lock.
type JobPool struct {
	queue  *Queue[func()]
	work   chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	once   sync.Once

	ran atomic.Uint64
}

// NewJobPool starts a pool of the given fixed size (minimum 1).
func NewJobPool(workers int) *JobPool {
	if workers < 1 {
		workers = 1
	}
	p := &JobPool{
		queue: NewQueue[func()](),
		work:  make(chan struct{}, 1<<20),
		done:  make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Submit enqueues one job. It reports false — without running the job —
// once the pool is closed; the caller owns failing the job's work.
func (p *JobPool) Submit(job func()) bool {
	if job == nil || p.closed.Load() {
		return false
	}
	p.queue.Push(job)
	select {
	case p.work <- struct{}{}:
	default:
		// Token channel full (absurd backlog): the queue entry stays
		// consumable when tokens free up, mirroring Server.enqueue.
	}
	return true
}

func (p *JobPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case <-p.work:
		}
		if job, ok := p.queue.Pop(); ok {
			job()
			p.ran.Add(1)
		}
	}
}

// Close stops the workers and then drains every still-queued job inline,
// so epochs accepted before shutdown deliver their results instead of
// vanishing. Idempotent.
func (p *JobPool) Close() {
	if p == nil {
		return
	}
	p.closed.Store(true)
	p.once.Do(func() { close(p.done) })
	p.wg.Wait()
	for {
		job, ok := p.queue.Pop()
		if !ok {
			return
		}
		job()
		p.ran.Add(1)
	}
}

// Ran returns how many jobs have completed.
func (p *JobPool) Ran() uint64 {
	if p == nil {
		return 0
	}
	return p.ran.Load()
}
