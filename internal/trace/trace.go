// Package trace implements privacy-safe, hop-local tracing for the PProx
// pipeline. Ordinary distributed tracing would destroy the unlinkability
// the proxy layers exist to provide: a trace ID propagated from the UA
// ingress to the IA egress is exactly the request↔request correlation the
// shuffler randomizes away, and even without propagation, per-span
// wall-clock timestamps let a network observer align the trace log with
// its own packet captures (the §4.3/§6.2 timing attack, re-introduced
// through the back door). Prochlo and X-Search make the same point for
// shuffling/SGX systems generally: telemetry must be anonymized at least
// as aggressively as the traffic it describes.
//
// This tracer therefore enforces four invariants:
//
//  1. Span IDs are random per hop and there is no propagation API — a
//     UA span and the IA span of the same request share nothing.
//  2. Records carry no wall-clock timestamps, only the shuffle-epoch
//     number in which the span finished.
//  3. Durations are coarsened to fixed bucket upper bounds (the same
//     resolution the public histograms already expose).
//  4. Records buffer until the epoch advances — driven by the layer's
//     shuffle flush — and are exported sorted by their random IDs, i.e.
//     in an order that is a uniformly random permutation of arrival
//     order within the epoch.
//
// The observer therefore learns per-epoch stage counts and coarse
// duration distributions (operationally useful) but cannot link any
// record to an individual request with probability better than 1/batch —
// the same guarantee the shuffler provides for network timing, proven by
// the test in internal/adversary.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	mrand "math/rand"
	"sort"
	"sync"
	"time"
)

// DefBuckets are the default duration-coarsening bucket upper bounds in
// seconds, matching the metric histogram resolution.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Record is one exported span. It deliberately contains no wall-clock
// time, no request identity, and no cross-hop correlator.
type Record struct {
	// Epoch is the shuffle-epoch number in which the span finished.
	Epoch uint64 `json:"epoch"`
	// Node is the hop that produced the span (public topology, e.g.
	// "ua-0"); it identifies a machine, never a request.
	Node string `json:"node,omitempty"`
	// Stage is the pipeline stage (e.g. "ecall_decrypt").
	Stage string `json:"stage"`
	// ID is the span's random identifier, drawn fresh at this hop.
	ID string `json:"id"`
	// DurationLE is the span duration coarsened UP to a fixed bucket
	// bound, in seconds (+Inf is reported as the largest bound ×10).
	DurationLE float64 `json:"duration_le_seconds"`
}

// Sink receives one epoch's records at flush time.
type Sink func(records []Record)

// Tracer buffers hop-local spans and flushes them at epoch granularity.
// A nil *Tracer is valid and records nothing.
type Tracer struct {
	node   string
	sink   Sink
	bounds []float64

	mu    sync.Mutex
	epoch uint64
	buf   []Record
	rng   *mrand.Rand
}

// New creates a tracer for one hop. The sink receives each flushed epoch;
// nil buckets select DefBuckets.
func New(node string, sink Sink, buckets []float64) *Tracer {
	if buckets == nil {
		buckets = DefBuckets
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		// Fall back to a time seed; trace randomness is defence in
		// depth on top of the sort-by-random-ID export order.
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	bs := append([]float64(nil), buckets...)
	sort.Float64s(bs)
	return &Tracer{
		node:   node,
		sink:   sink,
		bounds: bs,
		rng:    mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:])))),
	}
}

// Span is one in-flight stage measurement.
type Span struct {
	t     *Tracer
	stage string
	start time.Time
}

// Start opens a span for a pipeline stage. Safe on a nil tracer.
func (t *Tracer) Start(stage string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: time.Now()}
}

// End finishes the span, buffering its record into the current epoch.
func (s Span) End() {
	if s.t == nil {
		return
	}
	d := time.Since(s.start).Seconds()
	t := s.t
	t.mu.Lock()
	t.buf = append(t.buf, Record{
		Epoch:      t.epoch,
		Node:       t.node,
		Stage:      s.stage,
		ID:         fmt.Sprintf("%016x", t.rng.Uint64()),
		DurationLE: t.coarsen(d),
	})
	t.mu.Unlock()
}

// coarsen rounds a duration up to its bucket upper bound.
func (t *Tracer) coarsen(seconds float64) float64 {
	i := sort.SearchFloat64s(t.bounds, seconds)
	if i < len(t.bounds) {
		return t.bounds[i]
	}
	return t.bounds[len(t.bounds)-1] * 10 // the +Inf stand-in
}

// Epoch returns the current epoch number.
func (t *Tracer) Epoch() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// AdvanceEpoch closes the current epoch and exports its records, sorted
// by their random IDs so the export order is a uniformly random
// permutation of arrival order. Wire it to the layer's shuffle flush so
// trace granularity can never be finer than shuffle granularity. Safe on
// a nil tracer.
func (t *Tracer) AdvanceEpoch() {
	if t == nil {
		return
	}
	t.mu.Lock()
	batch := t.buf
	t.buf = nil
	t.epoch++
	sink := t.sink
	t.mu.Unlock()

	if len(batch) == 0 || sink == nil {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].ID < batch[j].ID })
	sink(batch)
}

// Collector is a Sink accumulating records in memory, for tests and for
// serving a trace dump endpoint.
type Collector struct {
	mu      sync.Mutex
	records []Record
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Sink returns the collector's sink function.
func (c *Collector) Sink() Sink {
	return func(recs []Record) {
		c.mu.Lock()
		c.records = append(c.records, recs...)
		c.mu.Unlock()
	}
}

// Records returns all collected records in export order.
func (c *Collector) Records() []Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Record(nil), c.records...)
}

// ByEpoch groups collected records for one node by epoch.
func (c *Collector) ByEpoch(node string) map[uint64][]Record {
	out := make(map[uint64][]Record)
	for _, r := range c.Records() {
		if node == "" || r.Node == node {
			out[r.Epoch] = append(out[r.Epoch], r)
		}
	}
	return out
}

// WriterSink returns a sink writing each record as one JSON line, for the
// -trace-log flag of the server binaries.
func WriterSink(w io.Writer) Sink {
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(recs []Record) {
		mu.Lock()
		defer mu.Unlock()
		for _, r := range recs {
			enc.Encode(r)
		}
	}
}
