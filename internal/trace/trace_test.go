package trace_test

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"pprox/internal/trace"
)

func TestSpansBufferUntilEpochAdvance(t *testing.T) {
	c := trace.NewCollector()
	tr := trace.New("ua-0", c.Sink(), nil)

	tr.Start("ecall_decrypt").End()
	tr.Start("forward").End()
	if got := len(c.Records()); got != 0 {
		t.Fatalf("records exported before epoch advance: %d", got)
	}

	tr.AdvanceEpoch()
	recs := c.Records()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if r.Epoch != 0 {
			t.Errorf("record epoch = %d, want 0", r.Epoch)
		}
		if r.Node != "ua-0" {
			t.Errorf("record node = %q", r.Node)
		}
	}
	if tr.Epoch() != 1 {
		t.Errorf("epoch after advance = %d, want 1", tr.Epoch())
	}

	// Later spans land in the next epoch.
	tr.Start("shuffle_wait").End()
	tr.AdvanceEpoch()
	if got := c.ByEpoch("ua-0"); len(got[1]) != 1 {
		t.Errorf("epoch 1 records = %d, want 1", len(got[1]))
	}
}

func TestDurationsCoarsenedToBucketBounds(t *testing.T) {
	c := trace.NewCollector()
	tr := trace.New("ua-0", c.Sink(), []float64{0.001, 0.01, 0.1})

	// Spans end essentially immediately — well under the first bound.
	tr.Start("s").End()
	tr.AdvanceEpoch()
	recs := c.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	allowed := map[float64]bool{0.001: true, 0.01: true, 0.1: true, 1: true}
	if !allowed[recs[0].DurationLE] {
		t.Errorf("duration %v is not a bucket bound", recs[0].DurationLE)
	}
}

func TestRecordsCarryNoTimestamps(t *testing.T) {
	c := trace.NewCollector()
	tr := trace.New("ua-0", c.Sink(), nil)
	tr.Start("s").End()
	tr.AdvanceEpoch()

	raw, err := json.Marshal(c.Records()[0])
	if err != nil {
		t.Fatal(err)
	}
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for k := range fields {
		switch k {
		case "epoch", "node", "stage", "id", "duration_le_seconds":
		default:
			t.Errorf("unexpected exported field %q — every field must be vetted for linkability", k)
		}
	}
}

func TestExportSortedByRandomID(t *testing.T) {
	c := trace.NewCollector()
	tr := trace.New("ua-0", c.Sink(), nil)
	for i := 0; i < 64; i++ {
		tr.Start("s").End()
	}
	tr.AdvanceEpoch()

	recs := c.Records()
	ids := make([]string, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	if !sort.StringsAreSorted(ids) {
		t.Error("export not sorted by span ID")
	}
	uniq := make(map[string]bool, len(ids))
	for _, id := range ids {
		uniq[id] = true
	}
	if len(uniq) != len(ids) {
		t.Errorf("span IDs collide: %d unique of %d", len(uniq), len(ids))
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	tr.Start("s").End()
	tr.AdvanceEpoch()
	if tr.Epoch() != 0 {
		t.Error("nil tracer epoch")
	}
}

func TestEmptyEpochNotExported(t *testing.T) {
	calls := 0
	tr := trace.New("ua-0", func([]trace.Record) { calls++ }, nil)
	tr.AdvanceEpoch()
	tr.AdvanceEpoch()
	if calls != 0 {
		t.Errorf("sink called %d times for empty epochs", calls)
	}
	if tr.Epoch() != 2 {
		t.Errorf("epoch = %d, want 2", tr.Epoch())
	}
}

func TestWriterSinkEmitsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	tr := trace.New("ia-0", trace.WriterSink(&buf), nil)
	tr.Start("ecall_reencrypt").End()
	tr.Start("forward").End()
	tr.AdvanceEpoch()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var r trace.Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Errorf("bad JSON line %q: %v", line, err)
		}
	}
}
