package proxy

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// Regression: readBody used a bare io.LimitReader(r, limit), so an
// oversized body was silently cut at limit bytes and handed downstream as
// if well-formed. It must be rejected with ErrBodyTooLarge instead.
func TestReadBodyRejectsOversized(t *testing.T) {
	limit := int64(64)

	if _, err := readBody(strings.NewReader(strings.Repeat("x", int(limit)+1)), limit); !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("oversized body: got err %v, want ErrBodyTooLarge", err)
	}

	// Exactly at the limit is fine — the +1 probe byte must not turn the
	// boundary case into a rejection.
	want := strings.Repeat("y", int(limit))
	got, err := readBody(strings.NewReader(want), limit)
	if err != nil {
		t.Fatalf("at-limit body: %v", err)
	}
	if string(got) != want {
		t.Fatalf("at-limit body: got %d bytes, want %d", len(got), len(want))
	}

	if _, err := readBody(strings.NewReader("short"), limit); err != nil {
		t.Fatalf("short body: %v", err)
	}
}

// Oversized request bodies must surface as 413 at the handler, not decode
// truncated garbage (handle) or a truncated envelope (handleBatch).
func TestHandlersReject413OnOversizedBody(t *testing.T) {
	// The forward client is never reached: the read rejects first.
	l, err := New(Config{
		Role:        RoleUA,
		PassThrough: true,
		Next:        "http://next",
		HTTPClient:  &http.Client{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	body := bytes.Repeat([]byte("a"), maxBody+1)
	req := httptest.NewRequest(http.MethodPost, "/events", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("/events oversized: got status %d, want 413", rec.Code)
	}
}

// readBody must not confuse a reader error with overflow.
func TestReadBodyPropagatesReadError(t *testing.T) {
	wantErr := errors.New("boom")
	r := io.MultiReader(strings.NewReader("abc"), &errReader{err: wantErr})
	if _, err := readBody(r, 1<<10); !errors.Is(err, wantErr) {
		t.Fatalf("got err %v, want %v", err, wantErr)
	}
}

type errReader struct{ err error }

func (e *errReader) Read([]byte) (int, error) { return 0, e.err }
