package proxy

import (
	"context"
	"fmt"
	"time"
)

// Drain is the privacy-safe way to retire a layer instance (DESIGN.md
// §4j). The rule it enforces: a draining instance's buffered shuffle
// epochs leave exactly as they would have on a healthy instance — full
// batches, or the one timer-bound flush the shuffler would have run
// anyway — and teardown happens only once nothing is buffered. The
// shuffler itself is never touched: there is no forced flush, because a
// forced flush IS the split epoch the 1/S argument forbids.
//
// The protocol has two phases:
//
//  1. BeginDrain (soft): the fleet registry has already stopped routing
//     new connections here; responses carry Connection: close so pooled
//     keep-alive connections (transport.HTTPClient keeps up to 1024 per
//     host) evict themselves instead of carrying new requests back.
//     In-flight and still-arriving requests are served normally and keep
//     filling the shuffler, which flushes on size or timer as ever.
//  2. RefuseNew (hard): after the caller's grace deadline, remaining
//     arrivals — e.g. hopwire frame connections, which are pooled below
//     the HTTP layer and never see the Connection header — get 503 so
//     the sender's resilience ladder retries them on a live instance.
//
// AwaitDrained completes when no request is in flight and the shuffler
// is empty; only then may the caller deregister and Close the layer.
type DrainReport struct {
	// Draining reports whether BeginDrain has run.
	Draining bool `json:"draining"`
	// PendingAtDrain is the shuffler depth when the drain began.
	PendingAtDrain int `json:"pending_at_drain"`
	// InFlight is the current number of app requests being served.
	InFlight int64 `json:"in_flight"`
	// Pending is the current shuffler depth.
	Pending int `json:"pending"`
	// Sheds counts messages shed (table full) since the drain began —
	// each one was pushed out of its anonymity set by the drain.
	Sheds uint64 `json:"sheds"`
	// Clean is the drain invariant: no message shed since the drain
	// began and the shuffler was never closed with messages buffered.
	// A clean drain released every admitted message inside an epoch the
	// shuffler itself chose — no split, no early flush.
	Clean bool `json:"clean"`
}

// BeginDrain enters the soft drain phase. Idempotent.
func (l *Layer) BeginDrain() {
	if l.draining.Swap(true) {
		return
	}
	_, sheds := l.shuffler.Stats()
	l.drainShedsBase.Store(sheds)
	l.drainPendingAt.Store(int64(l.shuffler.Pending()))
}

// RefuseNew enters the hard drain phase: new app requests get 503 while
// health and in-flight work continue. Implies BeginDrain.
func (l *Layer) RefuseNew() {
	l.BeginDrain()
	l.refusing.Store(true)
}

// Draining reports whether the layer is in (soft or hard) drain.
func (l *Layer) Draining() bool { return l.draining.Load() }

// InFlight returns the number of app requests currently being served.
func (l *Layer) InFlight() int64 { return l.inflight.Load() }

// AwaitDrained blocks until no app request is in flight and the shuffler
// is empty, or the context expires. The shuffler empties on its own: the
// last buffered messages leave with the size-triggered flush fed by
// still-draining traffic, or with the timer flush — at most one
// ShuffleTimeout after the last arrival.
func (l *Layer) AwaitDrained(ctx context.Context) error {
	if !l.draining.Load() {
		return fmt.Errorf("proxy: AwaitDrained without BeginDrain")
	}
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if l.inflight.Load() == 0 && l.shuffler.Pending() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("proxy: drain incomplete: %d in flight, %d buffered: %w",
				l.inflight.Load(), l.shuffler.Pending(), ctx.Err())
		case <-tick.C:
		}
	}
}

// DrainReport returns the drain state and its privacy invariant. Valid
// after Close as well — the auditor checks retired instances' reports.
func (l *Layer) DrainReport() DrainReport {
	rep := DrainReport{
		Draining:       l.draining.Load(),
		PendingAtDrain: int(l.drainPendingAt.Load()),
		InFlight:       l.inflight.Load(),
		Pending:        l.shuffler.Pending(),
	}
	if rep.Draining {
		_, sheds := l.shuffler.Stats()
		rep.Sheds = sheds - l.drainShedsBase.Load()
		rep.Clean = rep.Sheds == 0 && !l.drainStranded.Load()
	}
	return rep
}
