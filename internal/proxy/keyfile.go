package proxy

import (
	"encoding/base64"
	"encoding/json"
	"fmt"

	"pprox/internal/ppcrypto"
)

// keyfile.go serializes key material for the cmd/ binaries and the
// examples: the RaaS client application generates layer keys with
// pprox-keygen, provisions the proxy processes with the full file, and
// embeds only the public bundle in its front end.

// KeyFile is the JSON form of both layers' full key material. It is held
// by the RaaS client application only; proxy layer processes receive it
// at start-up to provision their enclaves.
type KeyFile struct {
	UA LayerKeyJSON `json:"ua"`
	IA LayerKeyJSON `json:"ia"`
	// LinkKey is the shared hop-envelope key (base64, optional). It sits
	// at the top level rather than per layer because it is one key held
	// by both enclaves; see LayerKeys.LinkKey.
	LinkKey string `json:"link_key,omitempty"`
}

// LayerKeyJSON is one layer's key material in serialized form.
type LayerKeyJSON struct {
	// PrivateKeyDER is the PKCS#8 private key, base64.
	PrivateKeyDER string `json:"private_key_der"`
	// PermanentKey is the 32-byte pseudonymization key, base64.
	PermanentKey string `json:"permanent_key"`
}

// BundleFile is the JSON form of the public bundle embedded in the
// user-side library.
type BundleFile struct {
	// UAPublicDER and IAPublicDER are PKIX public keys, base64.
	UAPublicDER string `json:"ua_public_der"`
	IAPublicDER string `json:"ia_public_der"`
}

// MarshalKeyFile serializes both layers' keys. A link key is taken from
// either layer (they hold the same one; PairLinkKey guarantees it).
func MarshalKeyFile(ua, ia *LayerKeys) ([]byte, error) {
	uaJSON, err := layerToJSON(ua)
	if err != nil {
		return nil, err
	}
	iaJSON, err := layerToJSON(ia)
	if err != nil {
		return nil, err
	}
	kf := KeyFile{UA: uaJSON, IA: iaJSON}
	if link := firstKey(ua.LinkKey, ia.LinkKey); len(link) > 0 {
		kf.LinkKey = base64.StdEncoding.EncodeToString(link)
	}
	return json.MarshalIndent(kf, "", "  ")
}

func firstKey(keys ...[]byte) []byte {
	for _, k := range keys {
		if len(k) > 0 {
			return k
		}
	}
	return nil
}

func layerToJSON(lk *LayerKeys) (LayerKeyJSON, error) {
	der, err := ppcrypto.MarshalPrivateKey(lk.Pair.Private)
	if err != nil {
		return LayerKeyJSON{}, err
	}
	return LayerKeyJSON{
		PrivateKeyDER: base64.StdEncoding.EncodeToString(der),
		PermanentKey:  base64.StdEncoding.EncodeToString(lk.Permanent),
	}, nil
}

// UnmarshalKeyFile parses a key file back into both layers' keys.
func UnmarshalKeyFile(data []byte) (ua, ia *LayerKeys, err error) {
	var kf KeyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		return nil, nil, fmt.Errorf("parse key file: %w", err)
	}
	if ua, err = layerFromJSON(kf.UA); err != nil {
		return nil, nil, fmt.Errorf("UA keys: %w", err)
	}
	if ia, err = layerFromJSON(kf.IA); err != nil {
		return nil, nil, fmt.Errorf("IA keys: %w", err)
	}
	if kf.LinkKey != "" {
		link, err := base64.StdEncoding.DecodeString(kf.LinkKey)
		if err != nil {
			return nil, nil, fmt.Errorf("decode link key: %w", err)
		}
		if len(link) != ppcrypto.SymmetricKeySize {
			return nil, nil, fmt.Errorf("link key is %d bytes, want %d", len(link), ppcrypto.SymmetricKeySize)
		}
		ua.LinkKey = link
		ia.LinkKey = append([]byte(nil), link...)
	}
	return ua, ia, nil
}

func layerFromJSON(lj LayerKeyJSON) (*LayerKeys, error) {
	der, err := base64.StdEncoding.DecodeString(lj.PrivateKeyDER)
	if err != nil {
		return nil, fmt.Errorf("decode private key: %w", err)
	}
	priv, err := ppcrypto.UnmarshalPrivateKey(der)
	if err != nil {
		return nil, err
	}
	perm, err := base64.StdEncoding.DecodeString(lj.PermanentKey)
	if err != nil {
		return nil, fmt.Errorf("decode permanent key: %w", err)
	}
	if len(perm) != ppcrypto.SymmetricKeySize {
		return nil, fmt.Errorf("permanent key is %d bytes, want %d", len(perm), ppcrypto.SymmetricKeySize)
	}
	return &LayerKeys{
		Pair:      &ppcrypto.KeyPair{Private: priv, Public: &priv.PublicKey},
		Permanent: perm,
	}, nil
}

// MarshalBundleFile serializes the public bundle.
func MarshalBundleFile(b PublicBundle) ([]byte, error) {
	uaDER, err := ppcrypto.MarshalPublicKey(b.UAPublic)
	if err != nil {
		return nil, err
	}
	iaDER, err := ppcrypto.MarshalPublicKey(b.IAPublic)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(BundleFile{
		UAPublicDER: base64.StdEncoding.EncodeToString(uaDER),
		IAPublicDER: base64.StdEncoding.EncodeToString(iaDER),
	}, "", "  ")
}

// UnmarshalBundleFile parses a public bundle.
func UnmarshalBundleFile(data []byte) (PublicBundle, error) {
	var bf BundleFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return PublicBundle{}, fmt.Errorf("parse bundle file: %w", err)
	}
	uaDER, err := base64.StdEncoding.DecodeString(bf.UAPublicDER)
	if err != nil {
		return PublicBundle{}, fmt.Errorf("decode UA public key: %w", err)
	}
	iaDER, err := base64.StdEncoding.DecodeString(bf.IAPublicDER)
	if err != nil {
		return PublicBundle{}, fmt.Errorf("decode IA public key: %w", err)
	}
	uaPub, err := ppcrypto.UnmarshalPublicKey(uaDER)
	if err != nil {
		return PublicBundle{}, err
	}
	iaPub, err := ppcrypto.UnmarshalPublicKey(iaDER)
	if err != nil {
		return PublicBundle{}, err
	}
	return PublicBundle{UAPublic: uaPub, IAPublic: iaPub}, nil
}
