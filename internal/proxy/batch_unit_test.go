package proxy

import (
	"bytes"
	"testing"

	"pprox/internal/enclave"
)

// TestCallBatchEPCFallback: when a whole epoch's marshalling buffer
// cannot fit the EPC, the layer falls back to per-message crossings —
// slower, but the epoch completes — and counts the event.
func TestCallBatchEPCFallback(t *testing.T) {
	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(as)
	id := enclave.CodeIdentity{Name: "batch-unit", Version: "1.0"}
	e := platform.LaunchWithEPC(id, 4) // 4 pages: batches beyond 16 KiB overflow
	e.Register("echo", func(s enclave.Secrets, kv *enclave.KV, in []byte) ([]byte, error) {
		return in, nil
	})
	if err := enclave.AttestAndProvision(as, e, enclave.Measure(id), map[string][]byte{"k": []byte("v")}); err != nil {
		t.Fatal(err)
	}

	l, err := New(Config{
		Role:        RoleUA,
		Next:        "http://ia",
		Enclave:     e,
		ShuffleSize: 4,
		Batch:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	ins := make([][]byte, 5)
	for i := range ins {
		ins[i] = bytes.Repeat([]byte{byte(i)}, enclave.PageSize)
	}
	outs, errs := l.callBatch("echo", ins)
	for i := range ins {
		if errs[i] != nil {
			t.Fatalf("fallback message %d: %v", i, errs[i])
		}
		if !bytes.Equal(outs[i], ins[i]) {
			t.Fatalf("fallback message %d corrupted", i)
		}
	}
	if got := l.BatchStats().EPCFallbacks; got != 1 {
		t.Errorf("EPCFallbacks = %d, want 1", got)
	}
	// The fallback ran per-message crossings: more than one, none batched.
	if got := e.EcallCount(); got != uint64(len(ins)) {
		t.Errorf("EcallCount = %d, want %d per-message crossings", got, len(ins))
	}
}
