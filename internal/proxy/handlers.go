package proxy

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"

	"pprox/internal/enclave"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/reccache"
)

// Secret names under which layer key material is provisioned into
// enclaves (Table 1 of the paper).
const (
	// SecretPrivateKey is skUA / skIA: the layer private key decrypting
	// fields the user-side library encrypted for this layer alone.
	SecretPrivateKey = "sk"
	// SecretPermanentKey is kUA / kIA: the permanent symmetric key
	// deterministically pseudonymizing identifiers for the LRS.
	SecretPermanentKey = "k"
	// SecretLinkKey is the optional hop-envelope key shared by the UA and
	// IA enclaves. When present, the UA enclave wraps every outbound body
	// in a randomized AES-CTR envelope (fresh IV per encryption), and a
	// retried request is re-wrapped before leaving again — so an observer
	// of the UA→IA link never sees the same ciphertext twice and cannot
	// link a retry to the attempt it repeats. It is deployment-wide, not
	// per-tenant: the IA must strip the envelope before it can read which
	// tenant a message belongs to.
	SecretLinkKey = "link"
)

// ECALL entry points registered by each layer's enclave code.
const (
	ecallUAPost     = "ua/post"
	ecallUAGet      = "ua/get"
	ecallIAPost     = "ia/post"
	ecallIAGet      = "ia/get"
	ecallIAGetResp  = "ia/get-response"
	ecallLinkRewrap = "link/rewrap"
)

// Code identities measured at attestation time. Version changes (e.g. the
// item-pseudonymization variant) change the measurement, so a provisioner
// always knows which code it is trusting with keys.
var (
	// UAIdentity is the User Anonymizer enclave code identity.
	UAIdentity = enclave.CodeIdentity{Name: "pprox-ua", Version: "1.0"}
	// IAIdentity is the Item Anonymizer enclave code identity.
	IAIdentity = enclave.CodeIdentity{Name: "pprox-ia", Version: "1.0"}
	// IAIdentityNoItemPseudonyms is the IA variant with item
	// pseudonymization disabled (§6.3, configuration m4).
	IAIdentityNoItemPseudonyms = enclave.CodeIdentity{Name: "pprox-ia", Version: "1.0-noitempseudo"}
)

// iaGetCall frames the IA get-path ECALL: the opaque request body plus the
// host-chosen handle under which the enclave parks the temporary key k_u
// in its EPC key-value store until the LRS response arrives. Fill, on the
// response ECALL, marks the coalescing leader: only it writes the fetched
// list into the recommendation cache, so N coalesced followers do not
// re-fill N times.
type iaGetCall struct {
	Handle string          `json:"handle"`
	Body   json.RawMessage `json:"body"`
	Fill   bool            `json:"fill,omitempty"`
}

// iaGetResult is the ia/get ECALL output when the recommendation cache is
// enabled. On a hit, Body is the finished GetResponse — sealed under the
// client's k_u inside the ECALL — and no LRS hop is needed. On a miss,
// Body is the LRSGet request to forward and Key is the coalescing key
// (tenant + user pseudonym, both of which the host sees on the LRS link
// anyway) under which concurrent misses share one fetch.
type iaGetResult struct {
	Hit  bool            `json:"hit"`
	Key  string          `json:"key,omitempty"`
	Body json.RawMessage `json:"body"`
}

// parkedKey is the pending-response state the ia/get ECALL parks in the
// EPC KV store until the LRS answers: the client's temporary key, the
// tenant whose kIA decodes the response, and the user pseudonym the
// response ECALL fills the cache under. It never leaves the enclave.
type parkedKey struct {
	Ku     []byte `json:"ku"`
	Tenant string `json:"tenant"`
	User   string `json:"user"`
}

// errEnclave wraps handler-internal failures; the untrusted server sees
// only that processing failed, never why a ciphertext was rejected.
var errEnclave = errors.New("proxy: enclave processing failed")

// TenantSecret qualifies a secret name for a tenant: one enclave may be
// provisioned with several applications' keys (§6.3 multi-tenancy). The
// empty tenant selects the single-tenant names.
func TenantSecret(base, tenant string) string {
	if tenant == "" {
		return base
	}
	return base + "@" + tenant
}

func getSecret(s enclave.Secrets, base, tenant string) ([]byte, error) {
	name := TenantSecret(base, tenant)
	v, ok := s.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: secret %q missing", errEnclave, name)
	}
	return v, nil
}

// linkEnvelope is the hop-encrypted form of a message on the UA→IA link:
// the inner JSON encrypted under the shared link key with ppcrypto's
// randomized (fresh-IV) symmetric path, in base64. Its presence is
// detectable by the host — that is fine, every message on the link looks
// the same — but its content and the relation between two envelopes are
// not.
type linkEnvelope struct {
	Link string `json:"link"`
}

// wrapLink seals plain into a fresh envelope. Each call draws a fresh IV,
// so wrapping the same plaintext twice yields unrelated ciphertexts.
func wrapLink(key, plain []byte) ([]byte, error) {
	ct, err := ppcrypto.SymEncrypt(key, plain)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEnclave, err)
	}
	return message.Marshal(linkEnvelope{Link: message.Encode64(ct)})
}

// unwrapLink opens an envelope produced by wrapLink.
func unwrapLink(key, data []byte) ([]byte, error) {
	var env linkEnvelope
	if err := message.Unmarshal(data, &env); err != nil || env.Link == "" {
		return nil, fmt.Errorf("%w: not a link envelope", errEnclave)
	}
	ct, err := message.Decode64(env.Link)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEnclave, err)
	}
	plain, err := ppcrypto.SymDecrypt(key, ct)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEnclave, err)
	}
	return plain, nil
}

// maybeWrapLink seals an outbound UA body when the enclave holds the link
// key; without one (legacy deployments) the body passes unchanged.
func maybeWrapLink(s enclave.Secrets, out []byte) ([]byte, error) {
	key, ok := s.Get(SecretLinkKey)
	if !ok {
		return out, nil
	}
	return wrapLink(key, out)
}

// maybeUnwrapLink opens an inbound IA body if it is an envelope; plain
// bodies (deployments without a link key) pass unchanged. An envelope
// arriving at an enclave without the key is rejected rather than parsed as
// a request.
func maybeUnwrapLink(s enclave.Secrets, data []byte) ([]byte, error) {
	var env linkEnvelope
	if err := message.Unmarshal(data, &env); err != nil || env.Link == "" {
		return data, nil
	}
	key, ok := s.Get(SecretLinkKey)
	if !ok {
		return nil, fmt.Errorf("%w: link-wrapped message but no link key provisioned", errEnclave)
	}
	return unwrapLink(key, data)
}

// mintIdem draws a fresh idempotency key for a feedback event. Minted
// inside the UA enclave so it first exists *after* the edge link: the
// client never sees it and cannot be linked to it.
func mintIdem() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("%w: %v", errEnclave, err)
	}
	return message.Encode64(b[:]), nil
}

func privateKey(s enclave.Secrets, tenant string) (*ppcrypto.KeyPair, error) {
	der, err := getSecret(s, SecretPrivateKey, tenant)
	if err != nil {
		return nil, err
	}
	priv, err := ppcrypto.UnmarshalPrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errEnclave, err)
	}
	return &ppcrypto.KeyPair{Private: priv, Public: &priv.PublicKey}, nil
}

// NewUAEnclave launches a User Anonymizer enclave on the platform and
// registers its measured code. The UA layer sees the user identifier in
// the clear (after decrypting with skUA) and replaces it with its stable
// pseudonym det_enc(u, kUA); it can never see item identifiers (§3).
func NewUAEnclave(p *enclave.Platform) *enclave.Enclave {
	e := p.Launch(UAIdentity)

	pseudonymizeUser := func(s enclave.Secrets, tenant, encUser string) (string, error) {
		kp, err := privateKey(s, tenant)
		if err != nil {
			return "", err
		}
		kUA, err := getSecret(s, SecretPermanentKey, tenant)
		if err != nil {
			return "", err
		}
		ct, err := message.Decode64(encUser)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		block, err := ppcrypto.DecryptOAEP(kp.Private, ct)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		u, err := ppcrypto.UnpadID(block)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		pseudo, err := ppcrypto.Pseudonymize(kUA, u)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		return message.Encode64(pseudo), nil
	}

	e.Register(ecallUAPost, func(s enclave.Secrets, _ *enclave.KV, in []byte) ([]byte, error) {
		var req message.PostRequest
		if err := message.Unmarshal(in, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		pseudo, err := pseudonymizeUser(s, req.Tenant, req.EncUser)
		if err != nil {
			return nil, err
		}
		req.EncUser = pseudo
		// Replace whatever the client put in Idem: only an enclave-minted
		// key is safe — a client-chosen one would be visible on both the
		// edge link and the LRS link, linking the two across the shuffler.
		if req.Idem, err = mintIdem(); err != nil {
			return nil, err
		}
		out, err := message.Marshal(req)
		if err != nil {
			return nil, err
		}
		return maybeWrapLink(s, out)
	})

	e.Register(ecallUAGet, func(s enclave.Secrets, _ *enclave.KV, in []byte) ([]byte, error) {
		var req message.GetRequest
		if err := message.Unmarshal(in, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		pseudo, err := pseudonymizeUser(s, req.Tenant, req.EncUser)
		if err != nil {
			return nil, err
		}
		req.EncUser = pseudo
		out, err := message.Marshal(req)
		if err != nil {
			return nil, err
		}
		return maybeWrapLink(s, out)
	})

	// link/rewrap re-randomizes a hop envelope before a retry leaves the
	// UA again: decrypt, re-encrypt with a fresh IV. The retried request
	// is byte-wise unrelated to the failed attempt, so an observer of the
	// UA→IA link cannot tell a retry from a new request.
	e.Register(ecallLinkRewrap, func(s enclave.Secrets, _ *enclave.KV, in []byte) ([]byte, error) {
		key, ok := s.Get(SecretLinkKey)
		if !ok {
			return nil, fmt.Errorf("%w: no link key provisioned", errEnclave)
		}
		plain, err := unwrapLink(key, in)
		if err != nil {
			return nil, err
		}
		return wrapLink(key, plain)
	})

	return e
}

// IAOptions selects Item Anonymizer code variants.
type IAOptions struct {
	// DisableItemPseudonymization sends item identifiers to the LRS in
	// the clear (§6.3): useful for semantics-based recommenders, at the
	// cost of weakening the adversary the design tolerates.
	DisableItemPseudonymization bool
	// Cache enables the in-enclave recommendation cache: get-path ECALLs
	// look up the user pseudonym before asking the LRS, response ECALLs
	// fill it, and rating POSTs invalidate it. The cache's EPC pages are
	// charged against this enclave's budget (Bind happens at launch).
	Cache *reccache.Cache
}

// IAIdentityFor returns the code identity matching the options, for
// attestation. The cache variant changes the measurement — caching code
// is part of what the provisioner trusts with keys.
func IAIdentityFor(opts IAOptions) enclave.CodeIdentity {
	ci := IAIdentity
	if opts.DisableItemPseudonymization {
		ci = IAIdentityNoItemPseudonyms
	}
	if opts.Cache != nil {
		ci.Version += "+cache"
	}
	return ci
}

// NewIAEnclave launches an Item Anonymizer enclave. The IA layer sees item
// identifiers in the clear and pseudonymizes them for the LRS; it can
// never see user identifiers or client addresses (§3). On the get path it
// keeps the temporary key k_u in its EPC key-value store and uses it to
// re-encrypt the recommendation list so the UA layer cannot read it.
func NewIAEnclave(p *enclave.Platform, opts IAOptions) *enclave.Enclave {
	e := p.Launch(IAIdentityFor(opts))
	if opts.Cache != nil {
		// Cache entries draw on this enclave's EPC budget, like the KV
		// store does; EPC pressure evicts LRU entries instead of
		// failing requests.
		opts.Cache.Bind(e)
	}

	decryptItem := func(s enclave.Secrets, tenant, encItem string) (string, error) {
		kp, err := privateKey(s, tenant)
		if err != nil {
			return "", err
		}
		ct, err := message.Decode64(encItem)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		block, err := ppcrypto.DecryptOAEP(kp.Private, ct)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		item, err := ppcrypto.UnpadID(block)
		if err != nil {
			return "", fmt.Errorf("%w: %v", errEnclave, err)
		}
		return item, nil
	}

	// sealItems finishes a recommendation list for release: truncate,
	// de-pseudonymize under kIA, and encrypt under the client's temporary
	// key k_u. Shared by the cache-hit path and the LRS-response path, so
	// a cached entry is only ever sealed at release time, under the key of
	// the client asking *now* — nothing client-encrypted is ever stored.
	sealItems := func(s enclave.Secrets, tenant string, ku []byte, items []string) ([]byte, error) {
		if len(items) > message.MaxRecommendations {
			items = items[:message.MaxRecommendations]
		}
		clear := make([]string, 0, len(items))
		if opts.DisableItemPseudonymization {
			clear = append(clear, items...)
		} else {
			kIA, err := getSecret(s, SecretPermanentKey, tenant)
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				pseudo, err := message.Decode64(it)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", errEnclave, err)
				}
				id, err := ppcrypto.Depseudonymize(kIA, pseudo)
				if err != nil {
					return nil, fmt.Errorf("%w: %v", errEnclave, err)
				}
				clear = append(clear, id)
			}
		}
		packed, err := message.EncodeItemList(clear)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		encrypted, err := ppcrypto.SymEncrypt(ku, packed)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		return message.Marshal(message.GetResponse{EncItems: message.Encode64(encrypted)})
	}

	e.Register(ecallIAPost, func(s enclave.Secrets, _ *enclave.KV, in []byte) ([]byte, error) {
		in, err := maybeUnwrapLink(s, in)
		if err != nil {
			return nil, err
		}
		var req message.PostRequest
		if err := message.Unmarshal(in, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		item, err := decryptItem(s, req.Tenant, req.EncItem)
		if err != nil {
			return nil, err
		}
		if opts.Cache != nil {
			// A new rating changes this user's profile: whatever list is
			// cached for the pseudonym must not outlive the event.
			opts.Cache.Invalidate(req.Tenant, req.EncUser)
		}
		lrsItem := item
		if !opts.DisableItemPseudonymization {
			kIA, err := getSecret(s, SecretPermanentKey, req.Tenant)
			if err != nil {
				return nil, err
			}
			pseudo, err := ppcrypto.Pseudonymize(kIA, item)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", errEnclave, err)
			}
			lrsItem = message.Encode64(pseudo)
		}
		return message.Marshal(message.LRSPost{
			User:    req.EncUser, // already det_enc(u, kUA) in base64
			Item:    lrsItem,
			Payload: req.Payload,
			Event:   req.Event,
			Tenant:  req.Tenant,
			Idem:    req.Idem, // UA-minted; the LRS dedups retried events
		})
	})

	e.Register(ecallIAGet, func(s enclave.Secrets, kv *enclave.KV, in []byte) ([]byte, error) {
		var call iaGetCall
		if err := message.Unmarshal(in, &call); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		body, err := maybeUnwrapLink(s, call.Body)
		if err != nil {
			return nil, err
		}
		var req message.GetRequest
		if err := message.Unmarshal(body, &req); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		kp, err := privateKey(s, req.Tenant)
		if err != nil {
			return nil, err
		}
		ct, err := message.Decode64(req.EncTempKey)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		ku, err := ppcrypto.DecryptOAEP(kp.Private, ct)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		if len(ku) != ppcrypto.SymmetricKeySize {
			return nil, fmt.Errorf("%w: temporary key has wrong size", errEnclave)
		}
		if opts.Cache != nil {
			if items, ok := opts.Cache.Get(req.Tenant, req.EncUser); ok {
				// Cache hit: seal the pseudonymized list under this
				// client's k_u right here, inside the enclave. The host
				// gets a finished GetResponse and skips the LRS hop; the
				// response still re-enters the shuffler like any miss.
				sealed, err := sealItems(s, req.Tenant, ku, items)
				if err != nil {
					return nil, err
				}
				return message.Marshal(iaGetResult{Hit: true, Body: sealed})
			}
		}
		// Park k_u (plus the tenant whose kIA decodes the response and
		// the pseudonym the response fills the cache under) in the EPC KV
		// store until the LRS answers; none of it ever crosses the
		// enclave boundary.
		parked, err := message.Marshal(parkedKey{Ku: ku, Tenant: req.Tenant, User: req.EncUser})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		if err := kv.Put(call.Handle, parked); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		lrs, err := message.Marshal(message.LRSGet{User: req.EncUser, N: message.MaxRecommendations, Tenant: req.Tenant})
		if err != nil {
			return nil, err
		}
		if opts.Cache == nil {
			return lrs, nil
		}
		return message.Marshal(iaGetResult{Key: req.Tenant + "\x00" + req.EncUser, Body: lrs})
	})

	e.Register(ecallIAGetResp, func(s enclave.Secrets, kv *enclave.KV, in []byte) ([]byte, error) {
		var call iaGetCall
		if err := message.Unmarshal(in, &call); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		var resp message.LRSGetResponse
		if err := message.Unmarshal(call.Body, &resp); err != nil {
			return nil, fmt.Errorf("%w: %v", errEnclave, err)
		}
		parked, ok := kv.Take(call.Handle)
		if !ok {
			return nil, fmt.Errorf("%w: no pending temporary key for handle", errEnclave)
		}
		var pk parkedKey
		if err := message.Unmarshal(parked, &pk); err != nil || len(pk.Ku) != ppcrypto.SymmetricKeySize {
			return nil, fmt.Errorf("%w: pending-key state corrupt", errEnclave)
		}

		items := resp.Items
		if len(items) > message.MaxRecommendations {
			items = items[:message.MaxRecommendations]
		}
		if opts.Cache != nil && call.Fill {
			// Fill with the list exactly as the LRS returned it —
			// pseudonymized, never client-encrypted. Best effort: a fill
			// the EPC cannot hold is dropped, the request is not.
			_ = opts.Cache.Put(pk.Tenant, pk.User, items)
		}
		return sealItems(s, pk.Tenant, pk.Ku, items)
	})

	return e
}
