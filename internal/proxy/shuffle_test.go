package proxy

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestShufflerDisabledIsImmediate(t *testing.T) {
	for _, s := range []*Shuffler{nil, NewShuffler(0, 0, 0), NewShuffler(1, 0, 0)} {
		start := time.Now()
		if _, err := s.Wait(context.Background()); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if time.Since(start) > 50*time.Millisecond {
			t.Error("disabled shuffler delayed the message")
		}
	}
}

// runBatch enqueues n messages and returns each message's release
// position, indexed by arrival index.
func runBatch(t *testing.T, sh *Shuffler, n int) []int {
	t.Helper()
	positions := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Arrivals strictly ordered: wait for this message to be
		// buffered (pending reaches want) — or for the batch to flush,
		// when this message was the one that completed it — before
		// enqueueing the next. Checking the flush counter rather than
		// Pending()==0 matters: pending is also 0 *before* the message
		// arrives, and exiting early there would let two goroutines
		// race into Wait in arbitrary slot order.
		want := sh.Pending() + 1
		flushed, _ := sh.Stats()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pos, err := sh.Wait(context.Background())
			if err != nil {
				t.Errorf("Wait: %v", err)
				return
			}
			positions[i] = pos
		}(i)
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if sh.Pending() == want {
				break
			}
			if f, _ := sh.Stats(); f != flushed {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
	wg.Wait()
	return positions
}

func TestShufflerReleasesFullBatchWithPermutation(t *testing.T) {
	const s = 8
	sh := NewShuffler(s, time.Minute, 0)
	positions := runBatch(t, sh, s)

	// The positions must be a permutation of 0..s-1.
	sorted := append([]int(nil), positions...)
	sort.Ints(sorted)
	for i, p := range sorted {
		if p != i {
			t.Fatalf("positions %v are not a permutation", positions)
		}
	}
	flushes, sheds := sh.Stats()
	if flushes != 1 || sheds != 0 {
		t.Errorf("stats = %d flushes, %d sheds", flushes, sheds)
	}
}

func TestShufflerRandomizesOrder(t *testing.T) {
	// Across several batches, at least one must release in a
	// non-identity order (P[all identity] = (1/8!)^4 ≈ 0).
	const s = 8
	identityAlways := true
	for trial := 0; trial < 4 && identityAlways; trial++ {
		sh := NewShuffler(s, time.Minute, 0)
		positions := runBatch(t, sh, s)
		for i, p := range positions {
			if p != i {
				identityAlways = false
				break
			}
		}
	}
	if identityAlways {
		t.Error("every batch released in arrival order; shuffling is not randomizing")
	}
}

func TestShufflerTimerFlushesPartialBatch(t *testing.T) {
	sh := NewShuffler(10, 30*time.Millisecond, 0)
	start := time.Now()
	if _, err := sh.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Errorf("released after %v, before the timer", elapsed)
	}
	if elapsed > 500*time.Millisecond {
		t.Errorf("released after %v, long after the timer", elapsed)
	}
}

func TestShufflerBlocksUntilBatchCompletes(t *testing.T) {
	sh := NewShuffler(2, time.Minute, 0)
	first := make(chan error, 1)
	go func() {
		_, err := sh.Wait(context.Background())
		first <- err
	}()
	select {
	case err := <-first:
		t.Fatalf("first message released alone (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	// Second message completes the batch; both release.
	if _, err := sh.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("first Wait: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("first message never released")
	}
}

func TestShufflerTableFullSheds(t *testing.T) {
	// §5: the table T must be sized larger than S, otherwise requests
	// drop. Misconfigure it deliberately (table 100 < size 200): the
	// flush threshold is never reached, the table saturates at 100, and
	// further arrivals shed with ErrTableFull.
	sh3 := NewShuffler(200, time.Minute, 100)
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed, released := 0, 0
	for i := 0; i < 150; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := sh3.Wait(context.Background())
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				released++
			case errors.Is(err, ErrTableFull):
				shed++
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Wait until the table is saturated, then release everyone.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := shed
		mu.Unlock()
		if done == 50 && sh3.Pending() == 100 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	sh3.Close()
	wg.Wait()
	if shed != 50 || released != 100 {
		t.Errorf("shed=%d released=%d, want 50/100", shed, released)
	}
	if _, sheds := sh3.Stats(); sheds != 50 {
		t.Errorf("Stats sheds = %d", sheds)
	}
}

func TestShufflerContextCancellation(t *testing.T) {
	sh := NewShuffler(10, time.Minute, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := sh.Wait(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The abandoned slot still counts toward the next flush.
	if sh.Pending() != 1 {
		t.Errorf("pending = %d, want 1", sh.Pending())
	}
}

func TestShufflerCloseReleasesPending(t *testing.T) {
	sh := NewShuffler(10, time.Minute, 0)
	done := make(chan error, 1)
	go func() {
		_, err := sh.Wait(context.Background())
		done <- err
	}()
	for i := 0; i < 1000 && sh.Pending() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	sh.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait after Close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not release pending message")
	}
	// Closing an idle or nil shuffler is a no-op.
	sh.Close()
	var nilSh *Shuffler
	nilSh.Close()
}

func TestShufflerSizeAccessor(t *testing.T) {
	if got := NewShuffler(7, 0, 0).Size(); got != 7 {
		t.Errorf("Size = %d", got)
	}
}

// TestShufflerSeedUnpredictable is the regression test for the predictable
// permutation bug: the shuffler used to seed math/rand with the boot
// timestamp, letting an adversary who recovers the start time replay every
// permutation. Two production shufflers must draw from independent streams,
// while the test-only seeded constructor must be reproducible.
func TestShufflerSeedUnpredictable(t *testing.T) {
	const s = 8
	seq := func(sh *Shuffler) []int {
		var out []int
		for b := 0; b < 4; b++ {
			out = append(out, runBatch(t, sh, s)...)
		}
		return out
	}
	equal := func(a, b []int) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}

	var seed [32]byte
	seed[0] = 42
	if !equal(seq(NewShufflerSeeded(s, time.Minute, 0, seed)),
		seq(NewShufflerSeeded(s, time.Minute, 0, seed))) {
		t.Error("seeded shuffler is not deterministic for a fixed seed")
	}

	// Back-to-back production shufflers: under correct crypto seeding the
	// streams collide with probability (1/8!)⁴ ≈ 0; under the old
	// time-based seeding, shufflers born in the same clock tick shared
	// the stream.
	if equal(seq(NewShuffler(s, time.Minute, 0)), seq(NewShuffler(s, time.Minute, 0))) {
		t.Error("two production shufflers produced identical permutation streams")
	}
}

// TestShufflerDepartedCallersAdvanceFlush covers the cancellation path: a
// caller that gives up leaves its slot in the buffer, so later arrivals
// still reach the flush threshold instead of waiting for the timer.
func TestShufflerDepartedCallersAdvanceFlush(t *testing.T) {
	sh := NewShuffler(3, time.Minute, 0)
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := sh.Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait with departed caller: err = %v", err)
		}
	}
	if sh.Pending() != 2 {
		t.Fatalf("pending = %d after two departures, want 2", sh.Pending())
	}
	// A third, live caller completes the batch: it must release right
	// away (the timer is a minute out), at a position drawn over the full
	// 3-slot batch including the departed slots.
	start := time.Now()
	pos, err := sh.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("live caller released after %v; departed slots did not advance the flush", elapsed)
	}
	if pos < 0 || pos >= 3 {
		t.Errorf("release position %d outside the 3-message batch", pos)
	}
	if flushes, _ := sh.Stats(); flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
}

// TestShufflerCloseTerminal: Close flushes the pending partial batch so
// in-flight waiters release, and is TERMINAL — later admissions fail
// fast with ErrShufflerClosed instead of parking in a batch that will
// never flush (the pre-terminal behavior silently re-armed the timer and
// kept "serving" during shutdown, racing the HTTP server teardown).
func TestShufflerCloseTerminal(t *testing.T) {
	sh := NewShuffler(10, 30*time.Millisecond, 0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := sh.Wait(context.Background()); err != nil {
			t.Errorf("Wait before Close: %v", err)
		}
	}()
	for i := 0; i < 1000 && sh.Pending() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	sh.Close()
	<-done

	if _, err := sh.Wait(context.Background()); !errors.Is(err, ErrShufflerClosed) {
		t.Fatalf("Wait after Close: err = %v, want ErrShufflerClosed", err)
	}
	if err := sh.Enqueue("late"); !errors.Is(err, ErrShufflerClosed) {
		t.Fatalf("Enqueue after Close: err = %v, want ErrShufflerClosed", err)
	}
	if _, err := sh.ReleaseBatch(3); !errors.Is(err, ErrShufflerClosed) {
		t.Fatalf("ReleaseBatch after Close: err = %v, want ErrShufflerClosed", err)
	}
	sh.Close() // idempotent
}

// TestShufflerCloseRace hammers Close against concurrent Wait admissions:
// every waiter must resolve (batch release, flush-on-close, or
// ErrShufflerClosed) — none may hang, and none may park after the close.
func TestShufflerCloseRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		sh := NewShuffler(4, time.Hour, 0)
		const waiters = 32
		errs := make(chan error, waiters)
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_, err := sh.Wait(ctx)
				errs <- err
			}()
		}
		runtime.Gosched()
		sh.Close()
		wg.Wait()
		close(errs)
		for err := range errs {
			switch {
			case err == nil, errors.Is(err, ErrShufflerClosed), errors.Is(err, ErrTableFull):
			case errors.Is(err, context.DeadlineExceeded):
				t.Fatalf("round %d: a waiter hung across Close", round)
			default:
				t.Fatalf("round %d: unexpected waiter error: %v", round, err)
			}
		}
	}
}

// TestShufflerPermutationUniformity is a statistical check on the privacy
// mechanism itself (§6.2 assumes uniformly random release order): over
// many batches, arrival position i must land on release position j with
// frequency ≈ 1/S for every (i, j). A chi-square statistic over the S×S
// contingency table guards against a biased (e.g. off-by-one or
// swap-only) shuffle.
func TestShufflerPermutationUniformity(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const s = 6
	const batches = 600
	counts := make([][]int, s)
	for i := range counts {
		counts[i] = make([]int, s)
	}
	for b := 0; b < batches; b++ {
		sh := NewShuffler(s, time.Minute, 0)
		positions := runBatch(t, sh, s)
		for arrival, release := range positions {
			counts[arrival][release]++
		}
	}
	expected := float64(batches) / float64(s)
	chi2 := 0.0
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			d := float64(counts[i][j]) - expected
			chi2 += d * d / expected
		}
	}
	// Degrees of freedom (s-1)^2 = 25; the 99.9th percentile of chi2(25)
	// is ≈ 52.6. Using a generous 75 keeps the false-failure rate
	// negligible while still catching any structural bias.
	if chi2 > 75 {
		t.Errorf("shuffle permutation bias: chi² = %.1f over %d batches (counts %v)", chi2, batches, counts)
	}
}

// TestShufflerBatchSink: in batch-release mode a threshold flush hands
// the WHOLE epoch to the sink in one call, in the epoch's permuted order
// — a permutation of the enqueued values, not necessarily their arrival
// order.
func TestShufflerBatchSink(t *testing.T) {
	const s = 16
	var seed [32]byte
	seed[0] = 7
	sh := NewShufflerSeeded(s, time.Hour, 0, seed)
	var epochs [][]any
	sh.SetBatchSink(func(vals []any) {
		batch := make([]any, len(vals))
		copy(batch, vals)
		epochs = append(epochs, batch)
	})
	var flushHook int
	sh.SetHooks(nil, func(batch int) { flushHook = batch })

	for i := 0; i < s; i++ {
		if err := sh.Enqueue(i); err != nil {
			t.Fatalf("Enqueue(%d): %v", i, err)
		}
	}
	if len(epochs) != 1 {
		t.Fatalf("sink calls = %d, want 1 (one whole epoch)", len(epochs))
	}
	got := epochs[0]
	if len(got) != s {
		t.Fatalf("epoch size = %d, want %d", len(got), s)
	}
	seen := make(map[int]bool, s)
	identity := true
	for pos, v := range got {
		i := v.(int)
		if seen[i] {
			t.Fatalf("value %d released twice", i)
		}
		seen[i] = true
		if i != pos {
			identity = false
		}
	}
	if identity {
		t.Error("epoch released in arrival order: the sink must see the permutation")
	}
	if flushHook != s {
		t.Errorf("onFlush batch = %d, want %d", flushHook, s)
	}
	if flushes, _ := sh.Stats(); flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
}

// TestShufflerBatchTimerFlush: a partial epoch flushes to the sink on the
// timer, so batch mode cannot strand a quiet period's messages.
func TestShufflerBatchTimerFlush(t *testing.T) {
	sh := NewShuffler(64, 20*time.Millisecond, 0)
	got := make(chan int, 1)
	sh.SetBatchSink(func(vals []any) { got <- len(vals) })
	for i := 0; i < 3; i++ {
		if err := sh.Enqueue(i); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	select {
	case n := <-got:
		if n != 3 {
			t.Errorf("timer epoch size = %d, want 3", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timer never flushed the partial epoch to the sink")
	}
}

// TestShufflerMixedWaitAndEnqueue: waiter slots and batch values share
// one epoch — the flush threshold counts both, waiters get positions and
// the sink gets the values.
func TestShufflerMixedWaitAndEnqueue(t *testing.T) {
	sh := NewShuffler(4, time.Hour, 0)
	vals := make(chan []any, 1)
	sh.SetBatchSink(func(v []any) {
		batch := make([]any, len(v))
		copy(batch, v)
		vals <- batch
	})
	type waitRes struct {
		pos int
		err error
	}
	waited := make(chan waitRes, 2)
	for i := 0; i < 2; i++ {
		go func() {
			pos, err := sh.Wait(context.Background())
			waited <- waitRes{pos, err}
		}()
	}
	for i := 0; i < 1000 && sh.Pending() < 2; i++ {
		time.Sleep(time.Millisecond)
	}
	if err := sh.Enqueue("a"); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if err := sh.Enqueue("b"); err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	batch := <-vals
	if len(batch) != 2 {
		t.Fatalf("sink got %d values, want 2", len(batch))
	}
	for i := 0; i < 2; i++ {
		r := <-waited
		if r.err != nil {
			t.Errorf("waiter: %v", r.err)
		}
		if r.pos < 0 || r.pos >= 4 {
			t.Errorf("waiter position %d out of the epoch's range", r.pos)
		}
	}
}

// TestShufflerReleaseBatch: an inbound batch epoch is accounted as one
// flush with a fresh permutation; empty and shuffling-off cases are
// identity without flush accounting.
func TestShufflerReleaseBatch(t *testing.T) {
	sh := NewShuffler(8, time.Hour, 0)
	var hookBatch int
	sh.SetHooks(nil, func(batch int) { hookBatch = batch })
	perm, err := sh.ReleaseBatch(6)
	if err != nil {
		t.Fatalf("ReleaseBatch: %v", err)
	}
	if len(perm) != 6 {
		t.Fatalf("perm length = %d, want 6", len(perm))
	}
	seen := make([]bool, 6)
	for _, p := range perm {
		if p < 0 || p >= 6 || seen[p] {
			t.Fatalf("perm = %v is not a permutation of 0..5", perm)
		}
		seen[p] = true
	}
	if flushes, _ := sh.Stats(); flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
	if hookBatch != 6 {
		t.Errorf("onFlush batch = %d, want 6", hookBatch)
	}

	if perm, err := sh.ReleaseBatch(0); err != nil || len(perm) != 0 {
		t.Errorf("ReleaseBatch(0) = %v, %v; want empty identity", perm, err)
	}
	if flushes, _ := sh.Stats(); flushes != 1 {
		t.Error("an empty envelope must not count as a shuffle epoch")
	}

	var nilSh *Shuffler
	perm, err = nilSh.ReleaseBatch(3)
	if err != nil || len(perm) != 3 || perm[0] != 0 || perm[1] != 1 || perm[2] != 2 {
		t.Errorf("nil shuffler ReleaseBatch = %v, %v; want identity", perm, err)
	}
}

// Regression: ReleaseBatch built an identity permutation up front on
// every call and then discarded it on the hot path, where rng.Perm
// allocates the real one — a throwaway slice per batched epoch. The hot
// path must allocate exactly the permutation it returns.
func TestReleaseBatchHotPathAllocsOnce(t *testing.T) {
	s := NewShuffler(8, time.Minute, 0)
	defer s.Close()
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.ReleaseBatch(32); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("ReleaseBatch(32) allocates %.0f objects/op, want 1 (rng.Perm only)", allocs)
	}

	// The degenerate branch still returns the identity permutation.
	var nilShuffler *Shuffler
	perm, err := nilShuffler.ReleaseBatch(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if p != i {
			t.Fatalf("nil shuffler perm = %v, want identity", perm)
		}
	}
}
