package proxy_test

import (
	"context"
	"encoding/base64"
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/lrs/engine"
	"pprox/internal/lrs/store"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
	"pprox/internal/transport"
)

// tenantStack deploys ONE proxy pair serving TWO applications (§6.3
// multi-tenancy): both tenants' keys live in the same enclaves, raising
// the traffic each shuffle buffer sees.
type tenantStack struct {
	net     *transport.Network
	engines map[string]*engine.Engine
	uaEncl  *enclave.Enclave
	iaEncl  *enclave.Enclave
	keysUA  map[string]*proxy.LayerKeys
	keysIA  map[string]*proxy.LayerKeys
	clients map[string]*client.Client
}

func newTenantStack(t *testing.T, tenants []string) *tenantStack {
	t.Helper()
	st := &tenantStack{
		net:     transport.NewNetwork(),
		engines: make(map[string]*engine.Engine),
		keysUA:  make(map[string]*proxy.LayerKeys),
		keysIA:  make(map[string]*proxy.LayerKeys),
		clients: make(map[string]*client.Client),
	}
	t.Cleanup(func() { st.net.Close() })

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(as)
	st.uaEncl = proxy.NewUAEnclave(platform)
	st.iaEncl = proxy.NewIAEnclave(platform, proxy.IAOptions{})

	for _, tenant := range tenants {
		if st.keysUA[tenant], err = proxy.NewLayerKeys(); err != nil {
			t.Fatal(err)
		}
		if st.keysIA[tenant], err = proxy.NewLayerKeys(); err != nil {
			t.Fatal(err)
		}
	}
	if err := proxy.ProvisionTenants(as, st.uaEncl, proxy.UAIdentity, st.keysUA); err != nil {
		t.Fatal(err)
	}
	if err := proxy.ProvisionTenants(as, st.iaEncl, proxy.IAIdentity, st.keysIA); err != nil {
		t.Fatal(err)
	}

	// One engine per application, routed by tenant — the Harness
	// deployment model.
	for _, tenant := range tenants {
		st.engines[tenant] = engine.New(engine.DefaultConfig())
	}
	l, err := st.net.Listen("lrs")
	if err != nil {
		t.Fatal(err)
	}
	sd := transport.Serve(l, engine.NewMultiHandler(st.engines, nil))
	t.Cleanup(func() { sd() })

	httpClient := transport.HTTPClient(st.net, 10*time.Second)
	ia, err := proxy.New(proxy.Config{Role: proxy.RoleIA, Enclave: st.iaEncl, Next: "http://lrs", HTTPClient: httpClient})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := st.net.Listen("ia")
	if err != nil {
		t.Fatal(err)
	}
	sd2 := transport.Serve(l2, ia)
	t.Cleanup(func() { sd2() })

	ua, err := proxy.New(proxy.Config{Role: proxy.RoleUA, Enclave: st.uaEncl, Next: "http://ia", HTTPClient: httpClient})
	if err != nil {
		t.Fatal(err)
	}
	l3, err := st.net.Listen("ua")
	if err != nil {
		t.Fatal(err)
	}
	sd3 := transport.Serve(l3, ua)
	t.Cleanup(func() { sd3() })

	base := client.New(proxy.PublicBundle{}, httpClient, "http://ua")
	for _, tenant := range tenants {
		st.clients[tenant] = base.ForTenant(tenant, proxy.Bundle(st.keysUA[tenant], st.keysIA[tenant]))
	}
	return st
}

func TestMultiTenantIsolationAndFunction(t *testing.T) {
	st := newTenantStack(t, []string{"shop", "forum"})
	ctx := context.Background()

	// The same user name exists in both applications; their pseudonyms
	// must differ (per-tenant kUA) and both tenants must work end to
	// end through the shared enclaves.
	if err := st.clients["shop"].Post(ctx, "alice", "toaster", ""); err != nil {
		t.Fatalf("shop post: %v", err)
	}
	if err := st.clients["forum"].Post(ctx, "alice", "thread-42", ""); err != nil {
		t.Fatalf("forum post: %v", err)
	}

	var users []string
	for _, tenant := range []string{"shop", "forum"} {
		st.engines[tenant].ForEachEvent(func(d store.Document) {
			users = append(users, d.Fields["user"])
			if raw, err := base64.StdEncoding.DecodeString(d.Fields["user"]); err != nil || len(raw) != 64 {
				t.Errorf("unpseudonymized user %q at LRS", d.Fields["user"])
			}
		})
	}
	if len(users) != 2 || users[0] == users[1] {
		t.Errorf("same user in two tenants must map to distinct pseudonyms: %v", users)
	}
}

func TestMultiTenantGetPath(t *testing.T) {
	st := newTenantStack(t, []string{"shop", "forum"})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		u := string(rune('a'+i)) + "-user"
		if err := st.clients["shop"].Post(ctx, u, "x", ""); err != nil {
			t.Fatal(err)
		}
		if err := st.clients["shop"].Post(ctx, u, "y", ""); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := st.clients["shop"].Post(ctx, string(rune('p'+i))+"-s", "z", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.clients["shop"].Post(ctx, "probe", "x", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.engines["shop"].TrainNow(); err != nil {
		t.Fatal(err)
	}

	items, err := st.clients["shop"].Get(ctx, "probe")
	if err != nil {
		t.Fatalf("tenant get: %v", err)
	}
	if len(items) == 0 || items[0] != "y" {
		t.Errorf("tenant recommendations = %v, want y first", items)
	}

	// The other tenant's client cannot read shop data: its traffic
	// routes to its own (empty) engine and its keys differ.
	items, err = st.clients["forum"].Get(ctx, "probe")
	if err != nil {
		t.Fatalf("forum get: %v", err)
	}
	if len(items) != 0 {
		t.Errorf("forum tenant received items %v from an empty catalog", items)
	}
}

func TestMultiTenantCompromiseLeaksAllTenants(t *testing.T) {
	// §6.3's stated risk, verified: "This comes, however, with increased
	// risks in case an enclave is broken, as secrets for multiple
	// applications could be stolen at once."
	st := newTenantStack(t, []string{"shop", "forum"})
	ctx := context.Background()
	if err := st.clients["shop"].Post(ctx, "alice", "toaster", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.clients["forum"].Post(ctx, "bob", "thread", ""); err != nil {
		t.Fatal(err)
	}

	loot := st.uaEncl.Compromise()
	for _, tenant := range []string{"shop", "forum"} {
		kUA, ok := loot[proxy.TenantSecret("k", tenant)]
		if !ok {
			t.Fatalf("loot missing tenant %q permanent key", tenant)
		}
		// The leaked per-tenant key decrypts that tenant's pseudonyms.
		var broken bool
		st.engines[tenant].ForEachEvent(func(d store.Document) {
			raw, err := base64.StdEncoding.DecodeString(d.Fields["user"])
			if err != nil {
				return
			}
			if id, err := ppcrypto.Depseudonymize(kUA, raw); err == nil && (id == "alice" || id == "bob") {
				broken = true
			}
		})
		if !broken {
			t.Errorf("tenant %q pseudonyms survived a UA compromise — test wiring wrong", tenant)
		}
	}
}
