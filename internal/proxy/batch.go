package proxy

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pprox/internal/enclave"
	"pprox/internal/message"
	"pprox/internal/resilience"
)

// This file is the epoch-batched hop pipeline (DESIGN.md §4f). The
// per-message path wakes S goroutines per shuffle flush, each paying one
// enclave crossing and one UA→IA round trip; here a flush hands the whole
// permuted epoch to ONE job that crosses the enclave once per message
// kind and leaves as ONE batch envelope. The IA demultiplexes the
// envelope, batch-processes it, speaks the legacy per-message API to the
// LRS under a bounded fan-out, and returns every result in one envelope
// whose entry order is re-permuted by its own shuffler.
//
// Privacy: a request's envelope slot is its position in the shuffler's
// permuted release order, so a wire observer of the UA→IA link learns
// exactly what the per-message path already showed — S messages leaving
// in permuted order — minus the per-message timing. Entry ids are those
// positions (sequential integers minted after the shuffle); response
// entries echo them, which reveals no more than per-message HTTP did,
// where each response rode its own request's exchange.

// batchItem is one request riding a shuffle epoch in batch mode.
type batchItem struct {
	isGet bool
	body  []byte
	ctx   context.Context
	enq   time.Time
	done  chan batchResult // buffered 1: delivery never blocks the pipeline
}

// batchResult resolves one batch item.
type batchResult struct {
	status int
	body   []byte
	err    error
}

// deliver resolves the item once; later deliveries are dropped, which
// makes the at-most-once contract local instead of global.
func (it *batchItem) deliver(res batchResult) {
	select {
	case it.done <- res:
	default:
	}
}

// failBatchItems resolves a whole epoch with one error (pool closed
// before the epoch could run).
func failBatchItems(vals []any, err error) {
	for _, v := range vals {
		if it, ok := v.(*batchItem); ok {
			it.deliver(batchResult{err: err})
		}
	}
}

// handleUABatch is the UA request path in batch mode: join the current
// shuffle epoch without blocking a goroutine inside the pipeline, then
// wait for the epoch's batch job to resolve this message.
func (l *Layer) handleUABatch(ctx context.Context, body []byte, isGet bool) (int, []byte, error) {
	it := &batchItem{
		isGet: isGet,
		body:  body,
		ctx:   ctx,
		enq:   time.Now(),
		done:  make(chan batchResult, 1),
	}
	if err := l.shuffler.Enqueue(it); err != nil {
		return 0, nil, err
	}
	select {
	case res := <-it.done:
		if res.err != nil {
			return 0, nil, res.err
		}
		return res.status, res.body, nil
	case <-ctx.Done():
		// The caller departs; the epoch still processes the message
		// (deliver lands in the buffered channel), exactly like a Wait
		// slot whose owner timed out.
		return 0, nil, ctx.Err()
	}
}

// callBatch runs one batched enclave crossing, falling back to
// per-message ECALLs when the crossing itself cannot run — most notably
// an epoch whose marshalling buffer the EPC cannot hold.
func (l *Layer) callBatch(name string, ins [][]byte) ([][]byte, []error) {
	outs, errs, err := l.cfg.Enclave.CallBatch(name, ins)
	if err == nil {
		return outs, errs
	}
	if errors.Is(err, enclave.ErrEPCExhausted) {
		l.epcFallbacks.Add(1)
	}
	outs = make([][]byte, len(ins))
	errs = make([]error, len(ins))
	for i, in := range ins {
		outs[i], errs[i] = l.cfg.Enclave.Ecall(name, in)
	}
	return outs, errs
}

// runBatch processes one released epoch end to end on the job pool. vals
// arrive in the shuffler's permuted order; that order is the envelope
// order and slot index is entry id.
func (l *Layer) runBatch(vals []any) {
	items := make([]*batchItem, 0, len(vals))
	for _, v := range vals {
		if it, ok := v.(*batchItem); ok {
			items = append(items, it)
		}
	}
	if len(items) == 0 {
		return
	}
	now := time.Now()
	for _, it := range items {
		l.observeStageDur(StageShuffleWait, now.Sub(it.enq))
	}
	l.batches.Add(1)
	l.batchMsgs.Add(uint64(len(items)))

	// Stage 1: one enclave crossing per message kind for the whole epoch.
	outs := make([][]byte, len(items))
	dead := make([]bool, len(items))
	for _, group := range []struct {
		ecall string
		isGet bool
	}{{ecallUAGet, true}, {ecallUAPost, false}} {
		var idxs []int
		var ins [][]byte
		for i, it := range items {
			if it.isGet == group.isGet {
				idxs = append(idxs, i)
				ins = append(ins, it.body)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		start := time.Now()
		gouts, gerrs := l.callBatch(group.ecall, ins)
		l.observeStageDur(StageEcallDecrypt, time.Since(start))
		for j, i := range idxs {
			if gerrs[j] != nil {
				items[i].deliver(batchResult{err: gerrs[j]})
				dead[i] = true
				continue
			}
			outs[i] = gouts[j]
		}
	}

	// Assemble the envelope in epoch (slot) order; ids are slot indexes.
	entries := make([]message.BatchEntry, 0, len(items))
	owners := make([]*batchItem, 0, len(items))
	for i, it := range items {
		if dead[i] {
			continue
		}
		kind := message.BatchKindPost
		if it.isGet {
			kind = message.BatchKindGet
		}
		entries = append(entries, message.BatchEntry{ID: i, Kind: kind, Body: outs[i]})
		owners = append(owners, it)
	}
	if len(entries) == 0 {
		return
	}

	delivered := make([]bool, len(entries))
	deliver := func(idx int, res batchResult) {
		if delivered[idx] {
			return
		}
		delivered[idx] = true
		owners[idx].deliver(res)
	}

	// send forwards one (sub-)envelope and delivers its results; an
	// error means envelope-level failure with nothing delivered, which
	// is what the ladder retries, splits, and finally degrades.
	send := func(ids []int) error {
		if !l.breaker.Allow() {
			l.failFast.Add(1)
			return resilience.ErrBreakerOpen
		}
		sub := make([]message.BatchEntry, len(ids))
		for j, id := range ids {
			sub[j] = entries[id]
		}
		// Each (sub-)envelope send mints a fresh epoch id: the frame
		// transport matches the pooled response to this exact exchange by
		// it, and a retry is a new exchange.
		payload, err := message.MarshalBatchEpoch(nil, l.hopEpoch.Add(1), sub)
		if err != nil {
			return err
		}
		actx, cancel := l.policy.AttemptContext(context.Background())
		status, respBody, err := l.forward(actx, message.BatchPath, payload)
		cancel()
		if err != nil {
			l.breaker.Report(false)
			return err
		}
		l.breaker.Report(true)
		if status != http.StatusOK {
			return fmt.Errorf("proxy: batch hop status %d", status)
		}
		results, err := message.UnmarshalBatch(respBody)
		if err != nil {
			return err
		}
		byID := make(map[int]message.BatchEntry, len(results))
		for _, res := range results {
			byID[res.ID] = res
		}
		for _, id := range ids {
			res, ok := byID[entries[id].ID]
			if !ok {
				deliver(id, batchResult{err: fmt.Errorf("proxy: batch response missing an entry")})
				continue
			}
			st := res.Status
			if st == 0 {
				st = http.StatusOK
			}
			deliver(id, batchResult{status: st, body: res.Body})
		}
		return nil
	}

	// prep re-randomizes the sub-batch's hop envelopes as a unit before a
	// retry leaves: one link/rewrap crossing for the whole sub-batch, the
	// batch analogue of uaRetryPrep. (No shuffler re-entry: the epoch
	// already granted these messages their anonymity set, and the batch
	// itself leaves as one message.)
	prep := func(ids []int) error {
		if len(ids) == 0 || !isLinkWrapped(entries[ids[0]].Body) {
			return nil
		}
		ins := make([][]byte, len(ids))
		for j, id := range ids {
			ins[j] = entries[id].Body
		}
		start := time.Now()
		routs, rerrs := l.callBatch(ecallLinkRewrap, ins)
		l.observeStageDur(StageEcallRewrap, time.Since(start))
		for j, id := range ids {
			if rerrs[j] != nil {
				return rerrs[j]
			}
			entries[id].Body = routs[j]
		}
		return nil
	}

	// single degrades one message to the per-message forwarding path
	// under the item's own context, so one poison message cannot wedge
	// its epoch.
	single := func(id int) {
		it := owners[id]
		path := message.EventsPath
		if it.isGet {
			path = message.QueriesPath
		}
		status, respBody, err := l.forwardResilient(it.ctx, path, entries[id].Body, l.uaBatchRetryPrep)
		if err != nil {
			deliver(id, batchResult{err: err})
			return
		}
		deliver(id, batchResult{status: status, body: respBody})
	}

	outcome, err := resilience.RunBatch(context.Background(), l.policy, len(entries), send, prep, single)
	if outcome.Attempts > 1 {
		l.batchRetries.Add(uint64(outcome.Attempts - 1))
	}
	l.batchSplits.Add(uint64(outcome.Splits))
	l.batchDegraded.Add(uint64(outcome.Degraded))
	if err == nil {
		err = errors.New("proxy: batch epoch unresolved")
	}
	for idx := range entries {
		deliver(idx, batchResult{err: err})
	}
}

// uaBatchRetryPrep is uaRetryPrep for degraded per-message sends out of a
// batch epoch: re-randomize the hop envelope, but do NOT re-enter the
// shuffler — the message already spent its epoch wait, and blocking the
// job pool on a future epoch could deadlock shutdown.
func (l *Layer) uaBatchRetryPrep(ctx context.Context, body []byte) ([]byte, error) {
	if isLinkWrapped(body) {
		return l.process(StageEcallRewrap, ecallLinkRewrap, body)
	}
	return body, nil
}

// --- IA side: the /batch route ------------------------------------------

// handleBatch demultiplexes one batch envelope: batch ECALLs for the
// enclave stages, per-message LRS traffic under the bounded fan-out, and
// one response envelope whose entry order follows this layer's own
// shuffle permutation — so batch epochs feed the auditor, tracer, and
// cache exactly like waiter epochs do.
func (l *Layer) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(r.Body, maxBatchBody)
	if err != nil {
		if errors.Is(err, ErrBodyTooLarge) {
			l.fail(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		l.fail(w, http.StatusBadRequest, "read request")
		return
	}
	epoch, entries, err := message.UnmarshalBatchEpoch(body)
	if err != nil {
		l.fail(w, http.StatusBadRequest, "bad batch envelope")
		return
	}

	results := l.processBatch(r.Context(), entries)

	perm, err := l.shuffler.ReleaseBatch(len(results))
	if err != nil {
		l.fail(w, statusFor(err), failText(err))
		return
	}
	out := make([]message.BatchEntry, len(results))
	for i, p := range perm {
		out[i] = results[p]
	}
	// Answer in the wire format of the request, echoing its epoch id: a
	// frame-era UA validates the echo against its exchange, a JSON-era UA
	// (rolling upgrade) gets the envelope it can parse.
	var payload []byte
	if message.IsFrame(body) {
		payload, err = message.MarshalBatchEpoch(nil, epoch, out)
	} else {
		payload, err = message.MarshalBatchJSON(out)
	}
	if err != nil {
		l.fail(w, http.StatusInternalServerError, "marshal batch")
		return
	}
	for _, res := range results {
		if res.Status >= 200 && res.Status < 300 {
			l.served.Add(1)
		} else {
			l.failed.Add(1)
		}
	}
	if message.IsFrame(payload) {
		w.Header().Set("Content-Type", "application/octet-stream")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Write(payload)
}

// errEntry prices a failed entry with the same status mapping and
// constant text the per-message path uses.
func errEntry(id int, err error) message.BatchEntry {
	return message.BatchEntry{ID: id, Status: statusFor(err), Body: []byte(failText(err))}
}

// processBatch resolves every entry of an inbound envelope, in request
// order (the caller permutes afterwards).
func (l *Layer) processBatch(ctx context.Context, entries []message.BatchEntry) []message.BatchEntry {
	l.batches.Add(1)
	l.batchMsgs.Add(uint64(len(entries)))
	results := make([]message.BatchEntry, len(entries))
	var posts, gets []int
	for i, e := range entries {
		switch e.Kind {
		case message.BatchKindPost:
			posts = append(posts, i)
		case message.BatchKindGet:
			gets = append(gets, i)
		default:
			results[i] = message.BatchEntry{ID: e.ID, Status: http.StatusBadRequest, Body: []byte("unknown kind")}
		}
	}
	l.processBatchPosts(ctx, entries, posts, results)
	l.processBatchGets(ctx, entries, gets, results)
	return results
}

// fanOut runs fn(k) for k in [0, n) on at most the LRS semaphore's
// capacity of workers — the bounded replacement for one goroutine per
// message. fn still acquires the semaphore per request, sharing the
// budget with every other epoch and the per-message path.
func (l *Layer) fanOut(n int, fn func(k int)) {
	workers := l.lrsSem.Cap()
	if workers <= 0 || workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	ch := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range ch {
				fn(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		ch <- k
	}
	close(ch)
	wg.Wait()
}

// processBatchPosts: one ia/post crossing for the sub-batch, then
// per-message LRS inserts under the bounded fan-out.
func (l *Layer) processBatchPosts(ctx context.Context, entries []message.BatchEntry, idxs []int, results []message.BatchEntry) {
	if len(idxs) == 0 {
		return
	}
	ins := make([][]byte, len(idxs))
	for j, idx := range idxs {
		ins[j] = entries[idx].Body
	}
	start := time.Now()
	outs, errs := l.callBatch(ecallIAPost, ins)
	l.observeStageDur(StageEcallDecrypt, time.Since(start))

	var live []int
	for j, idx := range idxs {
		if errs[j] != nil {
			results[idx] = errEntry(entries[idx].ID, errs[j])
			continue
		}
		live = append(live, j)
	}
	l.fanOut(len(live), func(k int) {
		j := live[k]
		idx := idxs[j]
		status, respBody, err := l.forwardLRS(ctx, message.EventsPath, outs[j])
		if err != nil {
			results[idx] = errEntry(entries[idx].ID, err)
			return
		}
		results[idx] = message.BatchEntry{ID: entries[idx].ID, Status: status, Body: respBody}
	})
}

// batchGetState tracks one get entry between the two enclave crossings.
type batchGetState struct {
	idx    int    // position in entries/results
	handle string // parked temporary-key handle
	key    string // coalescing key (cache mode)
	body   []byte // LRS request, then LRS response
	fill   bool   // coalescing leader fills the cache
	done   bool   // terminally resolved before the response crossing
}

// processBatchGets: one ia/get crossing parks every temporary key and
// emits the LRS requests (or cache hits), the misses fetch under the
// bounded fan-out with coalescing, and one ia/get-response crossing seals
// every successful response. Handles are dropped on every early exit so
// a failed entry cannot leak its parked key in the EPC.
func (l *Layer) processBatchGets(ctx context.Context, entries []message.BatchEntry, idxs []int, results []message.BatchEntry) {
	if len(idxs) == 0 {
		return
	}
	cache := l.cfg.RecCache

	handles := make([]string, len(idxs))
	ins := make([][]byte, len(idxs))
	for j, idx := range idxs {
		handles[j] = strconv.FormatUint(l.nextHandle.Add(1), 36)
		framed, err := message.Marshal(iaGetCall{Handle: handles[j], Body: entries[idx].Body})
		if err != nil {
			results[idx] = errEntry(entries[idx].ID, err)
			continue
		}
		ins[j] = framed
	}
	start := time.Now()
	outs, errs := l.callBatch(ecallIAGet, ins)
	l.observeStageDur(StageEcallDecrypt, time.Since(start))

	states := make([]*batchGetState, 0, len(idxs))
	for j, idx := range idxs {
		if ins[j] == nil {
			continue // marshal failure already priced
		}
		if errs[j] != nil {
			results[idx] = errEntry(entries[idx].ID, errs[j])
			l.dropHandle(handles[j])
			continue
		}
		st := &batchGetState{idx: idx, handle: handles[j]}
		if cache == nil {
			st.body = outs[j]
		} else {
			var res iaGetResult
			if err := message.Unmarshal(outs[j], &res); err != nil {
				results[idx] = errEntry(entries[idx].ID, fmt.Errorf("%w: %v", errEnclave, err))
				l.dropHandle(handles[j])
				continue
			}
			if res.Hit {
				// Sealed inside the crossing; no LRS hop, no parked key.
				results[idx] = message.BatchEntry{ID: entries[idx].ID, Status: http.StatusOK, Body: res.Body}
				continue
			}
			st.key = res.Key
			st.body = res.Body
		}
		states = append(states, st)
	}

	// LRS round trips: bounded fan-out, coalesced per pseudonym when the
	// cache is on (duplicate keys inside one epoch share a single fetch).
	l.fanOut(len(states), func(k int) {
		st := states[k]
		status, lrsBody, shared, err := l.batchGetFetch(ctx, st)
		if err != nil {
			results[st.idx] = errEntry(entries[st.idx].ID, err)
			l.dropHandle(st.handle)
			st.done = true
			return
		}
		if status != http.StatusOK {
			results[st.idx] = message.BatchEntry{ID: entries[st.idx].ID, Status: status, Body: lrsBody}
			l.dropHandle(st.handle)
			st.done = true
			return
		}
		st.body = lrsBody
		st.fill = cache != nil && !shared
	})

	var pending []*batchGetState
	var respIns [][]byte
	for _, st := range states {
		if st.done {
			continue
		}
		framed, err := message.Marshal(iaGetCall{Handle: st.handle, Body: st.body, Fill: st.fill})
		if err != nil {
			results[st.idx] = errEntry(entries[st.idx].ID, err)
			l.dropHandle(st.handle)
			continue
		}
		pending = append(pending, st)
		respIns = append(respIns, framed)
	}
	if len(pending) == 0 {
		return
	}
	start = time.Now()
	respOuts, respErrs := l.callBatch(ecallIAGetResp, respIns)
	l.observeStageDur(StageEcallReencrypt, time.Since(start))
	for k, st := range pending {
		if respErrs[k] != nil {
			// The re-encrypt crossing consumes the parked key only on
			// success; clear it or the failed entry leaks EPC.
			results[st.idx] = errEntry(entries[st.idx].ID, respErrs[k])
			l.dropHandle(st.handle)
			continue
		}
		results[st.idx] = message.BatchEntry{ID: entries[st.idx].ID, Status: http.StatusOK, Body: respOuts[k]}
	}
}

// batchGetFetch runs one get's LRS round trip, coalescing concurrent
// misses for the same pseudonym through the cache's single-flight door
// (with the same follower-retry-on-leader-failure rule as the
// per-message path).
func (l *Layer) batchGetFetch(ctx context.Context, st *batchGetState) (status int, body []byte, shared bool, err error) {
	if st.key == "" {
		status, body, err = l.forwardLRS(ctx, message.QueriesPath, st.body)
		return status, body, false, err
	}
	v, shared, err := l.cfg.RecCache.Do(ctx, st.key, func() (any, error) {
		status, lrsBody, err := l.forwardLRS(ctx, message.QueriesPath, st.body)
		if err != nil {
			return nil, err
		}
		return fetchResult{status, lrsBody}, nil
	})
	if err != nil && shared && ctx.Err() == nil {
		// The leader failed under its own deadline and breaker draw;
		// this follower is still alive, so give it one fetch of its own.
		var s int
		var b []byte
		if s, b, err = l.forwardLRS(ctx, message.QueriesPath, st.body); err == nil {
			v = fetchResult{s, b}
		}
	}
	if err != nil {
		return 0, nil, shared, err
	}
	fr := v.(fetchResult)
	return fr.status, fr.body, shared, nil
}
