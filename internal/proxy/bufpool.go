package proxy

import (
	"bytes"
	"io"
	"sync"
)

// bodyPool recycles the scratch buffers behind every body read on the hot
// path (request ingress and upstream responses). A bare io.ReadAll grows
// a fresh chain of ever-larger slices per message; at high S that churn
// dominates the allocation profile (see BenchmarkAblation_BodyBuffers).
// Pooled buffers keep their grown capacity across messages; only the
// final right-sized copy escapes.
var bodyPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// readBody reads r to EOF (bounded by limit) through a pooled buffer and
// returns a fresh copy the caller may retain; the scratch buffer never
// escapes the pool.
func readBody(r io.Reader, limit int64) ([]byte, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bodyPool.Put(buf)
	}()
	if _, err := buf.ReadFrom(io.LimitReader(r, limit)); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}
