package proxy

import (
	"bytes"
	"errors"
	"io"
	"sync"
)

// ErrBodyTooLarge reports a body longer than the caller's limit. It is an
// explicit rejection, not a truncation: a silently cut body would decode
// as garbage downstream or, worse, pass a truncated padded block through
// the pipeline as if it were well-formed.
var ErrBodyTooLarge = errors.New("proxy: body exceeds size limit")

// bodyPool recycles the scratch buffers behind every body read on the hot
// path (request ingress and upstream responses). A bare io.ReadAll grows
// a fresh chain of ever-larger slices per message; at high S that churn
// dominates the allocation profile (see BenchmarkAblation_BodyBuffers).
// Pooled buffers keep their grown capacity across messages; only the
// final right-sized copy escapes.
var bodyPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// readBody reads r to EOF through a pooled buffer and returns a fresh
// copy the caller may retain; the scratch buffer never escapes the pool.
// A body longer than limit is rejected with ErrBodyTooLarge — the read
// takes limit+1 bytes so overflow is detected instead of truncated.
func readBody(r io.Reader, limit int64) ([]byte, error) {
	buf := bodyPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bodyPool.Put(buf)
	}()
	n, err := buf.ReadFrom(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if n > limit {
		return nil, ErrBodyTooLarge
	}
	return append([]byte(nil), buf.Bytes()...), nil
}
