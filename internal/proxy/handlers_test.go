package proxy

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"pprox/internal/enclave"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
)

// handlers_test.go exercises the enclave ECALL handlers directly, without
// the HTTP plumbing: crafted ciphertexts in, transformed messages out.

type layerFixture struct {
	as     *enclave.AttestationService
	uaEncl *enclave.Enclave
	iaEncl *enclave.Enclave
	uaKeys *LayerKeys
	iaKeys *LayerKeys
}

// Key generation is slow; share one fixture per test binary and rebuild
// only enclaves per test when needed.
var (
	fixtureOnce sync.Once
	fixture     *layerFixture
	fixtureErr  error
)

func newFixture(t *testing.T) *layerFixture {
	t.Helper()
	fixtureOnce.Do(func() {
		f := &layerFixture{}
		if f.as, fixtureErr = enclave.NewAttestationService(); fixtureErr != nil {
			return
		}
		platform := enclave.NewPlatform(f.as)
		f.uaEncl = NewUAEnclave(platform)
		f.iaEncl = NewIAEnclave(platform, IAOptions{})
		if f.uaKeys, fixtureErr = NewLayerKeys(); fixtureErr != nil {
			return
		}
		if f.iaKeys, fixtureErr = NewLayerKeys(); fixtureErr != nil {
			return
		}
		if fixtureErr = f.uaKeys.Provision(f.as, f.uaEncl, UAIdentity); fixtureErr != nil {
			return
		}
		fixtureErr = f.iaKeys.Provision(f.as, f.iaEncl, IAIdentity)
		fixture = f
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func (f *layerFixture) encFor(t *testing.T, keys *LayerKeys, id string) string {
	t.Helper()
	block, err := ppcrypto.PadID(id)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ppcrypto.EncryptOAEP(keys.Pair.Public, block)
	if err != nil {
		t.Fatal(err)
	}
	return message.Encode64(ct)
}

func (f *layerFixture) pseudonym(t *testing.T, keys *LayerKeys, id string) string {
	t.Helper()
	p, err := ppcrypto.Pseudonymize(keys.Permanent, id)
	if err != nil {
		t.Fatal(err)
	}
	return message.Encode64(p)
}

func TestUAPostEcallPseudonymizesUserOnly(t *testing.T) {
	f := newFixture(t)
	in, err := message.Marshal(message.PostRequest{
		EncUser: f.encFor(t, f.uaKeys, "alice"),
		EncItem: f.encFor(t, f.iaKeys, "dune"),
		Payload: "4.5",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.uaEncl.Ecall("ua/post", in)
	if err != nil {
		t.Fatalf("ua/post: %v", err)
	}
	var got message.PostRequest
	if err := message.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.EncUser != f.pseudonym(t, f.uaKeys, "alice") {
		t.Error("EncUser is not det_enc(u, kUA)")
	}
	var orig message.PostRequest
	if err := message.Unmarshal(in, &orig); err != nil {
		t.Fatal(err)
	}
	if got.EncItem != orig.EncItem {
		t.Error("UA layer modified the item field it must not be able to read")
	}
	if got.Payload != "4.5" {
		t.Error("payload not forwarded")
	}
}

func TestUAGetEcallPreservesTempKey(t *testing.T) {
	f := newFixture(t)
	ku, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	encKu, err := ppcrypto.EncryptOAEP(f.iaKeys.Pair.Public, ku)
	if err != nil {
		t.Fatal(err)
	}
	in, err := message.Marshal(message.GetRequest{
		EncUser:    f.encFor(t, f.uaKeys, "bob"),
		EncTempKey: message.Encode64(encKu),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.uaEncl.Ecall("ua/get", in)
	if err != nil {
		t.Fatal(err)
	}
	var got message.GetRequest
	if err := message.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.EncUser != f.pseudonym(t, f.uaKeys, "bob") {
		t.Error("user not pseudonymized")
	}
	if got.EncTempKey != message.Encode64(encKu) {
		t.Error("temp key field modified by the UA layer")
	}
}

func TestUAEcallRejectsBadInput(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"not base64", `{"enc_user":"!!!","enc_item":"AAAA"}`},
		{"wrong size ciphertext", `{"enc_user":"AAAA","enc_item":"AAAA"}`},
		{"garbage ciphertext", fmt.Sprintf(`{"enc_user":%q,"enc_item":"AAAA"}`,
			message.Encode64(make([]byte, ppcrypto.RSACiphertextSize)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := f.uaEncl.Ecall("ua/post", []byte(tc.body)); !errors.Is(err, errEnclave) {
				t.Errorf("err = %v, want errEnclave", err)
			}
		})
	}
}

func TestUARejectsCiphertextForWrongLayer(t *testing.T) {
	// A user field encrypted for the IA layer must not decrypt at the UA.
	f := newFixture(t)
	in, err := message.Marshal(message.PostRequest{
		EncUser: f.encFor(t, f.iaKeys, "alice"), // wrong key on purpose
		EncItem: f.encFor(t, f.iaKeys, "dune"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.uaEncl.Ecall("ua/post", in); !errors.Is(err, errEnclave) {
		t.Fatalf("err = %v, want errEnclave", err)
	}
}

func TestIAPostEcallProducesLRSPseudonyms(t *testing.T) {
	f := newFixture(t)
	userPseudo := f.pseudonym(t, f.uaKeys, "alice")
	in, err := message.Marshal(message.PostRequest{
		EncUser: userPseudo, // already rewritten by the UA layer
		EncItem: f.encFor(t, f.iaKeys, "dune"),
		Payload: "3.0",
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.iaEncl.Ecall("ia/post", in)
	if err != nil {
		t.Fatal(err)
	}
	var got message.LRSPost
	if err := message.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.User != userPseudo {
		t.Error("IA layer altered the opaque user pseudonym")
	}
	if got.Item != f.pseudonym(t, f.iaKeys, "dune") {
		t.Error("item is not det_enc(i, kIA)")
	}
	if strings.Contains(string(out), "dune") {
		t.Error("cleartext item leaked to the LRS message")
	}
	if got.Payload != "3.0" {
		t.Error("payload dropped")
	}
}

func TestIAPostWithItemPseudonymizationDisabled(t *testing.T) {
	f := newFixture(t)
	platform := enclave.NewPlatform(f.as)
	ia := NewIAEnclave(platform, IAOptions{DisableItemPseudonymization: true})
	if err := f.iaKeys.Provision(f.as, ia, IAIdentityNoItemPseudonyms); err != nil {
		t.Fatal(err)
	}
	in, err := message.Marshal(message.PostRequest{
		EncUser: f.pseudonym(t, f.uaKeys, "alice"),
		EncItem: f.encFor(t, f.iaKeys, "dune"),
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ia.Ecall("ia/post", in)
	if err != nil {
		t.Fatal(err)
	}
	var got message.LRSPost
	if err := message.Unmarshal(out, &got); err != nil {
		t.Fatal(err)
	}
	if got.Item != "dune" {
		t.Errorf("item = %q, want cleartext with pseudonymization disabled (§6.3)", got.Item)
	}
}

func TestIAGetRoundTripThroughKV(t *testing.T) {
	f := newFixture(t)
	ku, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	encKu, err := ppcrypto.EncryptOAEP(f.iaKeys.Pair.Public, ku)
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := message.Marshal(message.GetRequest{
		EncUser:    f.pseudonym(t, f.uaKeys, "carol"),
		EncTempKey: message.Encode64(encKu),
	})
	if err != nil {
		t.Fatal(err)
	}
	framed, err := message.Marshal(iaGetCall{Handle: "h-1", Body: reqBody})
	if err != nil {
		t.Fatal(err)
	}
	lrsReq, err := f.iaEncl.Ecall("ia/get", framed)
	if err != nil {
		t.Fatalf("ia/get: %v", err)
	}
	var lrsGet message.LRSGet
	if err := message.Unmarshal(lrsReq, &lrsGet); err != nil {
		t.Fatal(err)
	}
	if lrsGet.User != f.pseudonym(t, f.uaKeys, "carol") {
		t.Error("LRS get does not carry the user pseudonym")
	}
	if strings.Contains(string(lrsReq), "enc_temp_key") {
		t.Error("temp key leaked toward the LRS")
	}
	if f.iaEncl.KV().Len() != 1 {
		t.Fatalf("KV holds %d entries, want the parked k_u", f.iaEncl.KV().Len())
	}

	// LRS answers with pseudonymized items; the response ECALL must
	// de-pseudonymize and re-encrypt under k_u, consuming the handle.
	lrsResp, err := message.Marshal(message.LRSGetResponse{
		Items: []string{f.pseudonym(t, f.iaKeys, "dune"), f.pseudonym(t, f.iaKeys, "hyperion")},
	})
	if err != nil {
		t.Fatal(err)
	}
	framedResp, err := message.Marshal(iaGetCall{Handle: "h-1", Body: lrsResp})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.iaEncl.Ecall("ia/get-response", framedResp)
	if err != nil {
		t.Fatalf("ia/get-response: %v", err)
	}
	var resp message.GetResponse
	if err := message.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	ct, err := message.Decode64(resp.EncItems)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := ppcrypto.SymDecrypt(ku, ct)
	if err != nil {
		t.Fatal(err)
	}
	items, err := message.DecodeItemList(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0] != "dune" || items[1] != "hyperion" {
		t.Errorf("items = %v", items)
	}
	if f.iaEncl.KV().Len() != 0 {
		t.Error("k_u not consumed from the KV store")
	}

	// Replaying the response (same handle) must fail: k_u is gone.
	if _, err := f.iaEncl.Ecall("ia/get-response", framedResp); !errors.Is(err, errEnclave) {
		t.Errorf("replayed response accepted: err = %v", err)
	}
}

func TestIAGetRejectsWrongSizeTempKey(t *testing.T) {
	f := newFixture(t)
	// Encrypt a 16-byte blob as the "temp key": must be rejected.
	short, err := ppcrypto.EncryptOAEP(f.iaKeys.Pair.Public, make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	reqBody, err := message.Marshal(message.GetRequest{
		EncUser:    f.pseudonym(t, f.uaKeys, "x"),
		EncTempKey: message.Encode64(short),
	})
	if err != nil {
		t.Fatal(err)
	}
	framed, err := message.Marshal(iaGetCall{Handle: "h-bad", Body: reqBody})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.iaEncl.Ecall("ia/get", framed); !errors.Is(err, errEnclave) {
		t.Fatalf("err = %v, want errEnclave", err)
	}
	if f.iaEncl.KV().Len() != 0 {
		t.Error("rejected request still parked a key")
	}
}

func TestIAGetResponseTruncatesOversizedLists(t *testing.T) {
	f := newFixture(t)
	ku, _ := ppcrypto.NewSymmetricKey()
	encKu, _ := ppcrypto.EncryptOAEP(f.iaKeys.Pair.Public, ku)
	reqBody, _ := message.Marshal(message.GetRequest{
		EncUser:    f.pseudonym(t, f.uaKeys, "y"),
		EncTempKey: message.Encode64(encKu),
	})
	framed, _ := message.Marshal(iaGetCall{Handle: "h-big", Body: reqBody})
	if _, err := f.iaEncl.Ecall("ia/get", framed); err != nil {
		t.Fatal(err)
	}

	items := make([]string, message.MaxRecommendations+5)
	for i := range items {
		items[i] = f.pseudonym(t, f.iaKeys, fmt.Sprintf("item-%d", i))
	}
	lrsResp, _ := message.Marshal(message.LRSGetResponse{Items: items})
	framedResp, _ := message.Marshal(iaGetCall{Handle: "h-big", Body: lrsResp})
	out, err := f.iaEncl.Ecall("ia/get-response", framedResp)
	if err != nil {
		t.Fatalf("oversized LRS list: %v", err)
	}
	var resp message.GetResponse
	if err := message.Unmarshal(out, &resp); err != nil {
		t.Fatal(err)
	}
	ct, _ := message.Decode64(resp.EncItems)
	packed, err := ppcrypto.SymDecrypt(ku, ct)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := message.DecodeItemList(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != message.MaxRecommendations {
		t.Errorf("returned %d items, want cap %d", len(decoded), message.MaxRecommendations)
	}
}

func TestIAGetResponseConstantSize(t *testing.T) {
	// §4.3: the encrypted response has constant size whether the LRS
	// returned 1 or 20 items.
	f := newFixture(t)
	sizes := map[int]bool{}
	for _, n := range []int{1, 7, message.MaxRecommendations} {
		ku, _ := ppcrypto.NewSymmetricKey()
		encKu, _ := ppcrypto.EncryptOAEP(f.iaKeys.Pair.Public, ku)
		reqBody, _ := message.Marshal(message.GetRequest{
			EncUser:    f.pseudonym(t, f.uaKeys, "z"),
			EncTempKey: message.Encode64(encKu),
		})
		handle := fmt.Sprintf("h-size-%d", n)
		framed, _ := message.Marshal(iaGetCall{Handle: handle, Body: reqBody})
		if _, err := f.iaEncl.Ecall("ia/get", framed); err != nil {
			t.Fatal(err)
		}
		items := make([]string, n)
		for i := range items {
			items[i] = f.pseudonym(t, f.iaKeys, fmt.Sprintf("i%d", i))
		}
		lrsResp, _ := message.Marshal(message.LRSGetResponse{Items: items})
		framedResp, _ := message.Marshal(iaGetCall{Handle: handle, Body: lrsResp})
		out, err := f.iaEncl.Ecall("ia/get-response", framedResp)
		if err != nil {
			t.Fatal(err)
		}
		var resp message.GetResponse
		if err := message.Unmarshal(out, &resp); err != nil {
			t.Fatal(err)
		}
		sizes[len(resp.EncItems)] = true
	}
	if len(sizes) != 1 {
		t.Errorf("response sizes vary with item count: %v", sizes)
	}
}

func TestIAIdentityForVariants(t *testing.T) {
	if IAIdentityFor(IAOptions{}) != IAIdentity {
		t.Error("default options must map to the standard identity")
	}
	if IAIdentityFor(IAOptions{DisableItemPseudonymization: true}) != IAIdentityNoItemPseudonyms {
		t.Error("disabled pseudonymization must map to its own measured identity")
	}
	if enclave.Measure(IAIdentity) == enclave.Measure(IAIdentityNoItemPseudonyms) {
		t.Error("the two IA variants share a measurement; attestation could not tell them apart")
	}
}

func TestIAGetCallFrameRoundTrip(t *testing.T) {
	body := json.RawMessage(`{"enc_user":"AAA"}`)
	framed, err := message.Marshal(iaGetCall{Handle: "h", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	var got iaGetCall
	if err := message.Unmarshal(framed, &got); err != nil {
		t.Fatal(err)
	}
	if got.Handle != "h" || string(got.Body) != string(body) {
		t.Errorf("frame round trip: %+v", got)
	}
}
