package proxy

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"time"

	"pprox/internal/hopwire"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/reccache"
	"pprox/internal/trace"
)

// Pipeline stage names, the values of the `stage` label on
// pprox_proxy_stage_seconds and of trace span records. They follow the
// paper's cost attribution (§7.2/§8): enclave cryptography, shuffling
// delay, and network hops.
const (
	// StageEcallDecrypt is the request-path ECALL (pseudonymization /
	// decryption), including the wait for a data-processing worker —
	// the paper's in-enclave thread-pool queueing (§5).
	StageEcallDecrypt = "ecall_decrypt"
	// StageShuffleWait is the time a message spends buffered in the
	// shuffler before its batch is released (§4.3).
	StageShuffleWait = "shuffle_wait"
	// StageForward is the next-hop round trip (IA balancer for UA
	// instances, LRS for IA instances).
	StageForward = "forward"
	// StageEcallRewrap is the UA retry-path ECALL re-randomizing the hop
	// envelope before a retried request leaves again; it only appears
	// when retries run against a link-key deployment.
	StageEcallRewrap = "ecall_rewrap"
	// StageEcallReencrypt is the IA response-path ECALL that
	// de-pseudonymizes the list and re-encrypts it under k_u.
	StageEcallReencrypt = "ecall_reencrypt"
	// StageServe is the end-to-end request envelope at this hop: ingress
	// to response written, covering every inner stage plus handler
	// overhead. It is the histogram the end-to-end latency SLO evaluates.
	StageServe = "serve"
)

// Stages lists every stage label in pipeline order, for consumers that
// render breakdown tables. StageServe leads: it is the envelope the
// remaining stages decompose.
var Stages = []string{StageServe, StageEcallDecrypt, StageShuffleWait, StageForward, StageEcallRewrap, StageEcallReencrypt}

// pendingDepthBuckets bound occupancy histograms (table depths, batch
// sizes) rather than latencies.
var pendingDepthBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// instruments holds the layer's cached metric children so the hot path
// never takes a registry or family lock.
type instruments struct {
	stage          map[string]*metrics.Histogram
	ecall          map[string]*metrics.Histogram
	pendingDepth   *metrics.Histogram
	batchSize      *metrics.Histogram
	ecallBatchSize *metrics.Histogram
}

func (l *Layer) roleLabel() string { return strings.ToLower(l.cfg.Role.String()) }

// RegisterMetrics exposes the layer's instruments on the registry, all
// labeled {layer,node} so any number of instances share one registry:
//
//   - pprox_proxy_requests_{served,failed}_total counters,
//   - pprox_proxy_shuffle_{flushes,shed}_total counters (the values
//     Shuffler.Stats computes) and the pprox_proxy_shuffle_pending gauge
//     (Shuffler.Pending),
//   - pprox_enclave_epc_pages_used gauge and pprox_enclave_ecalls_total
//     counter for the enclave runtime,
//   - the per-stage latency histogram family
//     pprox_proxy_stage_seconds{layer,node,stage},
//   - pprox_enclave_ecall_seconds{layer,node,ecall} per-entry-point
//     ECALL durations,
//   - pprox_proxy_pending_table_depth and
//     pprox_proxy_shuffle_batch_size occupancy histograms.
//
// node names this instance (e.g. "ua-0"); empty defaults to the role.
// Call before serving traffic: registration swaps the instrument set in
// atomically, but until it runs the pipeline is simply unobserved.
func (l *Layer) RegisterMetrics(r *metrics.Registry, node string) {
	role := l.roleLabel()
	if node == "" {
		node = role
	}

	r.CounterFuncVec("pprox_proxy_requests_served_total",
		"Requests completed successfully per layer instance.", "layer", "node").
		With(func() float64 {
			served, _ := l.Stats()
			return float64(served)
		}, role, node)
	r.CounterFuncVec("pprox_proxy_requests_failed_total",
		"Requests rejected or failed per layer instance.", "layer", "node").
		With(func() float64 {
			_, failed := l.Stats()
			return float64(failed)
		}, role, node)
	if l.shuffler != nil {
		r.CounterFuncVec("pprox_proxy_shuffle_flushes_total",
			"Shuffle batches released (threshold or timer).", "layer", "node").
			With(func() float64 {
				flushes, _ := l.shuffler.Stats()
				return float64(flushes)
			}, role, node)
		r.CounterFuncVec("pprox_proxy_shuffle_shed_total",
			"Requests shed because the pending table T was full.", "layer", "node").
			With(func() float64 {
				_, sheds := l.shuffler.Stats()
				return float64(sheds)
			}, role, node)
		r.GaugeVec("pprox_proxy_shuffle_pending",
			"Messages currently buffered in the shuffler.", "layer", "node").
			With(func() float64 {
				return float64(l.shuffler.Pending())
			}, role, node)
	}
	if l.cfg.Enclave != nil {
		r.GaugeVec("pprox_enclave_epc_pages_used",
			"Enclave Page Cache pages in use.", "layer", "node").
			With(func() float64 {
				used, _ := l.cfg.Enclave.EPCUsage()
				return float64(used)
			}, role, node)
		r.CounterFuncVec("pprox_enclave_ecalls_total",
			"ECALLs served by this layer's enclave.", "layer", "node").
			With(func() float64 {
				return float64(l.cfg.Enclave.EcallCount())
			}, role, node)
		r.CounterFuncVec("pprox_enclave_ecall_messages_total",
			"Messages processed inside enclave crossings (batched ECALLs count every message; the crossings/message ratio against pprox_enclave_ecalls_total is the batching amortization).", "layer", "node").
			With(func() float64 {
				return float64(l.cfg.Enclave.MessageCount())
			}, role, node)
	}

	inst := &instruments{
		stage: make(map[string]*metrics.Histogram, len(Stages)),
		ecall: make(map[string]*metrics.Histogram),
	}
	stageVec := r.HistogramVec("pprox_proxy_stage_seconds",
		"Time spent per proxy pipeline stage.", nil, "layer", "node", "stage")
	for _, s := range Stages {
		inst.stage[s] = stageVec.With(role, node, s)
	}
	ecallVec := r.HistogramVec("pprox_enclave_ecall_seconds",
		"ECALL handler duration per entry point.", nil, "layer", "node", "ecall")
	for _, name := range []string{ecallUAPost, ecallUAGet, ecallIAPost, ecallIAGet, ecallIAGetResp, ecallLinkRewrap} {
		inst.ecall[name] = ecallVec.With(role, node, name)
	}
	r.CounterFuncVec("pprox_proxy_forward_retries_total",
		"Forward attempts beyond the first (resilience retries).", "layer", "node").
		With(func() float64 {
			retries, _ := l.RetryStats()
			return float64(retries)
		}, role, node)
	r.CounterFuncVec("pprox_proxy_fail_fast_total",
		"Requests refused while the next-hop breaker was open.", "layer", "node").
		With(func() float64 {
			_, failFast := l.RetryStats()
			return float64(failFast)
		}, role, node)
	if l.breaker != nil {
		r.GaugeVec("pprox_proxy_breaker_state",
			"Next-hop circuit breaker state (0 closed, 1 open).", "layer", "node").
			With(func() float64 {
				return float64(l.breaker.State())
			}, role, node)
		r.CounterFuncVec("pprox_proxy_breaker_opens_total",
			"Times the next-hop breaker opened.", "layer", "node").
			With(func() float64 {
				opens, _ := l.breaker.Stats()
				return float64(opens)
			}, role, node)
		r.CounterFuncVec("pprox_proxy_breaker_readmissions_total",
			"Times a passed health probe re-admitted the next hop.", "layer", "node").
			With(func() float64 {
				_, readmits := l.breaker.Stats()
				return float64(readmits)
			}, role, node)
	}
	if l.shuffler != nil {
		inst.pendingDepth = r.HistogramVec("pprox_proxy_pending_table_depth",
			"Pending-table occupancy sampled at each enqueue.",
			pendingDepthBuckets, "layer", "node").With(role, node)
		inst.batchSize = r.HistogramVec("pprox_proxy_shuffle_batch_size",
			"Messages per released shuffle batch.",
			pendingDepthBuckets, "layer", "node").With(role, node)
	}
	if l.cfg.Enclave != nil {
		inst.ecallBatchSize = r.HistogramVec("pprox_enclave_ecall_batch_size",
			"Messages per batched enclave crossing.",
			pendingDepthBuckets, "layer", "node").With(role, node)
		l.cfg.Enclave.SetEcallObserver(func(name string, d time.Duration, _ error) {
			if h := inst.ecall[name]; h != nil {
				h.Observe(d.Seconds())
			}
		})
		l.cfg.Enclave.SetBatchObserver(func(name string, n int, d time.Duration) {
			if inst.ecallBatchSize != nil {
				inst.ecallBatchSize.Observe(float64(n))
			}
		})
	}
	l.registerBatchMetrics(r, role, node)
	if c := l.cfg.RecCache; c != nil {
		l.registerCacheMetrics(r, c, role, node)
	}
	l.obs.Store(inst)
	l.rewireShuffler()
}

// registerBatchMetrics exposes the epoch-batched pipeline's families:
// per-epoch forwards and the degradation ladder (UA batch mode and IA
// /batch demultiplexing both feed the counters), plus the bounded IA→LRS
// fan-out gauge when a semaphore is installed.
func (l *Layer) registerBatchMetrics(r *metrics.Registry, role, node string) {
	if l.jobs != nil || l.cfg.Role == RoleIA {
		counter := func(name, help string, read func(BatchStats) uint64) {
			r.CounterFuncVec(name, help, "layer", "node").
				With(func() float64 { return float64(read(l.BatchStats())) }, role, node)
		}
		counter("pprox_proxy_batch_forwards_total",
			"Batch envelopes processed (UA: epochs forwarded; IA: envelopes demultiplexed).",
			func(s BatchStats) uint64 { return s.Batches })
		counter("pprox_proxy_batch_messages_total",
			"Messages carried inside batch envelopes.",
			func(s BatchStats) uint64 { return s.Messages })
		counter("pprox_proxy_batch_retries_total",
			"Whole-envelope batch sends beyond the first attempt.",
			func(s BatchStats) uint64 { return s.Retries })
		counter("pprox_proxy_batch_splits_total",
			"Sub-envelope sends after splitting a failed batch.",
			func(s BatchStats) uint64 { return s.Splits })
		counter("pprox_proxy_batch_degraded_total",
			"Messages degraded from batch to per-message forwarding.",
			func(s BatchStats) uint64 { return s.Degraded })
		counter("pprox_proxy_batch_epc_fallbacks_total",
			"Batched crossings that fell back to per-message ECALLs (EPC pressure).",
			func(s BatchStats) uint64 { return s.EPCFallbacks })
	}
	if l.lrsSem != nil {
		r.GaugeVec("pprox_lrs_inflight",
			"In-flight IA→LRS requests (bounded by -lrs-concurrency).", "layer", "node").
			With(func() float64 { return float64(l.LRSInFlight()) }, role, node)
	}
	if l.hop != nil {
		counter := func(name, help string, read func(hopwire.Stats) uint64) {
			r.CounterFuncVec(name, help, "layer", "node").
				With(func() float64 { return float64(read(l.hop.Stats())) }, role, node)
		}
		counter("pprox_hopwire_exchanges_total",
			"Frame exchanges completed on the binary hop transport.",
			func(s hopwire.Stats) uint64 { return s.Exchanges })
		counter("pprox_hopwire_dials_total",
			"Hopwire connections established.",
			func(s hopwire.Stats) uint64 { return s.Dials })
		counter("pprox_hopwire_conn_reuses_total",
			"Frame exchanges that rode a pooled connection.",
			func(s hopwire.Stats) uint64 { return s.Reuses })
		counter("pprox_hopwire_fallbacks_total",
			"Exchanges that fell back to HTTP (peer not speaking frames).",
			func(s hopwire.Stats) uint64 { return s.Fallbacks })
	}
}

// registerCacheMetrics exposes the pprox_reccache_* families. Every value
// reads the cache's *published* snapshot, which only advances on shuffle
// flushes (PublishEpoch in the onFlush hook): a scraper polling /metrics
// mid-epoch sees frozen counters, so the export is epoch-granular like
// every other observability surface — it can never tell which request
// inside an epoch hit the cache.
func (l *Layer) registerCacheMetrics(r *metrics.Registry, c *reccache.Cache, role, node string) {
	counter := func(name, help string, read func(reccache.Stats) float64) {
		r.CounterFuncVec(name, help, "layer", "node").
			With(func() float64 { return read(c.Stats()) }, role, node)
	}
	counter("pprox_reccache_hits_total",
		"Recommendation-cache hits (epoch-granular).",
		func(s reccache.Stats) float64 { return float64(s.Hits) })
	counter("pprox_reccache_misses_total",
		"Recommendation-cache misses (epoch-granular).",
		func(s reccache.Stats) float64 { return float64(s.Misses) })
	counter("pprox_reccache_coalesced_total",
		"LRS fetches avoided by joining an in-flight fetch for the same pseudonym.",
		func(s reccache.Stats) float64 { return float64(s.Coalesced) })
	counter("pprox_reccache_invalidations_total",
		"Cache entries dropped by rating POSTs for their pseudonym.",
		func(s reccache.Stats) float64 { return float64(s.Invalidations) })
	counter("pprox_reccache_flushes_total",
		"Wholesale cache flushes (key rotation, enclave compromise).",
		func(s reccache.Stats) float64 { return float64(s.Flushes) })
	evict := r.CounterFuncVec("pprox_reccache_evictions_total",
		"Cache entries evicted, by reason.", "layer", "node", "reason")
	evict.With(func() float64 { return float64(c.Stats().EvictionsLRU) }, role, node, "lru")
	evict.With(func() float64 { return float64(c.Stats().EvictionsTTL) }, role, node, "ttl")
	r.GaugeVec("pprox_reccache_entries",
		"Recommendation-cache entries resident at the last epoch flush.", "layer", "node").
		With(func() float64 { return float64(c.Stats().Entries) }, role, node)
	r.GaugeVec("pprox_reccache_epc_pages",
		"EPC pages charged by the recommendation cache at the last epoch flush.", "layer", "node").
		With(func() float64 { return float64(c.Stats().Pages) }, role, node)
}

// SetTracer installs the layer's hop-local tracer. Its epoch advances on
// every shuffle flush, so trace export can never be finer-grained than
// the shuffle batches the privacy argument relies on; Close flushes the
// final partial epoch.
func (l *Layer) SetTracer(t *trace.Tracer) {
	l.tracer.Store(t)
	l.rewireShuffler()
}

// Tracer returns the layer's tracer (nil when tracing is off).
func (l *Layer) Tracer() *trace.Tracer { return l.tracer.Load() }

// SetEpochObserver installs a callback receiving every shuffle-epoch
// release with the batch size the shuffler actually let go — the
// effective anonymity set of the requests in that epoch. This is the
// privacy auditor's feed (audit.Auditor.ObserveEpoch). The callback runs
// on the flush path, so it must be cheap and must not call back into the
// shuffler. Nil uninstalls.
func (l *Layer) SetEpochObserver(fn func(batch int)) {
	if fn == nil {
		l.epochFn.Store(nil)
	} else {
		l.epochFn.Store(&fn)
	}
	l.rewireShuffler()
}

// SetLogger installs the layer's structured logger (request failures,
// shutdown). The proxy interior only ever handles ciphertext, so log
// records here carry status classes and stage names, never payload
// content. Nil disables logging.
func (l *Layer) SetLogger(lg *slog.Logger) {
	l.logger.Store(lg)
}

// logWarn emits one warning when a logger is installed.
func (l *Layer) logWarn(msg string, args ...any) {
	if lg := l.logger.Load(); lg != nil {
		lg.Warn(msg, args...)
	}
}

// rewireShuffler points the shuffler's hooks at the current instrument
// set and tracer.
func (l *Layer) rewireShuffler() {
	if l.shuffler == nil {
		return
	}
	obs := l.obs.Load()
	tr := l.tracer.Load()
	epochFn := l.epochFn.Load()
	cache := l.cfg.RecCache
	var onEnqueue, onFlush func(int)
	if obs != nil && obs.pendingDepth != nil {
		onEnqueue = func(depth int) { obs.pendingDepth.Observe(float64(depth)) }
	}
	if (obs != nil && obs.batchSize != nil) || tr != nil || epochFn != nil || cache != nil {
		onFlush = func(batch int) {
			if obs != nil && obs.batchSize != nil {
				obs.batchSize.Observe(float64(batch))
			}
			if epochFn != nil {
				(*epochFn)(batch)
			}
			if cache != nil {
				// Cache counters become visible one shuffle epoch at a
				// time, exactly like trace epochs.
				cache.PublishEpoch()
			}
			tr.AdvanceEpoch()
		}
	}
	l.shuffler.SetHooks(onEnqueue, onFlush)
}

// StageHistogram returns the layer's histogram for one pipeline stage
// (a Stages value), or nil before RegisterMetrics runs. The performance
// SLO evaluator reads it directly — same lock-free instrument the
// /metrics exposition renders, no second observation path.
func (l *Layer) StageHistogram(stage string) *metrics.Histogram {
	if obs := l.obs.Load(); obs != nil {
		return obs.stage[stage]
	}
	return nil
}

// observeStage records one finished stage into the per-stage histogram.
func (l *Layer) observeStage(stage string, start time.Time) {
	if obs := l.obs.Load(); obs != nil {
		if h := obs.stage[stage]; h != nil {
			h.ObserveSince(start)
		}
	}
}

// observeStageDur is observeStage for pre-measured durations (the batch
// pipeline measures one crossing and attributes it once).
func (l *Layer) observeStageDur(stage string, d time.Duration) {
	if obs := l.obs.Load(); obs != nil {
		if h := obs.stage[stage]; h != nil {
			h.Observe(d.Seconds())
		}
	}
}

// Health implements the /healthz self-assessment: provisioning state of
// the layer's enclave and reachability of the next hop. The next-hop
// probe is bounded by a short timeout so a dead upstream cannot wedge
// health checking.
func (l *Layer) Health() metrics.Health {
	ok := true
	checks := make(map[string]string, 2)
	switch {
	case l.cfg.PassThrough:
		checks["provisioned"] = "pass-through"
	case l.cfg.Enclave.Provisioned():
		checks["provisioned"] = "ok"
	default:
		checks["provisioned"] = "pending"
		ok = false
	}
	if l.draining.Load() {
		// Draining is reported but not a failure: the instance is
		// deliberately finishing its last epochs before retiring.
		checks["draining"] = "yes"
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, l.cfg.Next+message.HealthPath, nil)
	if err != nil {
		checks["next_hop"] = "bad next-hop URL"
		return metrics.Health{OK: false, Checks: checks}
	}
	resp, err := l.cfg.HTTPClient.Do(req)
	if err != nil {
		checks["next_hop"] = "unreachable"
		ok = false
	} else {
		// Drain before close so the probe conn returns to the keep-alive
		// pool (same keep-alive rule as resilience.HTTPHealthProbe).
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			checks["next_hop"] = "ok"
		} else {
			checks["next_hop"] = "status " + resp.Status
			ok = false
		}
	}
	return metrics.Health{OK: ok, Checks: checks}
}
