package proxy

import (
	"context"
	crand "crypto/rand"
	"errors"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// ErrTableFull reports that the pending-request table T reached capacity;
// the server sheds the request rather than dropping it silently (§5: "the
// size of T should be larger than S in order to avoid dropping incoming
// requests between the reaching of the threshold and the processing of the
// requests").
var ErrTableFull = errors.New("proxy: pending-request table full")

// Shuffler implements request/response shuffling (§4.3, Fig. 5): messages
// are buffered until S of them are pending — or until a timer expires —
// and then released in uniformly random order. An adversary observing the
// wire cannot map an individual incoming message to the corresponding
// outgoing one with probability better than 1/S.
//
// A Shuffler with size ≤ 1 is a no-op (every message is released
// immediately), which is the "shuffling off" configuration (m1–m4).
type Shuffler struct {
	size    int
	timeout time.Duration
	table   int // capacity of the pending table T

	mu      sync.Mutex
	pending []*pendingMsg
	timer   *time.Timer
	rng     *mrand.Rand
	flushes uint64
	sheds   uint64

	// Observability hooks (SetHooks); both run under the shuffler lock.
	onEnqueue func(depth int)
	onFlush   func(batch int)
}

// NewShuffler creates a shuffler with buffer size S, a flush timer, and a
// pending-table capacity (values ≤ 0 select the paper-faithful defaults:
// timeout 500 ms, table 4×S). Per §5 the table must be larger than S; a
// smaller table is honored as a hard cap and sheds the excess, which is
// exactly the drop behaviour the paper sizes T to avoid.
// The permutation stream is ChaCha8 seeded from crypto/rand. The seed must
// be unpredictable: an adversary who can reconstruct it (e.g. from a
// boot-time-based seed) can replay every permutation and undo the 1/S
// unlinkability bound entirely.
func NewShuffler(size int, timeout time.Duration, table int) *Shuffler {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Without entropy the shuffler cannot meet its privacy contract;
		// refusing to start is the only safe behaviour.
		panic("proxy: seeding shuffler from crypto/rand: " + err.Error())
	}
	return NewShufflerSeeded(size, timeout, table, seed)
}

// NewShufflerSeeded is NewShuffler with a caller-chosen seed, for
// deterministic tests. Production code must use NewShuffler: a fixed or
// guessable seed makes every permutation reconstructable.
func NewShufflerSeeded(size int, timeout time.Duration, table int, seed [32]byte) *Shuffler {
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if table <= 0 {
		table = 4 * size
	}
	return &Shuffler{
		size:    size,
		timeout: timeout,
		table:   table,
		rng:     mrand.New(mrand.NewChaCha8(seed)),
	}
}

// Size returns the shuffle buffer size S.
func (s *Shuffler) Size() int { return s.size }

// SetHooks installs observability callbacks: onEnqueue receives the
// pending-table depth after each successful enqueue, onFlush the size of
// each released batch (one flush = one shuffle epoch). Both run under the
// shuffler lock on the request path, so they must be cheap and lock-free
// (atomic counter increments and histogram observations qualify). Either
// may be nil. Safe on a nil shuffler.
func (s *Shuffler) SetHooks(onEnqueue func(depth int), onFlush func(batch int)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onEnqueue = onEnqueue
	s.onFlush = onFlush
	s.mu.Unlock()
}

// Wait blocks the calling message until the shuffler releases it as part
// of a randomized batch, and returns the message's position in the
// batch's randomized release order (0 when shuffling is disabled). It
// returns ErrTableFull when the pending table is at capacity, or the
// context error if the caller gives up first.
func (s *Shuffler) Wait(ctx context.Context) (int, error) {
	if s == nil || s.size <= 1 {
		return 0, nil
	}

	release := &pendingMsg{ch: make(chan struct{})}

	s.mu.Lock()
	if len(s.pending) >= s.table {
		s.sheds++
		s.mu.Unlock()
		return 0, ErrTableFull
	}
	s.pending = append(s.pending, release)
	if s.onEnqueue != nil {
		s.onEnqueue(len(s.pending))
	}
	if len(s.pending) >= s.size {
		s.flushLocked()
	} else if s.timer == nil {
		s.timer = time.AfterFunc(s.timeout, s.onTimer)
	}
	s.mu.Unlock()

	select {
	case <-release.ch:
		return release.pos, nil
	case <-ctx.Done():
		// The slot stays in the buffer; its release is a no-op for a
		// departed caller but still advances the flush threshold,
		// matching a real proxy where a timed-out client's socket is
		// still drained.
		return 0, ctx.Err()
	}
}

// pendingMsg is one buffered message awaiting release.
type pendingMsg struct {
	ch  chan struct{}
	pos int
}

func (s *Shuffler) onTimer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timer = nil
	if len(s.pending) > 0 {
		s.flushLocked()
	}
}

// flushLocked releases every pending message in uniformly random order:
// each message learns its randomized position and is unblocked in that
// order, so the wire order downstream follows the permutation.
func (s *Shuffler) flushLocked() {
	batch := s.pending
	s.pending = nil
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	for pos, msg := range batch {
		msg.pos = pos
		close(msg.ch)
	}
	s.flushes++
	if s.onFlush != nil {
		s.onFlush(len(batch))
	}
}

// Stats returns the number of completed flushes and shed messages.
func (s *Shuffler) Stats() (flushes, sheds uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes, s.sheds
}

// Pending returns the number of currently buffered messages.
func (s *Shuffler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close releases any buffered messages immediately (shutdown path).
func (s *Shuffler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) > 0 {
		s.flushLocked()
	} else if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}
