package proxy

import (
	"context"
	crand "crypto/rand"
	"errors"
	mrand "math/rand/v2"
	"sync"
	"time"
)

// ErrTableFull reports that the pending-request table T reached capacity;
// the server sheds the request rather than dropping it silently (§5: "the
// size of T should be larger than S in order to avoid dropping incoming
// requests between the reaching of the threshold and the processing of the
// requests").
var ErrTableFull = errors.New("proxy: pending-request table full")

// ErrShufflerClosed reports a Wait or Enqueue after Close: the shuffler is
// terminal on shutdown, so late arrivals fail fast instead of re-arming
// the flush timer and stranding themselves in a buffer nobody will flush.
var ErrShufflerClosed = errors.New("proxy: shuffler closed")

// Shuffler implements request/response shuffling (§4.3, Fig. 5): messages
// are buffered until S of them are pending — or until a timer expires —
// and then released in uniformly random order. An adversary observing the
// wire cannot map an individual incoming message to the corresponding
// outgoing one with probability better than 1/S.
//
// A Shuffler with size ≤ 1 is a no-op (every message is released
// immediately), which is the "shuffling off" configuration (m1–m4).
type Shuffler struct {
	size    int
	timeout time.Duration
	table   int // capacity of the pending table T

	mu      sync.Mutex
	pending []*pendingMsg
	timer   *time.Timer
	rng     *mrand.Rand
	flushes uint64
	sheds   uint64
	closed  bool

	// Observability hooks (SetHooks); both run under the shuffler lock.
	onEnqueue func(depth int)
	onFlush   func(batch int)
	// sink receives whole permuted epochs in batch-release mode
	// (SetBatchSink); it runs under the shuffler lock.
	sink func(vals []any)
}

// NewShuffler creates a shuffler with buffer size S, a flush timer, and a
// pending-table capacity (values ≤ 0 select the paper-faithful defaults:
// timeout 500 ms, table 4×S). Per §5 the table must be larger than S; a
// smaller table is honored as a hard cap and sheds the excess, which is
// exactly the drop behaviour the paper sizes T to avoid.
// The permutation stream is ChaCha8 seeded from crypto/rand. The seed must
// be unpredictable: an adversary who can reconstruct it (e.g. from a
// boot-time-based seed) can replay every permutation and undo the 1/S
// unlinkability bound entirely.
func NewShuffler(size int, timeout time.Duration, table int) *Shuffler {
	var seed [32]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// Without entropy the shuffler cannot meet its privacy contract;
		// refusing to start is the only safe behaviour.
		panic("proxy: seeding shuffler from crypto/rand: " + err.Error())
	}
	return NewShufflerSeeded(size, timeout, table, seed)
}

// NewShufflerSeeded is NewShuffler with a caller-chosen seed, for
// deterministic tests. Production code must use NewShuffler: a fixed or
// guessable seed makes every permutation reconstructable.
func NewShufflerSeeded(size int, timeout time.Duration, table int, seed [32]byte) *Shuffler {
	if timeout <= 0 {
		timeout = 500 * time.Millisecond
	}
	if table <= 0 {
		table = 4 * size
	}
	return &Shuffler{
		size:    size,
		timeout: timeout,
		table:   table,
		rng:     mrand.New(mrand.NewChaCha8(seed)),
	}
}

// Size returns the shuffle buffer size S.
func (s *Shuffler) Size() int { return s.size }

// SetHooks installs observability callbacks: onEnqueue receives the
// pending-table depth after each successful enqueue, onFlush the size of
// each released batch (one flush = one shuffle epoch). Both run under the
// shuffler lock on the request path, so they must be cheap and lock-free
// (atomic counter increments and histogram observations qualify). Either
// may be nil. Safe on a nil shuffler.
func (s *Shuffler) SetHooks(onEnqueue func(depth int), onFlush func(batch int)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.onEnqueue = onEnqueue
	s.onFlush = onFlush
	s.mu.Unlock()
}

// SetBatchSink installs the batch-release consumer: every flush hands the
// epoch's enqueued values (Enqueue), in the epoch's permuted order, to fn
// in one call instead of waking one goroutine per message. The sink runs
// under the shuffler lock on the flush path, so it must be cheap and
// non-blocking — submitting the epoch to a job pool qualifies, processing
// it inline does not. Safe on a nil shuffler.
func (s *Shuffler) SetBatchSink(fn func(vals []any)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.sink = fn
	s.mu.Unlock()
}

// Wait blocks the calling message until the shuffler releases it as part
// of a randomized batch, and returns the message's position in the
// batch's randomized release order (0 when shuffling is disabled). It
// returns ErrTableFull when the pending table is at capacity,
// ErrShufflerClosed after Close, or the context error if the caller gives
// up first.
func (s *Shuffler) Wait(ctx context.Context) (int, error) {
	if s == nil || s.size <= 1 {
		return 0, nil
	}

	release := &pendingMsg{ch: make(chan struct{})}

	s.mu.Lock()
	if err := s.admitLocked(release); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()

	select {
	case <-release.ch:
		return release.pos, nil
	case <-ctx.Done():
		// The slot stays in the buffer; its release is a no-op for a
		// departed caller but still advances the flush threshold,
		// matching a real proxy where a timed-out client's socket is
		// still drained.
		return 0, ctx.Err()
	}
}

// Enqueue admits one message into the current epoch in batch-release
// mode: instead of blocking a goroutine, the value travels with the epoch
// and is handed to the batch sink, in permuted order, when the epoch
// flushes. The same shedding (ErrTableFull) and shutdown
// (ErrShufflerClosed) rules as Wait apply.
func (s *Shuffler) Enqueue(v any) error {
	if s == nil || s.size <= 1 {
		return errors.New("proxy: batch enqueue requires a shuffler with S > 1")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrShufflerClosed
	}
	if s.sink == nil {
		return errors.New("proxy: batch enqueue without a batch sink")
	}
	return s.admitLocked(&pendingMsg{v: v})
}

// admitLocked appends one message to the pending table and arms the
// flush threshold/timer, enforcing capacity and shutdown.
func (s *Shuffler) admitLocked(msg *pendingMsg) error {
	if s.closed {
		return ErrShufflerClosed
	}
	if len(s.pending) >= s.table {
		s.sheds++
		return ErrTableFull
	}
	s.pending = append(s.pending, msg)
	if s.onEnqueue != nil {
		s.onEnqueue(len(s.pending))
	}
	if len(s.pending) >= s.size {
		s.flushLocked()
	} else if s.timer == nil {
		s.timer = time.AfterFunc(s.timeout, s.onTimer)
	}
	return nil
}

// pendingMsg is one buffered message awaiting release: a blocked waiter
// (Wait, ch non-nil) or a batch-mode value (Enqueue, v non-nil).
type pendingMsg struct {
	ch  chan struct{}
	pos int
	v   any
}

func (s *Shuffler) onTimer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.timer = nil
	if !s.closed && len(s.pending) > 0 {
		s.flushLocked()
	}
}

// flushLocked releases every pending message in uniformly random order:
// each waiter learns its randomized position and is unblocked in that
// order, and batch-mode values are handed to the sink as one epoch in
// that same order — so the wire order downstream follows the permutation
// either way.
func (s *Shuffler) flushLocked() {
	batch := s.pending
	s.pending = nil
	if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
	s.rng.Shuffle(len(batch), func(i, j int) { batch[i], batch[j] = batch[j], batch[i] })
	var vals []any
	for pos, msg := range batch {
		if msg.ch != nil {
			msg.pos = pos
			close(msg.ch)
			continue
		}
		vals = append(vals, msg.v)
	}
	if len(vals) > 0 && s.sink != nil {
		s.sink(vals)
	}
	s.flushes++
	if s.onFlush != nil {
		s.onFlush(len(batch))
	}
}

// ReleaseBatch accounts one whole inbound epoch of n messages — a batch
// envelope demultiplexed on the IA — as a shuffle flush and returns the
// permutation its releases must follow. The permutation draws on the same
// crypto-seeded stream as Wait-mode flushes, and the flush hooks fire so
// the auditor, tracer, and cache see batch epochs exactly like waiter
// epochs. A nil shuffler (or S ≤ 1) returns the identity permutation and
// touches nothing.
func (s *Shuffler) ReleaseBatch(n int) ([]int, error) {
	if n < 0 {
		n = 0
	}
	if s == nil || s.size <= 1 || n == 0 {
		// An empty envelope is not an epoch: counting it would feed the
		// auditor a zero-size anonymity set. Only this degenerate branch
		// needs the identity permutation — the hot path below draws its
		// own from the rng, so building identity up front would be a
		// throwaway allocation on every batched epoch.
		perm := make([]int, n)
		for i := range perm {
			perm[i] = i
		}
		return perm, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShufflerClosed
	}
	perm := s.rng.Perm(n)
	s.flushes++
	if s.onFlush != nil {
		s.onFlush(n)
	}
	return perm, nil
}

// Stats returns the number of completed flushes and shed messages.
func (s *Shuffler) Stats() (flushes, sheds uint64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushes, s.sheds
}

// Pending returns the number of currently buffered messages.
func (s *Shuffler) Pending() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Close releases any buffered messages immediately and makes the
// shuffler terminal: every later Wait/Enqueue/ReleaseBatch fails fast
// with ErrShufflerClosed instead of re-arming the flush timer and
// stranding itself during shutdown. Closing twice is a no-op.
func (s *Shuffler) Close() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if len(s.pending) > 0 {
		s.flushLocked()
	} else if s.timer != nil {
		s.timer.Stop()
		s.timer = nil
	}
}
