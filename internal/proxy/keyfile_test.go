package proxy

import (
	"encoding/json"
	"strings"
	"testing"

	"pprox/internal/ppcrypto"
)

func testLayerKeysPair(t *testing.T) (*LayerKeys, *LayerKeys) {
	t.Helper()
	f := newFixture(t) // reuse the slow-to-generate shared keys
	return f.uaKeys, f.iaKeys
}

func TestKeyFileRoundTrip(t *testing.T) {
	ua, ia := testLayerKeysPair(t)
	data, err := MarshalKeyFile(ua, ia)
	if err != nil {
		t.Fatal(err)
	}
	gotUA, gotIA, err := UnmarshalKeyFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotUA.Pair.Private.D.Cmp(ua.Pair.Private.D) != 0 {
		t.Error("UA private key round trip mismatch")
	}
	if gotIA.Pair.Private.D.Cmp(ia.Pair.Private.D) != 0 {
		t.Error("IA private key round trip mismatch")
	}
	if string(gotUA.Permanent) != string(ua.Permanent) || string(gotIA.Permanent) != string(ia.Permanent) {
		t.Error("permanent key round trip mismatch")
	}
}

func TestKeyFileInterops(t *testing.T) {
	// A pseudonym computed with the original keys must equal one
	// computed with the round-tripped keys (provisioning different
	// instances from the file yields one consistent layer).
	ua, ia := testLayerKeysPair(t)
	data, err := MarshalKeyFile(ua, ia)
	if err != nil {
		t.Fatal(err)
	}
	gotUA, _, err := UnmarshalKeyFile(data)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := ppcrypto.Pseudonymize(ua.Permanent, "user-1")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ppcrypto.Pseudonymize(gotUA.Permanent, "user-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(p1) != string(p2) {
		t.Error("round-tripped keys produce different pseudonyms")
	}
}

func TestKeyFileRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not json", "{"},
		{"bad base64 private", `{"ua":{"private_key_der":"!!","permanent_key":"AAAA"},"ia":{"private_key_der":"!!","permanent_key":"AAAA"}}`},
		{"bad der", `{"ua":{"private_key_der":"AAAA","permanent_key":"AAAA"},"ia":{"private_key_der":"AAAA","permanent_key":"AAAA"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := UnmarshalKeyFile([]byte(tc.data)); err == nil {
				t.Error("malformed key file accepted")
			}
		})
	}
}

func TestKeyFileRejectsShortPermanentKey(t *testing.T) {
	ua, ia := testLayerKeysPair(t)
	data, err := MarshalKeyFile(ua, ia)
	if err != nil {
		t.Fatal(err)
	}
	var kf KeyFile
	if err := json.Unmarshal(data, &kf); err != nil {
		t.Fatal(err)
	}
	kf.UA.PermanentKey = "AAAA" // 3 bytes
	bad, err := json.Marshal(kf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := UnmarshalKeyFile(bad); err == nil || !strings.Contains(err.Error(), "permanent key") {
		t.Errorf("short permanent key accepted: %v", err)
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	ua, ia := testLayerKeysPair(t)
	data, err := MarshalBundleFile(Bundle(ua, ia))
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBundleFile(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.UAPublic.N.Cmp(ua.Pair.Public.N) != 0 || got.IAPublic.N.Cmp(ia.Pair.Public.N) != 0 {
		t.Error("bundle round trip mismatch")
	}
}

func TestBundleFileContainsNoSecrets(t *testing.T) {
	ua, ia := testLayerKeysPair(t)
	data, err := MarshalBundleFile(Bundle(ua, ia))
	if err != nil {
		t.Fatal(err)
	}
	privUA, err := ppcrypto.MarshalPrivateKey(ua.Pair.Private)
	if err != nil {
		t.Fatal(err)
	}
	// Neither a private key fragment nor a permanent key may appear in
	// the client-side bundle.
	if strings.Contains(string(data), string(ua.Permanent)) {
		t.Error("permanent key bytes in the public bundle")
	}
	if len(privUA) > 64 && strings.Contains(string(data), string(privUA[:64])) {
		t.Error("private key material in the public bundle")
	}
}

func TestBundleFileRejectsMalformed(t *testing.T) {
	for _, data := range []string{"{", `{"ua_public_der":"!!","ia_public_der":"AAAA"}`, `{"ua_public_der":"AAAA","ia_public_der":"AAAA"}`} {
		if _, err := UnmarshalBundleFile([]byte(data)); err == nil {
			t.Errorf("malformed bundle accepted: %s", data)
		}
	}
}
