package proxy_test

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"pprox/internal/message"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/resilience"
)

// batchPolicy keeps ladder backoffs negligible in tests.
var batchPolicy = &resilience.Policy{
	HopTimeout:  5 * time.Second,
	MaxAttempts: 2,
	BackoffBase: time.Millisecond,
	BackoffMax:  2 * time.Millisecond,
}

// TestBatchEndToEnd drives one full epoch of concurrent gets through the
// batched pipeline and checks the headline property: results identical to
// per-message mode while the UA enclave is crossed ~once per epoch
// instead of once per message.
func TestBatchEndToEnd(t *testing.T) {
	const s = 8
	st := newStack(t, stackOptions{
		useStub:        true,
		shuffleSize:    s,
		shuffleTimeout: 200 * time.Millisecond,
		batch:          true,
		pairLink:       true,
	})
	ctx := ctxT(t)

	ecallsBefore := st.uaEncl.EcallCount()
	msgsBefore := st.uaEncl.MessageCount()

	errc := make(chan error, s)
	for i := 0; i < s; i++ {
		go func(i int) {
			items, err := st.client.Get(ctx, fmt.Sprintf("user-%d", i))
			if err == nil && len(items) != message.MaxRecommendations {
				err = fmt.Errorf("got %d items", len(items))
			}
			errc <- err
		}(i)
	}
	for i := 0; i < s; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("batched get: %v", err)
		}
	}

	if got := st.uaEncl.MessageCount() - msgsBefore; got != s {
		t.Errorf("UA enclave messages = %d, want %d", got, s)
	}
	// One ua/get crossing per epoch; allow a second epoch if the timer
	// split the burst.
	if got := st.uaEncl.EcallCount() - ecallsBefore; got > 2 {
		t.Errorf("UA enclave crossings = %d for %d messages, want ≤ 2", got, s)
	}
	stats := st.ua.BatchStats()
	if stats.Batches == 0 || stats.Messages != s {
		t.Errorf("UA batch stats = %+v, want ≥1 batch carrying %d messages", stats, s)
	}
	if stats.Retries != 0 || stats.Splits != 0 || stats.Degraded != 0 {
		t.Errorf("healthy run descended the ladder: %+v", stats)
	}
	iaStats := st.ia.BatchStats()
	if iaStats.Batches == 0 || iaStats.Messages != s {
		t.Errorf("IA batch stats = %+v, want the demultiplexed epoch", iaStats)
	}
	if flushes, _ := st.ia.Shuffler().Stats(); flushes == 0 {
		t.Error("IA shuffler saw no epochs: ReleaseBatch accounting missing")
	}
}

// TestBatchMixedPostsAndGets puts both message kinds in one epoch: the
// pipeline must demultiplex kinds into separate batch ECALLs and routes
// while keeping every result correct.
func TestBatchMixedPostsAndGets(t *testing.T) {
	const s = 6
	st := newStack(t, stackOptions{
		useStub:        true,
		shuffleSize:    s,
		shuffleTimeout: 200 * time.Millisecond,
		batch:          true,
		pairLink:       true,
	})
	ctx := ctxT(t)

	errc := make(chan error, s)
	for i := 0; i < s/2; i++ {
		go func(i int) {
			errc <- st.client.Post(ctx, fmt.Sprintf("user-%d", i), "item-1", "")
		}(i)
		go func(i int) {
			_, err := st.client.Get(ctx, fmt.Sprintf("user-%d", i))
			errc <- err
		}(i)
	}
	for i := 0; i < s; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("mixed epoch message %d: %v", i, err)
		}
	}
	if stats := st.ua.BatchStats(); stats.Messages != s {
		t.Errorf("UA batch messages = %d, want %d", stats.Messages, s)
	}
}

// TestBatchDegradationLadder kills the IA's /batch route for long enough
// that the whole-envelope attempts and both split halves fail: every
// message must still succeed via per-message degradation, and the ladder
// counters must show the descent.
func TestBatchDegradationLadder(t *testing.T) {
	const s = 4
	var batchFails atomic.Int64
	st := newStack(t, stackOptions{
		useStub:        true,
		shuffleSize:    s,
		shuffleTimeout: 100 * time.Millisecond,
		batch:          true,
		pairLink:       true,
		policy:         batchPolicy,
		iaMiddleware: func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == message.BatchPath {
					batchFails.Add(1)
					http.Error(w, "injected", http.StatusServiceUnavailable)
					return
				}
				next.ServeHTTP(w, r)
			})
		},
	})
	ctx := ctxT(t)

	errc := make(chan error, s)
	for i := 0; i < s; i++ {
		go func(i int) {
			items, err := st.client.Get(ctx, fmt.Sprintf("user-%d", i))
			if err == nil && len(items) != message.MaxRecommendations {
				err = fmt.Errorf("got %d items", len(items))
			}
			errc <- err
		}(i)
	}
	for i := 0; i < s; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("get during /batch outage: %v", err)
		}
	}

	stats := st.ua.BatchStats()
	if stats.Retries == 0 {
		t.Errorf("no whole-envelope retries recorded: %+v", stats)
	}
	if stats.Splits == 0 {
		t.Errorf("no split sends recorded: %+v", stats)
	}
	if stats.Degraded != s {
		t.Errorf("degraded = %d, want all %d messages", stats.Degraded, s)
	}
	if got := batchFails.Load(); got < 3 {
		t.Errorf("injector saw %d /batch attempts, want ≥ 3 (retry + both halves)", got)
	}
}

// TestBatchWithRecommendationCache runs the batched get path against a
// cache-enabled IA: first epoch misses and fills, second epoch for the
// same users is served from the enclave cache without LRS round trips.
func TestBatchWithRecommendationCache(t *testing.T) {
	const s = 4
	cache := reccache.New(reccache.Config{})
	st := newStack(t, stackOptions{
		useStub:        true,
		shuffleSize:    s,
		shuffleTimeout: 200 * time.Millisecond,
		batch:          true,
		pairLink:       true,
		recCache:       cache,
	})
	ctx := ctxT(t)

	epoch := func() {
		errc := make(chan error, s)
		for i := 0; i < s; i++ {
			go func(i int) {
				_, err := st.client.Get(ctx, fmt.Sprintf("user-%d", i))
				errc <- err
			}(i)
		}
		for i := 0; i < s; i++ {
			if err := <-errc; err != nil {
				t.Fatalf("cached-path get: %v", err)
			}
		}
	}
	epoch()
	epoch()
	cache.PublishEpoch()
	stats := cache.Stats()
	if stats.Misses == 0 {
		t.Errorf("cache stats = %+v, want first-epoch misses", stats)
	}
	if stats.Hits == 0 {
		t.Errorf("cache stats = %+v, want second-epoch hits", stats)
	}
}

// TestBatchConfigValidation: batch mode is meaningless without the
// enclave path and an anonymity set, so New must refuse those configs.
func TestBatchConfigValidation(t *testing.T) {
	if _, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Next: "http://ia", PassThrough: true,
		ShuffleSize: 4, Batch: true,
	}); err == nil {
		t.Error("New accepted Batch with PassThrough")
	}
	if _, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Next: "http://ia", Batch: true,
	}); err == nil {
		t.Error("New accepted Batch without a shuffler")
	}
}
