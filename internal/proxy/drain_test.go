package proxy_test

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/message"
	"pprox/internal/transport"
)

// TestDrainFlushesFinalEpochWhole exercises the soft-drain path: requests
// buffered in the shuffler when the drain begins leave via the shuffler's
// own timer flush — one whole batch — and AwaitDrained completes only
// after they have.
func TestDrainFlushesFinalEpochWhole(t *testing.T) {
	st := newStack(t, stackOptions{
		shuffleSize:    4,
		shuffleTimeout: 250 * time.Millisecond,
	})
	ctx := ctxT(t)

	// Three concurrent posts (S=4) park in the UA shuffler.
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = st.client.Post(ctx, fmt.Sprintf("drain-user-%d", i), "item", "")
		}(i)
	}
	// Wait until they are actually buffered.
	deadline := time.Now().Add(5 * time.Second)
	for st.ua.Shuffler().Pending() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("requests never reached the shuffler (pending=%d)",
				st.ua.Shuffler().Pending())
		}
		time.Sleep(time.Millisecond)
	}

	st.ua.BeginDrain()
	rep := st.ua.DrainReport()
	if !rep.Draining || rep.PendingAtDrain != 3 {
		t.Fatalf("report at drain start = %+v, want draining with 3 pending", rep)
	}

	flushesBefore, _ := st.ua.Shuffler().Stats()
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := st.ua.AwaitDrained(dctx); err != nil {
		t.Fatalf("AwaitDrained: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post %d failed during drain: %v", i, err)
		}
	}
	flushesAfter, sheds := st.ua.Shuffler().Stats()
	if flushesAfter != flushesBefore+1 {
		t.Fatalf("final epoch left in %d flushes, want exactly 1", flushesAfter-flushesBefore)
	}
	if sheds != 0 {
		t.Fatalf("drain shed %d messages", sheds)
	}

	rep = st.ua.DrainReport()
	if !rep.Clean || rep.Pending != 0 || rep.InFlight != 0 {
		t.Fatalf("post-drain report = %+v, want clean and empty", rep)
	}
	// The report stays valid (and clean) across teardown.
	st.ua.Close()
	if rep = st.ua.DrainReport(); !rep.Clean {
		t.Fatalf("clean drain turned dirty after Close: %+v", rep)
	}
}

// TestDrainSoftPhaseBreaksKeepAlive: while draining (not yet refusing),
// app responses carry Connection: close so pooled client connections
// evict themselves, and requests still succeed.
func TestDrainSoftPhaseBreaksKeepAlive(t *testing.T) {
	st := newStack(t, stackOptions{})
	ctx := ctxT(t)

	if err := st.client.Post(ctx, "alice", "solaris", ""); err != nil {
		t.Fatal(err)
	}
	st.ua.BeginDrain()

	httpClient := transport.HTTPClient(st.net, 5*time.Second)
	// Health stays up during drain (the instance is alive, just leaving).
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://ua"+message.HealthPath, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health during drain = %d, want 200", resp.StatusCode)
	}

	// App traffic is served but told to hang up.
	if err := st.client.Post(ctx, "bob", "stalker", ""); err != nil {
		t.Fatalf("post during soft drain failed: %v", err)
	}
	resp, err = httpClient.Post("http://ua"+message.EventsPath, "application/json",
		strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !resp.Close && !strings.EqualFold(resp.Header.Get("Connection"), "close") {
		t.Fatalf("soft-drain response did not break keep-alive (Close=%v, header=%q)",
			resp.Close, resp.Header.Get("Connection"))
	}
}

// TestRefuseNewRejectsAppTraffic: the hard phase 503s new app requests
// (hopwire and straggler connections) while health stays green.
func TestRefuseNewRejectsAppTraffic(t *testing.T) {
	st := newStack(t, stackOptions{})
	ctx := ctxT(t)

	st.ua.RefuseNew()
	if !st.ua.Draining() {
		t.Fatal("RefuseNew did not imply BeginDrain")
	}
	httpClient := transport.HTTPClient(st.net, 5*time.Second)
	resp, err := httpClient.Post("http://ua"+message.EventsPath, "application/json",
		strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("refused request status = %d, want 503", resp.StatusCode)
	}

	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://ua"+message.HealthPath, nil)
	resp, err = httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health while refusing = %d, want 200", resp.StatusCode)
	}
}

func TestAwaitDrainedRequiresBeginDrain(t *testing.T) {
	st := newStack(t, stackOptions{})
	if err := st.ua.AwaitDrained(context.Background()); err == nil {
		t.Fatal("AwaitDrained without BeginDrain succeeded")
	}
}

// TestCloseWithBufferedMessagesIsDirtyDrain: tearing a draining instance
// down while messages are still buffered is exactly the split-epoch
// release the protocol exists to prevent — the report must say so.
func TestCloseWithBufferedMessagesIsDirtyDrain(t *testing.T) {
	st := newStack(t, stackOptions{
		shuffleSize:    4,
		shuffleTimeout: time.Hour, // timer never fires
	})
	ctx, cancelPosts := context.WithCancel(ctxT(t))
	defer cancelPosts()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// These die with ErrShufflerClosed or succeed via the final
			// forced batch; either way the drain was dirty.
			_ = st.client.Post(ctx, fmt.Sprintf("stranded-%d", i), "item", "")
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.ua.Shuffler().Pending() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("requests never buffered")
		}
		time.Sleep(time.Millisecond)
	}
	st.ua.BeginDrain()
	st.ua.Close()
	cancelPosts()
	wg.Wait()
	if rep := st.ua.DrainReport(); rep.Clean {
		t.Fatalf("drain with stranded messages reported clean: %+v", rep)
	}
}
