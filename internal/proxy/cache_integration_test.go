package proxy_test

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"pprox/internal/metrics"
	"pprox/internal/reccache"
)

// cache_integration_test.go exercises the cached IA GET path end to end
// through real cryptography: hits decrypt to the same list the miss
// produced (re-encrypted under the new requester's temporary key), and
// the cache's observability surface only moves at shuffle-epoch
// boundaries.

func sumMetric(reg *metrics.Registry, fam string) float64 {
	total := 0.0
	for series, v := range reg.Snapshot() {
		if name, _ := metrics.ParseSeries(series); name == fam {
			total += v
		}
	}
	return total
}

func TestCachedGetEndToEnd(t *testing.T) {
	cache := reccache.New(reccache.Config{TTL: time.Minute})
	st := newStack(t, stackOptions{useStub: true, recCache: cache})
	ctx := ctxT(t)

	first, err := st.client.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("miss returned no items")
	}
	// The hit is served from the cache's pseudonymized entry, sealed
	// under THIS request's fresh temporary key — the client must decrypt
	// the identical cleartext list.
	second, err := st.client.Get(ctx, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("hit decrypted to %v, want the original %v", second, first)
	}
	if stats := cache.Stats(); stats.Hits != 1 || stats.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", stats)
	}
}

func TestCacheStatsExportFrozenMidEpoch(t *testing.T) {
	// The privacy property of the cache's observability: counters
	// advance only when a shuffle epoch flushes, so a scraper polling
	// /metrics mid-epoch cannot tell which of the in-flight requests hit
	// the cache. The UA layer runs unshuffled here so requests can be
	// parked inside the IA shuffler specifically.
	cache := reccache.New(reccache.Config{TTL: time.Minute})
	st := newStack(t, stackOptions{
		shuffleSize: 4, shuffleTimeout: 8 * time.Second,
		useStub: true, recCache: cache, iaShuffleOnly: true,
	})
	reg := metrics.NewRegistry()
	st.ia.RegisterMetrics(reg, "ia-0")
	ctx := ctxT(t)

	users := []string{"u0", "u1", "u2", "u3"}
	get := func(u string, wg *sync.WaitGroup) {
		defer wg.Done()
		if _, err := st.client.Get(ctx, u); err != nil {
			t.Errorf("get %s: %v", u, err)
		}
	}

	// Epoch 1: four misses fill the cache and flush together.
	var warm sync.WaitGroup
	for _, u := range users {
		warm.Add(1)
		go get(u, &warm)
	}
	warm.Wait()
	if got := sumMetric(reg, "pprox_reccache_misses_total"); got != 4 {
		t.Fatalf("misses exported after full epoch = %g, want 4", got)
	}

	// Epoch 2, first half: two hits enter the shuffler and block there.
	var epoch sync.WaitGroup
	for _, u := range users[:2] {
		epoch.Add(1)
		go get(u, &epoch)
	}
	deadline := time.Now().Add(3 * time.Second)
	for cache.LiveStats().Hits < 2 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight hits never reached the cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The scrape mid-epoch must not see them.
	if got := sumMetric(reg, "pprox_reccache_hits_total"); got != 0 {
		t.Errorf("hits exported mid-epoch = %g, want 0 (export must be epoch-granular)", got)
	}

	// Second half fills the epoch; everything releases and publishes.
	for _, u := range users[2:] {
		epoch.Add(1)
		go get(u, &epoch)
	}
	epoch.Wait()
	if got := sumMetric(reg, "pprox_reccache_hits_total"); got != 4 {
		t.Errorf("hits exported after flush = %g, want 4", got)
	}
}
