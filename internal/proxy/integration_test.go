package proxy_test

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/faults"
	"pprox/internal/lrs/engine"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/resilience"
	"pprox/internal/stub"
	"pprox/internal/transport"
)

// stack is a complete single-instance PProx deployment on an in-memory
// network: client → UA → IA → LRS, with real attestation, provisioning,
// and cryptography end to end.
type stack struct {
	net     *transport.Network
	client  *client.Client
	engine  *engine.Engine
	ua, ia  *proxy.Layer
	uaEncl  *enclave.Enclave
	iaEncl  *enclave.Enclave
	uaKeys  *proxy.LayerKeys
	iaKeys  *proxy.LayerKeys
	cleanup []func()
}

type stackOptions struct {
	shuffleSize    int
	shuffleTimeout time.Duration
	iaOpts         proxy.IAOptions
	useStub        bool
	passThrough    bool
	// recCache equips the IA layer with the in-enclave recommendation
	// cache.
	recCache *reccache.Cache
	// iaShuffleOnly keeps the UA layer unshuffled so cache tests can
	// hold requests mid-epoch inside the IA shuffler specifically.
	iaShuffleOnly bool
	// batch switches the UA layer to the epoch-batched pipeline.
	batch bool
	// pairLink provisions the shared UA→IA hop-envelope key.
	pairLink bool
	// policy arms resilience on both layers.
	policy *resilience.Policy
	// lrsConcurrency bounds the IA's LRS fan-out (0 = proxy default).
	lrsConcurrency int
	// workers sizes each layer's worker/job pools (0 = proxy default).
	workers int
	// iaMiddleware wraps the IA's handler (fault injection).
	iaMiddleware func(http.Handler) http.Handler
}

func newStack(t *testing.T, opts stackOptions) *stack {
	t.Helper()
	st := &stack{net: transport.NewNetwork()}
	t.Cleanup(func() {
		for i := len(st.cleanup) - 1; i >= 0; i-- {
			st.cleanup[i]()
		}
		st.net.Close()
	})

	// Trust anchor + enclaves + keys.
	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	if opts.recCache != nil {
		opts.iaOpts.Cache = opts.recCache
	}
	platform := enclave.NewPlatform(as)
	st.uaEncl = proxy.NewUAEnclave(platform)
	st.iaEncl = proxy.NewIAEnclave(platform, opts.iaOpts)
	if st.uaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if st.iaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if opts.pairLink {
		if err := proxy.PairLinkKey(st.uaKeys, st.iaKeys); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.uaKeys.Provision(as, st.uaEncl, proxy.UAIdentity); err != nil {
		t.Fatal(err)
	}
	if err := st.iaKeys.Provision(as, st.iaEncl, proxy.IAIdentityFor(opts.iaOpts)); err != nil {
		t.Fatal(err)
	}

	// LRS: real engine or nginx-style stub. In full-crypto mode the stub
	// serves items pre-pseudonymized under kIA, as a real LRS database
	// would contain.
	var lrsHandler http.Handler
	if opts.useStub {
		names := make([]string, message.MaxRecommendations)
		for i := range names {
			names[i] = fmt.Sprintf("stub-item-%04d", i)
		}
		items := names
		if !opts.passThrough && !opts.iaOpts.DisableItemPseudonymization {
			if items, err = st.iaKeys.PseudonymizeItems(names); err != nil {
				t.Fatal(err)
			}
		}
		s, err := stub.NewWithItems(items)
		if err != nil {
			t.Fatal(err)
		}
		lrsHandler = s
	} else {
		st.engine = engine.New(engine.DefaultConfig())
		lrsHandler = engine.NewHandler(st.engine)
	}
	st.serve(t, "lrs", lrsHandler)

	httpClient := transport.HTTPClient(st.net, 10*time.Second)

	// IA layer (talks to the LRS), then UA layer (talks to IA).
	st.ia, err = proxy.New(proxy.Config{
		Role:           proxy.RoleIA,
		Enclave:        st.iaEncl,
		Next:           "http://lrs",
		HTTPClient:     httpClient,
		ShuffleSize:    opts.shuffleSize,
		ShuffleTimeout: opts.shuffleTimeout,
		PassThrough:    opts.passThrough,
		RecCache:       opts.recCache,
		Resilience:     opts.policy,
		LRSConcurrency: opts.lrsConcurrency,
		Workers:        opts.workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var iaHandler http.Handler = st.ia
	if opts.iaMiddleware != nil {
		iaHandler = opts.iaMiddleware(iaHandler)
	}
	st.serve(t, "ia", iaHandler)

	uaShuffle := opts.shuffleSize
	if opts.iaShuffleOnly {
		uaShuffle = 0
	}
	st.ua, err = proxy.New(proxy.Config{
		Role:           proxy.RoleUA,
		Enclave:        st.uaEncl,
		Next:           "http://ia",
		HTTPClient:     httpClient,
		ShuffleSize:    uaShuffle,
		ShuffleTimeout: opts.shuffleTimeout,
		PassThrough:    opts.passThrough,
		Batch:          opts.batch,
		Resilience:     opts.policy,
		Workers:        opts.workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.serve(t, "ua", st.ua)

	if opts.passThrough {
		st.client = client.NewPlain(httpClient, "http://ua")
	} else {
		st.client = client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua")
	}
	return st
}

func (st *stack) serve(t *testing.T, addr string, h http.Handler) {
	t.Helper()
	l, err := st.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := transport.Serve(l, h)
	st.cleanup = append(st.cleanup, func() { shutdown() })
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestEndToEndPostAndGet(t *testing.T) {
	st := newStack(t, stackOptions{})
	ctx := ctxT(t)

	// Two user communities, inserted through the full encrypted path.
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("sci-user-%d", i)
		for _, item := range []string{"dune", "foundation"} {
			if err := st.client.Post(ctx, u, item, ""); err != nil {
				t.Fatalf("Post(%s,%s): %v", u, item, err)
			}
		}
	}
	for i := 0; i < 6; i++ {
		if err := st.client.Post(ctx, fmt.Sprintf("cook-%d", i), "salt-fat-acid", "4.5"); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.client.Post(ctx, "probe", "dune", ""); err != nil {
		t.Fatal(err)
	}

	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	items, err := st.client.Get(ctx, "probe")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(items) == 0 {
		t.Fatal("no recommendations through the proxy")
	}
	if items[0] != "foundation" {
		t.Errorf("top recommendation = %q, want %q (cleartext, correctly de-pseudonymized)", items[0], "foundation")
	}
	for _, it := range items {
		if it == "dune" {
			t.Error("already-seen item recommended — blacklist broken through pseudonymization")
		}
	}
}

func TestLRSSeesOnlyPseudonyms(t *testing.T) {
	st := newStack(t, stackOptions{})
	ctx := ctxT(t)

	if err := st.client.Post(ctx, "alice", "casablanca", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.client.Post(ctx, "alice", "vertigo", ""); err != nil {
		t.Fatal(err)
	}
	if err := st.client.Post(ctx, "bob", "casablanca", ""); err != nil {
		t.Fatal(err)
	}

	users := make(map[string]int)
	items := make(map[string]int)
	scanEvents(st.engine, func(user, item string) {
		users[user]++
		items[item]++
		for _, clear := range []string{"alice", "bob", "casablanca", "vertigo"} {
			if strings.Contains(user, clear) || strings.Contains(item, clear) {
				t.Errorf("cleartext identifier %q reached the LRS (user=%q item=%q)", clear, user, item)
			}
		}
		// Pseudonyms are base64 of fixed-size blocks — constant length.
		if raw, err := base64.StdEncoding.DecodeString(user); err != nil || len(raw) != 64 {
			t.Errorf("user pseudonym %q is not a 64-byte block", user)
		}
	})

	// Determinism: alice's two posts map to ONE pseudonymous profile.
	if len(users) != 2 {
		t.Errorf("LRS sees %d distinct users, want 2 (stable pseudonyms)", len(users))
	}
	var aliceCount bool
	for _, n := range users {
		if n == 2 {
			aliceCount = true
		}
	}
	if !aliceCount {
		t.Error("no pseudonymous user has 2 events; pseudonymization is not deterministic")
	}
	// casablanca posted by two users → one pseudonymous item seen twice.
	if len(items) != 2 {
		t.Errorf("LRS sees %d distinct items, want 2", len(items))
	}
}

func scanEvents(e *engine.Engine, fn func(user, item string)) {
	// The engine does not expose its store directly; recover events via
	// the exported surface. Use a tiny shim: EventCount plus reflection
	// is overkill — instead the engine test hook is the document store
	// collection reached through a fresh query. Simplest honest check:
	// re-train and inspect via Recommend behaviour is indirect, so we
	// expose events through the engine's store by querying history.
	// For test purposes engine exposes nothing, so we go through the
	// package-level accessor below.
	forEachEvent(e, fn)
}

func TestItemPseudonymizationDisabled(t *testing.T) {
	st := newStack(t, stackOptions{iaOpts: proxy.IAOptions{DisableItemPseudonymization: true}})
	ctx := ctxT(t)

	// Seed enough context for a real recommendation.
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("u%d", i)
		st.mustPost(t, ctx, u, "heat")
		st.mustPost(t, ctx, u, "ronin")
	}
	for i := 0; i < 5; i++ {
		st.mustPost(t, ctx, fmt.Sprintf("other%d", i), "amelie")
	}
	st.mustPost(t, ctx, "probe", "heat")
	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	// §6.3: items reach the LRS in the clear, users stay pseudonymous
	// (a pseudonym is the base64 of a 64-byte block, never a bare name).
	sawClearItem := false
	forEachEvent(st.engine, func(user, item string) {
		if item == "heat" || item == "ronin" || item == "amelie" {
			sawClearItem = true
		}
		if raw, err := base64.StdEncoding.DecodeString(user); err != nil || len(raw) != 64 {
			t.Errorf("user %q reached the LRS unpseudonymized", user)
		}
	})
	if !sawClearItem {
		t.Error("no cleartext item in LRS despite pseudonymization disabled")
	}

	items, err := st.client.Get(ctx, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 || items[0] != "ronin" {
		t.Errorf("recommendations = %v, want ronin first", items)
	}
}

func (st *stack) mustPost(t *testing.T, ctx context.Context, user, item string) {
	t.Helper()
	if err := st.client.Post(ctx, user, item, ""); err != nil {
		t.Fatalf("Post(%s,%s): %v", user, item, err)
	}
}

func TestPassThroughMode(t *testing.T) {
	st := newStack(t, stackOptions{useStub: true, passThrough: true})
	ctx := ctxT(t)
	if err := st.client.Post(ctx, "u", "i", ""); err != nil {
		t.Fatalf("plain post through pass-through proxies: %v", err)
	}
	items, err := st.client.Get(ctx, "u")
	if err != nil {
		t.Fatalf("plain get: %v", err)
	}
	if len(items) != message.MaxRecommendations {
		t.Errorf("stub returned %d items", len(items))
	}
}

func TestEndToEndWithShuffling(t *testing.T) {
	st := newStack(t, stackOptions{useStub: true, shuffleSize: 4, shuffleTimeout: 50 * time.Millisecond})
	ctx := ctxT(t)

	// Sequential requests rely on the flush timer; concurrent bursts on
	// the size threshold. Exercise both.
	start := time.Now()
	if _, err := st.client.Get(ctx, "solo"); err != nil {
		t.Fatalf("solo get under shuffling: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond {
		// Two shuffle stages (UA requests, IA responses) × 50 ms timer.
		t.Errorf("solo request finished in %v; shuffle delay missing", elapsed)
	}

	errc := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func(i int) {
			_, err := st.client.Get(ctx, fmt.Sprintf("burst-%d", i))
			errc <- err
		}(i)
	}
	for i := 0; i < 4; i++ {
		if err := <-errc; err != nil {
			t.Fatalf("burst get: %v", err)
		}
	}
	if flushes, _ := st.ua.Shuffler().Stats(); flushes == 0 {
		t.Error("UA shuffler never flushed")
	}
	if flushes, _ := st.ia.Shuffler().Stats(); flushes == 0 {
		t.Error("IA shuffler never flushed")
	}
}

func TestMalformedCiphertextRejected(t *testing.T) {
	st := newStack(t, stackOptions{})
	httpClient := transport.HTTPClient(st.net, 5*time.Second)

	body := `{"enc_user":"bm90IGEgcmVhbCBjaXBoZXJ0ZXh0","enc_item":"AAAA"}`
	resp, err := httpClient.Post("http://ua"+message.EventsPath, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
	// Failure counters move, success counters do not.
	if served, failed := st.ua.Stats(); served != 0 || failed != 1 {
		t.Errorf("UA stats = %d served, %d failed", served, failed)
	}
}

func TestUpstreamDownYieldsBadGateway(t *testing.T) {
	st := newStack(t, stackOptions{useStub: true})
	ctx := ctxT(t)

	// A UA whose next hop does not exist: forwarding fails and the
	// client sees an error status, never a hang.
	httpClient := transport.HTTPClient(st.net, 2*time.Second)
	ua, err := proxy.New(proxy.Config{
		Role:       proxy.RoleUA,
		Enclave:    st.uaEncl,
		Next:       "http://nowhere",
		HTTPClient: httpClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.serve(t, "ua-broken", ua)

	cl := client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua-broken")
	err = cl.Post(ctx, "u", "i", "")
	if !errors.Is(err, client.ErrServiceStatus) {
		t.Fatalf("err = %v, want service status error", err)
	}
}

func TestGetRequiresTempKey(t *testing.T) {
	// A get request missing enc_temp_key must be rejected by the IA
	// enclave, not crash it.
	st := newStack(t, stackOptions{useStub: true})
	httpClient := transport.HTTPClient(st.net, 5*time.Second)

	// Craft a request with a valid enc_user but no temp key, the way a
	// buggy or hostile client might.
	enc, err := encryptIDForTest(st.uaKeys, "u")
	if err != nil {
		t.Fatal(err)
	}
	req := fmt.Sprintf(`{"enc_user":%q}`, enc)
	resp, err := httpClient.Post("http://ua"+message.QueriesPath, "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestEPCHandleClearedOnMalformedLRSResponse is the regression test for
// the EPC handle leak: when the LRS answered a get with a body the
// re-encrypt ECALL rejects, the parked temporary key k_u stayed in the IA
// enclave's KV forever — a slow EPC exhaustion an adversarial or broken
// LRS could drive. Every failed response transformation must release the
// handle.
func TestEPCHandleClearedOnMalformedLRSResponse(t *testing.T) {
	st := newStack(t, stackOptions{useStub: true})
	ctx := ctxT(t)

	st.serve(t, "lrs-garbage", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("] not a recommendation list ["))
	}))
	httpClient := transport.HTTPClient(st.net, 5*time.Second)
	ia, err := proxy.New(proxy.Config{
		Role: proxy.RoleIA, Enclave: st.iaEncl, Next: "http://lrs-garbage", HTTPClient: httpClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.serve(t, "ia-garbage", ia)
	ua, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Enclave: st.uaEncl, Next: "http://ia-garbage", HTTPClient: httpClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.serve(t, "ua-garbage", ua)
	cl := client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua-garbage")

	usedBefore, _ := st.iaEncl.EPCUsage()
	for i := 0; i < 5; i++ {
		if _, err := cl.Get(ctx, fmt.Sprintf("u%d", i)); err == nil {
			t.Fatal("get against a garbage LRS succeeded")
		}
	}
	if used, _ := st.iaEncl.EPCUsage(); used != usedBefore {
		t.Errorf("EPC pages %d → %d: parked temp keys leaked on failed re-encrypts", usedBefore, used)
	}
	if n := st.iaEncl.KV().Len(); n != 0 {
		t.Errorf("%d handles left in the IA enclave KV", n)
	}
}

// TestHangingUpstreamBoundedByHopTimeout points a layer at a next hop that
// accepts connections and never answers. The per-attempt deadline must
// bound every attempt so the client gets an error in bounded time instead
// of hanging for the full client timeout.
func TestHangingUpstreamBoundedByHopTimeout(t *testing.T) {
	st := newStack(t, stackOptions{useStub: true})
	ctx := ctxT(t)

	inj := faults.NewInjector(1, faults.Rule{Kind: faults.KindHang})
	defer inj.Close()
	st.serve(t, "hung", inj.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})))

	httpClient := transport.HTTPClient(st.net, 30*time.Second)
	ua, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Enclave: st.uaEncl, Next: "http://hung", HTTPClient: httpClient,
		Resilience: &resilience.Policy{
			HopTimeout:  100 * time.Millisecond,
			MaxAttempts: 2,
			BackoffBase: 5 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	st.serve(t, "ua-hung", ua)
	cl := client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua-hung")

	start := time.Now()
	err = cl.Post(ctx, "u", "i", "")
	elapsed := time.Since(start)
	if !errors.Is(err, client.ErrServiceStatus) {
		t.Fatalf("err = %v, want a service status error", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("hung next hop held the request for %v; hop deadline did not bound it", elapsed)
	}
	if retries, _ := ua.RetryStats(); retries != 1 {
		t.Errorf("retries = %d, want 1 (second attempt also timed out)", retries)
	}
}

// forEachEvent iterates the engine's stored (user, item) events through
// the engine's observability accessor.
func forEachEvent(e *engine.Engine, fn func(user, item string)) {
	e.ForEachEvent(func(d store.Document) {
		fn(d.Fields["user"], d.Fields["item"])
	})
}

// encryptIDForTest encrypts an identifier for a layer the way the
// user-side library does, for hand-crafted request tests.
func encryptIDForTest(keys *proxy.LayerKeys, id string) (string, error) {
	block, err := ppcrypto.PadID(id)
	if err != nil {
		return "", err
	}
	ct, err := ppcrypto.EncryptOAEP(keys.Pair.Public, block)
	if err != nil {
		return "", err
	}
	return message.Encode64(ct), nil
}

func TestCrossIndicatorEventsThroughProxy(t *testing.T) {
	// The indicator type must survive both proxy layers (it travels in
	// the clear, like the payload), and cross-occurrence recommendations
	// must work on pseudonymized identifiers end to end.
	st := newStack(t, stackOptions{})
	ctx := ctxT(t)

	post := func(u, item, typ string) {
		t.Helper()
		if err := st.client.PostEvent(ctx, u, item, "", typ); err != nil {
			t.Fatalf("PostEvent(%s,%s,%s): %v", u, item, typ, err)
		}
	}
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("fan-%d", i)
		post(u, "trailer-dune", "view")
		post(u, "dune", "")
	}
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("other-%d", i)
		post(u, "trailer-cats", "view")
		post(u, "cats", "")
	}
	// probe only viewed the dune trailer.
	post("probe", "trailer-dune", "view")

	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	// The stored events carry the cleartext type but pseudonymous ids.
	types := map[string]int{}
	st.engine.ForEachEvent(func(d store.Document) {
		types[d.Fields["type"]]++
		if strings.Contains(d.Fields["item"], "trailer") {
			t.Errorf("cleartext item %q in LRS", d.Fields["item"])
		}
	})
	if types["view"] != 25 || types[""] != 24 {
		t.Errorf("event types at LRS = %v", types)
	}

	items, err := st.client.Get(ctx, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 || items[0] != "dune" {
		t.Errorf("cross-occurrence recs through proxy = %v, want dune first", items)
	}
}

func TestConcurrentMixedWorkloadStress(t *testing.T) {
	// 160 concurrent mixed requests through the full encrypted stack
	// with shuffling enabled: no drops, no wrong answers, no deadlocks.
	st := newStack(t, stackOptions{shuffleSize: 8, shuffleTimeout: 50 * time.Millisecond})
	ctx := ctxT(t)

	// Seed a community so gets return data, then train.
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("seed-%d", i)
		st.mustPost(t, ctx, u, "alpha")
		st.mustPost(t, ctx, u, "beta")
	}
	for i := 0; i < 4; i++ {
		st.mustPost(t, ctx, fmt.Sprintf("bg-%d", i), "gamma")
	}
	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	const n = 160
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := fmt.Sprintf("stress-%03d", i)
			if i%2 == 0 {
				errs <- st.client.Post(ctx, u, fmt.Sprintf("item-%d", i%7), "")
				return
			}
			items, err := st.client.Get(ctx, fmt.Sprintf("seed-%d", i%10))
			if err == nil && len(items) == 0 {
				err = fmt.Errorf("seeded user received no recommendations")
			}
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		if err != nil {
			failures++
			t.Logf("request error: %v", err)
		}
	}
	if failures > 0 {
		t.Errorf("%d of %d concurrent requests failed", failures, n)
	}

	uaServed, uaFailed := st.ua.Stats()
	iaServed, iaFailed := st.ia.Stats()
	if uaFailed != 0 || iaFailed != 0 {
		t.Errorf("layer failures: UA %d, IA %d", uaFailed, iaFailed)
	}
	if uaServed != iaServed {
		t.Errorf("layer accounting mismatch: UA served %d, IA %d", uaServed, iaServed)
	}
	// The IA enclave's KV must not leak parked temp keys.
	if pending := st.iaEncl.KV().Len(); pending != 0 {
		t.Errorf("%d temporary keys leaked in the IA enclave KV", pending)
	}
}
