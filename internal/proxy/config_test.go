package proxy

import (
	"net/http"
	"testing"
)

// Regression: a Layer built without an HTTP client used to fall back to
// http.DefaultClient, which has no timeout — one hung next hop would pin a
// request goroutine forever. The default must be the bounded transport
// client.
func TestNewDefaultsToBoundedClient(t *testing.T) {
	l, err := New(Config{Role: RoleUA, PassThrough: true, Next: "http://next"})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.cfg.HTTPClient == http.DefaultClient {
		t.Fatal("New fell back to the unbounded http.DefaultClient")
	}
	if l.cfg.HTTPClient.Timeout <= 0 {
		t.Error("default HTTP client has no overall timeout")
	}
}

// Without a resilience policy a layer makes exactly one attempt and arms
// no breaker — the seed behaviour, so existing deployments see no retries
// they did not ask for.
func TestNewWithoutPolicyIsSingleAttempt(t *testing.T) {
	l, err := New(Config{Role: RoleIA, PassThrough: true, Next: "http://next"})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.policy.MaxAttempts != 1 {
		t.Errorf("MaxAttempts = %d without a policy, want 1", l.policy.MaxAttempts)
	}
	if l.Breaker() != nil {
		t.Error("breaker armed without a policy")
	}
}
