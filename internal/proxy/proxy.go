// Package proxy implements the PProx privacy-preserving proxy service
// (§§3–5 of the paper): two layers of anonymizing proxies running in SGX
// enclaves between the user-side library and an unmodified legacy
// recommendation system.
//
//   - The User Anonymizer (UA) layer decrypts and pseudonymizes user
//     identifiers; it never sees item identifiers.
//   - The Item Anonymizer (IA) layer decrypts and pseudonymizes item
//     identifiers and re-encrypts recommendation lists under the client's
//     temporary key; it never sees user identifiers or addresses.
//
// Each layer buffers and shuffles traffic (UA on the request path, IA on
// the response path) so a network observer cannot correlate flows across
// the proxy (§4.3). The untrusted server part of each layer handles only
// opaque bytes: all cryptography happens in ECALLs into the layer's
// enclave, with a bounded data-processing worker pool standing in for the
// paper's in-enclave thread pool (§5).
package proxy

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"pprox/internal/enclave"
	"pprox/internal/eventloop"
	"pprox/internal/hopwire"
	"pprox/internal/message"
	"pprox/internal/reccache"
	"pprox/internal/resilience"
	"pprox/internal/trace"
	"pprox/internal/transport"
)

// Role distinguishes the two proxy layers.
type Role int

// Layer roles.
const (
	RoleUA Role = iota + 1
	RoleIA
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleUA:
		return "UA"
	case RoleIA:
		return "IA"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Config assembles one proxy layer instance.
type Config struct {
	// Role selects UA or IA behaviour.
	Role Role
	// Enclave is the provisioned enclave executing this layer's
	// cryptography (NewUAEnclave / NewIAEnclave).
	Enclave *enclave.Enclave
	// Next is the base URL of the next hop: the IA layer's balancer for
	// a UA instance, the LRS for an IA instance.
	Next string
	// HTTPClient carries traffic to the next hop.
	HTTPClient *http.Client
	// ShuffleSize is S; values ≤ 1 disable shuffling (§4.3). The UA
	// layer shuffles requests, the IA layer shuffles responses.
	ShuffleSize int
	// ShuffleTimeout bounds how long a partially filled buffer waits.
	ShuffleTimeout time.Duration
	// TableSize caps the pending table T (default 4×S).
	TableSize int
	// Workers sizes the data-processing pool; the paper uses one thread
	// per core on 2-core nodes, so the default is 2.
	Workers int
	// PassThrough forwards bodies untouched (micro-benchmark m1: no
	// encryption). Shuffling still applies if configured.
	PassThrough bool
	// Resilience bounds this layer's fault handling toward the next hop:
	// per-attempt deadline, retries, and the circuit breaker probing the
	// hop's /healthz. Nil means a single attempt, bounded only by the
	// HTTP client, with no breaker. Retries on the UA layer are
	// privacy-aware: each retry re-randomizes the hop envelope (when a
	// link key is provisioned) and re-enters the shuffler.
	Resilience *resilience.Policy
	// RecCache is the in-enclave recommendation cache (IA role only).
	// It must be the same cache passed to NewIAEnclave via
	// IAOptions.Cache: the layer drives coalescing and epoch-granular
	// stat publication on it, the enclave does lookups and fills.
	RecCache *reccache.Cache
	// Batch selects the epoch-batched pipeline on a UA layer (DESIGN.md
	// §4f): requests join shuffle epochs without blocking a goroutine
	// each, every epoch is processed in one batch ECALL, and leaves as
	// ONE batch envelope POSTed to the IA's /batch route. Requires the
	// enclave path and ShuffleSize > 1 (epochs are what is batched). An
	// IA layer ignores the flag — it always serves /batch when it has an
	// enclave.
	Batch bool
	// LRSConcurrency bounds the IA→LRS fan-out (IA role only): at most
	// this many LRS requests in flight per layer instance, covering both
	// demultiplexed batch epochs and the per-message path. 0 selects
	// DefaultLRSConcurrency; negative disables the bound.
	LRSConcurrency int
	// Hopwire selects the persistent binary-framed hop transport toward
	// Next (DESIGN.md §4h): batch envelopes and per-message forwards ride
	// pooled frame connections, falling back to HTTP while the peer does
	// not speak the protocol. Requires HopDialer.
	Hopwire bool
	// HopDialer dials hopwire connections — the memnet network, a
	// cluster balancer, or a *net.Dialer — matching how HTTPClient
	// reaches Next.
	HopDialer transport.Dialer
}

// DefaultLRSConcurrency is the IA→LRS fan-out bound when the
// configuration leaves Config.LRSConcurrency zero.
const DefaultLRSConcurrency = 64

// Layer is one proxy instance (one node of one layer). It serves the same
// REST API as the LRS and forwards transformed traffic to the next hop.
type Layer struct {
	cfg      Config
	shuffler *Shuffler
	workers  chan struct{}
	policy   resilience.Policy
	breaker  *resilience.Breaker
	// jobs runs one job per shuffle epoch in batch mode (UA role).
	jobs *eventloop.JobPool
	// lrsSem bounds the IA→LRS fan-out (IA role; nil = unbounded).
	lrsSem *resilience.Semaphore
	// hop is the binary frame transport toward Next (nil = HTTP only).
	hop *hopwire.Client
	// hopEpoch mints batch-frame epoch ids for this instance's envelopes.
	hopEpoch atomic.Uint64

	nextHandle atomic.Uint64
	served     atomic.Uint64
	failed     atomic.Uint64
	retries    atomic.Uint64
	failFast   atomic.Uint64

	// Batch-pipeline counters (BatchStats).
	batches       atomic.Uint64
	batchMsgs     atomic.Uint64
	batchRetries  atomic.Uint64
	batchSplits   atomic.Uint64
	batchDegraded atomic.Uint64
	epcFallbacks  atomic.Uint64

	// obs and tracer are installed by RegisterMetrics / SetTracer and
	// read lock-free on the request path.
	obs    atomic.Pointer[instruments]
	tracer atomic.Pointer[trace.Tracer]
	// epochFn and logger are installed by SetEpochObserver / SetLogger.
	epochFn atomic.Pointer[func(int)]
	logger  atomic.Pointer[slog.Logger]

	// Drain lifecycle (drain.go): draining marks the soft phase (serve
	// but break keep-alive), refusing the hard phase (503 new requests),
	// inflight counts app requests between accept and response, and the
	// *Base/stranded fields implement the DrainReport.Clean invariant.
	draining       atomic.Bool
	refusing       atomic.Bool
	inflight       atomic.Int64
	drainShedsBase atomic.Uint64
	drainPendingAt atomic.Int64
	drainStranded  atomic.Bool
}

// New creates a layer instance from its configuration.
func New(cfg Config) (*Layer, error) {
	if cfg.Role != RoleUA && cfg.Role != RoleIA {
		return nil, fmt.Errorf("proxy: invalid role %d", int(cfg.Role))
	}
	if !cfg.PassThrough && cfg.Enclave == nil {
		return nil, errors.New("proxy: enclave required unless pass-through")
	}
	if cfg.Next == "" {
		return nil, errors.New("proxy: next hop required")
	}
	if cfg.HTTPClient == nil {
		// Never http.DefaultClient: it has no timeout, so one hung next
		// hop would pin request goroutines forever.
		cfg.HTTPClient = transport.DefaultHTTPClient(defaultClientTimeout)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	pol := resilience.Policy{MaxAttempts: 1}
	if cfg.Resilience != nil {
		pol = cfg.Resilience.WithDefaults()
	}
	l := &Layer{
		cfg:     cfg,
		workers: make(chan struct{}, cfg.Workers),
		policy:  pol,
	}
	if cfg.RecCache != nil {
		if cfg.Role != RoleIA {
			return nil, errors.New("proxy: recommendation cache is IA-only")
		}
		if cfg.PassThrough {
			return nil, errors.New("proxy: recommendation cache requires the enclave path")
		}
	}
	l.breaker = resilience.NewBreaker(pol.BreakerThreshold, pol.BreakerCooldown,
		resilience.HTTPHealthProbe(cfg.HTTPClient, cfg.Next+message.HealthPath, pol.HopTimeout))
	if cfg.ShuffleSize > 1 {
		l.shuffler = NewShuffler(cfg.ShuffleSize, cfg.ShuffleTimeout, cfg.TableSize)
		// Install the flush hooks that exist independently of metrics
		// registration — in particular the cache's epoch-granular stat
		// publication must not depend on an observability call.
		l.rewireShuffler()
	} else if cfg.RecCache != nil {
		// Without a shuffler there are no epochs to batch stat export
		// into — and no 1/S bound for sub-epoch updates to erode — so
		// cache counters publish live.
		cfg.RecCache.SetPublishLive(true)
	}
	if cfg.Role == RoleIA {
		n := cfg.LRSConcurrency
		if n == 0 {
			n = DefaultLRSConcurrency
		}
		// NewSemaphore treats n ≤ 0 as unbounded, which is what a
		// negative LRSConcurrency selects.
		l.lrsSem = resilience.NewSemaphore(n)
	}
	if cfg.Hopwire {
		if cfg.HopDialer == nil {
			return nil, errors.New("proxy: hopwire requires HopDialer")
		}
		hw, err := hopwire.NewClient(cfg.HopDialer, cfg.Next)
		if err != nil {
			return nil, fmt.Errorf("proxy: %w", err)
		}
		l.hop = hw
	}
	if cfg.Batch && cfg.Role == RoleUA {
		if cfg.PassThrough {
			return nil, errors.New("proxy: batch mode requires the enclave path")
		}
		if l.shuffler == nil {
			return nil, errors.New("proxy: batch mode requires ShuffleSize > 1")
		}
		l.jobs = eventloop.NewJobPool(cfg.Workers)
		l.shuffler.SetBatchSink(func(vals []any) {
			// Runs under the shuffler lock: only hand the epoch to the
			// pool. If the pool is already closed, fail the epoch's
			// messages fast — the shuffler is closing too.
			if !l.jobs.Submit(func() { l.runBatch(vals) }) {
				failBatchItems(vals, ErrShufflerClosed)
			}
		})
	}
	return l, nil
}

// defaultClientTimeout bounds next-hop requests when no HTTP client is
// injected.
const defaultClientTimeout = 30 * time.Second

// Close releases buffered messages, drains in-flight batch epochs, and
// flushes the final partial trace epoch (shutdown path). The shuffler
// closes first — its final flush still submits to the job pool — and the
// pool's Close runs every accepted epoch to completion, so no admitted
// request is left without a response.
func (l *Layer) Close() {
	if l.draining.Load() && l.shuffler.Pending() > 0 {
		// A drained instance must leave through an empty shuffler: its
		// final epoch flushed whole before teardown. Closing with
		// messages still buffered would release them as a sub-S batch.
		l.drainStranded.Store(true)
	}
	l.shuffler.Close()
	l.jobs.Close()
	l.hop.Close()
	l.tracer.Load().AdvanceEpoch()
}

// Hopwire exposes the layer's frame transport client (nil when disabled),
// for metrics and tests.
func (l *Layer) Hopwire() *hopwire.Client { return l.hop }

// Stats returns served and failed request counts.
func (l *Layer) Stats() (served, failed uint64) {
	return l.served.Load(), l.failed.Load()
}

// Shuffler exposes the layer's shuffler (nil when disabled), for tests and
// operational metrics.
func (l *Layer) Shuffler() *Shuffler { return l.shuffler }

// RetryStats returns how many forward retries ran and how many requests
// failed fast on an open next-hop breaker.
func (l *Layer) RetryStats() (retries, failFast uint64) {
	return l.retries.Load(), l.failFast.Load()
}

// BatchStats reports the epoch-batched pipeline's counters: epochs
// forwarded as one envelope, messages inside them, whole-envelope retry
// sends, sub-envelope sends after splitting, messages degraded to
// per-message forwarding, and batch ECALLs that fell back to per-message
// crossings on EPC exhaustion.
type BatchStats struct {
	Batches      uint64
	Messages     uint64
	Retries      uint64
	Splits       uint64
	Degraded     uint64
	EPCFallbacks uint64
}

// BatchStats returns the layer's batch-pipeline counters (all zero when
// batch mode is off).
func (l *Layer) BatchStats() BatchStats {
	return BatchStats{
		Batches:      l.batches.Load(),
		Messages:     l.batchMsgs.Load(),
		Retries:      l.batchRetries.Load(),
		Splits:       l.batchSplits.Load(),
		Degraded:     l.batchDegraded.Load(),
		EPCFallbacks: l.epcFallbacks.Load(),
	}
}

// LRSInFlight returns the current IA→LRS fan-out occupancy (the
// pprox_lrs_inflight gauge; always 0 on a UA layer or when unbounded).
func (l *Layer) LRSInFlight() int64 { return l.lrsSem.InFlight() }

// Breaker exposes the next-hop circuit breaker (nil when disabled), for
// metrics and tests.
func (l *Layer) Breaker() *resilience.Breaker { return l.breaker }

// Enclave exposes the layer's enclave (nil in pass-through mode), for the
// security experiments that compromise it.
func (l *Layer) Enclave() *enclave.Enclave { return l.cfg.Enclave }

// RecCache exposes the layer's recommendation cache (nil when disabled),
// for rotation flush hooks, audit checks, and metrics.
func (l *Layer) RecCache() *reccache.Cache { return l.cfg.RecCache }

// ServeHTTP implements the layer's REST endpoint.
func (l *Layer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	isApp := r.Method == http.MethodPost &&
		(r.URL.Path == message.EventsPath || r.URL.Path == message.QueriesPath ||
			(r.URL.Path == message.BatchPath && l.cfg.Role == RoleIA && !l.cfg.PassThrough))
	if isApp {
		if l.refusing.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if l.draining.Load() {
			// Soft drain: keep serving, but evict this connection from
			// keep-alive pools so no new request rides it back here.
			w.Header().Set("Connection", "close")
		}
		l.inflight.Add(1)
		defer l.inflight.Add(-1)
	}
	switch {
	case r.Method == http.MethodPost && (r.URL.Path == message.EventsPath || r.URL.Path == message.QueriesPath):
		l.handle(w, r)
	case r.Method == http.MethodPost && r.URL.Path == message.BatchPath &&
		l.cfg.Role == RoleIA && !l.cfg.PassThrough:
		l.handleBatch(w, r)
	case r.Method == http.MethodGet && r.URL.Path == message.HealthPath:
		fmt.Fprint(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

func (l *Layer) handle(w http.ResponseWriter, r *http.Request) {
	// The serve span wraps the whole hop, success or failure: it is the
	// end-to-end histogram the latency SLO evaluates, and — like every
	// stage — it surfaces in traces only as an epoch-batched record.
	span := l.tracer.Load().Start(StageServe)
	start := time.Now()
	defer func() {
		l.observeStage(StageServe, start)
		span.End()
	}()

	body, err := readBody(r.Body, maxBody)
	if err != nil {
		if errors.Is(err, ErrBodyTooLarge) {
			l.fail(w, http.StatusRequestEntityTooLarge, "request body too large")
			return
		}
		l.fail(w, http.StatusBadRequest, "read request")
		return
	}
	isGet := r.URL.Path == message.QueriesPath

	var status int
	var respBody []byte
	if l.cfg.Role == RoleUA {
		status, respBody, err = l.handleUA(r.Context(), r.URL.Path, body, isGet)
	} else {
		status, respBody, err = l.handleIA(r.Context(), r.URL.Path, body, isGet)
	}
	if err != nil {
		l.fail(w, statusFor(err), failText(err))
		l.logWarn("request failed",
			"layer", l.roleLabel(), "path", r.URL.Path, "class", failClass(err))
		return
	}

	l.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(respBody)
}

func (l *Layer) fail(w http.ResponseWriter, status int, msg string) {
	l.failed.Add(1)
	http.Error(w, msg, status)
}

// statusFor maps a pipeline error to the HTTP status a client sees; the
// same mapping prices each entry of a batch envelope.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrTableFull) || errors.Is(err, ErrShufflerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, errEnclave):
		return http.StatusBadRequest
	case errors.Is(err, resilience.ErrBreakerOpen):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}

// failText is the constant-per-class response text. No detail: the
// untrusted host must not relay why the enclave rejected a ciphertext.
func failText(err error) string {
	switch {
	case errors.Is(err, ErrTableFull):
		return "shuffling table full"
	case errors.Is(err, ErrShufflerClosed):
		return "shutting down"
	case errors.Is(err, errEnclave):
		return "request rejected"
	case errors.Is(err, resilience.ErrBreakerOpen):
		return "next hop unavailable"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "upstream error"
	}
}

// failClass maps a pipeline error to a bounded-cardinality label for log
// records. It deliberately never renders err.Error(): upstream errors
// wrap URLs and transport detail that belong in metrics dimensions, not
// free text.
func failClass(err error) string {
	switch {
	case errors.Is(err, ErrTableFull):
		return "table_full"
	case errors.Is(err, ErrShufflerClosed):
		return "shutdown"
	case errors.Is(err, errEnclave):
		return "enclave_reject"
	case errors.Is(err, resilience.ErrBreakerOpen):
		return "breaker_open"
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	default:
		return "upstream"
	}
}

// handleUA implements the UA node pipeline: pseudonymize the user
// identifier in the enclave, shuffle the request batch, forward to the IA
// layer, and relay the (already client-encrypted) response untouched.
func (l *Layer) handleUA(ctx context.Context, path string, body []byte, isGet bool) (int, []byte, error) {
	if l.jobs != nil {
		return l.handleUABatch(ctx, body, isGet)
	}
	out := body
	if !l.cfg.PassThrough {
		ecall := ecallUAPost
		if isGet {
			ecall = ecallUAGet
		}
		var err error
		out, err = l.process(StageEcallDecrypt, ecall, out)
		if err != nil {
			return 0, nil, err
		}
	}
	// Request shuffling happens between the UA and IA layers (§4.3).
	if err := l.shuffleWait(ctx); err != nil {
		return 0, nil, err
	}
	return l.forwardResilient(ctx, path, out, l.uaRetryPrep)
}

// uaRetryPrep re-establishes a retry's unlinkability before it leaves the
// UA again: the hop envelope is re-encrypted with a fresh IV (so the
// retried bytes are unrelated to the failed attempt's), and the request
// re-enters the shuffler so it departs inside a fresh batch instead of
// alone right after the failure it repeats.
func (l *Layer) uaRetryPrep(ctx context.Context, body []byte) ([]byte, error) {
	if !l.cfg.PassThrough && isLinkWrapped(body) {
		out, err := l.process(StageEcallRewrap, ecallLinkRewrap, body)
		if err != nil {
			return nil, err
		}
		body = out
	}
	if err := l.shuffleWait(ctx); err != nil {
		return nil, err
	}
	return body, nil
}

// isLinkWrapped is the host-side envelope probe. The *presence* of an
// envelope is plain wire format — every message on the link has one when a
// link key is deployed — only its content is protected.
func isLinkWrapped(body []byte) bool {
	var env linkEnvelope
	return json.Unmarshal(body, &env) == nil && env.Link != ""
}

// shuffleWait blocks in the shuffler, timing the buffered delay as the
// shuffle_wait stage.
func (l *Layer) shuffleWait(ctx context.Context) error {
	if l.shuffler == nil {
		return nil
	}
	span := l.tracer.Load().Start(StageShuffleWait)
	start := time.Now()
	_, err := l.shuffler.Wait(ctx)
	l.observeStage(StageShuffleWait, start)
	span.End()
	return err
}

// handleIA implements the IA node pipeline: pseudonymize the item (post)
// or park the temporary key (get) in the enclave, forward to the LRS,
// transform the response in the enclave, and shuffle the response batch
// before it travels back toward the UA layer.
func (l *Layer) handleIA(ctx context.Context, path string, body []byte, isGet bool) (int, []byte, error) {
	if isGet && l.cfg.RecCache != nil && !l.cfg.PassThrough {
		return l.handleIAGetCached(ctx, path, body)
	}
	out := body
	var handle string
	if !l.cfg.PassThrough {
		if isGet {
			handle = strconv.FormatUint(l.nextHandle.Add(1), 36)
			framed, err := message.Marshal(iaGetCall{Handle: handle, Body: body})
			if err != nil {
				return 0, nil, err
			}
			out, err = l.process(StageEcallDecrypt, ecallIAGet, framed)
			if err != nil {
				return 0, nil, err
			}
		} else {
			var err error
			out, err = l.process(StageEcallDecrypt, ecallIAPost, out)
			if err != nil {
				return 0, nil, err
			}
		}
	}

	// IA→LRS retries need no rewrap/reshuffle prep: the request leaving
	// the IA is the pseudonymized cleartext the LRS expects, and the
	// shuffle the IA owns is on the *response* path below.
	status, lrsBody, err := l.forwardLRS(ctx, path, out)
	if err != nil {
		l.dropHandle(handle)
		return 0, nil, err
	}

	respBody := lrsBody
	if !l.cfg.PassThrough && isGet {
		if status == http.StatusOK {
			framed, err := message.Marshal(iaGetCall{Handle: handle, Body: lrsBody})
			if err != nil {
				l.dropHandle(handle)
				return 0, nil, err
			}
			respBody, err = l.process(StageEcallReencrypt, ecallIAGetResp, framed)
			if err != nil {
				// The re-encrypt ECALL consumes the parked key with
				// KV.Take only on success; clear it here or every
				// malformed LRS response leaks one EPC entry.
				l.dropHandle(handle)
				return 0, nil, err
			}
		} else {
			l.dropHandle(handle)
		}
	}

	// Response shuffling happens between the IA and UA layers (§4.3).
	if err := l.shuffleWait(ctx); err != nil {
		return 0, nil, err
	}
	return status, respBody, nil
}

// fetchResult carries a coalesced LRS round trip's outcome between the
// leader that ran it and the followers sharing it.
type fetchResult struct {
	status int
	body   []byte
}

// handleIAGetCached is the IA get pipeline with the recommendation cache
// enabled. The ia/get ECALL decides hit or miss behind the enclave
// boundary; a hit comes back already sealed under the client's k_u and
// skips the LRS hop, a miss returns the LRS request plus the coalescing
// key so concurrent misses for the same pseudonym share one fetch. Both
// outcomes re-enter the response shuffler, so a network observer sees
// hits and misses leave inside the same epoch batches — the 1/S bound is
// untouched, and the only externally visible difference is epoch-level
// throughput.
func (l *Layer) handleIAGetCached(ctx context.Context, path string, body []byte) (int, []byte, error) {
	handle := strconv.FormatUint(l.nextHandle.Add(1), 36)
	framed, err := message.Marshal(iaGetCall{Handle: handle, Body: body})
	if err != nil {
		return 0, nil, err
	}
	out, err := l.process(StageEcallDecrypt, ecallIAGet, framed)
	if err != nil {
		return 0, nil, err
	}
	var res iaGetResult
	if err := message.Unmarshal(out, &res); err != nil {
		l.dropHandle(handle)
		return 0, nil, fmt.Errorf("%w: %v", errEnclave, err)
	}

	if res.Hit {
		if err := l.shuffleWait(ctx); err != nil {
			return 0, nil, err
		}
		return http.StatusOK, res.Body, nil
	}

	v, shared, err := l.cfg.RecCache.Do(ctx, res.Key, func() (any, error) {
		status, lrsBody, err := l.forwardLRS(ctx, path, res.Body)
		if err != nil {
			return nil, err
		}
		return fetchResult{status, lrsBody}, nil
	})
	if err != nil && shared && ctx.Err() == nil {
		// The leader's failure was under *its* deadline and breaker
		// draw; this follower is still alive, so give it one fetch of
		// its own rather than inheriting the error.
		var status int
		var lrsBody []byte
		if status, lrsBody, err = l.forwardLRS(ctx, path, res.Body); err == nil {
			v = fetchResult{status, lrsBody}
		}
	}
	if err != nil {
		l.dropHandle(handle)
		return 0, nil, err
	}
	fr := v.(fetchResult)
	if fr.status != http.StatusOK {
		l.dropHandle(handle)
		if err := l.shuffleWait(ctx); err != nil {
			return 0, nil, err
		}
		return fr.status, fr.body, nil
	}

	// Only the coalescing leader fills the cache; followers just seal
	// the shared body under their own parked k_u.
	framed, err = message.Marshal(iaGetCall{Handle: handle, Body: fr.body, Fill: !shared})
	if err != nil {
		l.dropHandle(handle)
		return 0, nil, err
	}
	respBody, err := l.process(StageEcallReencrypt, ecallIAGetResp, framed)
	if err != nil {
		l.dropHandle(handle)
		return 0, nil, err
	}
	if err := l.shuffleWait(ctx); err != nil {
		return 0, nil, err
	}
	return fr.status, respBody, nil
}

// dropHandle clears a parked temporary key when the request it belongs to
// dies before its response transformation, so the EPC store cannot leak.
func (l *Layer) dropHandle(handle string) {
	if handle != "" && l.cfg.Enclave != nil {
		l.cfg.Enclave.KV().Delete(handle)
	}
}

// process runs an ECALL under the data-processing worker pool, modelling
// the fixed pool of in-enclave threads consuming the shared queue (§5).
// The stage measurement covers the wait for a free worker plus the ECALL
// itself — the paper's in-enclave queueing + crypto cost; the ECALL-only
// duration is measured separately by the enclave's own observer.
func (l *Layer) process(stage, ecall string, in []byte) ([]byte, error) {
	span := l.tracer.Load().Start(stage)
	start := time.Now()
	defer func() {
		l.observeStage(stage, start)
		span.End()
	}()
	l.workers <- struct{}{}
	defer func() { <-l.workers }()
	return l.cfg.Enclave.Ecall(ecall, in)
}

// forwardLRS is the IA→LRS hop: forwardResilient under the layer's
// fan-out semaphore, so a demultiplexed epoch (or a burst of per-message
// misses) holds at most LRSConcurrency requests against the legacy API
// at once instead of one goroutine each, unbounded.
func (l *Layer) forwardLRS(ctx context.Context, path string, body []byte) (int, []byte, error) {
	if err := l.lrsSem.Acquire(ctx); err != nil {
		return 0, nil, err
	}
	defer l.lrsSem.Release()
	return l.forwardResilient(ctx, path, body, nil)
}

// forwardResilient drives forward attempts under the layer's resilience
// policy: breaker gating, jittered backoff, a per-attempt deadline, and a
// per-retry prep callback that re-establishes the privacy properties of
// the attempt before it leaves again (UA layer only; nil for the IA→LRS
// hop). The breaker is fed transport outcomes only — an HTTP error status
// still proves the hop alive.
func (l *Layer) forwardResilient(ctx context.Context, path string, body []byte, prep func(context.Context, []byte) ([]byte, error)) (int, []byte, error) {
	pol := l.policy
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	lastErr := errors.New("proxy: no forward attempt ran")
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := resilience.Sleep(ctx, pol.Backoff(attempt)); err != nil {
				return 0, nil, err
			}
		}
		if !l.breaker.Allow() {
			l.failFast.Add(1)
			lastErr = resilience.ErrBreakerOpen
			continue
		}
		if attempt > 0 {
			l.retries.Add(1)
			if prep != nil {
				var err error
				if body, err = prep(ctx, body); err != nil {
					return 0, nil, err
				}
			}
		}
		actx, cancel := pol.AttemptContext(ctx)
		status, respBody, err := l.forward(actx, path, body)
		cancel()
		if err != nil {
			if ctx.Err() != nil {
				// The caller departed; that says nothing about the hop
				// and there is nobody left to retry for.
				return 0, nil, err
			}
			l.breaker.Report(false)
			lastErr = err
			continue
		}
		l.breaker.Report(true)
		if resilience.RetryableStatus(status) && attempt+1 < attempts {
			lastErr = fmt.Errorf("proxy: upstream status %d", status)
			continue
		}
		return status, respBody, nil
	}
	return 0, nil, lastErr
}

// forward relays a transformed request to the next hop and returns its
// status and body. The whole round trip is the forward stage. With
// hopwire enabled the exchange rides a pooled frame connection; only a
// peer that provably does not speak the protocol (ErrUnsupported, latched
// with a cooldown) drops the hop back to HTTP — transport faults surface
// to the breaker and retry ladder exactly like HTTP faults.
func (l *Layer) forward(ctx context.Context, path string, body []byte) (int, []byte, error) {
	span := l.tracer.Load().Start(StageForward)
	start := time.Now()
	defer func() {
		l.observeStage(StageForward, start)
		span.End()
	}()
	if l.hop != nil {
		status, respBody, err := l.hop.RoundTrip(ctx, path, body)
		if err == nil {
			return status, respBody, nil
		}
		if !errors.Is(err, hopwire.ErrUnsupported) {
			return 0, nil, fmt.Errorf("proxy: forward to %s: %w", l.cfg.Next, err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, l.cfg.Next+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("proxy: build forward request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := l.cfg.HTTPClient.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("proxy: forward to %s: %w", l.cfg.Next, err)
	}
	defer resp.Body.Close()
	respBody, err := readBody(resp.Body, maxBody)
	if err != nil {
		return 0, nil, fmt.Errorf("proxy: read upstream response: %w", err)
	}
	return resp.StatusCode, respBody, nil
}

// maxBody bounds message sizes; PProx traffic is constant-size and small.
const maxBody = 1 << 20

// maxBatchBody bounds a whole batch envelope: one epoch of up to
// table-size messages plus framing.
const maxBatchBody = 8 << 20
