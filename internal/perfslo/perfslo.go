// Package perfslo is the performance-SLO engine: the latency counterpart
// of internal/audit's privacy auditor. PProx's claim is privacy *at
// production latency* — the paper's evaluation is a latency/throughput
// story — so a latency regression is a first-class incident, not a
// curiosity. This package evaluates per-stage latency objectives ("p99
// of shuffle_wait ≤ 500ms") online against the lock-free histograms the
// pipeline already maintains, using the same multi-window burn-rate
// semantics as the privacy auditor: an objective is violated when its
// error budget burns in EVERY window, and warns when it burns in any.
//
// The evaluator never touches the request hot path: observation stays in
// the existing atomic histogram instruments, and evaluation is driven by
// shuffle-epoch flushes (Sample) plus on-demand /perf reads. That also
// fixes the privacy story for exemplars. A conventional latency exemplar
// carries a trace/request id — exactly the ingress↔egress correlator the
// proxy layers exist to destroy. Here a breach exemplar is a shuffle
// EPOCH id, the granularity internal/trace already exports: a p99 spike
// links to "epoch 17 on ua-0", whose trace records are themselves
// shuffled and coarsened. The adversary test in internal/adversary
// proves /perf plus exemplars add zero linking advantage.
package perfslo

import (
	"log/slog"
	"sort"
	"sync"
	"time"

	"pprox/internal/metrics"
)

// State is a performance SLO's current position. Numeric values are
// stable (exported as a gauge) and identical to internal/audit's.
type State int

// SLO states.
const (
	// StateOK: every objective within budget in every window.
	StateOK State = 0
	// StateWarn: some objective's budget is burning in at least one
	// window.
	StateWarn State = 1
	// StateViolated: some objective is burning in EVERY window — the
	// latency target is measurably not being met at sustained rate.
	StateViolated State = 2
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StateViolated:
		return "violated"
	default:
		return "ok"
	}
}

// Window is one burn-rate evaluation window.
type Window struct {
	// Name labels the window in metrics and the report (e.g. "5m").
	Name string
	// Duration is the lookback.
	Duration time.Duration
	// Burn is the burn-rate threshold: the window trips when (slow
	// fraction) / (error budget) reaches it.
	Burn float64
}

// Config parameterizes the evaluator.
type Config struct {
	// Windows are the burn-rate windows, shortest first (default 5m and
	// 1h, both with Burn 1.0 — the same layout the privacy auditor uses,
	// so operators reason about one alerting scheme).
	Windows []Window
	// Now overrides the clock for tests.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if len(c.Windows) == 0 {
		c.Windows = []Window{
			{Name: "5m", Duration: 5 * time.Minute, Burn: 1},
			{Name: "1h", Duration: time.Hour, Burn: 1},
		}
	}
	for i := range c.Windows {
		if c.Windows[i].Burn <= 0 {
			c.Windows[i].Burn = 1
		}
	}
	sort.Slice(c.Windows, func(i, j int) bool { return c.Windows[i].Duration < c.Windows[j].Duration })
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// sample is one cumulative (good, total) reading of an objective's
// histogram, taken at an epoch flush. Burn rates are deltas between the
// live reading and the newest sample at or before each window's horizon.
type sample struct {
	at    time.Time
	good  uint64
	total uint64
}

// maxExemplars bounds the per-objective breach-exemplar ring. Exemplars
// are epoch ids only — the ring is O(epochs), never O(requests).
const maxExemplars = 32

// objective is one latency SLO: "quantile q of this histogram ≤
// threshold". good = observations ≤ threshold (at histogram resolution),
// budget = 1−q.
type objective struct {
	name string // e.g. "shuffle_wait"
	node string // node whose epoch flushes drive sampling, e.g. "ua-0"

	hist         *metrics.Histogram
	quantile     float64
	rawThreshold float64 // as configured
	threshold    float64 // aligned UP to a bucket bound (see AlignBound)

	samples []sample // oldest first; pruned beyond the longest window
	state   State

	exemplars []uint64 // breach epoch ids, oldest first, bounded ring
	lastEpoch uint64   // last epoch sampled (exemplar attribution)
}

// Evaluator is the performance-SLO engine. All methods are safe for
// concurrent use; evaluation takes one short mutex and runs on shuffle
// flush or report reads, never per request — the histogram observation
// path stays lock-free.
type Evaluator struct {
	cfg Config

	mu         sync.Mutex
	objectives []*objective
	state      State
	stateSince time.Time

	violations uint64
	warns      uint64

	logger *slog.Logger

	// OnTransition, when set, receives every overall state change —
	// the triggered-profile harvester hooks here. Called without the
	// evaluator lock held.
	OnTransition func(from, to State, reason string)
}

// New creates an evaluator.
func New(cfg Config) *Evaluator {
	cfg = cfg.withDefaults()
	return &Evaluator{cfg: cfg, stateSince: cfg.Now()}
}

// SetLogger installs the evaluator's logger (state transitions). Nil
// disables logging.
func (e *Evaluator) SetLogger(l *slog.Logger) {
	e.mu.Lock()
	e.logger = l
	e.mu.Unlock()
}

// AddObjective registers one latency SLO: quantile q (e.g. 0.99) of the
// histogram's observations must stay ≤ threshold seconds. The threshold
// is aligned UP to the histogram's nearest bucket bound so the good/bad
// split is exact at histogram resolution; node names which node's epoch
// flushes drive sampling (and appears in the report — it identifies a
// machine, never a request).
func (e *Evaluator) AddObjective(name, node string, hist *metrics.Histogram, q, threshold float64) {
	if hist == nil || q <= 0 || q >= 1 {
		return
	}
	e.mu.Lock()
	e.objectives = append(e.objectives, &objective{
		name:         name,
		node:         node,
		hist:         hist,
		quantile:     q,
		rawThreshold: threshold,
		threshold:    hist.AlignBound(threshold),
	})
	e.mu.Unlock()
}

// read takes a live (good, total) reading of the objective's histogram.
// The two passes are not atomic with respect to concurrent observes, so
// clamp good ≤ total rather than let the bad count underflow.
func (o *objective) read() (good, total uint64) {
	good = o.hist.CountLE(o.threshold)
	total = o.hist.Count()
	if good > total {
		good = total
	}
	return good, total
}

// Sample records an epoch flush on a node: every objective keyed to that
// node takes a cumulative histogram reading stamped with the flush time,
// and — if the objective is burning and this epoch's interval contained
// over-threshold observations — records the epoch id as a breach
// exemplar. epoch must be the trace epoch the flushed records carry, so
// an exemplar resolves to a real per-epoch trace.
func (e *Evaluator) Sample(node string, epoch uint64) {
	now := e.cfg.Now()
	e.mu.Lock()
	for _, o := range e.objectives {
		if o.node != node {
			continue
		}
		good, total := o.read()
		var prevGood, prevTotal uint64
		if n := len(o.samples); n > 0 {
			prevGood, prevTotal = o.samples[n-1].good, o.samples[n-1].total
		}
		dBad := (total - good) - (prevTotal - prevGood)
		o.samples = append(o.samples, sample{at: now, good: good, total: total})
		o.pruneLocked(now, e.cfg.Windows[len(e.cfg.Windows)-1].Duration)
		o.lastEpoch = epoch
		o.state = e.evalObjectiveLocked(o, now)
		if o.state != StateOK && dBad > 0 {
			if n := len(o.exemplars); n == 0 || o.exemplars[n-1] != epoch {
				o.exemplars = append(o.exemplars, epoch)
				if len(o.exemplars) > maxExemplars {
					o.exemplars = o.exemplars[len(o.exemplars)-maxExemplars:]
				}
			}
		}
	}
	e.recomputeLocked(now)
	e.mu.Unlock()
}

// pruneLocked drops samples beyond the longest window, keeping the
// newest sample at or before the horizon as that window's baseline.
func (o *objective) pruneLocked(now time.Time, longest time.Duration) {
	horizon := now.Add(-longest)
	i := 0
	for i+1 < len(o.samples) && !o.samples[i+1].at.After(horizon) {
		i++
	}
	if i > 0 {
		o.samples = append(o.samples[:0], o.samples[i:]...)
	}
}

// windowEval is one window's burn-rate evaluation for one objective.
type windowEval struct {
	Window string `json:"window"`
	// Observations / Slow count the window's histogram delta: total
	// observations and those over the threshold.
	Observations uint64  `json:"observations"`
	Slow         uint64  `json:"slow"`
	BurnRate     float64 `json:"burn_rate"`
	Burning      bool    `json:"burning"`
}

// evalWindowLocked computes one window's burn rate at time now: the
// over-threshold fraction of the delta between the live histogram
// reading and the newest sample at or before the window's horizon,
// divided by the error budget 1−q.
func (e *Evaluator) evalWindowLocked(o *objective, w Window, now time.Time) windowEval {
	ev := windowEval{Window: w.Name}
	good, total := o.read()
	horizon := now.Add(-w.Duration)
	var base sample // zero sample: process start is the baseline
	for _, s := range o.samples {
		if s.at.After(horizon) {
			break
		}
		base = s
	}
	ev.Observations = total - base.total
	ev.Slow = (total - good) - (base.total - base.good)
	if ev.Observations > 0 {
		budget := 1 - o.quantile
		ev.BurnRate = (float64(ev.Slow) / float64(ev.Observations)) / budget
		ev.Burning = ev.Slow > 0 && ev.BurnRate >= w.Burn
	}
	return ev
}

// evalObjectiveLocked derives one objective's state: violated when every
// window burns, warn when any does.
func (e *Evaluator) evalObjectiveLocked(o *objective, now time.Time) State {
	burningAll, burningAny := true, false
	for _, w := range e.cfg.Windows {
		if e.evalWindowLocked(o, w, now).Burning {
			burningAny = true
		} else {
			burningAll = false
		}
	}
	switch {
	case burningAll && burningAny:
		return StateViolated
	case burningAny:
		return StateWarn
	default:
		return StateOK
	}
}

// recomputeLocked re-derives the overall state (max over objectives) and
// fires transitions.
func (e *Evaluator) recomputeLocked(now time.Time) {
	next := StateOK
	reason := ""
	for _, o := range e.objectives {
		o.state = e.evalObjectiveLocked(o, now)
		if o.state > next {
			next = o.state
			reason = "latency objective " + o.name + " on " + o.node + " " + o.state.String()
		}
	}
	if next == e.state {
		return
	}
	from := e.state
	e.state = next
	e.stateSince = now
	switch next {
	case StateViolated:
		e.violations++
	case StateWarn:
		e.warns++
	}
	logger, hook := e.logger, e.OnTransition
	if logger != nil {
		logger.Warn("performance SLO state transition",
			"from", from.String(), "to", next.String(), "reason", reason)
	}
	if hook != nil {
		// Run the hook off-lock; transitions are rare.
		go hook(from, next, reason)
	}
}

// State returns the current overall SLO state, re-evaluated against the
// clock (windows empty out as time passes even with no new epochs).
func (e *Evaluator) State() State {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recomputeLocked(now)
	return e.state
}

// Stats returns lifetime transition counters.
func (e *Evaluator) Stats() (violations, warns uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.violations, e.warns
}
