package perfslo

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pprox/internal/metrics"
)

// clock is a fake time source.
type clock struct{ t time.Time }

func (c *clock) now() time.Time          { return c.t }
func (c *clock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestEval(c *clock) (*Evaluator, *metrics.Histogram) {
	r := metrics.NewRegistry()
	h := r.Histogram("test_stage_seconds", "test", []float64{0.001, 0.01, 0.1, 1})
	e := New(Config{
		Windows: []Window{
			{Name: "1s", Duration: time.Second, Burn: 1},
			{Name: "10s", Duration: 10 * time.Second, Burn: 1},
		},
		Now: c.now,
	})
	e.AddObjective("stage", "ua-0", h, 0.9, 0.01)
	return e, h
}

func TestEvaluatorStaysOKWithinBudget(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	for epoch := uint64(0); epoch < 20; epoch++ {
		// 19 fast, 1 slow per epoch: exactly 5% slow < 10% budget.
		for i := 0; i < 19; i++ {
			h.Observe(0.0005)
		}
		h.Observe(0.5)
		e.Sample("ua-0", epoch)
		c.advance(100 * time.Millisecond)
	}
	if got := e.State(); got != StateOK {
		t.Fatalf("state = %v, want ok", got)
	}
	rep := e.Report()
	if len(rep.Objectives) != 1 || len(rep.Objectives[0].ExemplarEpochs) != 0 {
		t.Fatalf("unexpected exemplars in OK state: %+v", rep.Objectives)
	}
}

func TestEvaluatorViolatesAndRecordsExemplars(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	var transitions []string
	done := make(chan struct{}, 8)
	e.OnTransition = func(from, to State, reason string) {
		transitions = append(transitions, from.String()+">"+to.String())
		done <- struct{}{}
	}
	// Every observation slow: burns the whole budget in every window.
	for epoch := uint64(1); epoch <= 5; epoch++ {
		for i := 0; i < 10; i++ {
			h.Observe(0.5)
		}
		e.Sample("ua-0", epoch)
		c.advance(100 * time.Millisecond)
	}
	if got := e.State(); got != StateViolated {
		t.Fatalf("state = %v, want violated", got)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("OnTransition hook never fired")
	}
	rep := e.Report()
	if rep.State != "violated" {
		t.Fatalf("report state = %q", rep.State)
	}
	o := rep.Objectives[0]
	if len(o.ExemplarEpochs) == 0 {
		t.Fatal("no breach exemplars recorded")
	}
	for _, ep := range o.ExemplarEpochs {
		if ep < 1 || ep > 5 {
			t.Fatalf("exemplar epoch %d outside sampled range", ep)
		}
	}
	if o.State != "violated" {
		t.Fatalf("objective state = %q", o.State)
	}
	v, _ := e.Stats()
	if v == 0 {
		t.Fatal("violation transition not counted")
	}
}

func TestEvaluatorRecoversAsWindowsDrain(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	e.Sample("ua-0", 1)
	if got := e.State(); got != StateViolated {
		t.Fatalf("state = %v, want violated", got)
	}
	// A healthy stretch longer than the longest window: the bad burst
	// ages out of both windows (samples keep the baseline fresh).
	for epoch := uint64(2); epoch < 130; epoch++ {
		h.Observe(0.0005)
		e.Sample("ua-0", epoch)
		c.advance(100 * time.Millisecond)
	}
	if got := e.State(); got != StateOK {
		t.Fatalf("state after recovery = %v, want ok", got)
	}
}

func TestWarnWhenOnlyShortWindowBurns(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	// A long healthy history dilutes the long window below its burn
	// threshold...
	for epoch := uint64(1); epoch < 90; epoch++ {
		for i := 0; i < 10; i++ {
			h.Observe(0.0005)
		}
		e.Sample("ua-0", epoch)
		c.advance(100 * time.Millisecond)
	}
	// ...then a short burst of slow requests trips only the 1s window.
	for epoch := uint64(90); epoch < 95; epoch++ {
		h.Observe(0.5)
		e.Sample("ua-0", epoch)
		c.advance(100 * time.Millisecond)
	}
	if got := e.State(); got != StateWarn {
		t.Fatalf("state = %v, want warn", got)
	}
}

func TestHandlerServesJSONWithoutInfinities(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	h.Observe(5) // beyond the last bound: lifetime quantile is +Inf
	e.Sample("ua-0", 7)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + PerfPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	o := rep.Objectives[0]
	if math.IsInf(o.ObservedSeconds, 1) || !o.ObservedOverflow {
		t.Fatalf("overflow not clamped: %+v", o)
	}
	if o.LastEpoch != 7 {
		t.Fatalf("last epoch = %d, want 7", o.LastEpoch)
	}
}

func TestRegisterMetricsExportsFamilies(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	e, h := newTestEval(c)
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	e.Sample("ua-0", 3)
	r := metrics.NewRegistry()
	e.RegisterMetrics(r)
	snap := r.Snapshot()
	if snap["pprox_perfslo_state"] != 2 {
		t.Fatalf("pprox_perfslo_state = %v, want 2", snap["pprox_perfslo_state"])
	}
	var sawBurn, sawExemplar bool
	for series, v := range snap {
		if strings.HasPrefix(series, "pprox_perfslo_burn_rate{") && v > 0 {
			sawBurn = true
		}
		if strings.HasPrefix(series, "pprox_perfslo_exemplar_epoch{") && v == 3 {
			sawExemplar = true
		}
	}
	if !sawBurn || !sawExemplar {
		t.Fatalf("missing series (burn=%v exemplar=%v): %v", sawBurn, sawExemplar, snap)
	}
}

func TestThresholdAlignsToBucketBound(t *testing.T) {
	c := &clock{t: time.Unix(1000, 0)}
	r := metrics.NewRegistry()
	h := r.Histogram("s", "t", []float64{0.001, 0.01, 0.1})
	e := New(Config{Now: c.now})
	e.AddObjective("stage", "n", h, 0.99, 0.05) // not a bound: aligns to 0.1
	rep := e.Report()
	if got := rep.Objectives[0].ThresholdSeconds; got != 0.1 {
		t.Fatalf("aligned threshold = %g, want 0.1", got)
	}
	if got := rep.Objectives[0].RawThresholdSeconds; got != 0.05 {
		t.Fatalf("raw threshold = %g, want 0.05", got)
	}
}
