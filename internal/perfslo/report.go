package perfslo

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"time"

	"pprox/internal/metrics"
)

// Report is the /perf payload: the evaluator's full assessment. Like the
// /privacy report it contains nothing an on-path adversary does not
// already observe: objectives and thresholds are configuration, burn
// rates and quantiles are coarse aggregates over whole windows, and
// exemplars are shuffle-EPOCH ids — the granularity the trace exporter
// already publishes. No per-request records, no identifiers, no
// pseudonyms, no fine-grained timestamps; the adversary test asserts
// that mechanically.
type Report struct {
	// State is the overall SLO state ("ok", "warn", "violated") — the
	// max over objectives.
	State string `json:"state"`
	// StateSeconds is how long the evaluator has been in this state,
	// coarsened to whole seconds.
	StateSeconds int64 `json:"state_seconds"`
	// Violations / Warns count overall state transitions.
	Violations uint64 `json:"violations_total"`
	Warns      uint64 `json:"warns_total"`
	// Objectives are the per-objective evaluations, sorted by node then
	// name.
	Objectives []ObjectiveReport `json:"objectives"`
}

// ObjectiveReport is one latency objective's evaluation.
type ObjectiveReport struct {
	// Name is the objective (usually a pipeline stage, e.g.
	// "shuffle_wait"); Node is the machine it is evaluated on.
	Name string `json:"name"`
	Node string `json:"node"`
	// Quantile and ThresholdSeconds state the objective: quantile q of
	// observations must be ≤ the threshold. ThresholdSeconds is aligned
	// up to the histogram's bucket bound (the resolution the split is
	// evaluated at); RawThresholdSeconds is as configured.
	Quantile            float64 `json:"quantile"`
	ThresholdSeconds    float64 `json:"threshold_seconds"`
	RawThresholdSeconds float64 `json:"raw_threshold_seconds"`
	// ObservedSeconds is the current lifetime quantile estimate at
	// histogram resolution. Observations past the last bucket bound
	// report the largest bound ×10 (the trace exporter's +Inf stand-in);
	// ObservedOverflow marks that case.
	ObservedSeconds  float64 `json:"observed_seconds"`
	ObservedOverflow bool    `json:"observed_overflow,omitempty"`
	// Observations is the lifetime observation count.
	Observations uint64 `json:"observations"`
	// State is this objective's state.
	State string `json:"state"`
	// Windows are the burn-rate evaluations, shortest first.
	Windows []windowEval `json:"windows"`
	// ExemplarEpochs are the shuffle-epoch ids of recent SLO breaches,
	// oldest first (bounded ring). Each id resolves to that epoch's
	// records in the trace export — and to nothing finer.
	ExemplarEpochs []uint64 `json:"exemplar_epochs,omitempty"`
	// LastEpoch is the most recent epoch sampled on this objective's
	// node.
	LastEpoch uint64 `json:"last_epoch"`
}

// Report assembles the current assessment.
func (e *Evaluator) Report() Report {
	now := e.cfg.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.recomputeLocked(now)

	r := Report{
		State:        e.state.String(),
		StateSeconds: int64(now.Sub(e.stateSince) / time.Second),
		Violations:   e.violations,
		Warns:        e.warns,
	}
	for _, o := range e.objectives {
		or := ObjectiveReport{
			Name:                o.name,
			Node:                o.node,
			Quantile:            o.quantile,
			ThresholdSeconds:    clampInf(o.threshold, o.hist),
			RawThresholdSeconds: o.rawThreshold,
			Observations:        o.hist.Count(),
			State:               o.state.String(),
			ExemplarEpochs:      append([]uint64(nil), o.exemplars...),
			LastEpoch:           o.lastEpoch,
		}
		q := o.hist.Quantile(o.quantile)
		or.ObservedSeconds = clampInf(q, o.hist)
		or.ObservedOverflow = math.IsInf(q, 1)
		for _, w := range e.cfg.Windows {
			or.Windows = append(or.Windows, e.evalWindowLocked(o, w, now))
		}
		r.Objectives = append(r.Objectives, or)
	}
	sort.Slice(r.Objectives, func(i, j int) bool {
		if r.Objectives[i].Node != r.Objectives[j].Node {
			return r.Objectives[i].Node < r.Objectives[j].Node
		}
		return r.Objectives[i].Name < r.Objectives[j].Name
	})
	return r
}

// clampInf replaces +Inf with the histogram's largest bound ×10 so the
// JSON wire format (which cannot carry infinities) stays parseable.
func clampInf(v float64, h *metrics.Histogram) float64 {
	if math.IsInf(v, 1) {
		return h.MaxBound() * 10
	}
	return v
}

// PerfPath is the debug endpoint the report is served on.
const PerfPath = "/perf"

// Handler serves the JSON report (GET /perf).
func (e *Evaluator) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(e.Report())
	})
}

// RegisterMetrics exposes the evaluator on the registry:
//
//   - pprox_perfslo_state gauge (0 ok, 1 warn, 2 violated),
//   - pprox_perfslo_objective_state{objective,node} gauges,
//   - pprox_perfslo_burn_rate{objective,node,window} gauges,
//   - pprox_perfslo_violations_total / pprox_perfslo_warns_total,
//   - pprox_perfslo_exemplar_epoch{objective,node} gauges (the latest
//     breach's shuffle-epoch id; 0 when none).
//
// Call it after every AddObjective: objectives registered later are not
// picked up.
func (e *Evaluator) RegisterMetrics(r *metrics.Registry) {
	r.Gauge("pprox_perfslo_state",
		"Performance SLO state: 0 ok, 1 warn, 2 violated.", func() float64 {
			return float64(e.State())
		})
	r.CounterFunc("pprox_perfslo_violations_total",
		"Transitions into the violated performance-SLO state.", func() float64 {
			v, _ := e.Stats()
			return float64(v)
		})
	r.CounterFunc("pprox_perfslo_warns_total",
		"Transitions into the warn performance-SLO state.", func() float64 {
			_, w := e.Stats()
			return float64(w)
		})
	objState := r.GaugeVec("pprox_perfslo_objective_state",
		"Per-objective performance SLO state: 0 ok, 1 warn, 2 violated.",
		"objective", "node")
	burn := r.GaugeVec("pprox_perfslo_burn_rate",
		"Latency error-budget burn rate per objective and window.",
		"objective", "node", "window")
	exemplar := r.GaugeVec("pprox_perfslo_exemplar_epoch",
		"Shuffle-epoch id of the latest SLO breach exemplar (0 when none).",
		"objective", "node")
	e.mu.Lock()
	for _, o := range e.objectives {
		o := o
		objState.With(func() float64 {
			now := e.cfg.Now()
			e.mu.Lock()
			defer e.mu.Unlock()
			return float64(e.evalObjectiveLocked(o, now))
		}, o.name, o.node)
		exemplar.With(func() float64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			if len(o.exemplars) == 0 {
				return 0
			}
			return float64(o.exemplars[len(o.exemplars)-1])
		}, o.name, o.node)
		for _, w := range e.cfg.Windows {
			w := w
			burn.With(func() float64 {
				now := e.cfg.Now()
				e.mu.Lock()
				defer e.mu.Unlock()
				return e.evalWindowLocked(o, w, now).BurnRate
			}, o.name, o.node, w.Name)
		}
	}
	e.mu.Unlock()
}
