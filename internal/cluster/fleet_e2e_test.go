package cluster_test

import (
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/autoscale"
	"pprox/internal/cluster"
	"pprox/internal/fleet"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetScaleLifecycle walks one full elastic cycle by hand: a fleet
// deployment comes up with its static capacity routable, AddPair holds
// the new pair PENDING until a shuffle-epoch boundary admits it, and
// DrainPair retires it cleanly — epoch flushed whole, auditor still ok.
func TestFleetScaleLifecycle(t *testing.T) {
	const s = 4
	// Batch mode so epochs travel whole: with several IA backends behind
	// the balancer, per-message forwarding would spread one UA epoch
	// across them and each IA would release an underfilled epoch of its
	// own (see DESIGN §4j).
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		Batch:          true,
		UseStub:        true,
		Fleet:          true,
		Audit:          &audit.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if got := d.Balancer.Backends("ua"); len(got) != 1 || got[0] != "ua-0" {
		t.Fatalf("initial ua backends = %v, want [ua-0]", got)
	}
	if d.Pairs() != 1 {
		t.Fatalf("initial pairs = %d, want 1", d.Pairs())
	}

	// Scale up: the new pair registers but stays pending — and invisible
	// to the balancer — until an epoch boundary.
	if err := d.AddPair(); err != nil {
		t.Fatal(err)
	}
	if n := d.Registry.Count("ua", fleet.StatePending); n != 1 {
		t.Fatalf("pending UA endpoints after AddPair = %d, want 1", n)
	}
	if got := d.Balancer.Backends("ua"); len(got) != 1 {
		t.Fatalf("pending pair leaked into routable set: %v", got)
	}
	if d.Pairs() != 2 { // pending counts as capacity under way
		t.Fatalf("pairs after AddPair = %d, want 2", d.Pairs())
	}

	// One full epoch through ua-0: its flush is the boundary that admits
	// the pending pair.
	if failed := getBatch(t, d, s, 1); failed != 0 {
		t.Fatalf("%d of %d requests failed", failed, s)
	}
	waitFor(t, "pair admission at epoch boundary", func() bool {
		return d.Registry.Count("ua", fleet.StateActive) == 2 &&
			d.Registry.Count("ia", fleet.StateActive) == 2
	})
	if got := d.Balancer.Backends("ua"); len(got) != 2 {
		t.Fatalf("ua backends after admission = %v, want 2", got)
	}

	// Scale down: the newest pair drains at an epoch boundary and leaves
	// without splitting an epoch.
	if err := d.DrainPair(); err != nil {
		t.Fatal(err)
	}
	if d.Pairs() != 1 {
		t.Fatalf("pairs after drain = %d, want 1", d.Pairs())
	}
	if got := d.Balancer.Backends("ua"); len(got) != 1 || got[0] != "ua-0" {
		t.Fatalf("ua backends after drain = %v, want [ua-0]", got)
	}
	stats := d.Registry.Stats()
	if stats.Drains != 2 || stats.Deregistrations != 2 {
		t.Fatalf("registry stats after drain = %+v, want 2 drains and 2 deregistrations", stats)
	}
	if st := d.Auditor.State(); st.String() != "ok" {
		t.Fatalf("audit state after clean drain = %s, want ok\nreport: %+v", st, d.Auditor.Report())
	}
	ov := d.FleetOverview()
	if ov == nil || ov.CurrentPairs != 1 {
		t.Fatalf("fleet overview = %+v, want 1 current pair", ov)
	}

	// The retired instances' drain reports stay consultable (and clean).
	if failed := getBatch(t, d, s, 2); failed != 0 {
		t.Fatalf("%d requests failed after drain", failed)
	}
	if st := d.Auditor.State(); st.String() != "ok" {
		t.Fatalf("audit state after post-drain traffic = %s, want ok", st)
	}
}

// TestElasticReconcilerClosesLoop drives the full autoscaling loop with
// manual ticks: load pushes the desired pair count up (AddPair), idleness
// brings it back down (DrainPair), and the fleet view reaches the
// telemetry collector.
func TestElasticReconcilerClosesLoop(t *testing.T) {
	const s = 4
	// A vanishingly small pair capacity makes any traffic demand Max
	// pairs and zero traffic demand Min — the decisions under test
	// become deterministic regardless of wall-clock jitter.
	ctrl := &autoscale.Controller{
		PairCapacityRPS:   0.001,
		TargetUtilization: 1,
		Min:               1,
		Max:               2,
		Hysteresis:        1,
	}
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:      true,
		UA:                1,
		IA:                1,
		Encryption:        true,
		ItemPseudonyms:    true,
		Shuffle:           s,
		ShuffleTimeout:    100 * time.Millisecond,
		UseStub:           true,
		Elastic:           &cluster.ElasticSpec{Controller: ctrl},
		OpsAddr:           "ops",
		TelemetryInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := d.Reconciler
	if rec == nil {
		t.Fatal("elastic deployment has no reconciler")
	}

	// First tick: signals are window deltas, so the first sample knows
	// nothing and the reconciler must hold.
	if dec := rec.Tick(); dec.Action != fleet.ActionHold {
		t.Fatalf("first tick = %+v, want hold", dec)
	}

	// Load, then tick: the observed rate demands a second pair.
	if failed := getBatch(t, d, 2*s, 1); failed != 0 {
		t.Fatalf("%d requests failed", failed)
	}
	dec := rec.Tick()
	if dec.Action != fleet.ActionUp || dec.Desired != 2 {
		t.Fatalf("tick under load = %+v, want scale-up to 2", dec)
	}

	// Sustained load admits the pending pair at an epoch boundary.
	if failed := getBatch(t, d, 2*s, 2); failed != 0 {
		t.Fatalf("%d requests failed", failed)
	}
	rec.Tick()
	waitFor(t, "second pair admission", func() bool {
		return d.Registry.Count("ua", fleet.StateActive) == 2
	})

	// Idleness: the next sampled window sees no traffic, and the loop
	// drains back to Min.
	time.Sleep(120 * time.Millisecond)
	dec = rec.Tick()
	if dec.Action != fleet.ActionDown || dec.Desired != 1 {
		t.Fatalf("idle tick = %+v, want scale-down to 1", dec)
	}
	if d.Pairs() != 1 {
		t.Fatalf("pairs after scale-down = %d, want 1", d.Pairs())
	}

	ov := d.FleetOverview()
	if ov == nil || ov.CurrentPairs != 1 || ov.DesiredPairs != 1 {
		t.Fatalf("fleet overview = %+v, want 1/1 pairs", ov)
	}
	var up, down bool
	for _, dd := range ov.Decisions {
		up = up || dd.Action == fleet.ActionUp
		down = down || dd.Action == fleet.ActionDown
	}
	if !up || !down {
		t.Fatalf("decision ring %+v missing scale-up or scale-down", ov.Decisions)
	}

	// The control-plane emitter carries the fleet view to the collector.
	waitFor(t, "fleet view at the collector", func() bool {
		fv := d.Ops.Fleet().Rollups.Fleet
		return fv != nil && fv.CurrentPairs == 1
	})
}
