package cluster

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/message"
	"pprox/internal/proxy"
)

func TestMicroConfigsMatchTable2(t *testing.T) {
	cfgs := MicroConfigs()
	if len(cfgs) != 9 {
		t.Fatalf("Table 2 has 9 rows, got %d", len(cfgs))
	}
	byName := map[string]MicroConfig{}
	for _, c := range cfgs {
		byName[c.Name] = c
	}
	if byName["m1"].Encryption || byName["m1"].SGX {
		t.Error("m1 must have no security feature")
	}
	if !byName["m2"].Encryption || byName["m2"].SGX {
		t.Error("m2 is encryption without SGX")
	}
	if !byName["m4"].Encryption || byName["m4"].ItemPseudonyms {
		t.Error("m4 is encryption with item pseudonymization disabled")
	}
	if byName["m5"].Shuffle != 5 || byName["m6"].Shuffle != 10 {
		t.Error("m5/m6 shuffle sizes wrong")
	}
	for i, rps := range []int{250, 500, 750, 1000} {
		name := fmt.Sprintf("m%d", 6+i)
		c := byName[name]
		if c.UA != i+1 || c.IA != i+1 || c.MaxRPS != rps {
			t.Errorf("%s = %+v, want %d instances and %d RPS", name, c, i+1, rps)
		}
	}
}

func TestMacroConfigsMatchTable3(t *testing.T) {
	bs := BaselineConfigs()
	fs := FullConfigs()
	if len(bs) != 4 || len(fs) != 4 {
		t.Fatalf("Table 3 has 4+4 rows, got %d+%d", len(bs), len(fs))
	}
	wantNodes := []int{7, 10, 13, 16} // LRS nodes per Table 3
	for i, b := range bs {
		if b.Proxy {
			t.Errorf("%s must not deploy the proxy", b.Name)
		}
		if b.TotalNodes() != wantNodes[i] {
			t.Errorf("%s nodes = %d, want %d", b.Name, b.TotalNodes(), wantNodes[i])
		}
		if b.MaxRPS != 250*(i+1) {
			t.Errorf("%s maxRPS = %d", b.Name, b.MaxRPS)
		}
	}
	for i, f := range fs {
		if !f.Proxy || f.Shuffle != 10 {
			t.Errorf("%s must deploy the proxy with S=10", f.Name)
		}
		// f-configs add 2–8 proxy nodes on top of the baseline.
		if f.TotalNodes() != wantNodes[i]+2*(i+1) {
			t.Errorf("%s nodes = %d, want %d", f.Name, f.TotalNodes(), wantNodes[i]+2*(i+1))
		}
	}
}

func TestRPSPoints(t *testing.T) {
	got := RPSPointsUpTo(1000)
	want := []int{50, 250, 500, 750, 1000}
	if len(got) != len(want) {
		t.Fatalf("points = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
	if pts := MicroRPSPoints(); len(pts) != 5 || pts[0] != 50 || pts[4] != 250 {
		t.Errorf("micro points = %v", pts)
	}
}

func TestDeployMicroEncrypted(t *testing.T) {
	d, err := Deploy(SpecFromMicro(MicroConfigs()[2])) // m3: enc+SGX, no shuffle
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if len(d.UALayers) != 1 || len(d.IALayers) != 1 {
		t.Fatalf("layers = %d/%d", len(d.UALayers), len(d.IALayers))
	}
	cl := d.Client(10 * time.Second)
	ctx := context.Background()
	if err := cl.Post(ctx, "alice", "movie-1", "4.0"); err != nil {
		t.Fatalf("post: %v", err)
	}
	items, err := cl.Get(ctx, "alice")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if len(items) != message.MaxRecommendations {
		t.Errorf("stub through full crypto returned %d items", len(items))
	}
	// The stub items decrypted back to their cleartext names.
	if items[0] != "stub-item-0000" {
		t.Errorf("items[0] = %q", items[0])
	}
}

func TestDeployMicroPassThrough(t *testing.T) {
	d, err := Deploy(SpecFromMicro(MicroConfigs()[0])) // m1
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)
	if err := cl.Post(context.Background(), "u", "i", ""); err != nil {
		t.Fatalf("post: %v", err)
	}
	if _, err := cl.Get(context.Background(), "u"); err != nil {
		t.Fatalf("get: %v", err)
	}
	if d.UAKeys != nil || d.IAKeys != nil {
		t.Error("pass-through deployment generated keys")
	}
}

func TestDeployScaledLayersBalanceLoad(t *testing.T) {
	spec := SpecFromMicro(MicroConfigs()[6]) // m7: 2×2
	spec.Shuffle = 0                         // keep the test fast
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Disable keep-alives so every request dials a fresh connection:
	// the balancer's round-robin is per connection, as with kube-proxy.
	httpClient := d.HTTPClient(10 * time.Second)
	httpClient.Transport.(*http.Transport).DisableKeepAlives = true
	cl := client.New(proxy.Bundle(d.UAKeys, d.IAKeys), httpClient, d.Entry)

	ctx := context.Background()
	for i := 0; i < 12; i++ {
		if err := cl.Post(ctx, fmt.Sprintf("u%d", i), "item", ""); err != nil {
			t.Fatal(err)
		}
	}
	for i, l := range d.UALayers {
		served, _ := l.Stats()
		if served == 0 {
			t.Errorf("UA instance %d served nothing", i)
		}
	}
	total := uint64(0)
	for _, l := range d.IALayers {
		served, _ := l.Stats()
		total += served
	}
	if total != 12 {
		t.Errorf("IA layers served %d, want 12", total)
	}
}

func TestDeployBaselineMacro(t *testing.T) {
	spec := SpecFromMacro(BaselineConfigs()[0]) // b1: no proxy
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if d.Entry != "http://lrs" {
		t.Errorf("entry = %s", d.Entry)
	}
	cl := d.Client(10 * time.Second)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("u%d", i)
		if err := cl.Post(ctx, u, "a", ""); err != nil {
			t.Fatal(err)
		}
		if err := cl.Post(ctx, u, "b", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	if d.Engine.EventCount() != 20 {
		t.Errorf("events = %d", d.Engine.EventCount())
	}
}

func TestDeployFullMacroEndToEnd(t *testing.T) {
	spec := SpecFromMacro(FullConfigs()[0]) // f1
	spec.Shuffle = 0                        // keep the test fast; shuffling covered elsewhere
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl := d.Client(15 * time.Second)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		u := fmt.Sprintf("u%d", i)
		for _, it := range []string{"x", "y"} {
			if err := cl.Post(ctx, u, it, ""); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 4; i++ {
		if err := cl.Post(ctx, fmt.Sprintf("s%d", i), "z", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Post(ctx, "probe", "x", ""); err != nil {
		t.Fatal(err)
	}
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	items, err := cl.Get(ctx, "probe")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 || items[0] != "y" {
		t.Errorf("recommendations through f1 = %v, want y first", items)
	}
}

func TestDeployRejectsInvalidSpecs(t *testing.T) {
	if _, err := Deploy(Spec{ProxyEnabled: true, UA: 0, IA: 1}); err == nil {
		t.Error("zero UA instances accepted")
	}
}

func TestBalancerRoundRobin(t *testing.T) {
	spec := Spec{UseStub: true, LRSFrontends: 3}
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Dial the "lrs" service repeatedly without connection reuse: the
	// balancer must hand out backends in rotation.
	seen := map[string]bool{}
	for i := 0; i < 6; i++ {
		conn, err := d.Balancer.DialContext(context.Background(), "mem", "lrs")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	// Backends are registered as lrs-0..2; verify rotation determinism
	// via the counter rather than connection inspection.
	_ = seen
}

func TestBalancerFailsOverDeadBackends(t *testing.T) {
	// Two LRS front-ends; kill one. The balancer must route around the
	// dead backend transparently (kube-proxy endpoint failover).
	spec := Spec{UseStub: true, LRSFrontends: 2}
	d, err := Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Kill lrs-0 by closing its listener out from under the server:
	// re-deploying is cleaner — instead register a service with one
	// dead and one live backend explicitly.
	d.Balancer.Register("flaky", "does-not-exist", "lrs-1")

	httpClient := d.HTTPClient(5 * time.Second)
	httpClient.Transport.(*http.Transport).DisableKeepAlives = true
	for i := 0; i < 4; i++ {
		resp, err := httpClient.Get("http://flaky" + message.HealthPath)
		if err != nil {
			t.Fatalf("request %d through flaky service: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	}

	// A service where every backend is dead fails with a clear error.
	d.Balancer.Register("dead", "nope-1", "nope-2")
	if _, err := httpClient.Get("http://dead" + message.HealthPath); err == nil {
		t.Fatal("request to all-dead service succeeded")
	}
}
