package cluster_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/rotation"
)

// cache_e2e_test.go drives the in-enclave recommendation cache through
// the full in-process deployment: invalidation on rating POSTs, LRU
// eviction under EPC pressure, request coalescing, and the breach → flush
// → rotation discipline, all observed through the public surfaces
// (client API, stub counters, cache stats, auditor state).

// cacheSpec is the baseline encrypted stub deployment with the cache on.
// No shuffler: the cache publishes stats live, so the tests read exact
// counters without epoch choreography (epoch granularity has its own
// tests in internal/proxy and internal/reccache).
func cacheSpec() cluster.Spec {
	return cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		UseStub:      true,
		LRSFrontends: 1,
		Cache:        true, CacheTTL: time.Minute,
	}
}

func TestCacheServesHitsAndPostInvalidates(t *testing.T) {
	d, err := cluster.Deploy(cacheSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)
	ctx := context.Background()

	first, err := cl.Get(ctx, "viewer")
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Get(ctx, "viewer")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("cached list differs from the original: %v vs %v", second, first)
	}
	if _, gets := d.Stub.Counts(); gets != 1 {
		t.Errorf("LRS saw %d gets after a hit, want 1 (hits must not reach the LRS)", gets)
	}

	// A rating POST changes the user's profile: the cached list is stale
	// by definition and must be dropped.
	if err := cl.Post(ctx, "viewer", "some-item", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(ctx, "viewer"); err != nil {
		t.Fatal(err)
	}
	if _, gets := d.Stub.Counts(); gets != 2 {
		t.Errorf("LRS saw %d gets after POST invalidation, want 2 (the re-fetch)", gets)
	}
	st := d.RecCaches[0].Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Invalidations != 1 {
		t.Errorf("stats hits=%d misses=%d invalidations=%d, want 1/2/1", st.Hits, st.Misses, st.Invalidations)
	}
}

func TestCacheEPCPressureEvictsNotFails(t *testing.T) {
	spec := cacheSpec()
	spec.CachePages = 4 // room for 4 one-page lists
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)
	ctx := context.Background()

	// Three times the budget: every fill beyond the fourth must evict
	// the oldest entry, and no request may fail for it.
	const users = 12
	for i := 0; i < users; i++ {
		if _, err := cl.Get(ctx, fmt.Sprintf("crowd-%02d", i)); err != nil {
			t.Fatalf("get %d under EPC pressure: %v", i, err)
		}
	}
	st := d.RecCaches[0].Stats()
	if st.EvictionsLRU != uint64(users-spec.CachePages) {
		t.Errorf("LRU evictions = %d, want %d", st.EvictionsLRU, users-spec.CachePages)
	}
	if st.Entries > spec.CachePages || st.Pages > spec.CachePages {
		t.Errorf("resident %d entries / %d pages exceed the %d-page budget", st.Entries, st.Pages, spec.CachePages)
	}
	// The survivors are the most recent: the last user is a hit, the
	// first is long gone.
	if _, err := cl.Get(ctx, fmt.Sprintf("crowd-%02d", users-1)); err != nil {
		t.Fatal(err)
	}
	if got := d.RecCaches[0].Stats().Hits; got != 1 {
		t.Errorf("hits = %d after re-getting the newest user, want 1", got)
	}
}

func TestCacheCoalescesConcurrentFetches(t *testing.T) {
	spec := cacheSpec()
	spec.StubDelay = 100 * time.Millisecond
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)

	// Six concurrent gets for the same cold user: one LRS fetch serves
	// them all.
	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := cl.Get(ctx, "hot-user"); err != nil {
				t.Errorf("coalesced get: %v", err)
			}
		}()
	}
	wg.Wait()

	if _, gets := d.Stub.Counts(); gets != 1 {
		t.Errorf("LRS saw %d gets for %d concurrent requests, want 1 (singleflight)", gets, n)
	}
	if st := d.RecCaches[0].Stats(); st.Coalesced == 0 {
		t.Errorf("no coalesced fetches recorded: %+v", st)
	}
}

func TestCacheBreachDebtSettledByFlushOnly(t *testing.T) {
	// End-to-end wiring of the auditor's cache check: a breach puts the
	// deployment in violation, a rotation alone does NOT clear it while
	// the cache still holds pre-breach lists — only the wholesale flush
	// settles the debt.
	spec := cacheSpec()
	spec.Audit = &audit.Config{}
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)
	if _, err := cl.Get(context.Background(), "resident"); err != nil {
		t.Fatal(err)
	}

	d.Auditor.ObserveBreach("IA")
	if got := d.Auditor.State(); got != audit.StateViolated {
		t.Fatalf("state = %v after breach, want violated", got)
	}
	d.Auditor.ObserveRotation("IA")
	if got := d.Auditor.State(); got != audit.StateViolated {
		t.Fatalf("state = %v after rotation without flush, want violated (cache still holds pre-breach lists)", got)
	}
	if flushed := d.RecCaches[0].Flush(); flushed != 1 {
		t.Fatalf("flushed %d entries, want 1", flushed)
	}
	if got := d.Auditor.State(); got != audit.StateOK {
		t.Fatalf("state = %v after flush, want ok", got)
	}
}

func TestCompromiseCountermeasureFlushesDeployedCache(t *testing.T) {
	// Full breach response against the real engine: compromise the IA
	// enclave, run the countermeasure, and verify the deployed cache is
	// flushed before the keys rotate — then keeps serving.
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		LRSFrontends: 1,
		Cache:        true, CacheTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(10 * time.Second)
	ctx := context.Background()

	for i := 0; i < 4; i++ {
		u := fmt.Sprintf("member-%d", i)
		if err := cl.Post(ctx, u, "a", ""); err != nil {
			t.Fatal(err)
		}
		if err := cl.Post(ctx, u, "b", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := cl.Get(ctx, fmt.Sprintf("member-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	cache := d.RecCaches[0]
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries after warm-up, want 4", cache.Len())
	}

	responder := rotation.NewResponder(d.Engine, d.UAKeys, d.IAKeys,
		nil, func(err error) { t.Errorf("responder: %v", err) })
	responder.AddCache(cache)
	gen := cache.Generation()
	e := d.IALayers[0].Enclave()
	e.Compromise()
	responder.Countermeasure(e)

	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries after the breach response, want 0", cache.Len())
	}
	if cache.Generation() != gen+1 {
		t.Errorf("generation %d → %d across the breach response, want +1", gen, cache.Generation())
	}
	if st := cache.Stats(); st.Flushes != 1 || st.FlushedOut != 4 {
		t.Errorf("flush stats = %+v, want 1 flush covering 4 entries", st)
	}
	// The stack still serves (stale UA-side pseudonyms simply miss the
	// migrated profiles) and the cache refills.
	if _, err := cl.Get(ctx, "member-0"); err != nil {
		t.Fatalf("get after breach response: %v", err)
	}
	if cache.Len() != 1 {
		t.Errorf("cache did not refill after the flush: %d entries", cache.Len())
	}
}
