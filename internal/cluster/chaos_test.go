package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/client"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
	"pprox/internal/resilience"
)

// chaosPolicy is an aggressive resilience policy sized for fast tests:
// retries come quickly and breakers open and probe within milliseconds.
func chaosPolicy() *resilience.Policy {
	return &resilience.Policy{
		HopTimeout:       2 * time.Second,
		MaxAttempts:      4,
		BackoffBase:      5 * time.Millisecond,
		BackoffMax:       25 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  100 * time.Millisecond,
	}
}

// lrsPostLabel extracts the pseudonymous user from a cleartext LRS
// insertion — what the paper's adversary reads on the LRS link.
func lrsPostLabel(body []byte) string {
	var req message.LRSPost
	if err := message.Unmarshal(body, &req); err == nil {
		return req.User
	}
	return ""
}

// TestChaosKillRestartGoodputAndLinking kills one IA instance and one LRS
// front end mid-run, then restarts them, asserting (a) goodput recovers
// after re-admission and (b) the timing adversary's linking accuracy stays
// at the shuffling bound throughout — faults and retries must not create a
// linkable signal.
func TestChaosKillRestartGoodputAndLinking(t *testing.T) {
	const s = 4
	// Each batch posts one epoch's worth per UA so shufflers flush on
	// occupancy; the timer is a backstop only. Timer-split partial
	// epochs would sit right at the accuracy threshold (a 2-message
	// epoch correlates at 0.5) and made this test flake under the CPU
	// contention of a parallel full-suite run.
	const n = 2 * s
	rec := adversary.NewRecorder()
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             2,
		IA:             2,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 500 * time.Millisecond,
		LRSFrontends:   2,
		Resilience:     chaosPolicy(),
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if strings.HasPrefix(addr, "lrs-") {
				return adversary.Tap(rec, "ia→lrs", lrsPostLabel, h)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ctx := context.Background()
	// Keep-alives off so every request dials: the balancer's per-dial
	// round robin then splits each n-post batch exactly s/s across the
	// two UAs and both shufflers fill to occupancy.
	httpClient := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			DialContext:       d.Balancer.DialContext,
			DisableKeepAlives: true,
		},
	}
	cl := client.New(proxy.Bundle(d.UAKeys, d.IAKeys), httpClient, d.Entry)

	var mu sync.Mutex
	var users []string
	var edge []adversary.Event

	// postBatch sends one shuffle batch of concurrent posts and returns
	// how many succeeded. Edge observations (source identity, arrival
	// time) are what the adversary sees at the UA ingress.
	postBatch := func(phase string, b int) int {
		var wg sync.WaitGroup
		ok := 0
		for i := 0; i < n; i++ {
			u := fmt.Sprintf("user-%s-%d-%d", phase, b, i)
			mu.Lock()
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			mu.Unlock()
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := cl.Post(ctx, u, "sensitive-item", ""); err == nil {
					mu.Lock()
					ok++
					mu.Unlock()
				}
			}(u)
			time.Sleep(2 * time.Millisecond) // unambiguous arrival order
		}
		wg.Wait()
		return ok
	}

	// Phase 1: healthy deployment — everything must land.
	healthy := 0
	for b := 0; b < 3; b++ {
		healthy += postBatch("healthy", b)
	}
	if healthy != 3*n {
		t.Fatalf("healthy phase: %d/%d posts succeeded", healthy, 3*n)
	}

	// Phase 2: crash one IA instance and one LRS front end mid-run. The
	// balancer skips refused dials and the proxy layers retry, so most
	// traffic must keep landing.
	if err := d.Kill("ia-1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Kill("lrs-1"); err != nil {
		t.Fatal(err)
	}
	outage := 0
	for b := 0; b < 3; b++ {
		outage += postBatch("outage", b)
	}
	t.Logf("outage phase: %d/%d posts succeeded; ejected ia=%v lrs=%v",
		outage, 3*n, d.Balancer.Ejected("ia"), d.Balancer.Ejected("lrs"))
	if outage < 3*n*3/4 {
		t.Errorf("outage phase: only %d/%d posts succeeded, want ≥ 75%%", outage, 3*n)
	}

	// Phase 3: restart both nodes, let breakers probe, and demand full
	// goodput again.
	if err := d.Restart("ia-1"); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart("lrs-1"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // past the breaker cooldown
	recovered := 0
	for b := 0; b < 3; b++ {
		recovered += postBatch("recovered", b)
	}
	if recovered != 3*n {
		t.Errorf("recovered phase: %d/%d posts succeeded, goodput did not recover", recovered, 3*n)
	}

	// The adversary correlates edge arrivals with LRS arrivals in order.
	// Shuffling bounds its accuracy at ≈ 1/S regardless of the faults;
	// killing nodes must not have created a linkable signal.
	truth := make(map[string]string, len(users))
	for _, u := range users {
		p, err := ppcrypto.Pseudonymize(d.UAKeys.Permanent, u)
		if err != nil {
			t.Fatal(err)
		}
		truth[u] = message.Encode64(p)
	}
	lrs := rec.Events("ia→lrs")
	if len(lrs) == 0 {
		t.Fatal("LRS tap saw no traffic")
	}
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), truth)
	if acc > 0.5 {
		t.Errorf("linking accuracy under faults = %.2f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
	t.Logf("linking accuracy under faults = %.3f (theory 1/S = %.3f)", acc, 1.0/s)
}

// TestRetriedGetUnlinkableOnInterProxyLink drops a GET twice on the IA
// ingress and asserts the UA's retries are cryptographically unlinkable on
// the UA→IA link: every attempt arrives link-wrapped with distinct bytes,
// each in its own shuffle epoch, and the request still succeeds.
func TestRetriedGetUnlinkableOnInterProxyLink(t *testing.T) {
	inj := faults.NewInjector(7, faults.Rule{Kind: faults.KindDrop, Path: message.QueriesPath, Count: 2})
	defer inj.Close()

	var mu sync.Mutex
	var bodies []string
	capture := func(h http.Handler) http.Handler {
		return adversary.Tap(adversary.NewRecorder(), "ua→ia", func(body []byte) string {
			mu.Lock()
			bodies = append(bodies, string(body))
			mu.Unlock()
			return ""
		}, h)
	}

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        2,
		ShuffleTimeout: 30 * time.Millisecond,
		UseStub:        true,
		Resilience:     chaosPolicy(),
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr == "ia-0" {
				// Tap first, inject second: the tap must observe the
				// attempts the fault destroys.
				return capture(inj.Middleware(h))
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	items, err := cl.Get(context.Background(), "alice")
	if err != nil {
		t.Fatalf("get did not survive two dropped attempts: %v", err)
	}
	if len(items) == 0 {
		t.Error("recovered get returned no items")
	}

	if retries, _ := d.UALayers[0].RetryStats(); retries != 2 {
		t.Errorf("UA retries = %d, want 2", retries)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("IA tap saw %d attempts, want 3 (original + 2 retries)", len(bodies))
	}
	seen := make(map[string]bool, len(bodies))
	for i, b := range bodies {
		var env struct {
			Link string `json:"link"`
		}
		if err := json.Unmarshal([]byte(b), &env); err != nil || env.Link == "" {
			t.Fatalf("attempt %d is not link-wrapped: %.80s", i, b)
		}
		if seen[env.Link] {
			t.Errorf("attempt %d repeats an earlier ciphertext — retries are linkable", i)
		}
		seen[env.Link] = true
	}

	// Each attempt re-entered the shuffler: original + 2 retries = at
	// least 3 flush epochs on the UA shuffler.
	if flushes, _ := d.UALayers[0].Shuffler().Stats(); flushes < 3 {
		t.Errorf("UA shuffler flushed %d times, want ≥ 3 (one epoch per attempt)", flushes)
	}
}

// TestRetriedPostNotDoubleCounted loses the LRS's reply (the event is
// stored but the caller never learns) twice; the IA retries with the same
// enclave-minted idempotency key, so the LRS stores the event exactly
// once.
func TestRetriedPostNotDoubleCounted(t *testing.T) {
	inj := faults.NewInjector(7, faults.Rule{
		Kind: faults.KindError, Status: http.StatusServiceUnavailable,
		Path: message.EventsPath, Count: 2, After: true,
	})
	defer inj.Close()

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Resilience:     chaosPolicy(),
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr == "lrs-0" {
				return inj.Middleware(h)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	if err := cl.Post(context.Background(), "alice", "war-and-peace", ""); err != nil {
		t.Fatalf("post did not survive two lost replies: %v", err)
	}

	if n := d.Engine.EventCount(); n != 1 {
		t.Errorf("LRS stores %d events, want exactly 1 (idempotent retries)", n)
	}
	if dups := d.Engine.DupEvents(); dups != 2 {
		t.Errorf("deduplicated deliveries = %d, want 2", dups)
	}
	if retries, _ := d.IALayers[0].RetryStats(); retries != 2 {
		t.Errorf("IA retries = %d, want 2", retries)
	}
}

// TestBalancerEjectsAndReadmitsDeadBackend exercises the balancer's
// per-backend breakers directly: a dead backend is ejected after repeated
// refused dials, dials keep succeeding via the live backend, and after the
// backend returns a trial dial re-admits it.
func TestBalancerEjectsAndReadmitsDeadBackend(t *testing.T) {
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             2,
		Encryption:     true,
		ItemPseudonyms: true,
		UseStub:        true,
		Resilience: &resilience.Policy{
			MaxAttempts:      2,
			BackoffBase:      2 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  50 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if err := d.Kill("ia-1"); err != nil {
		t.Fatal(err)
	}

	// Force fresh dials (no pooled connections) straight at the service
	// name so the balancer sees the refusals.
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		conn, err := d.Balancer.DialContext(ctx, "mem", "ia")
		if err != nil {
			t.Fatalf("dial %d failed despite a live backend: %v", i, err)
		}
		conn.Close()
	}
	if ej := d.Balancer.Ejected("ia"); len(ej) != 1 || ej[0] != "ia-1" {
		t.Fatalf("ejected = %v, want [ia-1]", ej)
	}

	if err := d.Restart("ia-1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Balancer.Ejected("ia")) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("restarted backend never re-admitted")
		}
		time.Sleep(10 * time.Millisecond)
		if conn, err := d.Balancer.DialContext(ctx, "mem", "ia"); err == nil {
			conn.Close()
		}
	}
}
