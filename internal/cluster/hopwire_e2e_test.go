package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/message"
	"pprox/internal/resilience"
)

func hopwireSpec(s int) cluster.Spec {
	return cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		Batch:          true,
		LRSConcurrency: 4,
		Hopwire:        true,
	}
}

// TestHopwireClusterEndToEnd runs the full encrypted batch pipeline with
// the binary frame transport on both hops. Every get must succeed, and
// the hop clients' counters must prove the traffic actually rode frames
// rather than silently falling back to HTTP.
func TestHopwireClusterEndToEnd(t *testing.T) {
	const s = 8
	spec := hopwireSpec(s)
	spec.Audit = &audit.Config{}
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const epochs = 3
	for b := 0; b < epochs; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("hopwire epoch %d: %d gets failed", b, failed)
		}
	}

	uaHop := d.UALayers[0].Hopwire()
	if uaHop == nil {
		t.Fatal("UA layer deployed without a hop client")
	}
	if st := uaHop.Stats(); st.Exchanges < epochs || st.Fallbacks != 0 {
		t.Errorf("UA hop stats = %+v, want ≥%d frame exchanges and no fallbacks", st, epochs)
	}
	iaHop := d.IALayers[0].Hopwire()
	if st := iaHop.Stats(); st.Exchanges != epochs*s || st.Fallbacks != 0 {
		t.Errorf("IA hop stats = %+v, want %d frame exchanges and no fallbacks", st, epochs*s)
	}
	// Persistent connections: far fewer dials than exchanges.
	if st := iaHop.Stats(); st.Dials >= st.Exchanges {
		t.Errorf("IA hop dialed per exchange (%d dials / %d exchanges) — pooling broken", st.Dials, st.Exchanges)
	}
	if stats := d.UALayers[0].BatchStats(); stats.Messages != epochs*s || stats.Degraded != 0 {
		t.Errorf("UA batch stats = %+v, want %d messages, none degraded", stats, epochs*s)
	}
	time.Sleep(300 * time.Millisecond) // let the IA hop epochs reach the auditor
	if st := d.Auditor.State(); st != audit.StateOK {
		t.Errorf("auditor state with hopwire = %v, want ok", st)
	}
}

// TestHopwireSurvivesHopKillMidStream kills the IA node between epochs —
// every pooled frame connection dies with it — restarts it, and requires
// the next epoch at full goodput: the client's conn health check and
// fresh-dial retry must absorb the crash without surfacing errors.
func TestHopwireSurvivesHopKillMidStream(t *testing.T) {
	const s = 4
	spec := hopwireSpec(s)
	spec.Resilience = &resilience.Policy{
		HopTimeout:  2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if failed := getBatch(t, d, s, 0); failed != 0 {
		t.Fatalf("pre-kill epoch: %d gets failed", failed)
	}

	// The UA now holds pooled conns to ia-0. Kill and restart: the pool
	// is full of dead connections the next epoch must detect and replace.
	if err := d.Kill("ia-0"); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart("ia-0"); err != nil {
		t.Fatal(err)
	}

	if failed := getBatch(t, d, s, 1); failed != 0 {
		t.Fatalf("post-restart epoch: %d gets failed — dead pooled conns not recovered", failed)
	}
	st := d.UALayers[0].Hopwire().Stats()
	if st.Fallbacks != 0 {
		t.Errorf("crash recovery fell back to HTTP %d times; frames should have resumed", st.Fallbacks)
	}
	if st.Dials < 2 {
		t.Errorf("dials = %d, want ≥2 (a fresh dial after the crash)", st.Dials)
	}
}

// TestHopwireChaosLadderOverFrames injects /batch faults with hopwire on:
// the resilience ladder (whole → halves → per-message) must work over the
// frame transport exactly as over HTTP, because the frame server bridges
// through the same middleware stack the injector sits in.
func TestHopwireChaosLadderOverFrames(t *testing.T) {
	const s = 4
	inj := faults.NewInjector(23)
	defer inj.Close()

	spec := hopwireSpec(s)
	spec.LRSConcurrency = 2
	spec.Resilience = &resilience.Policy{
		HopTimeout:  2 * time.Second,
		MaxAttempts: 2,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
	spec.NodeMiddleware = func(addr string, h http.Handler) http.Handler {
		if addr == "ia-0" {
			return inj.Middleware(h)
		}
		return h
	}
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	if failed := getBatch(t, d, s, 0); failed != 0 {
		t.Fatalf("healthy epoch: %d gets failed", failed)
	}

	inj.Arm(faults.Rule{
		Kind:   faults.KindError,
		Status: http.StatusServiceUnavailable,
		Path:   message.BatchPath,
		Count:  3,
	})
	if failed := getBatch(t, d, s, 1); failed != 0 {
		t.Fatalf("chaos epoch: %d gets failed — ladder did not preserve goodput over frames", failed)
	}
	stats := d.UALayers[0].BatchStats()
	if stats.Retries == 0 || stats.Splits == 0 || stats.Degraded == 0 {
		t.Errorf("ladder did not descend over frames: %+v", stats)
	}

	// Recovery: the batch path resumes on frames.
	before := stats
	if failed := getBatch(t, d, s, 2); failed != 0 {
		t.Fatalf("recovered epoch: %d gets failed", failed)
	}
	if after := d.UALayers[0].BatchStats(); after.Batches <= before.Batches {
		t.Errorf("recovered epoch did not use the batch path: %+v → %+v", before, after)
	}

	cl := d.Client(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Get(ctx, fmt.Sprintf("audit-user-%d-%d", 3, 0)); err != nil {
		t.Fatalf("post-chaos get: %v", err)
	}
}
