package cluster_test

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/metrics"
	"pprox/internal/perfslo"
)

// TestPerfSLOFlagsInjectedLatencyRegression is the performance
// observatory's end-to-end drill: a latency fault on the LRS inflates
// the IA→LRS forward stage past its objective, and the deployed
// evaluator must transition to violated — observable through the same
// /metrics and /perf endpoints an operator scrapes — while the
// harvester captures a profile into the ring and the breach exemplar
// resolves to a real trace epoch.
func TestPerfSLOFlagsInjectedLatencyRegression(t *testing.T) {
	const s = 4
	inj := faults.NewInjector(1)
	defer inj.Close()
	profileDir := t.TempDir()

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 50 * time.Millisecond,
		UseStub:        true,
		Trace:          true,
		PerfSLO: &perfslo.Config{
			Windows: []perfslo.Window{
				{Name: "500ms", Duration: 500 * time.Millisecond, Burn: 1},
				{Name: "2s", Duration: 2 * time.Second, Burn: 1},
			},
		},
		ProfileDir: profileDir,
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr == "lrs-0" {
				return inj.Middleware(h)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for b := 0; b < 3; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("healthy batch %d: %d gets failed", b, failed)
		}
	}
	if st := d.PerfSLO.State(); st != perfslo.StateOK {
		t.Fatalf("perf SLO state after healthy traffic = %v, want ok", st)
	}

	// Every LRS response now takes 400ms: the IA forward stage blows
	// through its 250ms default objective on every request.
	inj.Arm(faults.Rule{Kind: faults.KindLatency, Delay: 400 * time.Millisecond})
	for b := 3; b < 6; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("slow batch %d: %d gets failed", b, failed)
		}
	}

	if st := d.PerfSLO.State(); st != perfslo.StateViolated {
		t.Fatalf("perf SLO state after latency fault = %v, want violated", st)
	}

	// The operator's view over the wire: /metrics and /perf on any node.
	httpClient := d.HTTPClient(5 * time.Second)
	resp0, err := httpClient.Get("http://ua-0/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp0.Body)
	resp0.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scraped := metrics.ParseExposition(string(body))
	if v := scraped["pprox_perfslo_state"]; v != float64(perfslo.StateViolated) {
		t.Errorf("pprox_perfslo_state = %g, want %d", v, perfslo.StateViolated)
	}
	if v := scraped["pprox_perfslo_violations_total"]; v < 1 {
		t.Errorf("pprox_perfslo_violations_total = %g, want ≥ 1", v)
	}

	resp, err := httpClient.Get("http://ia-0" + perfslo.PerfPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep perfslo.Report
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != perfslo.StateViolated.String() {
		t.Errorf("/perf state = %q, want violated", rep.State)
	}
	var forward *perfslo.ObjectiveReport
	for i := range rep.Objectives {
		if rep.Objectives[i].Name == "forward" && rep.Objectives[i].Node == "ia-0" {
			forward = &rep.Objectives[i]
		}
	}
	if forward == nil {
		t.Fatal("/perf has no forward objective for ia-0")
	}
	if forward.State != perfslo.StateViolated.String() {
		t.Errorf("forward objective state = %q, want violated", forward.State)
	}
	if len(forward.ExemplarEpochs) == 0 {
		t.Fatal("forward objective recorded no breach exemplars")
	}

	// The exemplar is a shuffle-epoch id, and it resolves to that
	// epoch's records in the trace export — epoch granularity, nothing
	// finer.
	byEpoch := d.Traces.ByEpoch("ia-0")
	for _, epoch := range forward.ExemplarEpochs {
		if len(byEpoch[epoch]) == 0 {
			t.Errorf("exemplar epoch %d has no trace records on ia-0", epoch)
		}
	}

	// The transition triggered a profile capture into the ring.
	d.Profiles.Wait()
	caps := d.Profiles.Captures()
	if len(caps) == 0 {
		t.Fatal("no profile captured on SLO violation")
	}
	for _, f := range []string{"heap.pprof", "goroutine.pprof", "meta.json"} {
		if _, err := os.Stat(filepath.Join(caps[0], f)); err != nil {
			t.Errorf("capture missing %s: %v", f, err)
		}
	}
}
