package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/audit"
	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/fleet"
	"pprox/internal/hopwire"
	"pprox/internal/lrs/engine"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/obsprof"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/resilience"
	"pprox/internal/stub"
	"pprox/internal/telemetry"
	"pprox/internal/trace"
	"pprox/internal/transport"
)

// Spec describes an in-process deployment of the paper's testbed.
type Spec struct {
	// ProxyEnabled deploys the two PProx layers; otherwise clients talk
	// straight to the LRS (baseline b-configurations).
	ProxyEnabled bool
	// UA and IA are instance counts per proxy layer.
	UA, IA int
	// Encryption selects the full cryptographic path; when false the
	// proxies run in pass-through mode and clients send cleartext (m1).
	Encryption bool
	// ItemPseudonyms pseudonymizes item identifiers (off in m4).
	ItemPseudonyms bool
	// Shuffle is S (0 = off) and ShuffleTimeout the flush timer.
	Shuffle        int
	ShuffleTimeout time.Duration
	// Workers sizes each proxy instance's data-processing pool.
	Workers int
	// Batch switches the UA layers to the epoch-batched hop pipeline
	// (DESIGN.md §4f): one batched ECALL per epoch per message kind and
	// one UA→IA envelope per epoch. Requires Encryption and Shuffle > 1.
	// IA layers always serve /batch.
	Batch bool
	// LRSConcurrency bounds each IA instance's concurrent LRS requests
	// (0 = the proxy default, negative = unbounded).
	LRSConcurrency int
	// Hopwire switches the inter-hop transport (UA→IA and IA→LRS) to the
	// persistent-connection binary frame protocol (DESIGN.md §4h). Every
	// node's listener then sniffs each connection and serves frames and
	// HTTP side by side, and each layer's hop client falls back to HTTP
	// against a peer that does not answer in frames — so mixed
	// deployments (rolling upgrade) keep working.
	Hopwire bool
	// EcallCost models the CPU each enclave crossing burns (SGX world
	// switch + TLB/cache repopulation). Zero — the default — keeps
	// crossings free as plain function calls; benchmarks comparing the
	// per-message and batched pipelines set it to hardware-like values
	// (enclave.SetTransitionCost).
	EcallCost time.Duration
	// Cache enables the in-enclave recommendation cache on every IA
	// instance (requires Encryption: lookups and fills are ECALLs).
	// CacheTTL and CachePages override the reccache defaults when set;
	// CachePages bounds each cache's share of its enclave's EPC budget.
	Cache      bool
	CacheTTL   time.Duration
	CachePages int
	// UseStub serves the nginx-style static stub instead of the real
	// engine (micro-benchmarks); StubDelay models its service time.
	UseStub   bool
	StubDelay time.Duration
	// LRSFrontends is the number of REST front-end servers sharing the
	// engine (≥ 1).
	LRSFrontends int
	// EngineConfig overrides the engine defaults when set.
	EngineConfig *engine.Config
	// LRSShards splits the engine's event log over a consistent-hash
	// ring keyed by the user pseudonym (0 = single shard).
	LRSShards int
	// LRSWALDir, when set, WAL-backs every event-log shard under this
	// directory so accepted posts survive an LRS process crash.
	LRSWALDir string
	// LRSWALSync fsyncs every WAL append before acknowledging the post,
	// extending durability to OS crashes and power loss.
	LRSWALSync bool
	// LRSIncremental folds each accepted primary event into the CCO
	// counts online; batch training becomes the compaction fallback.
	LRSIncremental bool
	// LRSMiddleware, when set, wraps the LRS handler — e.g. with an
	// adversary network tap for the security experiments.
	LRSMiddleware func(http.Handler) http.Handler
	// Trace enables privacy-safe hop-local tracing on every proxy
	// layer; records collect in Deployment.Traces at shuffle-epoch
	// granularity.
	Trace bool
	// Resilience arms fault handling across the deployment: every proxy
	// layer retries/breaks per the policy, and the balancer ejects
	// backends whose dials keep failing. Nil deploys without fault
	// handling (single attempts, no ejection).
	Resilience *resilience.Policy
	// NodeMiddleware, when set, wraps every node's HTTP handler (proxy
	// instances and LRS front ends alike) with addr naming the node
	// (e.g. "ia-1", "lrs-0"). The chaos tests use it to install fault
	// injectors and network taps on selected nodes.
	NodeMiddleware func(addr string, h http.Handler) http.Handler
	// Audit deploys the privacy-SLO auditor: every proxy layer feeds it
	// shuffle-epoch releases, breaker/ejection/compromise state is
	// sampled as checks, its metrics join the deployment registry, and
	// every node additionally serves the /privacy report. A zero-valued
	// Config is usable — TargetS defaults to Spec.Shuffle.
	Audit *audit.Config
	// PerfSLO deploys the performance-SLO evaluator: every proxy layer
	// gets per-stage latency objectives (UA: end-to-end serve, shuffle
	// wait, ECALL; IA: end-to-end serve, IA→LRS forward, ECALL) sampled
	// at shuffle-epoch granularity, its metrics join the deployment
	// registry, and every node additionally serves the /perf report. A
	// zero-valued Config is usable (default 5m/1h windows).
	PerfSLO *perfslo.Config
	// PerfQuantile is the objectives' quantile (default 0.99).
	PerfQuantile float64
	// PerfThresholds overrides the derived per-stage latency thresholds,
	// in seconds, keyed by stage label (proxy.StageServe etc.).
	PerfThresholds map[string]float64
	// Fleet deploys the live route registry (DESIGN.md §4j): every
	// UA/IA/LRS endpoint registers with it, the balancer consumes its
	// routable sets instead of the static backend lists, and membership
	// changes are epoch-aligned — new endpoints are admitted at shuffle-
	// epoch boundaries, departing ones drain their final epoch whole.
	// Requires ProxyEnabled. Spec.Elastic implies Fleet.
	Fleet bool
	// Elastic arms the closed autoscaling loop on top of the fleet
	// registry: a reconciler samples live signals (UA request rate,
	// shuffle occupancy, and — with OpsAddr set — collector goodput) and
	// drives the deployed pair count through AddPair/DrainPair.
	Elastic *ElasticSpec
	// OpsAddr deploys the fleet telemetry plane: a collector node
	// (cmd/pprox-ops equivalent) served at this in-memory address, plus
	// one telemetry emitter per node streaming epoch-granular snapshots
	// to it — over hopwire frames when Spec.Hopwire is set, HTTP
	// otherwise (the emitters' frame probe latches the fallback). The
	// collector gets its OWN registry: it models an operator service
	// outside the trust boundary, so it must not share the deployment's.
	// Empty disables telemetry.
	OpsAddr string
	// TelemetryInterval is every emitter's heartbeat: the slowest a node
	// pushes snapshots when no shuffle epochs fire (idle proxies, LRS
	// front ends). Default: ShuffleTimeout, or 250ms when that is unset
	// too.
	TelemetryInterval time.Duration
	// ProfileDir arms triggered profile capture: on a performance-SLO
	// warn/violated transition the deployment snapshots CPU + heap +
	// goroutine profiles into this bounded on-disk ring. Requires
	// PerfSLO; empty disables capture.
	ProfileDir string
	// Logger, when set, is the deployment-wide structured logger
	// (obslog-redacted by construction at the callers): layers log
	// request failures, the engine logs redacted ingest/training events,
	// and the auditor logs SLO transitions, each under a "node"
	// attribute.
	Logger *slog.Logger
}

// SpecFromMicro translates a Table 2 row into a deployable spec. The SGX
// column of Table 2 does not change the functional path — with or without
// enclaves the same bytes flow — so it is a cost-model flag consumed by
// the sim package, not by Deploy.
func SpecFromMicro(c MicroConfig) Spec {
	return Spec{
		ProxyEnabled:   true,
		UA:             c.UA,
		IA:             c.IA,
		Encryption:     c.Encryption,
		ItemPseudonyms: c.ItemPseudonyms,
		Shuffle:        c.Shuffle,
		UseStub:        true,
		LRSFrontends:   1,
	}
}

// SpecFromMacro translates a Table 3 row into a deployable spec.
func SpecFromMacro(c MacroConfig) Spec {
	return Spec{
		ProxyEnabled:   c.Proxy,
		UA:             c.UA,
		IA:             c.IA,
		Encryption:     c.Proxy,
		ItemPseudonyms: c.Proxy,
		Shuffle:        c.Shuffle,
		LRSFrontends:   c.LRSFrontends,
	}
}

// Deployment is a running in-process testbed.
type Deployment struct {
	Net      *transport.Network
	Balancer *Balancer
	// Entry is the base URL clients talk to: the UA layer's service
	// address, or the LRS service for baseline deployments.
	Entry string
	// Engine is the shared LRS engine (nil when the stub serves).
	Engine *engine.Engine
	// Stub is the static LRS stand-in (nil when the engine serves).
	Stub *stub.Server
	// UAKeys and IAKeys are the layer key material (nil without
	// encryption).
	UAKeys, IAKeys *proxy.LayerKeys
	// UALayers and IALayers are the proxy instances.
	UALayers, IALayers []*proxy.Layer
	// Metrics is the deployment-wide registry; every node serves it on
	// GET /metrics (plus /healthz), so the bench injector can scrape
	// per-stage histograms exactly as an operator would.
	Metrics *metrics.Registry
	// Traces collects the layers' trace exports when Spec.Trace is set.
	Traces *trace.Collector
	// Auditor is the deployment's privacy-SLO engine (nil unless
	// Spec.Audit is set). Every node serves its report on /privacy.
	Auditor *audit.Auditor
	// PerfSLO is the deployment's performance-SLO engine (nil unless
	// Spec.PerfSLO is set). Every node serves its report on /perf.
	PerfSLO *perfslo.Evaluator
	// Profiles is the triggered-profile harvester (nil unless
	// Spec.ProfileDir is set alongside Spec.PerfSLO).
	Profiles *obsprof.Harvester
	// RecCaches are the per-IA-instance recommendation caches, indexed
	// like IALayers (nil without Spec.Cache).
	RecCaches []*reccache.Cache
	// Ops is the fleet telemetry collector (nil unless Spec.OpsAddr).
	// It serves /fleet and /telemetry at Spec.OpsAddr.
	Ops *telemetry.Collector
	// OpsMetrics is the collector node's own registry, separate from the
	// deployment registry because the collector sits outside the trust
	// boundary.
	OpsMetrics *metrics.Registry
	// Registry is the live fleet route registry (nil unless Spec.Fleet).
	Registry *fleet.Registry
	// Reconciler is the autoscaling loop closing live signals over the
	// registry (nil unless Spec.Elastic). With ElasticSpec.Interval ≤ 0
	// it never ticks on its own; tests drive it with Tick.
	Reconciler *fleet.Reconciler

	spec Spec
	// mu guards the mutable membership state below — nodes, order, the
	// layer slices and the pair bookkeeping — which the elastic fleet
	// mutates after deploy, concurrently with chaos tests and Close.
	mu sync.Mutex
	// nodes tracks every served node by address so chaos tests can kill
	// and restart individual instances; order preserves bring-up order
	// for reverse shutdown.
	nodes map[string]*runningNode
	order []string
	// layers maps a node address to its proxy layer, for drain victim
	// lookup; drained holds retired layers so the auditor can keep
	// checking their drain reports stayed clean.
	layers  map[string]*proxy.Layer
	drained []*proxy.Layer
	// nextUA/nextIA number the next spawned instance of each layer.
	nextUA, nextIA int

	// Builder state Deploy captures so AddPair can provision new
	// instances exactly like the initial ones.
	platform    *enclave.Platform
	attestation *enclave.AttestationService
	iaOpts      proxy.IAOptions
	interClient *http.Client

	// drainMu serializes DrainPair calls so two concurrent drains cannot
	// pick the same victim pair.
	drainMu sync.Mutex

	fleetEmitter  *telemetry.Emitter
	stopReconcile func()
}

// runningNode is one HTTP server the deployment runs, restartable in
// place for crash/recovery experiments.
type runningNode struct {
	handler http.Handler
	// emitter is the node's telemetry emitter (nil without Spec.OpsAddr
	// or on the ops node itself). Kill pauses it — the in-process
	// handler survives a "crash", so without the pause a killed node
	// would keep reporting and never go stale at the collector.
	emitter *telemetry.Emitter

	mu       sync.Mutex
	shutdown func() error // nil while killed
}

// Deploy brings the spec up on a fresh in-memory network.
func Deploy(spec Spec) (d *Deployment, err error) {
	if spec.LRSFrontends <= 0 {
		spec.LRSFrontends = 1
	}
	if spec.ProxyEnabled && (spec.UA <= 0 || spec.IA <= 0) {
		return nil, errors.New("cluster: proxy deployment needs at least one instance per layer")
	}
	if spec.Cache && !(spec.ProxyEnabled && spec.Encryption) {
		return nil, errors.New("cluster: recommendation cache needs the encrypted proxy path")
	}
	if spec.Batch && !(spec.ProxyEnabled && spec.Encryption && spec.Shuffle > 1) {
		return nil, errors.New("cluster: batch mode needs the encrypted proxy path with S > 1")
	}
	if spec.Elastic != nil {
		spec.Fleet = true
	}
	if spec.Fleet && !spec.ProxyEnabled {
		return nil, errors.New("cluster: fleet mode needs the proxy deployed")
	}

	d = &Deployment{
		Net:     transport.NewNetwork(),
		spec:    spec,
		Metrics: metrics.NewRegistry(),
		Traces:  trace.NewCollector(),
		nodes:   make(map[string]*runningNode),
		layers:  make(map[string]*proxy.Layer),
		nextUA:  spec.UA,
		nextIA:  spec.IA,
	}
	if spec.Fleet {
		d.Registry = fleet.NewRegistry(fleet.Config{})
		d.Registry.RegisterMetrics(d.Metrics)
	}
	d.Balancer = NewBalancer(d.Net)
	if spec.Resilience != nil {
		pol := spec.Resilience.WithDefaults()
		d.Balancer.SetBreakerPolicy(pol.BreakerThreshold, pol.BreakerCooldown)
	}
	d.Balancer.RegisterMetrics(d.Metrics)
	metrics.RegisterRuntimeMetrics(d.Metrics)
	// Capture the deployment for cleanup: error paths `return nil, err`,
	// which nils the named return before the defer runs.
	built := d
	defer func() {
		if err != nil {
			built.Close()
		}
	}()

	// Fleet telemetry collector, brought up FIRST so it is torn down
	// LAST (Close kills in reverse bring-up order): every other node's
	// final snapshot flush still finds it listening.
	if spec.OpsAddr != "" {
		d.Ops = telemetry.NewCollector(telemetry.CollectorConfig{Logger: spec.Logger})
		d.OpsMetrics = metrics.NewRegistry()
		metrics.RegisterBuildInfo(d.OpsMetrics)
		metrics.RegisterRuntimeMetrics(d.OpsMetrics)
		d.Ops.RegisterMetrics(d.OpsMetrics)
		ops := d.Ops
		h := metrics.MuxRoutes(d.OpsMetrics, ops.Health, ops.Routes(), http.NotFoundHandler())
		if err := d.serve(spec.OpsAddr, h); err != nil {
			return nil, err
		}
	}

	// Key material and enclaves (encryption mode only).
	var as *enclave.AttestationService
	var platform *enclave.Platform
	if spec.ProxyEnabled && spec.Encryption {
		if as, err = enclave.NewAttestationService(); err != nil {
			return nil, err
		}
		platform = enclave.NewPlatform(as)
		if d.UAKeys, err = proxy.NewLayerKeys(); err != nil {
			return nil, err
		}
		if d.IAKeys, err = proxy.NewLayerKeys(); err != nil {
			return nil, err
		}
		// One shared hop-envelope key: the UA→IA link travels as
		// randomized ciphertext and retried requests can be re-wrapped
		// so they are unlinkable to the attempt they repeat.
		if err = proxy.PairLinkKey(d.UAKeys, d.IAKeys); err != nil {
			return nil, err
		}
	}

	// Privacy-SLO auditor: baselines the key ages now (provisioning
	// time) so MaxKeyAge measures from a known point, then exposes its
	// instruments on the shared registry.
	if spec.Audit != nil {
		acfg := *spec.Audit
		if acfg.TargetS == 0 {
			acfg.TargetS = spec.Shuffle
		}
		d.Auditor = audit.New(acfg)
		if spec.Logger != nil {
			d.Auditor.SetLogger(spec.Logger.With("node", "auditor"))
		}
		if spec.ProxyEnabled && spec.Encryption {
			d.Auditor.SetKeyBaseline("UA")
			d.Auditor.SetKeyBaseline("IA")
		}
		d.Auditor.RegisterMetrics(d.Metrics)
	}

	// Performance-SLO evaluator and, when armed, the triggered-profile
	// harvester it feeds. Objectives are added per layer in serveLayer;
	// the evaluator's metrics register once all layers exist.
	if spec.PerfSLO != nil {
		d.PerfSLO = perfslo.New(*spec.PerfSLO)
		if spec.Logger != nil {
			d.PerfSLO.SetLogger(spec.Logger.With("node", "perfslo"))
		}
		if spec.ProfileDir != "" {
			d.Profiles, err = obsprof.New(obsprof.Config{
				Dir:        spec.ProfileDir,
				CPUSeconds: 1,
				Logger:     spec.Logger,
			})
			if err != nil {
				return nil, err
			}
		}
		eval, harvester := d.PerfSLO, d.Profiles
		eval.OnTransition = func(from, to perfslo.State, reason string) {
			if to == perfslo.StateOK {
				return
			}
			// Attach the newest breach exemplar so the capture's
			// meta.json points at the offending shuffle epoch.
			var epoch uint64
			for _, o := range eval.Report().Objectives {
				if n := len(o.ExemplarEpochs); n > 0 && o.ExemplarEpochs[n-1] > epoch {
					epoch = o.ExemplarEpochs[n-1]
				}
			}
			harvester.Trigger(reason, epoch, from.String(), to.String())
		}
	}

	// LRS backends.
	if err := d.deployLRS(spec); err != nil {
		return nil, err
	}

	if !spec.ProxyEnabled {
		if d.PerfSLO != nil {
			d.PerfSLO.RegisterMetrics(d.Metrics)
		}
		d.Entry = "http://lrs"
		return d, nil
	}

	// Proxy layers: IA first (talks to the LRS), then UA. The builder
	// state is kept on the deployment so AddPair provisions later
	// instances exactly like these.
	interClient := transport.HTTPClient(d.Balancer, 30*time.Second)
	iaOpts := proxy.IAOptions{DisableItemPseudonymization: !spec.ItemPseudonyms}
	d.platform, d.attestation = platform, as
	d.iaOpts, d.interClient = iaOpts, interClient
	iaBackends := make([]string, spec.IA)
	for i := 0; i < spec.IA; i++ {
		addr := fmt.Sprintf("ia-%d", i)
		iaBackends[i] = addr
		instOpts := iaOpts
		if spec.Cache {
			// One cache per IA instance: each draws on its own
			// enclave's EPC budget (Bind happens inside NewIAEnclave).
			cache := reccache.New(reccache.Config{TTL: spec.CacheTTL, MaxPages: spec.CachePages})
			instOpts.Cache = cache
			d.RecCaches = append(d.RecCaches, cache)
		}
		layer, err := d.newLayer(proxy.RoleIA, spec, platform, as, instOpts, "http://lrs", interClient)
		if err != nil {
			return nil, err
		}
		d.IALayers = append(d.IALayers, layer)
		if err := d.serveLayer(addr, layer, spec); err != nil {
			return nil, err
		}
	}
	d.Balancer.Register("ia", iaBackends...)

	uaBackends := make([]string, spec.UA)
	for i := 0; i < spec.UA; i++ {
		addr := fmt.Sprintf("ua-%d", i)
		uaBackends[i] = addr
		layer, err := d.newLayer(proxy.RoleUA, spec, platform, as, iaOpts, "http://ia", interClient)
		if err != nil {
			return nil, err
		}
		d.UALayers = append(d.UALayers, layer)
		if err := d.serveLayer(addr, layer, spec); err != nil {
			return nil, err
		}
	}
	d.Balancer.Register("ua", uaBackends...)

	// Fleet mode: seed the registry with the initial membership and hand
	// the balancer over to it. The first endpoint of each service is
	// admitted on registration; one pre-traffic epoch boundary promotes
	// the rest (no epoch is in flight before the first request), so the
	// deployment comes up with its full initial capacity routable.
	if d.Registry != nil {
		for _, addr := range iaBackends {
			d.Registry.Register("ia", addr)
		}
		for _, addr := range uaBackends {
			d.Registry.Register("ua", addr)
		}
		d.Registry.EpochBoundary()
		d.Balancer.UseSource(d.Registry, "ua", "ia", "lrs")
	}

	// Backend ejection starves the surviving shufflers' buffers, so it is
	// a degraded-path SLO signal in its own right.
	if d.Auditor != nil {
		for _, svc := range []string{"ua", "ia", "lrs"} {
			svc := svc
			d.Auditor.AddCheck("backends ejected from "+svc, func() bool {
				return len(d.Balancer.Ejected(svc)) > 0
			})
		}
		if d.Registry != nil {
			// A drained instance that closed with messages still buffered
			// released a sub-S batch: the exact epoch split the drain
			// protocol exists to prevent, and a direct breach of the 1/S
			// linking bound. Scale-down events must never trip this.
			d.Auditor.AddViolationCheck("fleet drain split a shuffle epoch", d.dirtyDrain)
		}
	}

	// Objectives are complete once every layer is served; only now can
	// the evaluator's per-objective series register.
	if d.PerfSLO != nil {
		d.PerfSLO.RegisterMetrics(d.Metrics)
	}

	// The autoscaling loop and the fleet-view emitter come up last, once
	// the initial membership is final: the reconciler's first sample then
	// sees the full fleet, and the emitter's first snapshot carries it.
	if spec.Elastic != nil {
		if err := d.startReconciler(spec); err != nil {
			return nil, err
		}
	}
	if d.Ops != nil && d.Registry != nil {
		if err := d.startFleetTelemetry(); err != nil {
			return nil, err
		}
	}

	d.Entry = "http://ua"
	return d, nil
}

func (d *Deployment) deployLRS(spec Spec) error {
	var handler http.Handler
	if spec.UseStub {
		names := make([]string, message.MaxRecommendations)
		for i := range names {
			names[i] = fmt.Sprintf("stub-item-%04d", i)
		}
		items := names
		if spec.ProxyEnabled && spec.Encryption && spec.ItemPseudonyms {
			var err error
			if items, err = d.IAKeys.PseudonymizeItems(names); err != nil {
				return err
			}
		}
		s, err := stub.NewWithItems(items)
		if err != nil {
			return err
		}
		s.Delay = spec.StubDelay
		d.Stub = s
		handler = s
	} else {
		cfg := engine.DefaultConfig()
		if spec.EngineConfig != nil {
			cfg = *spec.EngineConfig
		}
		if spec.LRSShards > 0 {
			cfg.Shards = spec.LRSShards
		}
		if spec.LRSWALDir != "" {
			cfg.WALDir = spec.LRSWALDir
		}
		if spec.LRSWALSync {
			cfg.WALSync = true
		}
		if spec.LRSIncremental {
			cfg.Incremental = true
		}
		eng, err := engine.Open(cfg)
		if err != nil {
			return fmt.Errorf("open engine: %w", err)
		}
		d.Engine = eng
		if spec.Logger != nil {
			d.Engine.SetLogger(spec.Logger.With("node", "lrs"))
		}
		handler = engine.NewHandler(d.Engine)
	}

	var health metrics.HealthFunc
	if d.Stub != nil {
		d.Stub.RegisterMetrics(d.Metrics, "lrs")
		health = d.Stub.Health
	} else {
		instrument := d.Engine.RegisterMetrics(d.Metrics, "lrs")
		handler = instrument(handler)
		health = d.Engine.Health
	}

	if spec.LRSMiddleware != nil {
		handler = spec.LRSMiddleware(handler)
	}
	handler = metrics.MuxRoutes(d.Metrics, health, d.opRoutes(), handler)
	backends := make([]string, spec.LRSFrontends)
	for i := range backends {
		addr := fmt.Sprintf("lrs-%d", i)
		backends[i] = addr
		if err := d.serve(addr, handler); err != nil {
			return err
		}
		// LRS front ends observe no shuffle epochs; their emitters are
		// purely heartbeat-driven.
		if d.Ops != nil {
			role := "lrs"
			if spec.UseStub {
				role = "stub"
			}
			em, err := d.newEmitter(addr, role, nil, nil, d.telemetryInterval())
			if err != nil {
				return err
			}
			d.mu.Lock()
			d.nodes[addr].emitter = em
			d.mu.Unlock()
		}
	}
	d.Balancer.Register("lrs", backends...)
	if d.Registry != nil {
		for _, addr := range backends {
			d.Registry.Register("lrs", addr)
		}
	}
	return nil
}

// serveLayer registers the layer's instruments (and tracer, when the spec
// asks for one) under its node name and serves it behind the standard
// operational mux, so scraping "http://ua-0/metrics" over the in-memory
// network works exactly like against a real instance. With auditing on,
// the layer also feeds every shuffle-epoch release to the auditor, and
// its breaker / balancer-ejection / enclave-compromise state becomes
// sampled SLO checks.
func (d *Deployment) serveLayer(addr string, layer *proxy.Layer, spec Spec) error {
	layer.RegisterMetrics(d.Metrics, addr)
	if spec.Trace {
		layer.SetTracer(trace.New(addr, d.Traces.Sink(), nil))
	}
	if spec.Logger != nil {
		layer.SetLogger(spec.Logger.With("node", addr))
	}
	if d.Auditor != nil {
		a := d.Auditor
		if br := layer.Breaker(); br != nil {
			a.AddCheck("breaker open on "+addr, func() bool { return br.State() != 0 })
		}
		if e := layer.Enclave(); e != nil {
			a.AddViolationCheck("enclave compromised on "+addr, e.Compromised)
		}
		if c := layer.RecCache(); c != nil {
			a.RegisterCacheCheck(addr, c)
		}
	}
	if d.PerfSLO != nil {
		d.addPerfObjectives(addr, layer, spec)
	}
	// Telemetry emitter: shuffle epochs kick immediate flushes, and the
	// heartbeat interval keeps an idle node pushing so the collector can
	// tell idle from dead. The audit/perf verdict closures read the
	// deployment-wide engines; the snapshot still carries only their
	// state strings.
	var em *telemetry.Emitter
	if d.Ops != nil {
		interval := d.telemetryInterval()
		var auditState, perfState func() string
		if d.Auditor != nil {
			a := d.Auditor
			auditState = func() string { return a.State().String() }
		}
		if d.PerfSLO != nil {
			eval := d.PerfSLO
			perfState = func() string { return eval.State().String() }
		}
		role := "ia"
		if strings.HasPrefix(addr, "ua-") {
			role = "ua"
		}
		var err error
		if em, err = d.newEmitter(addr, role, auditState, perfState, interval); err != nil {
			return err
		}
	}
	if d.Auditor != nil || d.PerfSLO != nil || em != nil || d.Registry != nil {
		a, eval, node, reg := d.Auditor, d.PerfSLO, addr, d.Registry
		// The tracer is already installed, so its epoch — read BEFORE
		// the flush hook advances it — is exactly the epoch number the
		// flushed trace records carry: a perfslo breach exemplar resolves
		// to a real per-epoch trace.
		tr := layer.Tracer()
		var fallbackEpoch atomic.Uint64
		emitter := em
		layer.SetEpochObserver(func(batch int) {
			if a != nil {
				a.ObserveEpoch(node, batch)
			}
			if eval != nil {
				var epoch uint64
				if tr != nil {
					epoch = tr.Epoch()
				} else {
					epoch = fallbackEpoch.Add(1) - 1
				}
				eval.Sample(node, epoch)
			}
			// The emitter goes last so its snapshot sees the epoch's
			// audit and perf samples already applied.
			if emitter != nil {
				emitter.ObserveEpoch(batch)
			}
			// A flush is a shuffle-epoch boundary: the moment no epoch is
			// in flight on this instance, so pending fleet members can be
			// admitted onto a fresh epoch. One atomic load when none are.
			if reg != nil {
				reg.EpochBoundary()
			}
		})
	}
	if err := d.serve(addr, metrics.MuxRoutes(d.Metrics, layer.Health, d.opRoutes(), layer)); err != nil {
		if em != nil {
			em.Close()
		}
		return err
	}
	d.mu.Lock()
	d.nodes[addr].emitter = em
	d.layers[addr] = layer
	d.mu.Unlock()
	return nil
}

// telemetryInterval is the emitters' heartbeat cadence.
func (d *Deployment) telemetryInterval() time.Duration {
	if d.spec.TelemetryInterval > 0 {
		return d.spec.TelemetryInterval
	}
	if d.spec.ShuffleTimeout > 0 {
		return d.spec.ShuffleTimeout
	}
	return 250 * time.Millisecond
}

// newEmitter builds one node's telemetry emitter, scoped to the node's
// own series: the deployment shares one registry, so the filter keeps
// series that either carry this node's `node` label or carry none
// (deployment-global families like build info and audit aggregates).
func (d *Deployment) newEmitter(addr, role string, auditState, perfState func() string, interval time.Duration) (*telemetry.Emitter, error) {
	pusher, err := telemetry.NewClient(d.Net, d.spec.OpsAddr)
	if err != nil {
		return nil, err
	}
	return telemetry.NewEmitter(telemetry.EmitterConfig{
		Node:       addr,
		Role:       role,
		Registry:   d.Metrics,
		Filter:     nodeSeriesFilter(addr),
		AuditState: auditState,
		PerfState:  perfState,
		Pusher:     pusher,
		Interval:   interval,
		Logger:     d.spec.Logger,
	})
}

// nodeSeriesFilter keeps a shared-registry series when it belongs to the
// given node or to no node in particular.
func nodeSeriesFilter(addr string) func(string) bool {
	return func(series string) bool {
		_, labels := metrics.ParseSeries(series)
		n, ok := labels["node"]
		return !ok || n == addr
	}
}

// addPerfObjectives installs one layer instance's latency objectives on
// the evaluator: the end-to-end serve envelope on every layer, the
// shuffle wait where a shuffler runs, the request-path ECALL where an
// enclave runs, and the forward hop on IA instances (the IA→LRS leg the
// paper's cost model singles out). Thresholds derive from the spec's
// own timing knobs and can be overridden per stage via PerfThresholds.
func (d *Deployment) addPerfObjectives(addr string, layer *proxy.Layer, spec Spec) {
	q := spec.PerfQuantile
	if q <= 0 || q >= 1 {
		q = 0.99
	}
	isIA := strings.HasPrefix(addr, "ia-")
	stages := []string{proxy.StageServe}
	if spec.Shuffle > 0 {
		stages = append(stages, proxy.StageShuffleWait)
	}
	if spec.Encryption {
		stages = append(stages, proxy.StageEcallDecrypt)
	}
	if isIA {
		stages = append(stages, proxy.StageForward)
	}
	for _, stage := range stages {
		h := layer.StageHistogram(stage)
		if h == nil {
			continue
		}
		d.PerfSLO.AddObjective(stage, addr, h, q, d.perfThreshold(stage, spec))
	}
}

// perfThreshold derives a stage's default latency threshold from the
// spec. The defaults are intentionally generous — they flag sustained
// regressions, not single slow requests — and every one is overridable.
func (d *Deployment) perfThreshold(stage string, spec Spec) float64 {
	if t, ok := spec.PerfThresholds[stage]; ok {
		return t
	}
	flush := spec.ShuffleTimeout
	if flush <= 0 {
		flush = 250 * time.Millisecond
	}
	switch stage {
	case proxy.StageShuffleWait:
		// A message should never wait much past the flush timer.
		return (2 * flush).Seconds()
	case proxy.StageEcallDecrypt:
		t := 10 * spec.EcallCost
		if t < 25*time.Millisecond {
			t = 25 * time.Millisecond
		}
		return t.Seconds()
	case proxy.StageForward:
		t := 10 * spec.StubDelay
		if t < 250*time.Millisecond {
			t = 250 * time.Millisecond
		}
		return t.Seconds()
	default: // StageServe: shuffle wait plus everything else.
		return (2*flush + 500*time.Millisecond).Seconds()
	}
}

// opRoutes returns the extra operational routes every node serves: the
// auditor's /privacy report and the performance evaluator's /perf
// report, for whichever engines are deployed. Nil when neither is.
func (d *Deployment) opRoutes() map[string]http.Handler {
	if d.Auditor == nil && d.PerfSLO == nil {
		return nil
	}
	routes := make(map[string]http.Handler, 2)
	if d.Auditor != nil {
		routes[audit.PrivacyPath] = d.Auditor.Handler()
	}
	if d.PerfSLO != nil {
		routes[perfslo.PerfPath] = d.PerfSLO.Handler()
	}
	return routes
}

// newLayer builds one provisioned proxy instance. Every instance of a
// layer is provisioned with the same secrets after attestation (§5,
// horizontal scaling).
func (d *Deployment) newLayer(role proxy.Role, spec Spec, platform *enclave.Platform, as *enclave.AttestationService, iaOpts proxy.IAOptions, next string, httpClient *http.Client) (*proxy.Layer, error) {
	cfg := proxy.Config{
		Role:           role,
		Next:           next,
		HTTPClient:     httpClient,
		ShuffleSize:    spec.Shuffle,
		ShuffleTimeout: spec.ShuffleTimeout,
		Workers:        spec.Workers,
		PassThrough:    !spec.Encryption,
		Resilience:     spec.Resilience,
	}
	if role == proxy.RoleUA {
		cfg.Batch = spec.Batch
	} else {
		cfg.LRSConcurrency = spec.LRSConcurrency
	}
	if spec.Hopwire {
		cfg.Hopwire = true
		cfg.HopDialer = d.Balancer
	}
	if spec.Encryption {
		if role == proxy.RoleUA {
			e := proxy.NewUAEnclave(platform)
			if err := d.UAKeys.Provision(as, e, proxy.UAIdentity); err != nil {
				return nil, err
			}
			e.SetTransitionCost(spec.EcallCost)
			cfg.Enclave = e
		} else {
			e := proxy.NewIAEnclave(platform, iaOpts)
			if err := d.IAKeys.Provision(as, e, proxy.IAIdentityFor(iaOpts)); err != nil {
				return nil, err
			}
			e.SetTransitionCost(spec.EcallCost)
			cfg.Enclave = e
			cfg.RecCache = iaOpts.Cache
		}
	}
	return proxy.New(cfg)
}

func (d *Deployment) serve(addr string, h http.Handler) error {
	if d.spec.NodeMiddleware != nil {
		h = d.spec.NodeMiddleware(addr, h)
	}
	l, err := d.Net.Listen(addr)
	if err != nil {
		return err
	}
	n := &runningNode{handler: h, shutdown: d.serveListener(l, h)}
	d.mu.Lock()
	d.nodes[addr] = n
	d.order = append(d.order, addr)
	d.mu.Unlock()
	return nil
}

// serveListener starts one node's server: the dual-protocol mux when the
// spec runs hopwire, plain HTTP otherwise. Kill/Restart go through the
// same helper so a restarted node speaks the same protocols it did
// before the crash.
func (d *Deployment) serveListener(l net.Listener, h http.Handler) func() error {
	if d.spec.Hopwire {
		return hopwire.ServeHTTPAndFrames(l, h)
	}
	return transport.Serve(l, h)
}

// Kill stops one node's server and unbinds its address: dials to it are
// refused, exactly as after a process crash. The chaos experiments use it
// together with Restart.
func (d *Deployment) Kill(addr string) error {
	d.mu.Lock()
	n := d.nodes[addr]
	d.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cluster: no node %q", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown == nil {
		return nil // already down
	}
	shutdown := n.shutdown
	n.shutdown = nil
	// The process "died": silence its telemetry so the collector sees it
	// go stale, exactly as after a real crash.
	if n.emitter != nil {
		n.emitter.Pause()
	}
	return shutdown()
}

// Restart brings a killed node back up on its address with its original
// handler — the crashed process rejoining the deployment. Balancer
// breakers re-admit it on their next trial dial.
func (d *Deployment) Restart(addr string) error {
	d.mu.Lock()
	n := d.nodes[addr]
	d.mu.Unlock()
	if n == nil {
		return fmt.Errorf("cluster: no node %q", addr)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.shutdown != nil {
		return nil // already up
	}
	l, err := d.Net.Listen(addr)
	if err != nil {
		return err
	}
	n.shutdown = d.serveListener(l, n.handler)
	if n.emitter != nil {
		n.emitter.Resume()
	}
	return nil
}

// HTTPClient returns a client whose connections are balanced across the
// deployment's services, suitable for the workload injector.
func (d *Deployment) HTTPClient(timeout time.Duration) *http.Client {
	return transport.HTTPClient(d.Balancer, timeout)
}

// Client returns a user-side library instance pointed at the deployment's
// entry, encrypted or plain to match the spec.
func (d *Deployment) Client(timeout time.Duration) *client.Client {
	httpClient := d.HTTPClient(timeout)
	if d.spec.ProxyEnabled && d.spec.Encryption {
		return client.New(proxy.Bundle(d.UAKeys, d.IAKeys), httpClient, d.Entry)
	}
	return client.NewPlain(httpClient, d.Entry)
}

// Close shuts every server down and closes the network, waiting out any
// in-flight profile capture.
func (d *Deployment) Close() error {
	// The reconciler stops first — its stop waits out an in-flight tick,
	// so no AddPair/DrainPair can race the teardown below.
	if d.stopReconcile != nil {
		d.stopReconcile()
	}
	d.Profiles.Wait()
	d.mu.Lock()
	order := append([]string(nil), d.order...)
	uaLayers := append([]*proxy.Layer(nil), d.UALayers...)
	iaLayers := append([]*proxy.Layer(nil), d.IALayers...)
	d.mu.Unlock()
	// Emitters close first — their final snapshot flush needs the ops
	// node still listening (it is killed last, being served first).
	if d.fleetEmitter != nil {
		d.fleetEmitter.Close()
	}
	for _, addr := range order {
		d.mu.Lock()
		n := d.nodes[addr]
		d.mu.Unlock()
		if n != nil && n.emitter != nil {
			n.emitter.Close()
		}
	}
	var firstErr error
	for i := len(order) - 1; i >= 0; i-- {
		if err := d.Kill(order[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, l := range uaLayers {
		l.Close()
	}
	for _, l := range iaLayers {
		l.Close()
	}
	if err := d.Net.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
