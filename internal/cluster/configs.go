// Package cluster reproduces the paper's experimental deployments: the
// micro- and macro-benchmark configuration tables (Tables 2 and 3) and an
// in-process equivalent of the 27-node Kubernetes testbed — multiple proxy
// instances per layer, kube-proxy-style round-robin balancing, and a
// shared LRS — wired over the in-memory network.
package cluster

import "fmt"

// MicroConfig is one row of Table 2: a PProx-against-stub configuration.
type MicroConfig struct {
	// Name is the paper's configuration identifier (m1–m9).
	Name string
	// Encryption enables the PProx cryptographic path; off in m1.
	Encryption bool
	// SGX runs the crypto inside enclaves; off in m1–m2.
	SGX bool
	// ItemPseudonyms pseudonymizes item identifiers; off in m4 (the ★
	// in Table 2).
	ItemPseudonyms bool
	// Shuffle is S; 0 disables shuffling.
	Shuffle int
	// UA and IA are the instance counts per layer.
	UA, IA int
	// MaxRPS is the highest request rate the paper reports for this
	// configuration before saturation.
	MaxRPS int
	// Figures lists the paper figures using this configuration.
	Figures []string
}

// MicroConfigs returns Table 2 (m1–m9).
func MicroConfigs() []MicroConfig {
	return []MicroConfig{
		{Name: "m1", Encryption: false, SGX: false, ItemPseudonyms: false, Shuffle: 0, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"6"}},
		{Name: "m2", Encryption: true, SGX: false, ItemPseudonyms: true, Shuffle: 0, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"6"}},
		{Name: "m3", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 0, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"6", "7"}},
		{Name: "m4", Encryption: true, SGX: true, ItemPseudonyms: false, Shuffle: 0, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"6"}},
		{Name: "m5", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 5, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"7"}},
		{Name: "m6", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 10, UA: 1, IA: 1, MaxRPS: 250, Figures: []string{"7", "8"}},
		{Name: "m7", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 10, UA: 2, IA: 2, MaxRPS: 500, Figures: []string{"8"}},
		{Name: "m8", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 10, UA: 3, IA: 3, MaxRPS: 750, Figures: []string{"8"}},
		{Name: "m9", Encryption: true, SGX: true, ItemPseudonyms: true, Shuffle: 10, UA: 4, IA: 4, MaxRPS: 1000, Figures: []string{"8"}},
	}
}

// MacroConfig is one row of Table 3: a Harness deployment with or without
// PProx in front.
type MacroConfig struct {
	// Name is the paper's configuration identifier (b1–b4, f1–f4).
	Name string
	// Proxy deploys PProx in front of the LRS (f-configurations).
	Proxy bool
	// Shuffle is S for the proxy layers.
	Shuffle int
	// UA and IA are proxy instance counts (0 for baselines).
	UA, IA int
	// LRSFrontends is the number of Harness front-end nodes (the main
	// load carriers).
	LRSFrontends int
	// LRSSupport is the number of support nodes (three for
	// Elasticsearch, one shared by MongoDB and Spark in the paper).
	LRSSupport int
	// MaxRPS is the highest rate before saturation.
	MaxRPS int
}

// TotalNodes returns the configuration's node count as Table 3 reports it.
func (c MacroConfig) TotalNodes() int {
	return c.UA + c.IA + c.LRSFrontends + c.LRSSupport
}

// String renders the row compactly.
func (c MacroConfig) String() string {
	return fmt.Sprintf("%s: proxy=%v S=%d UA=%d IA=%d LRS=%d+%d maxRPS=%d",
		c.Name, c.Proxy, c.Shuffle, c.UA, c.IA, c.LRSFrontends, c.LRSSupport, c.MaxRPS)
}

// BaselineConfigs returns the b1–b4 rows of Table 3 (Harness alone).
func BaselineConfigs() []MacroConfig {
	return []MacroConfig{
		{Name: "b1", LRSFrontends: 3, LRSSupport: 4, MaxRPS: 250},
		{Name: "b2", LRSFrontends: 6, LRSSupport: 4, MaxRPS: 500},
		{Name: "b3", LRSFrontends: 9, LRSSupport: 4, MaxRPS: 750},
		{Name: "b4", LRSFrontends: 12, LRSSupport: 4, MaxRPS: 1000},
	}
}

// FullConfigs returns the f1–f4 rows of Table 3 (PProx + Harness, S=10).
func FullConfigs() []MacroConfig {
	return []MacroConfig{
		{Name: "f1", Proxy: true, Shuffle: 10, UA: 1, IA: 1, LRSFrontends: 3, LRSSupport: 4, MaxRPS: 250},
		{Name: "f2", Proxy: true, Shuffle: 10, UA: 2, IA: 2, LRSFrontends: 6, LRSSupport: 4, MaxRPS: 500},
		{Name: "f3", Proxy: true, Shuffle: 10, UA: 3, IA: 3, LRSFrontends: 9, LRSSupport: 4, MaxRPS: 750},
		{Name: "f4", Proxy: true, Shuffle: 10, UA: 4, IA: 4, LRSFrontends: 12, LRSSupport: 4, MaxRPS: 1000},
	}
}

// RPSPointsUpTo returns the request-rate sweep the paper uses for a
// configuration: 50 RPS plus multiples of 250 up to the configuration's
// maximum (e.g. Figures 8–10 plot 50, 250, 500, 750, 1000).
func RPSPointsUpTo(maxRPS int) []int {
	points := []int{50}
	for rps := 250; rps <= maxRPS; rps += 250 {
		points = append(points, rps)
	}
	return points
}

// MicroRPSPoints returns the 50–250 sweep of Figures 6–7.
func MicroRPSPoints() []int { return []int{50, 100, 150, 200, 250} }
