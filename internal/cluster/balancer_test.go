package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"pprox/internal/fleet"
)

// fakeDialer succeeds or refuses per address and counts dials.
type fakeDialer struct {
	dead  map[string]bool
	dials map[string]int
}

func newFakeDialer() *fakeDialer {
	return &fakeDialer{dead: map[string]bool{}, dials: map[string]int{}}
}

func (f *fakeDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	f.dials[addr]++
	if f.dead[addr] {
		return nil, errors.New("connection refused")
	}
	c1, c2 := net.Pipe()
	go c2.Close()
	return c1, nil
}

func ejectBackend(t *testing.T, b *Balancer, service, addr string, threshold int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < threshold*4; i++ {
		if conn, err := b.DialContext(ctx, "mem", service); err == nil {
			conn.Close()
		}
	}
	for _, ej := range b.Ejected(service) {
		if ej == addr {
			return
		}
	}
	t.Fatalf("backend %s never ejected; ejected = %v", addr, b.Ejected(service))
}

// TestRegisterPreservesBreakerStateAcrossReRegistration is the regression
// test for the wholesale-replacement bug: re-registering a service used to
// rebuild every breaker, silently re-admitting ejected backends.
func TestRegisterPreservesBreakerStateAcrossReRegistration(t *testing.T) {
	under := newFakeDialer()
	under.dead["b1"] = true
	b := NewBalancer(under)
	b.SetBreakerPolicy(2, time.Hour) // cooldown long enough to never re-trial
	b.Register("svc", "b1", "b2")

	ejectBackend(t, b, "svc", "b1", 2)
	deadDials := under.dials["b1"]

	// Re-register with one backend added: b1's ejection must survive.
	b.Register("svc", "b1", "b2", "b3")
	if ej := b.Ejected("svc"); len(ej) != 1 || ej[0] != "b1" {
		t.Fatalf("ejection state lost on re-registration: ejected = %v", ej)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		conn, err := b.DialContext(ctx, "mem", "svc")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	if under.dials["b1"] != deadDials {
		t.Fatalf("ejected backend dialed %d more times after re-registration",
			under.dials["b1"]-deadDials)
	}
	if under.dials["b3"] == 0 {
		t.Fatalf("new backend b3 never dialed")
	}
}

func TestRegisterDropsRemovedBackends(t *testing.T) {
	under := newFakeDialer()
	b := NewBalancer(under)
	b.Register("svc", "b1", "b2")
	b.Register("svc", "b2")
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		conn, err := b.DialContext(ctx, "mem", "svc")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	if under.dials["b1"] != 0 {
		t.Fatalf("removed backend b1 still dialed %d times", under.dials["b1"])
	}
}

// TestBalancerFollowsRouteSource wires the balancer to a fleet registry
// and verifies it tracks admissions, drains and deregistrations through
// the generation number — including breaker preservation across refreshes.
func TestBalancerFollowsRouteSource(t *testing.T) {
	under := newFakeDialer()
	b := NewBalancer(under)
	b.SetBreakerPolicy(2, time.Hour)

	reg := fleet.NewRegistry(fleet.Config{})
	reg.Register("svc", "b1")
	b.UseSource(reg, "svc")
	if got := b.Backends("svc"); len(got) != 1 || got[0] != "b1" {
		t.Fatalf("initial backends = %v, want [b1]", got)
	}

	// A pending registration must not appear until the epoch boundary.
	reg.Register("svc", "b2")
	if got := b.Backends("svc"); len(got) != 1 {
		t.Fatalf("pending endpoint routable: %v", got)
	}
	reg.EpochBoundary()
	if got := b.Backends("svc"); len(got) != 2 {
		t.Fatalf("backends after admission = %v, want [b1 b2]", got)
	}

	// Eject b1, then churn the set (admit b3): b1 must stay ejected.
	under.dead["b1"] = true
	ejectBackend(t, b, "svc", "b1", 2)
	reg.Register("svc", "b3")
	reg.EpochBoundary()
	if got := b.Backends("svc"); len(got) != 3 {
		t.Fatalf("backends = %v, want 3", got)
	}
	if ej := b.Ejected("svc"); len(ej) != 1 || ej[0] != "b1" {
		t.Fatalf("ejection lost across source refresh: %v", ej)
	}

	// Drain b2: the balancer stops handing it out on the next refresh.
	reg.BeginDrain("svc", "b2")
	for k := range under.dials {
		delete(under.dials, k)
	}
	ctx := context.Background()
	for i := 0; i < 6; i++ {
		conn, err := b.DialContext(ctx, "mem", "svc")
		if err != nil {
			t.Fatal(err)
		}
		conn.Close()
	}
	if under.dials["b2"] != 0 {
		t.Fatalf("draining backend b2 dialed %d times", under.dials["b2"])
	}
	if under.dials["b3"] == 0 {
		t.Fatalf("active backend b3 never dialed")
	}
}

func TestUseSourceKeepsStaticServicesStatic(t *testing.T) {
	under := newFakeDialer()
	b := NewBalancer(under)
	b.Register("static", "s1")
	reg := fleet.NewRegistry(fleet.Config{})
	reg.Register("svc", "b1")
	b.UseSource(reg, "svc")
	reg.Register("static", "ghost") // registry entry for a non-live service
	reg.EpochBoundary()
	if got := b.Backends("static"); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("static service followed the source: %v", got)
	}
}

func TestBreakerCooldownStillReAdmitsUnderSource(t *testing.T) {
	under := newFakeDialer()
	b := NewBalancer(under)
	b.SetBreakerPolicy(2, 20*time.Millisecond)
	reg := fleet.NewRegistry(fleet.Config{})
	reg.Register("svc", "b1")
	reg.Register("svc", "b2")
	reg.EpochBoundary()
	b.UseSource(reg, "svc")

	under.dead["b1"] = true
	ejectBackend(t, b, "svc", "b1", 2)
	under.dead["b1"] = false

	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for len(b.Ejected("svc")) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("recovered backend never re-admitted")
		}
		time.Sleep(5 * time.Millisecond)
		if conn, err := b.DialContext(ctx, "mem", "svc"); err == nil {
			conn.Close()
		}
	}
}
