package cluster

import (
	"context"
	"errors"
	"fmt"
	"time"

	"pprox/internal/autoscale"
	"pprox/internal/fleet"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/telemetry"
)

// ElasticSpec arms the closed autoscaling loop on a fleet deployment: a
// reconciler samples live signals and drives the deployed UA/IA pair
// count through AddPair/DrainPair, with every membership change
// epoch-aligned by the fleet registry.
type ElasticSpec struct {
	// Controller is the scaling policy; nil uses
	// autoscale.DefaultController().
	Controller *autoscale.Controller
	// Interval is the reconciler cadence. ≤ 0 never ticks on its own —
	// tests and operators drive Deployment.Reconciler.Tick directly.
	Interval time.Duration
	// DrainTimeout bounds one pair's graceful (soft) drain before the
	// hard phase refuses stragglers. Default: 2×ShuffleTimeout + 5s.
	DrainTimeout time.Duration
}

// Pairs implements fleet.Driver: the live UA/IA pair count, counting
// pairs still pending admission but not pairs already draining (those
// are on their way out and no longer capacity).
func (d *Deployment) Pairs() int {
	if d.Registry == nil {
		d.mu.Lock()
		defer d.mu.Unlock()
		return len(d.UALayers)
	}
	return d.Registry.Count("ua", fleet.StatePending) +
		d.Registry.Count("ua", fleet.StateActive)
}

// AddPair implements fleet.Driver: it provisions and serves one new
// UA/IA pair — same key material, same options as the initial instances
// (§5: every instance of a layer shares the layer's secrets after
// attestation) — and registers it with the fleet registry. The pair
// enters PENDING and becomes routable only at the next shuffle-epoch
// boundary (or via the reconciler's idle admission), so scale-up can
// never siphon messages out of an epoch that is still filling.
func (d *Deployment) AddPair() error {
	if d.Registry == nil {
		return errors.New("cluster: fleet mode not enabled")
	}
	d.mu.Lock()
	iaIdx, uaIdx := d.nextIA, d.nextUA
	d.nextIA++
	d.nextUA++
	d.mu.Unlock()
	spec := d.spec

	// IA first: by the time the UA half can be admitted, its next hop
	// already serves.
	iaAddr := fmt.Sprintf("ia-%d", iaIdx)
	instOpts := d.iaOpts
	if spec.Cache {
		cache := reccache.New(reccache.Config{TTL: spec.CacheTTL, MaxPages: spec.CachePages})
		instOpts.Cache = cache
		d.mu.Lock()
		d.RecCaches = append(d.RecCaches, cache)
		d.mu.Unlock()
	}
	ia, err := d.newLayer(proxy.RoleIA, spec, d.platform, d.attestation, instOpts, "http://lrs", d.interClient)
	if err != nil {
		return err
	}
	if err := d.serveLayer(iaAddr, ia, spec); err != nil {
		ia.Close()
		return err
	}
	d.mu.Lock()
	d.IALayers = append(d.IALayers, ia)
	d.mu.Unlock()
	d.Registry.Register("ia", iaAddr)

	uaAddr := fmt.Sprintf("ua-%d", uaIdx)
	ua, err := d.newLayer(proxy.RoleUA, spec, d.platform, d.attestation, d.iaOpts, "http://ia", d.interClient)
	if err != nil {
		return err
	}
	if err := d.serveLayer(uaAddr, ua, spec); err != nil {
		ua.Close()
		return err
	}
	d.mu.Lock()
	d.UALayers = append(d.UALayers, ua)
	d.mu.Unlock()
	d.Registry.Register("ua", uaAddr)
	return nil
}

// DrainPair implements fleet.Driver: DrainPairContext bounded by the
// elastic spec's DrainTimeout (default 2×ShuffleTimeout + 5s — long
// enough for the victims' final timer flush plus the in-flight tail).
func (d *Deployment) DrainPair() error {
	timeout := 2*d.spec.ShuffleTimeout + 5*time.Second
	if d.spec.Elastic != nil && d.spec.Elastic.DrainTimeout > 0 {
		timeout = d.spec.Elastic.DrainTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return d.DrainPairContext(ctx)
}

// DrainPairContext retires one UA/IA pair without ever splitting a
// shuffle epoch:
//
//  1. The registry moves both endpoints to DRAINING — the balancer stops
//     routing new connections to them at its next generation refresh.
//  2. Both layers soft-drain: they keep serving, but answer with
//     Connection: close so pooled keep-alive connections evict
//     themselves. (Pooled hopwire frame links carry no such signal;
//     they drain at the hard phase below.)
//  3. AwaitDrained waits — UA before IA, matching the request flow —
//     until in-flight requests and the shuffler buffer are both empty.
//     The final buffered epoch leaves through the shuffler's own timer
//     flush: one whole batch, never a forced sub-S release. If the
//     context expires first, the hard phase (RefuseNew) rejects
//     stragglers and a short grace period lets in-flight work finish;
//     an instance torn down still-dirty is recorded in its drain report
//     and trips the auditor's violation check.
//  4. Only then do the endpoints deregister and the instances shut
//     down, their final telemetry snapshot flushed to the collector.
//
// The newest active pair is the victim, never the last one: the fleet
// floor is one routable pair per layer.
func (d *Deployment) DrainPairContext(ctx context.Context) error {
	if d.Registry == nil {
		return errors.New("cluster: fleet mode not enabled")
	}
	d.drainMu.Lock()
	defer d.drainMu.Unlock()

	pick := func(service string) (string, *proxy.Layer, error) {
		routable := d.Registry.Routable(service)
		if len(routable) <= 1 {
			return "", nil, fmt.Errorf("cluster: cannot drain %s below one routable instance", service)
		}
		addr := routable[len(routable)-1]
		d.mu.Lock()
		layer := d.layers[addr]
		d.mu.Unlock()
		if layer == nil {
			return "", nil, fmt.Errorf("cluster: no layer serves %s", addr)
		}
		return addr, layer, nil
	}
	uaAddr, ua, err := pick("ua")
	if err != nil {
		return err
	}
	iaAddr, ia, err := pick("ia")
	if err != nil {
		return err
	}

	d.Registry.BeginDrain("ua", uaAddr)
	d.Registry.BeginDrain("ia", iaAddr)
	ua.BeginDrain()
	ia.BeginDrain()

	await := func(l *proxy.Layer) {
		if l.AwaitDrained(ctx) == nil {
			return
		}
		l.RefuseNew()
		grace, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = l.AwaitDrained(grace)
	}
	await(ua)
	await(ia)

	d.Registry.Deregister("ua", uaAddr)
	d.Registry.Deregister("ia", iaAddr)
	for _, addr := range []string{uaAddr, iaAddr} {
		d.mu.Lock()
		n := d.nodes[addr]
		d.mu.Unlock()
		if n != nil && n.emitter != nil {
			// Close flushes the final snapshot: the collector sees the
			// instance leave rather than go stale.
			n.emitter.Close()
		}
		if kerr := d.Kill(addr); kerr != nil && err == nil {
			err = kerr
		}
	}
	ua.Close()
	ia.Close()

	d.mu.Lock()
	delete(d.layers, uaAddr)
	delete(d.layers, iaAddr)
	d.UALayers = removeLayer(d.UALayers, ua)
	d.IALayers = removeLayer(d.IALayers, ia)
	d.drained = append(d.drained, ua, ia)
	d.mu.Unlock()

	if err != nil {
		return err
	}
	if !ua.DrainReport().Clean || !ia.DrainReport().Clean {
		return fmt.Errorf("cluster: pair %s/%s drained dirty", uaAddr, iaAddr)
	}
	return nil
}

func removeLayer(layers []*proxy.Layer, l *proxy.Layer) []*proxy.Layer {
	for i, cand := range layers {
		if cand == l {
			return append(layers[:i], layers[i+1:]...)
		}
	}
	return layers
}

// dirtyDrain reports whether any retired instance split a shuffle epoch
// on its way out — the auditor's fleet-churn violation check.
func (d *Deployment) dirtyDrain() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range d.drained {
		if !l.DrainReport().Clean {
			return true
		}
	}
	return false
}

// FleetOverview assembles the current fleet view: membership with
// lifecycle states, current and desired pair counts, and the recent
// scaling decisions. Nil without Spec.Fleet.
func (d *Deployment) FleetOverview() *fleet.Overview {
	if d.Registry == nil {
		return nil
	}
	return fleet.BuildOverview(d.Registry, d.Reconciler, d.Pairs())
}

// startReconciler wires the autoscaling loop: live signals from the
// deployment's own /metrics registry (UA request rate, shuffle
// occupancy), fleet goodput from the telemetry collector when one is
// deployed, decisions actuated through the deployment itself.
func (d *Deployment) startReconciler(spec Spec) error {
	ctrl := spec.Elastic.Controller
	if ctrl == nil {
		ctrl = autoscale.DefaultController()
	}
	var goodput func() float64
	if d.Ops != nil {
		ops := d.Ops
		goodput = func() float64 { return ops.Fleet().Rollups.GoodputRPS }
	}
	src := autoscale.NewSignalSource(autoscale.SignalSourceConfig{
		Snapshot:    d.Metrics.Snapshot,
		ShuffleSize: spec.Shuffle,
		Goodput:     goodput,
	})
	var logf func(string, ...any)
	if spec.Logger != nil {
		lg := spec.Logger.With("node", "fleet")
		logf = func(format string, args ...any) { lg.Info(fmt.Sprintf(format, args...)) }
	}
	rec, err := fleet.NewReconciler(fleet.ReconcilerConfig{
		Controller: ctrl,
		Signals:    func() autoscale.Signals { return src.Sample(time.Now()) },
		Driver:     d,
		Registry:   d.Registry,
		// Idle admission waits out one flush interval: if no epoch
		// boundary fired in that long, no epoch is filling anywhere.
		AdmitIdleAfter: spec.ShuffleTimeout,
		Logger:         logf,
	})
	if err != nil {
		return err
	}
	d.Reconciler = rec
	if spec.Elastic.Interval > 0 {
		d.stopReconcile = rec.Run(spec.Elastic.Interval)
	}
	return nil
}

// startFleetTelemetry adds the control-plane emitter: the deployment
// hosts the fleet registry, so it is the one node whose snapshots carry
// the fleet overview (membership and scaling decisions — endpoint-
// granular, never request-granular).
func (d *Deployment) startFleetTelemetry() error {
	pusher, err := telemetry.NewClient(d.Net, d.spec.OpsAddr)
	if err != nil {
		return err
	}
	em, err := telemetry.NewEmitter(telemetry.EmitterConfig{
		Node:     "fleet-0",
		Role:     "fleet",
		Registry: d.Metrics,
		Filter:   nodeSeriesFilter("fleet-0"),
		Fleet:    d.FleetOverview,
		Pusher:   pusher,
		Interval: d.telemetryInterval(),
		Logger:   d.spec.Logger,
	})
	if err != nil {
		return err
	}
	d.fleetEmitter = em
	return nil
}

var _ fleet.Driver = (*Deployment)(nil)
