package cluster_test

import (
	"encoding/json"
	"io"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/telemetry"
)

// waitFleet polls the deployed collector until cond accepts a fleet
// report or the deadline passes, returning the last report either way.
func waitFleet(t *testing.T, d *cluster.Deployment, cond func(telemetry.FleetReport) bool, what string) telemetry.FleetReport {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var fleet telemetry.FleetReport
	for time.Now().Before(deadline) {
		fleet = d.Ops.Fleet()
		if cond(fleet) {
			return fleet
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last fleet: %+v", what, fleet)
	return fleet
}

func fleetNode(fleet telemetry.FleetReport, name string) (telemetry.NodeStatus, bool) {
	for _, n := range fleet.Nodes {
		if n.Node == name {
			return n, true
		}
	}
	return telemetry.NodeStatus{}, false
}

// TestOpsFleetTelemetryEndToEnd deploys the full hopwire pipeline with a
// pprox-ops collector, drives traffic, and checks the fleet view: every
// node fresh with sane rollups, a killed node stale within two epochs
// and excluded from rollups, and a restarted node fresh again.
func TestOpsFleetTelemetryEndToEnd(t *testing.T) {
	const s = 8
	spec := hopwireSpec(s)
	spec.Audit = &audit.Config{}
	spec.OpsAddr = "ops-0"
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Ops == nil {
		t.Fatal("deployment with OpsAddr has no collector")
	}

	const epochs = 3
	for b := 0; b < epochs; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("epoch %d: %d gets failed", b, failed)
		}
	}

	// Every node pushes over the in-memory network into the ops node;
	// with heartbeats on, all three report fresh with multiple snapshots.
	fleet := waitFleet(t, d, func(f telemetry.FleetReport) bool {
		if f.Fresh != 3 || f.Stale != 0 {
			return false
		}
		for _, n := range f.Nodes {
			if n.Snapshots < 2 {
				return false
			}
		}
		return f.Rollups.GoodputRPS > 0
	}, "3 fresh nodes with goodput")

	ua, ok := fleetNode(fleet, "ua-0")
	if !ok || ua.Role != "ua" {
		t.Fatalf("no ua-0 in fleet: %+v", fleet.Nodes)
	}
	if ua.AuditState == "" {
		t.Error("ua-0 reports no audit state despite a deployed auditor")
	}
	if w := fleet.Rollups.WorstEpochBatch; w <= 0 || w > s {
		t.Errorf("worst epoch batch = %d, want in (0, %d]", w, s)
	}
	if q, ok := fleet.Rollups.StageQuantiles["serve"]; !ok || q.Count == 0 {
		t.Errorf("no merged serve-stage quantiles: %+v", fleet.Rollups.StageQuantiles)
	}
	if fleet.Rollups.BuildSkew {
		t.Errorf("one binary, build skew reported: %v", fleet.Rollups.BuildSHAs)
	}
	if _, ok := fleet.Rollups.States["ua-0"]; !ok {
		t.Errorf("state matrix missing ua-0: %+v", fleet.Rollups.States)
	}
	// The snapshots rode the telemetry plane itself — transport counters
	// prove pushes happened.
	if ua.Transport.Pushes == 0 {
		t.Error("ua-0 transport reports zero pushes")
	}

	// The same report is served over HTTP on the ops node.
	httpFleet := fetchFleetHTTP(t, d, spec.OpsAddr)
	if len(httpFleet.Nodes) != 3 {
		t.Errorf("/fleet over HTTP lists %d nodes, want 3", len(httpFleet.Nodes))
	}

	// Kill the LRS: its emitter pauses with it, and silence past two
	// epoch gaps turns it stale — excluded from rollups while the UA and
	// IA heartbeats keep those fresh.
	if err := d.Kill("lrs-0"); err != nil {
		t.Fatal(err)
	}
	fleet = waitFleet(t, d, func(f telemetry.FleetReport) bool {
		n, ok := fleetNode(f, "lrs-0")
		return ok && n.Stale && f.Fresh == 2
	}, "killed lrs-0 stale with 2 fresh")
	if _, ok := fleet.Rollups.States["lrs-0"]; ok {
		t.Error("stale lrs-0 still in the rollup state matrix")
	}

	// Restart: the resumed emitter pushes immediately, clearing
	// staleness within one push rather than one epoch.
	if err := d.Restart("lrs-0"); err != nil {
		t.Fatal(err)
	}
	waitFleet(t, d, func(f telemetry.FleetReport) bool {
		n, ok := fleetNode(f, "lrs-0")
		return ok && !n.Stale && f.Fresh == 3
	}, "restarted lrs-0 fresh again")
}

// fetchFleetHTTP reads the ops node's /fleet endpoint through the
// deployment's network.
func fetchFleetHTTP(t *testing.T, d *cluster.Deployment, opsAddr string) telemetry.FleetReport {
	t.Helper()
	cl := d.HTTPClient(5 * time.Second)
	resp, err := cl.Get("http://" + opsAddr + telemetry.FleetPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /fleet = %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var fleet telemetry.FleetReport
	if err := json.Unmarshal(body, &fleet); err != nil {
		t.Fatalf("decode /fleet: %v", err)
	}
	return fleet
}

// TestOpsCollectorSurvivesDeploymentTeardown: Close flushes every
// emitter's final snapshot before node listeners die, and the ops node
// (brought up first) is torn down last so those flushes land.
func TestOpsCollectorSurvivesDeploymentTeardown(t *testing.T) {
	const s = 4
	spec := hopwireSpec(s)
	spec.OpsAddr = "ops-0"
	d, err := cluster.Deploy(spec)
	if err != nil {
		t.Fatal(err)
	}
	if failed := getBatch(t, d, s, 0); failed != 0 {
		t.Fatalf("%d gets failed", failed)
	}
	waitFleet(t, d, func(f telemetry.FleetReport) bool {
		return len(f.Nodes) == 3
	}, "3 nodes reporting")
	before := d.Ops.Fleet()
	seqs := make(map[string]uint64, len(before.Nodes))
	for _, n := range before.Nodes {
		seqs[n.Node] = n.Seq
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	after := d.Ops.Fleet()
	if len(after.Nodes) != len(before.Nodes) {
		t.Fatalf("nodes after teardown = %d, want %d", len(after.Nodes), len(before.Nodes))
	}
	for _, n := range after.Nodes {
		if n.Seq <= seqs[n.Node] {
			t.Errorf("node %s: no final flush at teardown (seq %d, was %d)", n.Node, n.Seq, seqs[n.Node])
		}
	}
}

// TestOpsAddrCollision rejects an ops address that shadows a node.
func TestOpsAddrCollision(t *testing.T) {
	spec := hopwireSpec(4)
	spec.OpsAddr = "ua-0"
	if _, err := cluster.Deploy(spec); err == nil {
		t.Fatal("Deploy accepted OpsAddr colliding with a node address")
	}
}
