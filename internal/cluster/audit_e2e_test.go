package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/obslog"
	"pprox/internal/ppcrypto"
)

// getBatch issues size concurrent gets and waits for them, so the batch
// forms one shuffle epoch; it returns how many failed.
func getBatch(t *testing.T, d *cluster.Deployment, size, tag int) int {
	t.Helper()
	cl := d.Client(10 * time.Second)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for i := 0; i < size; i++ {
		u := fmt.Sprintf("audit-user-%d-%d", tag, i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := cl.Get(ctx, u); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return failed
}

// TestAuditorFlagsInjectedUnderfilledEpoch is the end-to-end SLO drill:
// a fault injector swallows part of one batch before the UA shuffler, so
// its survivors leave on the flush timer as an under-filled epoch, and
// the deployed auditor must transition to violated — observable through
// the same /metrics and /privacy endpoints an operator scrapes.
func TestAuditorFlagsInjectedUnderfilledEpoch(t *testing.T) {
	const s = 8
	const dropped = 3
	inj := faults.NewInjector(1)
	defer inj.Close()

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		Audit:          &audit.Config{},
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr == "ua-0" {
				return inj.Middleware(h)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for b := 0; b < 2; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("healthy batch %d: %d gets failed", b, failed)
		}
	}
	if st := d.Auditor.State(); st != audit.StateOK {
		t.Fatalf("auditor state after healthy traffic = %v, want ok", st)
	}

	inj.Arm(faults.Rule{Kind: faults.KindError, Status: http.StatusServiceUnavailable, Count: dropped})
	if failed := getBatch(t, d, s, 2); failed != dropped {
		t.Fatalf("faulty batch: %d gets failed, want %d", failed, dropped)
	}
	// The survivors leave on the flush timer; wait out the IA hop too.
	time.Sleep(400 * time.Millisecond)

	if st := d.Auditor.State(); st != audit.StateViolated {
		t.Fatalf("auditor state after under-filled epoch = %v, want violated", st)
	}

	// The operator's view over the wire.
	httpClient := d.HTTPClient(5 * time.Second)
	resp, err := httpClient.Get("http://ua-0/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	scraped := metrics.ParseExposition(string(body))
	if v := scraped["pprox_audit_slo_state"]; v != float64(audit.StateViolated) {
		t.Errorf("pprox_audit_slo_state = %g, want %d", v, audit.StateViolated)
	}
	if v := scraped["pprox_audit_underfilled_epochs_total"]; v < 1 {
		t.Errorf("pprox_audit_underfilled_epochs_total = %g, want ≥ 1", v)
	}
	if v := scraped["pprox_audit_violations_total"]; v < 1 {
		t.Errorf("pprox_audit_violations_total = %g, want ≥ 1", v)
	}

	resp, err = httpClient.Get("http://ua-0" + audit.PrivacyPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep audit.Report
	err = json.NewDecoder(resp.Body).Decode(&rep)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.State != audit.StateViolated.String() {
		t.Errorf("/privacy state = %q, want violated", rep.State)
	}
	if want := s - dropped; rep.WorstEpochBatch != want {
		t.Errorf("/privacy worst epoch batch = %d, want %d", rep.WorstEpochBatch, want)
	}
}

// syncWriter is a mutex-guarded sink for concurrent structured logs.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestStructuredLogsRedactIdentifiers runs a full workload with the
// deployment-wide logger at debug level — the chattiest configuration —
// and asserts the combined output of every component never contains a
// raw user ID, item ID, or pseudonym.
func TestStructuredLogsRedactIdentifiers(t *testing.T) {
	const s = 4
	var sink syncWriter
	logger := obslog.New(&sink, "cluster", obslog.ParseLevel("debug"))

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		Audit:          &audit.Config{},
		Logger:         logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	ctx := context.Background()
	var users, items []string
	for b := 0; b < 2; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := fmt.Sprintf("log-secret-user-%d-%d", b, i)
			it := fmt.Sprintf("log-secret-item-%d-%d", b, i)
			users = append(users, u)
			items = append(items, it)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := cl.Post(ctx, u, it, ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}()
		}
		wg.Wait()
	}
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := users[b*s+i]
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := cl.Get(ctx, u); err != nil {
					t.Errorf("get: %v", err)
				}
			}()
		}
		wg.Wait()
	}

	logs := sink.String()
	if !strings.Contains(logs, "event ingested") {
		t.Fatalf("debug logging produced no ingestion lines — redaction untested:\n%s", logs)
	}
	for _, u := range users {
		if strings.Contains(logs, u) {
			t.Errorf("structured logs contain raw user ID %q", u)
		}
		p, err := ppcrypto.Pseudonymize(d.UAKeys.Permanent, u)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(logs, message.Encode64(p)) {
			t.Errorf("structured logs contain the pseudonym of %q", u)
		}
	}
	for _, it := range items {
		if strings.Contains(logs, it) {
			t.Errorf("structured logs contain raw item ID %q", it)
		}
		p, err := ppcrypto.Pseudonymize(d.IAKeys.Permanent, it)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(logs, message.Encode64(p)) {
			t.Errorf("structured logs contain the pseudonym of item %q", it)
		}
	}
}
