package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pprox/internal/transport"
)

// Balancer is a connection-level round-robin load balancer over the
// in-memory network, standing in for the kube-proxy service VIPs the paper
// uses ("We implement horizontal scaling of PProx proxy layers and of all
// Harness modules using Kubernetes integrated load balancing mechanisms
// (kube-proxy module)", §7.2).
//
// It is a transport.Dialer: dialing a registered service name opens a
// connection to the service's next backend in round-robin order;
// unregistered names pass through to the underlying network.
type Balancer struct {
	under transport.Dialer

	mu       sync.Mutex
	services map[string]*service
}

type service struct {
	backends []string
	next     atomic.Uint64
}

// NewBalancer wraps a dialer (usually the memnet Network).
func NewBalancer(under transport.Dialer) *Balancer {
	return &Balancer{under: under, services: make(map[string]*service)}
}

// Register maps a service name to its backend addresses.
func (b *Balancer) Register(name string, backends ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.services[name] = &service{backends: append([]string(nil), backends...)}
}

// DialContext implements transport.Dialer with round-robin backend
// selection per connection. A backend that refuses the connection is
// skipped and the next one tried (kube-proxy's failure handling for dead
// endpoints); the last error surfaces only when every backend fails.
func (b *Balancer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	name := addr
	if host, _, err := net.SplitHostPort(addr); err == nil {
		name = host
	}
	b.mu.Lock()
	svc, ok := b.services[name]
	b.mu.Unlock()
	if !ok {
		return b.under.DialContext(ctx, network, addr)
	}
	if len(svc.backends) == 0 {
		return nil, fmt.Errorf("cluster: service %q has no backends", name)
	}
	var lastErr error
	for attempt := 0; attempt < len(svc.backends); attempt++ {
		backend := svc.backends[int(svc.next.Add(1)-1)%len(svc.backends)]
		conn, err := b.under.DialContext(ctx, network, backend)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("cluster: service %q: all backends failed: %w", name, lastErr)
}

var _ transport.Dialer = (*Balancer)(nil)
