package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/metrics"
	"pprox/internal/resilience"
	"pprox/internal/transport"
)

// Balancer is a connection-level round-robin load balancer over the
// in-memory network, standing in for the kube-proxy service VIPs the paper
// uses ("We implement horizontal scaling of PProx proxy layers and of all
// Harness modules using Kubernetes integrated load balancing mechanisms
// (kube-proxy module)", §7.2).
//
// It is a transport.Dialer: dialing a registered service name opens a
// connection to the service's next backend in round-robin order;
// unregistered names pass through to the underlying network.
//
// With a breaker policy set, each backend carries its own circuit breaker
// in trial (half-open) mode — the dial itself is the cheapest possible
// health probe. A backend whose dials keep failing is ejected from the
// rotation; after the cooldown one dial per cooldown is admitted as a
// trial, and a successful trial re-admits the backend.
//
// Backend sets are either static (Register) or live (UseSource): a
// source-driven service re-reads its backend list from the fleet
// registry's routable set whenever the registry's generation number
// moves. Either way, a backend that survives an update keeps its breaker
// — ejection state is the balancer's accumulated knowledge about a
// backend's health, and a membership change elsewhere in the set is no
// evidence about this backend.
type Balancer struct {
	under transport.Dialer

	mu       sync.Mutex
	services map[string]*service
	src      RouteSource
	// breaker policy applied to services registered afterwards; zero
	// threshold disables ejection.
	threshold int
	cooldown  time.Duration
}

// RouteSource is a live backend-set provider (fleet.Registry). Generation
// must be cheap — the balancer polls it on every dial of a source-driven
// service.
type RouteSource interface {
	// Generation is the routable-set version; any change moves it.
	Generation() uint64
	// Routable returns the service's currently routable backends.
	Routable(service string) []string
}

// backend pairs an address with its breaker so updates can preserve
// breaker state per address rather than per slice position.
type backend struct {
	addr string
	br   *resilience.Breaker
}

type service struct {
	// backends is rebuilt wholesale on every update, so a slice value
	// read under the lock stays a consistent immutable snapshot after
	// the lock is released.
	backends []*backend
	next     atomic.Uint64
	// lastGen is the source generation backends was built from; compared
	// against RouteSource.Generation per dial for source-driven services.
	lastGen atomic.Uint64
	// live marks the service as source-driven.
	live bool
}

// NewBalancer wraps a dialer (usually the memnet Network).
func NewBalancer(under transport.Dialer) *Balancer {
	return &Balancer{under: under, services: make(map[string]*service)}
}

// SetBreakerPolicy arms per-backend circuit breakers on services
// registered from now on. threshold ≤ 0 disables ejection.
func (b *Balancer) SetBreakerPolicy(threshold int, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.threshold = threshold
	b.cooldown = cooldown
}

// Register maps a service name to its backend addresses. Re-registering
// a name updates the backend set in place: surviving backends keep their
// breaker (and thus their ejection state), new backends get a fresh one.
func (b *Balancer) Register(name string, backends ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setBackendsLocked(b.serviceLocked(name), backends)
}

// UseSource routes the named services from a live RouteSource: their
// backend sets follow the source's routable sets, refreshed whenever the
// source generation moves. Services keep any statically registered
// backends until the first refresh.
func (b *Balancer) UseSource(src RouteSource, services ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.src = src
	gen := src.Generation()
	for _, name := range services {
		svc := b.serviceLocked(name)
		svc.live = true
		b.setBackendsLocked(svc, src.Routable(name))
		svc.lastGen.Store(gen)
	}
}

// serviceLocked returns the named service, creating it if needed.
func (b *Balancer) serviceLocked(name string) *service {
	svc := b.services[name]
	if svc == nil {
		svc = &service{}
		b.services[name] = svc
	}
	return svc
}

// setBackendsLocked replaces a service's backend set, carrying breakers
// over by address.
func (b *Balancer) setBackendsLocked(svc *service, addrs []string) {
	prev := make(map[string]*backend, len(svc.backends))
	for _, bk := range svc.backends {
		prev[bk.addr] = bk
	}
	next := make([]*backend, 0, len(addrs))
	for _, addr := range addrs {
		if bk := prev[addr]; bk != nil {
			next = append(next, bk)
			continue
		}
		// Trial mode (no probe function): the next dial after the
		// cooldown is the health probe.
		next = append(next, &backend{addr: addr, br: resilience.NewBreaker(b.threshold, b.cooldown, nil)})
	}
	svc.backends = next
}

// snapshot returns the service's current backend slice, refreshing a
// source-driven service first if the source generation moved. The
// returned slice is immutable.
func (b *Balancer) snapshot(name string) (*service, []*backend) {
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := b.services[name]
	if svc == nil {
		return nil, nil
	}
	if svc.live && b.src != nil {
		if gen := b.src.Generation(); gen != svc.lastGen.Load() {
			b.setBackendsLocked(svc, b.src.Routable(name))
			svc.lastGen.Store(gen)
		}
	}
	return svc, svc.backends
}

// DialContext implements transport.Dialer with round-robin backend
// selection per connection. A backend that refuses the connection is
// skipped and the next one tried (kube-proxy's failure handling for dead
// endpoints); ejected backends are skipped without dialing; the last error
// surfaces only when every backend fails.
func (b *Balancer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	name := addr
	if host, _, err := net.SplitHostPort(addr); err == nil {
		name = host
	}
	svc, backends := b.snapshot(name)
	if svc == nil {
		return b.under.DialContext(ctx, network, addr)
	}
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: service %q has no backends", name)
	}
	var lastErr error
	ejected := 0
	for attempt := 0; attempt < len(backends); attempt++ {
		i := int(svc.next.Add(1)-1) % len(backends)
		bk := backends[i]
		if !bk.br.Allow() {
			ejected++
			continue
		}
		conn, err := b.under.DialContext(ctx, network, bk.addr)
		bk.br.Report(err == nil)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil && ejected > 0 {
		return nil, fmt.Errorf("cluster: service %q: all backends ejected", name)
	}
	return nil, fmt.Errorf("cluster: service %q: all backends failed: %w", name, lastErr)
}

// Backends returns the service's current backend addresses, for tests and
// operational visibility.
func (b *Balancer) Backends(name string) []string {
	_, backends := b.snapshot(name)
	out := make([]string, len(backends))
	for i, bk := range backends {
		out[i] = bk.addr
	}
	return out
}

// Ejected returns the currently ejected backends of a service, for tests
// and operational visibility.
func (b *Balancer) Ejected(name string) []string {
	b.mu.Lock()
	svc := b.services[name]
	var backends []*backend
	if svc != nil {
		backends = svc.backends
	}
	b.mu.Unlock()
	var out []string
	for _, bk := range backends {
		if bk.br.State() == resilience.StateOpen {
			out = append(out, bk.addr)
		}
	}
	return out
}

// stats sums breaker counters across every backend of every service.
func (b *Balancer) stats() (ejections, readmissions uint64, ejectedNow int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, svc := range b.services {
		for _, bk := range svc.backends {
			opens, readmits := bk.br.Stats()
			ejections += opens
			readmissions += readmits
			if bk.br.State() == resilience.StateOpen {
				ejectedNow++
			}
		}
	}
	return ejections, readmissions, ejectedNow
}

// RegisterMetrics exposes the balancer's ejection counters:
// pprox_balancer_ejections_total, pprox_balancer_readmissions_total, and
// the pprox_balancer_ejected_backends gauge.
func (b *Balancer) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("pprox_balancer_ejections_total",
		"Backends ejected from rotation after repeated dial failures.", func() float64 {
			ejections, _, _ := b.stats()
			return float64(ejections)
		})
	r.CounterFunc("pprox_balancer_readmissions_total",
		"Ejected backends re-admitted after a successful trial dial.", func() float64 {
			_, readmissions, _ := b.stats()
			return float64(readmissions)
		})
	r.Gauge("pprox_balancer_ejected_backends",
		"Backends currently out of rotation.", func() float64 {
			_, _, ejectedNow := b.stats()
			return float64(ejectedNow)
		})
}

var _ transport.Dialer = (*Balancer)(nil)
