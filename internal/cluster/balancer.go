package cluster

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/metrics"
	"pprox/internal/resilience"
	"pprox/internal/transport"
)

// Balancer is a connection-level round-robin load balancer over the
// in-memory network, standing in for the kube-proxy service VIPs the paper
// uses ("We implement horizontal scaling of PProx proxy layers and of all
// Harness modules using Kubernetes integrated load balancing mechanisms
// (kube-proxy module)", §7.2).
//
// It is a transport.Dialer: dialing a registered service name opens a
// connection to the service's next backend in round-robin order;
// unregistered names pass through to the underlying network.
//
// With a breaker policy set, each backend carries its own circuit breaker
// in trial (half-open) mode — the dial itself is the cheapest possible
// health probe. A backend whose dials keep failing is ejected from the
// rotation; after the cooldown one dial per cooldown is admitted as a
// trial, and a successful trial re-admits the backend.
type Balancer struct {
	under transport.Dialer

	mu       sync.Mutex
	services map[string]*service
	// breaker policy applied to services registered afterwards; zero
	// threshold disables ejection.
	threshold int
	cooldown  time.Duration
}

type service struct {
	backends []string
	breakers []*resilience.Breaker // parallel to backends; entries may be nil
	next     atomic.Uint64
}

// NewBalancer wraps a dialer (usually the memnet Network).
func NewBalancer(under transport.Dialer) *Balancer {
	return &Balancer{under: under, services: make(map[string]*service)}
}

// SetBreakerPolicy arms per-backend circuit breakers on services
// registered from now on. threshold ≤ 0 disables ejection.
func (b *Balancer) SetBreakerPolicy(threshold int, cooldown time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.threshold = threshold
	b.cooldown = cooldown
}

// Register maps a service name to its backend addresses.
func (b *Balancer) Register(name string, backends ...string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	svc := &service{backends: append([]string(nil), backends...)}
	svc.breakers = make([]*resilience.Breaker, len(svc.backends))
	for i := range svc.breakers {
		// Trial mode (no probe function): the next dial after the
		// cooldown is the health probe.
		svc.breakers[i] = resilience.NewBreaker(b.threshold, b.cooldown, nil)
	}
	b.services[name] = svc
}

// DialContext implements transport.Dialer with round-robin backend
// selection per connection. A backend that refuses the connection is
// skipped and the next one tried (kube-proxy's failure handling for dead
// endpoints); ejected backends are skipped without dialing; the last error
// surfaces only when every backend fails.
func (b *Balancer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	name := addr
	if host, _, err := net.SplitHostPort(addr); err == nil {
		name = host
	}
	b.mu.Lock()
	svc, ok := b.services[name]
	b.mu.Unlock()
	if !ok {
		return b.under.DialContext(ctx, network, addr)
	}
	if len(svc.backends) == 0 {
		return nil, fmt.Errorf("cluster: service %q has no backends", name)
	}
	var lastErr error
	ejected := 0
	for attempt := 0; attempt < len(svc.backends); attempt++ {
		i := int(svc.next.Add(1)-1) % len(svc.backends)
		br := svc.breakers[i]
		if !br.Allow() {
			ejected++
			continue
		}
		conn, err := b.under.DialContext(ctx, network, svc.backends[i])
		br.Report(err == nil)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	if lastErr == nil && ejected > 0 {
		return nil, fmt.Errorf("cluster: service %q: all backends ejected", name)
	}
	return nil, fmt.Errorf("cluster: service %q: all backends failed: %w", name, lastErr)
}

// Ejected returns the currently ejected backends of a service, for tests
// and operational visibility.
func (b *Balancer) Ejected(name string) []string {
	b.mu.Lock()
	svc := b.services[name]
	b.mu.Unlock()
	if svc == nil {
		return nil
	}
	var out []string
	for i, br := range svc.breakers {
		if br.State() == resilience.StateOpen {
			out = append(out, svc.backends[i])
		}
	}
	return out
}

// stats sums breaker counters across every backend of every service.
func (b *Balancer) stats() (ejections, readmissions uint64, ejectedNow int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, svc := range b.services {
		for _, br := range svc.breakers {
			opens, readmits := br.Stats()
			ejections += opens
			readmissions += readmits
			if br.State() == resilience.StateOpen {
				ejectedNow++
			}
		}
	}
	return ejections, readmissions, ejectedNow
}

// RegisterMetrics exposes the balancer's ejection counters:
// pprox_balancer_ejections_total, pprox_balancer_readmissions_total, and
// the pprox_balancer_ejected_backends gauge.
func (b *Balancer) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("pprox_balancer_ejections_total",
		"Backends ejected from rotation after repeated dial failures.", func() float64 {
			ejections, _, _ := b.stats()
			return float64(ejections)
		})
	r.CounterFunc("pprox_balancer_readmissions_total",
		"Ejected backends re-admitted after a successful trial dial.", func() float64 {
			_, readmissions, _ := b.stats()
			return float64(readmissions)
		})
	r.Gauge("pprox_balancer_ejected_backends",
		"Backends currently out of rotation.", func() float64 {
			_, _, ejectedNow := b.stats()
			return float64(ejectedNow)
		})
}

var _ transport.Dialer = (*Balancer)(nil)
