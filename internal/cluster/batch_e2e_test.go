package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"

	"pprox/internal/audit"
	"pprox/internal/cluster"
	"pprox/internal/faults"
	"pprox/internal/message"
	"pprox/internal/resilience"
)

// TestBatchClusterEndToEndWithAudit deploys the full cluster in batch
// mode with the privacy auditor attached: several epochs of gets must
// succeed, the UA must report epoch-batched forwarding, the IA must stay
// inside its LRS concurrency bound, and the auditor must remain ok —
// batching changes the wire shape, not the anonymity-set accounting.
func TestBatchClusterEndToEndWithAudit(t *testing.T) {
	const s = 8
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		Batch:          true,
		LRSConcurrency: 4,
		Audit:          &audit.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const epochs = 3
	for b := 0; b < epochs; b++ {
		if failed := getBatch(t, d, s, b); failed != 0 {
			t.Fatalf("batched epoch %d: %d gets failed", b, failed)
		}
	}

	ua := d.UALayers[0]
	stats := ua.BatchStats()
	if stats.Batches == 0 || stats.Messages != epochs*s {
		t.Errorf("UA batch stats = %+v, want ≥1 forward carrying %d messages", stats, epochs*s)
	}
	if stats.Degraded != 0 {
		t.Errorf("healthy cluster degraded %d messages: %+v", stats.Degraded, stats)
	}
	ia := d.IALayers[0]
	if iaStats := ia.BatchStats(); iaStats.Messages != epochs*s {
		t.Errorf("IA demultiplexed %d messages, want %d", iaStats.Messages, epochs*s)
	}
	if got := ia.LRSInFlight(); got != 0 {
		t.Errorf("LRS in-flight after quiesce = %d, want 0", got)
	}
	time.Sleep(300 * time.Millisecond) // let the IA hop epochs reach the auditor
	if st := d.Auditor.State(); st != audit.StateOK {
		t.Errorf("auditor state in batch mode = %v, want ok", st)
	}
}

// TestBatchClusterChaosExercisesLadder faults the IA's /batch route hard
// enough to exhaust whole-envelope retries and one split half: goodput
// must survive via the degradation ladder, and the UA's counters must
// show the descent actually happened.
func TestBatchClusterChaosExercisesLadder(t *testing.T) {
	const s = 4
	inj := faults.NewInjector(11)
	defer inj.Close()

	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 100 * time.Millisecond,
		UseStub:        true,
		Batch:          true,
		LRSConcurrency: 2,
		Resilience: &resilience.Policy{
			HopTimeout:  2 * time.Second,
			MaxAttempts: 2,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
		NodeMiddleware: func(addr string, h http.Handler) http.Handler {
			if addr == "ia-0" {
				return inj.Middleware(h)
			}
			return h
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Healthy epoch first: the ladder must not fire without faults.
	if failed := getBatch(t, d, s, 0); failed != 0 {
		t.Fatalf("healthy epoch: %d gets failed", failed)
	}
	if stats := d.UALayers[0].BatchStats(); stats.Retries != 0 || stats.Splits != 0 {
		t.Fatalf("ladder fired on healthy cluster: %+v", stats)
	}

	// Fail the next three /batch sends: both whole-envelope attempts and
	// the first split half. The second half and the degraded singles land.
	inj.Arm(faults.Rule{
		Kind:   faults.KindError,
		Status: http.StatusServiceUnavailable,
		Path:   message.BatchPath,
		Count:  3,
	})
	if failed := getBatch(t, d, s, 1); failed != 0 {
		t.Fatalf("chaos epoch: %d gets failed — ladder did not preserve goodput", failed)
	}

	stats := d.UALayers[0].BatchStats()
	if stats.Retries == 0 {
		t.Errorf("no whole-envelope retries recorded: %+v", stats)
	}
	if stats.Splits == 0 {
		t.Errorf("no split sends recorded: %+v", stats)
	}
	if stats.Degraded == 0 {
		t.Errorf("no per-message degradation recorded: %+v", stats)
	}

	// After the fault clears, epochs ride the batch path again.
	before := stats
	if failed := getBatch(t, d, s, 2); failed != 0 {
		t.Fatalf("recovered epoch: %d gets failed", failed)
	}
	after := d.UALayers[0].BatchStats()
	if after.Batches <= before.Batches {
		t.Errorf("recovered epoch did not use the batch path: %+v → %+v", before, after)
	}
	if after.Degraded != before.Degraded {
		t.Errorf("recovered epoch degraded %d more messages", after.Degraded-before.Degraded)
	}

	// Every user's result came back intact during all three phases.
	cl := d.Client(5 * time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Get(ctx, fmt.Sprintf("audit-user-%d-%d", 1, 0)); err != nil {
		t.Fatalf("post-chaos get: %v", err)
	}
}
