package telemetry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"pprox/internal/hopwire"
	"pprox/internal/message"
	"pprox/internal/transport"
)

// Client pushes snapshots to a collector address, preferring persistent
// hopwire frame connections (one FrameTelemetry frame per push) and
// falling back to HTTP POST /telemetry when the collector does not speak
// frames. The fallback latches via the hopwire client's cooldown, so a
// frame-illiterate collector costs one probe per cooldown window, not
// one per epoch.
type Client struct {
	addr string
	hop  *hopwire.Client
	http *http.Client

	pushes atomic.Uint64
	errs   atomic.Uint64
}

// NewClient builds a pusher for the collector at addr ("host:port").
func NewClient(d transport.Dialer, addr string) (*Client, error) {
	if addr == "" {
		return nil, errors.New("telemetry: client needs a collector address")
	}
	hop, err := hopwire.NewClient(d, addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		addr: addr,
		hop:  hop,
		http: transport.HTTPClient(d, 10*time.Second),
	}, nil
}

// Push delivers one encoded snapshot.
func (c *Client) Push(ctx context.Context, body []byte) error {
	c.pushes.Add(1)
	err := c.push(ctx, body)
	if err != nil {
		c.errs.Add(1)
	}
	return err
}

func (c *Client) push(ctx context.Context, body []byte) error {
	status, _, err := c.hop.RoundTrip(ctx, message.TelemetryPath, body)
	if err == nil {
		if status >= http.StatusMultipleChoices {
			return fmt.Errorf("telemetry: collector returned %d", status)
		}
		return nil
	}
	if !errors.Is(err, hopwire.ErrUnsupported) {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+c.addr+message.TelemetryPath, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode >= http.StatusMultipleChoices {
		return fmt.Errorf("telemetry: collector returned %d", resp.StatusCode)
	}
	return nil
}

// Stats reports transport counters for embedding in the next snapshot.
func (c *Client) Stats() TransportStats {
	hs := c.hop.Stats()
	return TransportStats{
		Pushes:    c.pushes.Load(),
		Errors:    c.errs.Load(),
		Dials:     hs.Dials,
		Reuses:    hs.Reuses,
		Fallbacks: hs.Fallbacks,
	}
}

// Close releases pooled frame connections.
func (c *Client) Close() {
	c.hop.Close()
	c.http.CloseIdleConnections()
}
