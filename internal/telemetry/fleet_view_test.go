package telemetry

import (
	"context"
	"testing"

	"pprox/internal/fleet"
	"pprox/internal/metrics"
)

// TestFleetOverviewFlowsEmitterToCollector: an emitter with a Fleet
// closure stamps the overview into its snapshots, and the collector
// surfaces the freshest one in the /fleet rollup.
func TestFleetOverviewFlowsEmitterToCollector(t *testing.T) {
	reg := fleet.NewRegistry(fleet.Config{})
	reg.Register("ua", "ua-0")
	reg.Register("ua", "ua-1")
	reg.EpochBoundary()
	reg.BeginDrain("ua", "ua-1")

	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{
		Node:     "fleet-0",
		Role:     "fleet",
		Registry: metrics.NewRegistry(),
		Pusher:   p,
		Fleet: func() *fleet.Overview {
			return fleet.BuildOverview(reg, nil, 2)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap := p.last(t)
	if snap.Fleet == nil || len(snap.Fleet.Endpoints) != 2 {
		t.Fatalf("snapshot fleet view = %+v, want 2 endpoints", snap.Fleet)
	}

	col := NewCollector(CollectorConfig{})
	if err := col.Ingest(snap); err != nil {
		t.Fatal(err)
	}
	rep := col.Fleet()
	fv := rep.Rollups.Fleet
	if fv == nil || fv.CurrentPairs != 2 {
		t.Fatalf("rollup fleet view = %+v, want 2 current pairs", fv)
	}
	states := map[string]string{}
	for _, ep := range fv.Endpoints {
		states[ep.Addr] = ep.State
	}
	if states["ua-0"] != "active" || states["ua-1"] != "draining" {
		t.Fatalf("endpoint states = %v", states)
	}
}

// TestCollectorOverviewConfigWins: a co-hosted registry (pprox-ops serve
// mode) takes precedence over snapshot-carried views.
func TestCollectorOverviewConfigWins(t *testing.T) {
	local := &fleet.Overview{CurrentPairs: 7, DesiredPairs: 7}
	col := NewCollector(CollectorConfig{
		Overview: func() *fleet.Overview { return local },
	})
	snapView := &fleet.Overview{CurrentPairs: 1, DesiredPairs: 1}
	if err := col.Ingest(Snapshot{Node: "fleet-0", Seq: 1, Fleet: snapView}); err != nil {
		t.Fatal(err)
	}
	if fv := col.Fleet().Rollups.Fleet; fv == nil || fv.CurrentPairs != 7 {
		t.Fatalf("rollup fleet = %+v, want the co-hosted registry's view", fv)
	}
}

// TestCollectorNoFleetIsNil: deployments without a fleet keep the rollup
// field absent.
func TestCollectorNoFleetIsNil(t *testing.T) {
	col := NewCollector(CollectorConfig{})
	if err := col.Ingest(Snapshot{Node: "ua-0", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if fv := col.Fleet().Rollups.Fleet; fv != nil {
		t.Fatalf("rollup fleet = %+v, want nil", fv)
	}
}
