// Package telemetry streams epoch-granular node snapshots to a fleet
// collector (cmd/pprox-ops) and aggregates them into fleet rollups.
//
// Privacy stance: the collector sits OUTSIDE the trust boundary. A
// snapshot therefore carries only what the node's public /metrics
// endpoint already exposes — epoch-aggregated series, SLO and audit
// states, build identity — and never a wall-clock per-record timestamp
// or any request identity. Snapshots are assembled at shuffle-flush
// time (or on a coarse timer for shuffler-less nodes), so their cadence
// reveals nothing beyond the epoch boundaries a network adversary
// already observes.
package telemetry

import (
	"pprox/internal/fleet"
	"pprox/internal/metrics"
)

// FleetPath serves the collector's aggregated fleet report as JSON.
const FleetPath = "/fleet"

// Snapshot is one node's epoch-granular telemetry record.
//
// There is deliberately no time.Time anywhere in this struct: ordering
// is carried by Seq (per-emitter monotonic) and Epoch (shuffle epochs
// observed), both of which are epoch-granular by construction. The
// collector keys staleness off its own arrival clock.
type Snapshot struct {
	// Node and Role identify the emitting process ("ua-0", role "ua").
	Node string `json:"node"`
	Role string `json:"role,omitempty"`

	// Seq counts snapshots emitted by this emitter incarnation, from 1.
	// A snapshot whose Seq does not exceed the collector's high-water
	// mark for the node signals a restarted process; the collector
	// drops the stale incarnation's history.
	Seq uint64 `json:"seq"`

	// Epoch counts shuffle epochs observed by this emitter incarnation.
	// For timer-driven nodes (LRS, stub) it counts timer intervals.
	Epoch uint64 `json:"epoch"`

	// LastBatch is the size of the most recent shuffle flush (the
	// per-epoch anonymity set), 0 when the node has no shuffler.
	LastBatch int `json:"last_batch,omitempty"`

	// IntervalSeconds is the emitter's heartbeat cadence (a config
	// constant, not a measurement): the slowest the node pushes when no
	// shuffle epochs fire. The collector floors its staleness estimate
	// at it so an idle-but-alive node never flaps stale between
	// heartbeats.
	IntervalSeconds float64 `json:"interval_seconds,omitempty"`

	// Build identifies the binary, for fleet-wide skew detection.
	Build metrics.BuildInfo `json:"build"`

	// AuditState and PerfState are the node's privacy-audit and
	// perf-SLO verdicts ("ok", "warn", "violated"), empty when the
	// node runs neither.
	AuditState string `json:"audit_state,omitempty"`
	PerfState  string `json:"perf_state,omitempty"`

	// Series holds the absolute sampled value of every exported series,
	// keyed exactly like Registry.Snapshot ("name{labels}" or
	// "name_bucket{...,le=...}").
	Series map[string]float64 `json:"series"`

	// Deltas holds, for monotonic series only (counters and histogram
	// components), the increase since this emitter's previous snapshot.
	// Zero deltas are omitted. Gauges never appear here.
	Deltas map[string]float64 `json:"deltas,omitempty"`

	// Transport describes the push channel itself, so the fleet view
	// shows telemetry-plane health (frame reuse, HTTP fallbacks).
	Transport TransportStats `json:"transport"`

	// Fleet carries the elastic-fleet view — registry membership and
	// recent scaling decisions — emitted only by the node hosting the
	// fleet registry (the deployment's control plane). Membership and
	// decisions are endpoint-granular, never request-granular, so the
	// privacy stance above is unchanged.
	Fleet *fleet.Overview `json:"fleet,omitempty"`
}

// TransportStats counts push-channel activity for one emitter.
type TransportStats struct {
	// Pushes and Errors count snapshot delivery attempts.
	Pushes uint64 `json:"pushes"`
	Errors uint64 `json:"errors,omitempty"`
	// Dials, Reuses and Fallbacks describe the hopwire client pool:
	// fresh frame connections, pooled reuses, and HTTP fallbacks taken
	// when the collector spoke no frames.
	Dials     uint64 `json:"dials,omitempty"`
	Reuses    uint64 `json:"reuses,omitempty"`
	Fallbacks uint64 `json:"fallbacks,omitempty"`
}
