package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/fleet"
	"pprox/internal/message"
	"pprox/internal/metrics"
)

const (
	// DefaultRetention is snapshots kept per node.
	DefaultRetention = 16
	// maxSnapshotBody bounds one ingested snapshot.
	maxSnapshotBody = 4 << 20
	// minEpochGap floors the adaptive staleness estimate so a node
	// flushing every few milliseconds under load is not declared dead
	// the instant traffic pauses.
	minEpochGap = 100 * time.Millisecond
)

// CollectorConfig tunes a Collector. The zero value works.
type CollectorConfig struct {
	// Retention is snapshots kept per node (default DefaultRetention).
	Retention int
	// StaleAfter, when positive, is a fixed silence threshold. Zero
	// selects the adaptive rule: a node is stale once silent for two of
	// its own observed epoch gaps (EWMA, floored at minEpochGap) — the
	// "stale within two epochs" contract.
	StaleAfter time.Duration
	// Now substitutes the clock (tests); nil means time.Now.
	Now    func() time.Time
	Logger *slog.Logger
	// Overview, when set, samples the co-hosted fleet registry for the
	// /fleet rollup (pprox-ops serve mode hosts both). When nil, the
	// rollup falls back to the freshest ingested snapshot that carries a
	// fleet view.
	Overview func() *fleet.Overview
}

// Collector ingests node snapshots and aggregates the fleet view. It is
// deliberately passive: nodes push, the collector never scrapes, so it
// needs no credentials and can sit outside the trust boundary.
type Collector struct {
	cfg CollectorConfig

	mu    sync.Mutex
	nodes map[string]*nodeState

	received atomic.Uint64
	rejected atomic.Uint64
	resets   atomic.Uint64
}

// nodeState is one node's retained history.
type nodeState struct {
	snaps []Snapshot  // oldest first, len ≤ Retention
	times []time.Time // collector-local arrival times, aligned with snaps
	gap   time.Duration
	last  time.Time
}

// NewCollector builds a collector.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Collector{cfg: cfg, nodes: make(map[string]*nodeState)}
}

// Ingest records one snapshot.
func (c *Collector) Ingest(snap Snapshot) error {
	if snap.Node == "" {
		c.rejected.Add(1)
		return errors.New("telemetry: snapshot without node name")
	}
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[snap.Node]
	if ns == nil {
		ns = &nodeState{}
		c.nodes[snap.Node] = ns
	} else if n := len(ns.snaps); n > 0 && snap.Seq <= ns.snaps[n-1].Seq {
		// A sequence number at or below the high-water mark means a
		// restarted emitter: the previous incarnation's history no
		// longer describes this process. Re-registration also clears
		// staleness implicitly — freshness keys off the new arrival.
		*ns = nodeState{}
		c.resets.Add(1)
		if c.cfg.Logger != nil {
			c.cfg.Logger.Info("telemetry node re-registered", "node", snap.Node)
		}
	}
	if !ns.last.IsZero() {
		d := now.Sub(ns.last)
		if ns.gap == 0 {
			ns.gap = d
		} else {
			ns.gap = (3*ns.gap + d) / 4
		}
	}
	ns.last = now
	ns.snaps = append(ns.snaps, snap)
	ns.times = append(ns.times, now)
	if len(ns.snaps) > c.cfg.Retention {
		over := len(ns.snaps) - c.cfg.Retention
		ns.snaps = append(ns.snaps[:0], ns.snaps[over:]...)
		ns.times = append(ns.times[:0], ns.times[over:]...)
	}
	c.received.Add(1)
	return nil
}

// staleThreshold is the silence duration after which a node is stale:
// two of its own epoch gaps, floored at its declared heartbeat cadence
// (so an idle node waiting out its heartbeat never flaps) and at
// minEpochGap (so a node that was flushing every few milliseconds under
// load is not declared dead the instant traffic pauses).
func (c *Collector) staleThreshold(ns *nodeState) time.Duration {
	if c.cfg.StaleAfter > 0 {
		return c.cfg.StaleAfter
	}
	g := ns.gap
	if n := len(ns.snaps); n > 0 {
		if hb := time.Duration(ns.snaps[n-1].IntervalSeconds * float64(time.Second)); g < hb {
			g = hb
		}
	}
	if g < minEpochGap {
		g = minEpochGap
	}
	return 2 * g
}

// FleetReport is the aggregated fleet view served on /fleet.
type FleetReport struct {
	Nodes []NodeStatus `json:"nodes"`
	Fresh int          `json:"fresh"`
	Stale int          `json:"stale"`
	// Rollups aggregates fresh nodes only: a silent node's last-known
	// counters would otherwise skew fleet rates indefinitely.
	Rollups Rollups `json:"rollups"`
}

// NodeStatus is one node's latest state plus collector-side freshness.
type NodeStatus struct {
	Node       string            `json:"node"`
	Role       string            `json:"role,omitempty"`
	Build      metrics.BuildInfo `json:"build"`
	Seq        uint64            `json:"seq"`
	Epoch      uint64            `json:"epoch"`
	LastBatch  int               `json:"last_batch,omitempty"`
	Snapshots  int               `json:"snapshots"`
	Stale      bool              `json:"stale"`
	AgeSeconds float64           `json:"age_seconds"`
	AuditState string            `json:"audit_state,omitempty"`
	PerfState  string            `json:"perf_state,omitempty"`
	GoodputRPS float64           `json:"goodput_rps"`
	Transport  TransportStats    `json:"transport"`
}

// NodeStates is one node's row in the SLO/audit state matrix.
type NodeStates struct {
	Audit string `json:"audit,omitempty"`
	Perf  string `json:"perf,omitempty"`
}

// Rollups are the cross-node aggregates.
type Rollups struct {
	// GoodputRPS sums entry-point (UA-role) node goodput; when no UA
	// nodes report, it sums every fresh node.
	GoodputRPS float64 `json:"goodput_rps"`
	// StageQuantiles merges the per-stage latency histograms of every
	// fresh node.
	StageQuantiles map[string]StageQuantile `json:"stage_quantiles,omitempty"`
	// WorstEpochBatch is the smallest shuffle flush (anonymity set)
	// reported anywhere in retained history; 0 means unknown.
	WorstEpochBatch int `json:"worst_epoch_batch"`
	// States is the per-node SLO/audit verdict matrix.
	States map[string]NodeStates `json:"states,omitempty"`
	// BuildSHAs lists distinct git SHAs across fresh nodes; BuildSkew
	// flags a mixed-version fleet.
	BuildSHAs []string `json:"build_shas,omitempty"`
	BuildSkew bool     `json:"build_skew"`
	// Fleet is the elastic-fleet view: registry membership (with drain
	// states) and recent scaling decisions. Sourced from a co-hosted
	// registry when the collector has one, otherwise from the freshest
	// snapshot carrying one. Nil when no fleet runs.
	Fleet *fleet.Overview `json:"fleet,omitempty"`
	// LRS aggregates the recommendation backends' training and
	// re-pseudonymization state across fresh nodes. Nil when no LRS
	// node reports.
	LRS *LRSRollup `json:"lrs,omitempty"`
}

// LRSRollup is the fleet-wide LRS training/rotation aggregate.
type LRSRollup struct {
	// Shards sums event-log shards across fresh LRS nodes.
	Shards int `json:"shards"`
	// TrainSeconds is the worst (longest) last full-train duration.
	TrainSeconds float64 `json:"train_seconds"`
	// EventsApplied sums events folded into models by the online
	// incremental path.
	EventsApplied uint64 `json:"events_applied"`
	// RepseudoRunning counts nodes with a re-pseudonymization job in
	// flight; breach auditors should treat the fleet as unsettled while
	// it is non-zero.
	RepseudoRunning int `json:"repseudo_running"`
	// RepseudoMigrated sums pseudonyms rewritten by completed jobs.
	RepseudoMigrated uint64 `json:"repseudo_migrated"`
}

// StageQuantile is a merged per-stage latency summary.
type StageQuantile struct {
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Count uint64  `json:"count"`
	// Overflow flags quantiles clamped because the mass sits beyond
	// the last finite bucket bound.
	Overflow bool `json:"overflow,omitempty"`
}

// servedFamilies are the request-serving counters goodput is read from.
var servedFamilies = map[string]bool{
	"pprox_proxy_requests_served_total": true,
	"pprox_lrs_posts_total":             true,
	"pprox_lrs_queries_total":           true,
	"pprox_stub_gets_total":             true,
	"pprox_stub_posts_total":            true,
}

// Fleet computes the current fleet report. Staleness is evaluated at
// read time against the collector's own clock.
func (c *Collector) Fleet() FleetReport {
	now := c.cfg.Now()
	c.mu.Lock()
	defer c.mu.Unlock()

	report := FleetReport{
		Rollups: Rollups{
			States: make(map[string]NodeStates),
		},
	}
	var freshSeries []map[string]float64
	shas := make(map[string]bool)
	var uaGoodput, allGoodput float64
	haveUA := false
	var fleetView *fleet.Overview

	names := make([]string, 0, len(c.nodes))
	for name := range c.nodes {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		ns := c.nodes[name]
		if len(ns.snaps) == 0 {
			continue
		}
		latest := ns.snaps[len(ns.snaps)-1]
		age := now.Sub(ns.last)
		st := NodeStatus{
			Node:       latest.Node,
			Role:       latest.Role,
			Build:      latest.Build,
			Seq:        latest.Seq,
			Epoch:      latest.Epoch,
			LastBatch:  latest.LastBatch,
			Snapshots:  len(ns.snaps),
			Stale:      age > c.staleThreshold(ns),
			AgeSeconds: math.Round(age.Seconds()*10) / 10,
			AuditState: latest.AuditState,
			PerfState:  latest.PerfState,
			GoodputRPS: nodeGoodput(ns),
			Transport:  latest.Transport,
		}
		report.Nodes = append(report.Nodes, st)
		if st.Stale {
			report.Stale++
			continue
		}
		report.Fresh++
		freshSeries = append(freshSeries, latest.Series)
		accumulateLRS(&report.Rollups, latest.Series)
		shas[latest.Build.GitSHA] = true
		if st.AuditState != "" || st.PerfState != "" {
			report.Rollups.States[st.Node] = NodeStates{Audit: st.AuditState, Perf: st.PerfState}
		}
		allGoodput += st.GoodputRPS
		if st.Role == "ua" {
			haveUA = true
			uaGoodput += st.GoodputRPS
		}
		if w := worstBatch(ns); w > 0 &&
			(report.Rollups.WorstEpochBatch == 0 || w < report.Rollups.WorstEpochBatch) {
			report.Rollups.WorstEpochBatch = w
		}
		if latest.Fleet != nil {
			fleetView = latest.Fleet
		}
	}

	report.Rollups.GoodputRPS = allGoodput
	if haveUA {
		report.Rollups.GoodputRPS = uaGoodput
	}
	report.Rollups.Fleet = fleetView
	if c.cfg.Overview != nil {
		report.Rollups.Fleet = c.cfg.Overview()
	}
	for sha := range shas {
		report.Rollups.BuildSHAs = append(report.Rollups.BuildSHAs, sha)
	}
	sort.Strings(report.Rollups.BuildSHAs)
	report.Rollups.BuildSkew = len(report.Rollups.BuildSHAs) > 1

	merged := MergeStageHistograms(freshSeries)
	if len(merged) > 0 {
		report.Rollups.StageQuantiles = make(map[string]StageQuantile, len(merged))
		for stage, m := range merged {
			var sq StageQuantile
			var o1, o2, o3 bool
			sq.P50, o1 = m.Quantile(0.50)
			sq.P90, o2 = m.Quantile(0.90)
			sq.P99, o3 = m.Quantile(0.99)
			sq.Count = m.Count()
			sq.Overflow = o1 || o2 || o3
			report.Rollups.StageQuantiles[stage] = sq
		}
	}
	return report
}

// nodeGoodput is served requests per second over the node's retained
// window: the sum of served-counter deltas after the oldest retained
// snapshot, divided by the arrival span. Arrival times are collector
// local — the snapshots themselves carry no clocks.
func nodeGoodput(ns *nodeState) float64 {
	if len(ns.snaps) < 2 {
		return 0
	}
	span := ns.times[len(ns.times)-1].Sub(ns.times[0]).Seconds()
	if span <= 0 {
		return 0
	}
	var served float64
	for _, snap := range ns.snaps[1:] {
		for series, d := range snap.Deltas {
			name, _ := metrics.ParseSeries(series)
			if servedFamilies[name] {
				served += d
			}
		}
	}
	return math.Round(served/span*10) / 10
}

// accumulateLRS folds one fresh node's series into the LRS rollup,
// creating it on the first LRS metric seen.
func accumulateLRS(r *Rollups, series map[string]float64) {
	for s, v := range series {
		name, _ := metrics.ParseSeries(s)
		switch name {
		case "pprox_lrs_shards":
			ensureLRS(r).Shards += int(v)
		case "pprox_lrs_train_seconds":
			if lrs := ensureLRS(r); v > lrs.TrainSeconds {
				lrs.TrainSeconds = v
			}
		case "pprox_lrs_events_applied_total":
			ensureLRS(r).EventsApplied += uint64(v)
		case "pprox_lrs_repseudo_running":
			if v > 0 {
				ensureLRS(r).RepseudoRunning++
			} else {
				ensureLRS(r)
			}
		case "pprox_lrs_repseudo_migrated_total":
			ensureLRS(r).RepseudoMigrated += uint64(v)
		}
	}
}

func ensureLRS(r *Rollups) *LRSRollup {
	if r.LRS == nil {
		r.LRS = &LRSRollup{}
	}
	return r.LRS
}

// worstBatch is the smallest positive anonymity-set size in a node's
// retained history, considering both the shuffle flush sizes the emitter
// observed and the audit gauge when the node exports one.
func worstBatch(ns *nodeState) int {
	worst := 0
	take := func(v int) {
		if v > 0 && (worst == 0 || v < worst) {
			worst = v
		}
	}
	for _, snap := range ns.snaps {
		take(snap.LastBatch)
		for series, v := range snap.Series {
			name, _ := metrics.ParseSeries(series)
			if name == "pprox_audit_worst_epoch_batch" {
				take(int(v))
			}
		}
	}
	return worst
}

// IngestHandler accepts snapshots on POST /telemetry (HTTP or bridged
// from FrameTelemetry frames).
func (c *Collector) IngestHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBody+1))
		if err != nil || len(body) > maxSnapshotBody {
			c.rejected.Add(1)
			http.Error(w, "snapshot too large", http.StatusRequestEntityTooLarge)
			return
		}
		var snap Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			c.rejected.Add(1)
			http.Error(w, "bad snapshot", http.StatusBadRequest)
			return
		}
		if err := c.Ingest(snap); err != nil {
			http.Error(w, "bad snapshot", http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
}

// FleetHandler serves the fleet report on GET /fleet.
func (c *Collector) FleetHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		out, err := json.MarshalIndent(c.Fleet(), "", "  ")
		if err != nil {
			http.Error(w, "encode failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(out, '\n'))
	})
}

// Routes returns the collector's operator routes for metrics.MuxRoutes.
func (c *Collector) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		message.TelemetryPath: c.IngestHandler(),
		FleetPath:             c.FleetHandler(),
	}
}

// Health is the collector's /healthz self-assessment.
func (c *Collector) Health() metrics.Health {
	c.mu.Lock()
	n := len(c.nodes)
	c.mu.Unlock()
	return metrics.Health{
		OK: true,
		Checks: map[string]string{
			"nodes": strconv.Itoa(n),
		},
	}
}

// RegisterMetrics exposes the collector's own counters.
func (c *Collector) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("pprox_ops_snapshots_total",
		"Telemetry snapshots ingested.",
		func() float64 { return float64(c.received.Load()) })
	r.CounterFunc("pprox_ops_rejected_total",
		"Telemetry snapshots rejected as malformed or oversized.",
		func() float64 { return float64(c.rejected.Load()) })
	r.CounterFunc("pprox_ops_node_resets_total",
		"Node re-registrations (emitter restarts detected by sequence reset).",
		func() float64 { return float64(c.resets.Load()) })
	r.Gauge("pprox_ops_nodes",
		"Nodes with retained telemetry history.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.nodes))
		})
	r.Gauge("pprox_ops_stale_nodes",
		"Nodes currently marked stale.",
		func() float64 {
			now := c.cfg.Now()
			c.mu.Lock()
			defer c.mu.Unlock()
			stale := 0
			for _, ns := range c.nodes {
				if len(ns.snaps) > 0 && now.Sub(ns.last) > c.staleThreshold(ns) {
					stale++
				}
			}
			return float64(stale)
		})
}
