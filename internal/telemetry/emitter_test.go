package telemetry

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"

	"pprox/internal/metrics"
)

// capturePusher records pushed snapshot bodies in memory.
type capturePusher struct {
	mu     sync.Mutex
	bodies [][]byte
	closed bool
}

func (p *capturePusher) Push(_ context.Context, body []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bodies = append(p.bodies, append([]byte(nil), body...))
	return nil
}

func (p *capturePusher) Stats() TransportStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return TransportStats{Pushes: uint64(len(p.bodies))}
}

func (p *capturePusher) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
}

func (p *capturePusher) count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.bodies)
}

func (p *capturePusher) last(t *testing.T) Snapshot {
	t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.bodies) == 0 {
		t.Fatal("no snapshots pushed")
	}
	var s Snapshot
	if err := json.Unmarshal(p.bodies[len(p.bodies)-1], &s); err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	return s
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestEmitterDeltas: counters report increases since the previous
// snapshot, gauges appear only as absolute series, zero deltas are
// omitted, and Seq counts every assembled snapshot.
func TestEmitterDeltas(t *testing.T) {
	reg := metrics.NewRegistry()
	served := reg.Counter("pprox_lrs_posts_total", "served")
	reg.Gauge("pprox_go_goroutines", "gauge", func() float64 { return 7 })
	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{Node: "lrs-0", Role: "lrs", Registry: reg, Pusher: p})
	if err != nil {
		t.Fatal(err)
	}

	served.Add(3)
	if err := em.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := p.last(t)
	if s.Seq != 1 || s.Node != "lrs-0" || s.Role != "lrs" {
		t.Fatalf("snapshot header: %+v", s)
	}
	if got := s.Deltas["pprox_lrs_posts_total"]; got != 3 {
		t.Errorf("first delta = %g, want 3", got)
	}
	if got := s.Series["pprox_go_goroutines"]; got != 7 {
		t.Errorf("gauge series = %g, want 7", got)
	}
	if _, ok := s.Deltas["pprox_go_goroutines"]; ok {
		t.Error("gauge must never appear in deltas")
	}

	served.Add(2)
	if err := em.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	s = p.last(t)
	if s.Seq != 2 {
		t.Errorf("seq = %d, want 2", s.Seq)
	}
	if got := s.Deltas["pprox_lrs_posts_total"]; got != 2 {
		t.Errorf("second delta = %g, want 2 (increase only)", got)
	}
	if got := s.Series["pprox_lrs_posts_total"]; got != 5 {
		t.Errorf("absolute series = %g, want 5", got)
	}

	// No change: the zero delta is omitted entirely.
	if err := em.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s = p.last(t); len(s.Deltas) != 0 {
		t.Errorf("idle flush deltas = %v, want none", s.Deltas)
	}

	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	if !p.closed {
		t.Error("Close must close the pusher")
	}
}

// TestEmitterFilter scopes a shared-registry emitter to its own node's
// series, the way cluster deployments separate per-node telemetry.
func TestEmitterFilter(t *testing.T) {
	reg := metrics.NewRegistry()
	vec := reg.CounterVec("pprox_proxy_requests_served_total", "served", "node")
	vec.With("ua-0").Add(4)
	vec.With("ua-1").Add(9)
	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{
		Node: "ua-0", Registry: reg, Pusher: p,
		Filter: func(series string) bool {
			_, labels := metrics.ParseSeries(series)
			n, ok := labels["node"]
			return !ok || n == "ua-0"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	if err := em.Flush(context.Background()); err != nil {
		t.Fatal(err)
	}
	s := p.last(t)
	for series := range s.Series {
		if _, labels := metrics.ParseSeries(series); labels["node"] == "ua-1" {
			t.Errorf("foreign node series leaked: %s", series)
		}
	}
	if got := s.Deltas[`pprox_proxy_requests_served_total{node="ua-0"}`]; got != 4 {
		t.Errorf("own-node delta = %g, want 4 (series: %v)", got, s.Deltas)
	}
}

// TestEmitterEpochsAndHeartbeat: ObserveEpoch kicks a push and stamps
// the batch size; the heartbeat keeps pushing with no epochs at all.
func TestEmitterEpochsAndHeartbeat(t *testing.T) {
	reg := metrics.NewRegistry()
	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{
		Node: "ua-0", Registry: reg, Pusher: p,
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()

	em.ObserveEpoch(8)
	waitFor(t, func() bool { return p.count() >= 1 }, "epoch-kicked push")
	if s := p.last(t); s.LastBatch != 8 || s.Epoch == 0 {
		t.Errorf("epoch snapshot: batch=%d epoch=%d, want batch 8, epoch > 0", s.LastBatch, s.Epoch)
	}
	if s := p.last(t); s.IntervalSeconds != 0.005 {
		t.Errorf("interval hint = %g, want 0.005", s.IntervalSeconds)
	}

	// With no further epochs, the heartbeat alone keeps the node alive
	// at the collector.
	base := p.count()
	waitFor(t, func() bool { return p.count() >= base+3 }, "heartbeat pushes")
}

// TestEmitterPauseResume: a paused emitter pushes nothing (the cluster
// pauses a killed node's emitter); Resume schedules a push immediately.
func TestEmitterPauseResume(t *testing.T) {
	reg := metrics.NewRegistry()
	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{Node: "ua-0", Registry: reg, Pusher: p})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()

	em.Pause()
	em.ObserveEpoch(8)
	time.Sleep(20 * time.Millisecond)
	if got := p.count(); got != 0 {
		t.Fatalf("paused emitter pushed %d snapshots", got)
	}

	em.Resume()
	waitFor(t, func() bool { return p.count() >= 1 }, "post-resume push")
}

// TestEmitterCloseFlushes: Close pushes one final snapshot so the last
// epoch's state reaches the collector before the process exits — unless
// the emitter is paused (a "dead" node must not report from the grave).
func TestEmitterCloseFlushes(t *testing.T) {
	reg := metrics.NewRegistry()
	p := &capturePusher{}
	em, err := NewEmitter(EmitterConfig{Node: "ua-0", Registry: reg, Pusher: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := em.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.count(); got != 1 {
		t.Fatalf("Close pushed %d snapshots, want 1", got)
	}

	p2 := &capturePusher{}
	em2, err := NewEmitter(EmitterConfig{Node: "ua-1", Registry: reg, Pusher: p2})
	if err != nil {
		t.Fatal(err)
	}
	em2.Pause()
	if err := em2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p2.count(); got != 0 {
		t.Fatalf("paused Close pushed %d snapshots, want 0", got)
	}
}

// TestEmitterRequiredConfig: construction fails fast on missing wiring.
func TestEmitterRequiredConfig(t *testing.T) {
	reg := metrics.NewRegistry()
	p := &capturePusher{}
	for _, cfg := range []EmitterConfig{
		{Registry: reg, Pusher: p},
		{Node: "n", Pusher: p},
		{Node: "n", Registry: reg},
	} {
		if _, err := NewEmitter(cfg); err == nil {
			t.Errorf("NewEmitter(%+v) succeeded, want error", cfg)
		}
	}
}
