package telemetry

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"pprox/internal/metrics"
)

// StageSecondsFamily is the per-stage latency histogram merged across
// nodes for the fleet's per-stage quantile rollup.
const StageSecondsFamily = "pprox_proxy_stage_seconds"

// MergedHistogram is a cross-node sum of cumulative bucket counts.
// Summing cumulative counts per bucket bound is exact: the merged
// histogram is identical to one histogram that observed every node's
// raw samples, so quantiles read from it carry no merge error beyond
// the bucket resolution every scrape already has.
type MergedHistogram struct {
	les []float64 // ascending bucket bounds, +Inf last
	cum []float64 // merged cumulative counts, aligned with les
}

// Count is the merged observation count (the +Inf cumulative bucket).
func (m *MergedHistogram) Count() uint64 {
	if len(m.cum) == 0 {
		return 0
	}
	return uint64(m.cum[len(m.cum)-1])
}

// Quantile mirrors metrics.Histogram.Quantile: the smallest bucket
// bound whose cumulative count reaches q of the total. overflow reports
// that the mass lives beyond the last finite bound; the returned value
// is then the last finite bound ×10 (the perf-SLO clamp convention) so
// it stays JSON-encodable.
func (m *MergedHistogram) Quantile(q float64) (v float64, overflow bool) {
	n := len(m.les)
	if n == 0 || m.cum[n-1] == 0 {
		return 0, false
	}
	target := q * m.cum[n-1]
	for i, c := range m.cum {
		if c >= target {
			if !math.IsInf(m.les[i], 1) {
				return m.les[i], false
			}
			break
		}
	}
	var last float64
	for _, le := range m.les {
		if !math.IsInf(le, 1) {
			last = le
		}
	}
	return last * 10, true
}

// leCum is one node's contribution to one stage: bucket bound → merged
// cumulative count.
type leCum map[float64]float64

// MergeStageHistograms merges the stage-latency histogram across node
// series sets (Snapshot.Series maps), grouped by the stage label and
// pooled across layers and nodes. Nodes whose bucket layouts differ are
// reconciled by intersecting bounds — each node's cumulative counts stay
// valid on any subset of its bounds, so the intersection merge remains
// exact at the shared bounds.
func MergeStageHistograms(sets []map[string]float64) map[string]*MergedHistogram {
	prefix := StageSecondsFamily + "_bucket"
	perStage := make(map[string][]leCum)
	for _, set := range sets {
		byStage := make(map[string]leCum)
		for series, v := range set {
			if !strings.HasPrefix(series, prefix) {
				continue
			}
			name, labels := metrics.ParseSeries(series)
			if name != prefix {
				continue
			}
			le, err := strconv.ParseFloat(labels["le"], 64)
			if err != nil {
				continue
			}
			stage := labels["stage"]
			h := byStage[stage]
			if h == nil {
				h = make(leCum)
				byStage[stage] = h
			}
			// The same node may export one histogram per layer (UA and
			// IA in one process); cumulative counts at equal bounds sum.
			h[le] += v
		}
		for stage, h := range byStage {
			perStage[stage] = append(perStage[stage], h)
		}
	}

	out := make(map[string]*MergedHistogram, len(perStage))
	for stage, hists := range perStage {
		if merged := mergeOne(hists); merged != nil {
			out[stage] = merged
		}
	}
	return out
}

func mergeOne(hists []leCum) *MergedHistogram {
	if len(hists) == 0 {
		return nil
	}
	var les []float64
	for le := range hists[0] {
		shared := true
		for _, h := range hists[1:] {
			if _, ok := h[le]; !ok {
				shared = false
				break
			}
		}
		if shared {
			les = append(les, le)
		}
	}
	if len(les) == 0 {
		return nil
	}
	sort.Float64s(les)
	cum := make([]float64, len(les))
	for i, le := range les {
		for _, h := range hists {
			cum[i] += h[le]
		}
	}
	return &MergedHistogram{les: les, cum: cum}
}
