package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/fleet"
	"pprox/internal/metrics"
)

// DefaultPushTimeout bounds one snapshot delivery.
const DefaultPushTimeout = 5 * time.Second

// Pusher delivers one encoded snapshot to the collector. Client is the
// production implementation; tests substitute capturing pushers.
type Pusher interface {
	// Push delivers one JSON-encoded Snapshot.
	Push(ctx context.Context, body []byte) error
	// Stats reports cumulative transport counters for embedding in the
	// next snapshot.
	Stats() TransportStats
	// Close releases pooled connections.
	Close()
}

// EmitterConfig configures an Emitter. Node, Registry and Pusher are
// required.
type EmitterConfig struct {
	// Node and Role stamp every snapshot.
	Node string
	Role string

	// Registry is sampled at each flush.
	Registry *metrics.Registry

	// Filter, when set, keeps only series for which it returns true.
	// Cluster deployments share one registry across nodes and use this
	// to scope each emitter to its own node's series.
	Filter func(series string) bool

	// AuditState and PerfState, when set, are sampled at each flush.
	AuditState func() string
	PerfState  func() string

	// Fleet, when set, samples the elastic-fleet overview at each flush.
	// Only the node hosting the fleet registry sets it.
	Fleet func() *fleet.Overview

	// Pusher delivers snapshots; the emitter owns it and closes it.
	Pusher Pusher

	// Interval is the heartbeat: a flush fires at least this often even
	// when no shuffle epochs do, so an idle node stays distinguishable
	// from a dead one at the collector. Zero means epoch-driven only
	// (flushes happen solely when ObserveEpoch fires).
	Interval time.Duration

	// PushTimeout bounds one delivery (default DefaultPushTimeout).
	PushTimeout time.Duration

	Logger *slog.Logger
}

// Emitter assembles and pushes one snapshot per observed epoch. Epoch
// notifications coalesce: at most one assembly+push is in flight, and a
// burst of flushes during a slow push collapses into one trailing
// snapshot (snapshots carry cumulative state, so nothing is lost).
type Emitter struct {
	cfg EmitterConfig

	seq       atomic.Uint64
	epoch     atomic.Uint64
	lastBatch atomic.Int64
	paused    atomic.Bool

	kick     chan struct{}
	done     chan struct{}
	loopDone chan struct{}
	stopOnce sync.Once

	// prev holds the previous flush's monotonic samples for delta
	// computation; guarded by mu because Flush may race the loop.
	mu   sync.Mutex
	prev map[string]float64
}

// NewEmitter starts an emitter and its background push loop.
func NewEmitter(cfg EmitterConfig) (*Emitter, error) {
	if cfg.Node == "" {
		return nil, errors.New("telemetry: emitter needs a node name")
	}
	if cfg.Registry == nil {
		return nil, errors.New("telemetry: emitter needs a registry")
	}
	if cfg.Pusher == nil {
		return nil, errors.New("telemetry: emitter needs a pusher")
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = DefaultPushTimeout
	}
	e := &Emitter{
		cfg:      cfg,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	go e.loop()
	return e, nil
}

// ObserveEpoch records one shuffle flush and schedules a push. It is the
// proxy layer's epoch-observer hook and never blocks the flush path.
func (e *Emitter) ObserveEpoch(batch int) {
	if batch > 0 {
		e.lastBatch.Store(int64(batch))
	}
	e.epoch.Add(1)
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Pause silences the emitter without tearing it down: epochs still
// count, but nothing is pushed. The cluster testbed pauses a killed
// node's emitter so the in-process handler does not keep reporting for
// a node whose listener is down.
func (e *Emitter) Pause() { e.paused.Store(true) }

// Resume re-enables pushes and immediately schedules one, so a restarted
// node reappears at the collector within one push rather than one epoch.
func (e *Emitter) Resume() {
	e.paused.Store(false)
	select {
	case e.kick <- struct{}{}:
	default:
	}
}

// Flush assembles and pushes one snapshot synchronously. SIGTERM drains
// call it (via Close) so the final epoch's state reaches the collector
// before listeners close.
func (e *Emitter) Flush(ctx context.Context) error {
	body, err := e.assemble()
	if err != nil {
		return err
	}
	return e.cfg.Pusher.Push(ctx, body)
}

// Close stops the loop, pushes one final snapshot (unless paused), and
// closes the pusher.
func (e *Emitter) Close() error {
	var err error
	e.stopOnce.Do(func() {
		close(e.done)
		<-e.loopDone
		if !e.paused.Load() {
			ctx, cancel := context.WithTimeout(context.Background(), e.cfg.PushTimeout)
			err = e.Flush(ctx)
			cancel()
		}
		e.cfg.Pusher.Close()
	})
	return err
}

func (e *Emitter) loop() {
	defer close(e.loopDone)
	var tick <-chan time.Time
	if e.cfg.Interval > 0 {
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-e.done:
			return
		case <-e.kick:
		case <-tick:
			e.epoch.Add(1)
		}
		if e.paused.Load() {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), e.cfg.PushTimeout)
		err := e.Flush(ctx)
		cancel()
		if err != nil && e.cfg.Logger != nil {
			e.cfg.Logger.Debug("telemetry push failed", "node", e.cfg.Node, "error", err)
		}
	}
}

// assemble samples the registry and renders the next snapshot.
func (e *Emitter) assemble() ([]byte, error) {
	values, monotonic := e.cfg.Registry.SnapshotDetailed()
	if e.cfg.Filter != nil {
		for k := range values {
			if !e.cfg.Filter(k) {
				delete(values, k)
				delete(monotonic, k)
			}
		}
	}

	e.mu.Lock()
	deltas := make(map[string]float64)
	for k := range monotonic {
		v := values[k]
		d := v - e.prev[k]
		if d < 0 {
			// The series restarted under us (re-registered registry);
			// treat the new absolute value as the whole delta.
			d = v
		}
		if d != 0 {
			deltas[k] = d
		}
	}
	prev := make(map[string]float64, len(monotonic))
	for k := range monotonic {
		prev[k] = values[k]
	}
	e.prev = prev
	seq := e.seq.Add(1)
	e.mu.Unlock()

	snap := Snapshot{
		Node:            e.cfg.Node,
		Role:            e.cfg.Role,
		Seq:             seq,
		Epoch:           e.epoch.Load(),
		LastBatch:       int(e.lastBatch.Load()),
		IntervalSeconds: e.cfg.Interval.Seconds(),
		Build:           metrics.ReadBuildInfo(),
		Series:          values,
		Deltas:          deltas,
		Transport:       e.cfg.Pusher.Stats(),
	}
	if e.cfg.AuditState != nil {
		snap.AuditState = e.cfg.AuditState()
	}
	if e.cfg.PerfState != nil {
		snap.PerfState = e.cfg.PerfState()
	}
	if e.cfg.Fleet != nil {
		snap.Fleet = e.cfg.Fleet()
	}
	return json.Marshal(&snap)
}
