package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced collector clock.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// snap builds a minimal live-node snapshot: heartbeat cadence 250ms,
// one served-counter delta so goodput is nonzero.
func snap(node, role string, seq uint64, batch int) Snapshot {
	return Snapshot{
		Node:            node,
		Role:            role,
		Seq:             seq,
		Epoch:           seq,
		LastBatch:       batch,
		IntervalSeconds: 0.25,
		Series:          map[string]float64{"pprox_lrs_posts_total": float64(10 * seq)},
		Deltas:          map[string]float64{"pprox_lrs_posts_total": 10},
	}
}

// TestStalenessLifecycle drives the full contract: a silent node turns
// stale within two of its own epoch gaps, a stale node is excluded from
// every rollup, and re-registration (sequence reset after a restart)
// clears staleness immediately.
func TestStalenessLifecycle(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Now: clk.now})

	// Both nodes push in lockstep every 250ms for four rounds.
	for seq := uint64(1); seq <= 4; seq++ {
		if err := c.Ingest(snap("ua-0", "ua", seq, 8)); err != nil {
			t.Fatal(err)
		}
		if err := c.Ingest(snap("lrs-0", "lrs", seq, 0)); err != nil {
			t.Fatal(err)
		}
		clk.advance(250 * time.Millisecond)
	}

	fleet := c.Fleet()
	if fleet.Fresh != 2 || fleet.Stale != 0 {
		t.Fatalf("warm fleet: fresh=%d stale=%d, want 2/0", fleet.Fresh, fleet.Stale)
	}

	// lrs-0 goes silent; ua-0 keeps its cadence. The adaptive threshold
	// is two epoch gaps (250ms EWMA, floored at the declared 250ms
	// heartbeat) = 500ms, so just past two missed epochs lrs-0 is stale.
	for seq := uint64(5); seq <= 7; seq++ {
		clk.advance(250 * time.Millisecond)
		if err := c.Ingest(snap("ua-0", "ua", seq, 8)); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(10 * time.Millisecond) // lrs-0 silent for 1010ms > 500ms

	fleet = c.Fleet()
	if fleet.Fresh != 1 || fleet.Stale != 1 {
		t.Fatalf("after silence: fresh=%d stale=%d, want 1/1", fleet.Fresh, fleet.Stale)
	}
	byNode := make(map[string]NodeStatus)
	for _, n := range fleet.Nodes {
		byNode[n.Node] = n
	}
	if !byNode["lrs-0"].Stale {
		t.Error("lrs-0 should be stale")
	}
	if byNode["ua-0"].Stale {
		t.Error("ua-0 should be fresh")
	}
	// Exclusion from rollups: the stale node's goodput and state rows
	// must not leak into the fleet aggregates.
	if _, ok := fleet.Rollups.States["lrs-0"]; ok {
		t.Error("stale lrs-0 must be excluded from the state matrix")
	}
	if got, want := fleet.Rollups.GoodputRPS, byNode["ua-0"].GoodputRPS; got != want {
		t.Errorf("fleet goodput = %g, want only fresh ua-0's %g", got, want)
	}

	// Restarted lrs-0 re-registers: its new incarnation's Seq restarts
	// from 1, at or below the high-water mark, so the collector drops
	// the dead incarnation's history and the node is fresh again.
	if err := c.Ingest(snap("lrs-0", "lrs", 1, 0)); err != nil {
		t.Fatal(err)
	}
	fleet = c.Fleet()
	if fleet.Fresh != 2 || fleet.Stale != 0 {
		t.Fatalf("after re-registration: fresh=%d stale=%d, want 2/0", fleet.Fresh, fleet.Stale)
	}
	for _, n := range fleet.Nodes {
		if n.Node == "lrs-0" && n.Snapshots != 1 {
			t.Errorf("re-registered lrs-0 retains %d snapshots, want 1 (history dropped)", n.Snapshots)
		}
	}
	if got := c.resets.Load(); got != 1 {
		t.Errorf("resets = %d, want 1", got)
	}
}

// TestStalenessHeartbeatFloor: a node that declared a slow heartbeat is
// not stale between heartbeats even when its observed gaps were shorter
// (it was epoch-flushing under load, then went idle).
func TestStalenessHeartbeatFloor(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Now: clk.now})
	for seq := uint64(1); seq <= 5; seq++ {
		s := snap("ua-0", "ua", seq, 8)
		s.IntervalSeconds = 1.0 // declared heartbeat 1s, observed gap 10ms
		if err := c.Ingest(s); err != nil {
			t.Fatal(err)
		}
		clk.advance(10 * time.Millisecond)
	}
	clk.advance(1900 * time.Millisecond) // < 2×1s heartbeat
	if fleet := c.Fleet(); fleet.Stale != 0 {
		t.Fatalf("idle node within heartbeat floor marked stale: %+v", fleet.Nodes)
	}
	clk.advance(200 * time.Millisecond) // now silent > 2s
	if fleet := c.Fleet(); fleet.Stale != 1 {
		t.Fatalf("node silent past two heartbeats not stale: %+v", fleet.Nodes)
	}
}

// TestGoodputAndWorstBatch pins the rate and watermark computations.
func TestGoodputAndWorstBatch(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Now: clk.now})
	batches := []int{8, 5, 7, 8, 8}
	for i, b := range batches {
		s := snap("ua-0", "ua", uint64(i+1), b)
		s.Series["pprox_audit_worst_epoch_batch"] = 6
		if err := c.Ingest(s); err != nil {
			t.Fatal(err)
		}
		if i < len(batches)-1 {
			clk.advance(250 * time.Millisecond)
		}
	}
	fleet := c.Fleet()
	// Four deltas of 10 after the oldest retained snapshot over a 1s
	// arrival span.
	if got := fleet.Nodes[0].GoodputRPS; got != 40 {
		t.Errorf("node goodput = %g, want 40", got)
	}
	// Worst watermark is the min over flush sizes (5) and the exported
	// audit gauge (6).
	if got := fleet.Rollups.WorstEpochBatch; got != 5 {
		t.Errorf("worst epoch batch = %d, want 5", got)
	}
}

// TestLRSRollup: LRS training/rotation series from fresh backends sum
// into the fleet view; non-LRS fleets carry no rollup at all.
func TestLRSRollup(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Now: clk.now})
	for seq := uint64(1); seq <= 2; seq++ {
		a := snap("lrs-0", "lrs", seq, 0)
		a.Series["pprox_lrs_shards"] = 4
		a.Series["pprox_lrs_train_seconds"] = 0.8
		a.Series["pprox_lrs_events_applied_total"] = 1000
		a.Series["pprox_lrs_repseudo_running"] = 1
		a.Series["pprox_lrs_repseudo_migrated_total"] = 0
		if err := c.Ingest(a); err != nil {
			t.Fatal(err)
		}
		b := snap("lrs-1", "lrs", seq, 0)
		b.Series["pprox_lrs_shards"] = 2
		b.Series["pprox_lrs_train_seconds"] = 2.5
		b.Series["pprox_lrs_events_applied_total"] = 500
		b.Series["pprox_lrs_repseudo_running"] = 0
		b.Series["pprox_lrs_repseudo_migrated_total"] = 300
		if err := c.Ingest(b); err != nil {
			t.Fatal(err)
		}
		if err := c.Ingest(snap("ua-0", "ua", seq, 8)); err != nil {
			t.Fatal(err)
		}
		clk.advance(250 * time.Millisecond)
	}
	lrs := c.Fleet().Rollups.LRS
	if lrs == nil {
		t.Fatal("no LRS rollup despite two reporting backends")
	}
	if lrs.Shards != 6 {
		t.Errorf("shards = %d, want 6", lrs.Shards)
	}
	if lrs.TrainSeconds != 2.5 {
		t.Errorf("train seconds = %g, want worst-case 2.5", lrs.TrainSeconds)
	}
	if lrs.EventsApplied != 1500 {
		t.Errorf("events applied = %d, want 1500", lrs.EventsApplied)
	}
	if lrs.RepseudoRunning != 1 {
		t.Errorf("repseudo running = %d, want 1", lrs.RepseudoRunning)
	}
	if lrs.RepseudoMigrated != 300 {
		t.Errorf("repseudo migrated = %d, want 300", lrs.RepseudoMigrated)
	}

	// A UA-only fleet reports no LRS rollup.
	c2 := NewCollector(CollectorConfig{Now: clk.now})
	if err := c2.Ingest(snap("ua-0", "ua", 1, 8)); err != nil {
		t.Fatal(err)
	}
	if c2.Fleet().Rollups.LRS != nil {
		t.Error("LRS rollup invented for a fleet with no LRS node")
	}
}

// TestRetentionBound: history per node never exceeds Retention.
func TestRetentionBound(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Retention: 4, Now: clk.now})
	for seq := uint64(1); seq <= 20; seq++ {
		if err := c.Ingest(snap("ua-0", "ua", seq, 8)); err != nil {
			t.Fatal(err)
		}
		clk.advance(250 * time.Millisecond)
	}
	fleet := c.Fleet()
	if got := fleet.Nodes[0].Snapshots; got != 4 {
		t.Errorf("retained snapshots = %d, want 4", got)
	}
	if got := fleet.Nodes[0].Seq; got != 20 {
		t.Errorf("latest seq = %d, want 20", got)
	}
}

// TestIngestRejectsAnonymous: snapshots without a node name are refused.
func TestIngestRejectsAnonymous(t *testing.T) {
	c := NewCollector(CollectorConfig{})
	if err := c.Ingest(Snapshot{}); err == nil {
		t.Fatal("expected error for snapshot without node name")
	}
	if got := c.rejected.Load(); got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
}

// TestHandlers covers the HTTP surface: method gating, malformed bodies,
// and a round trip through ingest to the fleet report.
func TestHandlers(t *testing.T) {
	clk := newFakeClock()
	c := NewCollector(CollectorConfig{Now: clk.now})
	ingest, fleetH := c.IngestHandler(), c.FleetHandler()

	rec := httptest.NewRecorder()
	ingest.ServeHTTP(rec, httptest.NewRequest("GET", "/telemetry", nil))
	if rec.Code != 405 {
		t.Errorf("GET /telemetry = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	ingest.ServeHTTP(rec, httptest.NewRequest("POST", "/telemetry", strings.NewReader("not json")))
	if rec.Code != 400 {
		t.Errorf("malformed POST = %d, want 400", rec.Code)
	}

	rec = httptest.NewRecorder()
	body := `{"node":"ua-0","role":"ua","seq":1,"epoch":3,"build":{}}`
	ingest.ServeHTTP(rec, httptest.NewRequest("POST", "/telemetry", strings.NewReader(body)))
	if rec.Code != 204 {
		t.Fatalf("valid POST = %d, want 204: %s", rec.Code, rec.Body)
	}

	rec = httptest.NewRecorder()
	fleetH.ServeHTTP(rec, httptest.NewRequest("POST", "/fleet", nil))
	if rec.Code != 405 {
		t.Errorf("POST /fleet = %d, want 405", rec.Code)
	}

	rec = httptest.NewRecorder()
	fleetH.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /fleet = %d, want 200", rec.Code)
	}
	if got := rec.Body.String(); !strings.Contains(got, `"node": "ua-0"`) {
		t.Errorf("fleet report missing ingested node: %s", got)
	}
}
