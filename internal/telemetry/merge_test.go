package telemetry

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pprox/internal/metrics"
)

// TestMergeMatchesPooledHistogram pins the exactness claim: merging
// per-node stage histograms by summing cumulative bucket counts yields
// the same quantiles as one histogram that observed every node's raw
// samples. Three nodes (one of them exporting two layers, as a combined
// UA+IA process does) observe disjoint random latency sets; a pooled
// reference histogram with the same bucket layout observes all of them.
func TestMergeMatchesPooledHistogram(t *testing.T) {
	pooledReg := metrics.NewRegistry()
	pooled := pooledReg.Histogram("pooled_seconds", "reference", nil)

	rng := rand.New(rand.NewSource(42))
	var sets []map[string]float64
	for n := 0; n < 3; n++ {
		reg := metrics.NewRegistry()
		vec := reg.HistogramVec(StageSecondsFamily,
			"Time spent per proxy pipeline stage.", nil, "layer", "node", "stage")
		layers := []string{"ua"}
		if n == 0 {
			layers = []string{"ua", "ia"}
		}
		for _, layer := range layers {
			h := vec.With(layer, fmt.Sprintf("node-%d", n), "serve")
			for i := 0; i < 200; i++ {
				// Log-uniform across [1ms, 1s], inside DefBuckets' span.
				v := math.Pow(10, -3+3*rng.Float64())
				h.Observe(v)
				pooled.Observe(v)
			}
		}
		sets = append(sets, reg.Snapshot())
	}

	merged := MergeStageHistograms(sets)
	m := merged["serve"]
	if m == nil {
		t.Fatalf("no merged histogram for stage serve; got stages %v", stageNames(merged))
	}
	if got, want := m.Count(), pooled.Count(); got != want {
		t.Fatalf("merged count = %d, pooled count = %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
		got, overflow := m.Quantile(q)
		if overflow {
			t.Fatalf("q=%g: unexpected overflow", q)
		}
		if want := pooled.Quantile(q); got != want {
			t.Errorf("q=%g: merged quantile = %g, pooled = %g", q, got, want)
		}
	}
}

// TestMergeIntersectsDifferingLayouts merges two nodes whose bucket
// layouts differ: the merge keeps the shared bounds (cumulative counts
// stay valid on any subset of bounds) and the total count survives via
// the +Inf bucket both layouts carry.
func TestMergeIntersectsDifferingLayouts(t *testing.T) {
	mkSet := func(buckets []float64, obs []float64) map[string]float64 {
		reg := metrics.NewRegistry()
		vec := reg.HistogramVec(StageSecondsFamily, "t", buckets, "layer", "node", "stage")
		h := vec.With("ua", "n", "serve")
		for _, v := range obs {
			h.Observe(v)
		}
		return reg.Snapshot()
	}
	setA := mkSet([]float64{0.01, 0.1, 1}, []float64{0.005, 0.05, 0.5})
	setB := mkSet([]float64{0.1, 1, 10}, []float64{0.05, 0.5, 5})

	m := MergeStageHistograms([]map[string]float64{setA, setB})["serve"]
	if m == nil {
		t.Fatal("no merged histogram for stage serve")
	}
	if got, want := m.Count(), uint64(6); got != want {
		t.Fatalf("merged count = %d, want %d", got, want)
	}
	// Shared finite bounds are {0.1, 1}: cumulative 3 at 0.1 (0.005,
	// 0.05 from A pooled with 0.05 from B), 5 at 1.
	if v, overflow := m.Quantile(0.5); overflow || v != 0.1 {
		t.Errorf("p50 = %g (overflow=%v), want 0.1", v, overflow)
	}
	if v, overflow := m.Quantile(0.8); overflow || v != 1 {
		t.Errorf("p80 = %g (overflow=%v), want 1", v, overflow)
	}
	// The 5s observation lives beyond the shared finite bounds: the
	// tail quantile clamps to last-finite-bound ×10 and reports it.
	if v, overflow := m.Quantile(1.0); !overflow || v != 10 {
		t.Errorf("p100 = %g (overflow=%v), want 10 with overflow", v, overflow)
	}
}

// TestMergeSkipsForeignSeries ignores non-histogram and foreign series.
func TestMergeSkipsForeignSeries(t *testing.T) {
	set := map[string]float64{
		"pprox_proxy_requests_served_total{layer=\"ua\"}":        12,
		"pprox_proxy_stage_seconds_sum{stage=\"serve\"}":         1.5,
		"pprox_proxy_stage_seconds_count{stage=\"serve\"}":       3,
		"pprox_proxy_stage_seconds_bucket{stage=\"s\",le=\"x\"}": 1, // unparsable le
	}
	if merged := MergeStageHistograms([]map[string]float64{set}); len(merged) != 0 {
		t.Fatalf("expected no merged stages, got %v", stageNames(merged))
	}
}

func stageNames(m map[string]*MergedHistogram) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
