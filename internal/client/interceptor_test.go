package client_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/cluster"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/proxy"
)

// newInterceptedStack deploys the full PProx stack and fronts it with the
// transparent interceptor, as the sidecar does.
func newInterceptedStack(t *testing.T) (*cluster.Deployment, http.Handler) {
	t.Helper()
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		LRSFrontends: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, client.NewInterceptor(d.Client(15 * time.Second))
}

func do(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestInterceptorTransparentRoundTrip(t *testing.T) {
	d, h := newInterceptedStack(t)

	// An unmodified application posts PLAIN identifiers to the local
	// endpoint...
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("u%d", i)
		for _, item := range []string{"a", "b"} {
			rec := do(t, h, message.EventsPath, fmt.Sprintf(`{"user":%q,"item":%q}`, u, item))
			if rec.Code != http.StatusOK {
				t.Fatalf("post: %d %s", rec.Code, rec.Body)
			}
		}
	}
	for i := 0; i < 5; i++ {
		do(t, h, message.EventsPath, fmt.Sprintf(`{"user":"s%d","item":"c"}`, i))
	}
	do(t, h, message.EventsPath, `{"user":"probe","item":"a"}`)

	// ...but the LRS only ever receives pseudonyms.
	d.Engine.ForEachEvent(func(doc store.Document) {
		u := doc.Fields["user"]
		if u == "probe" || strings.HasPrefix(u, "u") || strings.HasPrefix(u, "s") {
			t.Errorf("cleartext user %q reached the LRS through the interceptor", u)
		}
	})

	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	rec := do(t, h, message.QueriesPath, `{"user":"probe"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %s", rec.Code, rec.Body)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) == 0 || resp.Items[0] != "b" {
		t.Errorf("items = %v, want plain-text b first — exactly the LRS contract", resp.Items)
	}
}

func TestInterceptorHonorsN(t *testing.T) {
	d, h := newInterceptedStack(t)
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("u%d", i)
		for j := 0; j < 6; j++ {
			do(t, h, message.EventsPath, fmt.Sprintf(`{"user":%q,"item":"i%d"}`, u, j))
		}
	}
	do(t, h, message.EventsPath, `{"user":"probe","item":"i0"}`)
	if err := d.Engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	rec := do(t, h, message.QueriesPath, `{"user":"probe","n":2}`)
	var resp message.LRSGetResponse
	if err := message.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Items) > 2 {
		t.Errorf("n ignored: %v", resp.Items)
	}
}

func TestInterceptorValidation(t *testing.T) {
	_, h := newInterceptedStack(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"missing user", message.EventsPath, `{"item":"i"}`, http.StatusBadRequest},
		{"missing item", message.EventsPath, `{"user":"u"}`, http.StatusBadRequest},
		{"bad json", message.EventsPath, `{`, http.StatusBadRequest},
		{"missing user on query", message.QueriesPath, `{}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if rec := do(t, h, tc.path, tc.body); rec.Code != tc.want {
				t.Errorf("status = %d, want %d", rec.Code, tc.want)
			}
		})
	}
	// Health and unknown paths.
	req := httptest.NewRequest(http.MethodGet, message.HealthPath, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Errorf("health = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/nope", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path = %d", rec.Code)
	}
}

func TestInterceptorUpstreamFailure(t *testing.T) {
	// An interceptor whose PProx target is gone must report a gateway
	// error, not hang or crash.
	bundleSrcUA, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	bundleSrcIA, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New(proxy.Bundle(bundleSrcUA, bundleSrcIA),
		&http.Client{Timeout: 500 * time.Millisecond}, "http://127.0.0.1:1")
	h := client.NewInterceptor(cl)
	rec := do(t, h, message.EventsPath, `{"user":"u","item":"i"}`)
	if rec.Code != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", rec.Code)
	}
}
