package client

import (
	"io"
	"net/http"

	"pprox/internal/message"
)

// Interceptor makes PProx fully transparent to an unmodified application:
// it serves the LRS REST API locally (the same contract the application
// already speaks), encrypts each call with the user-side library, and
// forwards it through the proxy service — "This library intercepts,
// encrypts and forwards clients' API calls to the proxy service" (§2.1).
// The paper ships this as static JavaScript inside the web front end; the
// Go equivalent runs as an in-process handler or a sidecar
// (cmd/pprox-sidecar).
type Interceptor struct {
	client *Client
}

// NewInterceptor wraps a configured user-side library client.
func NewInterceptor(c *Client) *Interceptor { return &Interceptor{client: c} }

// ServeHTTP accepts cleartext LRS API calls and answers them through the
// encrypted PProx path, returning exactly what the LRS would have
// returned (§2.1 ➄: "The response is finally provided to the application
// … as if it was returned by the LRS itself").
func (ic *Interceptor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == message.EventsPath:
		ic.postEvent(w, r)
	case r.Method == http.MethodPost && r.URL.Path == message.QueriesPath:
		ic.postQuery(w, r)
	case r.Method == http.MethodGet && r.URL.Path == message.HealthPath:
		io.WriteString(w, "ok")
	default:
		http.NotFound(w, r)
	}
}

func (ic *Interceptor) postEvent(w http.ResponseWriter, r *http.Request) {
	var req message.LRSPost
	if !ic.readJSON(w, r, &req) {
		return
	}
	if req.User == "" || req.Item == "" {
		http.Error(w, "user and item are required", http.StatusBadRequest)
		return
	}
	if err := ic.client.PostEvent(r.Context(), req.User, req.Item, req.Payload, req.Event); err != nil {
		httpStatusFromErr(w, err)
		return
	}
	ic.writeJSON(w, message.OK{Status: "ok"})
}

func (ic *Interceptor) postQuery(w http.ResponseWriter, r *http.Request) {
	var req message.LRSGet
	if !ic.readJSON(w, r, &req) {
		return
	}
	if req.User == "" {
		http.Error(w, "user is required", http.StatusBadRequest)
		return
	}
	items, err := ic.client.Get(r.Context(), req.User)
	if err != nil {
		httpStatusFromErr(w, err)
		return
	}
	if req.N > 0 && len(items) > req.N {
		items = items[:req.N]
	}
	ic.writeJSON(w, message.LRSGetResponse{Items: items})
}

func (ic *Interceptor) readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	if err := message.Unmarshal(body, v); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (ic *Interceptor) writeJSON(w http.ResponseWriter, v any) {
	data, err := message.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// httpStatusFromErr translates library errors to REST statuses without
// leaking upstream detail.
func httpStatusFromErr(w http.ResponseWriter, err error) {
	switch {
	case err == nil:
		return
	default:
		http.Error(w, "recommendation service unavailable", http.StatusBadGateway)
	}
}
