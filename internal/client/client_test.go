package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
)

// Shared key material: RSA generation is slow and the tests only need any
// valid pair per layer.
var (
	bundleOnce sync.Once
	sharedUA   *proxy.LayerKeys
	sharedIA   *proxy.LayerKeys
	bundleErr  error
)

func testBundle(t *testing.T) (proxy.PublicBundle, *proxy.LayerKeys, *proxy.LayerKeys) {
	t.Helper()
	bundleOnce.Do(func() {
		if sharedUA, bundleErr = proxy.NewLayerKeys(); bundleErr != nil {
			return
		}
		sharedIA, bundleErr = proxy.NewLayerKeys()
	})
	if bundleErr != nil {
		t.Fatal(bundleErr)
	}
	return proxy.Bundle(sharedUA, sharedIA), sharedUA, sharedIA
}

func TestPostEncryptsBothIdentifiers(t *testing.T) {
	bundle, ua, ia := testBundle(t)
	var got message.PostRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != message.EventsPath {
			t.Errorf("path = %s", r.URL.Path)
		}
		if err := message.Unmarshal(readAll(t, r), &got); err != nil {
			t.Errorf("unmarshal: %v", err)
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL)
	if err := c.Post(context.Background(), "alice", "casablanca", "5"); err != nil {
		t.Fatal(err)
	}

	// Neither identifier travels in the clear.
	if strings.Contains(got.EncUser, "alice") || strings.Contains(got.EncItem, "casablanca") {
		t.Error("cleartext identifier on the wire")
	}
	if got.Payload != "5" {
		t.Errorf("payload = %q", got.Payload)
	}
	// Each field decrypts only with its layer's private key.
	assertDecryptsTo(t, ua, got.EncUser, "alice")
	assertDecryptsTo(t, ia, got.EncItem, "casablanca")
	if err := tryDecrypt(ia, got.EncUser); err == nil {
		t.Error("IA key decrypted the user field")
	}
}

func assertDecryptsTo(t *testing.T, keys *proxy.LayerKeys, field, want string) {
	t.Helper()
	ct, err := message.Decode64(field)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	block, err := ppcrypto.DecryptOAEP(keys.Pair.Private, ct)
	if err != nil {
		t.Fatalf("decrypt: %v", err)
	}
	id, err := ppcrypto.UnpadID(block)
	if err != nil {
		t.Fatalf("unpad: %v", err)
	}
	if id != want {
		t.Errorf("decrypted %q, want %q", id, want)
	}
}

func tryDecrypt(keys *proxy.LayerKeys, field string) error {
	ct, err := message.Decode64(field)
	if err != nil {
		return err
	}
	_, err = ppcrypto.DecryptOAEP(keys.Pair.Private, ct)
	return err
}

func TestGetGeneratesFreshTempKeys(t *testing.T) {
	bundle, _, _ := testBundle(t)
	var keys []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req message.GetRequest
		if err := message.Unmarshal(readAll(t, r), &req); err != nil {
			t.Errorf("unmarshal: %v", err)
		}
		keys = append(keys, req.EncTempKey)
		http.Error(w, "no model", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL)
	for i := 0; i < 2; i++ {
		if _, err := c.Get(context.Background(), "u"); !errors.Is(err, ErrServiceStatus) {
			t.Fatalf("err = %v, want ErrServiceStatus", err)
		}
	}
	if len(keys) != 2 || keys[0] == keys[1] {
		t.Error("temporary key reused across get requests")
	}
}

func TestGetDecryptsAndDiscardsPadding(t *testing.T) {
	bundle, _, ia := testBundle(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req message.GetRequest
		if err := message.Unmarshal(readAll(t, r), &req); err != nil {
			t.Errorf("unmarshal: %v", err)
		}
		// Act as UA+IA+LRS in one: recover k_u and answer with an
		// encrypted, padded 3-item list.
		ct, err := message.Decode64(req.EncTempKey)
		if err != nil {
			t.Errorf("decode temp key: %v", err)
			return
		}
		ku, err := ppcrypto.DecryptOAEP(ia.Pair.Private, ct)
		if err != nil {
			t.Errorf("decrypt temp key: %v", err)
			return
		}
		packed, err := message.EncodeItemList([]string{"i1", "i2", "i3"})
		if err != nil {
			t.Error(err)
			return
		}
		enc, err := ppcrypto.SymEncrypt(ku, packed)
		if err != nil {
			t.Error(err)
			return
		}
		body, _ := message.Marshal(message.GetResponse{EncItems: message.Encode64(enc)})
		w.Write(body)
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL)
	items, err := c.Get(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || items[0] != "i1" || items[2] != "i3" {
		t.Errorf("items = %v, want the 3 real items with padding discarded", items)
	}
}

func TestGetRejectsTamperedResponse(t *testing.T) {
	bundle, _, _ := testBundle(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := message.Marshal(message.GetResponse{EncItems: message.Encode64([]byte("garbage-ciphertext-far-too-short-to-be-a-list"))})
		w.Write(body)
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL)
	if _, err := c.Get(context.Background(), "u"); !errors.Is(err, ErrBadResponse) {
		t.Fatalf("err = %v, want ErrBadResponse", err)
	}
}

func TestPostErrorStatus(t *testing.T) {
	bundle, _, _ := testBundle(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c := New(bundle, srv.Client(), srv.URL)
	if err := c.Post(context.Background(), "u", "i", ""); !errors.Is(err, ErrServiceStatus) {
		t.Fatalf("err = %v, want ErrServiceStatus", err)
	}
}

func TestPlainClientRoundTrip(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case message.EventsPath:
			var req message.LRSPost
			if err := message.Unmarshal(readAll(t, r), &req); err != nil || req.User != "u" || req.Item != "i" {
				t.Errorf("plain post = %+v err=%v", req, err)
			}
			w.Write([]byte(`{"status":"ok"}`))
		case message.QueriesPath:
			body, _ := message.Marshal(message.LRSGetResponse{Items: []string{"a", "b"}})
			w.Write(body)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := NewPlain(srv.Client(), srv.URL)
	if err := c.Post(context.Background(), "u", "i", ""); err != nil {
		t.Fatal(err)
	}
	items, err := c.Get(context.Background(), "u")
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0] != "a" {
		t.Errorf("items = %v", items)
	}
}

func TestIdentifierTooLongSurfacesError(t *testing.T) {
	bundle, _, _ := testBundle(t)
	c := New(bundle, nil, "http://unused")
	long := strings.Repeat("x", 100)
	if err := c.Post(context.Background(), long, "i", ""); err == nil {
		t.Error("oversized user identifier accepted")
	}
	if _, err := c.Get(context.Background(), long); err == nil {
		t.Error("oversized user identifier accepted on get")
	}
}

func readAll(t *testing.T, r *http.Request) []byte {
	t.Helper()
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return body
}

func TestGetRetriesAreFreshlyEncrypted(t *testing.T) {
	bundle, _, ia := testBundle(t)
	var mu sync.Mutex
	var seenUsers, seenKeys []string
	fails := 2
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req message.GetRequest
		if err := message.Unmarshal(readAll(t, r), &req); err != nil {
			t.Errorf("unmarshal: %v", err)
			return
		}
		mu.Lock()
		seenUsers = append(seenUsers, req.EncUser)
		seenKeys = append(seenKeys, req.EncTempKey)
		mu.Unlock()
		if fails > 0 {
			fails--
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		ct, _ := message.Decode64(req.EncTempKey)
		ku, err := ppcrypto.DecryptOAEP(ia.Pair.Private, ct)
		if err != nil {
			t.Errorf("decrypt temp key: %v", err)
			return
		}
		packed, _ := message.EncodeItemList([]string{"i1"})
		enc, _ := ppcrypto.SymEncrypt(ku, packed)
		body, _ := message.Marshal(message.GetResponse{EncItems: message.Encode64(enc)})
		w.Write(body)
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL).WithGetRetries(3)
	items, err := c.Get(context.Background(), "u")
	if err != nil {
		t.Fatalf("get with retries: %v", err)
	}
	if len(items) != 1 || items[0] != "i1" {
		t.Errorf("items = %v", items)
	}

	// Three attempts, each a completely fresh encryption: OAEP randomness
	// on the user identifier and a brand-new temporary key. Identical
	// ciphertexts would let an observer link a retry to the original.
	mu.Lock()
	defer mu.Unlock()
	if len(seenUsers) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(seenUsers))
	}
	for i := 1; i < len(seenUsers); i++ {
		for j := 0; j < i; j++ {
			if seenUsers[i] == seenUsers[j] {
				t.Error("two attempts share an enc_user ciphertext")
			}
			if seenKeys[i] == seenKeys[j] {
				t.Error("two attempts share an enc_temp_key ciphertext")
			}
		}
	}
}

func TestPostNeverRetries(t *testing.T) {
	bundle, _, _ := testBundle(t)
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	// Even with get retries armed, a failing post makes exactly one
	// attempt: the client cannot mint the idempotency key that makes a
	// post retry safe (see WithGetRetries).
	c := New(bundle, srv.Client(), srv.URL).WithGetRetries(3)
	if err := c.Post(context.Background(), "u", "i", ""); !errors.Is(err, ErrServiceStatus) {
		t.Fatalf("err = %v, want service status error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("server saw %d post attempts, want 1", calls)
	}
}

func TestGetDoesNotRetryBadRequests(t *testing.T) {
	bundle, _, _ := testBundle(t)
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.Error(w, "malformed", http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(bundle, srv.Client(), srv.URL).WithGetRetries(3)
	if _, err := c.Get(context.Background(), "u"); !errors.Is(err, ErrServiceStatus) {
		t.Fatalf("err = %v, want service status error", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("server saw %d attempts for a 400, want 1 (not retryable)", calls)
	}
}
