// Package client is the user-side library of PProx (§2.1, §4): the thin
// shim embedded in the application front end that intercepts REST calls to
// the recommendation service, encrypts their fields for the two proxy
// layers, and decrypts returned recommendation lists. The paper ships it
// as static JavaScript; this is the same logic as a Go library.
//
// The library holds only globally known information — the two layer public
// keys — and the user's identifier with the application. No private key or
// model is ever provisioned client-side (§3, ease of deployment).
package client

import (
	"bytes"
	"context"
	"crypto/rsa"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
	"pprox/internal/resilience"
)

// Errors reported by the library.
var (
	// ErrServiceStatus reports a non-200 REST response.
	ErrServiceStatus = errors.New("client: service returned error status")

	// ErrBadResponse reports a response that failed decryption or
	// decoding — the service-side contract was violated.
	ErrBadResponse = errors.New("client: malformed service response")
)

// Client issues post/get calls through the PProx proxy service. It is safe
// for concurrent use.
type Client struct {
	bundle proxy.PublicBundle
	http   *http.Client
	base   string
	// tenant names this application on a multi-tenant proxy deployment
	// (§6.3); empty on single-tenant deployments.
	tenant string
	// plain bypasses all encryption; it exists for the paper's m1
	// baseline configuration and for talking to an unprotected LRS.
	plain bool
	// getRetries is how many extra get attempts follow a retryable
	// failure (WithGetRetries). Posts never retry client-side.
	getRetries int
}

// WithGetRetries returns a copy of the client that retries failed get
// calls up to n extra attempts (jittered by a doubling backoff). Only gets
// retry: every attempt is freshly encrypted end to end — new OAEP
// randomness on the user identifier and a brand-new temporary key — so a
// network observer cannot link a retry to the attempt it repeats.
//
// Posts deliberately never retry from the client. A safe post retry needs
// an idempotency key the LRS can deduplicate on, and a client-chosen key
// would itself link the client-side and LRS-side observations of the
// event across the shuffler, voiding the 1/S bound. Post retries happen
// on the IA→LRS hop instead, where the enclave mints the key.
func (c *Client) WithGetRetries(n int) *Client {
	cp := *c
	cp.getRetries = n
	return &cp
}

// ForTenant returns a copy of the client addressing the named tenant's
// keys on a multi-tenant proxy deployment. The bundle must be the
// tenant's own public bundle.
func (c *Client) ForTenant(tenant string, bundle proxy.PublicBundle) *Client {
	cp := *c
	cp.tenant = tenant
	cp.bundle = bundle
	return &cp
}

// New creates a client of the proxy service at base (the UA layer's
// balancer), encrypting with the application's public bundle.
func New(bundle proxy.PublicBundle, httpClient *http.Client, base string) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{bundle: bundle, http: httpClient, base: base}
}

// NewPlain creates a client that sends cleartext identifiers — the
// unprotected baseline (configurations m1, b1–b4). It can point at a proxy
// deployment in pass-through mode or directly at an LRS.
func NewPlain(httpClient *http.Client, base string) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{http: httpClient, base: base, plain: true}
}

// Post sends primary-indicator feedback: user accessed item, with an
// optional payload (post(u, i[, p]) in the paper). The user identifier is
// encrypted for the UA layer only; the item identifier for the IA layer
// only (Fig. 3).
func (c *Client) Post(ctx context.Context, user, item, payload string) error {
	return c.PostEvent(ctx, user, item, payload, "")
}

// PostEvent sends feedback with an explicit indicator type for Correlated
// Cross-Occurrence (e.g. "view", "like"); the empty type is the primary
// indicator. Only the indicator *name* travels in the clear.
func (c *Client) PostEvent(ctx context.Context, user, item, payload, eventType string) error {
	var body []byte
	var err error
	if c.plain {
		body, err = message.Marshal(message.LRSPost{User: user, Item: item, Payload: payload, Event: eventType})
	} else {
		var encUser, encItem string
		encUser, err = c.encryptID(user, c.bundle.UAPublic)
		if err != nil {
			return err
		}
		encItem, err = c.encryptID(item, c.bundle.IAPublic)
		if err != nil {
			return err
		}
		body, err = message.Marshal(message.PostRequest{
			EncUser: encUser,
			EncItem: encItem,
			Payload: payload,
			Event:   eventType,
			Tenant:  c.tenant,
		})
	}
	if err != nil {
		return err
	}
	status, _, err := c.do(ctx, message.EventsPath, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("%w: %d", ErrServiceStatus, status)
	}
	return nil
}

// Get fetches recommendations for the user (get(u) in the paper). A fresh
// temporary key k_u is generated per call and encrypted for the IA layer,
// which uses it to hide the returned list from the UA layer (Fig. 4);
// padding pseudo-items are discarded before returning.
//
// With WithGetRetries, retryable failures (transport errors, 5xx/429) are
// retried with a fresh encryption of the whole request each time.
func (c *Client) Get(ctx context.Context, user string) ([]string, error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		items, status, err := c.getOnce(ctx, user)
		if err == nil || attempt >= c.getRetries || !retryableGet(status, err) || ctx.Err() != nil {
			return items, err
		}
		if serr := resilience.Sleep(ctx, backoff); serr != nil {
			return nil, err
		}
		backoff *= 2
	}
}

// retryableGet decides whether a failed get is worth repeating: transport
// errors (status 0) and overload/transient statuses are; a response the
// service produced but the client cannot decode is a contract violation a
// retry will not fix.
func retryableGet(status int, err error) bool {
	if errors.Is(err, ErrBadResponse) {
		return false
	}
	return status == 0 || resilience.RetryableStatus(status)
}

func (c *Client) getOnce(ctx context.Context, user string) ([]string, int, error) {
	if c.plain {
		return c.getPlain(ctx, user)
	}

	encUser, err := c.encryptID(user, c.bundle.UAPublic)
	if err != nil {
		return nil, 0, err
	}
	ku, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		return nil, 0, err
	}
	encKu, err := ppcrypto.EncryptOAEP(c.bundle.IAPublic, ku)
	if err != nil {
		return nil, 0, err
	}
	body, err := message.Marshal(message.GetRequest{
		EncUser:    encUser,
		EncTempKey: message.Encode64(encKu),
		Tenant:     c.tenant,
	})
	if err != nil {
		return nil, 0, err
	}

	status, respBody, err := c.do(ctx, message.QueriesPath, body)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, status, fmt.Errorf("%w: %d", ErrServiceStatus, status)
	}

	var resp message.GetResponse
	if err := message.Unmarshal(respBody, &resp); err != nil {
		return nil, status, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	ct, err := message.Decode64(resp.EncItems)
	if err != nil {
		return nil, status, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	packed, err := ppcrypto.SymDecrypt(ku, ct)
	if err != nil {
		return nil, status, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	items, err := message.DecodeItemList(packed)
	if err != nil {
		return nil, status, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return items, status, nil
}

func (c *Client) getPlain(ctx context.Context, user string) ([]string, int, error) {
	body, err := message.Marshal(message.LRSGet{User: user, N: message.MaxRecommendations})
	if err != nil {
		return nil, 0, err
	}
	status, respBody, err := c.do(ctx, message.QueriesPath, body)
	if err != nil {
		return nil, 0, err
	}
	if status != http.StatusOK {
		return nil, status, fmt.Errorf("%w: %d", ErrServiceStatus, status)
	}
	var resp message.LRSGetResponse
	if err := message.Unmarshal(respBody, &resp); err != nil {
		return nil, status, fmt.Errorf("%w: %v", ErrBadResponse, err)
	}
	return resp.Items, status, nil
}

// encryptID pads an identifier to the constant block size and encrypts it
// for exactly one layer.
func (c *Client) encryptID(id string, pub *rsa.PublicKey) (string, error) {
	block, err := ppcrypto.PadID(id)
	if err != nil {
		return "", err
	}
	ct, err := ppcrypto.EncryptOAEP(pub, block)
	if err != nil {
		return "", err
	}
	return message.Encode64(ct), nil
}

func (c *Client) do(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, fmt.Errorf("client: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("client: %s: %w", path, err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, fmt.Errorf("client: read response: %w", err)
	}
	return resp.StatusCode, respBody, nil
}
