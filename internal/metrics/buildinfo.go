package metrics

import (
	"runtime"
	"runtime/debug"
)

// BuildInfo identifies the running binary: module version, Go toolchain,
// and the VCS revision the binary was built from. Benchmark emitters and
// the pprox_build_info gauge both read it, so a scraped histogram and a
// BENCH_*.json file are attributable to the same commit.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	GitSHA    string `json:"git_sha"`
}

// ReadBuildInfo extracts the binary's build identity from the embedded
// module info. Fields the build did not stamp (e.g. `go run` without VCS
// metadata) come back as "unknown" rather than empty, so label values and
// JSON fields stay grep-able.
func ReadBuildInfo() BuildInfo {
	bi := BuildInfo{
		Version:   "unknown",
		GoVersion: runtime.Version(),
		GitSHA:    "unknown",
	}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" {
		bi.Version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			bi.GitSHA = s.Value
		}
	}
	return bi
}

// RegisterBuildInfo exposes the standard build-identity gauge
//
//	pprox_build_info{version,go_version,git_sha} 1
//
// on the registry. Every binary registers it so any scrape — operator,
// bench emitter, CI artifact — carries the commit it measured.
func RegisterBuildInfo(r *Registry) {
	bi := ReadBuildInfo()
	r.GaugeVec("pprox_build_info",
		"Build identity of this binary; value is always 1.",
		"version", "go_version", "git_sha").
		With(func() float64 { return 1 }, bi.Version, bi.GoVersion, bi.GitSHA)
}
