// Package metrics provides the operational observability the paper's
// testbed gets from its fluentd log pipeline (§7.2): every component
// exposes its counters on a /metrics endpoint in the Prometheus text
// exposition format (gauges only — the needs of the evaluation are
// counts and levels, not histograms, which live in internal/stats).
package metrics

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
)

// Registry collects named gauges; reading the endpoint samples each
// gauge's function.
type Registry struct {
	mu     sync.Mutex
	gauges map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: make(map[string]func() float64)}
}

// Gauge registers a sampled value under a metric name (snake_case by
// convention). Re-registering a name replaces the sampler.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot samples every gauge.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	names := make([]string, 0, len(r.gauges))
	fns := make([]func() float64, 0, len(r.gauges))
	for n, fn := range r.gauges {
		names = append(names, n)
		fns = append(fns, fn)
	}
	r.mu.Unlock()
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = fns[i]()
	}
	return out
}

// ServeHTTP renders the registry in the text exposition format, sorted by
// name for stable output.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, n := range names {
		fmt.Fprintf(w, "%s %g\n", n, snap[n])
	}
}

var _ http.Handler = (*Registry)(nil)

// Mux wraps an application handler, serving /metrics from the registry
// and everything else from the handler.
func Mux(r *Registry, app http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet && req.URL.Path == "/metrics" {
			r.ServeHTTP(w, req)
			return
		}
		app.ServeHTTP(w, req)
	})
}
