// Package metrics provides the operational observability the paper's
// testbed gets from its fluentd log pipeline (§7.2): every component
// exposes its instruments on a /metrics endpoint in the Prometheus text
// exposition format. The instrument set covers sampled gauges, monotonic
// counters (owned or sampled), and fixed-bucket latency histograms, all
// optionally labeled; observation paths are lock-free so instrumenting
// the proxy pipeline does not perturb the latency distributions the
// evaluation measures.
package metrics

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Family types in the exposition format.
const (
	typeGauge     = "gauge"
	typeCounter   = "counter"
	typeHistogram = "histogram"
)

// family is one named metric family: a type, help text, and either a
// single unlabeled instrument or a set of labeled children.
type family struct {
	name       string
	help       string
	typ        string
	labelNames []string
	bounds     []float64 // histogram bucket layout

	// Exactly one of the following is populated.
	sampleFn func() float64 // sampled gauge or sampled counter
	counter  *Counter
	hist     *Histogram
	vec      any // *CounterVec or *HistogramVec

	mu       sync.Mutex
	children map[string]*labeledChild
}

type labeledChild struct {
	labelValues []string
	inst        any // *Counter or *Histogram
}

// child returns (creating with mk if needed) the labeled child instrument.
func (f *family) child(labelValues []string, mk func() any) any {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &labeledChild{labelValues: append([]string(nil), labelValues...), inst: mk()}
		f.children[key] = c
	}
	return c.inst
}

// setChild installs or replaces the labeled child (sampled series).
func (f *family) setChild(labelValues []string, inst any) {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	f.children[key] = &labeledChild{labelValues: append([]string(nil), labelValues...), inst: inst}
}

// Registry collects metric families and renders them on /metrics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, enforcing name uniqueness across types. A
// re-registration with the same type returns the existing family (so two
// components can share a labeled family); a type clash panics, as it is a
// programming error that would corrupt the exposition.
func (r *Registry) register(f *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.families[f.name]; ok {
		if old.typ != f.typ || len(old.labelNames) != len(f.labelNames) {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", f.name, f.typ, old.typ))
		}
		return old
	}
	r.families[f.name] = f
	return f
}

// Gauge registers a sampled value under a metric name (snake_case by
// convention). Re-registering a gauge name replaces the sampler.
func (r *Registry) Gauge(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeGauge, sampleFn: fn})
	f.sampleFn = fn
}

// Counter registers and returns an owned monotonic counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: typeCounter, counter: &Counter{}})
	return f.counter
}

// CounterFunc registers a sampled monotonic counter: the value is read
// from fn at exposition time. The function must be monotonically
// non-decreasing (e.g. an atomic event count owned by another component).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(&family{name: name, help: help, typ: typeCounter, sampleFn: fn})
	f.sampleFn = fn
}

// GaugeVec registers a labeled family of sampled gauges.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *FuncVec {
	return r.funcVec(name, help, typeGauge, labelNames)
}

// CounterFuncVec registers a labeled family of sampled monotonic
// counters. Each child's function must be monotonically non-decreasing.
func (r *Registry) CounterFuncVec(name, help string, labelNames ...string) *FuncVec {
	return r.funcVec(name, help, typeCounter, labelNames)
}

func (r *Registry) funcVec(name, help, typ string, labelNames []string) *FuncVec {
	f := r.register(&family{
		name: name, help: help, typ: typ,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*labeledChild),
	})
	if f.vec == nil {
		f.vec = &FuncVec{f: f}
	}
	return f.vec.(*FuncVec)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	f := r.register(&family{
		name: name, help: help, typ: typeCounter,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*labeledChild),
	})
	if f.vec == nil {
		f.vec = &CounterVec{f: f}
	}
	return f.vec.(*CounterVec)
}

// Histogram registers and returns an owned histogram with the given
// bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(&family{
		name: name, help: help, typ: typeHistogram,
		bounds: buckets, hist: newHistogram(buckets),
	})
	return f.hist
}

// HistogramVec registers a labeled histogram family with the given bucket
// upper bounds (nil selects DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(&family{
		name: name, help: help, typ: typeHistogram,
		bounds:     buckets,
		labelNames: append([]string(nil), labelNames...),
		children:   make(map[string]*labeledChild),
	})
	if f.vec == nil {
		f.vec = &HistogramVec{f: f}
	}
	return f.vec.(*HistogramVec)
}

// series is one rendered sample line: name suffix, rendered label block,
// and value.
type series struct {
	suffix string
	labels string
	value  float64
}

// collect renders one family's series in stable order.
func (f *family) collect() []series {
	switch {
	case f.sampleFn != nil:
		return []series{{value: f.sampleFn()}}
	case f.counter != nil:
		return []series{{value: float64(f.counter.Value())}}
	case f.hist != nil:
		return histSeries(f.hist, f.bounds, nil, nil)
	default:
		f.mu.Lock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*labeledChild, 0, len(keys))
		for _, k := range keys {
			children = append(children, f.children[k])
		}
		f.mu.Unlock()

		var out []series
		for _, c := range children {
			switch inst := c.inst.(type) {
			case *Counter:
				out = append(out, series{
					labels: renderLabels(f.labelNames, c.labelValues, "", ""),
					value:  float64(inst.Value()),
				})
			case func() float64:
				out = append(out, series{
					labels: renderLabels(f.labelNames, c.labelValues, "", ""),
					value:  inst(),
				})
			case *Histogram:
				out = append(out, histSeries(inst, f.bounds, f.labelNames, c.labelValues)...)
			}
		}
		return out
	}
}

func histSeries(h *Histogram, bounds []float64, labelNames, labelValues []string) []series {
	cum, sum, count := h.snapshot()
	out := make([]series, 0, len(cum)+2)
	for i, c := range cum {
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		out = append(out, series{
			suffix: "_bucket",
			labels: renderLabels(labelNames, labelValues, "le", le),
			value:  float64(c),
		})
	}
	base := renderLabels(labelNames, labelValues, "", "")
	out = append(out,
		series{suffix: "_sum", labels: base, value: sum},
		series{suffix: "_count", labels: base, value: float64(count)},
	)
	return out
}

// renderLabels renders a `{k="v",...}` block; extraName/extraValue append
// one trailing pair (the histogram `le`). Returns "" with no labels.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraName, escapeLabel(extraValue))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Snapshot samples every series, keyed by its full rendered series name
// (including suffix and label block).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.collect() {
			out[f.name+s.suffix+s.labels] = s.value
		}
	}
	return out
}

// SnapshotDetailed samples every series like Snapshot and additionally
// reports which series are monotonic: counters and every histogram
// component (_bucket, _sum, _count — all non-decreasing for the
// non-negative observations this registry records). Delta-based consumers
// (the telemetry emitter) subtract successive samples of monotonic series
// only; gauges must travel as absolute values.
func (r *Registry) SnapshotDetailed() (values map[string]float64, monotonic map[string]bool) {
	values = make(map[string]float64)
	monotonic = make(map[string]bool)
	for _, f := range r.sortedFamilies() {
		mono := f.typ != typeGauge
		for _, s := range f.collect() {
			key := f.name + s.suffix + s.labels
			values[key] = s.value
			if mono {
				monotonic[key] = true
			}
		}
	}
	return values, monotonic
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// ServeHTTP renders the registry in the text exposition format: families
// sorted by name, each with its # HELP / # TYPE preamble and its series
// in stable order.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", `\n`))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.collect() {
			fmt.Fprintf(w, "%s%s%s %g\n", f.name, s.suffix, s.labels, s.value)
		}
	}
}

var _ http.Handler = (*Registry)(nil)

// Health is a component's self-assessment served on /healthz.
type Health struct {
	// OK reports overall readiness; false renders as 503.
	OK bool `json:"-"`
	// Status is "ok" or "degraded" (derived from OK when empty).
	Status string `json:"status"`
	// Checks names individual probes (e.g. "provisioned", "next_hop")
	// with a short state string each.
	Checks map[string]string `json:"checks,omitempty"`
}

// HealthFunc produces the current health; it runs per /healthz request,
// so probes must be cheap and bounded (use short timeouts).
type HealthFunc func() Health

// Mux wraps an application handler, serving /metrics from the registry,
// /healthz from the health function (when given — otherwise /healthz
// falls through to the application), and everything else from the
// handler.
func Mux(r *Registry, health HealthFunc, app http.Handler) http.Handler {
	return MuxRoutes(r, health, nil, app)
}

// MuxRoutes is Mux with extra operator routes (e.g. the privacy
// auditor's /privacy report) dispatched by exact path before the
// application handler. Routes never shadow /metrics or /healthz.
func MuxRoutes(r *Registry, health HealthFunc, routes map[string]http.Handler, app http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch {
		case req.Method == http.MethodGet && req.URL.Path == "/metrics":
			r.ServeHTTP(w, req)
		case req.Method == http.MethodGet && req.URL.Path == "/healthz" && health != nil:
			h := health()
			if h.Status == "" {
				h.Status = "ok"
				if !h.OK {
					h.Status = "degraded"
				}
			}
			w.Header().Set("Content-Type", "application/json")
			if !h.OK {
				w.WriteHeader(http.StatusServiceUnavailable)
			}
			json.NewEncoder(w).Encode(h)
		default:
			if extra, ok := routes[req.URL.Path]; ok {
				extra.ServeHTTP(w, req)
				return
			}
			app.ServeHTTP(w, req)
		}
	})
}
