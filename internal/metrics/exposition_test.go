package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"unicode/utf8"
)

// render serves the registry once and returns the text exposition.
func render(t *testing.T, r *Registry) string {
	t.Helper()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	return rec.Body.String()
}

func TestRoundTripEscapedLabelValues(t *testing.T) {
	values := []string{
		`plain`,
		`with space`,
		`quote " inside`,
		`backslash \ inside`,
		"newline\ninside",
		`all "three" \ of` + "\nthem",
		`trailing backslash \`,
		`{braces}and,commas=`,
	}
	r := NewRegistry()
	vec := r.GaugeVec("pprox_test_escapes", "escape round-trip", "v")
	for i, val := range values {
		i, val := i, val
		vec.With(func() float64 { return float64(i) }, val)
	}

	scraped := ParseExposition(render(t, r))
	found := make(map[string]float64)
	for series, sample := range scraped {
		name, labels := ParseSeries(series)
		if name != "pprox_test_escapes" {
			continue
		}
		found[labels["v"]] = sample
	}
	for i, val := range values {
		got, ok := found[val]
		if !ok {
			t.Errorf("label value %q lost in the exposition round trip (got %v)", val, found)
			continue
		}
		if got != float64(i) {
			t.Errorf("label value %q: sample = %g, want %d", val, got, i)
		}
	}
}

func TestNaNAndInfHistogramSamples(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pprox_test_hist", "hist with pathological observations", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(math.Inf(1))
	g := math.NaN()
	r.Gauge("pprox_test_nan_gauge", "NaN gauge", func() float64 { return g })
	r.Gauge("pprox_test_inf_gauge", "-Inf gauge", func() float64 { return math.Inf(-1) })

	scraped := ParseExposition(render(t, r))
	if v := scraped["pprox_test_hist_sum"]; !math.IsInf(v, 1) {
		t.Errorf("histogram sum = %v, want +Inf to survive the round trip", v)
	}
	if v := scraped["pprox_test_hist_count"]; v != 2 {
		t.Errorf("histogram count = %v, want 2", v)
	}
	if v := scraped[`pprox_test_hist_bucket{le="+Inf"}`]; v != 2 {
		t.Errorf("+Inf bucket = %v, want 2", v)
	}
	if v, ok := scraped["pprox_test_nan_gauge"]; !ok || !math.IsNaN(v) {
		t.Errorf("NaN gauge = %v (present %v), want NaN", v, ok)
	}
	if v := scraped["pprox_test_inf_gauge"]; !math.IsInf(v, -1) {
		t.Errorf("-Inf gauge = %v, want -Inf", v)
	}

	// A NaN *sum* (one NaN observation poisons the accumulator) must
	// still render a line the scraper keeps.
	h.Observe(math.NaN())
	scraped = ParseExposition(render(t, r))
	if v, ok := scraped["pprox_test_hist_sum"]; !ok || !math.IsNaN(v) {
		t.Errorf("NaN histogram sum = %v (present %v), want NaN", v, ok)
	}
	if v := scraped["pprox_test_hist_count"]; v != 3 {
		t.Errorf("histogram count after NaN = %v, want 3", v)
	}
}

func TestEmptyFamiliesRenderHeaderOnly(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("pprox_test_lazy_total", "no children yet", "who")
	r.HistogramVec("pprox_test_lazy_seconds", "no children yet", nil, "who")
	body := render(t, r)
	if !strings.Contains(body, "# TYPE pprox_test_lazy_total counter") {
		t.Errorf("empty counter family lost its TYPE header:\n%s", body)
	}
	scraped := ParseExposition(body)
	if len(scraped) != 0 {
		t.Errorf("empty families produced samples: %v", scraped)
	}
}

func TestParseExpositionToleratesJunk(t *testing.T) {
	body := strings.Join([]string{
		"# HELP x y",
		"",
		"no_value_here",
		"bad_value{a=\"b\"} not-a-number",
		"unterminated{a=\"b 1",
		`good{a="b"} 1 1712345678901`, // timestamped sample
		"bare 2",
		"  padded 3  ",
	}, "\n")
	got := ParseExposition(body)
	want := ScrapeSet{`good{a="b"}`: 1, "bare": 2, "padded": 3}
	if len(got) != len(want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("series %q = %v, want %v", k, got[k], v)
		}
	}
}

func TestParseSeriesWithoutLabels(t *testing.T) {
	name, labels := ParseSeries("pprox_plain_total")
	if name != "pprox_plain_total" || labels == nil || len(labels) != 0 {
		t.Errorf("ParseSeries(plain) = %q, %v", name, labels)
	}
}

func FuzzParseExposition(f *testing.F) {
	f.Add("pprox_x{a=\"b\"} 1\n# HELP\nbad")
	f.Add("x{le=\"+Inf\"} NaN")
	f.Add("y 2 123456")
	f.Fuzz(func(t *testing.T, body string) {
		for series := range ParseExposition(body) {
			ParseSeries(series) // must not panic on anything parsed out
		}
	})
}

func FuzzLabelRoundTrip(f *testing.F) {
	f.Add("plain", "x")
	f.Add(`q"uote`, `back\slash`)
	f.Add("new\nline", "sp ace")
	f.Fuzz(func(t *testing.T, v1, v2 string) {
		if !utf8.ValidString(v1) || !utf8.ValidString(v2) ||
			strings.ContainsRune(v1, '\r') || strings.ContainsRune(v2, '\r') {
			t.Skip() // the exposition format is line- and UTF-8-based
		}
		series := "fam" + renderLabels([]string{"a", "b"}, []string{v1, v2}, "", "")
		line := series + " 1"
		scraped := ParseExposition(line)
		if len(scraped) != 1 {
			t.Fatalf("rendered line %q did not parse: %v", line, scraped)
		}
		for got := range scraped {
			name, labels := ParseSeries(got)
			if name != "fam" {
				t.Fatalf("name = %q from %q", name, got)
			}
			if labels["a"] != v1 || labels["b"] != v2 {
				t.Fatalf("labels %v, want a=%q b=%q (series %q)", labels, v1, v2, got)
			}
		}
	})
}
