package metrics

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// ServeDebug starts a profiling server on addr exposing the standard
// net/http/pprof endpoints (/debug/pprof/, .../profile, .../heap, ...).
// It is served on a dedicated listener, never on the traffic port: the
// profile endpoints are operator-only and must not be reachable from the
// request path.
//
// The returned stop function drains the server gracefully (bounded by a
// short timeout, then force-closed) and is idempotent, so binaries can
// both defer it and call it from their SIGTERM path — whichever runs
// first does the work, the second is a no-op.
func ServeDebug(addr string) (stop func() error, err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l)
	var once sync.Once
	var stopErr error
	return func() error {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
			stopErr = srv.Shutdown(ctx)
			if stopErr != nil {
				srv.Close()
			}
			l.Close()
		})
		return stopErr
	}, nil
}

// InstrumentHandler wraps an HTTP handler, observing each request's
// service time into the histogram family. The label function maps a
// request to the family's label values and is responsible for bounding
// cardinality (collapse unknown paths to "other").
func InstrumentHandler(hv *HistogramVec, label func(*http.Request) []string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		hv.With(label(r)...).ObserveSince(start)
	})
}
