package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds. They span the range the PProx pipeline produces: enclave calls
// (tens of microseconds to a few milliseconds of RSA), next-hop forwards
// (sub-millisecond on the in-memory network, milliseconds on TCP), and
// shuffle waits (up to the flush timer, hundreds of milliseconds).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing counter. All methods are safe for
// concurrent use and lock-free, so counting on the request hot path does
// not perturb the latency distributions the benchmarks measure.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket latency histogram in the Prometheus style:
// cumulative `le` buckets, a `_sum`, and a `_count`. Observations are
// lock-free: a binary search over the (immutable) bounds, one atomic
// bucket increment, and a CAS loop for the floating-point sum.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; +Inf is implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is ≥ v; everything above the last
	// bound lands in the implicit +Inf bucket.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// snapshot returns cumulative bucket counts (ending with +Inf), the sum,
// and the total count, taken bucket-by-bucket (not atomic across buckets,
// which the text exposition format tolerates).
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i := range h.counts {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, h.Sum(), acc
}

// CountLE returns the number of observations that landed in buckets whose
// upper bound is ≤ v — i.e. the observations provably ≤ v at histogram
// resolution. When v is an exact bucket bound the count is exact;
// otherwise v is effectively rounded DOWN to the nearest bound below it
// (callers wanting exactness should align thresholds to bucket bounds,
// see AlignBound).
func (h *Histogram) CountLE(v float64) uint64 {
	var n uint64
	for i, b := range h.bounds {
		if b > v {
			break
		}
		n += h.counts[i].Load()
	}
	if math.IsInf(v, 1) {
		n += h.counts[len(h.bounds)].Load()
	}
	return n
}

// AlignBound rounds v UP to the histogram's nearest bucket upper bound so
// CountLE(AlignBound(v)) counts exactly the observations the bucket
// layout can attribute to "≤ v". Values above every bound return +Inf
// (the implicit last bucket).
func (h *Histogram) AlignBound(v float64) float64 {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		return h.bounds[i]
	}
	return math.Inf(1)
}

// MaxBound returns the histogram's largest finite bucket bound (0 for a
// bucketless histogram). Reporters use it to stand in for +Inf where the
// wire format cannot carry infinities (the trace exporter's bound×10
// convention).
func (h *Histogram) MaxBound() float64 {
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Quantile returns the histogram-resolution upper bound on the q-th
// quantile (0 < q ≤ 1): the smallest bucket upper bound whose cumulative
// count reaches q·Count. Observations beyond the last finite bound
// resolve to +Inf; an empty histogram returns 0. The estimate matches the
// rank-⌈q·n⌉ element of the sorted observations, coarsened up to its
// bucket bound (the same convention the trace coarsening uses), which the
// fuzz test in quantile_test.go pins against a sort-based reference.
func (h *Histogram) Quantile(q float64) float64 {
	cum, _, count := h.snapshot()
	if count == 0 {
		return 0
	}
	target := q * float64(count)
	for i, c := range cum {
		if float64(c) >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// CounterVec is a family of counters sharing a name and a label set.
// Look-ups take a lock; callers on hot paths should cache the child
// returned by With at set-up time.
type CounterVec struct {
	f *family
}

// With returns (creating if needed) the child counter for the given label
// values, which must match the family's label names in number and order.
func (v *CounterVec) With(labelValues ...string) *Counter {
	child := v.f.child(labelValues, func() any { return &Counter{} })
	return child.(*Counter)
}

// FuncVec is a labeled family of sampled series: each child's value is
// read from its function at exposition time. It backs labeled gauges and
// labeled monotonic counters whose counts are owned elsewhere (e.g. a
// component's atomic event counters).
type FuncVec struct {
	f *family
}

// With installs (or replaces) the sampler for the given label values.
func (v *FuncVec) With(fn func() float64, labelValues ...string) {
	v.f.setChild(labelValues, fn)
}

// HistogramVec is a family of histograms sharing a name, bucket layout,
// and label set.
type HistogramVec struct {
	f *family
}

// With returns (creating if needed) the child histogram for the given
// label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	child := v.f.child(labelValues, func() any { return newHistogram(v.f.bounds) })
	return child.(*Histogram)
}
