package metrics_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/metrics"
)

func TestRegistryExposition(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("b_metric", func() float64 { return 2.5 })
	r.Gauge("a_metric", func() float64 { return 1 })

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	want := "a_metric 1\nb_metric 2.5\n"
	if body != want {
		t.Errorf("exposition = %q, want %q (sorted)", body, want)
	}
}

func TestRegistryReplaceAndSnapshot(t *testing.T) {
	r := metrics.NewRegistry()
	v := 1.0
	r.Gauge("x", func() float64 { return v })
	v = 7
	if got := r.Snapshot()["x"]; got != 7 {
		t.Errorf("snapshot = %v, want live value 7", got)
	}
	r.Gauge("x", func() float64 { return 42 })
	if got := r.Snapshot()["x"]; got != 42 {
		t.Errorf("snapshot after replace = %v", got)
	}
}

func TestMuxRoutesMetricsAndApp(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("m", func() float64 { return 3 })
	app := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		io.WriteString(w, "app")
	})
	h := metrics.Mux(r, app)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "m 3") {
		t.Errorf("metrics body = %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/other", nil))
	if rec.Body.String() != "app" {
		t.Errorf("app body = %q", rec.Body.String())
	}
}

func TestProxyLayerMetrics(t *testing.T) {
	// Deploy, drive traffic, and read the layer's gauges.
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: 2, ShuffleTimeout: 20 * time.Millisecond,
		UseStub: true, LRSFrontends: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	reg := metrics.NewRegistry()
	d.UALayers[0].RegisterMetrics(reg, "pprox_ua")

	cl := d.Client(10 * time.Second)
	if _, err := cl.Get(t.Context(), "metrics-user"); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap["pprox_ua_requests_served_total"] != 1 {
		t.Errorf("served = %v", snap["pprox_ua_requests_served_total"])
	}
	if snap["pprox_ua_ecalls_total"] < 1 {
		t.Errorf("ecalls = %v", snap["pprox_ua_ecalls_total"])
	}
	if snap["pprox_ua_shuffle_flushes_total"] < 1 {
		t.Errorf("flushes = %v", snap["pprox_ua_shuffle_flushes_total"])
	}
	if _, ok := snap["pprox_ua_epc_pages_used"]; !ok {
		t.Error("EPC gauge missing")
	}
}
