package metrics_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"pprox/internal/cluster"
	"pprox/internal/metrics"
)

func expose(r *metrics.Registry) string {
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	return rec.Body.String()
}

func TestRegistryExposition(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("b_metric", "second", func() float64 { return 2.5 })
	r.Gauge("a_metric", "first", func() float64 { return 1 })

	body := expose(r)
	want := "# HELP a_metric first\n# TYPE a_metric gauge\na_metric 1\n" +
		"# HELP b_metric second\n# TYPE b_metric gauge\nb_metric 2.5\n"
	if body != want {
		t.Errorf("exposition = %q, want %q (sorted, with preambles)", body, want)
	}
}

func TestRegistryReplaceAndSnapshot(t *testing.T) {
	r := metrics.NewRegistry()
	v := 1.0
	r.Gauge("x", "", func() float64 { return v })
	v = 7
	if got := r.Snapshot()["x"]; got != 7 {
		t.Errorf("snapshot = %v, want live value 7", got)
	}
	r.Gauge("x", "", func() float64 { return 42 })
	if got := r.Snapshot()["x"]; got != 42 {
		t.Errorf("snapshot after replace = %v", got)
	}
}

func TestCounterExposition(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("events_total", "Things that happened.")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	body := expose(r)
	if !strings.Contains(body, "# TYPE events_total counter\n") {
		t.Errorf("missing counter TYPE line in %q", body)
	}
	if !strings.Contains(body, "events_total 3\n") {
		t.Errorf("missing sample in %q", body)
	}
}

func TestCounterVecStableOrder(t *testing.T) {
	r := metrics.NewRegistry()
	v := r.CounterVec("hits_total", "Labeled hits.", "node")
	v.With("b").Add(2)
	v.With("a").Inc()
	// Same labels → same child.
	v.With("a").Inc()

	body := expose(r)
	wantOrder := "hits_total{node=\"a\"} 2\nhits_total{node=\"b\"} 2\n"
	if !strings.Contains(body, wantOrder) {
		t.Errorf("children not in stable sorted order:\n%s", body)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := metrics.NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	body := expose(r)
	if !strings.Contains(body, "# TYPE lat_seconds histogram\n") {
		t.Fatalf("missing histogram TYPE line in %q", body)
	}
	for _, line := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, body)
		}
	}
	// Buckets must be cumulative and end at the total count.
	var prev float64
	var buckets int
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		buckets++
		val, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		if val < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev = val
	}
	if buckets != 4 {
		t.Errorf("bucket lines = %d, want 4 (3 bounds + +Inf)", buckets)
	}
	if prev != float64(h.Count()) {
		t.Errorf("+Inf bucket %v != count %d", prev, h.Count())
	}
	if sum := h.Sum(); sum < 5.6 || sum > 5.61 {
		t.Errorf("sum = %v, want ≈5.605", sum)
	}
}

func TestHistogramVecSharesFamily(t *testing.T) {
	r := metrics.NewRegistry()
	v1 := r.HistogramVec("stage_seconds", "Stage time.", nil, "stage")
	v2 := r.HistogramVec("stage_seconds", "Stage time.", nil, "stage")
	v1.With("decrypt").Observe(0.001)
	v2.With("decrypt").Observe(0.001)
	if got := v1.With("decrypt").Count(); got != 2 {
		t.Errorf("re-registered family did not share children: count = %d", got)
	}
	// One TYPE line even though registered twice.
	if n := strings.Count(expose(r), "# TYPE stage_seconds histogram"); n != 1 {
		t.Errorf("TYPE lines = %d, want 1", n)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := metrics.NewRegistry()
	v := r.CounterVec("weird_total", "", "path")
	v.With("a\\b\"c\nd").Inc()
	body := expose(r)
	want := `weird_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(body, want+"\n") {
		t.Errorf("escaped series %q missing from:\n%s", want, body)
	}
}

func TestMuxRoutesMetricsHealthAndApp(t *testing.T) {
	r := metrics.NewRegistry()
	r.Gauge("m", "", func() float64 { return 3 })
	app := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		io.WriteString(w, "app")
	})
	healthy := true
	h := metrics.Mux(r, func() metrics.Health {
		return metrics.Health{OK: healthy, Checks: map[string]string{"probe": "ok"}}
	}, app)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "m 3") {
		t.Errorf("metrics body = %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
	healthy = false
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), `"status":"degraded"`) {
		t.Errorf("degraded healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/other", nil))
	if rec.Body.String() != "app" {
		t.Errorf("app body = %q", rec.Body.String())
	}
}

func TestDeploymentMetricsEndToEnd(t *testing.T) {
	// Deploy with shuffling, drive traffic, and scrape a UA node's
	// /metrics over the in-memory network — the acceptance path.
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: 2, ShuffleTimeout: 20 * time.Millisecond,
		UseStub: true, LRSFrontends: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	cl := d.Client(10 * time.Second)
	if _, err := cl.Get(t.Context(), "metrics-user"); err != nil {
		t.Fatal(err)
	}

	snap := d.Metrics.Snapshot()
	if snap[`pprox_proxy_requests_served_total{layer="ua",node="ua-0"}`] != 1 {
		t.Errorf("ua served = %v", snap[`pprox_proxy_requests_served_total{layer="ua",node="ua-0"}`])
	}
	if snap[`pprox_enclave_ecalls_total{layer="ua",node="ua-0"}`] < 1 {
		t.Errorf("ua ecalls = %v", snap[`pprox_enclave_ecalls_total{layer="ua",node="ua-0"}`])
	}
	if snap[`pprox_proxy_shuffle_flushes_total{layer="ua",node="ua-0"}`] < 1 {
		t.Errorf("ua flushes = %v", snap[`pprox_proxy_shuffle_flushes_total{layer="ua",node="ua-0"}`])
	}
	if _, ok := snap[`pprox_enclave_epc_pages_used{layer="ua",node="ua-0"}`]; !ok {
		t.Error("EPC gauge missing")
	}
	for _, stage := range []string{"ecall_decrypt", "shuffle_wait", "forward"} {
		key := fmt.Sprintf(`pprox_proxy_stage_seconds_count{layer="ua",node="ua-0",stage=%q}`, stage)
		if snap[key] < 1 {
			t.Errorf("stage %s unobserved: %v", stage, snap[key])
		}
	}
	if snap[`pprox_lrs_request_seconds_count{node="lrs",path="/queries"}`] < 1 {
		t.Error("LRS request histogram unobserved")
	}

	// Scrape over the wire like an operator.
	httpClient := d.HTTPClient(5 * time.Second)
	resp, err := httpClient.Get("http://ua-0/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `pprox_proxy_stage_seconds_bucket{layer="ua",node="ua-0",stage="shuffle_wait",le=`) {
		t.Errorf("scraped /metrics missing shuffle_wait buckets:\n%.2000s", body)
	}
	if !strings.Contains(string(body), "# TYPE pprox_proxy_stage_seconds histogram") {
		t.Error("scraped /metrics missing TYPE line")
	}

	// /healthz reports the provisioned layer as ready.
	hresp, err := httpClient.Get("http://ua-0/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		hb, _ := io.ReadAll(hresp.Body)
		t.Errorf("healthz = %d %s", hresp.StatusCode, hb)
	}
}
