package metrics

import (
	"runtime"
	"sync"
	"time"
)

// memStatsTTL bounds how often a scrape may trigger runtime.ReadMemStats.
// Reading memstats stops the world briefly; one read serves every
// pprox_go_* series of a scrape, and scrapes closer together than the TTL
// (e.g. a telemetry flush racing an operator scrape) share the cached
// read rather than pausing the process twice.
const memStatsTTL = 250 * time.Millisecond

// memStatsReader caches one runtime.MemStats read per TTL window.
type memStatsReader struct {
	mu   sync.Mutex
	at   time.Time
	last runtime.MemStats
}

func (m *memStatsReader) read() runtime.MemStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if time.Since(m.at) > memStatsTTL {
		runtime.ReadMemStats(&m.last)
		m.at = time.Now()
	}
	return m.last
}

// RegisterRuntimeMetrics exposes the process's Go runtime state as the
// pprox_go_* families, sampled at collection time:
//
//	pprox_go_goroutines            live goroutines
//	pprox_go_heap_bytes            bytes of allocated heap objects
//	pprox_go_gc_pause_seconds_total cumulative stop-the-world GC pause
//	pprox_go_gomaxprocs            scheduler parallelism
//
// Every binary registers it beside RegisterBuildInfo, so any scrape — and
// any telemetry snapshot assembled from the registry — describes the
// process itself, not just the pipeline it runs. The values are process
// aggregates with no per-request resolution, so exporting them keeps the
// epoch-granularity discipline for free.
func RegisterRuntimeMetrics(r *Registry) {
	var ms memStatsReader
	r.Gauge("pprox_go_goroutines",
		"Goroutines currently live in this process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.Gauge("pprox_go_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 { return float64(ms.read().HeapAlloc) })
	r.CounterFunc("pprox_go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.",
		func() float64 { return float64(ms.read().PauseTotalNs) / 1e9 })
	r.Gauge("pprox_go_gomaxprocs",
		"Value of GOMAXPROCS (scheduler parallelism).",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
}
