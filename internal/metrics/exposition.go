package metrics

import (
	"bufio"
	"strconv"
	"strings"
)

// This file is the read side of the text exposition format: the scraper
// counterpart of ServeHTTP. cmd/pprox-bench and cmd/pprox-audit consume
// it, and its tests round-trip the render side through it so both ends
// agree on the edge cases (escaped label values, NaN/Inf samples, empty
// families).

// ScrapeSet maps a full series identity — family name plus suffix plus
// rendered label block, exactly as exposed — to its sampled value.
type ScrapeSet map[string]float64

// ParseExposition parses Prometheus text-format lines into a ScrapeSet.
// Comment (#) and blank lines are skipped; malformed lines are dropped
// rather than failing the scrape, matching scraper convention. The value
// separator is found *after* the label block, so label values containing
// spaces survive.
func ParseExposition(body string) ScrapeSet {
	out := make(ScrapeSet)
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series, value, ok := splitSeriesValue(line)
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			continue
		}
		out[series] = v
	}
	return out
}

// splitSeriesValue splits a sample line into its series identity and
// value token. A space inside a quoted label value is not a separator,
// so the label block is walked with escape awareness instead of cutting
// at the last space (a trailing timestamp, which this registry never
// emits, would also defeat that shortcut).
func splitSeriesValue(line string) (series, value string, ok bool) {
	end := strings.IndexByte(line, '{')
	if end >= 0 {
		close := labelBlockEnd(line, end)
		if close < 0 {
			return "", "", false
		}
		rest := strings.TrimSpace(line[close+1:])
		// A timestamp after the value is allowed by the format; take the
		// first token only.
		if sp := strings.IndexByte(rest, ' '); sp >= 0 {
			rest = rest[:sp]
		}
		return line[:close+1], rest, rest != ""
	}
	sp := strings.IndexByte(line, ' ')
	if sp < 0 {
		return "", "", false
	}
	fields := strings.Fields(line[sp:])
	if len(fields) == 0 {
		return "", "", false
	}
	return line[:sp], fields[0], true
}

// labelBlockEnd returns the index of the '}' closing the label block
// opened at open, honoring quoted values and backslash escapes, or -1.
func labelBlockEnd(line string, open int) int {
	inQuotes := false
	for i := open + 1; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inQuotes {
				i++ // skip the escaped character
			}
		case '"':
			inQuotes = !inQuotes
		case '}':
			if !inQuotes {
				return i
			}
		}
	}
	return -1
}

// ParseSeries decomposes a series identity like `name{a="x",b="y"}` into
// its name and label map, unescaping label values (backslash, quote,
// newline — the inverse of escapeLabel). Series without labels return an
// empty, non-nil map.
func ParseSeries(series string) (name string, labels map[string]string) {
	labels = make(map[string]string)
	open := strings.IndexByte(series, '{')
	if open < 0 {
		return series, labels
	}
	name = series[:open]
	body := series[open+1:]
	if i := strings.LastIndexByte(body, '}'); i >= 0 {
		body = body[:i]
	}
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || eq+1 >= len(body) || body[eq+1] != '"' {
			break
		}
		key := strings.TrimPrefix(strings.TrimSpace(body[:eq]), ",")
		key = strings.TrimSpace(key)
		val, rest, ok := scanQuoted(body[eq+1:])
		if !ok {
			break
		}
		labels[key] = val
		body = rest
	}
	return name, labels
}

// scanQuoted consumes a leading quoted string, returning its unescaped
// content and the remainder after the closing quote.
func scanQuoted(s string) (val, rest string, ok bool) {
	if len(s) == 0 || s[0] != '"' {
		return "", "", false
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \" pass through; unknown escapes literal
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], true
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", false
}
