package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// refQuantile is the sort-based reference the histogram estimate must
// coarsen to: the rank-⌈q·n⌉ element of the sorted observations.
func refQuantile(obs []float64, q float64) float64 {
	sorted := append([]float64(nil), obs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// coarsen rounds a value up to its bucket bound, +Inf past the last one —
// the resolution loss the histogram representation imposes.
func coarsen(bounds []float64, v float64) float64 {
	i := sort.SearchFloat64s(bounds, v)
	if i < len(bounds) {
		return bounds[i]
	}
	return math.Inf(1)
}

func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
}

func TestQuantileExactBucketBoundaries(t *testing.T) {
	// Observations exactly on bucket bounds must land in (and resolve to)
	// those bounds, never the next bucket up: SearchFloat64s picks the
	// first bound ≥ v, so a value equal to a bound stays in its bucket.
	bounds := []float64{0.001, 0.01, 0.1, 1}
	h := newHistogram(bounds)
	for _, b := range bounds {
		h.Observe(b)
	}
	// 4 observations, one per bucket. Quantile q covers rank ⌈4q⌉.
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 0.001},
		{0.26, 0.01},
		{0.5, 0.01},
		{0.75, 0.1},
		{0.99, 1},
		{1, 1},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileInfBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(0.5) // bucket le=1
	h.Observe(10)  // implicit +Inf bucket
	h.Observe(99)  // implicit +Inf bucket
	if got := h.Quantile(0.33); got != 1 {
		t.Errorf("Quantile(0.33) = %g, want 1", got)
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); !math.IsInf(got, 1) {
			t.Errorf("Quantile(%g) = %g, want +Inf (observation beyond last bound)", q, got)
		}
	}
}

func TestCountLEAndAlignBound(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 8} {
		h.Observe(v)
	}
	cases := []struct {
		v    float64
		want uint64
	}{
		{1, 2},           // 0.5 and the exact-bound 1
		{2, 4},           // + 1.5 and the exact-bound 2
		{4, 5},           // + 3
		{3, 4},           // not a bound: rounds down to le=2
		{0.1, 0},         // below every bound
		{math.Inf(1), 6}, // everything, including the +Inf bucket
	}
	for _, c := range cases {
		if got := h.CountLE(c.v); got != c.want {
			t.Errorf("CountLE(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := h.AlignBound(1.5); got != 2 {
		t.Errorf("AlignBound(1.5) = %g, want 2", got)
	}
	if got := h.AlignBound(4); got != 4 {
		t.Errorf("AlignBound(4) = %g, want 4 (exact bound stays)", got)
	}
	if got := h.AlignBound(5); !math.IsInf(got, 1) {
		t.Errorf("AlignBound(5) = %g, want +Inf", got)
	}
}

// TestQuantileAgainstSortedReference cross-checks the histogram estimate
// against the sort-based reference over deterministic pseudo-random
// workloads: the histogram answer must equal the coarsened reference
// answer for every tested quantile.
func TestQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	bounds := DefBuckets
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		h := newHistogram(bounds)
		obs := make([]float64, n)
		for i := range obs {
			// Mix of in-range, exact-bound, and beyond-last-bound values.
			switch rng.Intn(10) {
			case 0:
				obs[i] = bounds[rng.Intn(len(bounds))]
			case 1:
				obs[i] = bounds[len(bounds)-1] * (1 + rng.Float64())
			default:
				obs[i] = math.Exp(rng.Float64()*14 - 10) // ~45µs … ~55s
			}
			h.Observe(obs[i])
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			want := coarsen(bounds, refQuantile(obs, q))
			got := h.Quantile(q)
			if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("trial %d n=%d: Quantile(%g) = %g, reference coarsens to %g",
					trial, n, q, got, want)
			}
		}
	}
}

// FuzzQuantile drives the same cross-check from the fuzz corpus: any
// byte string decodes to a workload + quantile, and the histogram must
// agree with the coarsened sort-based reference.
func FuzzQuantile(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(5000))
	f.Add([]byte{}, uint16(9900))
	f.Add([]byte{255, 0, 128}, uint16(1))
	f.Fuzz(func(t *testing.T, raw []byte, qRaw uint16) {
		q := float64(qRaw%10000+1) / 10000 // (0, 1]
		h := newHistogram(DefBuckets)
		obs := make([]float64, 0, len(raw))
		for _, b := range raw {
			// Map each byte across the bucket range, hitting exact bounds
			// for bytes below len(DefBuckets).
			var v float64
			if int(b) < len(DefBuckets) {
				v = DefBuckets[b]
			} else {
				v = float64(b) / 12.0 // up to ~21s, past the last bound
			}
			obs = append(obs, v)
			h.Observe(v)
		}
		if len(obs) == 0 {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("empty Quantile(%g) = %g, want 0", q, got)
			}
			return
		}
		want := coarsen(DefBuckets, refQuantile(obs, q))
		got := h.Quantile(q)
		if got != want && !(math.IsInf(got, 1) && math.IsInf(want, 1)) {
			t.Fatalf("n=%d Quantile(%g) = %g, reference coarsens to %g", len(obs), q, got, want)
		}
	})
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r)
	snap := r.Snapshot()
	found := false
	for series, v := range snap {
		if strings.HasPrefix(series, "pprox_build_info{") {
			found = true
			if v != 1 {
				t.Errorf("pprox_build_info = %g, want 1", v)
			}
			name, labels := ParseSeries(series)
			if name != "pprox_build_info" {
				t.Errorf("series name = %q", name)
			}
			for _, k := range []string{"version", "go_version", "git_sha"} {
				if labels[k] == "" {
					t.Errorf("pprox_build_info missing label %q (labels: %v)", k, labels)
				}
			}
		}
	}
	if !found {
		t.Fatal("pprox_build_info not exported")
	}
}
