package hopwire

import (
	"bufio"
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"pprox/internal/message"
)

// Server serves frame connections by bridging each frame into the node's
// existing HTTP stack: a batch frame becomes an in-memory POST /batch, a
// single frame a POST to its entry's per-message path, a telemetry frame
// a POST /telemetry at the fleet collector. The bridge keeps
// every middleware the node already stacks — fault injection, metrics,
// audit routes — on the frame path for free, and guarantees that frames
// and HTTP expose the same behaviour at every node.
type Server struct {
	h http.Handler

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer wraps a node's HTTP handler for frame serving.
func NewServer(h http.Handler) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		h:      h,
		ctx:    ctx,
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
}

// Close drops every live frame connection and cancels in-flight bridged
// requests.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.closed = true
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// ServeConn serves frames on one connection until it fails, idles out, or
// the server closes. It blocks; the mux runs it on the connection's
// goroutine.
func (s *Server) ServeConn(conn net.Conn) {
	if !s.track(conn) {
		conn.Close()
		return
	}
	defer s.untrack(conn)
	defer conn.Close()

	br, ok := connReader(conn)
	if !ok {
		br = bufio.NewReaderSize(conn, 32<<10)
	}
	hdr := make([]byte, message.FrameHeaderSize)
	// One read buffer per connection, grown to the largest frame seen:
	// nothing dispatched retains the request frame (the bridge hands the
	// handler stack a body it copies), so the next frame may overwrite it.
	var frameBuf []byte
	for {
		// Between frames the connection may idle in the peer's pool.
		conn.SetReadDeadline(time.Now().Add(serverIdleTimeout))
		if _, err := io.ReadFull(br, hdr); err != nil {
			return
		}
		h, err := message.ParseFrameHeader(hdr)
		if err != nil {
			// The stream position is unknown after a malformed header:
			// answer once, then drop the connection.
			conn.SetWriteDeadline(time.Now().Add(serverIOTimeout))
			conn.Write(message.AppendErrorFrame(nil, 0, http.StatusBadRequest, "bad frame"))
			return
		}
		if cap(frameBuf) < h.FrameSize() {
			frameBuf = make([]byte, h.FrameSize())
		}
		frame := frameBuf[:h.FrameSize()]
		copy(frame, hdr)
		conn.SetReadDeadline(time.Now().Add(serverIOTimeout))
		if _, err := io.ReadFull(br, frame[message.FrameHeaderSize:]); err != nil {
			return
		}
		resp := s.dispatch(h, frame, conn.RemoteAddr().String())
		conn.SetWriteDeadline(time.Now().Add(serverIOTimeout))
		if _, err := conn.Write(resp); err != nil {
			return
		}
		conn.SetDeadline(time.Time{})
	}
}

// dispatch bridges one request frame into the HTTP stack and renders the
// response frame.
func (s *Server) dispatch(h message.FrameHeader, frame []byte, remote string) []byte {
	switch h.Kind {
	case message.FrameBatch:
		// The frame IS the /batch body — no re-encode on either side.
		status, body := s.bridge(message.BatchPath, frame, remote)
		if status == http.StatusOK && message.IsFrame(body) {
			return body
		}
		return message.AppendErrorFrame(nil, h.Epoch, status, errText(body))
	case message.FrameSingle, message.FrameTelemetry:
		_, entries, err := message.DecodeBatchFrame(frame)
		if err != nil {
			return message.AppendErrorFrame(nil, h.Epoch, http.StatusBadRequest, "bad frame")
		}
		e := entries[0]
		// A telemetry frame's kind IS its route; a single frame's entry
		// carries the per-message path it stands for.
		path := message.TelemetryPath
		if h.Kind == message.FrameSingle {
			var ok bool
			if path, ok = message.BatchKindPath(e.Kind); !ok {
				return message.AppendErrorFrame(nil, h.Epoch, http.StatusBadRequest, "bad entry kind")
			}
		}
		status, body := s.bridge(path, e.Body, remote)
		resp, err := message.AppendBatchFrame(nil, h.Kind, h.Epoch,
			[]message.BatchEntry{{ID: e.ID, Status: status, Body: body}})
		if err != nil {
			return message.AppendErrorFrame(nil, h.Epoch, http.StatusInternalServerError, "encode response")
		}
		return resp
	default:
		return message.AppendErrorFrame(nil, h.Epoch, http.StatusBadRequest, "bad frame kind")
	}
}

// bridge synthesizes an in-memory POST against the node's handler stack.
func (s *Server) bridge(path string, body []byte, remote string) (int, []byte) {
	req, err := http.NewRequestWithContext(s.ctx, http.MethodPost, path, bytes.NewReader(body))
	if err != nil {
		return http.StatusInternalServerError, nil
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.RemoteAddr = remote
	rec := &respRecorder{}
	s.h.ServeHTTP(rec, req)
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return rec.status, rec.buf.Bytes()
}

// errText renders an HTTP error body as constant-class frame text (the
// handlers emit one-line class strings via http.Error).
func errText(body []byte) string {
	return strings.TrimSpace(string(body))
}

// respRecorder is the minimal in-memory http.ResponseWriter behind the
// bridge.
type respRecorder struct {
	header http.Header
	buf    bytes.Buffer
	status int
}

func (r *respRecorder) Header() http.Header {
	if r.header == nil {
		r.header = make(http.Header)
	}
	return r.header
}

func (r *respRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
}

func (r *respRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.buf.Write(p)
}
