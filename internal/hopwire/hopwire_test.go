package hopwire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/message"
	"pprox/internal/transport"
)

// echoHandler is a stand-in node: /batch echoes the envelope back with
// statuses set (epoch echoed via the wire-format rule), per-message paths
// echo the body, /healthz answers ok.
func echoHandler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case message.BatchPath:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, "read", http.StatusBadRequest)
				return
			}
			epoch, entries, err := message.UnmarshalBatchEpoch(body)
			if err != nil {
				http.Error(w, "bad envelope", http.StatusBadRequest)
				return
			}
			out := make([]message.BatchEntry, len(entries))
			for i, e := range entries {
				out[i] = message.BatchEntry{ID: e.ID, Status: http.StatusOK, Body: e.Body}
			}
			payload, err := message.MarshalBatchEpoch(nil, epoch, out)
			if err != nil {
				http.Error(w, "marshal", http.StatusInternalServerError)
				return
			}
			w.Write(payload)
		case message.EventsPath, message.QueriesPath:
			body, _ := io.ReadAll(r.Body)
			w.Write(append([]byte("re:"), body...))
		case message.HealthPath:
			fmt.Fprint(w, "ok")
		default:
			http.NotFound(w, r)
		}
	})
}

func startFramePeer(t *testing.T, n *transport.Network, addr string, h http.Handler) func() error {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := ServeHTTPAndFrames(l, h)
	t.Cleanup(func() { shutdown() })
	return shutdown
}

func TestBatchExchangeRoundTrip(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	in := []message.BatchEntry{
		{ID: 0, Kind: message.BatchKindGet, Body: []byte("q-0")},
		{ID: 1, Kind: message.BatchKindPost, Body: []byte("p-1")},
	}
	frame, err := message.MarshalBatchEpoch(nil, 77, in)
	if err != nil {
		t.Fatal(err)
	}
	status, resp, err := c.RoundTrip(context.Background(), message.BatchPath, frame)
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	epoch, out, err := message.UnmarshalBatchEpoch(resp)
	if err != nil {
		t.Fatalf("response not an envelope: %v", err)
	}
	if epoch != 77 {
		t.Fatalf("response epoch = %d, want 77", epoch)
	}
	if len(out) != 2 || !bytes.Equal(out[0].Body, []byte("q-0")) || out[1].Status != http.StatusOK {
		t.Fatalf("out = %+v", out)
	}
}

func TestSingleExchangeAndConnReuse(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 5; i++ {
		status, resp, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("hello"))
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if status != http.StatusOK || string(resp) != "re:hello" {
			t.Fatalf("exchange %d: (%d, %q)", i, status, resp)
		}
	}
	st := c.Stats()
	if st.Exchanges != 5 {
		t.Fatalf("exchanges = %d, want 5", st.Exchanges)
	}
	if st.Dials != 1 || st.Reuses != 4 {
		t.Fatalf("dials/reuses = %d/%d, want 1/4 (persistent conn)", st.Dials, st.Reuses)
	}
}

func TestConcurrentExchanges(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))
	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := []byte(fmt.Sprintf("msg-%d", i))
			_, resp, err := c.RoundTrip(context.Background(), message.EventsPath, body)
			if err != nil {
				errs <- err
				return
			}
			if want := "re:" + string(body); string(resp) != want {
				errs <- fmt.Errorf("got %q, want %q (cross-exchange mixup)", resp, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The mux must keep serving HTTP on the same listener: health probes and
// JSON-era peers share the address with frame traffic.
func TestMuxServesHTTPAlongsideFrames(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	hc := transport.HTTPClient(n, 5*time.Second)
	resp, err := hc.Get("http://peer" + message.HealthPath)
	if err != nil {
		t.Fatalf("HTTP over mux: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok" {
		t.Fatalf("healthz = (%d, %q)", resp.StatusCode, body)
	}

	c, _ := NewClient(n, "http://peer")
	defer c.Close()
	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); err != nil {
		t.Fatalf("frames over mux: %v", err)
	}
}

// A plain-HTTP peer (no frame support) must latch ErrUnsupported so the
// proxy falls back to its HTTP path — the rolling-upgrade contract. The
// peer is a raw responder emitting an HTTP status line for whatever
// arrives, the provable non-frame reply the client keys on.
func TestFallbackAgainstHTTPOnlyPeer(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	l, err := n.Listen("legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				// Drain whatever the client writes (the pipe is
				// synchronous) while answering with an HTTP status line;
				// the client closes the conn once it sees non-frame bytes.
				go io.Copy(io.Discard, conn)
				io.WriteString(conn, "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n")
			}(conn)
		}
	}()

	c, err := NewClient(n, "http://legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	// The verdict is latched: the next exchange refuses immediately
	// without probing the peer again.
	start := time.Now()
	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("latched err = %v, want ErrUnsupported", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("latched fallback still probed the peer")
	}
	if st := c.Stats(); st.Fallbacks != 2 {
		t.Fatalf("fallbacks = %d, want 2", st.Fallbacks)
	}
}

// The same fallback against a real net/http server, which behaves very
// differently from the canned responder above: it reads the request line
// until it sees a newline. Encrypted slot bodies may contain none, so
// detection must not depend on payload bytes — the frame header's fixed
// CRLF terminates the read, the server answers 400 at once, and the
// client latches ErrUnsupported promptly instead of hanging until the
// exchange deadline (which is how a rolling-upgrade mix was discovered to
// stall in live TCP testing).
func TestFallbackAgainstRealNetHTTPServer(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	l, err := n.Listen("legacy")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(l)
	defer srv.Close()

	c, err := NewClient(n, "http://legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A body with no 0x0A anywhere: without the header CRLF the server
	// would block awaiting the rest of its "request line".
	body := bytes.Repeat([]byte{0xC7}, 700)
	start := time.Now()
	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, body); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("detection took %v; the server sat on an unterminated request line", d)
	}
	if st := c.Stats(); st.Fallbacks != 1 || st.Exchanges != 0 {
		t.Fatalf("stats = %+v, want 1 fallback, 0 exchanges", st)
	}
}

// A frame LARGER than the HTTP server's read buffer never makes it out:
// the frame-illiterate server stops reading once its request parser
// chokes, so the write itself wedges and no response bytes ever come
// back to trip the non-frame check. The probe-bounded first write must
// convert that wedge into a fast ErrUnsupported instead of sitting on
// the full exchange deadline.
func TestFallbackWhenLargeFrameWedgesWrite(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	l, err := n.Listen("legacy")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go srv.Serve(l)
	defer srv.Close()

	c, err := NewClient(n, "http://legacy")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.probeTimeout = 50 * time.Millisecond

	// Far past any server-side read buffer, and 0x0A-free so the server
	// never even finds the end of its "request line".
	body := bytes.Repeat([]byte{0xC7}, 64<<10)
	start := time.Now()
	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, body); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("detection took %v; the probe bound did not fire", d)
	}
	if st := c.Stats(); st.Fallbacks != 1 || st.Exchanges != 0 {
		t.Fatalf("stats = %+v, want 1 fallback, 0 exchanges", st)
	}
	if !c.inCooldown() {
		t.Fatal("write-wedge verdict did not latch the fallback cooldown")
	}
}

// A verified peer (one completed frame exchange) must NOT inherit the
// probe bound: large frames to a slow-but-frame-speaking peer get the
// full exchange deadline.
func TestVerifiedPeerSkipsProbeBound(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !c.verified.Load() {
		t.Fatal("successful frame exchange did not verify the peer")
	}
	// A payload well past the probe-era frame sizes still round-trips.
	big := bytes.Repeat([]byte{0xC7}, 64<<10)
	st, resp, err := c.RoundTrip(context.Background(), message.QueriesPath, big)
	if err != nil || st != http.StatusOK {
		t.Fatalf("large verified exchange: status %d, err %v", st, err)
	}
	if !bytes.HasPrefix(resp, []byte("re:")) {
		t.Fatalf("resp = %.16q..., want echo", resp)
	}
}

// After the cooldown expires the client probes again — a restarted,
// now-frame-speaking peer is picked up without intervention.
func TestUnsupportedCooldownExpires(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.cooldown = 10 * time.Millisecond
	c.markUnsupported()

	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("during cooldown: err = %v, want ErrUnsupported", err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x")); err != nil {
		t.Fatalf("after cooldown: %v", err)
	}
}

// A server restart between exchanges leaves the client holding a dead
// pooled conn; the health check plus the one-retry rule must recover
// without surfacing an error.
func TestPooledConnSurvivesPeerRestart(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	shutdown := startFramePeer(t, n, "peer", echoHandler(t))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("a")); err != nil {
		t.Fatal(err)
	}

	// Restart the peer: the pooled conn is now dead.
	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	l, err := n.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	shutdown2 := ServeHTTPAndFrames(l, echoHandler(t))
	defer shutdown2()

	status, resp, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("b"))
	if err != nil {
		t.Fatalf("exchange after peer restart: %v", err)
	}
	if status != http.StatusOK || string(resp) != "re:b" {
		t.Fatalf("got (%d, %q)", status, resp)
	}
}

// An error frame prices the whole exchange like an HTTP error status.
func TestErrorFrameMapsToStatus(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "next hop unavailable", http.StatusServiceUnavailable)
	}))

	c, err := NewClient(n, "http://peer")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	status, body, err := c.RoundTrip(context.Background(), message.QueriesPath, []byte("x"))
	if err != nil {
		t.Fatalf("error statuses are results, not transport errors: %v", err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if strings.TrimSpace(string(body)) != "next hop unavailable" {
		t.Fatalf("body = %q", body)
	}
}

// A dead peer is a transport error (for the breaker/ladder), never a
// silent fallback.
func TestDeadPeerIsTransportError(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	c, err := NewClient(n, "http://nobody")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, _, err = c.RoundTrip(context.Background(), message.QueriesPath, []byte("x"))
	if err == nil || errors.Is(err, ErrUnsupported) {
		t.Fatalf("err = %v, want a transport error", err)
	}
}

// The server must answer a malformed frame with an error frame and drop
// the connection instead of hanging or panicking.
func TestServerRejectsMalformedFrame(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	startFramePeer(t, n, "peer", echoHandler(t))

	conn, err := n.DialContext(context.Background(), "mem", "peer")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid magic, hostile header fields.
	bad := []byte("PPXB")
	bad = append(bad, bytes.Repeat([]byte{0xFF}, message.FrameHeaderSize-4)...)
	if _, err := conn.Write(bad); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	respHdr := make([]byte, message.FrameHeaderSize)
	if _, err := io.ReadFull(conn, respHdr); err != nil {
		t.Fatalf("no response to malformed frame: %v", err)
	}
	h, err := message.ParseFrameHeader(respHdr)
	if err != nil {
		t.Fatalf("response not a frame header: %v", err)
	}
	if h.Kind != message.FrameError {
		t.Fatalf("response kind = %d, want error frame", h.Kind)
	}
}
