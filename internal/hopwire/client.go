package hopwire

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/message"
	"pprox/internal/transport"
)

// Client carries frames to one peer over pooled persistent connections.
// It is safe for concurrent use; each in-flight exchange owns one
// connection.
type Client struct {
	dialer transport.Dialer
	addr   string

	// Tunables, fixed at construction.
	dialTimeout     time.Duration
	exchangeTimeout time.Duration
	idleTTL         time.Duration
	maxIdle         int
	cooldown        time.Duration
	probeTimeout    time.Duration

	// seq mints exchange ids for single frames (batch frames carry the
	// epoch id their builder minted).
	seq atomic.Uint64

	// verified latches once any frame exchange has completed against the
	// peer. Until then the peer may be a frame-illiterate HTTP server
	// whose request parser stops reading mid-frame — an unbounded write
	// of a large frame would then wedge until the exchange deadline, so
	// unverified writes are probe-bounded (see exchange).
	verified atomic.Bool

	mu               sync.Mutex
	idle             []*poolConn
	closed           bool
	unsupportedUntil time.Time

	dials     atomic.Uint64
	reuses    atomic.Uint64
	exchanges atomic.Uint64
	fallbacks atomic.Uint64
}

// poolConn is one pooled connection with its read buffer; the buffer must
// travel with the conn or pooled reuse would lose buffered bytes.
type poolConn struct {
	net.Conn
	br       *bufio.Reader
	lastUsed time.Time
}

// NewClient builds a client for the peer behind next (a base URL like
// "http://ia" or a bare dial address). Connections go through d — the
// memnet network, a cluster balancer, or a *net.Dialer — so every
// deployment flavour keeps its addressing.
func NewClient(d transport.Dialer, next string) (*Client, error) {
	if d == nil {
		return nil, fmt.Errorf("hopwire: nil dialer")
	}
	addr := next
	if strings.Contains(next, "://") {
		u, err := url.Parse(next)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("hopwire: bad peer URL %q", next)
		}
		addr = u.Host
	}
	return &Client{
		dialer:          d,
		addr:            addr,
		dialTimeout:     defaultDialTimeout,
		exchangeTimeout: defaultExchangeTimeout,
		idleTTL:         defaultIdleTTL,
		maxIdle:         defaultMaxIdle,
		cooldown:        defaultUnsupportedCooldown,
		probeTimeout:    probeWriteTimeout,
	}, nil
}

// Stats is the client's counter snapshot for metrics export.
type Stats struct {
	// Dials is connections established.
	Dials uint64
	// Reuses is exchanges that rode a pooled connection.
	Reuses uint64
	// Exchanges is completed frame round trips.
	Exchanges uint64
	// Fallbacks is exchanges refused with ErrUnsupported (peer not
	// speaking frames, or cooldown latch still warm).
	Fallbacks uint64
}

// Stats returns the client's counters.
func (c *Client) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Dials:     c.dials.Load(),
		Reuses:    c.reuses.Load(),
		Exchanges: c.exchanges.Load(),
		Fallbacks: c.fallbacks.Load(),
	}
}

// Close drops every pooled connection and refuses further exchanges.
func (c *Client) Close() {
	if c == nil {
		return
	}
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, pc := range idle {
		pc.Close()
	}
}

// RoundTrip performs one exchange with HTTP-equivalent semantics: the
// request that would have been POSTed to path travels as a frame, and the
// result comes back as (status, body). For the batch path the body IS the
// marshalled frame and the response body is the raw response frame —
// message.UnmarshalBatch parses it exactly as it parses an HTTP /batch
// response. ErrUnsupported means the peer does not speak frames and the
// caller should use its HTTP path; any other error is a transport fault
// for the caller's breaker and retry ladder.
func (c *Client) RoundTrip(ctx context.Context, path string, body []byte) (int, []byte, error) {
	if c == nil {
		return 0, nil, ErrUnsupported
	}
	var frame []byte
	var epoch uint64
	var reqKind byte
	switch path {
	case message.BatchPath:
		if !message.IsFrame(body) {
			// A JSON envelope only appears when the local codec was
			// downgraded; the HTTP path owns that case.
			return 0, nil, ErrUnsupported
		}
		h, err := message.ParseFrameHeader(body)
		if err != nil {
			return 0, nil, err
		}
		epoch = h.Epoch
		reqKind = message.FrameBatch
		frame = body
	case message.EventsPath, message.QueriesPath:
		kind, _ := message.PathBatchKind(path)
		epoch = c.seq.Add(1)
		reqKind = message.FrameSingle
		var err error
		frame, err = message.AppendBatchFrame(nil, message.FrameSingle, epoch,
			[]message.BatchEntry{{ID: 0, Kind: kind, Body: body}})
		if err != nil {
			return 0, nil, err
		}
	case message.TelemetryPath:
		// One snapshot per slot; the frame kind itself is the route, so
		// the entry carries no per-message kind tag.
		epoch = c.seq.Add(1)
		reqKind = message.FrameTelemetry
		var err error
		frame, err = message.AppendBatchFrame(nil, message.FrameTelemetry, epoch,
			[]message.BatchEntry{{ID: 0, Body: body}})
		if err != nil {
			return 0, nil, err
		}
	default:
		// Health probes and any future route stay on HTTP.
		return 0, nil, ErrUnsupported
	}

	if c.inCooldown() {
		c.fallbacks.Add(1)
		return 0, nil, ErrUnsupported
	}

	// A pooled connection can go stale between the health check and the
	// write (the peer closed it first). Like an HTTP transport retrying
	// an idempotent request on a reused conn, one retry on a fresh dial
	// is safe: a failed exchange that never yielded response bytes was
	// never processed-and-acknowledged.
	for attempt := 0; attempt < 2; attempt++ {
		pc, reused, err := c.getConn(ctx, attempt > 0)
		if err != nil {
			return 0, nil, err
		}
		status, resp, gotBytes, err := c.exchange(ctx, pc, frame, epoch, reqKind)
		if err == nil {
			c.exchanges.Add(1)
			return status, resp, nil
		}
		if err == ErrUnsupported {
			c.markUnsupported()
			c.fallbacks.Add(1)
			return 0, nil, ErrUnsupported
		}
		if !reused || gotBytes || ctx.Err() != nil {
			return 0, nil, err
		}
	}
	// Unreachable: attempt 1 uses a fresh dial, so reused is false and
	// the loop returns from inside.
	return 0, nil, fmt.Errorf("hopwire: exchange with %s failed", c.addr)
}

// inCooldown reports whether the unsupported latch is still warm.
func (c *Client) inCooldown() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Now().Before(c.unsupportedUntil)
}

func (c *Client) markUnsupported() {
	c.mu.Lock()
	c.unsupportedUntil = time.Now().Add(c.cooldown)
	c.mu.Unlock()
}

// getConn returns a healthy pooled connection or dials a new one. fresh
// bypasses the pool (the retry path must not draw a second stale conn).
func (c *Client) getConn(ctx context.Context, fresh bool) (pc *poolConn, reused bool, err error) {
	if !fresh {
		for {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				return nil, false, ErrClosed
			}
			n := len(c.idle)
			if n == 0 {
				c.mu.Unlock()
				break
			}
			pc := c.idle[n-1]
			c.idle = c.idle[:n-1]
			c.mu.Unlock()
			if time.Since(pc.lastUsed) > c.idleTTL || !pc.healthy() {
				pc.Close()
				continue
			}
			c.reuses.Add(1)
			return pc, true, nil
		}
	}
	dctx := ctx
	if c.dialTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, c.dialTimeout)
		defer cancel()
	}
	conn, err := c.dialer.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, false, fmt.Errorf("hopwire: dial %s: %w", c.addr, err)
	}
	c.dials.Add(1)
	return &poolConn{Conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}, false, nil
}

// healthy screens a pooled connection before reuse: any buffered or
// readable byte means the peer wrote outside an exchange (desync) or
// closed the conn — either way it must not carry the next frame.
func (pc *poolConn) healthy() bool {
	if pc.br.Buffered() > 0 {
		return false
	}
	if err := pc.SetReadDeadline(time.Now().Add(-time.Hour)); err != nil {
		return false
	}
	_, err := pc.br.Peek(1)
	pc.SetReadDeadline(time.Time{})
	if err == nil {
		return false
	}
	ne, ok := err.(net.Error)
	return ok && ne.Timeout()
}

// putConn returns a connection to the pool after a clean exchange.
func (c *Client) putConn(pc *poolConn) {
	pc.lastUsed = time.Now()
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.maxIdle {
		c.mu.Unlock()
		pc.Close()
		return
	}
	c.idle = append(c.idle, pc)
	c.mu.Unlock()
}

// exchange writes one frame and reads one response frame. gotBytes
// reports whether any response bytes arrived — the retry-safety signal.
// On success the connection returns to the pool; on any error it is
// closed (a half-finished exchange can never be reused). reqKind is the
// request frame's kind: the response must answer in the same kind (or an
// error frame), anything else is a desynced stream.
func (c *Client) exchange(ctx context.Context, pc *poolConn, frame []byte, epoch uint64, reqKind byte) (status int, resp []byte, gotBytes bool, err error) {
	defer func() {
		if err != nil {
			pc.Close()
		}
	}()

	deadline := time.Now().Add(c.exchangeTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := pc.SetDeadline(deadline); err != nil {
		return 0, nil, false, err
	}

	verified := c.verified.Load()
	if !verified {
		// Probe-bound the write until the peer has proven it speaks
		// frames: a frame-illiterate server stops reading mid-frame, so
		// an unbounded write of a large frame would wedge for the whole
		// exchange deadline without ever producing the non-frame
		// response that latches the fallback.
		probe := time.Now().Add(c.probeTimeout)
		if probe.Before(deadline) {
			pc.SetWriteDeadline(probe)
		}
	}
	if _, err := pc.Write(frame); err != nil {
		var ne net.Error
		if !verified && errors.As(err, &ne) && ne.Timeout() {
			// The peer stopped reading our frame: it does not speak the
			// protocol. gotBytes=true so RoundTrip does not retry the
			// probe on a fresh dial.
			return 0, nil, true, ErrUnsupported
		}
		return 0, nil, false, fmt.Errorf("hopwire: write to %s: %w", c.addr, err)
	}
	if !verified {
		pc.SetWriteDeadline(deadline)
	}

	hdr := make([]byte, message.FrameHeaderSize)
	n, err := io.ReadFull(pc.br, hdr)
	if err != nil {
		return 0, nil, n > 0, fmt.Errorf("hopwire: read from %s: %w", c.addr, err)
	}
	if !message.IsFrame(hdr) {
		// The peer answered with something else — typically an HTTP/1.1
		// error line from a frame-illiterate server. ErrUnsupported; the
		// caller falls back to HTTP (and RoundTrip latches the verdict).
		return 0, nil, true, ErrUnsupported
	}
	// A frame came back: the peer speaks the protocol, so later writes
	// need no probe bound.
	c.verified.Store(true)
	h, err := message.ParseFrameHeader(hdr)
	if err != nil {
		return 0, nil, true, err
	}
	full := make([]byte, h.FrameSize())
	copy(full, hdr)
	if _, err := io.ReadFull(pc.br, full[message.FrameHeaderSize:]); err != nil {
		return 0, nil, true, fmt.Errorf("hopwire: read from %s: %w", c.addr, err)
	}
	if h.Epoch != epoch {
		// A response for some other exchange: the stream is desynced and
		// the connection unusable.
		return 0, nil, true, fmt.Errorf("hopwire: %s echoed epoch %d, want %d", c.addr, h.Epoch, epoch)
	}
	pc.SetDeadline(time.Time{})

	switch h.Kind {
	case message.FrameError:
		_, st, text, derr := message.DecodeErrorFrame(full)
		if derr != nil {
			return 0, nil, true, derr
		}
		c.putConn(pc)
		return st, []byte(text), true, nil
	case message.FrameBatch:
		if reqKind != message.FrameBatch {
			return 0, nil, true, fmt.Errorf("hopwire: batch response to a kind-%d frame", reqKind)
		}
		c.putConn(pc)
		return http.StatusOK, full, true, nil
	case message.FrameSingle, message.FrameTelemetry:
		if h.Kind != reqKind {
			return 0, nil, true, fmt.Errorf("hopwire: kind-%d response to a kind-%d frame", h.Kind, reqKind)
		}
		_, entries, derr := message.DecodeBatchFrame(full)
		if derr != nil {
			return 0, nil, true, derr
		}
		st := entries[0].Status
		if st == 0 {
			st = http.StatusOK
		}
		c.putConn(pc)
		return st, entries[0].Body, true, nil
	default:
		return 0, nil, true, fmt.Errorf("hopwire: unexpected frame kind %d", h.Kind)
	}
}
