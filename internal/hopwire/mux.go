package hopwire

import (
	"bufio"
	"net"
	"net/http"
	"sync"
	"time"

	"pprox/internal/message"
	"pprox/internal/transport"
)

// sniffTimeout bounds the wait for a new connection's first bytes. Both
// protocols write immediately after dialing, so a silent connection is a
// stray, not a slow client.
const sniffTimeout = 30 * time.Second

// ServeHTTPAndFrames serves one listener with both protocols: each
// accepted connection is sniffed on its first four bytes — the frame
// magic routes it to the frame server, anything else to a regular HTTP
// server running the same handler. One address therefore serves hopwire
// exchanges, health probes, metrics scrapes, and JSON-era peers at once,
// which is what makes the rolling upgrade safe in both directions.
//
// The returned shutdown stops accepting, closes live frame connections,
// and drains the HTTP side exactly like transport.Serve.
func ServeHTTPAndFrames(l net.Listener, h http.Handler) (shutdown func() error) {
	fs := NewServer(h)
	httpL := newChanListener(l.Addr())
	httpShutdown := transport.Serve(httpL, h)

	var wg sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				sniffAndRoute(conn, fs, httpL)
			}()
		}
	}()

	var once sync.Once
	return func() error {
		var err error
		once.Do(func() {
			l.Close()
			<-acceptDone
			// Order matters: the HTTP drain first (it completes in-flight
			// bridged responses), then the frame conns, then the sniffers.
			err = httpShutdown()
			fs.Close()
			wg.Wait()
		})
		return err
	}
}

// sniffAndRoute peeks a connection's first bytes and hands it to the
// matching protocol server. The peeked bytes stay in the connection's
// buffered reader, which travels with it.
func sniffAndRoute(conn net.Conn, fs *Server, httpL *chanListener) {
	bc := &bufferedConn{Conn: conn, br: bufio.NewReaderSize(conn, 32<<10)}
	conn.SetReadDeadline(time.Now().Add(sniffTimeout))
	first, err := bc.br.Peek(4)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return
	}
	if message.IsFrame(first) {
		fs.ServeConn(bc)
		return
	}
	if !httpL.deliver(bc) {
		conn.Close()
	}
}

// bufferedConn is a net.Conn whose reads go through the sniffing buffer.
type bufferedConn struct {
	net.Conn
	br *bufio.Reader
}

func (c *bufferedConn) Read(p []byte) (int, error) { return c.br.Read(p) }

// connReader recovers the sniffing buffer so the frame server does not
// stack a second one.
func connReader(c net.Conn) (*bufio.Reader, bool) {
	if bc, ok := c.(*bufferedConn); ok {
		return bc.br, true
	}
	return nil, false
}

// chanListener adapts delivered connections to the net.Listener contract
// the HTTP server consumes.
type chanListener struct {
	addr net.Addr
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

func newChanListener(addr net.Addr) *chanListener {
	return &chanListener{addr: addr, ch: make(chan net.Conn), done: make(chan struct{})}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return l.addr }

// deliver hands a sniffed connection to the HTTP accept loop, reporting
// false once the listener closed.
func (l *chanListener) deliver(c net.Conn) bool {
	select {
	case l.ch <- c:
		return true
	case <-l.done:
		return false
	}
}
