// Package hopwire is the persistent-connection binary hop transport for
// the inter-proxy links (DESIGN.md §4h): UA→IA batch envelopes and
// per-message IA→LRS traffic travel as length-prefixed frames
// (internal/message frame codec) over pooled connections instead of one
// HTTP POST per exchange. HTTP remains the client-edge protocol, and
// every hopwire server also speaks HTTP on the same listener (the
// sniffing mux in mux.go), so health probes, metrics scrapes, and
// JSON-era peers keep working — a peer that answers frames with anything
// else makes the client latch ErrUnsupported and fall back to HTTP until
// a cooldown expires (rolling-upgrade safety).
//
// The exchange model is strictly serial per connection: one request
// frame, one response frame, matched by the epoch id echoed in the frame
// header. Concurrency comes from pooling — each in-flight exchange owns
// one connection — which keeps the protocol free of stream multiplexing
// while preserving the constant-size slot discipline the §4.3 privacy
// argument needs on the wire.
package hopwire

import (
	"errors"
	"time"
)

// Errors reported by the transport.
var (
	// ErrUnsupported reports a peer that does not speak the frame
	// protocol (it answered with non-frame bytes, typically an HTTP
	// error). The caller should fall back to its HTTP path; the client
	// latches the verdict for a cooldown so every epoch does not re-probe.
	ErrUnsupported = errors.New("hopwire: peer does not speak the frame protocol")

	// ErrClosed reports use of a closed client or server.
	ErrClosed = errors.New("hopwire: closed")
)

// Tunables shared by client and server. They bound resource usage, not
// correctness: resilience policies own the real deadlines.
const (
	// defaultDialTimeout bounds one connection establishment.
	defaultDialTimeout = 10 * time.Second
	// defaultExchangeTimeout bounds one write+read exchange when the
	// caller's context carries no deadline.
	defaultExchangeTimeout = 30 * time.Second
	// defaultIdleTTL is how long a pooled connection may sit unused
	// before the pool discards it instead of reusing it.
	defaultIdleTTL = 30 * time.Second
	// defaultMaxIdle caps pooled connections per client.
	defaultMaxIdle = 64
	// defaultUnsupportedCooldown is how long the client stays on the
	// HTTP fallback after a peer proved frame-illiterate.
	defaultUnsupportedCooldown = 30 * time.Second
	// probeWriteTimeout bounds the FIRST frame write to a peer that has
	// never completed a frame exchange. A frame-illiterate HTTP server
	// stops reading as soon as its request parser chokes on the frame
	// bytes, so a large frame wedges in the socket buffer: the write
	// never finishes and never produces the non-frame response that
	// would latch ErrUnsupported. Bounding the probe write converts
	// that wedge into a fast fallback verdict.
	probeWriteTimeout = time.Second
	// serverIdleTimeout is how long the server keeps an idle frame
	// connection before dropping it (matches the HTTP transport's
	// 30-second idle conn timeout).
	serverIdleTimeout = 60 * time.Second
	// serverIOTimeout bounds reading one frame body or writing one
	// response once an exchange has started.
	serverIOTimeout = 30 * time.Second
)
