package adversary

// compromise.go models what an adversary learns after breaking into
// enclaves via side-channel attacks (§2.3 ➍) and combining the stolen
// secrets with its other vantage points: intercepted messages (§6.1 cases
// 1a/2a) and the LRS database (cases 1c/2c). Each function returns exactly
// the information the stolen keys yield — the tests then verify the
// paper's claim that one broken layer never suffices to link a user to an
// item.

import (
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
)

// Loot is the key material leaked from compromised enclaves; either field
// set may be nil if that layer holds.
type Loot struct {
	// UA holds skUA/kUA when a User Anonymizer enclave was broken.
	UA map[string][]byte
	// IA holds skIA/kIA when an Item Anonymizer enclave was broken.
	IA map[string][]byte
}

// DBEvent is one pseudonymized record read from the LRS database (the
// adversary "can access any data manipulated by the LRS", §2.3 ➋).
type DBEvent struct {
	UserPseudonym string // base64(det_enc(u, kUA))
	ItemPseudonym string // base64(det_enc(i, kIA)) or cleartext item if disabled
}

// DBFindings is what database de-anonymization yields.
type DBFindings struct {
	// Users maps pseudonym → cleartext user identifier (empty without
	// kUA).
	Users map[string]string
	// Items maps pseudonym → cleartext item identifier (empty without
	// kIA).
	Items map[string]string
	// LinkedPairs are fully de-anonymized (user, item) links — the
	// privacy breach PProx exists to prevent. Non-empty only when BOTH
	// layers' permanent keys leaked.
	LinkedPairs [][2]string
}

// secretNames mirror the proxy package's provisioning layout; they are
// redeclared here because the adversary reads raw enclave memory, not Go
// APIs.
const (
	secretPrivateKey   = "sk"
	secretPermanentKey = "k"
)

// DeanonymizeDB applies the stolen permanent keys to the LRS database
// (§6.1 cases 1c and 2c).
func DeanonymizeDB(loot Loot, db []DBEvent) DBFindings {
	f := DBFindings{Users: map[string]string{}, Items: map[string]string{}}
	kUA := loot.UA[secretPermanentKey]
	kIA := loot.IA[secretPermanentKey]

	for _, ev := range db {
		var user, item string
		if kUA != nil {
			if raw, err := message.Decode64(ev.UserPseudonym); err == nil {
				if u, err := ppcrypto.Depseudonymize(kUA, raw); err == nil {
					user = u
					f.Users[ev.UserPseudonym] = u
				}
			}
		}
		if kIA != nil {
			if raw, err := message.Decode64(ev.ItemPseudonym); err == nil {
				if i, err := ppcrypto.Depseudonymize(kIA, raw); err == nil {
					item = i
					f.Items[ev.ItemPseudonym] = i
				}
			}
		}
		if user != "" && item != "" {
			f.LinkedPairs = append(f.LinkedPairs, [2]string{user, item})
		}
	}
	return f
}

// InterceptedPost is what decrypting a captured client→UA post request
// with stolen private keys yields (§6.1 cases 1a and 2a).
type InterceptedPost struct {
	// User is the cleartext user identifier (needs skUA).
	User string
	// Item is the cleartext item identifier (needs skIA).
	Item string
}

// DecryptInterceptedPost applies stolen private keys to a captured
// post(enc(u,pkUA), enc(i,pkIA)) message.
func DecryptInterceptedPost(loot Loot, req message.PostRequest) InterceptedPost {
	var out InterceptedPost
	out.User = tryDecryptField(loot.UA, req.EncUser)
	out.Item = tryDecryptField(loot.IA, req.EncItem)
	return out
}

func tryDecryptField(secrets map[string][]byte, field string) string {
	der := secrets[secretPrivateKey]
	if der == nil {
		return ""
	}
	priv, err := ppcrypto.UnmarshalPrivateKey(der)
	if err != nil {
		return ""
	}
	ct, err := message.Decode64(field)
	if err != nil {
		return ""
	}
	block, err := ppcrypto.DecryptOAEP(priv, ct)
	if err != nil {
		return ""
	}
	id, err := ppcrypto.UnpadID(block)
	if err != nil {
		return ""
	}
	return id
}

// DecryptInterceptedGetResponse models case 1b: an adversary holding UA
// secrets intercepts the encrypted recommendation list enc({i...}, k_u) on
// its way to the user. It returns whether any item leaked (it must not:
// k_u is only held by the client and the IA layer).
func DecryptInterceptedGetResponse(loot Loot, resp message.GetResponse) ([]string, bool) {
	// The UA private key cannot decrypt symmetric AES-CTR ciphertext;
	// the only plausible attack is if k_u were RSA-encrypted for the UA
	// layer — it never is. Try anyway, as a real adversary would.
	ct, err := message.Decode64(resp.EncItems)
	if err != nil {
		return nil, false
	}
	for _, secrets := range []map[string][]byte{loot.UA, loot.IA} {
		der := secrets[secretPrivateKey]
		if der == nil {
			continue
		}
		priv, err := ppcrypto.UnmarshalPrivateKey(der)
		if err != nil {
			continue
		}
		if block, err := ppcrypto.DecryptOAEP(priv, ct); err == nil {
			if items, err := message.DecodeItemList(block); err == nil {
				return items, true
			}
		}
	}
	return nil, false
}
