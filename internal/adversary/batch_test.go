package adversary_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/lrs/engine"
	"pprox/internal/message"
	"pprox/internal/proxy"
	"pprox/internal/transport"
)

// newBatchTappedStack is newTappedStack with the epoch-batched pipeline
// on: link key paired, UA in batch mode, and (optionally) a middleware
// wrapping the IA node so the adversary can capture the raw UA→IA batch
// envelopes — the new wire surface this mode introduces.
func newBatchTappedStack(t *testing.T, shuffleSize int, wrapIA func(http.Handler) http.Handler) *tappedStack {
	t.Helper()
	st := &tappedStack{rec: adversary.NewRecorder(), net: transport.NewNetwork()}
	t.Cleanup(func() { st.net.Close() })

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(as)
	st.uaEncl = proxy.NewUAEnclave(platform)
	st.iaEncl = proxy.NewIAEnclave(platform, proxy.IAOptions{})
	if st.uaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if st.iaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if err := proxy.PairLinkKey(st.uaKeys, st.iaKeys); err != nil {
		t.Fatal(err)
	}
	if err := st.uaKeys.Provision(as, st.uaEncl, proxy.UAIdentity); err != nil {
		t.Fatal(err)
	}
	if err := st.iaKeys.Provision(as, st.iaEncl, proxy.IAIdentityFor(proxy.IAOptions{})); err != nil {
		t.Fatal(err)
	}

	st.engine = engine.New(engine.DefaultConfig())
	lrsTap := adversary.Tap(st.rec, "ia→lrs", func(body []byte) string {
		var req message.LRSPost
		if err := message.Unmarshal(body, &req); err == nil && req.User != "" {
			return req.User
		}
		var q message.LRSGet
		if err := message.Unmarshal(body, &q); err == nil {
			return q.User
		}
		return ""
	}, engine.NewHandler(st.engine))
	st.serve(t, "lrs", lrsTap)

	httpClient := transport.HTTPClient(st.net, 30*time.Second)
	ia, err := proxy.New(proxy.Config{
		Role: proxy.RoleIA, Enclave: st.iaEncl, Next: "http://lrs",
		HTTPClient: httpClient, ShuffleSize: shuffleSize, ShuffleTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ia = ia
	var iaHandler http.Handler = ia
	if wrapIA != nil {
		iaHandler = wrapIA(iaHandler)
	}
	st.serve(t, "ia", iaHandler)

	ua, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Enclave: st.uaEncl, Next: "http://ia",
		HTTPClient: httpClient, ShuffleSize: shuffleSize, ShuffleTimeout: 2 * time.Second,
		Batch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ua = ua
	st.serve(t, "ua", adversary.Tap(st.rec, "client→ua", nil, ua))

	st.client = client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua")
	return st
}

// TestTimingAttackDefeatedWithBatching re-runs the §6.2 in-order
// correlation attack against the epoch-batched pipeline: the whole epoch
// leaves as ONE envelope in the shuffler's permuted order, so the
// adversary correlating client→UA arrival order with IA→LRS order must
// stay at ≈ 1/S exactly as in per-message mode.
func TestTimingAttackDefeatedWithBatching(t *testing.T) {
	const s = 8
	const batches = 8
	st := newBatchTappedStack(t, s, nil)
	ctx := context.Background()

	var users []string
	var edge []adversary.Event
	for b := 0; b < batches; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := fmt.Sprintf("victim-%d-%d", b, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}(u)
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}

	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != len(users) {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), len(users))
	}
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), st.truth(t, users))
	if acc > 0.4 {
		t.Errorf("in-order attack accuracy with batching = %.2f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
	t.Logf("batched attack accuracy = %.3f (theory 1/S = %.3f)", acc, 1.0/s)
}

// TestBatchEnvelopeLeaksNoCorrespondence inspects the new wire surface
// itself: the adversary captures a raw UA→IA batch envelope and its
// response. Entry ids must be bare post-shuffle positions (sequential
// integers), entry bodies opaque ciphertext, and the response entries
// re-permuted by the IA — so the envelope reveals nothing per-message
// HTTP exchanges did not already reveal.
func TestBatchEnvelopeLeaksNoCorrespondence(t *testing.T) {
	const s = 8
	type capture struct {
		req, resp []byte
	}
	var mu sync.Mutex
	var captures []capture
	wrap := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != message.BatchPath {
				next.ServeHTTP(w, r)
				return
			}
			reqBody, _ := io.ReadAll(r.Body)
			r.Body = io.NopCloser(bytes.NewReader(reqBody))
			rec := &respRecorder{ResponseWriter: w}
			next.ServeHTTP(rec, r)
			mu.Lock()
			captures = append(captures, capture{req: reqBody, resp: rec.buf.Bytes()})
			mu.Unlock()
		})
	}
	st := newBatchTappedStack(t, s, wrap)
	ctx := context.Background()

	users := make([]string, s)
	var wg sync.WaitGroup
	for i := 0; i < s; i++ {
		users[i] = fmt.Sprintf("victim-%02d", i)
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
				t.Errorf("post: %v", err)
			}
		}(users[i])
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(captures) == 0 {
		t.Fatal("adversary captured no batch envelopes")
	}
	truth := st.truth(t, users)
	identityResponses := 0
	for _, c := range captures {
		reqEntries, err := message.UnmarshalBatch(c.req)
		if err != nil {
			t.Fatalf("captured request envelope: %v", err)
		}
		// Ids are nothing but positions in the permuted release order.
		for i, e := range reqEntries {
			if e.ID != i {
				t.Errorf("request entry %d has id %d: ids must be bare slot positions", i, e.ID)
			}
		}
		// Bodies are hop-encrypted: no cleartext identity, no inner
		// message structure, and no pseudonym (which only the IA→LRS
		// link may carry) is visible to the envelope observer.
		for i, e := range reqEntries {
			for _, u := range users {
				if bytes.Contains(e.Body, []byte(u)) {
					t.Errorf("entry %d body contains plaintext user %q", i, u)
				}
				if bytes.Contains(e.Body, []byte(truth[u])) {
					t.Errorf("entry %d body contains the pseudonym of %q", i, u)
				}
			}
			if bytes.Contains(e.Body, []byte("enc_user")) {
				t.Errorf("entry %d body leaks inner message structure", i)
			}
		}
		respEntries, err := message.UnmarshalBatch(c.resp)
		if err != nil {
			t.Fatalf("captured response envelope: %v", err)
		}
		if len(respEntries) != len(reqEntries) {
			t.Fatalf("response carries %d entries for %d requests", len(respEntries), len(reqEntries))
		}
		inOrder := true
		for i, e := range respEntries {
			if e.ID != i {
				inOrder = false
			}
		}
		if inOrder {
			identityResponses++
		}
	}
	// The IA re-permutes response order; with S=8 an identity permutation
	// has probability 1/8! per epoch, so even one across the run flags a
	// missing shuffle (tolerate it only if a single epoch was captured).
	if identityResponses == len(captures) {
		first, _ := message.UnmarshalBatch(captures[0].resp)
		if len(first) >= 4 {
			t.Errorf("every captured response envelope echoed request order: IA response shuffle missing")
		}
	}
}

// respRecorder tees a handler's response body.
type respRecorder struct {
	http.ResponseWriter
	buf bytes.Buffer
}

func (r *respRecorder) Write(p []byte) (int, error) {
	r.buf.Write(p)
	return r.ResponseWriter.Write(p)
}
