package adversary

// attack.go implements the timing-correlation attack of §4.3/§6.2: an
// adversary observing encrypted ingress traffic (with source identities)
// and cleartext LRS traffic (with pseudonyms) tries to link each incoming
// request to the LRS request it became, by correlating observations in
// time. All encrypted messages have constant size, so timing order is the
// only signal.

// Guess is one attack output: the adversary claims the ingress message
// from Source became the LRS message carrying Target.
type Guess struct {
	Source string // client identity seen at the edge
	Target string // pseudonym seen at the LRS
}

// CorrelateInOrder is the optimal timing attack when the adversary assumes
// the proxy preserves order (true without shuffling): the k-th ingress
// message maps to the k-th egress message. With shuffling, each batch of S
// messages leaves in uniformly random order, so this attack's expected
// accuracy drops to 1/S (§6.2: the expected number of fixed points of a
// uniform random permutation is 1, over S messages).
func CorrelateInOrder(ingress, egress []Event) []Guess {
	n := len(ingress)
	if len(egress) < n {
		n = len(egress)
	}
	guesses := make([]Guess, 0, n)
	for i := 0; i < n; i++ {
		guesses = append(guesses, Guess{Source: ingress[i].Label, Target: egress[i].Label})
	}
	return guesses
}

// CorrelateNearestTime is the timing attack matching each ingress message
// to the earliest unclaimed egress message observed after it. It models an
// adversary that exploits inter-arrival gaps rather than aggregate order;
// against an unshuffled proxy under sequential traffic it is exact.
func CorrelateNearestTime(ingress, egress []Event) []Guess {
	claimed := make([]bool, len(egress))
	guesses := make([]Guess, 0, len(ingress))
	for _, in := range ingress {
		for j, out := range egress {
			if claimed[j] || out.T.Before(in.T) {
				continue
			}
			claimed[j] = true
			guesses = append(guesses, Guess{Source: in.Label, Target: out.Label})
			break
		}
	}
	return guesses
}

// Accuracy scores an attack against the ground truth mapping from source
// identity to true pseudonym. The experimenter knows the truth because it
// holds the layer keys; the adversary does not.
func Accuracy(guesses []Guess, truth map[string]string) float64 {
	if len(guesses) == 0 {
		return 0
	}
	correct := 0
	for _, g := range guesses {
		if truth[g.Source] == g.Target && g.Target != "" {
			correct++
		}
	}
	return float64(correct) / float64(len(guesses))
}
