package adversary_test

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/audit"
	"pprox/internal/client"
	"pprox/internal/cluster"
	"pprox/internal/fleet"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
)

// fleet_test.go attacks the elastic fleet (DESIGN §4j): membership churn
// — a pair admitted mid-run, a pair drained mid-run — must not hand the
// on-path adversary anything beyond the steady-state 1/S bound. The
// hazard is epoch splitting: an instance leaving with a partly-routed
// epoch, or a new instance siphoning messages out of one still filling,
// would release sub-S batches whose members correlate above 1/S.

// TestLinkingBoundHoldsDuringFleetChurn runs the §6.2 in-order
// correlation attack across a scale-up and a scale-down and asserts the
// three invariants together: the attack stays at ≈ 1/S, every epoch
// released anywhere in the fleet carried exactly S messages (the
// effective anonymity set never shrank), and the deployed auditor —
// including its fleet drain-integrity check — stayed "ok" throughout.
func TestLinkingBoundHoldsDuringFleetChurn(t *testing.T) {
	const s = 8
	rec := adversary.NewRecorder()
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled:   true,
		UA:             1,
		IA:             1,
		Encryption:     true,
		ItemPseudonyms: true,
		Shuffle:        s,
		ShuffleTimeout: 300 * time.Millisecond,
		Batch:          true, // epochs travel whole between hops (§4j)
		UseStub:        true,
		Fleet:          true,
		Audit:          &audit.Config{},
		LRSMiddleware: func(h http.Handler) http.Handler {
			return adversary.Tap(rec, "ia→lrs", func(body []byte) string {
				var req message.LRSPost
				if err := message.Unmarshal(body, &req); err == nil && req.User != "" {
					return req.User
				}
				return ""
			}, h)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Keep-alives off so every request dials: the balancer's per-dial
	// round robin then splits each 2S round exactly S/S across two UAs,
	// and both shufflers flush on occupancy — the adversary never gets
	// handed a timer-flushed partial epoch to feast on.
	httpClient := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			DialContext:       d.Balancer.DialContext,
			DisableKeepAlives: true,
		},
	}
	cl := client.New(proxy.Bundle(d.UAKeys, d.IAKeys), httpClient, d.Entry)

	ctx := context.Background()
	var users []string
	var edge []adversary.Event
	var mu sync.Mutex
	round := func(tag string, size int) {
		t.Helper()
		var wg sync.WaitGroup
		for i := 0; i < size; i++ {
			u := fmt.Sprintf("churn-%s-%d", tag, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := cl.Post(ctx, u, "sensitive-item", ""); err != nil {
					mu.Lock()
					t.Errorf("post %s: %v", u, err)
					mu.Unlock()
				}
			}(u)
			// Keep the adversary's arrival order unambiguous.
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}
	waitActive := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for d.Registry.Count("ua", fleet.StateActive) != n ||
			d.Registry.Count("ia", fleet.StateActive) != n {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d active pairs", n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Steady state on one pair.
	round("a0", s)
	round("a1", s)

	// Scale up mid-run: the new pair is pending — invisible to routing —
	// until the epoch in flight below flushes and admits it.
	if err := d.AddPair(); err != nil {
		t.Fatal(err)
	}
	round("admit", s)
	waitActive(2)

	// Churned state: rounds of 2S split S/S across the two UAs, so every
	// epoch anywhere in the fleet still fills to exactly S.
	round("b0", 2*s)
	round("b1", 2*s)

	// Scale down mid-run: the newest pair leaves through the drain
	// protocol — final epoch whole, then deregister.
	if err := d.DrainPair(); err != nil {
		t.Fatal(err)
	}
	waitActive(1)
	round("c0", s)
	round("c1", s)

	lrs := rec.Events("ia→lrs")
	if len(lrs) != len(users) {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), len(users))
	}
	truth := make(map[string]string, len(users))
	for _, u := range users {
		p, err := ppcrypto.Pseudonymize(d.UAKeys.Permanent, u)
		if err != nil {
			t.Fatal(err)
		}
		truth[u] = message.Encode64(p)
	}
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), truth)
	if acc > 0.4 {
		t.Errorf("in-order attack accuracy across churn = %.3f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
	t.Logf("churn attack accuracy = %.3f over %d messages (theory 1/S = %.3f)", acc, len(users), 1.0/s)

	// The anonymity set itself: no epoch released anywhere — including
	// the drained pair's last — carried fewer than S messages.
	rep := d.Auditor.Report()
	if rep.UnderfilledTotal != 0 {
		t.Errorf("underfilled epochs during churn = %d, want 0\nreport: %+v", rep.UnderfilledTotal, rep)
	}
	if rep.WorstEpochBatch != s {
		t.Errorf("worst epoch batch during churn = %d, want %d", rep.WorstEpochBatch, s)
	}
	if rep.State != audit.StateOK.String() {
		t.Errorf("audit state after churn = %s, want ok\nreport: %+v", rep.State, rep)
	}
	if len(rep.DegradedChecks) != 0 {
		t.Errorf("degraded checks after churn = %v (drain split an epoch?)", rep.DegradedChecks)
	}
	if st := d.Registry.Stats(); st.Drains != 2 || st.Deregistrations != 2 {
		t.Errorf("registry stats = %+v, want 2 drains and 2 deregistrations", st)
	}
}
