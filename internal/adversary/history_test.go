package adversary_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
)

func TestHistoryAttackIsolatesRepeatedTarget(t *testing.T) {
	// §6.3: diverse decoys churn across windows, the target persists.
	rng := rand.New(rand.NewSource(1))
	const s = 10
	const windowsN = 8
	target := "pseudo-target"
	population := make([]string, 500)
	for i := range population {
		population[i] = fmt.Sprintf("pseudo-%03d", i)
	}
	var windows [][]string
	for w := 0; w < windowsN; w++ {
		window := []string{target}
		for len(window) < s {
			window = append(window, population[rng.Intn(len(population))])
		}
		windows = append(windows, window)
	}
	surviving := adversary.HistoryAttack(windows)
	if len(surviving) != 1 || surviving[0] != target {
		t.Errorf("history attack isolated %v, want exactly the target", surviving)
	}
}

func TestHistoryAttackDefeatedByConstantCohort(t *testing.T) {
	// If the same users always share the target's batches (e.g. very
	// low-traffic application, §6.3's problem case inverted), the
	// intersection never shrinks below the cohort — the attack stalls.
	cohort := []string{"a", "b", "c", "d", "target"}
	windows := [][]string{cohort, cohort, cohort, cohort}
	surviving := adversary.HistoryAttack(windows)
	if len(surviving) != len(cohort) {
		t.Errorf("constant cohort shrank to %v", surviving)
	}
}

func TestHistoryAttackEmptyInput(t *testing.T) {
	if got := adversary.HistoryAttack(nil); got != nil {
		t.Errorf("empty input yielded %v", got)
	}
}

func TestHistoryAttackEndToEnd(t *testing.T) {
	// The full §6.3 scenario against the real stack: the victim posts in
	// every shuffle batch among churning decoys; the adversary taps the
	// LRS link, slices windows, and intersects. With enough windows the
	// victim's pseudonym is isolated — demonstrating exactly the
	// residual risk the paper documents (shuffling alone does not
	// protect heavy repeat users against a patient adversary).
	const s = 8
	const rounds = 6
	st := newTappedStack(t, s)
	ctx := context.Background()

	var victimIngress []adversary.Event
	decoy := 0
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		victimIngress = append(victimIngress, adversary.Event{T: time.Now(), Label: "victim"})
		post := func(u string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}()
			time.Sleep(time.Millisecond)
		}
		post("victim")
		for i := 0; i < s-1; i++ {
			decoy++
			post(fmt.Sprintf("decoy-%04d", decoy))
		}
		wg.Wait()
	}

	egress := st.rec.Events("ia→lrs")
	windows := adversary.WindowsFromTrace(egress, victimIngress, s)
	surviving := adversary.HistoryAttack(windows)

	victimPseudo, err := ppcrypto.Pseudonymize(st.uaKeys.Permanent, "victim")
	if err != nil {
		t.Fatal(err)
	}
	want := message.Encode64(victimPseudo)

	found := false
	for _, p := range surviving {
		if p == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("victim pseudonym not among survivors %d — windowing broken", len(surviving))
	}
	if len(surviving) > 2 {
		t.Errorf("history attack left %d candidates after %d rounds, expected the victim isolated (±1)", len(surviving), rounds)
	}
	t.Logf("history attack: %d candidate(s) after %d windows of size %d", len(surviving), rounds, s)
}
