package adversary_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/cluster"
	"pprox/internal/reccache"
)

// cache_test.go attacks the in-enclave recommendation cache: serving hits
// from inside the IA enclave must not weaken the 1/S timing bound (hits
// re-enter the shuffler like any other request) and must not open a
// latency side channel that distinguishes cached users from uncached ones.

// getBatches drives full shuffle epochs of concurrent gets through the
// tapped stack, one batch per schedule row, recording the adversary's
// edge observations in arrival order.
func getBatches(t *testing.T, st *tappedStack, schedule [][]string) (edge []adversary.Event) {
	t.Helper()
	ctx := context.Background()
	for _, batch := range schedule {
		var wg sync.WaitGroup
		for _, u := range batch {
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if _, err := st.client.Get(ctx, u); err != nil {
					t.Errorf("get %s: %v", u, err)
				}
			}(u)
			// Keep the adversary's arrival order unambiguous.
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}
	return edge
}

func TestTimingAttackDefeatedWithCacheHits(t *testing.T) {
	// §6.2's 1/S bound must survive the cache: a hit epoch and a miss
	// epoch release identically, and hits additionally never appear on
	// the IA→LRS link at all — the adversary's egress stream thins out
	// while the bound on what remains stays 1/S.
	const s = 8
	cache := reccache.New(reccache.Config{TTL: time.Minute})
	st := newTappedStackWithCache(t, s, cache)
	ctx := context.Background()

	// Population the cache will serve: seed their histories (full post
	// epochs) so the engine returns real lists, then warm with one get
	// epoch per 8 users.
	population := make([]string, 2*s)
	for i := range population {
		population[i] = fmt.Sprintf("regular-%02d", i)
	}
	for b := 0; b < 2; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := population[b*s+i]
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "item-"+u, ""); err != nil {
					t.Errorf("post %s: %v", u, err)
				}
			}(u)
		}
		wg.Wait()
	}
	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}
	getBatches(t, st, [][]string{population[:s], population[s:]})

	warmStats := cache.Stats()
	warmLRS := len(st.rec.Events("ia→lrs"))

	// Attack phase: every epoch mixes 6 cached regulars with 2 cold
	// users. The adversary records arrival order at the edge and watches
	// the LRS link.
	var schedule [][]string
	var attacked []string
	for b := 0; b < 6; b++ {
		batch := make([]string, 0, s)
		for i := 0; i < 6; i++ {
			batch = append(batch, population[(b*6+i)%len(population)])
		}
		for i := 0; i < 2; i++ {
			batch = append(batch, fmt.Sprintf("cold-%d-%d", b, i))
		}
		schedule = append(schedule, batch)
		attacked = append(attacked, batch...)
	}
	edge := getBatches(t, st, schedule)

	stats := cache.Stats()
	hits := stats.Hits - warmStats.Hits
	misses := stats.Misses - warmStats.Misses
	hitRate := float64(hits) / float64(hits+misses)
	if hitRate < 0.5 {
		t.Fatalf("attack-phase hit rate = %.2f, want ≥ 0.5 (hits=%d misses=%d)", hitRate, hits, misses)
	}

	// Hits never cross the IA→LRS link: the egress stream holds exactly
	// the misses.
	lrs := st.rec.Events("ia→lrs")[warmLRS:]
	if uint64(len(lrs)) != misses {
		t.Errorf("LRS link carried %d messages during the attack, want the %d misses only", len(lrs), misses)
	}

	// What remains correlates no better than 1/S. Denominators are
	// small, so allow generous noise above 1/S = 0.125 — but nowhere
	// near the unshuffled ≈ 1.0.
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), st.truth(t, attacked))
	if acc > 0.4 {
		t.Errorf("in-order attack accuracy with cache = %.2f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
	accNearest := adversary.Accuracy(adversary.CorrelateNearestTime(edge, lrs), st.truth(t, attacked))
	if accNearest > 0.4 {
		t.Errorf("nearest-time attack accuracy with cache = %.2f, want ≈ 1/S = %.3f", accNearest, 1.0/s)
	}
	t.Logf("hit rate %.2f, in-order acc %.3f, nearest-time acc %.3f (theory 1/S = %.3f)",
		hitRate, acc, accNearest, 1.0/s)
}

func TestCacheHitTimingIndistinguishableInsideEpoch(t *testing.T) {
	// The latency side channel: a hit skips the LRS round trip, so if
	// hits returned early the adversary (or the user's own network
	// observer) could tell cached users from uncached ones. Hits must
	// wait for their shuffle epoch like everyone else, so within one
	// epoch the hit/miss latency difference stays far below the LRS
	// service time the hits saved.
	const s = 8
	const stubDelay = 60 * time.Millisecond
	d, err := cluster.Deploy(cluster.Spec{
		ProxyEnabled: true, UA: 1, IA: 1,
		Encryption: true, ItemPseudonyms: true,
		Shuffle: s, ShuffleTimeout: 5 * time.Second,
		UseStub: true, StubDelay: stubDelay,
		LRSFrontends: 1,
		Cache:        true, CacheTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl := d.Client(20 * time.Second)
	ctx := context.Background()

	// Warm epoch: 8 distinct users, all misses.
	warm := make([]string, s)
	for i := range warm {
		warm[i] = fmt.Sprintf("warm-%d", i)
	}
	var wg sync.WaitGroup
	for _, u := range warm {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			if _, err := cl.Get(ctx, u); err != nil {
				t.Errorf("warm get %s: %v", u, err)
			}
		}(u)
	}
	wg.Wait()

	// Measurement epoch: 4 hits (warm users) and 4 misses (cold users)
	// in one batch.
	var mu sync.Mutex
	var hitLat, missLat []time.Duration
	for i := 0; i < s; i++ {
		u, isHit := warm[i/2], true
		if i%2 == 1 {
			u, isHit = fmt.Sprintf("cold-%d", i), false
		}
		wg.Add(1)
		go func(u string, isHit bool) {
			defer wg.Done()
			t0 := time.Now()
			if _, err := cl.Get(ctx, u); err != nil {
				t.Errorf("get %s: %v", u, err)
				return
			}
			lat := time.Since(t0)
			mu.Lock()
			if isHit {
				hitLat = append(hitLat, lat)
			} else {
				missLat = append(missLat, lat)
			}
			mu.Unlock()
		}(u, isHit)
	}
	wg.Wait()
	if len(hitLat) != 4 || len(missLat) != 4 {
		t.Fatalf("measured %d hits / %d misses, want 4/4", len(hitLat), len(missLat))
	}

	mean := func(ds []time.Duration) time.Duration {
		var sum time.Duration
		for _, d := range ds {
			sum += d
		}
		return sum / time.Duration(len(ds))
	}
	mh, mm := mean(hitLat), mean(missLat)
	// Hits waited for the epoch: they cannot undercut the LRS service
	// time their own epoch's misses paid.
	if mh < stubDelay/2 {
		t.Errorf("mean hit latency %v returned ahead of the epoch (LRS service time %v)", mh, stubDelay)
	}
	diff := mh - mm
	if diff < 0 {
		diff = -diff
	}
	if diff > stubDelay/2 {
		t.Errorf("hit/miss mean latency gap %v (hit %v, miss %v) — cache opens a timing channel wider than half the %v it hides",
			diff, mh, mm, stubDelay)
	}
	t.Logf("mean hit %v, mean miss %v, gap %v (LRS service time %v)", mh, mm, diff, stubDelay)
}
