package adversary

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pprox/internal/message"
)

func at(sec int, label string) Event {
	return Event{T: time.Unix(int64(sec), 0), Label: label}
}

func TestCorrelateInOrderPairsByRank(t *testing.T) {
	in := []Event{at(1, "a"), at(2, "b"), at(3, "c")}
	out := []Event{at(4, "pa"), at(5, "pb"), at(6, "pc")}
	guesses := CorrelateInOrder(in, out)
	if len(guesses) != 3 {
		t.Fatalf("guesses = %v", guesses)
	}
	want := map[string]string{"a": "pa", "b": "pb", "c": "pc"}
	for _, g := range guesses {
		if want[g.Source] != g.Target {
			t.Errorf("guess %v", g)
		}
	}
}

func TestCorrelateInOrderTruncatesToShorterSide(t *testing.T) {
	in := []Event{at(1, "a"), at(2, "b")}
	out := []Event{at(3, "pa")}
	if got := CorrelateInOrder(in, out); len(got) != 1 {
		t.Errorf("guesses = %v", got)
	}
	if got := CorrelateInOrder(nil, out); len(got) != 0 {
		t.Errorf("guesses = %v", got)
	}
}

func TestCorrelateNearestTimeClaimsEachEgressOnce(t *testing.T) {
	in := []Event{at(1, "a"), at(2, "b")}
	out := []Event{at(3, "p1"), at(4, "p2")}
	guesses := CorrelateNearestTime(in, out)
	if len(guesses) != 2 {
		t.Fatalf("guesses = %v", guesses)
	}
	if guesses[0].Target != "p1" || guesses[1].Target != "p2" {
		t.Errorf("nearest-time matching wrong: %v", guesses)
	}
}

func TestCorrelateNearestTimeIgnoresPastEgress(t *testing.T) {
	// Egress before the ingress cannot be its consequence.
	in := []Event{at(10, "a")}
	out := []Event{at(5, "stale"), at(11, "fresh")}
	guesses := CorrelateNearestTime(in, out)
	if len(guesses) != 1 || guesses[0].Target != "fresh" {
		t.Errorf("guesses = %v", guesses)
	}
}

func TestAccuracy(t *testing.T) {
	truth := map[string]string{"a": "pa", "b": "pb"}
	guesses := []Guess{{Source: "a", Target: "pa"}, {Source: "b", Target: "wrong"}}
	if acc := Accuracy(guesses, truth); acc != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	if acc := Accuracy(nil, truth); acc != 0 {
		t.Errorf("accuracy of no guesses = %v", acc)
	}
	// Empty-target guesses never count as correct.
	if acc := Accuracy([]Guess{{Source: "x", Target: ""}}, map[string]string{"x": ""}); acc != 0 {
		t.Errorf("empty-label guess scored %v", acc)
	}
}

func TestRecorderAndTap(t *testing.T) {
	rec := NewRecorder()
	var gotBody string
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.WriteHeader(http.StatusAccepted)
	})
	tap := Tap(rec, "link-1", func(body []byte) string {
		return "label:" + string(body)
	}, inner)

	req := httptest.NewRequest(http.MethodPost, "/x", strings.NewReader("payload"))
	rr := httptest.NewRecorder()
	tap.ServeHTTP(rr, req)

	// The tap must be transparent: the inner handler still reads the
	// full body and its response passes through.
	if gotBody != "payload" {
		t.Errorf("inner handler saw %q", gotBody)
	}
	if rr.Code != http.StatusAccepted {
		t.Errorf("status = %d", rr.Code)
	}
	events := rec.Events("link-1")
	if len(events) != 1 || events[0].Label != "label:payload" {
		t.Errorf("events = %v", events)
	}
	if rec.Len() != 1 {
		t.Errorf("Len = %d", rec.Len())
	}
	if got := rec.Events("other-link"); len(got) != 0 {
		t.Errorf("cross-link events leaked: %v", got)
	}
}

func TestTapWithNilLabelFunc(t *testing.T) {
	rec := NewRecorder()
	tap := Tap(rec, "l", nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	tap.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if events := rec.Events("l"); len(events) != 1 || events[0].Label != "" {
		t.Errorf("events = %v", events)
	}
}

func TestWindowsFromTrace(t *testing.T) {
	egress := []Event{at(1, "p1"), at(3, "p2"), at(5, "p3"), at(7, "p4")}
	target := []Event{at(2, "victim"), at(6, "victim")}
	windows := WindowsFromTrace(egress, target, 2)
	if len(windows) != 2 {
		t.Fatalf("windows = %v", windows)
	}
	if windows[0][0] != "p2" || windows[0][1] != "p3" {
		t.Errorf("window 0 = %v", windows[0])
	}
	if windows[1][0] != "p4" || len(windows[1]) != 1 {
		t.Errorf("window 1 = %v (trace ends before filling)", windows[1])
	}
}

func TestDeanonymizeDBWithNoLoot(t *testing.T) {
	f := DeanonymizeDB(Loot{}, []DBEvent{{UserPseudonym: "AAAA", ItemPseudonym: "BBBB"}})
	if len(f.Users)+len(f.Items)+len(f.LinkedPairs) != 0 {
		t.Errorf("findings without loot: %+v", f)
	}
}

func TestDecryptInterceptedPostWithNoLoot(t *testing.T) {
	req := message.PostRequest{EncUser: "QUFBQQ==", EncItem: "QkJCQg=="}
	got := DecryptInterceptedPost(Loot{}, req)
	if got.User != "" || got.Item != "" {
		t.Errorf("decrypted without keys: %+v", got)
	}
}
