package adversary_test

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"pprox/internal/adversary"
	"pprox/internal/metrics"
	"pprox/internal/perfslo"
	"pprox/internal/proxy"
)

// TestPerfReportGrantsNoLinkingAdvantage extends the leaked-telemetry
// adversary to the /perf endpoint: the adversary obtains the full
// latency-SLO report of a node under SLO breach — the richest version of
// the payload, with burn rates, per-stage quantiles, and breach exemplar
// epochs populated. The payload must be epoch-granular only: exemplars
// are shuffle-epoch ids, something the network adversary already counts
// by watching flushes, so the report must add zero linking advantage.
func TestPerfReportGrantsNoLinkingAdvantage(t *testing.T) {
	const s = 8
	schedule := []int{s, s, s, s}
	st := newTappedStack(t, s)

	// The evaluator reads the layer's own stage histograms; registering
	// metrics installs them, exactly as every binary does.
	st.ua.RegisterMetrics(metrics.NewRegistry(), "ua")
	eval := perfslo.New(perfslo.Config{})
	// A threshold far below the real stage latencies guarantees every
	// epoch breaches: the report under test carries a full exemplar ring,
	// not an empty one.
	for _, stage := range []string{proxy.StageServe, proxy.StageEcallDecrypt} {
		h := st.ua.StageHistogram(stage)
		if h == nil {
			t.Fatalf("stage %s has no histogram after RegisterMetrics", stage)
		}
		eval.AddObjective(stage, "ua-0", h, 0.99, 0.0001)
	}
	var epoch atomic.Uint64
	st.ua.SetEpochObserver(func(batch int) {
		eval.Sample("ua-0", epoch.Add(1)-1)
	})

	users, edge := runSchedule(t, st, schedule)
	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != len(users) {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), len(users))
	}
	truth := st.truth(t, users)

	// The leak: the raw /perf response body.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", perfslo.PerfPath, nil)
	eval.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d", perfslo.PerfPath, rec.Code)
	}
	body := rec.Body.String()

	// No identifier — raw or pseudonymous — may appear in the payload.
	for _, u := range users {
		if strings.Contains(body, u) {
			t.Fatalf("perf report leaks raw user ID %q", u)
		}
	}
	if strings.Contains(body, "sensitive-item") {
		t.Fatal("perf report leaks a raw item ID")
	}
	for u, pseudo := range truth {
		if strings.Contains(body, pseudo) {
			t.Fatalf("perf report leaks the pseudonym of %q", u)
		}
	}

	// The report must actually be in breach with exemplars recorded —
	// otherwise the zero-advantage claim below is vacuous.
	var rep perfslo.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.State != perfslo.StateViolated.String() {
		t.Fatalf("report state = %q, want violated (the test needs the richest payload)", rep.State)
	}
	exemplars := make(map[uint64]bool)
	for _, o := range rep.Objectives {
		for _, e := range o.ExemplarEpochs {
			exemplars[e] = true
		}
	}
	if len(exemplars) == 0 {
		t.Fatal("no breach exemplars recorded despite violated state")
	}

	// Quantitative zero-advantage: the exemplars name whole epochs, and
	// epoch boundaries are something the adversary already observes (a
	// flush of S messages). The exemplar-guided attack — correlate within
	// each named epoch — must produce exactly the guesses the report-free
	// in-order attack already makes at those positions, and stay at 1/S.
	baseline := adversary.CorrelateInOrder(edge, lrs)
	var augmented []adversary.Guess
	for e := range exemplars {
		off := int(e) * s
		if off+s > len(lrs) {
			t.Fatalf("exemplar epoch %d is outside the %d observed epochs — "+
				"sub-epoch or phantom information in the report", e, len(schedule))
		}
		guesses := adversary.CorrelateInOrder(edge[off:off+s], lrs[off:off+s])
		for i, g := range guesses {
			if g != baseline[off+i] {
				t.Fatalf("exemplar epoch %d changed guess %d: %v → %v — "+
					"the payload carries sub-epoch information", e, off+i, baseline[off+i], g)
			}
		}
		augmented = append(augmented, guesses...)
	}
	if acc := adversary.Accuracy(augmented, truth); acc > 0.4 {
		t.Errorf("exemplar-guided accuracy = %.3f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
}
