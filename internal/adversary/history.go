package adversary

// history.go implements the history-based attack the paper's limitations
// section describes (§6.3): "An adversary targeting a specific IP address
// could collect over time a series of associated sets of S queries to the
// LRS. If the corresponding user repeatedly receives the same
// recommendations, or inserts feedback for the same items, the adversary
// could identify recurrent pseudonymized items identifiers and associate
// them with that IP address, and learn the associated pseudonymized user
// identifier."
//
// Each time the target's request enters a shuffle batch, the adversary
// learns a candidate set: the S pseudonyms that reached the LRS for that
// batch. The target's stable pseudonym is in every set; decoys churn.
// Intersecting the sets across windows isolates the target.

// HistoryAttack intersects per-window candidate pseudonym sets and returns
// the surviving candidates (the adversary's hypothesis set for the
// target). An empty input yields nil.
func HistoryAttack(windows [][]string) []string {
	if len(windows) == 0 {
		return nil
	}
	surviving := make(map[string]bool, len(windows[0]))
	for _, p := range windows[0] {
		surviving[p] = true
	}
	for _, w := range windows[1:] {
		inWindow := make(map[string]bool, len(w))
		for _, p := range w {
			inWindow[p] = true
		}
		for p := range surviving {
			if !inWindow[p] {
				delete(surviving, p)
			}
		}
	}
	out := make([]string, 0, len(surviving))
	for p := range surviving {
		out = append(out, p)
	}
	return out
}

// WindowsFromTrace slices an LRS-side observation trace into candidate
// windows of size s around each occurrence of the target's ingress times:
// for each targetTime, the s egress labels observed at or after it form
// one window. This is how the adversary builds HistoryAttack input from
// the same taps the timing attack uses.
func WindowsFromTrace(egress []Event, targetIngress []Event, s int) [][]string {
	windows := make([][]string, 0, len(targetIngress))
	for _, in := range targetIngress {
		var w []string
		for _, out := range egress {
			if out.T.Before(in.T) {
				continue
			}
			if out.Label != "" {
				w = append(w, out.Label)
			}
			if len(w) == s {
				break
			}
		}
		if len(w) > 0 {
			windows = append(windows, w)
		}
	}
	return windows
}
