package adversary_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/audit"
)

// runSchedule drives the tapped stack with one batch per entry — a batch
// of size b is b concurrent posts, waited to completion, so each entry
// becomes exactly one UA shuffle epoch (full batches flush on occupancy,
// short ones on the timer). It returns the users in arrival order and the
// adversary's edge observations.
func runSchedule(t *testing.T, st *tappedStack, schedule []int) (users []string, edge []adversary.Event) {
	t.Helper()
	ctx := context.Background()
	for b, size := range schedule {
		var wg sync.WaitGroup
		for i := 0; i < size; i++ {
			u := fmt.Sprintf("victim-%d-%d", b, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}(u)
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}
	return users, edge
}

// TestAuditorFlagsExactlyTheLinkableEpochs is the auditor's soundness and
// completeness check: it must flag an epoch if and only if the measured
// correlation accuracy inside that epoch exceeds the 1/S bound the
// shuffler promises. Full epochs keep the adversary at ≈ 1/S; an epoch
// the flush timer releases with a single occupant is linked with
// accuracy 1 (a random permutation of one element has one fixed point),
// and the auditor must flag exactly those.
func TestAuditorFlagsExactlyTheLinkableEpochs(t *testing.T) {
	const s = 8
	// Two singleton epochs in a stream of full ones — released by the
	// flush timer, each is perfectly linkable. The stack's timeout is
	// long enough that full batches always flush on occupancy, even
	// under race-detector slowdown: a timer split would fabricate
	// phantom epochs and break every schedule-aligned assertion here.
	schedule := []int{s, s, 1, s, 1, s}
	st := newTappedStack(t, s)
	aud := audit.New(audit.Config{TargetS: s})
	st.ua.SetEpochObserver(func(batch int) { aud.ObserveEpoch("ua-0", batch) })

	users, edge := runSchedule(t, st, schedule)
	total := 0
	for _, b := range schedule {
		total += b
	}
	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != total {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), total)
	}
	truth := st.truth(t, users)

	rep := aud.Report()
	if len(rep.Nodes) != 1 || rep.Nodes[0].Node != "ua-0" {
		t.Fatalf("report nodes = %+v, want exactly ua-0", rep.Nodes)
	}
	recs := rep.Nodes[0].RecentEpochs
	if len(recs) != len(schedule) {
		t.Fatalf("auditor recorded %d epochs, want %d", len(recs), len(schedule))
	}

	// Per epoch: the adversary segments both taps at the epoch boundary
	// (requests complete only after their epoch flushes, so the streams
	// are epoch-aligned) and correlates within it.
	var fullGuesses []adversary.Guess
	off := 0
	for i, size := range schedule {
		if recs[i].Batch != size {
			t.Fatalf("epoch %d: auditor saw batch %d, schedule sent %d", i, recs[i].Batch, size)
		}
		guesses := adversary.CorrelateInOrder(edge[off:off+size], lrs[off:off+size])
		acc := adversary.Accuracy(guesses, truth)
		flagged := recs[i].Underfilled

		if wantFlag := size < s; flagged != wantFlag {
			t.Errorf("epoch %d (batch %d): flagged=%v, want %v", i, size, flagged, wantFlag)
		}
		if flagged {
			// Soundness: every flagged epoch is genuinely linkable.
			if acc != 1.0 {
				t.Errorf("epoch %d flagged but measured accuracy %.3f, want 1.0 — "+
					"a false alarm", i, acc)
			}
		} else {
			fullGuesses = append(fullGuesses, guesses...)
		}
		off += size
	}
	// Completeness: every unflagged epoch holds the 1/S bound (scored in
	// aggregate; a single epoch of 8 is too noisy to bound alone).
	if acc := adversary.Accuracy(fullGuesses, truth); acc > 0.4 {
		t.Errorf("unflagged epochs linked with accuracy %.3f, want ≈ 1/S = %.3f — "+
			"the auditor missed a violation", acc, 1.0/s)
	}
	// Two under-filled epochs out of six burns every window under the
	// default 99% objective: the stream as a whole must be in violation.
	if st := aud.State(); st != audit.StateViolated {
		t.Errorf("auditor state = %v after linkable epochs, want violated", st)
	}
}

// TestPrivacyReportGrantsNoLinkingAdvantage extends the leaked-telemetry
// adversary of TestTraceExportCannotLinkRequests to the /privacy
// endpoint: the adversary obtains every node's full privacy report. The
// payload must be epoch-granular only — batch sizes and counters, never
// identifiers — and epoch sizes are something the network adversary
// already observes, so the report must add zero linking advantage.
func TestPrivacyReportGrantsNoLinkingAdvantage(t *testing.T) {
	const s = 8
	schedule := []int{s, s, s, s}
	st := newTappedStack(t, s)
	aud := audit.New(audit.Config{TargetS: s})
	st.ua.SetEpochObserver(func(batch int) { aud.ObserveEpoch("ua-0", batch) })

	users, edge := runSchedule(t, st, schedule)
	lrs := st.rec.Events("ia→lrs")
	truth := st.truth(t, users)

	// The leak: the raw /privacy response body.
	rec := httptest.NewRecorder()
	rec.Body.Reset()
	req := httptest.NewRequest("GET", audit.PrivacyPath, nil)
	aud.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("GET %s: status %d", audit.PrivacyPath, rec.Code)
	}
	body := rec.Body.String()

	// No identifier — raw or pseudonymous — may appear in the payload.
	for _, u := range users {
		if strings.Contains(body, u) {
			t.Fatalf("privacy report leaks raw user ID %q", u)
		}
	}
	if strings.Contains(body, "sensitive-item") {
		t.Fatal("privacy report leaks a raw item ID")
	}
	for u, pseudo := range truth {
		if strings.Contains(body, pseudo) {
			t.Fatalf("privacy report leaks the pseudonym of %q", u)
		}
	}

	// Quantitative zero-advantage: the report's only linkage-relevant
	// content is the per-epoch batch size, so the report-augmented
	// attack (segment at the reported epoch boundaries, correlate
	// within each) must guess exactly as the report-free attack does —
	// and stay at the 1/S bound.
	baseline := adversary.CorrelateInOrder(edge, lrs)
	rep := aud.Report()
	var augmented []adversary.Guess
	off := 0
	for _, e := range rep.Nodes[0].RecentEpochs {
		if off+e.Batch > len(lrs) {
			t.Fatalf("reported epochs cover %d messages, tap saw %d", off+e.Batch, len(lrs))
		}
		augmented = append(augmented,
			adversary.CorrelateInOrder(edge[off:off+e.Batch], lrs[off:off+e.Batch])...)
		off += e.Batch
	}
	if len(augmented) != len(baseline) {
		t.Fatalf("augmented attack made %d guesses, baseline %d", len(augmented), len(baseline))
	}
	for i := range augmented {
		if augmented[i] != baseline[i] {
			t.Fatalf("guess %d: report changed the adversary's answer %v → %v — "+
				"the payload carries sub-epoch information", i, baseline[i], augmented[i])
		}
	}
	if acc := adversary.Accuracy(augmented, truth); acc > 0.4 {
		t.Errorf("report-augmented accuracy = %.3f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
}
