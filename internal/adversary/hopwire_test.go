package adversary_test

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/hopwire"
	"pprox/internal/lrs/engine"
	"pprox/internal/message"
	"pprox/internal/proxy"
	"pprox/internal/transport"
)

// hopwire_test.go puts the adversary directly on the UA→IA wire: with the
// binary frame transport the tap is no longer an HTTP middleware but the
// connection itself, so the test records every byte the UA writes through
// a wrapped dialer and analyses raw frames — exactly the view a network
// attacker (§2.3 ➋) gets of the new transport.

// recordingDialer taps every connection dialed to the target address,
// appending the client→server byte stream to a per-connection capture.
type recordingDialer struct {
	transport.Dialer
	target string

	mu       sync.Mutex
	captures []*bytes.Buffer
}

func (d *recordingDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	conn, err := d.Dialer.DialContext(ctx, network, addr)
	if err != nil || !strings.HasPrefix(addr, d.target) {
		return conn, err
	}
	buf := &bytes.Buffer{}
	d.mu.Lock()
	d.captures = append(d.captures, buf)
	d.mu.Unlock()
	return &recordingConn{Conn: conn, d: d, buf: buf}, nil
}

// streams returns a copy of each connection's captured byte stream.
func (d *recordingDialer) streams() [][]byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([][]byte, 0, len(d.captures))
	for _, b := range d.captures {
		out = append(out, append([]byte(nil), b.Bytes()...))
	}
	return out
}

type recordingConn struct {
	net.Conn
	d   *recordingDialer
	buf *bytes.Buffer
}

func (c *recordingConn) Write(p []byte) (int, error) {
	c.d.mu.Lock()
	c.buf.Write(p)
	c.d.mu.Unlock()
	return c.Conn.Write(p)
}

// TestHopwireFramesCloseSizeChannel drives one shuffle epoch of posts
// whose plaintext payloads differ wildly in length, captures the UA→IA
// frame bytes at the connection level, and requires the §4.3 guarantee to
// survive the new transport: every slot in the released frame has the
// same wire footprint AND the same unpadded body length (the wire padding
// scheme is public, so the adversary is assumed to strip it). With all S
// observable sizes identical, a size-based linking classifier has no
// advantage over the uniform 1/S guess the shuffle already forces.
func TestHopwireFramesCloseSizeChannel(t *testing.T) {
	const s = 8
	net2 := transport.NewNetwork()
	t.Cleanup(func() { net2.Close() })

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	platform := enclave.NewPlatform(as)
	uaEncl := proxy.NewUAEnclave(platform)
	iaEncl := proxy.NewIAEnclave(platform, proxy.IAOptions{})
	uaKeys, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	iaKeys, err := proxy.NewLayerKeys()
	if err != nil {
		t.Fatal(err)
	}
	if err := proxy.PairLinkKey(uaKeys, iaKeys); err != nil {
		t.Fatal(err)
	}
	if err := uaKeys.Provision(as, uaEncl, proxy.UAIdentity); err != nil {
		t.Fatal(err)
	}
	if err := iaKeys.Provision(as, iaEncl, proxy.IAIdentityFor(proxy.IAOptions{})); err != nil {
		t.Fatal(err)
	}

	eng := engine.New(engine.DefaultConfig())
	lrsL, err := net2.Listen("lrs")
	if err != nil {
		t.Fatal(err)
	}
	lrsShutdown := transport.Serve(lrsL, engine.NewHandler(eng))
	t.Cleanup(func() { lrsShutdown() })

	httpClient := transport.HTTPClient(net2, 30*time.Second)
	ia, err := proxy.New(proxy.Config{
		Role: proxy.RoleIA, Enclave: iaEncl, Next: "http://lrs",
		HTTPClient: httpClient, ShuffleSize: s, ShuffleTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ia.Close() })
	iaL, err := net2.Listen("ia")
	if err != nil {
		t.Fatal(err)
	}
	iaShutdown := hopwire.ServeHTTPAndFrames(iaL, ia)
	t.Cleanup(func() { iaShutdown() })

	// The adversary's vantage point: every byte the UA writes toward the
	// IA, captured below the protocol.
	tapped := &recordingDialer{Dialer: net2, target: "ia"}
	ua, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Enclave: uaEncl, Next: "http://ia",
		HTTPClient: httpClient, ShuffleSize: s, ShuffleTimeout: 2 * time.Second,
		Batch: true, Hopwire: true, HopDialer: tapped,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ua.Close() })
	uaL, err := net2.Listen("ua")
	if err != nil {
		t.Fatal(err)
	}
	uaShutdown := transport.Serve(uaL, ua)
	t.Cleanup(func() { uaShutdown() })

	cl := client.New(proxy.Bundle(uaKeys, iaKeys), httpClient, "http://ua")

	// One shuffle epoch of posts with different plaintext sizes: victim
	// i interacts with an item whose name grows with i (up to the 62-byte
	// identifier bound the fixed-size crypto block accepts).
	ctx := context.Background()
	var wg sync.WaitGroup
	users := make([]string, s)
	for i := 0; i < s; i++ {
		users[i] = fmt.Sprintf("victim-%02d", i)
		item := "padding-probe-" + strings.Repeat("x", 1+i*6)
		wg.Add(1)
		go func(u, item string) {
			defer wg.Done()
			if err := cl.Post(ctx, u, item, ""); err != nil {
				t.Errorf("post %s: %v", u, err)
			}
		}(users[i], item)
	}
	wg.Wait()

	// Reassemble the captured byte streams into frames. Anything that is
	// not a parseable frame would mean the hop silently fell back to HTTP
	// and the capture missed traffic.
	var frames [][]byte
	for _, stream := range tapped.streams() {
		for len(stream) > 0 {
			h, err := message.ParseFrameHeader(stream)
			if err != nil {
				t.Fatalf("captured stream is not frame-aligned: %v", err)
			}
			if h.FrameSize() > len(stream) {
				t.Fatalf("captured stream truncated mid-frame: need %d, have %d", h.FrameSize(), len(stream))
			}
			frames = append(frames, stream[:h.FrameSize()])
			stream = stream[h.FrameSize():]
		}
	}
	if len(frames) == 0 {
		t.Fatal("adversary captured no frames on the UA→IA wire")
	}

	slotSizes := map[int]bool{}
	bodySizes := map[int]bool{}
	sawEpoch := false
	for _, frame := range frames {
		h, err := message.ParseFrameHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if h.Kind != message.FrameBatch {
			continue
		}
		epoch, entries, err := message.DecodeBatchFrame(frame)
		if err != nil {
			t.Fatalf("captured batch frame: %v", err)
		}
		if len(entries) != s {
			// A partial epoch (flush-timer remainder) would weaken the
			// 1/S claim; this workload must release full epochs.
			t.Fatalf("captured frame carries %d entries, want S=%d", len(entries), s)
		}
		sawEpoch = epoch != 0
		slotSizes[h.SlotSize] = true
		for i, e := range entries {
			// Ids are bare post-shuffle slot positions, as in the HTTP
			// envelope — nothing to correlate with arrival order.
			if e.ID != i {
				t.Errorf("entry %d carries id %d: ids must be slot positions", i, e.ID)
			}
			// The adversary strips the public wire padding and still
			// learns only the constant hop-ciphertext length.
			bodySizes[len(e.Body)] = true
			for _, u := range users {
				if bytes.Contains(e.Body, []byte(u)) {
					t.Errorf("entry %d body contains plaintext user %q", i, u)
				}
			}
			if bytes.Contains(e.Body, []byte("padding-probe-")) {
				t.Errorf("entry %d body contains plaintext item material", i)
			}
		}
	}
	if !sawEpoch {
		t.Error("captured frames carry no epoch id: the IA cannot demux without one")
	}
	if len(slotSizes) != 1 {
		t.Errorf("slot sizes vary across frames: %v — wire geometry leaks batch composition", keysInt(slotSizes))
	}
	if len(bodySizes) != 1 {
		t.Errorf("unpadded body sizes vary: %v — the §4.3 size channel reopened on the frame "+
			"transport (a size classifier would beat the 1/S bound)", keysInt(bodySizes))
	}
}

func keysInt(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
