package adversary_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/lrs/engine"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/rotation"
)

// shard_test.go extends the §2.3 ➋ adversary to the sharded, WAL-backed
// LRS: an adversary who taps a shard's disk — its write-ahead log and
// snapshot files — rather than the network link in front of the LRS. The
// claims under test:
//
//  1. shard storage carries det_enc pseudonyms only; no raw identifier
//     ever reaches the disk;
//  2. tapping shards (any of them, or all of them) yields no linking
//     advantage over the already-bounded LRS link tap: with shuffle
//     size S, timing correlation stays at the 1/S floor of §6.2 —
//     per-shard WAL order reveals strictly less than global arrival
//     order, which the shuffler already randomizes per epoch;
//  3. a rotation-scale re-pseudonymization scrubs the old pseudonym
//     space off the disk entirely: shard Replace compacts, so WALs
//     truncate and snapshots speak only the fresh keys, and loot from
//     the pre-rotation breach decrypts nothing that remains.

// readShardWAL parses one shard's WAL the way the adversary would: raw
// frames of [4B length LE][4B CRC][JSON {seq, fields}], no access to the
// store package's replay machinery needed.
func readShardWAL(t *testing.T, path string) []map[string]string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []map[string]string
	for len(b) >= 8 {
		n := binary.LittleEndian.Uint32(b[:4])
		if len(b) < int(8+n) {
			break // torn tail
		}
		var rec struct {
			Seq    uint64            `json:"seq"`
			Fields map[string]string `json:"fields"`
		}
		if err := json.Unmarshal(b[8:8+n], &rec); err != nil {
			break
		}
		out = append(out, rec.Fields)
		b = b[8+n:]
	}
	return out
}

// diskBytes concatenates every shard file under dir — the adversary's
// full view of the tapped volume.
func diskBytes(t *testing.T, dir string) []byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var all []byte
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, b...)
	}
	return all
}

func TestShardStorageExposesOnlyPseudonyms(t *testing.T) {
	dir := t.TempDir()
	engCfg := engine.DefaultConfig()
	engCfg.Shards = 4
	engCfg.WALDir = dir
	st := newTappedStackEngine(t, 0, nil, engCfg)
	ctx := context.Background()

	users := []string{"alice-reader", "bob-reader", "carol-reader"}
	items := []string{"war-and-peace", "anna-karenina", "crime-and-punishment"}
	for i, u := range users {
		for _, it := range items[:i+1] {
			if err := st.client.Post(ctx, u, it, "4.5"); err != nil {
				t.Fatal(err)
			}
		}
	}

	disk := diskBytes(t, dir)
	if len(disk) == 0 {
		t.Fatal("no WAL bytes on disk after posts")
	}
	for _, raw := range append(append([]string{}, users...), items...) {
		if bytes.Contains(disk, []byte(raw)) {
			t.Errorf("raw identifier %q appears in shard storage", raw)
		}
	}
	// Sanity that the tap looked at real data: the ground-truth user
	// pseudonyms (computable only with kUA) are present.
	for u, p := range st.truth(t, users) {
		if !bytes.Contains(disk, []byte(p)) {
			t.Errorf("pseudonym of %s missing from WAL bytes — tap misaimed", u)
		}
	}

	// Every WAL record field decrypts with the layer keys and only with
	// them: users under kUA, items under kIA — nothing identity-bearing
	// beyond the two pseudonym columns is persisted.
	records := 0
	for i := 0; i < engCfg.Shards; i++ {
		for _, fields := range readShardWAL(t, filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i))) {
			records++
			raw, err := message.Decode64(fields["user"])
			if err != nil {
				t.Fatalf("user field is not a pseudonym: %v", err)
			}
			if _, err := ppcrypto.Depseudonymize(st.uaKeys.Permanent, raw); err != nil {
				t.Errorf("user pseudonym does not decrypt under kUA: %v", err)
			}
			rawItem, err := message.Decode64(fields["item"])
			if err != nil {
				t.Fatalf("item field is not a pseudonym: %v", err)
			}
			if _, err := ppcrypto.Depseudonymize(st.iaKeys.Permanent, rawItem); err != nil {
				t.Errorf("item pseudonym does not decrypt under kIA: %v", err)
			}
		}
	}
	if want := 1 + 2 + 3; records != want {
		t.Errorf("WAL taps saw %d records, want %d", records, want)
	}
}

// TestShardTapLinkingBoundedByShuffle: with shuffling at S, an adversary
// reading every shard's WAL in append order links sources to pseudonyms
// no better than 1/S — and no better than the network tap on the LRS
// link it is a degraded view of (WAL sequence numbers are per shard, so
// even the all-shards adversary cannot reconstruct global arrival order).
func TestShardTapLinkingBoundedByShuffle(t *testing.T) {
	const s = 8
	const batches = 8
	dir := t.TempDir()
	engCfg := engine.DefaultConfig()
	engCfg.Shards = 4
	engCfg.WALDir = dir
	st := newTappedStackEngine(t, s, nil, engCfg)
	ctx := context.Background()

	var users []string
	var edge []adversary.Event
	for b := 0; b < batches; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := fmt.Sprintf("victim-%d-%d", b, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}(u)
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}
	truth := st.truth(t, users)

	// Per-shard taps: each shard's WAL append order against the edge
	// arrival order.
	var merged []adversary.Event
	for i := 0; i < engCfg.Shards; i++ {
		var shardSeq []adversary.Event
		for _, fields := range readShardWAL(t, filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i))) {
			ev := adversary.Event{Label: fields["user"]}
			shardSeq = append(shardSeq, ev)
			merged = append(merged, ev)
		}
		if len(shardSeq) == 0 {
			continue
		}
		acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, shardSeq), truth)
		if acc > 0.4 {
			t.Errorf("shard %d tap accuracy = %.2f, want ≈ 1/S = %.3f", i, acc, 1.0/s)
		}
		t.Logf("shard %d: %d appends, tap accuracy %.3f", i, len(shardSeq), acc)
	}
	if len(merged) != len(users) {
		t.Fatalf("shards persisted %d events, want %d", len(merged), len(users))
	}
	// The all-shards adversary: concatenated per-shard order is its best
	// reconstruction of the stream.
	if acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, merged), truth); acc > 0.4 {
		t.Errorf("all-shards tap accuracy = %.2f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
	// Reference point: the network tap on the LRS link, already bounded
	// by the shuffle (TestTimingAttackDefeatedByShuffling) — the shard
	// taps must not beat it by more than noise.
	lrsAcc := adversary.Accuracy(adversary.CorrelateInOrder(edge, st.rec.Events("ia→lrs")), truth)
	t.Logf("LRS link tap accuracy %.3f (theory 1/S = %.3f)", lrsAcc, 1.0/s)
}

// TestRotationScrubsOldPseudonymsFromDisk: after the breach response
// re-pseudonymizes every shard, the old pseudonym space is gone from the
// tapped volume — WALs truncated by the shard Replace, snapshots speaking
// only fresh keys — and the adversary's pre-rotation loot decrypts
// nothing that remains.
func TestRotationScrubsOldPseudonymsFromDisk(t *testing.T) {
	dir := t.TempDir()
	engCfg := engine.DefaultConfig()
	engCfg.Shards = 3
	engCfg.WALDir = dir
	st := newTappedStackEngine(t, 0, nil, engCfg)
	ctx := context.Background()

	users := []string{"alice-reader", "bob-reader", "carol-reader", "dave-reader"}
	for i, u := range users {
		if err := st.client.Post(ctx, u, fmt.Sprintf("book-%d", i%2), ""); err != nil {
			t.Fatal(err)
		}
	}
	oldTruth := st.truth(t, users)
	// The breach: the adversary images the disk and compromises the UA
	// enclave, looting the permanent key that decrypts every stored user
	// pseudonym.
	loot := adversary.Loot{UA: st.uaEncl.Compromise()}

	res, err := rotation.RotateKeys(rotation.LayerUA, st.uaKeys, st.engine)
	if err != nil {
		t.Fatal(err)
	}
	if res.Migrated != len(users) {
		t.Fatalf("rotation migrated %d pseudonyms, want %d", res.Migrated, len(users))
	}

	disk := diskBytes(t, dir)
	for u, p := range oldTruth {
		if bytes.Contains(disk, []byte(p)) {
			t.Errorf("pre-rotation pseudonym of %s still on disk after re-pseudonymization", u)
		}
	}
	for _, u := range users {
		if bytes.Contains(disk, []byte(u)) {
			t.Errorf("raw identifier %q on disk after rotation", u)
		}
		fresh, err := ppcrypto.Pseudonymize(res.Fresh.Permanent, u)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(disk, []byte(message.Encode64(fresh))) {
			t.Errorf("fresh pseudonym of %s missing from disk — rotation did not persist", u)
		}
	}

	// The stolen key against the migrated database: zero users recovered.
	var db []adversary.DBEvent
	st.engine.ForEachEvent(func(d store.Document) {
		db = append(db, adversary.DBEvent{
			UserPseudonym: d.Fields["user"],
			ItemPseudonym: d.Fields["item"],
		})
	})
	f := adversary.DeanonymizeDB(loot, db)
	if len(f.Users) != 0 || len(f.LinkedPairs) != 0 {
		t.Errorf("pre-rotation loot still de-anonymizes: %d users, %d links",
			len(f.Users), len(f.LinkedPairs))
	}
}
