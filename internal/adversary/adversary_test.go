package adversary_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/client"
	"pprox/internal/enclave"
	"pprox/internal/lrs/engine"
	"pprox/internal/lrs/store"
	"pprox/internal/message"
	"pprox/internal/ppcrypto"
	"pprox/internal/proxy"
	"pprox/internal/reccache"
	"pprox/internal/transport"
)

// tappedStack is a PProx deployment with the adversary's network taps
// installed: one on the UA ingress link (sees source identities, encrypted
// bodies) and one on the LRS ingress link (sees pseudonymized requests in
// the clear).
type tappedStack struct {
	rec    *adversary.Recorder
	client *client.Client
	engine *engine.Engine
	uaEncl *enclave.Enclave
	iaEncl *enclave.Enclave
	uaKeys *proxy.LayerKeys
	iaKeys *proxy.LayerKeys
	ua, ia *proxy.Layer
	net    *transport.Network
}

func newTappedStack(t *testing.T, shuffleSize int) *tappedStack {
	return newTappedStackWithCache(t, shuffleSize, nil)
}

// newTappedStackWithCache optionally equips the IA layer with the
// in-enclave recommendation cache, for the cache-specific attacks.
func newTappedStackWithCache(t *testing.T, shuffleSize int, cache *reccache.Cache) *tappedStack {
	return newTappedStackEngine(t, shuffleSize, cache, engine.DefaultConfig())
}

// newTappedStackEngine additionally takes the LRS engine configuration,
// so the shard/WAL attacks can run against a durable sharded store.
func newTappedStackEngine(t *testing.T, shuffleSize int, cache *reccache.Cache, engCfg engine.Config) *tappedStack {
	t.Helper()
	st := &tappedStack{rec: adversary.NewRecorder(), net: transport.NewNetwork()}
	t.Cleanup(func() { st.net.Close() })

	as, err := enclave.NewAttestationService()
	if err != nil {
		t.Fatal(err)
	}
	iaOpts := proxy.IAOptions{Cache: cache}
	platform := enclave.NewPlatform(as)
	st.uaEncl = proxy.NewUAEnclave(platform)
	st.iaEncl = proxy.NewIAEnclave(platform, iaOpts)
	if st.uaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if st.iaKeys, err = proxy.NewLayerKeys(); err != nil {
		t.Fatal(err)
	}
	if err := st.uaKeys.Provision(as, st.uaEncl, proxy.UAIdentity); err != nil {
		t.Fatal(err)
	}
	if err := st.iaKeys.Provision(as, st.iaEncl, proxy.IAIdentityFor(iaOpts)); err != nil {
		t.Fatal(err)
	}

	st.engine = engine.New(engCfg)
	t.Cleanup(func() { st.engine.Close() })
	// LRS tap: the adversary reads API calls to the LRS in the clear
	// (§2.3 ➋) — label each with the pseudonymous user it carries.
	lrsTap := adversary.Tap(st.rec, "ia→lrs", func(body []byte) string {
		var req message.LRSPost
		if err := message.Unmarshal(body, &req); err == nil && req.User != "" {
			return req.User
		}
		var q message.LRSGet
		if err := message.Unmarshal(body, &q); err == nil {
			return q.User
		}
		return ""
	}, engine.NewHandler(st.engine))
	st.serve(t, "lrs", lrsTap)

	httpClient := transport.HTTPClient(st.net, 30*time.Second)
	ia, err := proxy.New(proxy.Config{
		Role: proxy.RoleIA, Enclave: st.iaEncl, Next: "http://lrs",
		HTTPClient: httpClient, ShuffleSize: shuffleSize, ShuffleTimeout: 2 * time.Second,
		RecCache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ia = ia
	st.serve(t, "ia", ia)

	ua, err := proxy.New(proxy.Config{
		Role: proxy.RoleUA, Enclave: st.uaEncl, Next: "http://ia",
		HTTPClient: httpClient, ShuffleSize: shuffleSize, ShuffleTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	st.ua = ua
	// Edge tap: bodies are encrypted and constant-size, so no label is
	// extractable from content; the adversary's edge knowledge (source
	// address ↔ time) is recorded by the test driver at send time.
	st.serve(t, "ua", adversary.Tap(st.rec, "client→ua", nil, ua))

	st.client = client.New(proxy.Bundle(st.uaKeys, st.iaKeys), httpClient, "http://ua")
	return st
}

func (st *tappedStack) serve(t *testing.T, addr string, h http.Handler) {
	t.Helper()
	l, err := st.net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	shutdown := transport.Serve(l, h)
	t.Cleanup(func() { shutdown() })
}

// truth computes the ground-truth user→pseudonym mapping with the
// experimenter's knowledge of kUA.
func (st *tappedStack) truth(t *testing.T, users []string) map[string]string {
	t.Helper()
	m := make(map[string]string, len(users))
	for _, u := range users {
		p, err := ppcrypto.Pseudonymize(st.uaKeys.Permanent, u)
		if err != nil {
			t.Fatal(err)
		}
		m[u] = message.Encode64(p)
	}
	return m
}

func TestTimingAttackSucceedsWithoutShuffling(t *testing.T) {
	st := newTappedStack(t, 0)
	ctx := context.Background()

	const n = 20
	var users []string
	var edge []adversary.Event
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("victim-%02d", i)
		users = append(users, u)
		// The adversary observes the arrival (source, time) at the UA.
		edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
		if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
			t.Fatal(err)
		}
	}

	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != n {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), n)
	}
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), st.truth(t, users))
	if acc < 0.95 {
		t.Errorf("in-order attack accuracy without shuffling = %.2f, want ≈ 1 "+
			"(this is the vulnerability shuffling exists to close)", acc)
	}
	accNearest := adversary.Accuracy(adversary.CorrelateNearestTime(edge, lrs), st.truth(t, users))
	if accNearest < 0.95 {
		t.Errorf("nearest-time attack accuracy without shuffling = %.2f", accNearest)
	}
}

func TestTimingAttackDefeatedByShuffling(t *testing.T) {
	const s = 8
	const batches = 8
	st := newTappedStack(t, s)
	ctx := context.Background()

	var users []string
	var edge []adversary.Event
	for b := 0; b < batches; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := fmt.Sprintf("victim-%d-%d", b, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}(u)
			// Keep the adversary's arrival order unambiguous.
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}

	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != len(users) {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), len(users))
	}
	acc := adversary.Accuracy(adversary.CorrelateInOrder(edge, lrs), st.truth(t, users))
	// §6.2: expected accuracy is 1/S = 0.125; allow generous noise but
	// demand it is nowhere near the unshuffled ≈ 1.0.
	if acc > 0.4 {
		t.Errorf("attack accuracy with S=%d shuffling = %.2f, want ≈ 1/S = %.3f", s, acc, 1.0/s)
	}
	t.Logf("shuffled attack accuracy = %.3f (theory 1/S = %.3f)", acc, 1.0/s)
}

func seedDB(t *testing.T, st *tappedStack) []adversary.DBEvent {
	t.Helper()
	ctx := context.Background()
	pairs := [][2]string{
		{"alice", "war-and-peace"},
		{"alice", "anna-karenina"},
		{"bob", "war-and-peace"},
		{"carol", "crime-and-punishment"},
	}
	for _, p := range pairs {
		if err := st.client.Post(ctx, p[0], p[1], ""); err != nil {
			t.Fatal(err)
		}
	}
	var db []adversary.DBEvent
	st.engine.ForEachEvent(func(d store.Document) {
		db = append(db, adversary.DBEvent{
			UserPseudonym: d.Fields["user"],
			ItemPseudonym: d.Fields["item"],
		})
	})
	if len(db) != len(pairs) {
		t.Fatalf("db has %d events, want %d", len(db), len(pairs))
	}
	return db
}

func TestCompromisedUACannotLinkUserToItem(t *testing.T) {
	st := newTappedStack(t, 0)
	db := seedDB(t, st)

	loot := adversary.Loot{UA: st.uaEncl.Compromise()}
	f := adversary.DeanonymizeDB(loot, db)

	// Case 1c: users de-pseudonymized, items safe, no link.
	if len(f.Users) != 3 {
		t.Errorf("adversary recovered %d users, expected all 3 (UA key leaked)", len(f.Users))
	}
	if len(f.Items) != 0 {
		t.Errorf("adversary recovered %d items with only UA secrets", len(f.Items))
	}
	if len(f.LinkedPairs) != 0 {
		t.Errorf("user–interest unlinkability broken with a single UA enclave: %v", f.LinkedPairs)
	}
}

func TestCompromisedIACannotLinkUserToItem(t *testing.T) {
	st := newTappedStack(t, 0)
	db := seedDB(t, st)

	loot := adversary.Loot{IA: st.iaEncl.Compromise()}
	f := adversary.DeanonymizeDB(loot, db)

	// Case 2c: items de-pseudonymized, users safe, no link.
	if len(f.Items) != 3 {
		t.Errorf("adversary recovered %d items, expected all 3 (IA key leaked)", len(f.Items))
	}
	if len(f.Users) != 0 {
		t.Errorf("adversary recovered %d users with only IA secrets", len(f.Users))
	}
	if len(f.LinkedPairs) != 0 {
		t.Errorf("user–interest unlinkability broken with a single IA enclave: %v", f.LinkedPairs)
	}
}

func TestBothLayersCompromisedDoesLink(t *testing.T) {
	// Sanity check on the model's sharpness: breaking BOTH layers (which
	// the adversary model §2.3 excludes — one enclave at a time) links
	// users to items. The defence is the split, not obscurity.
	st := newTappedStack(t, 0)
	db := seedDB(t, st)

	loot := adversary.Loot{UA: st.uaEncl.Compromise(), IA: st.iaEncl.Compromise()}
	f := adversary.DeanonymizeDB(loot, db)
	if len(f.LinkedPairs) != 4 {
		t.Errorf("both layers broken yet only %d links recovered", len(f.LinkedPairs))
	}
	found := false
	for _, p := range f.LinkedPairs {
		if p[0] == "alice" && p[1] == "war-and-peace" {
			found = true
		}
	}
	if !found {
		t.Error("expected alice–war-and-peace link missing")
	}
}

func TestInterceptedPostRevealsOnlyOneSide(t *testing.T) {
	st := newTappedStack(t, 0)

	// Capture a post message as the user-side library emits it (§6.1
	// cases 1a and 2a): build it with the public bundle directly.
	encUser := mustEncrypt(t, st.uaKeys, "alice")
	encItem := mustEncrypt(t, st.iaKeys, "war-and-peace")
	captured := message.PostRequest{EncUser: encUser, EncItem: encItem}

	uaLoot := adversary.Loot{UA: st.uaEncl.Compromise()}
	got := adversary.DecryptInterceptedPost(uaLoot, captured)
	if got.User != "alice" {
		t.Errorf("UA loot failed to decrypt the user field: %+v", got)
	}
	if got.Item != "" {
		t.Errorf("UA loot decrypted the ITEM field: %+v — unlinkability broken", got)
	}

	iaLoot := adversary.Loot{IA: st.iaEncl.Compromise()}
	got = adversary.DecryptInterceptedPost(iaLoot, captured)
	if got.Item != "war-and-peace" {
		t.Errorf("IA loot failed to decrypt the item field: %+v", got)
	}
	if got.User != "" {
		t.Errorf("IA loot decrypted the USER field: %+v — unlinkability broken", got)
	}
}

func TestInterceptedGetResponseStaysOpaque(t *testing.T) {
	// Case 1b: the response list is encrypted under k_u, held only by
	// the client and the IA layer; UA loot must not open it.
	st := newTappedStack(t, 0)
	ctx := context.Background()

	// Seed and train so the get returns a real list, then capture the
	// response at the UA↔client link by re-issuing the raw exchange.
	seedDB(t, st)
	if err := st.engine.TrainNow(); err != nil {
		t.Fatal(err)
	}

	ku, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	encKu, err := ppcrypto.EncryptOAEP(st.iaKeys.Pair.Public, ku)
	if err != nil {
		t.Fatal(err)
	}
	body, err := message.Marshal(message.GetRequest{
		EncUser:    mustEncrypt(t, st.uaKeys, "alice"),
		EncTempKey: message.Encode64(encKu),
	})
	if err != nil {
		t.Fatal(err)
	}
	httpClient := transport.HTTPClient(st.net, 10*time.Second)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://ua"+message.QueriesPath, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gr message.GetResponse
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := message.Unmarshal(raw, &gr); err != nil {
		t.Fatalf("unmarshal captured response: %v (body=%s)", err, raw)
	}

	loot := adversary.Loot{UA: st.uaEncl.Compromise()}
	if items, ok := adversary.DecryptInterceptedGetResponse(loot, gr); ok {
		t.Errorf("UA loot decrypted the recommendation list: %v", items)
	}
	// The legitimate client CAN read it with k_u.
	ct, err := message.Decode64(gr.EncItems)
	if err != nil {
		t.Fatal(err)
	}
	packed, err := ppcrypto.SymDecrypt(ku, ct)
	if err != nil {
		t.Fatal(err)
	}
	items, err := message.DecodeItemList(packed)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) == 0 {
		t.Error("legitimate decryption yielded no items")
	}
}

func mustEncrypt(t *testing.T, keys *proxy.LayerKeys, id string) string {
	t.Helper()
	block, err := ppcrypto.PadID(id)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ppcrypto.EncryptOAEP(keys.Pair.Public, block)
	if err != nil {
		t.Fatal(err)
	}
	return message.Encode64(ct)
}
