package adversary_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"pprox/internal/adversary"
	"pprox/internal/proxy"
	"pprox/internal/trace"
)

// TestTraceExportCannotLinkRequests extends the §6.2 adversary with the
// trace telemetry: on top of the edge and LRS network taps, it obtains
// the proxies' full trace export (a leaked telemetry pipeline, the
// realistic worst case for observability data). The claim under test is
// that the trace is anonymized at least as aggressively as the traffic:
// epoch-granular, coarse-duration, randomly-ordered records give the
// adversary no per-request handle, so its linking accuracy stays at the
// shuffler's 1/S bound instead of climbing back toward 1.
func TestTraceExportCannotLinkRequests(t *testing.T) {
	const s = 8
	const batches = 8
	st := newTappedStack(t, s)
	col := trace.NewCollector()
	st.ua.SetTracer(trace.New("ua-0", col.Sink(), nil))
	st.ia.SetTracer(trace.New("ia-0", col.Sink(), nil))
	ctx := context.Background()

	var users []string
	var edge []adversary.Event
	for b := 0; b < batches; b++ {
		var wg sync.WaitGroup
		for i := 0; i < s; i++ {
			u := fmt.Sprintf("victim-%d-%d", b, i)
			users = append(users, u)
			edge = append(edge, adversary.Event{T: time.Now(), Link: "client→ua", Label: u})
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				if err := st.client.Post(ctx, u, "sensitive-item", ""); err != nil {
					t.Errorf("post: %v", err)
				}
			}(u)
			time.Sleep(2 * time.Millisecond)
		}
		wg.Wait()
	}
	// Flush the partial final epochs, as Layer.Close would.
	st.ua.Tracer().AdvanceEpoch()
	st.ia.Tracer().AdvanceEpoch()

	n := s * batches
	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != n {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), n)
	}
	recs := col.Records()

	// The export is operationally useful: it describes every request's
	// passage through each hop's pipeline stages...
	byStage := make(map[string]int)
	for _, r := range recs {
		byStage[r.Node+"/"+r.Stage]++
	}
	if got := byStage["ua-0/"+proxy.StageForward]; got != n {
		t.Errorf("UA forward spans = %d, want %d", got, n)
	}
	if got := byStage["ia-0/"+proxy.StageForward]; got != n {
		t.Errorf("IA forward spans = %d, want %d", got, n)
	}

	// ...but is free of per-request handles. First: no join keys. A
	// conventional tracer assigns one trace ID per request, reused across
	// stages and hops — joining on it reconstructs each request's path
	// and defeats the shuffler outright. Here every span ID must be
	// fresh, so the join yields nothing.
	seen := make(map[string]bool, len(recs))
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("span ID %s appears twice: a cross-stage join key leaked", r.ID)
		}
		seen[r.ID] = true
	}

	// Second: no fine-grained timing. Every duration must sit on a
	// coarse bucket bound (shared by many requests), never a raw value.
	bounds := make(map[float64]bool, len(trace.DefBuckets)+1)
	for _, b := range trace.DefBuckets {
		bounds[b] = true
	}
	bounds[trace.DefBuckets[len(trace.DefBuckets)-1]*10] = true
	for _, r := range recs {
		if !bounds[r.DurationLE] {
			t.Fatalf("record carries non-coarsened duration %v", r.DurationLE)
		}
	}

	// Third, the quantitative attack. The strongest remaining use of the
	// trace is to treat within-epoch structure as a proxy for
	// within-batch processing order: rank each epoch's shuffle_wait
	// spans (longest-waiting first — in a FIFO batch the earliest
	// arrival waits longest, so with exact durations this ordering would
	// recover arrival order) and pair the k-th ranked span overall with
	// the k-th LRS arrival. Coarse buckets plus random export order
	// reduce the ranking to noise, so accuracy stays ≈ 1/S.
	// A span's export position doubles as the believed egress position: a
	// naive tracer flushes spans in completion order, and completion
	// order of the batch IS the shuffled order the LRS sees. Against such
	// a tracer this attack recovers arrival→egress exactly; here both
	// signals are destroyed.
	type posRec struct {
		r   trace.Record
		pos int // export position within the full stream
	}
	var uaWaits []posRec
	for _, r := range recs {
		if r.Node == "ua-0" && r.Stage == proxy.StageShuffleWait {
			uaWaits = append(uaWaits, posRec{r: r, pos: len(uaWaits)})
		}
	}
	if len(uaWaits) != n {
		t.Fatalf("UA shuffle_wait spans = %d, want %d", len(uaWaits), n)
	}
	sort.SliceStable(uaWaits, func(i, j int) bool {
		if uaWaits[i].r.Epoch != uaWaits[j].r.Epoch {
			return uaWaits[i].r.Epoch < uaWaits[j].r.Epoch
		}
		return uaWaits[i].r.DurationLE > uaWaits[j].r.DurationLE
	})
	guesses := make([]adversary.Guess, n)
	for k, w := range uaWaits {
		guesses[k] = adversary.Guess{Source: edge[k].Label, Target: lrs[w.pos].Label}
	}
	acc := adversary.Accuracy(guesses, st.truth(t, users))
	if acc > 0.4 {
		t.Errorf("trace-augmented attack accuracy = %.3f, want ≈ 1/S = %.3f — "+
			"the trace export re-opened the timing channel", acc, 1.0/s)
	}
	t.Logf("trace-augmented attack accuracy = %.3f (theory 1/S = %.3f, %d records leaked)",
		acc, 1.0/s, len(recs))
}
