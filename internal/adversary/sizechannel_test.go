package adversary_test

import (
	"testing"

	"pprox/internal/message"
	"pprox/internal/ppcrypto"
)

// sizechannel_test.go is the DESIGN.md §4 padding ablation: §4.3 requires
// every encrypted message to have constant size. Without the fixed-size
// item-list codec, the ciphertext length of a get response leaks the
// number of recommendations — a side channel an observer can use to
// distinguish users (e.g. cold-start users receive shorter lists).

// encryptWithoutPadding models the ablated design: serialize exactly the
// items present and encrypt.
func encryptWithoutPadding(t *testing.T, key []byte, items []string) []byte {
	t.Helper()
	raw, err := message.Marshal(message.LRSGetResponse{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ppcrypto.SymEncrypt(key, raw)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func encryptWithPadding(t *testing.T, key []byte, items []string) []byte {
	t.Helper()
	packed, err := message.EncodeItemList(items)
	if err != nil {
		t.Fatal(err)
	}
	ct, err := ppcrypto.SymEncrypt(key, packed)
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func lists() [][]string {
	cold := []string{}
	light := []string{"item-000001", "item-000002", "item-000003"}
	heavy := make([]string, message.MaxRecommendations)
	for i := range heavy {
		heavy[i] = "item-00000" + string(rune('a'+i%26))
	}
	return [][]string{cold, light, heavy}
}

func TestSizeChannelExistsWithoutPadding(t *testing.T) {
	key, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, l := range lists() {
		sizes[len(encryptWithoutPadding(t, key, l))] = true
	}
	if len(sizes) < 2 {
		t.Error("ablation broken: unpadded responses do not differ in size")
	}
}

func TestPaddingClosesSizeChannel(t *testing.T) {
	key, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[int]bool{}
	for _, l := range lists() {
		sizes[len(encryptWithPadding(t, key, l))] = true
	}
	if len(sizes) != 1 {
		t.Errorf("padded response sizes vary: %v — the §4.3 size channel is open", sizes)
	}
}

// TestSizeClassifierAblation quantifies the channel: a trivial classifier
// (exact ciphertext length) distinguishes cold-start from heavy users with
// 100% accuracy on the ablated design and chance-level on PProx's.
func TestSizeClassifierAblation(t *testing.T) {
	key, err := ppcrypto.NewSymmetricKey()
	if err != nil {
		t.Fatal(err)
	}
	cold := []string{}
	heavy := lists()[2]

	classify := func(enc func(*testing.T, []byte, []string) []byte) (distinguished bool) {
		coldLen := len(enc(t, key, cold))
		heavyLen := len(enc(t, key, heavy))
		return coldLen != heavyLen
	}
	if !classify(encryptWithoutPadding) {
		t.Error("ablation broken: classifier cannot use the unpadded channel")
	}
	if classify(encryptWithPadding) {
		t.Error("padded design distinguishable by size")
	}
}
