package adversary_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pprox/internal/adversary"
	"pprox/internal/audit"
	"pprox/internal/message"
	"pprox/internal/metrics"
	"pprox/internal/telemetry"
)

// leakPusher hands every pushed snapshot body to the adversary.
type leakPusher struct {
	mu     sync.Mutex
	bodies [][]byte
}

func (p *leakPusher) Push(_ context.Context, body []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bodies = append(p.bodies, append([]byte(nil), body...))
	return nil
}

func (p *leakPusher) Stats() telemetry.TransportStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return telemetry.TransportStats{Pushes: uint64(len(p.bodies))}
}

func (p *leakPusher) Close() {}

// TestFleetTelemetryGrantsNoLinkingAdvantage extends the leaked-telemetry
// adversary to the new fleet plane: the adversary captures every raw
// snapshot a UA node streams toward pprox-ops AND the collector's
// aggregated /fleet response — the full content that crosses the trust
// boundary, since the collector sits outside it. The payloads must be
// epoch-granular only (batch sizes, counters, states), and the
// snapshot-guided attack must gain exactly nothing over the report-free
// in-order attack: the same guesses, accuracy pinned at the 1/S bound.
func TestFleetTelemetryGrantsNoLinkingAdvantage(t *testing.T) {
	const s = 8
	schedule := []int{s, s, s, s}
	st := newTappedStack(t, s)

	reg := metrics.NewRegistry()
	st.ua.RegisterMetrics(reg, "ua")
	aud := audit.New(audit.Config{TargetS: s})

	leak := &leakPusher{}
	em, err := telemetry.NewEmitter(telemetry.EmitterConfig{
		Node: "ua-0", Role: "ua", Registry: reg, Pusher: leak,
		AuditState: func() string { return aud.State().String() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer em.Close()
	// Pause silences the async loop; the test flushes synchronously
	// after each epoch completes instead, so the capture holds exactly
	// one snapshot per shuffle epoch, in epoch order — the adversary's
	// best case. (A flush inside the observer itself would deadlock:
	// the observer runs under the shuffler lock, and sampling the
	// registry reads shuffler occupancy gauges.)
	em.Pause()
	st.ua.SetEpochObserver(func(batch int) {
		aud.ObserveEpoch("ua-0", batch)
		em.ObserveEpoch(batch)
	})

	var users []string
	var edge []adversary.Event
	for _, size := range schedule {
		// Posts complete only after their epoch flushes, so one snapshot
		// flushed here carries exactly that epoch's state.
		u, e := runSchedule(t, st, []int{size})
		users = append(users, u...)
		edge = append(edge, e...)
		if err := em.Flush(context.Background()); err != nil {
			t.Fatalf("telemetry flush: %v", err)
		}
	}
	lrs := st.rec.Events("ia→lrs")
	if len(lrs) != len(users) {
		t.Fatalf("LRS tap saw %d messages, want %d", len(lrs), len(users))
	}
	truth := st.truth(t, users)

	// Feed the captured stream through the collector's real ingest path
	// and take the /fleet body as a second leaked payload.
	col := telemetry.NewCollector(telemetry.CollectorConfig{})
	for _, body := range leak.bodies {
		rec := httptest.NewRecorder()
		col.IngestHandler().ServeHTTP(rec,
			httptest.NewRequest("POST", message.TelemetryPath, bytes.NewReader(body)))
		if rec.Code != 204 {
			t.Fatalf("ingest: status %d", rec.Code)
		}
	}
	fleetRec := httptest.NewRecorder()
	col.FleetHandler().ServeHTTP(fleetRec, httptest.NewRequest("GET", telemetry.FleetPath, nil))
	if fleetRec.Code != 200 {
		t.Fatalf("GET %s: status %d", telemetry.FleetPath, fleetRec.Code)
	}

	leaked := append([][]byte{}, leak.bodies...)
	leaked = append(leaked, fleetRec.Body.Bytes())

	// No identifier — raw or pseudonymous — may appear anywhere in the
	// streamed plane.
	for _, body := range leaked {
		text := string(body)
		for _, u := range users {
			if strings.Contains(text, u) {
				t.Fatalf("telemetry leaks raw user ID %q", u)
			}
		}
		if strings.Contains(text, "sensitive-item") {
			t.Fatal("telemetry leaks a raw item ID")
		}
		for u, pseudo := range truth {
			if strings.Contains(text, pseudo) {
				t.Fatalf("telemetry leaks the pseudonym of %q", u)
			}
		}
	}

	// The stream must be the real thing: one snapshot per epoch with the
	// flush size recorded — otherwise zero-advantage is vacuous.
	var snaps []telemetry.Snapshot
	for _, body := range leak.bodies {
		var snap telemetry.Snapshot
		if err := json.Unmarshal(body, &snap); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap)
	}
	if len(snaps) != len(schedule) {
		t.Fatalf("captured %d snapshots, want one per epoch (%d)", len(snaps), len(schedule))
	}
	var fleet telemetry.FleetReport
	if err := json.Unmarshal(fleetRec.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Rollups.WorstEpochBatch != s {
		t.Fatalf("fleet worst epoch batch = %d, want %d (all epochs full)", fleet.Rollups.WorstEpochBatch, s)
	}

	// Quantitative zero-advantage: the snapshots' only linkage-relevant
	// content is the per-epoch flush size (Seq and Epoch are counters of
	// the flushes the network adversary already counts). The
	// snapshot-guided attack — segment both taps at each reported epoch
	// boundary and correlate within — must produce exactly the guesses
	// the snapshot-free in-order attack makes, and stay at 1/S.
	baseline := adversary.CorrelateInOrder(edge, lrs)
	var augmented []adversary.Guess
	off := 0
	for i, snap := range snaps {
		b := snap.LastBatch
		if b <= 0 || off+b > len(lrs) {
			t.Fatalf("snapshot %d: batch %d at offset %d outside the %d-message tap — "+
				"sub-epoch or phantom information", i, b, off, len(lrs))
		}
		guesses := adversary.CorrelateInOrder(edge[off:off+b], lrs[off:off+b])
		for j, g := range guesses {
			if g != baseline[off+j] {
				t.Fatalf("snapshot %d changed guess %d: %v → %v — "+
					"the payload carries sub-epoch information", i, off+j, baseline[off+j], g)
			}
		}
		augmented = append(augmented, guesses...)
		off += b
	}
	if off != len(lrs) {
		t.Fatalf("snapshot epochs cover %d messages, tap saw %d", off, len(lrs))
	}
	if acc := adversary.Accuracy(augmented, truth); acc > 0.4 {
		t.Errorf("snapshot-guided accuracy = %.3f, want ≈ 1/S = %.3f", acc, 1.0/s)
	}
}
