// Package adversary implements the paper's adversary (§2.3) as executable
// experiments: a network observer that records every message crossing the
// RaaS backend in the clear, a timing-correlation attack against the
// proxy's flows (§6.2), and side-channel enclave-compromise scenarios
// covering every case of the security analysis (§6.1).
//
// The package exists to *measure* the privacy properties — the tests and
// the pprox-bench shuffle experiment quantify the adversary's linking
// probability with and without each defence.
package adversary

import (
	"bytes"
	"io"
	"net/http"
	"sync"
	"time"
)

// Event is one observation: a message seen on a link at a time, with
// whatever label the adversary could extract at that vantage point (a
// client address on the edge link, a cleartext pseudonym on the LRS link,
// nothing in between).
type Event struct {
	T    time.Time
	Link string
	// Label is the adversary-visible identity: the source address for
	// client→UA traffic (the paper's adversary sees IPs), the
	// pseudonymous user for IA→LRS traffic (it reads LRS requests in
	// the clear), empty otherwise.
	Label string
}

// Recorder accumulates observations from every tap.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder creates an empty observation log.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one observation.
func (r *Recorder) Record(link, label string) {
	r.mu.Lock()
	r.events = append(r.events, Event{T: time.Now(), Link: link, Label: label})
	r.mu.Unlock()
}

// Events returns observations for one link in temporal order.
func (r *Recorder) Events(link string) []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Event
	for _, e := range r.events {
		if e.Link == link {
			out = append(out, e)
		}
	}
	return out
}

// Len returns the total observation count.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// LabelFunc extracts an adversary-visible label from a request body at a
// tap point. It must only use information the adversary legitimately sees
// there.
type LabelFunc func(body []byte) string

// Tap wraps an HTTP handler with a network tap on the given link: every
// request is recorded (with its extracted label) before reaching the real
// handler, modelling an adversary monitoring the node's ingress (§2.3 ➌).
func Tap(rec *Recorder, link string, label LabelFunc, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body []byte
		if r.Body != nil {
			body, _ = io.ReadAll(r.Body)
			r.Body.Close()
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		l := ""
		if label != nil {
			l = label(body)
		}
		rec.Record(link, l)
		next.ServeHTTP(w, r)
	})
}
