// Package resilience is the fault-tolerance substrate under the UA→IA→LRS
// forwarding pipeline: per-hop attempt deadlines, bounded
// jittered-exponential-backoff retries, and a per-next-hop circuit breaker
// with half-open probing against the hop's /healthz endpoint.
//
// The package deliberately contains no privacy logic — it only decides
// *whether* and *when* another attempt may be made. The privacy rules for
// retries (re-entering the shuffler, re-randomizing hop ciphertexts,
// idempotency keys for feedback events) live with the proxy layers, which
// call back into this package for pacing and gating. Splitting the two
// keeps the unlinkability argument reviewable in one place while every
// component (proxy layers, the cluster balancer, the cmd/ binaries)
// shares one behaviour for deadlines and breaker state.
package resilience

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"sync"
	"time"
)

// ErrBreakerOpen reports that the next hop's circuit breaker is open: the
// hop failed repeatedly and has not yet passed a health probe, so the
// request is failed fast instead of queuing behind a dead upstream.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// Policy bounds one hop's fault handling. The zero value disables
// everything (single attempt, no deadline, no breaker); WithDefaults fills
// the production defaults the cmd/ binaries use.
type Policy struct {
	// HopTimeout is the per-attempt deadline layered under the caller's
	// context. Zero leaves attempts bounded only by the caller.
	HopTimeout time.Duration
	// MaxAttempts is the total number of tries (first attempt included).
	// Values ≤ 1 disable retries.
	MaxAttempts int
	// BackoffBase is the delay before the first retry; each further retry
	// doubles it, capped at BackoffMax. Every delay is jittered uniformly
	// over [delay/2, delay) so synchronized failures do not re-arrive in
	// lockstep.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (default 10×BackoffBase).
	BackoffMax time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the hop's breaker; ≤ 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before probing
	// the hop's /healthz again.
	BreakerCooldown time.Duration
}

// DefaultPolicy is the production default: bounded hops, a few paced
// retries, and a breaker that probes every couple of seconds.
func DefaultPolicy() Policy {
	return Policy{
		HopTimeout:       10 * time.Second,
		MaxAttempts:      3,
		BackoffBase:      50 * time.Millisecond,
		BackoffMax:       time.Second,
		BreakerThreshold: 5,
		BreakerCooldown:  2 * time.Second,
	}
}

// WithDefaults fills unset pacing fields so a partially specified policy
// (e.g. from flags) behaves sanely. MaxAttempts and BreakerThreshold are
// left alone: zero there means "disabled", not "default".
func (p Policy) WithDefaults() Policy {
	if p.MaxAttempts > 1 && p.BackoffBase <= 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 10 * p.BackoffBase
	}
	if p.BreakerThreshold > 0 && p.BreakerCooldown <= 0 {
		p.BreakerCooldown = 2 * time.Second
	}
	return p
}

// AttemptContext derives one attempt's context: the caller's context
// bounded by the per-hop deadline.
func (p Policy) AttemptContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.HopTimeout <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, p.HopTimeout)
}

// Backoff returns the jittered delay before retry number retry (1 = first
// retry). The exponential base delay is halved-and-jittered so concurrent
// failed requests spread out instead of stampeding the recovering hop.
func (p Policy) Backoff(retry int) time.Duration {
	if p.BackoffBase <= 0 || retry <= 0 {
		return 0
	}
	d := p.BackoffBase << (retry - 1)
	if max := p.BackoffMax; max > 0 && (d > max || d <= 0) {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int64N(int64(half)+1))
}

// Sleep waits out a backoff delay unless the caller's context ends first,
// in which case it returns the context error.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryableStatus reports whether an HTTP status from the next hop is
// worth another attempt: gateway-class errors and load shedding (502, 503,
// 504, 429). Application-level rejections (4xx) are final — retrying a
// ciphertext the enclave rejected only re-emits it for an observer.
func RetryableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusTooManyRequests:
		return true
	}
	return false
}

// State is a circuit breaker's position.
type State int

// Breaker states. The exposition-friendly numeric values are stable:
// metrics export State() as a gauge.
const (
	// StateClosed admits traffic.
	StateClosed State = 0
	// StateOpen fails fast until a health probe passes.
	StateOpen State = 1
)

// String implements fmt.Stringer.
func (s State) String() string {
	if s == StateOpen {
		return "open"
	}
	return "closed"
}

// Breaker is a per-next-hop circuit breaker. Consecutive transport
// failures open it; while open, callers fail fast and the breaker probes
// the hop's health (the Probe function — normally a GET of the existing
// /healthz endpoint) at most once per cooldown until a probe passes and
// the breaker closes again. Probes run on their own short-lived goroutine
// so no user request ever pays for one.
//
// Without a Probe function the breaker degrades to classic half-open
// behaviour: after the cooldown, exactly one caller is admitted as the
// trial and its outcome decides. The cluster balancer uses this mode —
// there the dial itself is the cheapest possible probe.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	// Probe checks the hop's health while open; see type comment.
	probe func() bool
	now   func() time.Time

	mu       sync.Mutex
	state    State
	fails    int       // consecutive failures while closed
	retryAt  time.Time // earliest next probe / trial while open
	probing  bool      // a probe goroutine or trial request is in flight
	opens    uint64
	readmits uint64
}

// NewBreaker creates a closed breaker. threshold ≤ 0 returns nil, which
// every method treats as "always closed" — callers can wire a breaker
// unconditionally and let the policy decide.
func NewBreaker(threshold int, cooldown time.Duration, probe func() bool) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, probe: probe, now: time.Now}
}

// Allow reports whether a request may proceed. While open it schedules (or
// admits, in trial mode) at most one probe per cooldown.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateClosed {
		return true
	}
	if b.probing || b.now().Before(b.retryAt) {
		return false
	}
	b.probing = true
	if b.probe == nil {
		// Trial mode: this caller is the probe; Report settles it.
		return true
	}
	go b.runProbe()
	return false
}

// runProbe executes the health probe and settles the breaker.
func (b *Breaker) runProbe() {
	ok := b.probe()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.settleLocked(ok)
}

// Report records the outcome of an admitted request (transport-level
// success or failure; HTTP application errors should count as success —
// the hop is alive).
func (b *Breaker) Report(ok bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateOpen {
		// Only the trial caller reaches here (probe mode reports via
		// runProbe); its outcome settles the breaker.
		b.probing = false
		b.settleLocked(ok)
		return
	}
	if ok {
		b.fails = 0
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.state = StateOpen
		b.opens++
		b.retryAt = b.now().Add(b.cooldown)
	}
}

// settleLocked applies a probe/trial outcome while open.
func (b *Breaker) settleLocked(ok bool) {
	if b.state != StateOpen {
		return
	}
	if ok {
		b.state = StateClosed
		b.fails = 0
		b.readmits++
		return
	}
	b.retryAt = b.now().Add(b.cooldown)
}

// State returns the breaker's current position.
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns how many times the breaker opened and how many times a
// passed probe re-admitted the hop.
func (b *Breaker) Stats() (opens, readmissions uint64) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.readmits
}

// HTTPHealthProbe builds a Probe function GETting url (normally the next
// hop's /healthz) with a bounded timeout, for use with NewBreaker.
func HTTPHealthProbe(client *http.Client, url string, timeout time.Duration) func() bool {
	if timeout <= 0 {
		timeout = time.Second
	}
	return func() bool {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return false
		}
		resp, err := client.Do(req)
		if err != nil {
			return false
		}
		// Drain (bounded) before closing so the transport can return the
		// connection to its keep-alive pool; closing an unread body
		// forces a re-dial on every probe. Health bodies are tiny — the
		// bound only caps a misbehaving endpoint.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	}
}
