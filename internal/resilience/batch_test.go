package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBoundsConcurrency(t *testing.T) {
	sem := NewSemaphore(3)
	ctx := context.Background()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := sem.Acquire(ctx); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			sem.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency = %d, want ≤ 3", p)
	}
	if got := sem.InFlight(); got != 0 {
		t.Errorf("InFlight after drain = %d, want 0", got)
	}
	if got := sem.Cap(); got != 3 {
		t.Errorf("Cap = %d, want 3", got)
	}
}

func TestSemaphoreAcquireHonorsContext(t *testing.T) {
	sem := NewSemaphore(1)
	if err := sem.Acquire(context.Background()); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := sem.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Acquire: err = %v, want DeadlineExceeded", err)
	}
	sem.Release()
}

func TestSemaphoreNilIsUnbounded(t *testing.T) {
	var sem *Semaphore
	if got := NewSemaphore(0); got != nil {
		t.Fatal("NewSemaphore(0) != nil")
	}
	if err := sem.Acquire(context.Background()); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	sem.Release()
	if sem.InFlight() != 0 || sem.Cap() != 0 {
		t.Error("nil semaphore reported non-zero state")
	}
}

// ladderPolicy keeps backoffs negligible for the RunBatch tests.
var ladderPolicy = Policy{MaxAttempts: 2, BackoffBase: time.Microsecond, BackoffMax: time.Microsecond}

func TestRunBatchFirstAttemptSucceeds(t *testing.T) {
	var sends, preps int
	out, err := RunBatch(context.Background(), ladderPolicy, 4,
		func(ids []int) error { sends++; return nil },
		func(ids []int) error { preps++; return nil },
		func(id int) { t.Errorf("single(%d) on the happy path", id) })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if out.Attempts != 1 || out.Splits != 0 || out.Degraded != 0 {
		t.Errorf("outcome = %+v, want one clean attempt", out)
	}
	if sends != 1 || preps != 0 {
		t.Errorf("sends=%d preps=%d, want 1/0 (no prep before the first attempt)", sends, preps)
	}
}

func TestRunBatchRetriesThenSucceeds(t *testing.T) {
	var sends, preps int
	out, err := RunBatch(context.Background(), ladderPolicy, 4,
		func(ids []int) error {
			sends++
			if sends == 1 {
				return errors.New("transient")
			}
			return nil
		},
		func(ids []int) error {
			preps++
			if len(ids) != 4 {
				t.Errorf("prep saw %d ids, want the whole envelope", len(ids))
			}
			return nil
		},
		func(id int) { t.Errorf("single(%d) despite retry success", id) })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if out.Attempts != 2 || out.Splits != 0 || out.Degraded != 0 {
		t.Errorf("outcome = %+v, want 2 attempts, no ladder descent", out)
	}
	if preps != 1 {
		t.Errorf("preps = %d, want 1 (before the retry)", preps)
	}
}

// TestRunBatchDescendsLadder: whole-envelope attempts exhaust, each half
// is tried once, and the ids of halves that still fail degrade to
// per-message sends — the batch→split→per-message ladder.
func TestRunBatchDescendsLadder(t *testing.T) {
	var envelope, halves int
	var singles []int
	out, err := RunBatch(context.Background(), ladderPolicy, 5,
		func(ids []int) error {
			if len(ids) == 5 {
				envelope++
				return errors.New("whole envelope down")
			}
			halves++
			if halves == 1 {
				return nil // first half delivered
			}
			return errors.New("second half down")
		},
		func(ids []int) error { return nil },
		func(id int) { singles = append(singles, id) })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if envelope != 2 {
		t.Errorf("whole-envelope sends = %d, want MaxAttempts=2", envelope)
	}
	if out.Attempts != 2 || out.Splits != 2 {
		t.Errorf("outcome = %+v, want 2 attempts and 2 split sends", out)
	}
	// n=5 splits 2/3; the failing second half degrades ids 2,3,4.
	if out.Degraded != 3 || len(singles) != 3 {
		t.Fatalf("degraded = %d singles = %v, want ids 2..4", out.Degraded, singles)
	}
	for i, id := range []int{2, 3, 4} {
		if singles[i] != id {
			t.Errorf("singles[%d] = %d, want %d", i, singles[i], id)
		}
	}
}

func TestRunBatchSingletonSkipsSplit(t *testing.T) {
	var singled bool
	out, err := RunBatch(context.Background(), ladderPolicy, 1,
		func(ids []int) error { return errors.New("down") },
		nil,
		func(id int) { singled = true })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if !singled || out.Degraded != 1 || out.Splits != 0 {
		t.Errorf("outcome = %+v singled=%v, want direct degradation", out, singled)
	}
}

func TestRunBatchStopsOnContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out, err := RunBatch(ctx, ladderPolicy, 4,
		func(ids []int) error { cancel(); return errors.New("down") },
		nil,
		func(id int) { t.Error("single after context death") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", out.Attempts)
	}
}

func TestRunBatchPrepFailureAborts(t *testing.T) {
	prepErr := errors.New("rewrap failed")
	_, err := RunBatch(context.Background(), ladderPolicy, 4,
		func(ids []int) error { return errors.New("down") },
		func(ids []int) error { return prepErr },
		func(id int) {})
	if !errors.Is(err, prepErr) {
		t.Fatalf("err = %v, want the prep error (caller fails unresolved ids)", err)
	}
}
