package resilience

import (
	"context"
	"sync/atomic"
)

// Semaphore bounds concurrent fan-out toward a hop — the IA→LRS miss
// fan-out in particular, which would otherwise spawn one goroutine per
// message of every demultiplexed epoch. A nil *Semaphore (NewSemaphore
// with n ≤ 0) is valid everywhere and means unbounded.
type Semaphore struct {
	slots    chan struct{}
	inflight atomic.Int64
}

// NewSemaphore creates a semaphore admitting at most n holders; n ≤ 0
// returns nil, the unbounded semaphore.
func NewSemaphore(n int) *Semaphore {
	if n <= 0 {
		return nil
	}
	return &Semaphore{slots: make(chan struct{}, n)}
}

// Acquire takes a slot, waiting until one frees up or the context ends
// (returning its error). On a nil semaphore it only checks the context.
func (s *Semaphore) Acquire(ctx context.Context) error {
	if s == nil {
		return ctx.Err()
	}
	select {
	case s.slots <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot taken by a successful Acquire.
func (s *Semaphore) Release() {
	if s == nil {
		return
	}
	s.inflight.Add(-1)
	<-s.slots
}

// InFlight returns the current number of holders (the
// pprox_lrs_inflight gauge).
func (s *Semaphore) InFlight() int64 {
	if s == nil {
		return 0
	}
	return s.inflight.Load()
}

// Cap returns the semaphore's capacity, 0 meaning unbounded.
func (s *Semaphore) Cap() int {
	if s == nil {
		return 0
	}
	return cap(s.slots)
}

// BatchOutcome summarizes one epoch's trip down the batch→split→
// per-message degradation ladder.
type BatchOutcome struct {
	// Attempts counts whole-envelope sends (1 when the first succeeded).
	Attempts int
	// Splits counts sub-envelope sends after splitting.
	Splits int
	// Degraded counts messages that fell through to per-message
	// forwarding.
	Degraded int
}

// RunBatch drives one batched forward down the degradation ladder. The
// callbacks carry all transport and privacy knowledge; this driver only
// decides what is tried, when, and at which granularity:
//
//  1. Whole envelope: send(all ids), retried up to p.MaxAttempts with
//     jittered backoff. Before each retry, prep(ids) re-establishes the
//     attempt's privacy (the UA link-rewraps the sub-batch as a unit).
//  2. Split: after whole-envelope exhaustion the ids split into halves;
//     each half is prepped and sent once.
//  3. Per-message: ids of a failed half degrade to single(id), which must
//     terminally resolve its message (it owns delivery, including
//     failure delivery). A one-message batch skips the split rung.
//
// send must deliver per-message results itself on success and return an
// error only for envelope-level failure (nothing delivered). Every id is
// resolved exactly once unless RunBatch returns an error — only possible
// when ctx ends or prep fails on the whole envelope mid-ladder — in
// which case the caller must fail the unresolved ids itself.
func RunBatch(ctx context.Context, p Policy, n int,
	send func(ids []int) error,
	prep func(ids []int) error,
	single func(id int)) (BatchOutcome, error) {

	var out BatchOutcome
	if n <= 0 {
		return out, nil
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}

	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := Sleep(ctx, p.Backoff(attempt)); err != nil {
				return out, err
			}
			if prep != nil {
				if err := prep(ids); err != nil {
					return out, err
				}
			}
		}
		out.Attempts++
		if send(ids) == nil {
			return out, nil
		}
		if err := ctx.Err(); err != nil {
			return out, err
		}
	}

	if n == 1 {
		// Splitting a singleton is meaningless; degrade directly.
		single(ids[0])
		out.Degraded++
		return out, nil
	}
	for _, half := range [][]int{ids[:n/2], ids[n/2:]} {
		ok := false
		if prep == nil || prep(half) == nil {
			out.Splits++
			ok = send(half) == nil
		}
		if err := ctx.Err(); err != nil && !ok {
			return out, err
		}
		if !ok {
			for _, id := range half {
				single(id)
				out.Degraded++
			}
		}
	}
	return out, nil
}
