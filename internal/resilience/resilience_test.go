package resilience

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPolicyBackoffBoundsAndJitter(t *testing.T) {
	p := Policy{BackoffBase: 40 * time.Millisecond, BackoffMax: 100 * time.Millisecond}
	for retry := 1; retry <= 6; retry++ {
		for i := 0; i < 50; i++ {
			d := p.Backoff(retry)
			if d <= 0 {
				t.Fatalf("retry %d: non-positive backoff %v", retry, d)
			}
			if d > p.BackoffMax {
				t.Fatalf("retry %d: backoff %v exceeds max %v", retry, d, p.BackoffMax)
			}
		}
	}
	if d := p.Backoff(0); d != 0 {
		t.Errorf("retry 0 backoff = %v, want 0", d)
	}
	if d := (Policy{}).Backoff(3); d != 0 {
		t.Errorf("zero policy backoff = %v, want 0", d)
	}
}

func TestPolicyBackoffGrows(t *testing.T) {
	p := Policy{BackoffBase: 10 * time.Millisecond, BackoffMax: time.Hour}
	// Jitter is within [d/2, d], so retry 4's floor (40ms) clears retry
	// 1's ceiling (10ms).
	if lo, hi := p.Backoff(4), p.Backoff(1); lo <= hi {
		t.Errorf("backoff(4)=%v not beyond backoff(1)=%v", lo, hi)
	}
}

func TestAttemptContextAppliesDeadline(t *testing.T) {
	p := Policy{HopTimeout: 10 * time.Millisecond}
	ctx, cancel := p.AttemptContext(context.Background())
	defer cancel()
	if _, ok := ctx.Deadline(); !ok {
		t.Fatal("attempt context has no deadline")
	}
	select {
	case <-ctx.Done():
	case <-time.After(time.Second):
		t.Fatal("attempt context never expired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx error = %v", ctx.Err())
	}
}

func TestSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on canceled ctx = %v", err)
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Errorf("Sleep = %v", err)
	}
}

func TestRetryableStatus(t *testing.T) {
	for _, s := range []int{502, 503, 504, 429} {
		if !RetryableStatus(s) {
			t.Errorf("status %d should be retryable", s)
		}
	}
	for _, s := range []int{200, 400, 401, 404, 500} {
		if RetryableStatus(s) {
			t.Errorf("status %d should not be retryable", s)
		}
	}
}

func TestBreakerOpensAfterThresholdAndFailsFast(t *testing.T) {
	b := NewBreaker(3, time.Hour, func() bool { return false })
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Report(false)
	}
	if b.State() != StateOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	if b.Allow() {
		t.Error("open breaker admitted a request before cooldown")
	}
	opens, readmits := b.Stats()
	if opens != 1 || readmits != 0 {
		t.Errorf("stats = %d opens, %d readmissions", opens, readmits)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(3, time.Hour, nil)
	b.Report(false)
	b.Report(false)
	b.Report(true)
	b.Report(false)
	b.Report(false)
	if b.State() != StateClosed {
		t.Error("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHealthProbeReadmits(t *testing.T) {
	healthy := atomic.Bool{}
	probed := make(chan struct{}, 16)
	b := NewBreaker(1, time.Millisecond, func() bool {
		select {
		case probed <- struct{}{}:
		default:
		}
		return healthy.Load()
	})
	b.Report(false)
	if b.State() != StateOpen {
		t.Fatal("breaker did not open")
	}

	// Unhealthy: probes run but the breaker stays open.
	deadline := time.After(2 * time.Second)
waitProbe:
	for {
		b.Allow() // schedules a probe once the cooldown has passed
		select {
		case <-probed:
			break waitProbe
		case <-deadline:
			t.Fatal("no probe fired")
		case <-time.After(time.Millisecond):
		}
	}
	if b.State() != StateOpen {
		t.Fatal("failed probe closed the breaker")
	}

	healthy.Store(true)
	for b.State() != StateClosed {
		b.Allow() // schedule further probes once the cooldown passes
		select {
		case <-deadline:
			t.Fatal("healthy hop never re-admitted")
		case <-time.After(time.Millisecond):
		}
	}
	if !b.Allow() {
		t.Error("re-admitted breaker rejected a request")
	}
	if _, readmits := b.Stats(); readmits != 1 {
		t.Errorf("readmissions = %d, want 1", readmits)
	}
}

func TestBreakerTrialModeHalfOpen(t *testing.T) {
	b := NewBreaker(1, time.Millisecond, nil) // no probe: dial-as-trial mode
	b.Report(false)
	if b.State() != StateOpen {
		t.Fatal("breaker did not open")
	}
	time.Sleep(5 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no trial admitted after cooldown")
	}
	if b.Allow() {
		t.Error("second caller admitted during the trial")
	}
	b.Report(false) // trial fails: stay open
	if b.State() != StateOpen {
		t.Fatal("failed trial closed the breaker")
	}
	time.Sleep(5 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("no second trial admitted")
	}
	b.Report(true)
	if b.State() != StateClosed {
		t.Error("passed trial did not close the breaker")
	}
}

func TestNilBreakerIsAlwaysClosed(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker rejected")
	}
	b.Report(false)
	if b.State() != StateClosed {
		t.Error("nil breaker not closed")
	}
	if NewBreaker(0, time.Second, nil) != nil {
		t.Error("threshold 0 should build a nil (disabled) breaker")
	}
}

func TestHTTPHealthProbe(t *testing.T) {
	status := atomic.Int32{}
	status.Store(http.StatusOK)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(status.Load()))
	}))
	defer srv.Close()

	probe := HTTPHealthProbe(srv.Client(), srv.URL+"/healthz", time.Second)
	if !probe() {
		t.Error("probe failed against healthy endpoint")
	}
	status.Store(http.StatusServiceUnavailable)
	if probe() {
		t.Error("probe passed against 503 endpoint")
	}
	srv.Close()
	if probe() {
		t.Error("probe passed against dead endpoint")
	}
}

func TestWithDefaults(t *testing.T) {
	p := (Policy{MaxAttempts: 3, BreakerThreshold: 2}).WithDefaults()
	if p.BackoffBase <= 0 || p.BackoffMax <= 0 || p.BreakerCooldown <= 0 {
		t.Errorf("defaults not filled: %+v", p)
	}
	// Disabled knobs stay disabled.
	z := (Policy{}).WithDefaults()
	if z.MaxAttempts != 0 || z.BreakerThreshold != 0 {
		t.Errorf("WithDefaults enabled disabled features: %+v", z)
	}
}

// Regression: HTTPHealthProbe closed the response body without draining
// it, so the transport could never return the connection to its
// keep-alive pool and every probe re-dialed the hop. Repeated probes
// against one server must ride a single connection.
func TestHTTPHealthProbeReusesConnection(t *testing.T) {
	var newConns atomic.Int64
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	srv.Config.ConnState = func(_ net.Conn, s http.ConnState) {
		if s == http.StateNew {
			newConns.Add(1)
		}
	}
	srv.Start()
	defer srv.Close()

	client := &http.Client{}
	defer client.CloseIdleConnections()
	probe := HTTPHealthProbe(client, srv.URL, time.Second)
	for i := 0; i < 5; i++ {
		if !probe() {
			t.Fatalf("probe %d failed against healthy server", i)
		}
	}
	if got := newConns.Load(); got != 1 {
		t.Fatalf("server saw %d connections over 5 probes, want 1 (keep-alive reuse)", got)
	}
}
