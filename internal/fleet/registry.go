// Package fleet is the elastic-membership subsystem: a live route
// registry for UA/IA/LRS endpoints and a reconciler that drives the
// actual instance count from the autoscale policy (DESIGN.md §4j).
//
// The registry follows the gorouter blueprint — register, heartbeat,
// deregister, staleness pruning, generation-numbered backend sets a
// load balancer refreshes from — with one PProx-specific twist:
// membership changes are epoch-aligned. A newly registered endpoint is
// held PENDING until the next shuffle-epoch boundary, so it can never
// join a service mid-epoch and siphon messages out of a batch that is
// still filling; a scale-down candidate goes DRAINING — excluded from
// the routable set, but kept registered and serving — until its final
// shuffle epoch has flushed whole, and only then deregisters. Both
// rules exist for the same reason: the 1/S linking bound is an
// epoch-granular property, and churn must never shrink an anonymity
// set that requests have already been admitted into.
package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pprox/internal/metrics"
)

// State is an endpoint's position in the admission/drain lifecycle.
type State int

// Endpoint lifecycle states. Only StateActive endpoints are routable.
const (
	// StatePending: registered, awaiting admission at the next
	// shuffle-epoch boundary.
	StatePending State = iota
	// StateActive: in the routable set.
	StateActive
	// StateDraining: removed from the routable set but still registered
	// and serving, flushing its final shuffle epoch.
	StateDraining
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateActive:
		return "active"
	case StateDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// Endpoint is one registered endpoint's public view (Membership, the
// /fleet report, and the fleet HTTP API all render it).
type Endpoint struct {
	Service string `json:"service"`
	Addr    string `json:"addr"`
	State   string `json:"state"`
}

// Config parameterizes a Registry. The zero value works.
type Config struct {
	// StaleAfter removes an endpoint whose last heartbeat is older than
	// this (0 disables pruning — in-process deployments deregister
	// explicitly and never miss heartbeats).
	StaleAfter time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

// Registry is the live route table. All methods are safe for concurrent
// use; Generation is lock-free so a balancer can poll it per dial.
type Registry struct {
	cfg Config

	// gen numbers the routable-set version across all services: any
	// change to any service's active set bumps it, and consumers
	// (cluster.Balancer) refresh their backend lists when it moves.
	gen atomic.Uint64
	// pendingN counts pending endpoints so EpochBoundary — which runs on
	// every shuffle flush — is one atomic load in the common case.
	pendingN atomic.Int64

	mu       sync.Mutex
	services map[string]*svcEndpoints

	registrations   uint64
	deregistrations uint64
	admissions      uint64
	drains          uint64
	prunes          uint64
}

// svcEndpoints is one service's endpoint set; order preserves
// registration order so Routable and victim selection are deterministic.
type svcEndpoints struct {
	order []string
	eps   map[string]*endpointState
}

type endpointState struct {
	state        State
	lastBeat     time.Time
	registeredAt time.Time
}

// NewRegistry builds a registry.
func NewRegistry(cfg Config) *Registry {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Registry{cfg: cfg, services: make(map[string]*svcEndpoints)}
}

// Register adds an endpoint. It enters PENDING — routable only after the
// next shuffle-epoch boundary (EpochBoundary) — unless the service has
// no active endpoint at all, in which case it is admitted immediately:
// with nothing routable there is no traffic flowing through the service,
// hence no in-flight epoch an admission could dilute. Re-registering a
// known endpoint refreshes its heartbeat and keeps its state (a draining
// endpoint cannot re-admit itself; deregistration is its only exit).
// The admitted state is returned.
func (r *Registry) Register(service, addr string) State {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.services[service]
	if svc == nil {
		svc = &svcEndpoints{eps: make(map[string]*endpointState)}
		r.services[service] = svc
	}
	if ep := svc.eps[addr]; ep != nil {
		ep.lastBeat = now
		return ep.state
	}
	st := StatePending
	if !svc.hasActive() {
		st = StateActive
	}
	svc.eps[addr] = &endpointState{state: st, lastBeat: now, registeredAt: now}
	svc.order = append(svc.order, addr)
	r.registrations++
	if st == StatePending {
		r.pendingN.Add(1)
	} else {
		r.gen.Add(1)
	}
	return st
}

func (s *svcEndpoints) hasActive() bool {
	for _, ep := range s.eps {
		if ep.state == StateActive {
			return true
		}
	}
	return false
}

// Heartbeat refreshes an endpoint's liveness. False means the endpoint
// is unknown (pruned or never registered) and the agent should
// re-register.
func (r *Registry) Heartbeat(service, addr string) bool {
	now := r.cfg.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.services[service]
	if svc == nil {
		return false
	}
	ep := svc.eps[addr]
	if ep == nil {
		return false
	}
	ep.lastBeat = now
	return true
}

// BeginDrain moves an endpoint out of the routable set while keeping it
// registered: the balancer stops dialing it on its next refresh, but the
// instance keeps serving in-flight traffic and flushing its buffered
// shuffle epochs. False means the endpoint is unknown.
func (r *Registry) BeginDrain(service, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.services[service]
	if svc == nil {
		return false
	}
	ep := svc.eps[addr]
	if ep == nil {
		return false
	}
	switch ep.state {
	case StateActive:
		ep.state = StateDraining
		r.drains++
		r.gen.Add(1)
	case StatePending:
		// Never routed; draining it is just a deferred deregister.
		ep.state = StateDraining
		r.drains++
		r.pendingN.Add(-1)
	}
	return true
}

// Deregister removes an endpoint. False means it was unknown.
func (r *Registry) Deregister(service, addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.removeLocked(service, addr, false)
}

// removeLocked drops one endpoint, bumping the generation when the
// routable set changed. asPrune selects the prune counter.
func (r *Registry) removeLocked(service, addr string, asPrune bool) bool {
	svc := r.services[service]
	if svc == nil {
		return false
	}
	ep := svc.eps[addr]
	if ep == nil {
		return false
	}
	delete(svc.eps, addr)
	for i, a := range svc.order {
		if a == addr {
			svc.order = append(svc.order[:i], svc.order[i+1:]...)
			break
		}
	}
	switch ep.state {
	case StatePending:
		r.pendingN.Add(-1)
	case StateActive:
		r.gen.Add(1)
	}
	if asPrune {
		r.prunes++
	} else {
		r.deregistrations++
	}
	return true
}

// EpochBoundary admits every pending endpoint, across all services, and
// returns how many were admitted. It is wired to the proxy layers'
// shuffle-flush observers: a flush is exactly the moment no epoch is in
// flight on the flushing instance, so newly admitted endpoints start
// receiving requests on a fresh epoch. The no-pending fast path is one
// atomic load, cheap enough for the flush path.
func (r *Registry) EpochBoundary() int {
	if r.pendingN.Load() == 0 {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitLocked(time.Time{})
}

// AdmitIdle admits pending endpoints that have waited longer than
// olderThan. The reconciler calls it each tick with the shuffle flush
// timeout: if a full flush interval passed with no epoch boundary
// firing, the fleet is idle — every shuffler's buffer has flushed or is
// older than the pending registration — so admission cannot dilute an
// epoch the endpoint could have siphoned from. It also keeps a fleet
// with zero traffic (hence zero epochs) from deadlocking new capacity.
func (r *Registry) AdmitIdle(olderThan time.Duration) int {
	if r.pendingN.Load() == 0 {
		return 0
	}
	cutoff := r.cfg.Now().Add(-olderThan)
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.admitLocked(cutoff)
}

// admitLocked promotes pending endpoints registered at or before cutoff
// (zero cutoff promotes all).
func (r *Registry) admitLocked(cutoff time.Time) int {
	admitted := 0
	for _, svc := range r.services {
		for _, ep := range svc.eps {
			if ep.state != StatePending {
				continue
			}
			if !cutoff.IsZero() && ep.registeredAt.After(cutoff) {
				continue
			}
			ep.state = StateActive
			admitted++
		}
	}
	if admitted > 0 {
		r.admissions += uint64(admitted)
		r.pendingN.Add(-int64(admitted))
		r.gen.Add(1)
	}
	return admitted
}

// Routable returns the service's active endpoints in registration order,
// pruning stale ones first. Pending and draining endpoints never appear.
func (r *Registry) Routable(service string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked()
	svc := r.services[service]
	if svc == nil {
		return nil
	}
	out := make([]string, 0, len(svc.order))
	for _, addr := range svc.order {
		if svc.eps[addr].state == StateActive {
			out = append(out, addr)
		}
	}
	return out
}

// Generation returns the routable-set version; it moves on every change
// to any service's active set (admission, drain, deregister, prune).
// Lock-free, so a balancer can compare it on every dial.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Prune removes endpoints whose heartbeat went stale and returns how
// many were removed. Routable prunes implicitly; callers with no dial
// traffic (the ops registry host) tick it explicitly.
func (r *Registry) Prune() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pruneLocked()
}

func (r *Registry) pruneLocked() int {
	if r.cfg.StaleAfter <= 0 {
		return 0
	}
	cutoff := r.cfg.Now().Add(-r.cfg.StaleAfter)
	removed := 0
	for name, svc := range r.services {
		var stale []string
		for addr, ep := range svc.eps {
			if ep.lastBeat.Before(cutoff) {
				stale = append(stale, addr)
			}
		}
		for _, addr := range stale {
			if r.removeLocked(name, addr, true) {
				removed++
			}
		}
	}
	return removed
}

// Membership returns every registered endpoint with its state, sorted by
// service then address — the fleet view the /fleet report and pprox-audit
// render.
func (r *Registry) Membership() []Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Endpoint
	for name, svc := range r.services {
		for addr, ep := range svc.eps {
			out = append(out, Endpoint{Service: name, Addr: addr, State: ep.state.String()})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Addr < out[j].Addr
	})
	return out
}

// Count returns the number of endpoints of a service in a given state.
func (r *Registry) Count(service string, state State) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	svc := r.services[service]
	if svc == nil {
		return 0
	}
	n := 0
	for _, ep := range svc.eps {
		if ep.state == state {
			n++
		}
	}
	return n
}

// RegistryStats are the registry's lifetime counters.
type RegistryStats struct {
	Registrations   uint64
	Deregistrations uint64
	Admissions      uint64
	Drains          uint64
	Prunes          uint64
}

// Stats returns the lifetime counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RegistryStats{
		Registrations:   r.registrations,
		Deregistrations: r.deregistrations,
		Admissions:      r.admissions,
		Drains:          r.drains,
		Prunes:          r.prunes,
	}
}

// RegisterMetrics exposes the registry's instruments: lifecycle counters,
// the generation gauge, and per-service endpoint-state gauges for the
// given services (default ua, ia, lrs).
func (r *Registry) RegisterMetrics(reg *metrics.Registry, services ...string) {
	if len(services) == 0 {
		services = []string{"ua", "ia", "lrs"}
	}
	counter := func(name, help string, read func(RegistryStats) uint64) {
		reg.CounterFunc(name, help, func() float64 { return float64(read(r.Stats())) })
	}
	counter("pprox_fleet_registrations_total",
		"Endpoints registered with the fleet registry.",
		func(s RegistryStats) uint64 { return s.Registrations })
	counter("pprox_fleet_deregistrations_total",
		"Endpoints deregistered from the fleet registry.",
		func(s RegistryStats) uint64 { return s.Deregistrations })
	counter("pprox_fleet_admissions_total",
		"Pending endpoints admitted at shuffle-epoch boundaries.",
		func(s RegistryStats) uint64 { return s.Admissions })
	counter("pprox_fleet_drains_total",
		"Endpoints moved into drain mode.",
		func(s RegistryStats) uint64 { return s.Drains })
	counter("pprox_fleet_prunes_total",
		"Endpoints removed after missing heartbeats.",
		func(s RegistryStats) uint64 { return s.Prunes })
	reg.Gauge("pprox_fleet_generation",
		"Routable-set version; consumers refresh their backend lists when it moves.",
		func() float64 { return float64(r.Generation()) })
	ep := reg.GaugeVec("pprox_fleet_endpoints",
		"Registered endpoints by service and lifecycle state.", "service", "state")
	for _, svc := range services {
		for _, st := range []State{StatePending, StateActive, StateDraining} {
			svc, st := svc, st
			ep.With(func() float64 { return float64(r.Count(svc, st)) }, svc, st.String())
		}
	}
}
