package fleet

import (
	"fmt"
	"sync"
	"time"

	"pprox/internal/autoscale"
)

// Driver is what the reconciler actuates: the side that can actually
// create and retire UA/IA instance pairs. The cluster deployment
// implements it in-process; a production control plane would implement
// it against an orchestrator.
type Driver interface {
	// Pairs reports the current number of live UA/IA pairs, counting
	// pairs still pending admission but not pairs already draining.
	Pairs() int
	// AddPair spawns one UA/IA pair and registers it; the registry
	// admits it at the next shuffle-epoch boundary.
	AddPair() error
	// DrainPair picks one pair, drains it at an epoch boundary, and
	// retires it once its final epoch has flushed whole.
	DrainPair() error
}

// Action names what a reconciler tick decided to do.
type Action string

const (
	ActionHold  Action = "hold"
	ActionUp    Action = "scale-up"
	ActionDown  Action = "scale-down"
	ActionError Action = "error"
)

// Decision is one reconciler tick: the signals it saw and what it did.
// Decisions are kept in a bounded ring and exported through Overview so
// operators can replay why the fleet is the size it is.
type Decision struct {
	Seq       uint64  `json:"seq"`
	RPS       float64 `json:"rps"`
	Occupancy float64 `json:"occupancy"`
	Goodput   float64 `json:"goodput"`
	Current   int     `json:"current"`
	Desired   int     `json:"desired"`
	Action    Action  `json:"action"`
	Err       string  `json:"err,omitempty"`
}

// Overview is the fleet-membership + scaling view exported to telemetry
// snapshots and the /fleet rollup: who is in the fleet, in what state,
// and the recent scaling decisions that produced that shape.
type Overview struct {
	CurrentPairs int        `json:"current_pairs"`
	DesiredPairs int        `json:"desired_pairs"`
	Endpoints    []Endpoint `json:"endpoints"`
	Decisions    []Decision `json:"decisions,omitempty"`
}

// ReconcilerConfig wires a Reconciler.
type ReconcilerConfig struct {
	// Controller is the scaling policy. Required.
	Controller *autoscale.Controller
	// Signals samples the live inputs (autoscale.SignalSource.Sample or
	// equivalent). Required.
	Signals func() autoscale.Signals
	// Driver actuates pair count changes. Required.
	Driver Driver
	// Registry, when set, gets AdmitIdle/Prune housekeeping each tick
	// so pending endpoints on an idle fleet (no traffic, so no epoch
	// boundaries) still become routable.
	Registry *Registry
	// AdmitIdleAfter bounds how long a pending endpoint may wait for an
	// epoch boundary before being admitted anyway (an idle fleet has no
	// traffic and so no boundaries). Zero means 5s.
	AdmitIdleAfter time.Duration
	// Keep bounds the decision ring. Zero means 16.
	Keep int
	// Logger, when set, receives one line per non-hold decision.
	Logger func(format string, args ...any)
}

// Reconciler closes the loop between the live signals and the driver:
// each Tick samples signals, asks the controller for the desired pair
// count, and moves the actual count one step toward it. One step per
// tick keeps churn observable and lets the admission/drain machinery
// finish one membership change before the next begins.
type Reconciler struct {
	cfg ReconcilerConfig

	mu        sync.Mutex
	seq       uint64
	decisions []Decision
	desired   int
}

// NewReconciler builds a reconciler. Controller, Signals and Driver are
// required.
func NewReconciler(cfg ReconcilerConfig) (*Reconciler, error) {
	if cfg.Controller == nil || cfg.Signals == nil || cfg.Driver == nil {
		return nil, fmt.Errorf("fleet: reconciler needs Controller, Signals and Driver")
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 16
	}
	if cfg.AdmitIdleAfter <= 0 {
		cfg.AdmitIdleAfter = 5 * time.Second
	}
	return &Reconciler{cfg: cfg, desired: -1}, nil
}

// Tick runs one reconcile pass and returns the decision it recorded.
func (r *Reconciler) Tick() Decision {
	if reg := r.cfg.Registry; reg != nil {
		reg.Prune()
		reg.AdmitIdle(r.cfg.AdmitIdleAfter)
	}
	sig := r.cfg.Signals()
	current := r.cfg.Driver.Pairs()
	desired := r.cfg.Controller.DesiredLive(sig, current)

	d := Decision{
		RPS:       sig.RPS,
		Occupancy: sig.Occupancy,
		Goodput:   sig.Goodput,
		Current:   current,
		Desired:   desired,
		Action:    ActionHold,
	}
	var err error
	switch {
	case desired > current:
		d.Action = ActionUp
		err = r.cfg.Driver.AddPair()
	case desired < current:
		d.Action = ActionDown
		err = r.cfg.Driver.DrainPair()
	}
	if err != nil {
		d.Action = ActionError
		d.Err = err.Error()
	}

	r.mu.Lock()
	r.seq++
	d.Seq = r.seq
	r.desired = desired
	r.decisions = append(r.decisions, d)
	if len(r.decisions) > r.cfg.Keep {
		r.decisions = r.decisions[len(r.decisions)-r.cfg.Keep:]
	}
	r.mu.Unlock()

	if r.cfg.Logger != nil && d.Action != ActionHold {
		r.cfg.Logger("fleet: %s current=%d desired=%d rps=%.1f occ=%.2f err=%q",
			d.Action, d.Current, d.Desired, d.RPS, d.Occupancy, d.Err)
	}
	return d
}

// Run ticks the reconciler on the given interval until the returned
// stop function is called. Stop blocks until any in-flight tick has
// finished, so a caller tearing the driver down afterwards cannot race
// a scaling action still in progress.
func (r *Reconciler) Run(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	loopDone := make(chan struct{})
	var once sync.Once
	go func() {
		defer close(loopDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				r.Tick()
			}
		}
	}()
	return func() {
		once.Do(func() { close(done) })
		<-loopDone
	}
}

// Decisions returns the recent decision ring, oldest first.
func (r *Reconciler) Decisions() []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, len(r.decisions))
	copy(out, r.decisions)
	return out
}

// Desired returns the most recent desired pair count, or -1 before the
// first tick.
func (r *Reconciler) Desired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.desired
}

// Overview assembles the exported fleet view. Either argument may be
// nil; missing parts are zero.
func BuildOverview(reg *Registry, rec *Reconciler, currentPairs int) *Overview {
	ov := &Overview{CurrentPairs: currentPairs, DesiredPairs: currentPairs}
	if reg != nil {
		ov.Endpoints = reg.Membership()
	}
	if rec != nil {
		ov.Decisions = rec.Decisions()
		if d := rec.Desired(); d >= 0 {
			ov.DesiredPairs = d
		}
	}
	return ov
}
