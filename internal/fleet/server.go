package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// HTTP API paths. The registry is hosted by pprox-ops (or any control
// plane) and spoken to by pprox-proxy instances via the Agent below.
const (
	RegisterPath   = "/fleet/register"
	HeartbeatPath  = "/fleet/heartbeat"
	DrainPath      = "/fleet/drain"
	DeregisterPath = "/fleet/deregister"
	MembersPath    = "/fleet/members"
)

// wireEndpoint is the request body for all mutation endpoints.
type wireEndpoint struct {
	Service string `json:"service"`
	Addr    string `json:"addr"`
}

// Server exposes a Registry over HTTP.
type Server struct {
	Registry *Registry
}

// Routes returns the handler set to merge into a mux.
func (s *Server) Routes() map[string]http.Handler {
	return map[string]http.Handler{
		RegisterPath:   http.HandlerFunc(s.handleRegister),
		HeartbeatPath:  http.HandlerFunc(s.handleHeartbeat),
		DrainPath:      http.HandlerFunc(s.handleDrain),
		DeregisterPath: http.HandlerFunc(s.handleDeregister),
		MembersPath:    http.HandlerFunc(s.handleMembers),
	}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request) (wireEndpoint, bool) {
	var ep wireEndpoint
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return ep, false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 4096))
	if err != nil || json.Unmarshal(body, &ep) != nil || ep.Service == "" || ep.Addr == "" {
		http.Error(w, "bad endpoint body", http.StatusBadRequest)
		return ep, false
	}
	return ep, true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.decode(w, r)
	if !ok {
		return
	}
	state := s.Registry.Register(ep.Service, ep.Addr)
	writeJSON(w, http.StatusOK, map[string]string{"state": state.String()})
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.decode(w, r)
	if !ok {
		return
	}
	if !s.Registry.Heartbeat(ep.Service, ep.Addr) {
		// Unknown endpoint: pruned or never registered. 404 tells the
		// agent to re-register rather than keep heartbeating a ghost.
		http.Error(w, "unknown endpoint", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": "ok"})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.decode(w, r)
	if !ok {
		return
	}
	if !s.Registry.BeginDrain(ep.Service, ep.Addr) {
		http.Error(w, "unknown endpoint", http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"state": StateDraining.String()})
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	ep, ok := s.decode(w, r)
	if !ok {
		return
	}
	s.Registry.Deregister(ep.Service, ep.Addr)
	writeJSON(w, http.StatusOK, map[string]string{"state": "gone"})
}

func (s *Server) handleMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Generation uint64     `json:"generation"`
		Members    []Endpoint `json:"members"`
	}{s.Registry.Generation(), s.Registry.Membership()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// AgentConfig wires an Agent.
type AgentConfig struct {
	// BaseURL is the registry host, e.g. "http://ops:7070".
	BaseURL string
	// Service and Addr identify this instance.
	Service, Addr string
	// Client defaults to a 5-second-timeout http.Client.
	Client *http.Client
	// Interval is the heartbeat period. Zero means 2s.
	Interval time.Duration
	// Logger, when set, receives heartbeat failures.
	Logger func(format string, args ...any)
}

// Agent is the pprox-proxy side of the registry protocol: register on
// boot, heartbeat on an interval (re-registering if the registry forgot
// us), announce drain, deregister on exit.
type Agent struct {
	cfg AgentConfig

	mu      sync.Mutex
	stopped bool
	stop    chan struct{}
}

// NewAgent builds an agent. BaseURL, Service and Addr are required.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.BaseURL == "" || cfg.Service == "" || cfg.Addr == "" {
		return nil, fmt.Errorf("fleet: agent needs BaseURL, Service and Addr")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	return &Agent{cfg: cfg, stop: make(chan struct{})}, nil
}

func (a *Agent) post(ctx context.Context, path string) (int, error) {
	body, _ := json.Marshal(wireEndpoint{Service: a.cfg.Service, Addr: a.cfg.Addr})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("fleet: %s returned %d", path, resp.StatusCode)
	}
	return resp.StatusCode, nil
}

// Register announces this instance to the registry.
func (a *Agent) Register(ctx context.Context) error {
	_, err := a.post(ctx, RegisterPath)
	return err
}

// Drain asks the registry to stop routing to this instance.
func (a *Agent) Drain(ctx context.Context) error {
	_, err := a.post(ctx, DrainPath)
	return err
}

// Deregister removes this instance from the registry.
func (a *Agent) Deregister(ctx context.Context) error {
	_, err := a.post(ctx, DeregisterPath)
	return err
}

// Start registers and then heartbeats until Stop. A 404 heartbeat
// (registry pruned us, or it restarted) triggers a re-register.
func (a *Agent) Start(ctx context.Context) error {
	if err := a.Register(ctx); err != nil {
		return err
	}
	go a.heartbeatLoop()
	return nil
}

func (a *Agent) heartbeatLoop() {
	t := time.NewTicker(a.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), a.cfg.Interval)
			code, err := a.post(ctx, HeartbeatPath)
			if code == http.StatusNotFound {
				err = a.Register(ctx)
			}
			cancel()
			if err != nil && a.cfg.Logger != nil {
				a.cfg.Logger("fleet agent: heartbeat: %v", err)
			}
		}
	}
}

// Stop ends the heartbeat loop. It does not deregister; callers decide
// whether the exit is a drain (Deregister after the final epoch) or a
// crash (let staleness pruning collect the entry).
func (a *Agent) Stop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.stopped {
		a.stopped = true
		close(a.stop)
	}
}
