package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newFleetServer(t *testing.T, reg *Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	for path, h := range (&Server{Registry: reg}).Routes() {
		mux.Handle(path, h)
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestAgentLifecycleOverHTTP(t *testing.T) {
	reg := NewRegistry(Config{})
	ts := newFleetServer(t, reg)

	ctx := context.Background()
	ag, err := NewAgent(AgentConfig{BaseURL: ts.URL, Service: "ua", Addr: "h1:1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Register(ctx); err != nil {
		t.Fatalf("register: %v", err)
	}
	if got := reg.Routable("ua"); len(got) != 1 || got[0] != "h1:1" {
		t.Fatalf("Routable after register = %v", got)
	}

	// Second instance pends, then a boundary admits it.
	ag2, _ := NewAgent(AgentConfig{BaseURL: ts.URL, Service: "ua", Addr: "h2:1"})
	if err := ag2.Register(ctx); err != nil {
		t.Fatal(err)
	}
	if n := reg.Count("ua", StatePending); n != 1 {
		t.Fatalf("pending = %d, want 1", n)
	}
	reg.EpochBoundary()

	if err := ag.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := reg.Routable("ua"); len(got) != 1 || got[0] != "h2:1" {
		t.Fatalf("Routable after drain = %v, want [h2:1]", got)
	}
	if err := ag.Deregister(ctx); err != nil {
		t.Fatalf("deregister: %v", err)
	}
	if n := reg.Count("ua", StateDraining); n != 0 {
		t.Fatalf("draining endpoint survived deregister")
	}
}

func TestMembersEndpoint(t *testing.T) {
	reg := NewRegistry(Config{})
	reg.Register("ua", "h1:1")
	reg.Register("ia", "h1:2")
	ts := newFleetServer(t, reg)

	resp, err := http.Get(ts.URL + MembersPath)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Generation uint64     `json:"generation"`
		Members    []Endpoint `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Members) != 2 {
		t.Fatalf("members = %+v, want 2", body.Members)
	}
	if body.Generation != reg.Generation() {
		t.Fatalf("generation = %d, want %d", body.Generation, reg.Generation())
	}
}

func TestHeartbeatUnknownEndpointIs404(t *testing.T) {
	reg := NewRegistry(Config{})
	ts := newFleetServer(t, reg)
	ag, _ := NewAgent(AgentConfig{BaseURL: ts.URL, Service: "ua", Addr: "ghost:1"})
	code, err := ag.post(context.Background(), HeartbeatPath)
	if err == nil || code != http.StatusNotFound {
		t.Fatalf("heartbeat for unknown endpoint: code=%d err=%v, want 404", code, err)
	}
}

func TestAgentHeartbeatReRegistersAfterPrune(t *testing.T) {
	reg := NewRegistry(Config{})
	ts := newFleetServer(t, reg)
	ag, err := NewAgent(AgentConfig{
		BaseURL:  ts.URL,
		Service:  "ua",
		Addr:     "h1:1",
		Interval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ag.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer ag.Stop()

	// Simulate a registry restart losing the entry: the 404 heartbeat
	// must drive a re-register.
	reg.Deregister("ua", "h1:1")
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(reg.Routable("ua")) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("agent never re-registered after prune")
}

func TestServerRejectsBadBodies(t *testing.T) {
	reg := NewRegistry(Config{})
	ts := newFleetServer(t, reg)
	resp, err := http.Post(ts.URL+RegisterPath, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty body status = %d, want 400", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + RegisterPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET register status = %d, want 405", resp.StatusCode)
	}
}
