package fleet

import (
	"errors"
	"testing"

	"pprox/internal/autoscale"
)

// fakeDriver counts actuations and tracks a pair count.
type fakeDriver struct {
	pairs  int
	adds   int
	drains int
	err    error
}

func (d *fakeDriver) Pairs() int { return d.pairs }
func (d *fakeDriver) AddPair() error {
	if d.err != nil {
		return d.err
	}
	d.adds++
	d.pairs++
	return nil
}
func (d *fakeDriver) DrainPair() error {
	if d.err != nil {
		return d.err
	}
	d.drains++
	d.pairs--
	return nil
}

func testController() *autoscale.Controller {
	return &autoscale.Controller{
		PairCapacityRPS:   100,
		TargetUtilization: 1.0,
		Min:               1,
		Max:               4,
		Hysteresis:        0.25,
	}
}

func TestReconcilerScalesUpOneStepPerTick(t *testing.T) {
	drv := &fakeDriver{pairs: 1}
	sig := autoscale.Signals{RPS: 350, Occupancy: -1, Goodput: -1}
	rec, err := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals:    func() autoscale.Signals { return sig },
		Driver:     drv,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := rec.Tick()
	if d.Action != ActionUp || d.Desired != 4 {
		t.Fatalf("tick 1 = %+v, want scale-up toward 4", d)
	}
	if drv.pairs != 2 {
		t.Fatalf("pairs after one tick = %d, want 2 (one step)", drv.pairs)
	}
	rec.Tick()
	rec.Tick()
	if drv.pairs != 4 {
		t.Fatalf("pairs after three ticks = %d, want 4", drv.pairs)
	}
	if d := rec.Tick(); d.Action != ActionHold {
		t.Fatalf("at target, action = %v, want hold", d.Action)
	}
	if rec.Desired() != 4 {
		t.Fatalf("Desired = %d, want 4", rec.Desired())
	}
}

func TestReconcilerScalesDown(t *testing.T) {
	drv := &fakeDriver{pairs: 3}
	rec, _ := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals: func() autoscale.Signals {
			return autoscale.Signals{RPS: 50, Occupancy: -1, Goodput: -1}
		},
		Driver: drv,
	})
	if d := rec.Tick(); d.Action != ActionDown {
		t.Fatalf("action = %v, want scale-down", d.Action)
	}
	if drv.drains != 1 || drv.pairs != 2 {
		t.Fatalf("drains=%d pairs=%d, want 1 drain to 2 pairs", drv.drains, drv.pairs)
	}
}

func TestReconcilerUnknownSignalsHold(t *testing.T) {
	drv := &fakeDriver{pairs: 2}
	rec, _ := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals: func() autoscale.Signals {
			return autoscale.Signals{RPS: -1, Occupancy: -1, Goodput: -1}
		},
		Driver: drv,
	})
	if d := rec.Tick(); d.Action != ActionHold {
		t.Fatalf("unknown RPS produced action %v, want hold", d.Action)
	}
	if drv.adds != 0 || drv.drains != 0 {
		t.Fatalf("unknown signals actuated the driver")
	}
}

func TestReconcilerRecordsDriverError(t *testing.T) {
	drv := &fakeDriver{pairs: 1, err: errors.New("boom")}
	rec, _ := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals: func() autoscale.Signals {
			return autoscale.Signals{RPS: 350, Occupancy: -1, Goodput: -1}
		},
		Driver: drv,
		Keep:   2,
	})
	if d := rec.Tick(); d.Action != ActionError || d.Err == "" {
		t.Fatalf("driver error not recorded: %+v", d)
	}
	rec.Tick()
	rec.Tick()
	if got := rec.Decisions(); len(got) != 2 || got[1].Seq != 3 {
		t.Fatalf("decision ring = %+v, want last 2 of 3", got)
	}
}

func TestReconcilerHousekeepsRegistry(t *testing.T) {
	reg := NewRegistry(Config{})
	reg.Register("ua", "h1:1")
	reg.Register("ua", "h2:1") // pending, waiting for a boundary that never comes
	drv := &fakeDriver{pairs: 2}
	rec, _ := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals: func() autoscale.Signals {
			return autoscale.Signals{RPS: 150, Occupancy: -1, Goodput: -1}
		},
		Driver:   drv,
		Registry: reg,
	})
	rec.cfg.AdmitIdleAfter = 0 // white-box: make any pending endpoint overdue
	rec.Tick()
	if n := reg.Count("ua", StateActive); n != 2 {
		t.Fatalf("idle admission did not run: %d active, want 2", n)
	}
}

func TestBuildOverview(t *testing.T) {
	reg := NewRegistry(Config{})
	reg.Register("ua", "h1:1")
	drv := &fakeDriver{pairs: 1}
	rec, _ := NewReconciler(ReconcilerConfig{
		Controller: testController(),
		Signals: func() autoscale.Signals {
			return autoscale.Signals{RPS: 250, Occupancy: -1, Goodput: -1}
		},
		Driver:   drv,
		Registry: reg,
	})
	ov := BuildOverview(reg, rec, drv.Pairs())
	if ov.DesiredPairs != 1 {
		t.Fatalf("pre-tick DesiredPairs = %d, want current (1)", ov.DesiredPairs)
	}
	rec.Tick()
	ov = BuildOverview(reg, rec, drv.Pairs())
	if ov.CurrentPairs != 2 || ov.DesiredPairs != 3 {
		t.Fatalf("Overview = current %d desired %d, want 2/3", ov.CurrentPairs, ov.DesiredPairs)
	}
	if len(ov.Endpoints) != 1 || len(ov.Decisions) != 1 {
		t.Fatalf("Overview endpoints=%d decisions=%d, want 1/1", len(ov.Endpoints), len(ov.Decisions))
	}
}
