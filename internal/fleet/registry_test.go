package fleet

import (
	"testing"
	"time"
)

func testClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestRegisterFirstEndpointIsActive(t *testing.T) {
	r := NewRegistry(Config{})
	if st := r.Register("ua", "h1:1"); st != StateActive {
		t.Fatalf("first endpoint state = %v, want active", st)
	}
	if got := r.Routable("ua"); len(got) != 1 || got[0] != "h1:1" {
		t.Fatalf("Routable = %v, want [h1:1]", got)
	}
}

func TestRegisterSecondEndpointPendsUntilEpochBoundary(t *testing.T) {
	r := NewRegistry(Config{})
	r.Register("ua", "h1:1")
	gen := r.Generation()
	if st := r.Register("ua", "h2:1"); st != StatePending {
		t.Fatalf("second endpoint state = %v, want pending", st)
	}
	if got := r.Routable("ua"); len(got) != 1 {
		t.Fatalf("pending endpoint is routable: %v", got)
	}
	if r.Generation() != gen {
		t.Fatalf("pending registration moved the generation")
	}
	if n := r.EpochBoundary(); n != 1 {
		t.Fatalf("EpochBoundary admitted %d, want 1", n)
	}
	if got := r.Routable("ua"); len(got) != 2 {
		t.Fatalf("Routable after boundary = %v, want 2 endpoints", got)
	}
	if r.Generation() == gen {
		t.Fatalf("admission did not move the generation")
	}
	if n := r.EpochBoundary(); n != 0 {
		t.Fatalf("idempotent EpochBoundary admitted %d, want 0", n)
	}
}

func TestReRegisterKeepsStateAndRefreshesHeartbeat(t *testing.T) {
	now, advance := testClock(time.Unix(1000, 0))
	r := NewRegistry(Config{StaleAfter: 10 * time.Second, Now: now})
	r.Register("ua", "h1:1")
	advance(8 * time.Second)
	if st := r.Register("ua", "h1:1"); st != StateActive {
		t.Fatalf("re-register state = %v, want active", st)
	}
	advance(8 * time.Second) // 16s after first beat, 8s after refresh
	if got := r.Routable("ua"); len(got) != 1 {
		t.Fatalf("refreshed endpoint was pruned: %v", got)
	}
}

func TestDrainRemovesFromRoutableKeepsRegistered(t *testing.T) {
	r := NewRegistry(Config{})
	r.Register("ua", "h1:1")
	r.Register("ua", "h2:1")
	r.EpochBoundary()
	gen := r.Generation()
	if !r.BeginDrain("ua", "h1:1") {
		t.Fatalf("BeginDrain returned false for known endpoint")
	}
	if got := r.Routable("ua"); len(got) != 1 || got[0] != "h2:1" {
		t.Fatalf("Routable during drain = %v, want [h2:1]", got)
	}
	if r.Generation() == gen {
		t.Fatalf("drain did not move the generation")
	}
	if n := r.Count("ua", StateDraining); n != 1 {
		t.Fatalf("draining count = %d, want 1", n)
	}
	// Drain is one-way: re-register cannot re-admit.
	if st := r.Register("ua", "h1:1"); st != StateDraining {
		t.Fatalf("re-register of draining endpoint = %v, want draining", st)
	}
	r.EpochBoundary()
	if n := r.Count("ua", StateActive); n != 1 {
		t.Fatalf("epoch boundary re-admitted a draining endpoint")
	}
	if !r.Deregister("ua", "h1:1") {
		t.Fatalf("Deregister returned false")
	}
	if n := r.Count("ua", StateDraining); n != 0 {
		t.Fatalf("deregistered endpoint still counted")
	}
}

func TestDrainPendingEndpoint(t *testing.T) {
	r := NewRegistry(Config{})
	r.Register("ua", "h1:1")
	r.Register("ua", "h2:1") // pending
	r.BeginDrain("ua", "h2:1")
	if n := r.EpochBoundary(); n != 0 {
		t.Fatalf("EpochBoundary admitted a drained-while-pending endpoint")
	}
	if got := r.Routable("ua"); len(got) != 1 {
		t.Fatalf("Routable = %v, want only h1:1", got)
	}
}

func TestStalenessPruning(t *testing.T) {
	now, advance := testClock(time.Unix(1000, 0))
	r := NewRegistry(Config{StaleAfter: 5 * time.Second, Now: now})
	r.Register("ua", "h1:1")
	r.Register("ua", "h2:1")
	r.EpochBoundary()
	advance(3 * time.Second)
	r.Heartbeat("ua", "h2:1")
	advance(3 * time.Second) // h1 last beat 6s ago, h2 3s ago
	gen := r.Generation()
	if got := r.Routable("ua"); len(got) != 1 || got[0] != "h2:1" {
		t.Fatalf("Routable after staleness = %v, want [h2:1]", got)
	}
	if r.Generation() == gen {
		t.Fatalf("prune did not move the generation")
	}
	if s := r.Stats(); s.Prunes != 1 {
		t.Fatalf("prunes = %d, want 1", s.Prunes)
	}
	if r.Heartbeat("ua", "h1:1") {
		t.Fatalf("heartbeat for pruned endpoint returned true; agent would never re-register")
	}
}

func TestAdmitIdle(t *testing.T) {
	now, advance := testClock(time.Unix(1000, 0))
	r := NewRegistry(Config{Now: now})
	r.Register("ua", "h1:1")
	r.Register("ua", "h2:1") // pending
	if n := r.AdmitIdle(2 * time.Second); n != 0 {
		t.Fatalf("AdmitIdle admitted a fresh registration")
	}
	advance(3 * time.Second)
	if n := r.AdmitIdle(2 * time.Second); n != 1 {
		t.Fatalf("AdmitIdle = %d, want 1 after waiting past the cutoff", n)
	}
}

func TestRoutableRegistrationOrder(t *testing.T) {
	r := NewRegistry(Config{})
	r.Register("ua", "h1:1")
	r.Register("ua", "h2:1")
	r.Register("ua", "h3:1")
	r.EpochBoundary()
	got := r.Routable("ua")
	want := []string{"h1:1", "h2:1", "h3:1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Routable = %v, want %v", got, want)
		}
	}
}

func TestMembershipSorted(t *testing.T) {
	r := NewRegistry(Config{})
	r.Register("ua", "h2:1")
	r.Register("ia", "h1:2")
	r.Register("ua", "h1:1")
	m := r.Membership()
	if len(m) != 3 {
		t.Fatalf("Membership = %d entries, want 3", len(m))
	}
	if m[0].Service != "ia" || m[1].Addr != "h1:1" || m[2].Addr != "h2:1" {
		t.Fatalf("Membership order wrong: %+v", m)
	}
	if m[0].State != "active" || m[1].State != "pending" || m[2].State != "active" {
		t.Fatalf("Membership states wrong: %+v", m)
	}
}
