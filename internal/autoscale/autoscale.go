// Package autoscale implements the elastic scaling policy the paper calls
// for (§5): "The two proxy layers need, therefore, to elastically scale up
// and down based on observed request load, dynamically implementing a
// compromise between throughput and latency." Scaling up adds capacity;
// scaling down matters just as much, because over-provisioned layers
// starve their shuffle buffers and pay timer-bound latency (§8.1.2:
// "latencies due to request shuffling may become too high … the number of
// proxy instances should ideally be elastically scaled down").
package autoscale

import (
	"math"
	"sync"
	"time"
)

// Controller computes the desired number of UA+IA instance pairs from the
// observed request rate.
type Controller struct {
	// PairCapacityRPS is the load one instance pair sustains before
	// saturating — 250 RPS in the paper's evaluation (Fig. 8).
	PairCapacityRPS float64
	// TargetUtilization positions steady-state load below the knee
	// (e.g. 0.8 → scale up at 200 RPS per pair).
	TargetUtilization float64
	// Min and Max bound the pair count.
	Min, Max int
	// Hysteresis avoids flapping: scale down only when the desired
	// count is below current by more than this fraction of a pair's
	// capacity.
	Hysteresis float64
	// OccupancyFloor arms the occupancy-driven scale-down override used
	// by DesiredLive: when the mean released shuffle batch falls below
	// this fraction of S, starved buffers are paying timer-bound epoch
	// fills (§8.1.2, Fig. 8) and the hysteresis band no longer protects
	// the current count. Zero disables the override.
	OccupancyFloor float64
}

// DefaultController returns the paper-calibrated policy.
func DefaultController() *Controller {
	return &Controller{
		PairCapacityRPS:   250,
		TargetUtilization: 0.8,
		Min:               1,
		Max:               16,
		Hysteresis:        0.25,
		OccupancyFloor:    0.5,
	}
}

// Desired returns the instance-pair count for the observed rate, given the
// current count.
func (c *Controller) Desired(observedRPS float64, current int) int {
	current = c.clamp(current)
	perPair := c.PairCapacityRPS * c.TargetUtilization
	raw := c.clamp(int(rawPairs(observedRPS, perPair)))
	if raw >= current {
		return raw // scale up immediately: saturation hurts now
	}
	// Scale down only past the hysteresis band.
	margin := float64(current)*perPair - c.Hysteresis*c.PairCapacityRPS
	if observedRPS < margin && raw < current {
		return raw
	}
	return current
}

// rawPairs is the unclamped pair demand for a rate.
func rawPairs(observedRPS, perPair float64) float64 {
	return math.Ceil(observedRPS / perPair)
}

// clamp bounds a pair count to [Min, Max].
func (c *Controller) clamp(n int) int {
	if n < c.Min {
		n = c.Min
	}
	if n > c.Max {
		n = c.Max
	}
	return n
}

// RateEstimator measures the request arrival rate with an exponentially
// weighted moving average over fixed ticks, the signal a deployment's
// balancer feeds the controller.
type RateEstimator struct {
	mu       sync.Mutex
	halfLife time.Duration
	rate     float64 // RPS
	count    int
	last     time.Time
	started  bool
}

// NewRateEstimator creates an estimator with the given smoothing
// half-life.
func NewRateEstimator(halfLife time.Duration) *RateEstimator {
	if halfLife <= 0 {
		halfLife = 10 * time.Second
	}
	return &RateEstimator{halfLife: halfLife}
}

// Observe records one arrival at time now.
func (r *RateEstimator) Observe(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		r.started = true
		r.last = now
	}
	r.count++
	r.fold(now)
}

// Rate returns the smoothed arrival rate in RPS as of now.
func (r *RateEstimator) Rate(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return 0
	}
	r.fold(now)
	return r.rate
}

// fold merges pending counts into the EWMA once at least a tick of wall
// time has passed.
func (r *RateEstimator) fold(now time.Time) {
	const tick = time.Second
	elapsed := now.Sub(r.last)
	if elapsed < tick {
		return
	}
	instRate := float64(r.count) / elapsed.Seconds()
	alpha := 1 - math.Exp(-float64(elapsed)/float64(r.halfLife)*math.Ln2)
	if r.rate == 0 {
		r.rate = instRate
	} else {
		r.rate += alpha * (instRate - r.rate)
	}
	r.count = 0
	r.last = now
}
