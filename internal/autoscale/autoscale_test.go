package autoscale

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDesiredScalesUpWithLoad(t *testing.T) {
	c := DefaultController()
	cases := []struct {
		rps     float64
		current int
		want    int
	}{
		{50, 1, 1},
		{250, 1, 2},    // 250 > 200 (one pair at 0.8 target) → 2 pairs
		{500, 1, 3},    // 500/200 → 3 pairs
		{1000, 1, 5},   // 1000/200 → 5 pairs
		{10000, 1, 16}, // clamped at Max
		{0, 1, 1},      // clamped at Min
	}
	for _, tc := range cases {
		if got := c.Desired(tc.rps, tc.current); got != tc.want {
			t.Errorf("Desired(%.0f, %d) = %d, want %d", tc.rps, tc.current, got, tc.want)
		}
	}
}

func TestDesiredScaleDownHysteresis(t *testing.T) {
	c := DefaultController()
	// 4 pairs handle 800 RPS at target. Load drops slightly below the
	// scale-down margin (800 − 62.5): must hold at 4.
	if got := c.Desired(760, 4); got != 4 {
		t.Errorf("Desired(760, 4) = %d, want 4 (hysteresis)", got)
	}
	// Load drops far below: scale down.
	if got := c.Desired(150, 4); got != 1 {
		t.Errorf("Desired(150, 4) = %d, want 1", got)
	}
}

func TestDesiredNeverOutOfBoundsProperty(t *testing.T) {
	c := DefaultController()
	f := func(rpsRaw uint16, curRaw uint8) bool {
		got := c.Desired(float64(rpsRaw), int(curRaw))
		return got >= c.Min && got <= c.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDesiredMonotoneInLoadProperty(t *testing.T) {
	c := DefaultController()
	f := func(aRaw, bRaw uint16, curRaw uint8) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		cur := int(curRaw%8) + 1
		return c.Desired(a, cur) <= c.Desired(b, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateEstimatorTracksSteadyRate(t *testing.T) {
	r := NewRateEstimator(2 * time.Second)
	now := time.Unix(1000, 0)
	// 100 RPS for 30 seconds.
	for i := 0; i < 3000; i++ {
		now = now.Add(10 * time.Millisecond)
		r.Observe(now)
	}
	rate := r.Rate(now)
	if rate < 80 || rate > 120 {
		t.Errorf("estimated rate %.1f, want ≈ 100", rate)
	}
}

func TestRateEstimatorAdaptsToChange(t *testing.T) {
	r := NewRateEstimator(2 * time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 2000; i++ { // 100 RPS for 20 s
		now = now.Add(10 * time.Millisecond)
		r.Observe(now)
	}
	for i := 0; i < 4000; i++ { // 400 RPS for 10 s
		now = now.Add(2500 * time.Microsecond)
		r.Observe(now)
	}
	rate := r.Rate(now)
	if rate < 250 {
		t.Errorf("estimator stuck at %.1f after load quadrupled", rate)
	}
}

func TestRateEstimatorEmpty(t *testing.T) {
	r := NewRateEstimator(time.Second)
	if got := r.Rate(time.Now()); got != 0 {
		t.Errorf("rate with no observations = %v", got)
	}
}

func TestDesiredHysteresisExactBoundary(t *testing.T) {
	c := DefaultController()
	// 4 pairs at 200 RPS/pair target → margin = 800 − 0.25×250 = 737.5.
	// Exactly at the margin the comparison is strict: hold.
	if got := c.Desired(737.5, 4); got != 4 {
		t.Errorf("Desired(737.5, 4) = %d, want 4 (boundary is exclusive)", got)
	}
	// One epsilon below the margin crosses it — but raw demand for
	// 737.49 RPS is ceil(737.49/200) = 4, so the count still holds:
	// the hysteresis band can only release down to raw demand.
	if got := c.Desired(737.49, 4); got != 4 {
		t.Errorf("Desired(737.49, 4) = %d, want 4 (raw demand still 4)", got)
	}
	// Below both the margin and a raw-demand step: scale down.
	if got := c.Desired(590, 4); got != 3 {
		t.Errorf("Desired(590, 4) = %d, want 3", got)
	}
}

func TestDesiredClampsCurrentOutOfBounds(t *testing.T) {
	c := DefaultController()
	// A current count outside [Min, Max] (bad caller state) is clamped
	// before the policy runs.
	if got := c.Desired(100, 0); got != 1 {
		t.Errorf("Desired(100, 0) = %d, want Min", got)
	}
	if got := c.Desired(100, 100); got < c.Min || got > c.Max {
		t.Errorf("Desired(100, 100) = %d, out of [%d, %d]", got, c.Min, c.Max)
	}
	if got := c.Desired(1e9, 3); got != c.Max {
		t.Errorf("Desired(1e9, 3) = %d, want Max", got)
	}
}

func TestDesiredFlapSequenceIsStable(t *testing.T) {
	// The hysteresis band only holds a count when it is wider than one
	// raw-demand step, i.e. Hysteresis×PairCapacityRPS > perPair. Use
	// such a controller: perPair = 50, band offset = 75.
	c := &Controller{
		PairCapacityRPS:   100,
		TargetUtilization: 0.5,
		Min:               1,
		Max:               8,
		Hysteresis:        0.75,
	}
	// Load oscillating around one pair's scale-up point (50 RPS) must
	// not flap the count: up to 2 on the high sample, then the band
	// (scale down only below 2×50 − 75 = 25 RPS) holds 2 on the low.
	cur := 1
	seq := []float64{55, 45, 55, 45, 55, 45}
	var counts []int
	for _, rps := range seq {
		cur = c.Desired(rps, cur)
		counts = append(counts, cur)
	}
	for i, n := range counts {
		if i > 0 && n != 2 {
			t.Fatalf("flap: counts = %v, want steady 2 after first step", counts)
		}
	}
	// A real drop below the band does scale down.
	if cur = c.Desired(20, cur); cur != 1 {
		t.Fatalf("Desired(20, 2) = %d, want 1", cur)
	}
}

func TestDesiredDefaultControllerStepsDownWholeBand(t *testing.T) {
	// With the paper defaults the band offset (62.5) is narrower than a
	// pair's target load (200), so any load whose raw demand is below
	// the current count scales down in one step — document that.
	c := DefaultController()
	if got := c.Desired(190, 2); got != 1 {
		t.Errorf("Desired(190, 2) = %d, want 1 (band narrower than a step)", got)
	}
}
