package autoscale

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDesiredScalesUpWithLoad(t *testing.T) {
	c := DefaultController()
	cases := []struct {
		rps     float64
		current int
		want    int
	}{
		{50, 1, 1},
		{250, 1, 2},    // 250 > 200 (one pair at 0.8 target) → 2 pairs
		{500, 1, 3},    // 500/200 → 3 pairs
		{1000, 1, 5},   // 1000/200 → 5 pairs
		{10000, 1, 16}, // clamped at Max
		{0, 1, 1},      // clamped at Min
	}
	for _, tc := range cases {
		if got := c.Desired(tc.rps, tc.current); got != tc.want {
			t.Errorf("Desired(%.0f, %d) = %d, want %d", tc.rps, tc.current, got, tc.want)
		}
	}
}

func TestDesiredScaleDownHysteresis(t *testing.T) {
	c := DefaultController()
	// 4 pairs handle 800 RPS at target. Load drops slightly below the
	// scale-down margin (800 − 62.5): must hold at 4.
	if got := c.Desired(760, 4); got != 4 {
		t.Errorf("Desired(760, 4) = %d, want 4 (hysteresis)", got)
	}
	// Load drops far below: scale down.
	if got := c.Desired(150, 4); got != 1 {
		t.Errorf("Desired(150, 4) = %d, want 1", got)
	}
}

func TestDesiredNeverOutOfBoundsProperty(t *testing.T) {
	c := DefaultController()
	f := func(rpsRaw uint16, curRaw uint8) bool {
		got := c.Desired(float64(rpsRaw), int(curRaw))
		return got >= c.Min && got <= c.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDesiredMonotoneInLoadProperty(t *testing.T) {
	c := DefaultController()
	f := func(aRaw, bRaw uint16, curRaw uint8) bool {
		a, b := float64(aRaw), float64(bRaw)
		if a > b {
			a, b = b, a
		}
		cur := int(curRaw%8) + 1
		return c.Desired(a, cur) <= c.Desired(b, cur)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateEstimatorTracksSteadyRate(t *testing.T) {
	r := NewRateEstimator(2 * time.Second)
	now := time.Unix(1000, 0)
	// 100 RPS for 30 seconds.
	for i := 0; i < 3000; i++ {
		now = now.Add(10 * time.Millisecond)
		r.Observe(now)
	}
	rate := r.Rate(now)
	if rate < 80 || rate > 120 {
		t.Errorf("estimated rate %.1f, want ≈ 100", rate)
	}
}

func TestRateEstimatorAdaptsToChange(t *testing.T) {
	r := NewRateEstimator(2 * time.Second)
	now := time.Unix(1000, 0)
	for i := 0; i < 2000; i++ { // 100 RPS for 20 s
		now = now.Add(10 * time.Millisecond)
		r.Observe(now)
	}
	for i := 0; i < 4000; i++ { // 400 RPS for 10 s
		now = now.Add(2500 * time.Microsecond)
		r.Observe(now)
	}
	rate := r.Rate(now)
	if rate < 250 {
		t.Errorf("estimator stuck at %.1f after load quadrupled", rate)
	}
}

func TestRateEstimatorEmpty(t *testing.T) {
	r := NewRateEstimator(time.Second)
	if got := r.Rate(time.Now()); got != 0 {
		t.Errorf("rate with no observations = %v", got)
	}
}
