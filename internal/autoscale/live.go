package autoscale

import (
	"strings"
	"sync"
	"time"

	"pprox/internal/metrics"
)

// Signals are the live inputs to one scaling decision, read from the
// surfaces the deployment already exports rather than from any new
// instrumentation: the request rate and shuffle occupancy come from the
// /metrics registry, the fleet goodput from the telemetry collector's
// /fleet rollup. Negative values mean "unknown" (the source has not
// observed enough yet); the reconciler skips or degrades gracefully.
type Signals struct {
	// RPS is the fleet-wide request arrival rate at the UA layer.
	RPS float64
	// Occupancy is the mean released shuffle-batch size over the sample
	// window as a fraction of S: 1.0 means every epoch filled before the
	// timer, low values mean starved buffers paying timer-bound fills
	// (the paper's Fig. 8 scale-down argument).
	Occupancy float64
	// Goodput is the fleet goodput in RPS as the telemetry collector
	// rolls it up, an end-to-end cross-check on the registry-local RPS.
	Goodput float64
}

// SignalSourceConfig wires a SignalSource to its inputs.
type SignalSourceConfig struct {
	// Snapshot samples the metrics registry (Registry.Snapshot).
	Snapshot func() map[string]float64
	// ShuffleSize is S, the denominator of the occupancy fraction.
	// Values ≤ 1 leave Occupancy unknown.
	ShuffleSize int
	// Goodput, when set, reads the fleet goodput rollup (telemetry
	// collector). Nil leaves Goodput unknown.
	Goodput func() float64
}

// SignalSource derives Signals from successive registry snapshots: RPS
// is the UA served-counter delta over the wall-clock window between
// samples, occupancy the mean released batch size over the same window.
// It is the live-signal adapter between the exported instruments and the
// Controller.
type SignalSource struct {
	cfg SignalSourceConfig

	mu         sync.Mutex
	started    bool
	lastAt     time.Time
	lastServed float64
	lastBSum   float64
	lastBCount float64
}

// NewSignalSource builds a source. Snapshot is required.
func NewSignalSource(cfg SignalSourceConfig) *SignalSource {
	return &SignalSource{cfg: cfg}
}

// Sample reads one Signals observation at time now. The first call (and
// any call with no elapsed wall time) returns unknown RPS and occupancy:
// both are window deltas and need two samples.
func (s *SignalSource) Sample(now time.Time) Signals {
	sig := Signals{RPS: -1, Occupancy: -1, Goodput: -1}
	if s.cfg.Goodput != nil {
		sig.Goodput = s.cfg.Goodput()
	}
	if s.cfg.Snapshot == nil {
		return sig
	}
	var served, bsum, bcount float64
	for series, v := range s.cfg.Snapshot() {
		// Cheap name prefilter before ParseSeries allocates a label map.
		name, _, _ := strings.Cut(series, "{")
		switch name {
		case "pprox_proxy_requests_served_total",
			"pprox_proxy_shuffle_batch_size_sum",
			"pprox_proxy_shuffle_batch_size_count":
		default:
			continue
		}
		_, labels := metrics.ParseSeries(series)
		if labels["layer"] != "ua" {
			continue
		}
		switch name {
		case "pprox_proxy_requests_served_total":
			served += v
		case "pprox_proxy_shuffle_batch_size_sum":
			bsum += v
		case "pprox_proxy_shuffle_batch_size_count":
			bcount += v
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		elapsed := now.Sub(s.lastAt).Seconds()
		if elapsed > 0 {
			d := served - s.lastServed
			if d < 0 {
				d = 0 // registry restarted under us
			}
			sig.RPS = d / elapsed
		}
		if s.cfg.ShuffleSize > 1 {
			dc := bcount - s.lastBCount
			ds := bsum - s.lastBSum
			if dc > 0 && ds >= 0 {
				sig.Occupancy = ds / dc / float64(s.cfg.ShuffleSize)
			}
		}
	}
	s.started = true
	s.lastAt = now
	s.lastServed = served
	s.lastBSum = bsum
	s.lastBCount = bcount
	return sig
}

// DesiredLive is Desired driven by the full live-signal set. The request
// rate drives the base decision exactly like Desired; additionally, when
// the occupancy signal shows starved shuffle buffers (mean released
// batch below OccupancyFloor×S) while the rate alone sits inside the
// hysteresis band, the controller scales down anyway — the paper's
// Fig. 8 argument that over-provisioned layers pay timer-bound epoch
// fills, so latency (not just cost) argues for fewer pairs. Unknown
// signals (negative) degrade to the rate-only policy; an unknown rate
// makes no decision at all.
func (c *Controller) DesiredLive(sig Signals, current int) int {
	if sig.RPS < 0 {
		if current < c.Min {
			return c.Min
		}
		if current > c.Max {
			return c.Max
		}
		return current
	}
	base := c.Desired(sig.RPS, current)
	if base != current || c.OccupancyFloor <= 0 {
		return base
	}
	if sig.Occupancy < 0 || sig.Occupancy >= c.OccupancyFloor {
		return base
	}
	// Starved buffers: bypass the hysteresis band, but never the raw
	// demand — capacity below ceil(RPS/perPair) would saturate.
	raw := c.clamp(int(rawPairs(sig.RPS, c.PairCapacityRPS*c.TargetUtilization)))
	if raw < base {
		return raw
	}
	return base
}
