package autoscale

import (
	"testing"
	"time"
)

func snapshotAt(served, bsum, bcount float64) func() map[string]float64 {
	return func() map[string]float64 {
		return map[string]float64{
			`pprox_proxy_requests_served_total{layer="ua",node="ua-0"}`:    served,
			`pprox_proxy_shuffle_batch_size_sum{layer="ua",node="ua-0"}`:   bsum,
			`pprox_proxy_shuffle_batch_size_count{layer="ua",node="ua-0"}`: bcount,
			// IA series must be ignored: only the UA layer sees client
			// arrivals.
			`pprox_proxy_requests_served_total{layer="ia",node="ia-0"}`:  served * 10,
			`pprox_proxy_shuffle_batch_size_sum{layer="ia",node="ia-0"}`: bsum * 10,
		}
	}
}

func TestSignalSourceFirstSampleUnknown(t *testing.T) {
	s := NewSignalSource(SignalSourceConfig{
		Snapshot:    snapshotAt(100, 0, 0),
		ShuffleSize: 8,
	})
	sig := s.Sample(time.Unix(1000, 0))
	if sig.RPS >= 0 || sig.Occupancy >= 0 || sig.Goodput >= 0 {
		t.Fatalf("first sample = %+v, want all unknown", sig)
	}
}

func TestSignalSourceComputesWindowDeltas(t *testing.T) {
	var served, bsum, bcount float64 = 100, 80, 10
	s := NewSignalSource(SignalSourceConfig{
		Snapshot:    func() map[string]float64 { return snapshotAt(served, bsum, bcount)() },
		ShuffleSize: 8,
		Goodput:     func() float64 { return 42 },
	})
	now := time.Unix(1000, 0)
	s.Sample(now)

	// 200 more requests over 2s → 100 RPS; 5 more epochs releasing 6
	// messages each → occupancy 6/8.
	served, bsum, bcount = 300, 110, 15
	now = now.Add(2 * time.Second)
	sig := s.Sample(now)
	if sig.RPS != 100 {
		t.Errorf("RPS = %v, want 100", sig.RPS)
	}
	if sig.Occupancy != 0.75 {
		t.Errorf("Occupancy = %v, want 0.75", sig.Occupancy)
	}
	if sig.Goodput != 42 {
		t.Errorf("Goodput = %v, want 42", sig.Goodput)
	}

	// No epochs in the next window: occupancy unknown again, RPS zero.
	now = now.Add(2 * time.Second)
	sig = s.Sample(now)
	if sig.RPS != 0 || sig.Occupancy >= 0 {
		t.Errorf("idle window = %+v, want RPS 0 and unknown occupancy", sig)
	}
}

func TestSignalSourceCounterResetClampsToZero(t *testing.T) {
	served := 1000.0
	s := NewSignalSource(SignalSourceConfig{
		Snapshot: func() map[string]float64 {
			return map[string]float64{
				`pprox_proxy_requests_served_total{layer="ua",node="ua-0"}`: served,
			}
		},
		ShuffleSize: 8,
	})
	now := time.Unix(1000, 0)
	s.Sample(now)
	served = 5 // registry restarted
	sig := s.Sample(now.Add(time.Second))
	if sig.RPS != 0 {
		t.Errorf("RPS after counter reset = %v, want 0", sig.RPS)
	}
}

func TestDesiredLiveUnknownRPSHolds(t *testing.T) {
	c := DefaultController()
	if got := c.DesiredLive(Signals{RPS: -1, Occupancy: 0.1, Goodput: -1}, 3); got != 3 {
		t.Errorf("DesiredLive with unknown RPS = %d, want hold at 3", got)
	}
	if got := c.DesiredLive(Signals{RPS: -1}, 0); got != c.Min {
		t.Errorf("DesiredLive clamps unknown-RPS hold to Min: got %d", got)
	}
}

func TestDesiredLiveOccupancyOverridesHysteresis(t *testing.T) {
	// A controller whose hysteresis band is wide enough to hold counts
	// the rate alone would keep — the occupancy floor must break the tie.
	c := &Controller{
		PairCapacityRPS:   100,
		TargetUtilization: 0.5,
		Min:               1,
		Max:               8,
		Hysteresis:        0.75,
		OccupancyFloor:    0.5,
	}
	// 45 RPS at 2 pairs: rate-only policy holds (45 ≥ 25 margin).
	base := Signals{RPS: 45, Occupancy: -1, Goodput: -1}
	if got := c.DesiredLive(base, 2); got != 2 {
		t.Fatalf("rate-only hold = %d, want 2", got)
	}
	// Same rate but starved buffers (mean batch 30%% of S): scale down
	// to raw demand.
	starved := Signals{RPS: 45, Occupancy: 0.3, Goodput: -1}
	if got := c.DesiredLive(starved, 2); got != 1 {
		t.Fatalf("starved-buffer override = %d, want 1", got)
	}
	// Healthy occupancy: no override.
	healthy := Signals{RPS: 45, Occupancy: 0.9, Goodput: -1}
	if got := c.DesiredLive(healthy, 2); got != 2 {
		t.Fatalf("healthy occupancy = %d, want hold at 2", got)
	}
	// The override never cuts below raw demand: 95 RPS needs 2 pairs.
	loaded := Signals{RPS: 95, Occupancy: 0.3, Goodput: -1}
	if got := c.DesiredLive(loaded, 2); got != 2 {
		t.Fatalf("override below raw demand = %d, want 2", got)
	}
}

func TestDesiredLiveDisabledFloor(t *testing.T) {
	c := &Controller{
		PairCapacityRPS:   100,
		TargetUtilization: 0.5,
		Min:               1,
		Max:               8,
		Hysteresis:        0.75,
	}
	sig := Signals{RPS: 45, Occupancy: 0.1, Goodput: -1}
	if got := c.DesiredLive(sig, 2); got != 2 {
		t.Errorf("zero OccupancyFloor still overrode: got %d, want 2", got)
	}
}
