package audit

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pprox/internal/metrics"
)

// clock is a settable fake clock safe for concurrent reads.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock {
	return &clock{t: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)}
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestAuditor(c *clock, extra ...func(*Config)) *Auditor {
	cfg := Config{TargetS: 8, Now: c.Now}
	for _, fn := range extra {
		fn(&cfg)
	}
	return New(cfg)
}

func TestFullEpochsStayOK(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	for i := 0; i < 50; i++ {
		a.ObserveEpoch("ua-0", 8)
		c.Advance(time.Second)
	}
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after fully occupied epochs, want ok", got)
	}
	epochs, under, violations, warns := a.Stats()
	if epochs != 50 || under != 0 || violations != 0 || warns != 0 {
		t.Fatalf("stats = %d/%d/%d/%d, want 50/0/0/0", epochs, under, violations, warns)
	}
}

func TestBurnRateWarnThenViolate(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)

	// 300 full epochs, all older than the 5m window but inside 1h.
	for i := 0; i < 300; i++ {
		a.ObserveEpoch("ua-0", 8)
	}
	c.Advance(10 * time.Minute)

	// One under-filled epoch: the 5m window burns (1/1 under-filled,
	// burn 100×) but the 1h window holds (1/301 ≈ 0.33% < 1% budget).
	a.ObserveEpoch("ua-0", 3)
	if got := a.State(); got != StateWarn {
		t.Fatalf("state = %v after short-window burn only, want warn", got)
	}

	// Enough under-filled epochs to burn the 1h budget too → violated.
	for i := 0; i < 6; i++ {
		a.ObserveEpoch("ua-0", 2)
	}
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v after every window burning, want violated", got)
	}
	_, _, violations, warns := a.Stats()
	if violations != 1 || warns != 1 {
		t.Fatalf("transition counters = %d violations, %d warns, want 1/1", violations, warns)
	}
}

func TestRecoveryAsWindowsDrain(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.ObserveEpoch("ua-0", 1) // singleton epoch burns every window at once
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v, want violated", got)
	}
	c.Advance(2 * time.Hour) // observation ages out of the longest window
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after windows drained, want ok", got)
	}
}

func TestTransitionHookAndLogger(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	var buf bytes.Buffer
	var mu sync.Mutex
	a.SetLogger(slog.New(slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil)))
	got := make(chan [2]State, 4)
	a.OnTransition = func(from, to State, reason string) {
		if reason == "" {
			t.Error("transition fired with empty reason")
		}
		got <- [2]State{from, to}
	}
	a.ObserveEpoch("ua-0", 1)
	select {
	case tr := <-got:
		if tr != [2]State{StateOK, StateViolated} {
			t.Fatalf("transition = %v → %v, want ok → violated", tr[0], tr[1])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("OnTransition never fired")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		out := buf.String()
		mu.Unlock()
		if strings.Contains(out, "privacy SLO state transition") && strings.Contains(out, "violated") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("transition not logged: %s", out)
		}
		time.Sleep(time.Millisecond)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestWorstEpochWatermarks(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.ObserveEpoch("ua-0", 8)
	a.ObserveEpoch("ua-0", 3) // lifetime worst
	a.ObserveEpoch("ua-1", 8)
	r := a.Report()
	if r.WorstEpochBatch != 3 {
		t.Errorf("lifetime watermark = %d, want 3", r.WorstEpochBatch)
	}
	if r.EffectiveAnonymity != 3 {
		t.Errorf("effective anonymity = %d, want 3", r.EffectiveAnonymity)
	}
	// The windowed watermark recovers once the bad epoch ages out; the
	// lifetime watermark does not.
	c.Advance(2 * time.Hour)
	a.ObserveEpoch("ua-0", 8)
	r = a.Report()
	if r.WorstEpochBatch != 3 {
		t.Errorf("lifetime watermark forgot: %d", r.WorstEpochBatch)
	}
	if r.EffectiveAnonymity != 8 {
		t.Errorf("windowed effective anonymity = %d, want 8", r.EffectiveAnonymity)
	}
}

func TestBreachViolatesUntilRotation(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.ObserveEpoch("ua-0", 8)
	a.ObserveBreach("ua")
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v after breach, want violated", got)
	}
	r := a.Report()
	if len(r.Breached) != 1 || r.Breached[0] != "ua" {
		t.Fatalf("report breached = %v, want [ua]", r.Breached)
	}
	a.ObserveRotation("ua")
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after rotation remediated the breach, want ok", got)
	}
	r = a.Report()
	if len(r.Breached) != 0 {
		t.Fatalf("breached layers survived rotation: %v", r.Breached)
	}
	if age, ok := r.KeyAges["ua"]; !ok || age != 0 {
		t.Fatalf("key age after rotation = %v (present %v), want 0", age, ok)
	}
}

func TestChecksWarnAndViolate(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	breakerOpen, compromised := false, false
	a.AddCheck("breaker ua→ia open", func() bool { return breakerOpen })
	a.AddViolationCheck("enclave compromised", func() bool { return compromised })

	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v with quiet checks, want ok", got)
	}
	breakerOpen = true
	if got := a.State(); got != StateWarn {
		t.Fatalf("state = %v with warn check firing, want warn", got)
	}
	r := a.Report()
	if len(r.DegradedChecks) != 1 || r.DegradedChecks[0] != "breaker ua→ia open" {
		t.Fatalf("degraded checks = %v", r.DegradedChecks)
	}
	compromised = true
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v with violation check firing, want violated", got)
	}
	breakerOpen, compromised = false, false
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after checks cleared, want ok", got)
	}
}

func TestStaleKeyWarns(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c, func(cfg *Config) { cfg.MaxKeyAge = time.Hour })
	a.SetKeyBaseline("ua")
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v with fresh key, want ok", got)
	}
	c.Advance(2 * time.Hour)
	if got := a.State(); got != StateWarn {
		t.Fatalf("state = %v with stale key, want warn", got)
	}
	a.ObserveRotation("ua")
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after rotation, want ok", got)
	}
}

func TestReportShapeAndBoundedHistory(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	for i := 0; i < maxRecentEpochs+44; i++ {
		a.ObserveEpoch("ua-0", 8)
	}
	a.ObserveEpoch("ia-0", 8)
	r := a.Report()
	if len(r.Nodes) != 2 || r.Nodes[0].Node != "ia-0" || r.Nodes[1].Node != "ua-0" {
		t.Fatalf("nodes = %+v, want sorted [ia-0 ua-0]", r.Nodes)
	}
	ua := r.Nodes[1]
	if len(ua.RecentEpochs) != maxRecentEpochs {
		t.Fatalf("history len = %d, want bounded at %d", len(ua.RecentEpochs), maxRecentEpochs)
	}
	if last := ua.RecentEpochs[len(ua.RecentEpochs)-1]; last.Seq != ua.Epochs || last.Batch != 8 || last.Underfilled {
		t.Fatalf("last epoch record = %+v", last)
	}
	if _, err := json.Marshal(r); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}

func TestHandler(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.ObserveEpoch("ua-0", 4)
	h := a.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", PrivacyPath, nil))
	if rec.Code != 200 {
		t.Fatalf("GET /privacy = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var r Report
	if err := json.Unmarshal(rec.Body.Bytes(), &r); err != nil {
		t.Fatalf("payload not JSON: %v", err)
	}
	if r.State != "violated" || r.TargetS != 8 || r.WorstEpochBatch != 4 {
		t.Fatalf("report = %+v", r)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", PrivacyPath, nil))
	if rec.Code != 405 {
		t.Fatalf("POST /privacy = %d, want 405", rec.Code)
	}
}

func TestRegisterMetrics(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.SetKeyBaseline("ua")
	reg := metrics.NewRegistry()
	a.RegisterMetrics(reg)

	a.ObserveEpoch("ua-0", 8)
	a.ObserveEpoch("ua-0", 2)
	snap := reg.Snapshot()
	want := map[string]float64{
		"pprox_audit_slo_state":                2, // singleton window burn → violated
		"pprox_audit_epochs_total":             2,
		"pprox_audit_underfilled_epochs_total": 1,
		"pprox_audit_violations_total":         1,
		"pprox_audit_effective_anonymity_set":  2,
		"pprox_audit_worst_epoch_batch":        2,
		"pprox_audit_breached_layers":          0,
	}
	for name, v := range want {
		got, ok := snap[name]
		if !ok {
			t.Errorf("metric %s missing from snapshot %v", name, snap)
			continue
		}
		if got != v {
			t.Errorf("%s = %g, want %g", name, got, v)
		}
	}
	if burn := snap[`pprox_audit_burn_rate{window="5m"}`]; burn < 1 {
		t.Errorf("5m burn rate = %g, want >= 1", burn)
	}
	if _, ok := snap[`pprox_audit_key_age_seconds{layer="ua"}`]; !ok {
		t.Errorf("key age series missing: %v", snap)
	}
}

func TestConcurrentObservation(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	a.AddCheck("noop", func() bool { return false })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					a.ObserveEpoch("node", 8)
				case 1:
					a.State()
				case 2:
					a.Report()
				default:
					if g == 0 {
						a.ObserveRotation("ua")
					} else {
						a.Stats()
					}
				}
			}
		}()
	}
	wg.Wait()
}
