package audit

import (
	"testing"
)

// fakeCache is a controllable CacheState.
type fakeCache struct {
	gen     uint64
	entries int
	expired int
}

func (f *fakeCache) Generation() uint64   { return f.gen }
func (f *fakeCache) Len() int             { return f.entries }
func (f *fakeCache) ExpiredResident() int { return f.expired }

func (f *fakeCache) flush() {
	f.gen++
	f.entries = 0
	f.expired = 0
}

func TestCacheCheckExpiredEntriesWarn(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	fc := &fakeCache{entries: 3}
	a.RegisterCacheCheck("ia-0", fc)

	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v with fresh cache, want ok", got)
	}
	fc.expired = 2
	if got := a.State(); got != StateWarn {
		t.Fatalf("state = %v with expired entries resident, want warn", got)
	}
	fc.expired = 0 // epoch sweep ran
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after sweep, want ok", got)
	}
}

func TestCacheCheckBreachRequiresFlush(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	fc := &fakeCache{entries: 5}
	a.RegisterCacheCheck("ia-0", fc)

	// Breach: violated, as always, until the rotation completes…
	a.ObserveBreach("UA")
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v after breach, want violated", got)
	}
	// …but a rotation WITHOUT a cache flush must NOT clear the
	// violation: the cache still serves lists from the pre-breach key
	// world.
	a.ObserveRotation("UA")
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v after rotation without cache flush, want violated", got)
	}
	// Only the wholesale flush (generation bump) settles the debt.
	fc.flush()
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after flush, want ok", got)
	}
}

func TestCacheCheckEmptyCacheOwesNothing(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	fc := &fakeCache{entries: 0}
	a.RegisterCacheCheck("ia-0", fc)

	a.ObserveBreach("IA")
	a.ObserveRotation("IA")
	// The cache was empty at breach time: no flush owed.
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v for empty cache across breach, want ok", got)
	}
}

func TestCacheCheckSecondBreachKeepsOlderDebt(t *testing.T) {
	c := newClock()
	a := newTestAuditor(c)
	fc := &fakeCache{entries: 2}
	a.RegisterCacheCheck("ia-0", fc)

	a.ObserveBreach("UA")
	firstGen := fc.gen
	// A second breach before the flush must not reset the debt to a
	// newer generation — the older one still stands.
	fc.entries = 4
	a.ObserveBreach("IA")
	a.ObserveRotation("UA")
	a.ObserveRotation("IA")
	if got := a.State(); got != StateViolated {
		t.Fatalf("state = %v with flush still owed, want violated", got)
	}
	fc.gen = firstGen + 1 // one flush covers both breaches
	fc.entries = 0
	if got := a.State(); got != StateOK {
		t.Fatalf("state = %v after flush, want ok", got)
	}
}
