package audit

import "sync"

// CacheState is the auditor's sampled view of one IA recommendation
// cache: its flush generation (advances exactly once per wholesale
// flush), entry count, and how many resident entries are past their TTL.
// *reccache.Cache implements it.
type CacheState interface {
	Generation() uint64
	Len() int
	ExpiredResident() int
}

// cacheWatch holds a cache accountable across enclave breaches. On
// ObserveBreach it snapshots the cache's flush generation; while the
// cache still held entries at breach time and its generation has not
// advanced since, the breach-era entries may still be getting served —
// a violation until Flush runs.
type cacheWatch struct {
	name string
	c    CacheState

	mu        sync.Mutex
	pending   bool
	breachGen uint64
}

// noteBreach arms the watch: a flush (generation bump) is now owed.
// A cache that was already empty owes nothing.
func (w *cacheWatch) noteBreach() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.pending {
		return // the outstanding (older) debt stands
	}
	if w.c.Len() == 0 {
		return
	}
	w.pending = true
	w.breachGen = w.c.Generation()
}

// stale reports whether the cache still owes a post-breach flush. It is
// called from recomputeLocked under the auditor lock, so it must not
// call back into the auditor.
func (w *cacheWatch) stale() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.pending {
		return false
	}
	if w.c.Generation() > w.breachGen {
		w.pending = false
		return false
	}
	return true
}

// RegisterCacheCheck puts a recommendation cache under audit, named for
// the report (e.g. the node address). Two signals join the SLO:
//
//   - a warning while expired entries sit resident past the epoch sweep
//     (cache freshness is part of the invalidation contract), and
//   - a violation when an enclave breach is observed while the cache
//     holds entries and no wholesale flush follows — whichever layer
//     leaked, cached lists derive from the pre-breach key world.
//
// Call during deployment wiring, like AddCheck.
func (a *Auditor) RegisterCacheCheck(name string, c CacheState) {
	w := &cacheWatch{name: name, c: c}
	a.mu.Lock()
	a.cacheWatches = append(a.cacheWatches, w)
	a.checks = append(a.checks,
		check{name: "expired reccache entries resident on " + name, fn: func() bool {
			return c.ExpiredResident() > 0
		}},
		check{name: "reccache not flushed after breach on " + name, fn: w.stale, violates: true},
	)
	a.mu.Unlock()
}
