package audit

import (
	"encoding/json"
	"net/http"
	"sort"
	"time"

	"pprox/internal/metrics"
)

// Report is the /privacy payload: the auditor's full assessment at epoch
// granularity. Everything in it is either configuration, a coarse
// aggregate, or a per-EPOCH quantity (batch sizes are visible on the
// wire as message bursts, so exporting them adds nothing an on-path
// adversary lacks). It contains no per-request records, no identifiers,
// no pseudonyms, and no fine-grained timestamps — the adversary test
// asserts all of that mechanically.
type Report struct {
	// TargetS is the configured shuffle size S.
	TargetS int `json:"target_s"`
	// Objective is the occupancy SLO objective.
	Objective float64 `json:"objective"`
	// State is the SLO state ("ok", "warn", "violated").
	State string `json:"state"`
	// StateSeconds is how long the auditor has been in this state,
	// coarsened to whole seconds.
	StateSeconds int64 `json:"state_seconds"`
	// EffectiveAnonymity is the smallest batch any epoch released within
	// the shortest window — the worst 1/batch linking bound any request
	// recently got (0 when no epochs observed).
	EffectiveAnonymity int `json:"effective_anonymity"`
	// WorstEpochBatch is the lifetime worst-epoch watermark.
	WorstEpochBatch int `json:"worst_epoch_batch"`
	// EpochsTotal / UnderfilledTotal are lifetime counters.
	EpochsTotal      uint64 `json:"epochs_total"`
	UnderfilledTotal uint64 `json:"underfilled_total"`
	// Violations / Warns count state transitions.
	Violations uint64 `json:"violations_total"`
	Warns      uint64 `json:"warns_total"`
	// Windows are the burn-rate evaluations, shortest first.
	Windows []windowEval `json:"windows"`
	// Nodes are per-node epoch aggregates, sorted by name.
	Nodes []NodeReport `json:"nodes"`
	// KeyAges reports seconds since each layer's last rotation (or
	// baseline), coarsened to whole seconds.
	KeyAges map[string]int64 `json:"key_age_seconds,omitempty"`
	// Breached lists layers with detected, unremediated compromises.
	Breached []string `json:"breached,omitempty"`
	// DegradedChecks lists registered checks currently firing.
	DegradedChecks []string `json:"degraded_checks,omitempty"`
}

// NodeReport is one node's epoch aggregate.
type NodeReport struct {
	Node        string `json:"node"`
	Epochs      uint64 `json:"epochs"`
	Underfilled uint64 `json:"underfilled"`
	WorstBatch  int    `json:"worst_batch"`
	LastBatch   int    `json:"last_batch"`
	// RecentEpochs is the node's bounded epoch history (one entry per
	// shuffle flush, never per request), oldest first.
	RecentEpochs []EpochRecord `json:"recent_epochs"`
}

// Report assembles the current assessment.
func (a *Auditor) Report() Report {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pruneLocked(now)
	a.recomputeLocked(now)

	r := Report{
		TargetS:          a.cfg.TargetS,
		Objective:        a.cfg.Objective,
		State:            a.state.String(),
		StateSeconds:     int64(now.Sub(a.stateSince) / time.Second),
		EpochsTotal:      a.epochsTotal,
		UnderfilledTotal: a.underfilledTotal,
		Violations:       a.violations,
		Warns:            a.warns,
	}
	for _, w := range a.cfg.Windows {
		r.Windows = append(r.Windows, a.evalWindowLocked(w, now))
	}
	if len(r.Windows) > 0 {
		r.EffectiveAnonymity = r.Windows[0].MinBatch
	}
	for name, ns := range a.nodes {
		if r.WorstEpochBatch == 0 || ns.worstBatch < r.WorstEpochBatch {
			r.WorstEpochBatch = ns.worstBatch
		}
		r.Nodes = append(r.Nodes, NodeReport{
			Node:         name,
			Epochs:       ns.epochs,
			Underfilled:  ns.underfilled,
			WorstBatch:   ns.worstBatch,
			LastBatch:    ns.lastBatch,
			RecentEpochs: append([]EpochRecord(nil), ns.recent...),
		})
	}
	sort.Slice(r.Nodes, func(i, j int) bool { return r.Nodes[i].Node < r.Nodes[j].Node })
	if len(a.rotations) > 0 {
		r.KeyAges = make(map[string]int64, len(a.rotations))
		for layer, at := range a.rotations {
			r.KeyAges[layer] = int64(now.Sub(at) / time.Second)
		}
	}
	for layer := range a.breaches {
		r.Breached = append(r.Breached, layer)
	}
	sort.Strings(r.Breached)
	for _, c := range a.checks {
		if c.fn() {
			r.DegradedChecks = append(r.DegradedChecks, c.name)
		}
	}
	return r
}

// PrivacyPath is the debug endpoint the report is served on.
const PrivacyPath = "/privacy"

// Handler serves the JSON report (GET /privacy).
func (a *Auditor) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a.Report())
	})
}

// RegisterMetrics exposes the auditor on the registry:
//
//   - pprox_audit_slo_state gauge (0 ok, 1 warn, 2 violated),
//   - pprox_audit_effective_anonymity_set gauge (shortest-window min
//     batch) and pprox_audit_worst_epoch_batch gauge (lifetime),
//   - pprox_audit_epochs_total / pprox_audit_underfilled_epochs_total /
//     pprox_audit_violations_total / pprox_audit_warns_total counters,
//   - pprox_audit_burn_rate{window} gauges,
//   - pprox_audit_key_age_seconds{layer} gauges (when rotation is wired),
//   - pprox_audit_breached_layers gauge.
func (a *Auditor) RegisterMetrics(r *metrics.Registry) {
	r.Gauge("pprox_audit_slo_state",
		"Privacy SLO state: 0 ok, 1 warn, 2 violated.", func() float64 {
			return float64(a.State())
		})
	r.Gauge("pprox_audit_effective_anonymity_set",
		"Smallest shuffle batch released within the shortest burn window.", func() float64 {
			rep := a.Report()
			return float64(rep.EffectiveAnonymity)
		})
	r.Gauge("pprox_audit_worst_epoch_batch",
		"Lifetime worst-epoch watermark (smallest batch ever released).", func() float64 {
			return float64(a.Report().WorstEpochBatch)
		})
	r.CounterFunc("pprox_audit_epochs_total",
		"Shuffle epochs observed by the auditor.", func() float64 {
			epochs, _, _, _ := a.Stats()
			return float64(epochs)
		})
	r.CounterFunc("pprox_audit_underfilled_epochs_total",
		"Epochs released with fewer than S messages.", func() float64 {
			_, under, _, _ := a.Stats()
			return float64(under)
		})
	r.CounterFunc("pprox_audit_violations_total",
		"Transitions into the violated state.", func() float64 {
			_, _, violations, _ := a.Stats()
			return float64(violations)
		})
	r.CounterFunc("pprox_audit_warns_total",
		"Transitions into the warn state.", func() float64 {
			_, _, _, warns := a.Stats()
			return float64(warns)
		})
	burn := r.GaugeVec("pprox_audit_burn_rate",
		"Occupancy error-budget burn rate per evaluation window.", "window")
	for _, w := range a.cfg.Windows {
		w := w
		burn.With(func() float64 {
			now := a.cfg.Now()
			a.mu.Lock()
			defer a.mu.Unlock()
			a.pruneLocked(now)
			return a.evalWindowLocked(w, now).BurnRate
		}, w.Name)
	}
	r.Gauge("pprox_audit_breached_layers",
		"Layers with a detected, unremediated enclave compromise.", func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(len(a.breaches))
		})
	ages := r.GaugeVec("pprox_audit_key_age_seconds",
		"Seconds since each layer's pseudonymization key was rotated or baselined.", "layer")
	a.mu.Lock()
	for layer := range a.rotations {
		layer := layer
		ages.With(func() float64 {
			a.mu.Lock()
			at, ok := a.rotations[layer]
			a.mu.Unlock()
			if !ok {
				return 0
			}
			return a.cfg.Now().Sub(at).Seconds()
		}, layer)
	}
	a.mu.Unlock()
}
