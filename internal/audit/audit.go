// Package audit is the continuous privacy-SLO engine. PProx's guarantee
// is quantitative — a network adversary links an ingress message to its
// egress with probability at most 1/S — and every term of that bound is
// an operational quantity that can silently degrade: a shuffle epoch
// that flushes on the timer with fewer than S messages shrinks the
// anonymity set to the batch it actually released; a pseudonymization
// key that outlives a breach hands the adversary the LRS database; a
// breaker-induced traffic collapse starves the shuffler until every
// epoch is a singleton. PR 1's instruments expose the raw counters, but
// nothing interprets them against the bound. This package does: it
// consumes the instrument streams (epoch batch sizes per node, key
// rotations, enclave compromise flags, breaker/ejection state) and
// maintains
//
//   - an online estimate of the effective anonymity set per epoch (the
//     released batch size, the exact denominator of the linking bound
//     for the requests in that epoch),
//   - a rolling worst-epoch watermark (lifetime and windowed), and
//   - multi-window burn-rate evaluation of the occupancy SLO ("at least
//     99% of epochs fully occupied"), with state transitions (ok →
//     warn → violated) exported as metrics, logged, and served as an
//     epoch-granular JSON report on /privacy.
//
// The report deliberately contains nothing an on-path adversary does not
// already observe: batch sizes are visible on the wire as message
// bursts, and everything else is configuration or coarse aggregate. The
// test in internal/adversary proves the endpoint adds zero linking
// advantage, mirroring the trace-export proof.
package audit

import (
	"log/slog"
	"sort"
	"sync"
	"time"
)

// State is the privacy SLO's current position.
type State int

// SLO states. Numeric values are stable: metrics export them as a gauge.
const (
	// StateOK: every window within budget, no degraded signals.
	StateOK State = 0
	// StateWarn: budget burning in some window, or a degraded-path
	// signal (open breaker, ejected backend, stale key) that historically
	// precedes under-filled epochs.
	StateWarn State = 1
	// StateViolated: the occupancy SLO is burning in every window
	// (requests measurably travelled in epochs smaller than S), or an
	// enclave compromise is unremediated — the 1/S bound does not hold.
	StateViolated State = 2
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateWarn:
		return "warn"
	case StateViolated:
		return "violated"
	default:
		return "ok"
	}
}

// Window is one burn-rate evaluation window of the occupancy SLO.
type Window struct {
	// Name labels the window in metrics and the report (e.g. "5m").
	Name string
	// Duration is the lookback.
	Duration time.Duration
	// Burn is the burn-rate threshold: the window trips when
	// (under-filled fraction) / (error budget) reaches it. 1.0 means
	// "burning the whole budget at sustained rate"; higher values catch
	// fast burns sooner relative to the window length.
	Burn float64
}

// Config parameterizes the auditor.
type Config struct {
	// TargetS is the configured shuffle size S — the denominator of the
	// linking bound an epoch must reach to be fully occupied.
	TargetS int
	// Objective is the fraction of epochs that must be fully occupied
	// (default 0.99; the error budget is 1−Objective).
	Objective float64
	// Windows are the burn-rate windows, shortest first (default 5m and
	// 1h, both with Burn 1.0). The SLO is violated only when EVERY
	// window trips — the standard multi-window guard against a single
	// slow epoch paging an operator — and warns when any window trips.
	Windows []Window
	// MaxKeyAge warns when a layer's pseudonymization key has not
	// rotated within this horizon (0 disables; key age only matters for
	// deployments that arm rotation).
	MaxKeyAge time.Duration
	// Now overrides the clock for tests.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.TargetS < 1 {
		c.TargetS = 1
	}
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.99
	}
	if len(c.Windows) == 0 {
		c.Windows = []Window{
			{Name: "5m", Duration: 5 * time.Minute, Burn: 1},
			{Name: "1h", Duration: time.Hour, Burn: 1},
		}
	}
	for i := range c.Windows {
		if c.Windows[i].Burn <= 0 {
			c.Windows[i].Burn = 1
		}
	}
	sort.Slice(c.Windows, func(i, j int) bool { return c.Windows[i].Duration < c.Windows[j].Duration })
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// epochObs is one observed shuffle-epoch release.
type epochObs struct {
	at    time.Time
	node  string
	batch int
}

// nodeStats aggregates one node's epoch history.
type nodeStats struct {
	epochs      uint64
	underfilled uint64
	worstBatch  int // lifetime minimum released batch
	lastBatch   int
	recent      []EpochRecord // bounded ring, oldest first
}

// maxRecentEpochs bounds the per-node epoch history kept for the report.
// The cap is in epochs, never requests: the report's size is O(epochs).
const maxRecentEpochs = 256

// EpochRecord is one epoch in the report: sequence number within the
// node's stream, released batch size (= the effective anonymity set of
// every request in the epoch), and whether it under-filled. It carries
// no timestamps and nothing per-request.
type EpochRecord struct {
	Seq         uint64 `json:"seq"`
	Batch       int    `json:"batch"`
	Underfilled bool   `json:"underfilled"`
}

// Auditor is the privacy-SLO engine. All methods are safe for concurrent
// use; observation paths take one short mutex (they run on shuffler
// flush, not per request).
type Auditor struct {
	cfg Config

	mu         sync.Mutex
	obs        []epochObs // pruned beyond the longest window
	nodes      map[string]*nodeStats
	state      State
	stateSince time.Time
	lastEpoch  time.Time

	epochsTotal      uint64
	underfilledTotal uint64
	violations       uint64
	warns            uint64

	rotations    map[string]time.Time // layer → last rotation (or start)
	breaches     map[string]time.Time // layer → unremediated breach time
	checks       []check
	cacheWatches []*cacheWatch

	logger *slog.Logger

	// OnTransition, when set, receives every state change after the
	// auditor's own bookkeeping (e.g. to push an alert). Called without
	// the auditor lock held.
	OnTransition func(from, to State, reason string)
}

// check is a sampled external signal.
type check struct {
	name     string
	fn       func() bool
	violates bool // true → StateViolated while firing, else StateWarn
}

// New creates an auditor.
func New(cfg Config) *Auditor {
	cfg = cfg.withDefaults()
	return &Auditor{
		cfg:        cfg,
		nodes:      make(map[string]*nodeStats),
		rotations:  make(map[string]time.Time),
		breaches:   make(map[string]time.Time),
		stateSince: cfg.Now(),
	}
}

// SetLogger installs the auditor's logger (state transitions, violation
// details). Nil disables logging.
func (a *Auditor) SetLogger(l *slog.Logger) {
	a.mu.Lock()
	a.logger = l
	a.mu.Unlock()
}

// AddCheck registers a sampled degraded-path signal (open breaker,
// ejected backend): while fn returns true the state is at least Warn.
func (a *Auditor) AddCheck(name string, fn func() bool) {
	a.mu.Lock()
	a.checks = append(a.checks, check{name: name, fn: fn})
	a.mu.Unlock()
}

// AddViolationCheck registers a sampled signal that forces StateViolated
// while true — an unremediated enclave compromise flag.
func (a *Auditor) AddViolationCheck(name string, fn func() bool) {
	a.mu.Lock()
	a.checks = append(a.checks, check{name: name, fn: fn, violates: true})
	a.mu.Unlock()
}

// ObserveEpoch records one shuffle-epoch release on a node: batch is the
// number of messages the shuffler released together, i.e. the effective
// anonymity set of every request in that epoch. Wire it to the layer's
// epoch observer (shuffle flush).
func (a *Auditor) ObserveEpoch(node string, batch int) {
	now := a.cfg.Now()
	a.mu.Lock()
	under := batch < a.cfg.TargetS
	a.obs = append(a.obs, epochObs{at: now, node: node, batch: batch})
	a.pruneLocked(now)
	a.lastEpoch = now
	a.epochsTotal++
	if under {
		a.underfilledTotal++
	}
	ns := a.nodes[node]
	if ns == nil {
		ns = &nodeStats{worstBatch: batch}
		a.nodes[node] = ns
	}
	ns.epochs++
	if under {
		ns.underfilled++
	}
	if batch < ns.worstBatch {
		ns.worstBatch = batch
	}
	ns.lastBatch = batch
	ns.recent = append(ns.recent, EpochRecord{Seq: ns.epochs, Batch: batch, Underfilled: under})
	if len(ns.recent) > maxRecentEpochs {
		ns.recent = ns.recent[len(ns.recent)-maxRecentEpochs:]
	}
	a.recomputeLocked(now)
	a.mu.Unlock()
}

// ObserveBreach records a detected enclave compromise on a layer. The
// state is Violated until ObserveRotation reports the layer's keys
// rotated — stolen permanent keys de-pseudonymize the LRS database for as
// long as they stay in service (§2.3 footnote 1).
func (a *Auditor) ObserveBreach(layer string) {
	now := a.cfg.Now()
	a.mu.Lock()
	a.breaches[layer] = now
	// Every registered recommendation cache now owes a wholesale flush,
	// whichever layer leaked: cached lists derive from the pre-breach
	// key world (see RegisterCacheCheck).
	for _, w := range a.cacheWatches {
		w.noteBreach()
	}
	a.recomputeLocked(now)
	a.mu.Unlock()
}

// ObserveRotation records a completed key rotation for a layer, clearing
// its breach flag and resetting its key age.
func (a *Auditor) ObserveRotation(layer string) {
	now := a.cfg.Now()
	a.mu.Lock()
	a.rotations[layer] = now
	delete(a.breaches, layer)
	a.recomputeLocked(now)
	a.mu.Unlock()
}

// SetKeyBaseline marks a layer's key as fresh at start-up, so MaxKeyAge
// measures from provisioning rather than from an unknown past.
func (a *Auditor) SetKeyBaseline(layer string) {
	a.mu.Lock()
	a.rotations[layer] = a.cfg.Now()
	a.mu.Unlock()
}

// pruneLocked drops observations beyond the longest window.
func (a *Auditor) pruneLocked(now time.Time) {
	horizon := now.Add(-a.cfg.Windows[len(a.cfg.Windows)-1].Duration)
	i := 0
	for i < len(a.obs) && a.obs[i].at.Before(horizon) {
		i++
	}
	if i > 0 {
		a.obs = append(a.obs[:0], a.obs[i:]...)
	}
}

// windowEval is one window's burn-rate evaluation.
type windowEval struct {
	Window      string  `json:"window"`
	Epochs      uint64  `json:"epochs"`
	Underfilled uint64  `json:"underfilled"`
	BurnRate    float64 `json:"burn_rate"`
	Burning     bool    `json:"burning"`
	// MinBatch is the windowed worst-epoch watermark: the smallest
	// effective anonymity set any request got within the window (0 when
	// the window saw no epochs).
	MinBatch int `json:"min_batch"`
}

// evalWindowLocked computes one window's burn rate at time now.
func (a *Auditor) evalWindowLocked(w Window, now time.Time) windowEval {
	ev := windowEval{Window: w.Name}
	horizon := now.Add(-w.Duration)
	budget := 1 - a.cfg.Objective
	for _, o := range a.obs {
		if o.at.Before(horizon) {
			continue
		}
		ev.Epochs++
		if o.batch < a.cfg.TargetS {
			ev.Underfilled++
		}
		if ev.MinBatch == 0 || o.batch < ev.MinBatch {
			ev.MinBatch = o.batch
		}
	}
	if ev.Epochs > 0 {
		ev.BurnRate = (float64(ev.Underfilled) / float64(ev.Epochs)) / budget
		ev.Burning = ev.BurnRate >= w.Burn
	}
	return ev
}

// recomputeLocked re-derives the SLO state and fires transitions.
func (a *Auditor) recomputeLocked(now time.Time) {
	next := StateOK
	reason := ""

	// Hard violations first: an unremediated compromise breaks the
	// guarantee outright, no matter what the shuffler does.
	for layer := range a.breaches {
		next, reason = StateViolated, "unremediated breach on "+layer
	}
	violated, warned := false, false
	var checkReason string
	for _, c := range a.checks {
		if !c.fn() {
			continue
		}
		if c.violates {
			violated, checkReason = true, c.name
		} else if !warned {
			warned, checkReason = true, c.name
		}
	}
	if next != StateViolated && violated {
		next, reason = StateViolated, checkReason
	}

	// Occupancy burn rates: violated when every window burns, warned
	// when any does.
	if next != StateViolated {
		burningAll, burningAny := len(a.obs) > 0, false
		var slowest windowEval
		for _, w := range a.cfg.Windows {
			ev := a.evalWindowLocked(w, now)
			if ev.Burning {
				burningAny = true
				slowest = ev
			} else {
				burningAll = false
			}
		}
		switch {
		case burningAll:
			next = StateViolated
			reason = "occupancy SLO burning in every window (min effective anonymity " +
				itoa(slowest.MinBatch) + " < S=" + itoa(a.cfg.TargetS) + ")"
		case burningAny && next == StateOK:
			next, reason = StateWarn, "occupancy budget burning in window "+slowest.Window
		}
	}

	// Degraded-path warnings.
	if next == StateOK && warned {
		next, reason = StateWarn, checkReason
	}
	if next == StateOK && a.cfg.MaxKeyAge > 0 {
		for layer, at := range a.rotations {
			if now.Sub(at) > a.cfg.MaxKeyAge {
				next, reason = StateWarn, "stale pseudonymization key on "+layer
			}
		}
	}

	if next == a.state {
		return
	}
	from := a.state
	a.state = next
	a.stateSince = now
	switch next {
	case StateViolated:
		a.violations++
	case StateWarn:
		a.warns++
	}
	logger, hook := a.logger, a.OnTransition
	if logger != nil {
		logger.Warn("privacy SLO state transition",
			"from", from.String(), "to", next.String(), "reason", reason,
			"target_s", a.cfg.TargetS)
	}
	if hook != nil {
		// Run the hook off-lock; transitions are rare.
		go hook(from, next, reason)
	}
}

// State returns the current SLO state, re-evaluated against the clock
// (windows empty out as time passes even with no new epochs).
func (a *Auditor) State() State {
	now := a.cfg.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.pruneLocked(now)
	a.recomputeLocked(now)
	return a.state
}

// Stats returns lifetime counters: epochs observed, under-filled epochs,
// violation transitions, and warn transitions.
func (a *Auditor) Stats() (epochs, underfilled, violations, warns uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epochsTotal, a.underfilledTotal, a.violations, a.warns
}

// itoa avoids strconv in the hot transition path message.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
