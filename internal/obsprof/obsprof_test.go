package obsprof

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakePprof serves a minimal /debug/pprof tree.
func fakePprof(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("profile-bytes:" + r.URL.Path))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestDisabledWhenNoDir(t *testing.T) {
	h, err := New(Config{})
	if err != nil || h != nil {
		t.Fatalf("New with empty dir = (%v, %v), want (nil, nil)", h, err)
	}
	h.Trigger("x", 1, "ok", "warn") // nil-safe
	h.Wait()
	if got := h.Captures(); got != nil {
		t.Fatalf("nil harvester captures = %v", got)
	}
}

func TestTriggerCapturesFromHTTPSource(t *testing.T) {
	srv := fakePprof(t)
	dir := t.TempDir()
	clock := time.Unix(5000, 0)
	h, err := New(Config{
		Dir:        dir,
		Source:     srv.URL,
		CPUSeconds: 1,
		Cooldown:   time.Nanosecond,
		Now:        func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Trigger("latency objective shuffle_wait on ua-0 violated", 42, "ok", "violated")
	h.Wait()

	caps := h.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %v, want 1", caps)
	}
	if !strings.Contains(filepath.Base(caps[0]), "latency-objective-shuffle-wait") {
		t.Fatalf("capture dir %q missing reason slug", caps[0])
	}
	for _, f := range []string{"cpu.pprof", "heap.pprof", "goroutine.pprof", "meta.json"} {
		if _, err := os.Stat(filepath.Join(caps[0], f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	raw, err := os.ReadFile(filepath.Join(caps[0], "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	var meta Meta
	if err := json.Unmarshal(raw, &meta); err != nil {
		t.Fatal(err)
	}
	if meta.Epoch != 42 || meta.ToState != "violated" || len(meta.Profiles) != 3 {
		t.Fatalf("meta = %+v", meta)
	}
}

func TestCooldownSuppressesRetrigger(t *testing.T) {
	srv := fakePprof(t)
	dir := t.TempDir()
	clock := time.Unix(5000, 0)
	h, err := New(Config{
		Dir:      dir,
		Source:   srv.URL,
		Cooldown: time.Hour,
		Now:      func() time.Time { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Trigger("first", 1, "ok", "warn")
	h.Wait()
	h.Trigger("second", 2, "warn", "violated") // within cooldown: dropped
	h.Wait()
	if caps := h.Captures(); len(caps) != 1 {
		t.Fatalf("captures = %v, want cooldown to drop the second", caps)
	}
}

func TestRingBoundsCaptures(t *testing.T) {
	srv := fakePprof(t)
	dir := t.TempDir()
	clock := time.Unix(5000, 0)
	h, err := New(Config{
		Dir:         dir,
		Source:      srv.URL,
		MaxCaptures: 2,
		Cooldown:    time.Nanosecond,
		Now: func() time.Time {
			clock = clock.Add(time.Minute)
			return clock
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Trigger("burst", uint64(i), "ok", "warn")
		h.Wait()
	}
	caps := h.Captures()
	if len(caps) != 2 {
		t.Fatalf("ring holds %d captures, want 2: %v", len(caps), caps)
	}
	// The survivors are the two newest sequence numbers.
	for _, c := range caps {
		base := filepath.Base(c)
		if !strings.HasPrefix(base, "cap-00000") {
			t.Fatalf("unexpected capture name %q", base)
		}
		if base < "cap-000004" {
			t.Fatalf("old capture %q not pruned", base)
		}
	}
}

func TestLocalCaptureWithoutSource(t *testing.T) {
	dir := t.TempDir()
	h, err := New(Config{
		Dir:        dir,
		CPUSeconds: 1,
		Cooldown:   time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Trigger("local", 3, "ok", "warn")
	h.Wait()
	caps := h.Captures()
	if len(caps) != 1 {
		t.Fatalf("captures = %v", caps)
	}
	// heap and goroutine must always come out of the in-process path;
	// the CPU profile can fail if another test holds the profiler.
	for _, f := range []string{"heap.pprof", "goroutine.pprof", "meta.json"} {
		fi, err := os.Stat(filepath.Join(caps[0], f))
		if err != nil {
			t.Errorf("missing %s: %v", f, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}
