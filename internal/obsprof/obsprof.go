// Package obsprof captures runtime profiles when the performance SLO
// burns. A latency regression caught by the burn-rate evaluator is only
// actionable if the evidence survives the incident: by the time an
// operator attaches to the pprof server, the goroutine pile-up or
// allocation storm that caused the p99 spike is usually gone. The
// harvester closes that gap — on a warn/violated transition it snapshots
// CPU, heap, and goroutine profiles (from the already-running
// -debug-addr pprof server when one is configured, else in-process) into
// a bounded on-disk ring, so regressions caught in CI or chaos tests
// come with profiles attached.
//
// Captures are metadata-disciplined like every other PProx telemetry
// surface: the capture directory name and meta.json carry the trigger
// reason, the SLO states, and the shuffle-epoch id of the breach
// exemplar — never a request id. Profiles themselves contain stacks and
// allocation sites, which describe the binary, not the traffic.
package obsprof

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// Config parameterizes the harvester.
type Config struct {
	// Dir is the capture ring directory. Empty disables the harvester
	// (the -profile-dir flag defaults off).
	Dir string
	// Source is the base URL of a running net/http/pprof server (the
	// binary's -debug-addr), e.g. "http://127.0.0.1:6060". Empty falls
	// back to in-process runtime/pprof capture.
	Source string
	// CPUSeconds is the CPU profile duration (default 2).
	CPUSeconds int
	// MaxCaptures bounds the on-disk ring; the oldest capture is
	// deleted to admit a new one (default 8).
	MaxCaptures int
	// Cooldown suppresses re-triggering within the window (default 30s)
	// so a flapping SLO cannot fill the ring with one incident.
	Cooldown time.Duration
	// Client overrides the HTTP client used against Source (tests).
	Client *http.Client
	// Logger logs capture outcomes. Nil disables logging.
	Logger *slog.Logger
	// Now overrides the clock for tests.
	Now func() time.Time
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.CPUSeconds <= 0 {
		c.CPUSeconds = 2
	}
	if c.MaxCaptures <= 0 {
		c.MaxCaptures = 8
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Meta is the capture's meta.json: why it was taken and which epoch it
// points at. Epoch granularity only — no request identifiers.
type Meta struct {
	Seq       uint64 `json:"seq"`
	Reason    string `json:"reason"`
	FromState string `json:"from_state"`
	ToState   string `json:"to_state"`
	// Epoch is the shuffle-epoch id of the breach exemplar that
	// triggered the capture (0 when unknown).
	Epoch uint64 `json:"epoch"`
	// UnixSeconds is the capture time, whole seconds. Captures are rare
	// operator events, not per-request telemetry, so a coarse wall-clock
	// stamp is acceptable here (the ring lives on the operator's disk
	// and is never served).
	UnixSeconds int64    `json:"unix_seconds"`
	Profiles    []string `json:"profiles"`
}

// Harvester captures profiles into the ring. A nil *Harvester is valid
// and ignores triggers, so wiring can be unconditional.
type Harvester struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	lastCap  time.Time
	inflight bool
	wg       sync.WaitGroup
}

// New creates a harvester, creating Dir if needed. Returns nil (with no
// error) when cfg.Dir is empty — the disabled state.
func New(cfg Config) (*Harvester, error) {
	if cfg.Dir == "" {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("obsprof: create profile dir: %w", err)
	}
	return &Harvester{cfg: cfg}, nil
}

// Trigger requests a capture for an SLO transition. It returns
// immediately; the capture runs on its own goroutine. Triggers are
// dropped while a capture is in flight or within the cooldown window.
// Safe on a nil harvester.
func (h *Harvester) Trigger(reason string, epoch uint64, fromState, toState string) {
	if h == nil {
		return
	}
	now := h.cfg.Now()
	h.mu.Lock()
	if h.inflight || (!h.lastCap.IsZero() && now.Sub(h.lastCap) < h.cfg.Cooldown) {
		h.mu.Unlock()
		return
	}
	h.inflight = true
	h.lastCap = now
	h.seq++
	seq := h.seq
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		defer func() {
			h.mu.Lock()
			h.inflight = false
			h.mu.Unlock()
		}()
		if err := h.capture(seq, reason, epoch, fromState, toState, now); err != nil && h.cfg.Logger != nil {
			h.cfg.Logger.Warn("profile capture failed", "reason", reason, "err", err)
		}
	}()
}

// Wait blocks until all in-flight captures finish (tests, shutdown).
// Safe on a nil harvester.
func (h *Harvester) Wait() {
	if h == nil {
		return
	}
	h.wg.Wait()
}

// Captures lists the capture directories currently in the ring, oldest
// first. Safe on a nil harvester.
func (h *Harvester) Captures() []string {
	if h == nil {
		return nil
	}
	ents, err := os.ReadDir(h.cfg.Dir)
	if err != nil {
		return nil
	}
	var dirs []string
	for _, e := range ents {
		if e.IsDir() && strings.HasPrefix(e.Name(), "cap-") {
			dirs = append(dirs, filepath.Join(h.cfg.Dir, e.Name()))
		}
	}
	sort.Strings(dirs)
	return dirs
}

// capture takes one snapshot into cap-<seq>-<slug>/ and prunes the ring.
func (h *Harvester) capture(seq uint64, reason string, epoch uint64, fromState, toState string, at time.Time) error {
	dir := filepath.Join(h.cfg.Dir, fmt.Sprintf("cap-%06d-%s", seq, slug(reason)))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := Meta{
		Seq:         seq,
		Reason:      reason,
		FromState:   fromState,
		ToState:     toState,
		Epoch:       epoch,
		UnixSeconds: at.Unix(),
	}
	kinds := []string{"cpu", "heap", "goroutine"}
	var firstErr error
	for _, kind := range kinds {
		path := filepath.Join(dir, kind+".pprof")
		var err error
		if h.cfg.Source != "" {
			err = h.captureHTTP(kind, path)
		} else {
			err = h.captureLocal(kind, path)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", kind, err)
			}
			continue
		}
		meta.Profiles = append(meta.Profiles, kind+".pprof")
	}
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "meta.json"), append(mb, '\n'), 0o644)
	}
	if firstErr == nil {
		firstErr = err
	}
	h.prune()
	if h.cfg.Logger != nil {
		h.cfg.Logger.Info("profile capture",
			"dir", dir, "reason", reason, "epoch", epoch,
			"profiles", len(meta.Profiles))
	}
	return firstErr
}

// captureHTTP pulls one profile from the -debug-addr pprof server.
func (h *Harvester) captureHTTP(kind, path string) error {
	var url string
	switch kind {
	case "cpu":
		url = fmt.Sprintf("%s/debug/pprof/profile?seconds=%d", h.cfg.Source, h.cfg.CPUSeconds)
	default:
		url = fmt.Sprintf("%s/debug/pprof/%s", h.cfg.Source, kind)
	}
	resp, err := h.cfg.Client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pprof server: %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = io.Copy(f, resp.Body)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// captureLocal snapshots one profile in-process, for binaries running
// without -debug-addr.
func (h *Harvester) captureLocal(kind, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch kind {
	case "cpu":
		if err = pprof.StartCPUProfile(f); err == nil {
			time.Sleep(time.Duration(h.cfg.CPUSeconds) * time.Second)
			pprof.StopCPUProfile()
		}
	case "heap":
		runtime.GC()
		err = pprof.Lookup("heap").WriteTo(f, 0)
	default:
		err = pprof.Lookup(kind).WriteTo(f, 0)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// prune deletes the oldest captures beyond MaxCaptures.
func (h *Harvester) prune() {
	dirs := h.Captures()
	for len(dirs) > h.cfg.MaxCaptures {
		os.RemoveAll(dirs[0])
		dirs = dirs[1:]
	}
}

// slug reduces a transition reason to a filesystem-safe directory
// component.
func slug(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			b.WriteRune('-')
		}
		if b.Len() >= 48 {
			break
		}
	}
	out := strings.Trim(b.String(), "-")
	if out == "" {
		return "transition"
	}
	return out
}
