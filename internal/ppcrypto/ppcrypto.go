// Package ppcrypto implements the cryptographic suite used by the PProx
// protocol (Middleware '21, §4.1): RSA-OAEP asymmetric encryption for
// exclusive visibility by one proxy layer, deterministic AES-CTR (constant
// initialization vector) for pseudonymization of user and item identifiers,
// randomized AES-CTR for protecting recommendation lists, and a fixed-size
// padding codec that keeps every encrypted message at a constant length.
//
// The paper's implementation uses Intel's OpenSSL SGX port with RSA for
// asymmetric encryption and AES-CTR for symmetric encryption; this package
// reproduces that suite on the Go standard library.
package ppcrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// RSABits is the modulus size of layer key pairs.
	RSABits = 2048

	// RSACiphertextSize is the constant size of an RSA-OAEP ciphertext
	// under a 2048-bit key. Constant ciphertext size is what makes
	// messages between the user-side library and the proxy layers
	// indistinguishable to a network observer (§4.3).
	RSACiphertextSize = RSABits / 8

	// SymmetricKeySize is the AES-256 key length used for both the
	// permanent pseudonymization keys (kUA, kIA) and the per-request
	// temporary keys (k_u).
	SymmetricKeySize = 32

	// IDBlockSize is the fixed size every user or item identifier is
	// padded to before encryption, so that all pseudonyms and all
	// asymmetric ciphertexts have constant length.
	IDBlockSize = 64

	// ivSize is the AES block size used for CTR initialization vectors.
	ivSize = aes.BlockSize
)

// Errors returned by this package. They are exported so that callers (the
// proxy layers and the user-side library) can distinguish malformed
// ciphertexts from identifier-encoding problems.
var (
	// ErrIdentifierTooLong reports an identifier that does not fit in a
	// fixed-size block.
	ErrIdentifierTooLong = errors.New("ppcrypto: identifier too long for fixed-size block")

	// ErrMalformedPadding reports a padded block whose header is
	// inconsistent with its contents.
	ErrMalformedPadding = errors.New("ppcrypto: malformed fixed-size padding")

	// ErrCiphertextSize reports a ciphertext of unexpected length.
	ErrCiphertextSize = errors.New("ppcrypto: ciphertext has unexpected size")

	// ErrKeySize reports a symmetric key of the wrong length.
	ErrKeySize = errors.New("ppcrypto: symmetric key must be 32 bytes")
)

// KeyPair is an asymmetric key pair provisioned to one proxy layer. The
// public half is embedded in the user-side library; the private half lives
// only inside the layer's enclave.
type KeyPair struct {
	Private *rsa.PrivateKey
	Public  *rsa.PublicKey
}

// GenerateKeyPair creates a fresh layer key pair.
func GenerateKeyPair() (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, RSABits)
	if err != nil {
		return nil, fmt.Errorf("generate RSA key: %w", err)
	}
	return &KeyPair{Private: priv, Public: &priv.PublicKey}, nil
}

// MarshalPublicKey serializes a layer public key (PKIX/DER) for embedding in
// the user-side library's provisioning bundle.
func MarshalPublicKey(pub *rsa.PublicKey) ([]byte, error) {
	der, err := x509.MarshalPKIXPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("marshal public key: %w", err)
	}
	return der, nil
}

// UnmarshalPublicKey parses a PKIX/DER public key.
func UnmarshalPublicKey(der []byte) (*rsa.PublicKey, error) {
	k, err := x509.ParsePKIXPublicKey(der)
	if err != nil {
		return nil, fmt.Errorf("parse public key: %w", err)
	}
	pub, ok := k.(*rsa.PublicKey)
	if !ok {
		return nil, fmt.Errorf("parse public key: not an RSA key (%T)", k)
	}
	return pub, nil
}

// MarshalPrivateKey serializes a layer private key (PKCS#8/DER) for sealed
// provisioning into an enclave.
func MarshalPrivateKey(priv *rsa.PrivateKey) ([]byte, error) {
	der, err := x509.MarshalPKCS8PrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("marshal private key: %w", err)
	}
	return der, nil
}

// UnmarshalPrivateKey parses a PKCS#8/DER private key.
func UnmarshalPrivateKey(der []byte) (*rsa.PrivateKey, error) {
	k, err := x509.ParsePKCS8PrivateKey(der)
	if err != nil {
		return nil, fmt.Errorf("parse private key: %w", err)
	}
	priv, ok := k.(*rsa.PrivateKey)
	if !ok {
		return nil, fmt.Errorf("parse private key: not an RSA key (%T)", k)
	}
	return priv, nil
}

// NewSymmetricKey draws a fresh AES-256 key: a permanent pseudonymization
// key (kUA, kIA) at provisioning time, or a temporary per-request key (k_u)
// in the user-side library.
func NewSymmetricKey() ([]byte, error) {
	key := make([]byte, SymmetricKeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("generate symmetric key: %w", err)
	}
	return key, nil
}

// PadID encodes an identifier into a fixed-size block: a 2-byte big-endian
// length header followed by the identifier bytes and zero padding. All
// identifiers on the wire occupy exactly IDBlockSize bytes so that their
// ciphertexts are indistinguishable by size.
func PadID(id string) ([]byte, error) {
	if len(id) > IDBlockSize-2 {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrIdentifierTooLong, len(id), IDBlockSize-2)
	}
	block := make([]byte, IDBlockSize)
	binary.BigEndian.PutUint16(block[:2], uint16(len(id)))
	copy(block[2:], id)
	return block, nil
}

// UnpadID decodes a fixed-size identifier block produced by PadID.
func UnpadID(block []byte) (string, error) {
	if len(block) != IDBlockSize {
		return "", fmt.Errorf("%w: block is %d bytes", ErrMalformedPadding, len(block))
	}
	n := int(binary.BigEndian.Uint16(block[:2]))
	if n > IDBlockSize-2 {
		return "", fmt.Errorf("%w: header length %d", ErrMalformedPadding, n)
	}
	for _, b := range block[2+n:] {
		if b != 0 {
			return "", fmt.Errorf("%w: nonzero padding", ErrMalformedPadding)
		}
	}
	return string(block[2 : 2+n]), nil
}

// EncryptOAEP encrypts a short payload (a padded identifier or a temporary
// symmetric key) under a layer public key. This is randomized encryption:
// two encryptions of the same input yield different ciphertexts, which is
// why the result cannot serve as a pseudonym (§4.1) — pseudonyms use
// DetEncrypt instead.
func EncryptOAEP(pub *rsa.PublicKey, plaintext []byte) ([]byte, error) {
	ct, err := rsa.EncryptOAEP(sha256.New(), rand.Reader, pub, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("OAEP encrypt: %w", err)
	}
	return ct, nil
}

// DecryptOAEP decrypts an EncryptOAEP ciphertext with a layer private key.
func DecryptOAEP(priv *rsa.PrivateKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) != RSACiphertextSize {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrCiphertextSize, len(ciphertext), RSACiphertextSize)
	}
	pt, err := rsa.DecryptOAEP(sha256.New(), nil, priv, ciphertext, nil)
	if err != nil {
		return nil, fmt.Errorf("OAEP decrypt: %w", err)
	}
	return pt, nil
}

// DetEncrypt deterministically encrypts a fixed-size block with AES-256-CTR
// and a constant (all-zero) initialization vector. Determinism is required
// so the LRS recognizes two pseudonymized identifiers as the same entity:
// det_enc(u, kUA) is the stable pseudonym of user u (§4.1). The trade-off —
// lower resilience against known-plaintext analysis than probabilistic
// encryption — is the one the paper makes explicitly.
func DetEncrypt(key, block []byte) ([]byte, error) {
	c, err := newCTR(key, make([]byte, ivSize))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(block))
	c.XORKeyStream(out, block)
	return out, nil
}

// DetDecrypt reverses DetEncrypt. CTR mode is an involution under the same
// key stream, so this is the same transform; the separate name keeps call
// sites self-describing.
func DetDecrypt(key, block []byte) ([]byte, error) {
	return DetEncrypt(key, block)
}

// SymEncrypt encrypts arbitrary data with AES-256-CTR under a fresh random
// initialization vector, prepended to the ciphertext. This is the
// randomized encryption used for recommendation lists returned to the
// user-side library under the temporary key k_u (§4.1).
func SymEncrypt(key, plaintext []byte) ([]byte, error) {
	iv := make([]byte, ivSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("generate IV: %w", err)
	}
	c, err := newCTR(key, iv)
	if err != nil {
		return nil, err
	}
	out := make([]byte, ivSize+len(plaintext))
	copy(out, iv)
	c.XORKeyStream(out[ivSize:], plaintext)
	return out, nil
}

// SymDecrypt reverses SymEncrypt.
func SymDecrypt(key, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < ivSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than IV", ErrCiphertextSize, len(ciphertext))
	}
	c, err := newCTR(key, ciphertext[:ivSize])
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(ciphertext)-ivSize)
	c.XORKeyStream(out, ciphertext[ivSize:])
	return out, nil
}

func newCTR(key, iv []byte) (cipher.Stream, error) {
	if len(key) != SymmetricKeySize {
		return nil, fmt.Errorf("%w: got %d bytes", ErrKeySize, len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("AES cipher: %w", err)
	}
	return cipher.NewCTR(block, iv), nil
}

// Pseudonymize is the composite operation performed inside an enclave: pad
// the cleartext identifier to a fixed-size block and deterministically
// encrypt it under the layer's permanent key. The result is the stable
// pseudonym stored by the LRS.
func Pseudonymize(key []byte, id string) ([]byte, error) {
	block, err := PadID(id)
	if err != nil {
		return nil, err
	}
	return DetEncrypt(key, block)
}

// Depseudonymize reverses Pseudonymize: decrypt a stable pseudonym back to
// the cleartext identifier. Only the layer holding the permanent key can do
// this (the IA layer does, to translate LRS recommendations back to catalog
// item identifiers).
func Depseudonymize(key, pseudonym []byte) (string, error) {
	if len(pseudonym) != IDBlockSize {
		return "", fmt.Errorf("%w: pseudonym is %d bytes", ErrCiphertextSize, len(pseudonym))
	}
	block, err := DetDecrypt(key, pseudonym)
	if err != nil {
		return "", err
	}
	return UnpadID(block)
}
