package ppcrypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// testKeyPair is generated once; RSA generation is slow and the tests only
// need any valid pair.
var testKeyPair = mustGenerate()

func mustGenerate() *KeyPair {
	kp, err := GenerateKeyPair()
	if err != nil {
		panic(err)
	}
	return kp
}

func mustKey(t *testing.T) []byte {
	t.Helper()
	k, err := NewSymmetricKey()
	if err != nil {
		t.Fatalf("NewSymmetricKey: %v", err)
	}
	return k
}

func TestPadUnpadRoundTrip(t *testing.T) {
	for _, id := range []string{"", "u", "user-42", strings.Repeat("x", IDBlockSize-2)} {
		block, err := PadID(id)
		if err != nil {
			t.Fatalf("PadID(%q): %v", id, err)
		}
		if len(block) != IDBlockSize {
			t.Fatalf("PadID(%q): block size %d, want %d", id, len(block), IDBlockSize)
		}
		got, err := UnpadID(block)
		if err != nil {
			t.Fatalf("UnpadID(PadID(%q)): %v", id, err)
		}
		if got != id {
			t.Errorf("round trip: got %q, want %q", got, id)
		}
	}
}

func TestPadIDTooLong(t *testing.T) {
	if _, err := PadID(strings.Repeat("x", IDBlockSize-1)); err == nil {
		t.Fatal("PadID accepted an identifier longer than the block")
	}
}

func TestUnpadIDRejectsMalformed(t *testing.T) {
	t.Run("wrong size", func(t *testing.T) {
		if _, err := UnpadID(make([]byte, IDBlockSize-1)); err == nil {
			t.Error("UnpadID accepted a short block")
		}
	})
	t.Run("length header beyond block", func(t *testing.T) {
		block := make([]byte, IDBlockSize)
		block[0] = 0xFF
		block[1] = 0xFF
		if _, err := UnpadID(block); err == nil {
			t.Error("UnpadID accepted an oversized length header")
		}
	})
	t.Run("nonzero padding", func(t *testing.T) {
		block, err := PadID("u")
		if err != nil {
			t.Fatal(err)
		}
		block[IDBlockSize-1] = 1
		if _, err := UnpadID(block); err == nil {
			t.Error("UnpadID accepted nonzero padding")
		}
	})
}

func TestPadIDProperty(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > IDBlockSize-2 {
			raw = raw[:IDBlockSize-2]
		}
		id := string(raw)
		block, err := PadID(id)
		if err != nil {
			return false
		}
		got, err := UnpadID(block)
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOAEPRoundTrip(t *testing.T) {
	block, err := PadID("user-1")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := EncryptOAEP(testKeyPair.Public, block)
	if err != nil {
		t.Fatalf("EncryptOAEP: %v", err)
	}
	if len(ct) != RSACiphertextSize {
		t.Fatalf("ciphertext size %d, want constant %d", len(ct), RSACiphertextSize)
	}
	pt, err := DecryptOAEP(testKeyPair.Private, ct)
	if err != nil {
		t.Fatalf("DecryptOAEP: %v", err)
	}
	if !bytes.Equal(pt, block) {
		t.Error("OAEP round trip mismatch")
	}
}

func TestOAEPIsRandomized(t *testing.T) {
	// §4.1: randomized encryption of the same identifier must yield
	// different ciphertexts, which is why it cannot serve as a pseudonym.
	block, err := PadID("user-1")
	if err != nil {
		t.Fatal(err)
	}
	a, err := EncryptOAEP(testKeyPair.Public, block)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncryptOAEP(testKeyPair.Public, block)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("two OAEP encryptions of the same plaintext are identical")
	}
}

func TestDecryptOAEPWrongKey(t *testing.T) {
	other, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	block, _ := PadID("user-1")
	ct, err := EncryptOAEP(testKeyPair.Public, block)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecryptOAEP(other.Private, ct); err == nil {
		t.Error("DecryptOAEP succeeded with the wrong private key")
	}
}

func TestDecryptOAEPRejectsWrongSize(t *testing.T) {
	if _, err := DecryptOAEP(testKeyPair.Private, make([]byte, 17)); err == nil {
		t.Error("DecryptOAEP accepted a short ciphertext")
	}
}

func TestDetEncryptIsDeterministic(t *testing.T) {
	key := mustKey(t)
	block, _ := PadID("item-9")
	a, err := DetEncrypt(key, block)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DetEncrypt(key, block)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("deterministic encryption produced two different ciphertexts")
	}
	if bytes.Equal(a, block) {
		t.Error("deterministic encryption left the plaintext unchanged")
	}
}

func TestDetEncryptDistinctInputsDistinctOutputs(t *testing.T) {
	key := mustKey(t)
	a, _ := PadID("item-1")
	b, _ := PadID("item-2")
	ca, err := DetEncrypt(key, a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := DetEncrypt(key, b)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, cb) {
		t.Error("two distinct identifiers pseudonymize to the same value")
	}
}

func TestDetRoundTripProperty(t *testing.T) {
	key := mustKey(t)
	f := func(data []byte) bool {
		ct, err := DetEncrypt(key, data)
		if err != nil {
			return false
		}
		pt, err := DetDecrypt(key, ct)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymEncryptIsRandomized(t *testing.T) {
	key := mustKey(t)
	msg := []byte("recommendations: i1,i2,i3")
	a, err := SymEncrypt(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SymEncrypt(key, msg)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Error("randomized symmetric encryption produced identical ciphertexts")
	}
}

func TestSymRoundTripProperty(t *testing.T) {
	key := mustKey(t)
	f := func(data []byte) bool {
		ct, err := SymEncrypt(key, data)
		if err != nil {
			return false
		}
		pt, err := SymDecrypt(key, ct)
		return err == nil && bytes.Equal(pt, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymDecryptRejectsShortCiphertext(t *testing.T) {
	key := mustKey(t)
	if _, err := SymDecrypt(key, []byte{1, 2, 3}); err == nil {
		t.Error("SymDecrypt accepted a ciphertext shorter than the IV")
	}
}

func TestSymmetricKeySizeEnforced(t *testing.T) {
	if _, err := DetEncrypt([]byte("short"), make([]byte, IDBlockSize)); err == nil {
		t.Error("DetEncrypt accepted a short key")
	}
	if _, err := SymEncrypt([]byte("short"), []byte("x")); err == nil {
		t.Error("SymEncrypt accepted a short key")
	}
}

func TestPseudonymizeStableAndReversible(t *testing.T) {
	key := mustKey(t)
	p1, err := Pseudonymize(key, "user-7")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Pseudonymize(key, "user-7")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Error("pseudonym is not stable across calls")
	}
	id, err := Depseudonymize(key, p1)
	if err != nil {
		t.Fatal(err)
	}
	if id != "user-7" {
		t.Errorf("Depseudonymize: got %q, want %q", id, "user-7")
	}
}

func TestDepseudonymizeWrongKeyFailsOrGarbles(t *testing.T) {
	// With the wrong permanent key the padding check almost always
	// rejects the block; if it happens to parse, the identifier must
	// differ. Either way the adversary does not learn the cleartext.
	k1, k2 := mustKey(t), mustKey(t)
	p, err := Pseudonymize(k1, "user-7")
	if err != nil {
		t.Fatal(err)
	}
	id, err := Depseudonymize(k2, p)
	if err == nil && id == "user-7" {
		t.Error("wrong key recovered the cleartext identifier")
	}
}

func TestPseudonymProperty(t *testing.T) {
	key := mustKey(t)
	f := func(raw []byte) bool {
		if len(raw) > IDBlockSize-2 {
			raw = raw[:IDBlockSize-2]
		}
		id := string(raw)
		p, err := Pseudonymize(key, id)
		if err != nil {
			return false
		}
		got, err := Depseudonymize(key, p)
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyMarshalRoundTrip(t *testing.T) {
	pubDER, err := MarshalPublicKey(testKeyPair.Public)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := UnmarshalPublicKey(pubDER)
	if err != nil {
		t.Fatal(err)
	}
	if pub.N.Cmp(testKeyPair.Public.N) != 0 || pub.E != testKeyPair.Public.E {
		t.Error("public key round trip mismatch")
	}

	privDER, err := MarshalPrivateKey(testKeyPair.Private)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := UnmarshalPrivateKey(privDER)
	if err != nil {
		t.Fatal(err)
	}
	if priv.D.Cmp(testKeyPair.Private.D) != 0 {
		t.Error("private key round trip mismatch")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPublicKey([]byte("not DER")); err == nil {
		t.Error("UnmarshalPublicKey accepted garbage")
	}
	if _, err := UnmarshalPrivateKey([]byte("not DER")); err == nil {
		t.Error("UnmarshalPrivateKey accepted garbage")
	}
}

func TestConstantCiphertextSizes(t *testing.T) {
	// §4.3: "The size of all encrypted messages is constant, by using
	// fixed-size user and item identifiers, and padding when necessary."
	key := mustKey(t)
	var sizes []int
	for _, id := range []string{"u", "a-much-longer-user-identifier-string"} {
		block, err := PadID(id)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := EncryptOAEP(testKeyPair.Public, block)
		if err != nil {
			t.Fatal(err)
		}
		det, err := DetEncrypt(key, block)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(ct), len(det))
	}
	if sizes[0] != sizes[2] || sizes[1] != sizes[3] {
		t.Errorf("ciphertext sizes vary with identifier length: %v", sizes)
	}
}
