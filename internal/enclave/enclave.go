// Package enclave simulates the Intel SGX trusted-execution substrate that
// PProx runs its proxy layers in. The paper's implementation uses the Intel
// SGX SDK; this package reproduces, in process, the properties the PProx
// protocol actually depends on:
//
//   - measurement-based remote attestation before key provisioning (§2.2),
//   - an isolation boundary: code outside the enclave (the "server" part of
//     the proxy, §5) handles only opaque bytes and can never read the
//     provisioned secrets,
//   - Enclave Page Cache (EPC) accounting for in-enclave state such as the
//     key-value store holding pending response metadata (§5),
//   - the possibility, central to the adversary model (§2.3), that an
//     attacker mounts a side-channel attack against one enclave and leaks
//     its secrets — modelled by Compromise — together with a breach
//     detector in the spirit of Déjà Vu / Varys (§2.3, footnote 1).
//
// Substitution note (DESIGN.md §1): real SGX is unavailable in this
// environment; the simulation preserves the attested-provisioning and
// single-enclave-compromise behaviours that the security analysis (§6)
// exercises.
package enclave

import (
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// PageSize is the SGX EPC page granularity.
const PageSize = 4096

// DefaultEPCPages models the ~93 MB of usable EPC on the paper's SGX v1
// NUC machines.
const DefaultEPCPages = 23808

// Errors reported by the enclave runtime.
var (
	// ErrNotProvisioned reports an ECALL that needs secrets before any
	// were provisioned.
	ErrNotProvisioned = errors.New("enclave: secrets not provisioned")

	// ErrEPCExhausted reports an allocation beyond the enclave page cache.
	ErrEPCExhausted = errors.New("enclave: EPC exhausted")

	// ErrQuoteInvalid reports a remote-attestation quote that does not
	// verify against the platform's attestation service.
	ErrQuoteInvalid = errors.New("enclave: attestation quote invalid")

	// ErrUnknownEcall reports a call to an unregistered entry point.
	ErrUnknownEcall = errors.New("enclave: unknown ECALL")
)

// CodeIdentity names the code loaded into an enclave. Its measurement is
// what remote attestation proves.
type CodeIdentity struct {
	Name    string
	Version string
}

// Measurement is the SGX MRENCLAVE equivalent: a digest of the enclave's
// code identity.
type Measurement [sha256.Size]byte

// Measure computes the measurement of a code identity.
func Measure(ci CodeIdentity) Measurement {
	return sha256.Sum256([]byte(ci.Name + "\x00" + ci.Version))
}

// Secrets is the read-only view of provisioned key material that ECALL
// handlers receive. It is only ever constructed inside the enclave.
type Secrets interface {
	// Get returns the named secret, or false if it was not provisioned.
	Get(name string) ([]byte, bool)
}

type secretsView map[string][]byte

func (s secretsView) Get(name string) ([]byte, bool) {
	v, ok := s[name]
	return v, ok
}

// Handler is an ECALL entry point: it runs inside the enclave with access
// to the provisioned secrets and to the in-EPC key-value store, processing
// opaque bytes prepared by the untrusted server.
type Handler func(s Secrets, kv *KV, in []byte) ([]byte, error)

// Enclave is one simulated SGX enclave instance.
type Enclave struct {
	id       string
	identity CodeIdentity
	meas     Measurement
	platform *Platform

	mu          sync.Mutex
	kemPriv     *ecdh.PrivateKey
	secrets     secretsView
	provisioned bool
	compromised bool
	handlers    map[string]Handler
	kv          *KV

	epcPages     int
	epcUsedPages int

	ecalls        uint64 // enclave crossings (Ecall and CallBatch each count 1)
	msgs          uint64 // messages processed across all crossings
	observer      atomic.Pointer[EcallObserver]
	batchObserver atomic.Pointer[BatchObserver]
	transitionNs  atomic.Int64 // modeled CPU cost per crossing (0 = free)
}

// SetTransitionCost models the CPU a real SGX world switch burns on
// every enclave crossing — register save/restore, TLB flush, and the
// cache/EPC repopulation that follows (tens of microseconds on the
// paper's SGX v1 hardware, more under EPC paging pressure). The default
// is zero: crossings are free, as in a plain function call. When set,
// every crossing — one per Ecall, one per CallBatch regardless of batch
// size — spins the CPU for d, so experiments measure what epoch
// batching actually amortizes. Safe to call concurrently with traffic.
func (e *Enclave) SetTransitionCost(d time.Duration) {
	e.transitionNs.Store(int64(d))
}

// crossTransition pays the modeled world-switch cost. It busy-spins
// rather than sleeping: a transition occupies the core, it does not
// yield it.
func (e *Enclave) crossTransition() {
	ns := e.transitionNs.Load()
	if ns <= 0 {
		return
	}
	deadline := time.Now().Add(time.Duration(ns))
	for time.Now().Before(deadline) {
	}
}

// EcallObserver receives the name, wall-clock duration, and outcome of
// every ECALL, for the observability layer (ECALL count/duration metrics
// and hop-local tracing). It runs on the caller's goroutine after the
// handler returns, outside the enclave lock, so it must be cheap and
// must not call back into the enclave.
type EcallObserver func(name string, d time.Duration, err error)

// SetEcallObserver installs (or, with nil, removes) the ECALL observer.
// Safe to call concurrently with Ecall.
func (e *Enclave) SetEcallObserver(fn EcallObserver) {
	if fn == nil {
		e.observer.Store(nil)
		return
	}
	e.observer.Store(&fn)
}

// BatchObserver receives one batched crossing: the entry point, how many
// messages the crossing carried, and its total wall-clock duration. Like
// EcallObserver it runs on the caller's goroutine outside the enclave
// lock, after the crossing completes. Ecall does not fire it (a plain
// ECALL is a crossing of one message; the legacy observer covers it).
type BatchObserver func(name string, n int, d time.Duration)

// SetBatchObserver installs (or, with nil, removes) the batch-crossing
// observer. Safe to call concurrently with CallBatch.
func (e *Enclave) SetBatchObserver(fn BatchObserver) {
	if fn == nil {
		e.batchObserver.Store(nil)
		return
	}
	e.batchObserver.Store(&fn)
}

// ID returns the unique enclave instance identifier.
func (e *Enclave) ID() string { return e.id }

// Identity returns the code identity the enclave was launched with.
func (e *Enclave) Identity() CodeIdentity { return e.identity }

// Measurement returns the enclave's measurement.
func (e *Enclave) Measurement() Measurement { return e.meas }

// Platform returns the platform the enclave runs on.
func (e *Enclave) Platform() *Platform { return e.platform }

// Register installs an ECALL entry point. Registration happens at enclave
// construction, before any attestation, and is part of the measured code.
func (e *Enclave) Register(name string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handlers[name] = h
}

// Quote produces a remote-attestation quote over the given nonce, signed by
// the platform's attestation service (the stand-in for Intel's quoting
// enclave + IAS).
func (e *Enclave) Quote(nonce []byte) Quote {
	return e.platform.attestation.quote(e.meas, nonce)
}

// Provision installs the layer's key material after the provisioner has
// verified a quote. Keys are copied so the caller cannot retain aliases
// into enclave memory.
func (e *Enclave) Provision(secrets map[string][]byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	pages := 0
	cp := make(secretsView, len(secrets))
	for k, v := range secrets {
		cp[k] = append([]byte(nil), v...)
		pages += pagesFor(len(v))
	}
	if err := e.allocLocked(pages); err != nil {
		return fmt.Errorf("provision secrets: %w", err)
	}
	e.secrets = cp
	e.provisioned = true
	return nil
}

// Provisioned reports whether secrets have been installed.
func (e *Enclave) Provisioned() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.provisioned
}

// Ecall transfers control into the enclave: the named handler runs with
// access to the secrets and the in-EPC KV store. The input and output
// buffers are the only data crossing the boundary.
func (e *Enclave) Ecall(name string, in []byte) ([]byte, error) {
	e.mu.Lock()
	h, ok := e.handlers[name]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownEcall, name)
	}
	if !e.provisioned {
		e.mu.Unlock()
		return nil, ErrNotProvisioned
	}
	secrets := e.secrets
	kv := e.kv
	e.ecalls++
	e.msgs++
	e.mu.Unlock()
	e.crossTransition()

	start := time.Now()
	out, err := h(secrets, kv, in)
	if obs := e.observer.Load(); obs != nil {
		(*obs)(name, time.Since(start), err)
	}
	return out, err
}

// CallBatch transfers control into the enclave ONCE for a whole epoch of
// messages: the named handler runs over every input inside a single
// crossing, amortizing the transition cost the per-message path pays N
// times. The crossing's marshalling buffer — all inputs resident at the
// boundary at once — is charged against the EPC for the crossing's
// duration, so an epoch the EPC cannot hold fails up front with
// ErrEPCExhausted (callers fall back to per-message ECALLs).
//
// outs[i]/errs[i] carry each message's individual outcome; err reports
// crossing-level failures only (unknown ECALL, not provisioned, EPC), in
// which case no handler ran. The crossing counts once toward EcallCount
// and len(ins) times toward MessageCount; the legacy ECALL observer sees
// one crossing, the batch observer sees (name, len(ins), duration).
func (e *Enclave) CallBatch(name string, ins [][]byte) (outs [][]byte, errs []error, err error) {
	if len(ins) == 0 {
		return nil, nil, nil
	}
	e.mu.Lock()
	h, ok := e.handlers[name]
	if !ok {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownEcall, name)
	}
	if !e.provisioned {
		e.mu.Unlock()
		return nil, nil, ErrNotProvisioned
	}
	total := 0
	for _, in := range ins {
		total += len(in)
	}
	pages := pagesFor(total)
	if err := e.allocLocked(pages); err != nil {
		e.mu.Unlock()
		return nil, nil, fmt.Errorf("batch crossing buffer: %w", err)
	}
	secrets := e.secrets
	kv := e.kv
	e.ecalls++
	e.msgs += uint64(len(ins))
	e.mu.Unlock()
	e.crossTransition()

	// Inside the crossing the epoch is processed by resident enclave
	// worker threads (the switchless-call design: threads stay in the
	// enclave and drain the batch without per-message transitions).
	// Handlers already run concurrently in per-message operation, so
	// parallel use is part of their contract.
	start := time.Now()
	outs = make([][]byte, len(ins))
	errs = make([]error, len(ins))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ins) {
		workers = len(ins)
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ins) {
					return
				}
				outs[i], errs[i] = h(secrets, kv, ins[i])
			}
		}()
	}
	wg.Wait()
	d := time.Since(start)
	e.free(pages)
	if obs := e.observer.Load(); obs != nil {
		(*obs)(name, d, nil)
	}
	if bobs := e.batchObserver.Load(); bobs != nil {
		(*bobs)(name, len(ins), d)
	}
	return outs, errs, nil
}

// EcallCount returns the number of enclave crossings served (a batched
// crossing counts once), used by the breach detector's performance
// monitoring and the crossings-per-request measurements.
func (e *Enclave) EcallCount() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ecalls
}

// MessageCount returns the number of messages processed across all
// crossings: Ecall adds one, CallBatch adds the batch size.
func (e *Enclave) MessageCount() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.msgs
}

// KV returns the enclave's in-EPC key-value store, holding "the information
// necessary for handling requests responses on their way back from the
// LRS" (§5). It is accessible to ECALL handlers.
func (e *Enclave) KV() *KV { return e.kv }

// EPCUsage returns used and total EPC pages.
func (e *Enclave) EPCUsage() (used, total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.epcUsedPages, e.epcPages
}

func (e *Enclave) allocLocked(pages int) error {
	if e.epcUsedPages+pages > e.epcPages {
		return fmt.Errorf("%w: need %d pages, %d of %d in use",
			ErrEPCExhausted, pages, e.epcUsedPages, e.epcPages)
	}
	e.epcUsedPages += pages
	return nil
}

// ChargePages reserves EPC pages for in-enclave state held outside the
// KV store (the recommendation cache). It fails with ErrEPCExhausted
// exactly like a KV allocation would.
func (e *Enclave) ChargePages(n int) error { return e.alloc(n) }

// ReleasePages returns pages previously reserved with ChargePages.
func (e *Enclave) ReleasePages(n int) { e.free(n) }

func (e *Enclave) alloc(pages int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.allocLocked(pages)
}

func (e *Enclave) free(pages int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.epcUsedPages -= pages
	if e.epcUsedPages < 0 {
		e.epcUsedPages = 0
	}
}

func pagesFor(bytes int) int {
	if bytes == 0 {
		return 0
	}
	return (bytes + PageSize - 1) / PageSize
}

// Compromise models a successful side-channel attack (§2.3): the adversary
// extracts every secret provisioned to this enclave. The enclave keeps
// functioning — the paper's adversary "does not interfere with the
// functionality of the system" — but the platform's breach detector is
// informed and will fire after its detection latency. The returned map is
// the adversary's loot.
func (e *Enclave) Compromise() map[string][]byte {
	e.mu.Lock()
	loot := make(map[string][]byte, len(e.secrets))
	for k, v := range e.secrets {
		loot[k] = append([]byte(nil), v...)
	}
	e.compromised = true
	e.mu.Unlock()
	e.platform.notifyCompromise(e)
	return loot
}

// Compromised reports whether this enclave's secrets have leaked.
func (e *Enclave) Compromised() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.compromised
}

// Platform simulates one SGX-capable machine together with its attestation
// service. Enclaves launched on platforms sharing an AttestationService can
// be verified by the same provisioner, as with Intel's IAS.
type Platform struct {
	attestation *AttestationService

	mu       sync.Mutex
	enclaves []*Enclave
	detector *BreachDetector
	nextID   int
}

// NewPlatform creates a platform backed by the given attestation service.
func NewPlatform(as *AttestationService) *Platform {
	return &Platform{attestation: as}
}

// SetBreachDetector installs the side-channel breach detector notified on
// Compromise.
func (p *Platform) SetBreachDetector(d *BreachDetector) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.detector = d
}

// Launch creates an enclave running the given code identity with the
// default EPC size.
func (p *Platform) Launch(ci CodeIdentity) *Enclave {
	return p.LaunchWithEPC(ci, DefaultEPCPages)
}

// LaunchWithEPC creates an enclave with an explicit EPC budget.
func (p *Platform) LaunchWithEPC(ci CodeIdentity, epcPages int) *Enclave {
	p.mu.Lock()
	p.nextID++
	id := fmt.Sprintf("%s-%s#%d", ci.Name, ci.Version, p.nextID)
	p.mu.Unlock()

	e := &Enclave{
		id:       id,
		identity: ci,
		meas:     Measure(ci),
		platform: p,
		handlers: make(map[string]Handler),
		epcPages: epcPages,
	}
	e.kv = newKV(e)

	p.mu.Lock()
	p.enclaves = append(p.enclaves, e)
	p.mu.Unlock()
	return e
}

// Enclaves returns the enclaves launched on this platform.
func (p *Platform) Enclaves() []*Enclave {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Enclave(nil), p.enclaves...)
}

func (p *Platform) notifyCompromise(e *Enclave) {
	p.mu.Lock()
	d := p.detector
	p.mu.Unlock()
	if d != nil {
		d.observe(e)
	}
}

// AttestationService is the stand-in for Intel's quoting infrastructure: it
// signs quotes produced by genuine enclaves and verifies them for remote
// provisioners. The HMAC key models the Intel-rooted trust anchor ("we
// trust Intel for the certification of genuine SGX-enabled CPUs", §2.2).
type AttestationService struct {
	key []byte
}

// NewAttestationService creates an attestation trust anchor.
func NewAttestationService() (*AttestationService, error) {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("attestation key: %w", err)
	}
	return &AttestationService{key: key}, nil
}

// Quote binds an enclave measurement to a verifier-chosen nonce.
type Quote struct {
	Measurement Measurement
	Nonce       []byte
	MAC         []byte
}

func (as *AttestationService) quote(m Measurement, nonce []byte) Quote {
	mac := hmac.New(sha256.New, as.key)
	mac.Write(m[:])
	mac.Write(nonce)
	return Quote{Measurement: m, Nonce: append([]byte(nil), nonce...), MAC: mac.Sum(nil)}
}

// Verify checks a quote's authenticity and that it matches the expected
// measurement and nonce. This is what the RaaS client application does
// before provisioning layer keys (§4.1).
func (as *AttestationService) Verify(q Quote, want Measurement, nonce []byte) error {
	mac := hmac.New(sha256.New, as.key)
	mac.Write(q.Measurement[:])
	mac.Write(q.Nonce)
	if !hmac.Equal(mac.Sum(nil), q.MAC) {
		return fmt.Errorf("%w: bad signature", ErrQuoteInvalid)
	}
	if q.Measurement != want {
		return fmt.Errorf("%w: measurement mismatch", ErrQuoteInvalid)
	}
	if !hmac.Equal(q.Nonce, nonce) {
		return fmt.Errorf("%w: nonce mismatch (replay?)", ErrQuoteInvalid)
	}
	return nil
}

// AttestAndProvision performs the full provisioning handshake: challenge
// the enclave with a fresh nonce, verify the quote against the expected
// measurement, then install the secrets. It returns ErrQuoteInvalid if the
// enclave is not running the expected code.
func AttestAndProvision(as *AttestationService, e *Enclave, want Measurement, secrets map[string][]byte) error {
	nonce := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return fmt.Errorf("attestation nonce: %w", err)
	}
	q := e.Quote(nonce)
	if err := as.Verify(q, want, nonce); err != nil {
		return err
	}
	return e.Provision(secrets)
}

// BreachDetector models side-channel attack detection in the spirit of
// Déjà Vu and Varys (§2.3): reported attacks complete in tens of minutes
// while degrading enclave performance, so a monitor can notice and trigger
// countermeasures. The detection latency is configurable; on detection the
// countermeasure callback runs once per breached enclave.
type BreachDetector struct {
	latency time.Duration
	onEvent func(*Enclave)

	mu       sync.Mutex
	detected map[string]time.Time
	timers   []*time.Timer
}

// NewBreachDetector creates a detector firing countermeasures after the
// given detection latency.
func NewBreachDetector(latency time.Duration, countermeasure func(*Enclave)) *BreachDetector {
	return &BreachDetector{
		latency:  latency,
		onEvent:  countermeasure,
		detected: make(map[string]time.Time),
	}
}

func (d *BreachDetector) observe(e *Enclave) {
	d.mu.Lock()
	if _, dup := d.detected[e.ID()]; dup {
		d.mu.Unlock()
		return
	}
	d.detected[e.ID()] = time.Now()
	t := time.AfterFunc(d.latency, func() {
		if d.onEvent != nil {
			d.onEvent(e)
		}
	})
	d.timers = append(d.timers, t)
	d.mu.Unlock()
}

// Detections returns the enclave IDs with observed breaches.
func (d *BreachDetector) Detections() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	ids := make([]string, 0, len(d.detected))
	for id := range d.detected {
		ids = append(ids, id)
	}
	return ids
}

// Stop cancels pending countermeasure timers (for tests and shutdown).
func (d *BreachDetector) Stop() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, t := range d.timers {
		t.Stop()
	}
	d.timers = nil
}
